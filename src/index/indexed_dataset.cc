#include "src/index/indexed_dataset.h"

#include <algorithm>

namespace lsmcol {

Result<std::unique_ptr<IndexedDataset>> IndexedDataset::Create(
    const DatasetOptions& options, BufferCache* cache) {
  auto out = std::unique_ptr<IndexedDataset>(new IndexedDataset());
  LSMCOL_ASSIGN_OR_RETURN(out->dataset_, Dataset::Create(options, cache));
  out->cache_ = cache;
  return out;
}

Status IndexedDataset::DeclareIndex(const std::string& name,
                                    std::vector<std::string> field_path) {
  SecondaryIndexOptions options;
  options.dir = dataset_->options().dir;
  options.name = dataset_->options().name + "_" + name;
  options.page_size = dataset_->options().page_size;
  LSMCOL_ASSIGN_OR_RETURN(auto index,
                          SecondaryIndex::Create(options, cache_));
  indexes_.push_back(
      DeclaredIndex{name, std::move(field_path), std::move(index)});
  return Status::OK();
}

Status IndexedDataset::DeclarePrimaryKeyIndex() {
  SecondaryIndexOptions options;
  options.dir = dataset_->options().dir;
  options.name = dataset_->options().name + "_pkidx";
  options.page_size = dataset_->options().page_size;
  LSMCOL_ASSIGN_OR_RETURN(pk_index_, PrimaryKeyIndex::Create(options, cache_));
  return Status::OK();
}

bool IndexedDataset::IndexedValue(const Value& record,
                                  const std::vector<std::string>& path,
                                  int64_t* out) {
  const Value* v = &record;
  for (const auto& step : path) {
    v = &v->Get(step);
  }
  if (!v->is_int()) return false;
  *out = v->int_value();
  return true;
}

Result<IndexedDataset::DeclaredIndex*> IndexedDataset::FindIndex(
    const std::string& name) {
  for (DeclaredIndex& index : indexes_) {
    if (index.name == name) return &index;
  }
  return Status::NotFound("no index named " + name);
}

Projection IndexedDataset::IndexedFieldsProjection() const {
  std::vector<std::vector<std::string>> paths;
  for (const DeclaredIndex& index : indexes_) paths.push_back(index.path);
  return Projection::Of(std::move(paths));
}

Status IndexedDataset::Insert(const Value& record) {
  const Value& pk = record.Get(dataset_->options().pk_field);
  if (!pk.is_int()) {
    return Status::InvalidArgument("record lacks int64 primary key");
  }
  const int64_t key = pk.int_value();

  if (!indexes_.empty()) {
    // §4.6: find and clean out the previous record's index entries. The
    // primary-key index short-circuits lookups for brand-new keys.
    bool may_exist = true;
    if (pk_index_ != nullptr) {
      LSMCOL_ASSIGN_OR_RETURN(may_exist, pk_index_->MayContain(key));
    }
    if (may_exist) {
      // Fetch only the old indexed values (decoding every column of an
      // AMAX mega leaf per update would dominate ingestion).
      Value old_record;
      Status st = dataset_->Lookup(key, IndexedFieldsProjection(), &old_record);
      if (st.ok()) {
        for (DeclaredIndex& index : indexes_) {
          int64_t old_value = 0;
          if (IndexedValue(old_record, index.path, &old_value)) {
            LSMCOL_RETURN_NOT_OK(index.index->Delete(old_value, key));
          }
        }
      } else if (!st.IsNotFound()) {
        return st;
      }
    }
  }

  LSMCOL_RETURN_NOT_OK(dataset_->Insert(record));
  for (DeclaredIndex& index : indexes_) {
    int64_t new_value = 0;
    if (IndexedValue(record, index.path, &new_value)) {
      LSMCOL_RETURN_NOT_OK(index.index->Insert(new_value, key));
    }
  }
  if (pk_index_ != nullptr) {
    LSMCOL_RETURN_NOT_OK(pk_index_->Insert(key));
  }
  return Status::OK();
}

Status IndexedDataset::Delete(int64_t key) {
  if (!indexes_.empty()) {
    Value old_record;
    Status st = dataset_->Lookup(key, IndexedFieldsProjection(), &old_record);
    if (st.ok()) {
      for (DeclaredIndex& index : indexes_) {
        int64_t old_value = 0;
        if (IndexedValue(old_record, index.path, &old_value)) {
          LSMCOL_RETURN_NOT_OK(index.index->Delete(old_value, key));
        }
      }
    } else if (!st.IsNotFound()) {
      return st;
    }
  }
  return dataset_->Delete(key);
}

Status IndexedDataset::Flush() {
  LSMCOL_RETURN_NOT_OK(dataset_->Flush());
  for (DeclaredIndex& index : indexes_) {
    LSMCOL_RETURN_NOT_OK(index.index->Flush());
  }
  if (pk_index_ != nullptr) LSMCOL_RETURN_NOT_OK(pk_index_->Flush());
  return Status::OK();
}

Status IndexedDataset::IndexScan(
    const std::string& index_name, int64_t lo, int64_t hi,
    const Projection& projection,
    const std::function<void(int64_t pk, const Value&)>& consume) {
  LSMCOL_ASSIGN_OR_RETURN(DeclaredIndex * index, FindIndex(index_name));
  std::vector<IndexEntry> entries;
  LSMCOL_RETURN_NOT_OK(index->index->ScanRange(lo, hi, &entries));
  // Sort by primary key so the batched lookups sweep each component once
  // (§4.6). All lookups run against one snapshot: the whole scan sees a
  // single consistent view of the primary index, whatever flushes/merges
  // happen meanwhile.
  std::vector<int64_t> pks;
  pks.reserve(entries.size());
  for (const IndexEntry& e : entries) pks.push_back(e.primary_key);
  std::sort(pks.begin(), pks.end());
  pks.erase(std::unique(pks.begin(), pks.end()), pks.end());
  Snapshot::Ref snapshot = dataset_->GetSnapshot();
  LSMCOL_ASSIGN_OR_RETURN(auto batch, snapshot->NewLookupBatch(projection));
  for (int64_t pk : pks) {
    bool found = false;
    Value record;
    LSMCOL_RETURN_NOT_OK(batch->Find(pk, &found, &record));
    if (found) consume(pk, record);
  }
  return Status::OK();
}

Result<uint64_t> IndexedDataset::IndexCount(const std::string& index_name,
                                            int64_t lo, int64_t hi) {
  LSMCOL_ASSIGN_OR_RETURN(DeclaredIndex * index, FindIndex(index_name));
  std::vector<IndexEntry> entries;
  LSMCOL_RETURN_NOT_OK(index->index->ScanRange(lo, hi, &entries));
  // Verify liveness against the primary index without materializing
  // records (count-only: Find with a null output).
  std::vector<int64_t> pks;
  pks.reserve(entries.size());
  for (const IndexEntry& e : entries) pks.push_back(e.primary_key);
  std::sort(pks.begin(), pks.end());
  pks.erase(std::unique(pks.begin(), pks.end()), pks.end());
  Snapshot::Ref snapshot = dataset_->GetSnapshot();
  LSMCOL_ASSIGN_OR_RETURN(auto batch,
                          snapshot->NewLookupBatch(Projection::Of({})));
  uint64_t count = 0;
  for (int64_t pk : pks) {
    bool found = false;
    LSMCOL_RETURN_NOT_OK(batch->Find(pk, &found, nullptr));
    if (found) ++count;
  }
  return count;
}

uint64_t IndexedDataset::IndexOnDiskBytes() const {
  uint64_t total = 0;
  for (const DeclaredIndex& index : indexes_) {
    total += index.index->OnDiskBytes();
  }
  if (pk_index_ != nullptr) total += pk_index_->OnDiskBytes();
  return total;
}

}  // namespace lsmcol
