// IndexedDataset: a Dataset plus declared secondary indexes and the
// primary-key index, with the §4.6 maintenance protocol:
//
//   on insert of key k:
//     1. probe the primary-key index; if k is new, skip the primary lookup
//     2. otherwise point-look-up the old record (decoding keys linearly in
//        the columnar layouts — the update-intensive cost of §6.3.2),
//        read its old indexed values, and add anti-matter entries
//     3. insert into the primary index and all secondary indexes
//
// and the §4.6 read protocol: search the secondary index, sort the
// resulting primary keys, then batched point lookups against the primary
// index with a persistent LSM cursor — all against one Snapshot, so an
// index scan observes a single consistent view of the primary index.

#ifndef LSMCOL_INDEX_INDEXED_DATASET_H_
#define LSMCOL_INDEX_INDEXED_DATASET_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/index/secondary_index.h"
#include "src/lsm/dataset.h"

namespace lsmcol {

class IndexedDataset {
 public:
  /// Wraps a dataset opened with Dataset::Open (create-or-recover).
  /// Indexes must be declared before any inserts (the paper creates them
  /// prior to ingestion, §6.3.2); secondary-index durability is not
  /// implemented yet — recovery restores the primary index only.
  static Result<std::unique_ptr<IndexedDataset>> Create(
      const DatasetOptions& options, BufferCache* cache);

  /// Declare a secondary index on a top-level (or dotted) int64 field.
  Status DeclareIndex(const std::string& name,
                      std::vector<std::string> field_path);
  /// Declare the primary-key index (recommended for update-heavy loads).
  Status DeclarePrimaryKeyIndex();

  /// Upsert with index maintenance.
  Status Insert(const Value& record);
  Status Delete(int64_t key);

  Status Flush();

  /// Index-accelerated range query: returns the records whose indexed
  /// field lies in [lo, hi], via sorted batched point lookups. The
  /// `consume` callback receives each record.
  Status IndexScan(const std::string& index_name, int64_t lo, int64_t hi,
                   const Projection& projection,
                   const std::function<void(int64_t pk, const Value&)>& consume);

  /// Count-only variant (skips record materialization when possible).
  Result<uint64_t> IndexCount(const std::string& index_name, int64_t lo,
                              int64_t hi);

  Dataset* dataset() { return dataset_.get(); }
  uint64_t IndexOnDiskBytes() const;

 private:
  struct DeclaredIndex {
    std::string name;
    std::vector<std::string> path;
    std::unique_ptr<SecondaryIndex> index;
  };

  IndexedDataset() = default;

  Result<DeclaredIndex*> FindIndex(const std::string& name);
  /// Extract the indexed int64 value; false if missing/non-int.
  static bool IndexedValue(const Value& record,
                           const std::vector<std::string>& path, int64_t* out);

  /// Projection of just the indexed fields (old-value cleanout lookups).
  Projection IndexedFieldsProjection() const;

  std::unique_ptr<Dataset> dataset_;
  std::vector<DeclaredIndex> indexes_;
  std::unique_ptr<PrimaryKeyIndex> pk_index_;
  BufferCache* cache_ = nullptr;
};

}  // namespace lsmcol

#endif  // LSMCOL_INDEX_INDEXED_DATASET_H_
