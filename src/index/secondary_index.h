// LSM secondary index (§4.6): maps an int64 secondary key (e.g. the
// tweet_2 timestamp) to primary keys. Like the primary index it is an LSM
// of immutable sorted components with anti-matter entries; maintenance on
// upsert requires cleaning out the old entry, which is what makes updates
// expensive for the columnar primary layouts (§6.3.2).
//
// A PrimaryKeyIndex is the paper's "primary key index": a secondary index
// holding only primary keys, consulted before the primary index on insert
// so lookups for brand-new keys never touch the (expensive to search)
// columnar primary components.

#ifndef LSMCOL_INDEX_SECONDARY_INDEX_H_
#define LSMCOL_INDEX_SECONDARY_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/component_file.h"

namespace lsmcol {

struct SecondaryIndexOptions {
  std::string dir;
  std::string name = "index";
  size_t page_size = kDefaultPageSize;
  /// Entries buffered in memory before a flush.
  size_t memtable_entries = 64 * 1024;
  int max_components = 5;
};

/// An (sk, pk) pair produced by an index scan.
struct IndexEntry {
  int64_t secondary_key = 0;
  int64_t primary_key = 0;
};

class SecondaryIndex {
 public:
  static Result<std::unique_ptr<SecondaryIndex>> Create(
      const SecondaryIndexOptions& options, BufferCache* cache);

  /// Add a live entry.
  Status Insert(int64_t secondary_key, int64_t primary_key);
  /// Add an anti-matter entry (cleanout of a replaced/deleted record).
  Status Delete(int64_t secondary_key, int64_t primary_key);

  Status Flush();
  Status MergeAll();

  /// All live primary keys with secondary key in [lo, hi], in (sk, pk)
  /// order (callers sort by pk before batched primary lookups, §4.6).
  Status ScanRange(int64_t lo, int64_t hi, std::vector<IndexEntry>* out);

  /// True when (secondary_key == pk probe) exists — the PrimaryKeyIndex
  /// membership test.
  Result<bool> Contains(int64_t secondary_key);

  uint64_t OnDiskBytes() const;
  size_t component_count() const { return components_.size(); }

 private:
  struct Component {
    std::unique_ptr<ComponentReader> reader;
  };

  SecondaryIndex(const SecondaryIndexOptions& options, BufferCache* cache)
      : options_(options), cache_(cache) {}

  Status Add(int64_t sk, int64_t pk, bool anti);
  Status ScanComponentRange(
      const Component& component, int64_t lo, int64_t hi,
      std::map<std::pair<int64_t, int64_t>, bool>* merged, bool newest_wins);

  SecondaryIndexOptions options_;
  BufferCache* cache_;
  // (sk, pk) -> anti-matter flag; newest state wins.
  std::map<std::pair<int64_t, int64_t>, bool> memtable_;
  std::vector<Component> components_;  // newest first
  uint64_t next_component_id_ = 1;
};

/// The "primary key index" of §4.6.
class PrimaryKeyIndex {
 public:
  static Result<std::unique_ptr<PrimaryKeyIndex>> Create(
      const SecondaryIndexOptions& options, BufferCache* cache) {
    auto index = SecondaryIndex::Create(options, cache);
    if (!index.ok()) return index.status();
    auto out = std::unique_ptr<PrimaryKeyIndex>(new PrimaryKeyIndex());
    out->index_ = std::move(*index);
    return out;
  }

  Status Insert(int64_t pk) { return index_->Insert(pk, 0); }
  Result<bool> MayContain(int64_t pk) { return index_->Contains(pk); }
  Status Flush() { return index_->Flush(); }
  uint64_t OnDiskBytes() const { return index_->OnDiskBytes(); }

 private:
  PrimaryKeyIndex() = default;
  std::unique_ptr<SecondaryIndex> index_;
};

}  // namespace lsmcol

#endif  // LSMCOL_INDEX_SECONDARY_INDEX_H_
