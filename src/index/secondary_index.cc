#include "src/index/secondary_index.h"

#include <algorithm>

#include "src/encoding/delta.h"
#include "src/encoding/rle.h"

namespace lsmcol {
namespace {

constexpr size_t kEntriesPerLeaf = 8192;

// Leaf payload: varint count | delta sks | delta pks | RLE anti flags.
void EncodeLeaf(const std::vector<IndexEntry>& entries,
                const std::vector<bool>& anti, Buffer* out) {
  out->AppendVarint64(entries.size());
  DeltaInt64Encoder sks, pks;
  RleEncoder flags(1);
  for (size_t i = 0; i < entries.size(); ++i) {
    sks.Add(entries[i].secondary_key);
    pks.Add(entries[i].primary_key);
    flags.Add(anti[i] ? 1 : 0);
  }
  sks.FinishInto(out);
  pks.FinishInto(out);
  flags.FinishInto(out);
}

Status DecodeLeaf(Slice payload, std::vector<IndexEntry>* entries,
                  std::vector<bool>* anti) {
  BufferReader r(payload);
  uint64_t count = 0;
  LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&count));
  DeltaInt64Decoder sks;
  LSMCOL_RETURN_NOT_OK(sks.Init(r.rest()));
  std::vector<int64_t> sk_values;
  LSMCOL_RETURN_NOT_OK(sks.DecodeAll(&sk_values));
  DeltaInt64Decoder pks;
  LSMCOL_RETURN_NOT_OK(pks.Init(sks.rest()));
  std::vector<int64_t> pk_values;
  LSMCOL_RETURN_NOT_OK(pks.DecodeAll(&pk_values));
  RleDecoder flags;
  LSMCOL_RETURN_NOT_OK(flags.Init(pks.rest(), 1));
  std::vector<uint64_t> flag_values;
  LSMCOL_RETURN_NOT_OK(flags.DecodeAll(&flag_values));
  if (sk_values.size() != count || pk_values.size() != count ||
      flag_values.size() != count) {
    return Status::Corruption("secondary index leaf count mismatch");
  }
  entries->resize(count);
  anti->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    (*entries)[i] = {sk_values[i], pk_values[i]};
    (*anti)[i] = flag_values[i] != 0;
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<SecondaryIndex>> SecondaryIndex::Create(
    const SecondaryIndexOptions& options, BufferCache* cache) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("SecondaryIndexOptions.dir must be set");
  }
  return std::unique_ptr<SecondaryIndex>(new SecondaryIndex(options, cache));
}

Status SecondaryIndex::Add(int64_t sk, int64_t pk, bool anti) {
  memtable_[{sk, pk}] = anti;  // newest state wins within the memtable
  if (memtable_.size() >= options_.memtable_entries) {
    return Flush();
  }
  return Status::OK();
}

Status SecondaryIndex::Insert(int64_t sk, int64_t pk) {
  return Add(sk, pk, false);
}

Status SecondaryIndex::Delete(int64_t sk, int64_t pk) {
  return Add(sk, pk, true);
}

Status SecondaryIndex::Flush() {
  if (memtable_.empty()) return Status::OK();
  const std::string path = options_.dir + "/" + options_.name + "_" +
                           std::to_string(next_component_id_++) + ".idx";
  LSMCOL_ASSIGN_OR_RETURN(
      auto writer, ComponentWriter::Create(path, cache_, options_.page_size));
  std::vector<IndexEntry> entries;
  std::vector<bool> anti;
  auto emit = [&]() -> Status {
    if (entries.empty()) return Status::OK();
    Buffer payload;
    EncodeLeaf(entries, anti, &payload);
    Status st = writer->AppendLeaf(payload.slice(),
                                   entries.front().secondary_key,
                                   entries.back().secondary_key,
                                   static_cast<uint32_t>(entries.size()));
    entries.clear();
    anti.clear();
    return st;
  };
  for (const auto& [key, is_anti] : memtable_) {
    entries.push_back({key.first, key.second});
    anti.push_back(is_anti);
    if (entries.size() >= kEntriesPerLeaf) LSMCOL_RETURN_NOT_OK(emit());
  }
  LSMCOL_RETURN_NOT_OK(emit());
  LSMCOL_RETURN_NOT_OK(writer->Finish(Slice("SIDX")));
  LSMCOL_ASSIGN_OR_RETURN(
      auto reader, ComponentReader::Open(path, cache_, options_.page_size));
  components_.insert(components_.begin(), Component{std::move(reader)});
  memtable_.clear();
  if (components_.size() > static_cast<size_t>(options_.max_components)) {
    return MergeAll();
  }
  return Status::OK();
}

Status SecondaryIndex::ScanComponentRange(
    const Component& component, int64_t lo, int64_t hi,
    std::map<std::pair<int64_t, int64_t>, bool>* merged, bool newest_wins) {
  (void)newest_wins;
  const auto& leaves = component.reader->leaves();
  for (size_t i = component.reader->LowerBoundLeaf(lo);
       i < leaves.size() && leaves[i].min_key <= hi; ++i) {
    Buffer payload;
    LSMCOL_RETURN_NOT_OK(component.reader->ReadLeaf(i, &payload));
    std::vector<IndexEntry> entries;
    std::vector<bool> anti;
    LSMCOL_RETURN_NOT_OK(DecodeLeaf(payload.slice(), &entries, &anti));
    for (size_t j = 0; j < entries.size(); ++j) {
      if (entries[j].secondary_key < lo || entries[j].secondary_key > hi) {
        continue;
      }
      // emplace: an existing (newer) state is not overwritten.
      merged->emplace(
          std::make_pair(entries[j].secondary_key, entries[j].primary_key),
          anti[j]);
    }
  }
  return Status::OK();
}

Status SecondaryIndex::ScanRange(int64_t lo, int64_t hi,
                                 std::vector<IndexEntry>* out) {
  out->clear();
  std::map<std::pair<int64_t, int64_t>, bool> merged;
  // Memtable is newest.
  for (auto it = memtable_.lower_bound({lo, INT64_MIN});
       it != memtable_.end() && it->first.first <= hi; ++it) {
    merged.emplace(it->first, it->second);
  }
  for (const Component& component : components_) {
    LSMCOL_RETURN_NOT_OK(
        ScanComponentRange(component, lo, hi, &merged, true));
  }
  for (const auto& [key, anti] : merged) {
    if (!anti) out->push_back({key.first, key.second});
  }
  return Status::OK();
}

Result<bool> SecondaryIndex::Contains(int64_t secondary_key) {
  std::vector<IndexEntry> entries;
  LSMCOL_RETURN_NOT_OK(ScanRange(secondary_key, secondary_key, &entries));
  return !entries.empty();
}

Status SecondaryIndex::MergeAll() {
  if (components_.size() < 2 && memtable_.empty()) return Status::OK();
  std::map<std::pair<int64_t, int64_t>, bool> merged;
  for (const auto& [key, anti] : memtable_) merged.emplace(key, anti);
  for (const Component& component : components_) {
    LSMCOL_RETURN_NOT_OK(ScanComponentRange(component, INT64_MIN, INT64_MAX,
                                            &merged, true));
  }
  memtable_.clear();
  const std::string path = options_.dir + "/" + options_.name + "_" +
                           std::to_string(next_component_id_++) + ".idx";
  LSMCOL_ASSIGN_OR_RETURN(
      auto writer, ComponentWriter::Create(path, cache_, options_.page_size));
  std::vector<IndexEntry> entries;
  std::vector<bool> anti;
  auto emit = [&]() -> Status {
    if (entries.empty()) return Status::OK();
    Buffer payload;
    EncodeLeaf(entries, anti, &payload);
    Status st = writer->AppendLeaf(payload.slice(),
                                   entries.front().secondary_key,
                                   entries.back().secondary_key,
                                   static_cast<uint32_t>(entries.size()));
    entries.clear();
    anti.clear();
    return st;
  };
  for (const auto& [key, is_anti] : merged) {
    if (is_anti) continue;  // full merge: anti-matter annihilates
    entries.push_back({key.first, key.second});
    anti.push_back(false);
    if (entries.size() >= kEntriesPerLeaf) LSMCOL_RETURN_NOT_OK(emit());
  }
  LSMCOL_RETURN_NOT_OK(emit());
  LSMCOL_RETURN_NOT_OK(writer->Finish(Slice("SIDX")));
  LSMCOL_ASSIGN_OR_RETURN(
      auto reader, ComponentReader::Open(path, cache_, options_.page_size));
  std::vector<Component> old = std::move(components_);
  components_.clear();
  components_.push_back(Component{std::move(reader)});
  for (Component& component : old) {
    LSMCOL_RETURN_NOT_OK(component.reader->Destroy());
  }
  return Status::OK();
}

uint64_t SecondaryIndex::OnDiskBytes() const {
  uint64_t total = 0;
  for (const Component& component : components_) {
    total += component.reader->size_bytes();
  }
  return total;
}

}  // namespace lsmcol
