#include "src/storage/filesystem.h"

#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>

#include "src/storage/file.h"

namespace lsmcol {
namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IOError(op + " failed for " + path + ": " +
                         ErrnoMessage(errno));
}

/// fd-backed file. Size is tracked in memory so Append never needs a
/// racy lseek; lsmcol files are single-owner, so the cached size cannot
/// go stale underneath us.
class PosixFsFile final : public FsFile {
 public:
  PosixFsFile(std::string path, int fd, uint64_t size)
      : FsFile(std::move(path)), fd_(fd), size_(size) {}

  ~PosixFsFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status ReadAt(uint64_t offset, size_t n, Buffer* out) override {
    out->resize(n);
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, out->mutable_data() + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread", path_);
      }
      if (r == 0) break;  // end of file
      got += static_cast<size_t>(r);
    }
    out->resize(got);
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, Slice data) override {
    size_t off = 0;
    while (off < data.size()) {
      ssize_t n = ::pwrite(fd_, data.data() + off, data.size() - off,
                           static_cast<off_t>(offset + off));
      if (n < 0) {
        if (errno == EINTR) continue;
        size_ = std::max<uint64_t>(size_, offset + off);
        return ErrnoStatus("pwrite", path_);
      }
      off += static_cast<size_t>(n);
    }
    size_ = std::max<uint64_t>(size_, offset + data.size());
    return Status::OK();
  }

  Status Append(Slice data, size_t* appended) override {
    const uint64_t start = size_;
    Status st = WriteAt(start, data);
    if (appended != nullptr) {
      *appended = static_cast<size_t>(size_ - start);
    }
    return st;
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("ftruncate", path_);
    }
    size_ = size;
    return Status::OK();
  }

  Result<uint64_t> Size() override { return size_; }

 private:
  int fd_;
  uint64_t size_;
};

class PosixFileSystem final : public FileSystem {
 public:
  Result<std::unique_ptr<FsFile>> Create(const std::string& path) override {
    int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
    if (fd < 0) return ErrnoStatus("open(create)", path);
    return std::unique_ptr<FsFile>(new PosixFsFile(path, fd, 0));
  }

  Result<std::unique_ptr<FsFile>> Open(const std::string& path,
                                       bool writable) override {
    int fd = ::open(path.c_str(), writable ? O_RDWR : O_RDONLY);
    if (fd < 0) return ErrnoStatus("open", path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      Status err = ErrnoStatus("fstat", path);
      ::close(fd);
      return err;
    }
    return std::unique_ptr<FsFile>(
        new PosixFsFile(path, fd, static_cast<uint64_t>(st.st_size)));
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to);
    }
    return Status::OK();
  }

  Status LinkFile(const std::string& from, const std::string& to) override {
    if (::link(from.c_str(), to.c_str()) != 0) {
      if (errno == EXDEV || errno == EPERM || errno == ENOTSUP ||
          errno == EOPNOTSUPP) {
        // Cross-filesystem or links disabled: a policy limitation, not an
        // I/O failure — callers fall back to copying on NotSupported.
        return Status::NotSupported("link failed for " + from + " -> " + to +
                                    ": " + ErrnoMessage(errno));
      }
      return ErrnoStatus("link", from + " -> " + to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path);
    return Status::OK();
  }

  bool Exists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open(dir)", dir);
    Status st;
    if (::fsync(fd) != 0) {
      if (errno == EINVAL || errno == EACCES || errno == ENOTSUP) {
        // Some filesystems (and O_RDONLY directory handles on a few)
        // reject directory fsync outright rather than failing to persist
        // anything. Treat "not supported here" as success — failing would
        // make every rename/create path error out spuriously on such
        // filesystems — but warn once so reduced durability is not silent.
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
          std::fprintf(stderr,
                       "lsmcol: warning: fsync(%s) rejected (%s); directory "
                       "durability not guaranteed on this filesystem\n",
                       dir.c_str(), ErrnoMessage(errno).c_str());
        }
      } else {
        st = ErrnoStatus("fsync(dir)", dir);
      }
    }
    ::close(fd);
    return st;
  }

  Status CreateDirs(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::IOError("cannot create directory " + dir + ": " +
                             ec.message());
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) {
      return Status::IOError("cannot list " + dir + ": " + ec.message());
    }
    std::vector<std::string> names;
    for (const auto& entry : it) {
      if (!entry.is_regular_file(ec)) continue;
      names.push_back(entry.path().filename().string());
    }
    return names;
  }
};

}  // namespace

FileSystem* DefaultFileSystem() {
  static PosixFileSystem* fs = new PosixFileSystem();
  return fs;
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace lsmcol
