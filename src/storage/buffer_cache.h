// BufferCache: an LRU page cache over PageFiles, with the I/O counters the
// benchmarks report (pages/bytes read and written, hit rate). It also
// provides the "temporary buffer confiscation" used by the AMAX writer
// (§4.5.2): megapage staging buffers are charged against the cache budget
// instead of a dedicated allocation.
//
// Thread-safe: one cache is shared by every dataset of a Store, and with
// background flushes/merges, writer threads (write-through) and any
// number of reader threads fetch concurrently. A single mutex guards the
// frame table, LRU list, and counters — including across the miss read
// (simple over scalable; per-shard locking is future work). Pinned frames
// have stable addresses (frames own their Buffers via unique_ptr), so a
// PageHandle's bytes stay valid without holding the lock.

#ifndef LSMCOL_STORAGE_BUFFER_CACHE_H_
#define LSMCOL_STORAGE_BUFFER_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "src/common/buffer.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/storage/file.h"

namespace lsmcol {

/// Cumulative I/O statistics (never reset by eviction).
struct CacheStats {
  uint64_t pages_read = 0;     ///< physical page reads (misses)
  uint64_t bytes_read = 0;     ///< physical bytes read
  uint64_t pages_written = 0;  ///< physical page writes
  uint64_t bytes_written = 0;  ///< physical bytes written
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t confiscations = 0;  ///< AMAX staging buffers taken (§4.5.2)
};

class BufferCache;

/// RAII pin on a cached page. The referenced bytes stay valid while the
/// handle lives.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return cache_ != nullptr; }
  Slice data() const;

 private:
  friend class BufferCache;
  PageHandle(BufferCache* cache, void* frame) : cache_(cache), frame_(frame) {}

  BufferCache* cache_ = nullptr;
  void* frame_ = nullptr;
};

/// \brief LRU page cache (thread-safe, see file comment).
class BufferCache {
 public:
  BufferCache(size_t capacity_bytes, size_t page_size)
      : capacity_bytes_(capacity_bytes), page_size_(page_size) {}

  /// Fetch (and pin) a page, reading it on miss.
  Result<PageHandle> Fetch(const PageFile& file, uint64_t page_no)
      LSMCOL_EXCLUDES(mu_);

  /// Write a page through the cache (updates/installs the cached copy and
  /// writes to the file immediately — components are write-once, so there
  /// is no dirty-page tracking).
  Status WriteThrough(PageFile& file, uint64_t page_no, Slice payload)
      LSMCOL_EXCLUDES(mu_);

  /// Drop all cached pages of a file (component deletion after merge).
  void Invalidate(const PageFile& file) LSMCOL_EXCLUDES(mu_);

  /// Drop every unpinned page (cold-cache measurements). CHECK-fails if
  /// any page is pinned.
  void Clear() LSMCOL_EXCLUDES(mu_);

  /// Account for an AMAX staging buffer taken from the cache budget.
  void Confiscate(size_t bytes) LSMCOL_EXCLUDES(mu_);
  void ReturnConfiscated(size_t bytes) LSMCOL_EXCLUDES(mu_);

  /// Returns a consistent copy (counters move concurrently).
  CacheStats stats() const LSMCOL_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }
  void ResetStats() LSMCOL_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    stats_ = CacheStats();
  }
  size_t page_size() const { return page_size_; }
  size_t cached_bytes() const LSMCOL_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return frame_count_ * page_size_;
  }

 private:
  friend class PageHandle;

  // Frame fields are reached through Frame* rather than the cache, so
  // they carry no GUARDED_BY of their own; the invariant is structural:
  // all mutation happens under mu_, and a pinned frame's Buffer bytes
  // are immutable (what PageHandle::data() reads lock-free).
  struct Frame {
    uint64_t file_id = 0;
    uint64_t page_no = 0;
    size_t file_pos = 0;  ///< index into pages_by_file_[file_id]
    Buffer data;
    int pins = 0;
    std::list<Frame*>::iterator lru_it;
    bool in_lru = false;
    /// Placeholder published before the physical read so the miss I/O
    /// runs outside mu_; concurrent fetchers of the same page wait on
    /// load_cv_ instead of reading twice. Pinned while loading, so never
    /// evicted or handed out.
    bool loading = false;
  };

  /// Composite page identity. Hashed as (file_id << 24) ^ page_no — file
  /// ids are small and pages rarely exceed 2^24, so the mix is collision-
  /// light — while equality stays exact, so an overflowing page number
  /// can never alias another file's page.
  struct PageKey {
    uint64_t file_id;
    uint64_t page_no;
    bool operator==(const PageKey& other) const {
      return file_id == other.file_id && page_no == other.page_no;
    }
  };
  struct PageKeyHash {
    size_t operator()(const PageKey& k) const {
      return static_cast<size_t>((k.file_id << 24) ^ k.page_no);
    }
  };

  void Unpin(Frame* frame) LSMCOL_EXCLUDES(mu_);
  void EvictIfNeededLocked() LSMCOL_REQUIRES(mu_);
  void RemoveFromFileListLocked(Frame* frame) LSMCOL_REQUIRES(mu_);

  /// Guards every mutable member below (frames, LRU, per-file lists,
  /// counters). Physical page I/O runs *outside* it: misses publish a
  /// loading placeholder first, write-through writes go to a file still
  /// private to its single writer.
  mutable Mutex mu_{MutexRank::kBufferCache};
  /// Signaled when a loading frame is published (or its read failed).
  CondVar load_cv_;
  size_t capacity_bytes_;
  size_t page_size_;
  size_t frame_count_ LSMCOL_GUARDED_BY(mu_) = 0;
  size_t confiscated_bytes_ LSMCOL_GUARDED_BY(mu_) = 0;
  CacheStats stats_ LSMCOL_GUARDED_BY(mu_);
  // One flat map — a single probe per Fetch instead of two chained maps.
  std::unordered_map<PageKey, std::unique_ptr<Frame>, PageKeyHash> frames_
      LSMCOL_GUARDED_BY(mu_);
  // Per-file frame list so Invalidate(file) stays O(pages of that file).
  std::unordered_map<uint64_t, std::vector<Frame*>> pages_by_file_
      LSMCOL_GUARDED_BY(mu_);
  // front = most recently used, unpinned only
  std::list<Frame*> lru_ LSMCOL_GUARDED_BY(mu_);
};

}  // namespace lsmcol

#endif  // LSMCOL_STORAGE_BUFFER_CACHE_H_
