#include "src/storage/manifest.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "src/common/buffer.h"
#include "src/storage/file.h"

namespace lsmcol {
namespace {

constexpr uint32_t kManifestMagic = 0x4C534D4Du;  // "LSMM"
// v2: dropped the redundant compressed byte (components self-describe).
// v3: added wal_floor (lowest WAL segment not covered by a flush).
// v4: added the damage section (persisted quarantine records).
constexpr uint8_t kManifestVersion = 4;

/// Write `data` to `path` atomically: temp file + fsync + rename + dir
/// fsync.
Status WriteFileAtomic(const std::string& path, Slice data, FileSystem* fs) {
  const std::string tmp = path + ".tmp";
  // On any failure the temp file must not linger: the stale-file sweep
  // would eventually collect it, but only at the next open — until then
  // it wastes space and, worse, a later successful write would reuse the
  // name of a file in unknown state.
  Status st;
  {
    auto file = fs->Create(tmp);
    if (!file.ok()) return file.status();
    st = (*file)->WriteAt(0, data);
    if (st.ok()) st = (*file)->Sync();
  }
  if (st.ok()) st = RenameFile(tmp, path, fs);
  if (!st.ok()) (void)RemoveFileIfExists(tmp, fs);
  return st;
}

bool AllDigits(std::string_view s) {
  return !s.empty() &&
         std::all_of(s.begin(), s.end(),
                     [](char c) { return c >= '0' && c <= '9'; });
}

}  // namespace

std::string ManifestPath(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".MANIFEST";
}

Status WriteManifest(const std::string& path, const Manifest& manifest,
                     FileSystem* fs) {
  Buffer out;
  out.AppendFixed32(kManifestMagic);
  out.AppendByte(kManifestVersion);
  out.AppendVarint64(manifest.sequence);
  out.AppendLengthPrefixed(Slice(manifest.dataset_name));
  out.AppendByte(manifest.layout);
  out.AppendLengthPrefixed(Slice(manifest.pk_field));
  out.AppendVarint64(manifest.page_size);
  out.AppendVarint64(manifest.next_component_id);
  out.AppendVarint64(manifest.wal_floor);
  out.AppendVarint64(manifest.components.size());
  for (const ManifestComponentEntry& c : manifest.components) {
    out.AppendVarint64(c.id);
    out.AppendLengthPrefixed(Slice(c.file));
  }
  out.AppendLengthPrefixed(Slice(manifest.schema_blob));
  // Damage section (v4): persist quarantines only for components the
  // manifest still references — a merged-away or repaired file must not
  // leave a ghost record behind.
  std::vector<const ManifestDamageEntry*> live_damage;
  for (const ManifestDamageEntry& d : manifest.damaged) {
    for (const ManifestComponentEntry& c : manifest.components) {
      if (c.id == d.component_id) {
        live_damage.push_back(&d);
        break;
      }
    }
  }
  out.AppendVarint64(live_damage.size());
  for (const ManifestDamageEntry* d : live_damage) {
    out.AppendVarint64(d->component_id);
    out.AppendByte(d->status_code);
    out.AppendLengthPrefixed(Slice(d->reason));
  }
  out.AppendFixed32(Fnv1a32(out.slice()));
  return WriteFileAtomic(path, out.slice(), ResolveFs(fs));
}

Result<Manifest> ReadManifest(const std::string& path, FileSystem* fs) {
  LSMCOL_ASSIGN_OR_RETURN(auto file,
                          ResolveFs(fs)->Open(path, /*writable=*/false));
  std::string raw;
  Buffer chunk;
  uint64_t offset = 0;
  while (true) {
    LSMCOL_RETURN_NOT_OK(file->ReadAt(offset, 4096, &chunk));
    if (chunk.size() == 0) break;
    raw.append(chunk.data(), chunk.size());
    offset += chunk.size();
  }
  if (raw.size() < 4 + 1 + 4) {
    return Status::Corruption("manifest too short: " + path);
  }
  const Slice payload(raw.data(), raw.size() - 4);
  const uint32_t want = DecodeFixed32(raw.data() + raw.size() - 4);
  if (Fnv1a32(payload) != want) {
    return Status::Corruption("manifest checksum mismatch: " + path);
  }
  BufferReader r(payload);
  Manifest m;
  uint32_t magic = 0;
  uint8_t version = 0;
  LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&magic));
  if (magic != kManifestMagic) {
    return Status::Corruption("bad manifest magic: " + path);
  }
  LSMCOL_RETURN_NOT_OK(r.ReadByte(&version));
  // v2 manifests (pre-WAL) are still readable: they simply lack the
  // wal_floor field, and no WAL segments can exist for them. v3 lacks
  // only the damage section.
  if (version < 2 || version > kManifestVersion) {
    return Status::Corruption("unsupported manifest version " +
                              std::to_string(version) + ": " + path);
  }
  LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&m.sequence));
  Slice s;
  LSMCOL_RETURN_NOT_OK(r.ReadLengthPrefixed(&s));
  m.dataset_name.assign(s.data(), s.size());
  LSMCOL_RETURN_NOT_OK(r.ReadByte(&m.layout));
  LSMCOL_RETURN_NOT_OK(r.ReadLengthPrefixed(&s));
  m.pk_field.assign(s.data(), s.size());
  LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&m.page_size));
  LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&m.next_component_id));
  if (version >= 3) {
    LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&m.wal_floor));
  }
  uint64_t count = 0;
  LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    ManifestComponentEntry entry;
    LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&entry.id));
    LSMCOL_RETURN_NOT_OK(r.ReadLengthPrefixed(&s));
    entry.file.assign(s.data(), s.size());
    m.components.push_back(std::move(entry));
  }
  LSMCOL_RETURN_NOT_OK(r.ReadLengthPrefixed(&s));
  m.schema_blob.assign(s.data(), s.size());
  if (version >= 4) {
    uint64_t damaged = 0;
    LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&damaged));
    for (uint64_t i = 0; i < damaged; ++i) {
      ManifestDamageEntry entry;
      LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&entry.component_id));
      LSMCOL_RETURN_NOT_OK(r.ReadByte(&entry.status_code));
      LSMCOL_RETURN_NOT_OK(r.ReadLengthPrefixed(&s));
      entry.reason.assign(s.data(), s.size());
      m.damaged.push_back(std::move(entry));
    }
  }
  return m;
}

Status RemoveStaleDatasetFiles(const std::string& dir, const std::string& name,
                               const std::vector<std::string>& referenced,
                               uint64_t wal_floor, size_t* removed,
                               FileSystem* fs) {
  fs = ResolveFs(fs);
  if (removed != nullptr) *removed = 0;
  const std::string prefix = name + "_";
  const std::string manifest_tmp = name + ".MANIFEST.tmp";
  LSMCOL_ASSIGN_OR_RETURN(auto names, fs->ListDir(dir));
  std::vector<std::string> victims;
  for (const std::string& file : names) {
    bool stale = false;
    if (file == manifest_tmp) {
      stale = true;
    } else if (file.rfind(prefix, 0) == 0) {
      // `<name>_<digits>.cmp` belongs to this dataset; names that merely
      // share the prefix (dataset "a" vs "a_b") fail the digits check.
      std::string_view rest(file);
      rest.remove_prefix(prefix.size());
      const bool tmp_suffix =
          rest.size() > 8 && rest.substr(rest.size() - 8) == ".cmp.tmp";
      const bool cmp_suffix =
          rest.size() > 4 && rest.substr(rest.size() - 4) == ".cmp";
      const bool wal_suffix =
          rest.size() > 4 && rest.substr(rest.size() - 4) == ".wal";
      if (tmp_suffix && AllDigits(rest.substr(0, rest.size() - 8))) {
        stale = true;
      } else if (cmp_suffix && AllDigits(rest.substr(0, rest.size() - 4))) {
        stale = std::find(referenced.begin(), referenced.end(), file) ==
                referenced.end();
      } else if (wal_suffix && AllDigits(rest.substr(0, rest.size() - 4))) {
        // WAL segments below the manifest's floor are fully covered by
        // manifest-durable components (a crash hit between the manifest
        // rewrite and the segment unlink). Segments at or above the floor
        // may hold the only copy of acknowledged writes — never touched.
        const uint64_t seq = std::strtoull(
            std::string(rest.substr(0, rest.size() - 4)).c_str(), nullptr,
            10);
        stale = seq < wal_floor;
      }
    }
    if (stale) victims.push_back(dir + "/" + file);
  }
  for (const std::string& path : victims) {
    LSMCOL_RETURN_NOT_OK(RemoveFileIfExists(path, fs));
    if (removed != nullptr) ++*removed;
  }
  return Status::OK();
}

}  // namespace lsmcol
