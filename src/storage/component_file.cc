#include "src/storage/component_file.h"

#include <algorithm>

namespace lsmcol {
namespace {

// "LSMCOLF2": F1 -> F2 when APAX leaves gained the per-chunk stats table
// (zone filters). Old components are cleanly rejected at open instead of
// being mis-parsed; this repo regenerates its datasets, so there is no
// migration path — recovery surfaces Corruption and the caller rebuilds.
// "LSMCOLF3": F2 -> F3 when pages gained the checksum trailer. F2 files
// stay readable (mixed-version datasets are routine after an upgrade);
// Open sniffs the footer to pick the mode.
constexpr uint64_t kFooterMagicV2 = 0x4C534D434F4C4632ULL;
constexpr uint64_t kFooterMagicV3 = 0x4C534D434F4C4633ULL;

}  // namespace

Result<std::unique_ptr<ComponentWriter>> ComponentWriter::Create(
    const std::string& path, BufferCache* cache, size_t page_size,
    uint32_t format_version, FileSystem* fs) {
  if (format_version != kComponentFormatLegacy &&
      format_version != kComponentFormatChecksummed) {
    return Status::InvalidArgument("unsupported component format version " +
                                   std::to_string(format_version));
  }
  const bool checksummed = format_version == kComponentFormatChecksummed;
  LSMCOL_ASSIGN_OR_RETURN(auto file,
                          PageFile::Create(path, page_size, checksummed, fs));
  return std::unique_ptr<ComponentWriter>(
      new ComponentWriter(path, std::move(file), cache));
}

ComponentWriter::~ComponentWriter() {
  if (file_ != nullptr && cache_ != nullptr) cache_->Invalidate(*file_);
}

Status ComponentWriter::WriteBlob(Slice blob, uint64_t* first_page,
                                  uint32_t* page_count) {
  const size_t page_size = file_->page_size();
  *first_page = next_page_;
  size_t offset = 0;
  uint32_t pages = 0;
  while (offset < blob.size() || pages == 0) {
    size_t chunk = std::min(page_size, blob.size() - offset);
    LSMCOL_RETURN_NOT_OK(cache_->WriteThrough(
        *file_, next_page_, blob.SubSlice(offset, chunk)));
    offset += chunk;
    ++next_page_;
    ++pages;
  }
  *page_count = pages;
  return Status::OK();
}

Status ComponentWriter::AppendLeaf(Slice payload, int64_t min_key,
                                   int64_t max_key, uint32_t record_count) {
  LSMCOL_CHECK(!finished_);
  LeafEntry entry;
  entry.min_key = min_key;
  entry.max_key = max_key;
  entry.payload_size = payload.size();
  entry.record_count = record_count;
  LSMCOL_RETURN_NOT_OK(WriteBlob(payload, &entry.first_page,
                                 &entry.page_count));
  leaves_.push_back(entry);
  return Status::OK();
}

Status ComponentWriter::Finish(Slice metadata) {
  LSMCOL_CHECK(!finished_);
  finished_ = true;
  // Index blob.
  Buffer index;
  index.AppendVarint64(leaves_.size());
  for (const LeafEntry& leaf : leaves_) {
    index.AppendSignedVarint64(leaf.min_key);
    index.AppendSignedVarint64(leaf.max_key);
    index.AppendVarint64(leaf.first_page);
    index.AppendVarint64(leaf.page_count);
    index.AppendVarint64(leaf.payload_size);
    index.AppendVarint64(leaf.record_count);
  }
  uint64_t index_page = 0;
  uint32_t index_pages = 0;
  LSMCOL_RETURN_NOT_OK(WriteBlob(index.slice(), &index_page, &index_pages));
  uint64_t meta_page = 0;
  uint32_t meta_pages = 0;
  LSMCOL_RETURN_NOT_OK(WriteBlob(metadata, &meta_page, &meta_pages));
  // Footer page. The trailing validity byte is the paper's "validity bit"
  // (§2.1.1): it is only set once everything else is durable.
  Buffer footer;
  footer.AppendFixed64(file_->checksummed() ? kFooterMagicV3 : kFooterMagicV2);
  footer.AppendFixed64(index_page);
  footer.AppendFixed32(index_pages);
  footer.AppendFixed64(index.size());
  footer.AppendFixed64(meta_page);
  footer.AppendFixed32(meta_pages);
  footer.AppendFixed64(metadata.size());
  footer.AppendByte(1);  // valid
  LSMCOL_RETURN_NOT_OK(cache_->WriteThrough(*file_, next_page_, footer.slice()));
  ++next_page_;
  return file_->Sync();
}

Result<std::unique_ptr<ComponentReader>> ComponentReader::Open(
    const std::string& path, BufferCache* cache, size_t page_size,
    FileSystem* fs) {
  fs = ResolveFs(fs);
  uint64_t size = 0;
  {
    LSMCOL_ASSIGN_OR_RETURN(auto probe, fs->Open(path, /*writable=*/false));
    LSMCOL_ASSIGN_OR_RETURN(size, probe->Size());
  }
  if (size == 0) return Status::Corruption("empty component file: " + path);
  // Sniff the format from the file size and footer. A v3 (trailered)
  // file's size is a multiple of page_size + trailer; its footer page
  // must then verify and carry the F3 magic. Sizes can divide both ways
  // (lcm of the two page sizes), so a failed v3 attempt falls through to
  // the legacy parse — but a *verified* checksum failure is damage, and
  // is preferred over the legacy attempt's "bad magic" noise.
  const uint64_t physical_v3 = page_size + kPageTrailerBytes;
  Status v3_err;
  if (size % physical_v3 == 0) {
    auto attempt = OpenAs(path, cache, page_size, /*checksummed=*/true, fs);
    if (attempt.ok()) return attempt;
    v3_err = attempt.status();
    if (size % page_size != 0) return v3_err;
  }
  if (size % page_size == 0) {
    auto attempt = OpenAs(path, cache, page_size, /*checksummed=*/false, fs);
    if (attempt.ok()) return attempt;
    if (v3_err.IsChecksumMismatch()) return v3_err;
    return attempt.status();
  }
  if (!v3_err.ok()) return v3_err;
  return Status::Corruption("file size not a multiple of page size: " + path);
}

Result<std::unique_ptr<ComponentReader>> ComponentReader::OpenAs(
    const std::string& path, BufferCache* cache, size_t page_size,
    bool checksummed, FileSystem* fs) {
  LSMCOL_ASSIGN_OR_RETURN(auto file,
                          PageFile::Open(path, page_size, checksummed, fs));
  if (file->page_count() == 0) {
    return Status::Corruption("empty component file: " + path);
  }
  std::unique_ptr<ComponentReader> reader(
      new ComponentReader(std::move(file), cache, fs));
  // Footer.
  Buffer footer_page;
  LSMCOL_RETURN_NOT_OK(
      reader->file_->ReadPage(reader->file_->page_count() - 1, &footer_page));
  BufferReader fr(footer_page.slice());
  uint64_t magic = 0, index_page = 0, index_size = 0, meta_page = 0,
           meta_size = 0;
  uint32_t index_pages = 0, meta_pages = 0;
  uint8_t valid = 0;
  LSMCOL_RETURN_NOT_OK(fr.ReadFixed64(&magic));
  if (magic != (checksummed ? kFooterMagicV3 : kFooterMagicV2)) {
    return Status::Corruption("bad component magic: " + path);
  }
  LSMCOL_RETURN_NOT_OK(fr.ReadFixed64(&index_page));
  LSMCOL_RETURN_NOT_OK(fr.ReadFixed32(&index_pages));
  LSMCOL_RETURN_NOT_OK(fr.ReadFixed64(&index_size));
  LSMCOL_RETURN_NOT_OK(fr.ReadFixed64(&meta_page));
  LSMCOL_RETURN_NOT_OK(fr.ReadFixed32(&meta_pages));
  LSMCOL_RETURN_NOT_OK(fr.ReadFixed64(&meta_size));
  LSMCOL_RETURN_NOT_OK(fr.ReadByte(&valid));
  if (valid != 1) {
    return Status::Corruption("component not marked valid: " + path);
  }

  auto read_blob = [&](uint64_t first, uint32_t pages, uint64_t size,
                       Buffer* out) -> Status {
    out->clear();
    Buffer page;
    for (uint32_t i = 0; i < pages; ++i) {
      LSMCOL_RETURN_NOT_OK(reader->file_->ReadPage(first + i, &page));
      size_t take = std::min<uint64_t>(reader->file_->page_size(),
                                       size - out->size());
      out->Append(page.data(), take);
      if (out->size() >= size) break;
    }
    if (out->size() != size) return Status::Corruption("short blob");
    return Status::OK();
  };

  Buffer index_blob;
  LSMCOL_RETURN_NOT_OK(read_blob(index_page, index_pages, index_size,
                                 &index_blob));
  BufferReader ir(index_blob.slice());
  uint64_t leaf_count = 0;
  LSMCOL_RETURN_NOT_OK(ir.ReadVarint64(&leaf_count));
  reader->leaves_.resize(leaf_count);
  for (uint64_t i = 0; i < leaf_count; ++i) {
    LeafEntry& leaf = reader->leaves_[i];
    uint64_t tmp = 0;
    LSMCOL_RETURN_NOT_OK(ir.ReadSignedVarint64(&leaf.min_key));
    LSMCOL_RETURN_NOT_OK(ir.ReadSignedVarint64(&leaf.max_key));
    LSMCOL_RETURN_NOT_OK(ir.ReadVarint64(&leaf.first_page));
    LSMCOL_RETURN_NOT_OK(ir.ReadVarint64(&tmp));
    leaf.page_count = static_cast<uint32_t>(tmp);
    LSMCOL_RETURN_NOT_OK(ir.ReadVarint64(&leaf.payload_size));
    LSMCOL_RETURN_NOT_OK(ir.ReadVarint64(&tmp));
    leaf.record_count = static_cast<uint32_t>(tmp);
  }
  LSMCOL_RETURN_NOT_OK(read_blob(meta_page, meta_pages, meta_size,
                                 &reader->metadata_));
  return reader;
}

ComponentReader::~ComponentReader() {
  if (!destroyed_ && cache_ != nullptr) cache_->Invalidate(*file_);
}

Status ComponentReader::ReadLeaf(size_t leaf_index, Buffer* out) const {
  const LeafEntry& leaf = leaves_[leaf_index];
  return ReadLeafRange(leaf_index, 0, leaf.payload_size, out);
}

Status ComponentReader::ReadLeafRange(size_t leaf_index, uint64_t offset,
                                      uint64_t size, Buffer* out) const {
  LSMCOL_CHECK(leaf_index < leaves_.size());
  const LeafEntry& leaf = leaves_[leaf_index];
  if (offset + size > leaf.payload_size) {
    return Status::OutOfRange("leaf range out of bounds");
  }
  out->clear();
  if (size == 0) return Status::OK();
  const size_t page_size = file_->page_size();
  const uint64_t first = leaf.first_page + offset / page_size;
  const uint64_t last = leaf.first_page + (offset + size - 1) / page_size;
  uint64_t skip = offset % page_size;
  for (uint64_t p = first; p <= last; ++p) {
    LSMCOL_ASSIGN_OR_RETURN(PageHandle handle, cache_->Fetch(*file_, p));
    Slice data = handle.data();
    const uint64_t want = size - out->size();
    const uint64_t avail = data.size() - skip;
    const uint64_t take = std::min(want, avail);
    out->Append(data.data() + skip, take);
    skip = 0;
  }
  return Status::OK();
}

Status ComponentReader::ReadLeafUncached(size_t leaf_index,
                                         Buffer* out) const {
  LSMCOL_CHECK(leaf_index < leaves_.size());
  const LeafEntry& leaf = leaves_[leaf_index];
  out->clear();
  if (leaf.payload_size == 0) return Status::OK();
  Buffer page;
  for (uint32_t i = 0; i < leaf.page_count; ++i) {
    LSMCOL_RETURN_NOT_OK(file_->ReadPage(leaf.first_page + i, &page));
    const uint64_t take =
        std::min<uint64_t>(page.size(), leaf.payload_size - out->size());
    out->Append(page.data(), take);
    if (out->size() >= leaf.payload_size) break;
  }
  if (out->size() != leaf.payload_size) {
    return Status::Corruption("short leaf payload: " + file_->path());
  }
  return Status::OK();
}

size_t ComponentReader::LowerBoundLeaf(int64_t key) const {
  size_t lo = 0, hi = leaves_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (leaves_[mid].max_key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status ComponentReader::Destroy() {
  if (destroyed_) return Status::OK();
  cache_->Invalidate(*file_);
  std::string path = file_->path();
  file_.reset();
  destroyed_ = true;
  return RemoveFileIfExists(path, fs_);
}

}  // namespace lsmcol
