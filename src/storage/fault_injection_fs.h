// FaultInjectionFs: a FileSystem wrapper that injects the failures real
// storage produces, deterministically.
//
// Four fault families, combinable per path-substring and per operation:
//
//  * transient/permanent errors — FaultRule{op, error_code, fail_after,
//    max_failures}: the Nth..(N+K)th matching call fails with the given
//    errno (EIO, ENOSPC, ...) before touching the base filesystem;
//
//  * byte quotas — SetByteQuota(n): cumulative written bytes beyond n
//    fail with ENOSPC (all-or-nothing per write; the base file is not
//    touched), simulating a volume filling up mid-flush/merge;
//
//  * bit flips — FaultRule{flip_bit = true}: the matching write goes
//    through with a single bit inverted, simulating silent media
//    corruption the page checksums must catch; with op = kRead the
//    write path stays clean and the *returned* bytes are corrupted
//    instead (latent media decay: good data rots at rest and is only
//    discovered when re-read, e.g. by the scrubber);
//
//  * simulated crashes — with SetTrackUnsynced(true) every file mutation
//    is tracked against the content at its last successful Sync();
//    DropUnsyncedWrites() rewinds every file to that durable image
//    (files never synced since creation are removed), and
//    CopySyncedSnapshot() materializes the post-crash disk state in a
//    second directory so a live dataset keeps running while the crash
//    image is reopened and verified beside it.
//
// Used by tests/fault_test.cc, tests/torture_test.cc, and the rewritten
// error-path tests in tests/wal_test.cc / tests/storage_test.cc (which
// previously forced EISDIR by planting directories at target paths).
//
// Thread-safe; the internal mutex ranks kFaultFs so injection checks may
// run during I/O issued under any subsystem lock.

#ifndef LSMCOL_STORAGE_FAULT_INJECTION_FS_H_
#define LSMCOL_STORAGE_FAULT_INJECTION_FS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/storage/filesystem.h"

namespace lsmcol {

/// Operation classes a FaultRule can target.
enum class FaultOp : uint8_t {
  kCreate,
  kOpen,
  kRead,
  kWrite,  ///< WriteAt, Append, and (for quota purposes) all data writes
  kSync,
  kRename,
  kRemove,
  kTruncate,
  kList,
  kSyncDir,
  kCreateDirs,
};

/// One injection rule. A call matches when its operation equals `op` and
/// its path contains `path_substring` (empty matches every path; Rename
/// matches on either side). The first `fail_after` matching calls pass
/// through, then up to `max_failures` calls fail (or flip a bit), then
/// the rule goes inert.
struct FaultRule {
  std::string path_substring;
  FaultOp op = FaultOp::kWrite;
  /// errno reported by the injected Status (kIOError), e.g. EIO, ENOSPC.
  int error_code = 0;  // 0 -> EIO
  int fail_after = 0;
  int max_failures = -1;  ///< -1 = unlimited
  /// Instead of failing, let the operation proceed with one bit
  /// inverted. Meaningful for kWrite (corrupt the bytes as stored) and
  /// kRead (store clean bytes, corrupt what the reader sees — latent
  /// media decay).
  bool flip_bit = false;
};

class FaultInjectionFs final : public FileSystem {
 public:
  /// Wraps `base` (nullptr -> DefaultFileSystem()). The wrapper does not
  /// own `base`.
  explicit FaultInjectionFs(FileSystem* base = nullptr);
  ~FaultInjectionFs() override;

  // ---- fault programming ------------------------------------------------

  void AddRule(const FaultRule& rule) LSMCOL_EXCLUDES(mu_);
  void ClearRules() LSMCOL_EXCLUDES(mu_);

  /// Writes beyond `bytes` more cumulative bytes fail with ENOSPC.
  void SetByteQuota(uint64_t bytes) LSMCOL_EXCLUDES(mu_);
  void ClearByteQuota() LSMCOL_EXCLUDES(mu_);

  /// Start (true) or stop (false) tracking unsynced writes for the crash
  /// simulation. Tracking starts empty: files already on disk count as
  /// fully synced until first mutated through this wrapper.
  void SetTrackUnsynced(bool on) LSMCOL_EXCLUDES(mu_);

  /// Simulated crash: rewind every tracked file to its last-synced
  /// content; files never synced since creation are removed. The live
  /// FsFile handles remain open (as after a real crash the *next* process
  /// sees the rewound state; tests reopen the dataset afterwards).
  Status DropUnsyncedWrites() LSMCOL_EXCLUDES(mu_);

  /// Write the crash image of `src_dir` into `dst_dir` (created if
  /// missing): every regular file's last-synced content; files never
  /// synced are omitted. The live directory is not disturbed, so a
  /// running dataset can keep writing while the snapshot is verified.
  Status CopySyncedSnapshot(const std::string& src_dir,
                            const std::string& dst_dir) LSMCOL_EXCLUDES(mu_);

  // ---- observability ----------------------------------------------------

  uint64_t injected_errors() const LSMCOL_EXCLUDES(mu_);
  uint64_t flipped_bits() const LSMCOL_EXCLUDES(mu_);
  uint64_t bytes_written() const LSMCOL_EXCLUDES(mu_);

  // ---- FileSystem -------------------------------------------------------

  Result<std::unique_ptr<FsFile>> Create(const std::string& path) override;
  Result<std::unique_ptr<FsFile>> Open(const std::string& path,
                                       bool writable) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Status CreateDirs(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;

 private:
  friend class FaultFsFile;

  /// Durable-content tracking for one path (crash simulation).
  struct FileState {
    /// Content at the last successful Sync(); meaningless until
    /// synced_exists.
    std::string synced_image;
    /// False while the file has never been synced since creation: a
    /// crash removes it entirely.
    bool synced_exists = false;
  };

  struct RuleState {
    FaultRule rule;
    int hits = 0;      ///< matching calls seen
    int failures = 0;  ///< injections performed
  };

  /// Injection decision for one call. OK -> proceed against base.
  Status CheckFault(FaultOp op, const std::string& path)
      LSMCOL_EXCLUDES(mu_);
  /// kWrite flavor: also applies the byte quota and, for flip_bit rules,
  /// corrupts `*data` in place (returns OK in that case).
  Status CheckWrite(const std::string& path, std::string* data)
      LSMCOL_EXCLUDES(mu_);
  /// kRead flip flavor, applied *after* the base read succeeded: flips
  /// one bit of `*out` per matching kRead flip rule. Error-injecting
  /// kRead rules are handled by CheckFault before the read.
  void CheckReadFlip(const std::string& path, Buffer* out)
      LSMCOL_EXCLUDES(mu_);

  Status InjectLocked(RuleState* rs, FaultOp op, const std::string& path)
      LSMCOL_REQUIRES(mu_);

  // Crash-simulation bookkeeping, called by FaultFsFile / namespace ops.
  void NoteCreated(const std::string& path) LSMCOL_EXCLUDES(mu_);
  void NoteOpenedWritable(const std::string& path) LSMCOL_EXCLUDES(mu_);
  Status NoteSynced(const std::string& path) LSMCOL_EXCLUDES(mu_);

  /// Read a file's full current content via the base filesystem.
  Status ReadWhole(const std::string& path, std::string* out);

  FileSystem* const base_;

  mutable Mutex mu_{MutexRank::kFaultFs};
  std::vector<RuleState> rules_ LSMCOL_GUARDED_BY(mu_);
  bool quota_enabled_ LSMCOL_GUARDED_BY(mu_) = false;
  uint64_t quota_remaining_ LSMCOL_GUARDED_BY(mu_) = 0;
  bool track_unsynced_ LSMCOL_GUARDED_BY(mu_) = false;
  std::map<std::string, FileState> tracked_ LSMCOL_GUARDED_BY(mu_);
  uint64_t injected_errors_ LSMCOL_GUARDED_BY(mu_) = 0;
  uint64_t flipped_bits_ LSMCOL_GUARDED_BY(mu_) = 0;
  uint64_t bytes_written_ LSMCOL_GUARDED_BY(mu_) = 0;
};

}  // namespace lsmcol

#endif  // LSMCOL_STORAGE_FAULT_INJECTION_FS_H_
