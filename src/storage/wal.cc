#include "src/storage/wal.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "src/common/buffer.h"
#include "src/common/logging.h"
#include "src/storage/file.h"

namespace lsmcol {
namespace {

// Segment header: magic + version + segment sequence + header checksum.
// "WLSM" on disk (little-endian fixed32 of 0x4D534C57).
constexpr uint32_t kWalMagic = 0x4D534C57u;
constexpr uint8_t kWalVersion = 1;
// Record frame: fixed32 payload length + fixed32 FNV-1a(payload) + payload.
constexpr size_t kFrameHeaderBytes = 8;
// A frame longer than this is treated as garbage, not a real length; it
// bounds the allocation replay would otherwise attempt on a torn length
// field. Generous: rows are page-sized at most.
constexpr uint32_t kMaxRecordBytes = 1u << 30;

constexpr uint8_t kRecordInsert = 1;
constexpr uint8_t kRecordDelete = 2;

std::string EncodeSegmentHeader(uint64_t seq) {
  Buffer header;
  header.AppendFixed32(kWalMagic);
  header.AppendByte(kWalVersion);
  header.AppendVarint64(seq);
  header.AppendFixed32(Fnv1a32(header.slice()));
  return std::string(header.data(), header.size());
}

// Frame one record into `out`; returns the record's framed size.
size_t EncodeRecord(std::string* out, uint64_t lsn, bool anti_matter,
                    int64_t key, Slice row) {
  Buffer payload;
  payload.AppendVarint64(lsn);
  payload.AppendByte(anti_matter ? kRecordDelete : kRecordInsert);
  payload.AppendSignedVarint64(key);
  payload.Append(row);
  char frame_header[kFrameHeaderBytes];
  EncodeFixed32(frame_header, static_cast<uint32_t>(payload.size()));
  EncodeFixed32(frame_header + 4, Fnv1a32(payload.slice()));
  out->append(frame_header, kFrameHeaderBytes);
  out->append(payload.data(), payload.size());
  return kFrameHeaderBytes + payload.size();
}

/// `<name>_<digits>.wal` files in `dir`, as (sequence, path), ascending.
/// The digits check keeps prefix-sharing dataset names ("a" vs "a_b")
/// apart, mirroring RemoveStaleDatasetFiles.
Result<std::vector<std::pair<uint64_t, std::string>>> ListWalSegments(
    const std::string& dir, const std::string& name, FileSystem* fs) {
  const std::string prefix = name + "_";
  const std::string suffix = ".wal";
  std::vector<std::pair<uint64_t, std::string>> segments;
  LSMCOL_ASSIGN_OR_RETURN(auto names, fs->ListDir(dir));
  for (const std::string& file : names) {
    if (file.size() <= prefix.size() + suffix.size()) continue;
    if (file.compare(0, prefix.size(), prefix) != 0) continue;
    if (file.compare(file.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    const std::string digits = file.substr(
        prefix.size(), file.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    segments.emplace_back(std::strtoull(digits.c_str(), nullptr, 10),
                          dir + "/" + file);
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

Result<std::string> ReadWholeFile(const std::string& path, FileSystem* fs) {
  LSMCOL_ASSIGN_OR_RETURN(auto file, fs->Open(path, /*writable=*/false));
  std::string data;
  Buffer chunk;
  uint64_t offset = 0;
  for (;;) {
    LSMCOL_RETURN_NOT_OK(file->ReadAt(offset, 1 << 16, &chunk));
    if (chunk.size() == 0) break;
    data.append(chunk.data(), chunk.size());
    offset += chunk.size();
  }
  return data;
}

/// Physically cut `path` down to `size` bytes and make the cut durable.
Status TruncateFile(const std::string& path, uint64_t size, FileSystem* fs) {
  LSMCOL_ASSIGN_OR_RETURN(auto file, fs->Open(path, /*writable=*/true));
  LSMCOL_RETURN_NOT_OK(file->Truncate(size));
  return file->Sync();
}

/// Parse and validate a segment header. On success advances `reader` past
/// the header. Corruption statuses here mean "torn or garbage header" —
/// the caller decides whether that is tolerable (newest segment) or fatal.
Status CheckSegmentHeader(BufferReader* reader, uint64_t want_seq,
                          const std::string& path) {
  const Slice start = reader->rest();
  uint32_t magic = 0;
  LSMCOL_RETURN_NOT_OK(reader->ReadFixed32(&magic));
  if (magic != kWalMagic) {
    return Status::Corruption("bad WAL magic in " + path);
  }
  uint8_t version = 0;
  LSMCOL_RETURN_NOT_OK(reader->ReadByte(&version));
  if (version != kWalVersion) {
    return Status::Corruption("unsupported WAL version " +
                              std::to_string(version) + " in " + path);
  }
  uint64_t seq = 0;
  LSMCOL_RETURN_NOT_OK(reader->ReadVarint64(&seq));
  const size_t header_bytes = start.size() - reader->rest().size();
  uint32_t want_crc = 0;
  LSMCOL_RETURN_NOT_OK(reader->ReadFixed32(&want_crc));
  if (Fnv1a32(start.SubSlice(0, header_bytes)) != want_crc) {
    return Status::Corruption("WAL header checksum mismatch in " + path);
  }
  if (seq != want_seq) {
    return Status::Corruption("WAL segment " + path + " claims sequence " +
                              std::to_string(seq) + ", file name says " +
                              std::to_string(want_seq));
  }
  return Status::OK();
}

}  // namespace

std::string WalSegmentPath(const std::string& dir, const std::string& name,
                           uint64_t seq) {
  return dir + "/" + name + "_" + std::to_string(seq) + ".wal";
}

Result<WalReplayResult> ReplayWalSegments(
    const std::string& dir, const std::string& name, uint64_t floor,
    const std::function<Status(const WalReplayEntry&)>& apply,
    FileSystem* fs) {
  fs = ResolveFs(fs);
  LSMCOL_ASSIGN_OR_RETURN(auto segments, ListWalSegments(dir, name, fs));
  WalReplayResult result;
  result.next_segment_seq = std::max<uint64_t>(floor, 1);

  // Segments below the floor are fully covered by manifest-durable
  // components (the crash hit between the manifest rewrite and the
  // unlink); finish the delete now.
  size_t live_begin = 0;
  while (live_begin < segments.size() &&
         segments[live_begin].first < floor) {
    LSMCOL_RETURN_NOT_OK(RemoveFileIfExists(segments[live_begin].second, fs));
    ++live_begin;
  }

  uint64_t last_lsn = 0;
  for (size_t i = live_begin; i < segments.size(); ++i) {
    const auto& [seq, path] = segments[i];
    const bool newest = (i + 1 == segments.size());
    LSMCOL_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path, fs));
    BufferReader reader{Slice(data)};

    Status header_status = CheckSegmentHeader(&reader, seq, path);
    if (!header_status.ok()) {
      if (newest && header_status.IsCorruption()) {
        // A crash during rotation can leave the new segment with a torn
        // header; nothing in it was ever acknowledged (records are only
        // accepted after the header is durable), so drop the file and
        // reuse its sequence.
        LSMCOL_RETURN_NOT_OK(RemoveFileIfExists(path, fs));
        result.truncated_bytes += data.size();
        result.next_segment_seq = seq;
        result.next_lsn = last_lsn + 1;
        return result;
      }
      return header_status;
    }

    while (!reader.empty()) {
      const size_t frame_offset = data.size() - reader.remaining();
      // Decode one frame; any failure below falls through to the torn-
      // tail handling.
      Status frame_status;
      WalReplayEntry entry;
      do {
        uint32_t payload_len = 0, want_crc = 0;
        if (reader.remaining() < kFrameHeaderBytes) {
          frame_status = Status::Corruption("short WAL frame header");
          break;
        }
        frame_status = reader.ReadFixed32(&payload_len);
        if (!frame_status.ok()) break;
        frame_status = reader.ReadFixed32(&want_crc);
        if (!frame_status.ok()) break;
        if (payload_len > kMaxRecordBytes ||
            payload_len > reader.remaining()) {
          frame_status = Status::Corruption("short WAL frame payload");
          break;
        }
        Slice payload;
        frame_status = reader.ReadBytes(payload_len, &payload);
        if (!frame_status.ok()) break;
        if (Fnv1a32(payload) != want_crc) {
          frame_status = Status::Corruption("WAL record checksum mismatch");
          break;
        }
        BufferReader payload_reader(payload);
        frame_status = payload_reader.ReadVarint64(&entry.lsn);
        if (!frame_status.ok()) break;
        uint8_t type = 0;
        frame_status = payload_reader.ReadByte(&type);
        if (!frame_status.ok()) break;
        if (type != kRecordInsert && type != kRecordDelete) {
          frame_status = Status::Corruption("unknown WAL record type " +
                                            std::to_string(type));
          break;
        }
        entry.anti_matter = (type == kRecordDelete);
        frame_status = payload_reader.ReadSignedVarint64(&entry.key);
        if (!frame_status.ok()) break;
        entry.row = payload_reader.rest();
      } while (false);

      if (!frame_status.ok()) {
        if (!newest) {
          return Status::Corruption("corrupt WAL record in non-final "
                                    "segment " +
                                    path + ": " + frame_status.message());
        }
        // Torn tail of the newest segment: everything from this frame on
        // was mid-write at the crash and never acknowledged. Cut it off
        // so the file is clean for future appends/replays.
        result.truncated_bytes += data.size() - frame_offset;
        LSMCOL_RETURN_NOT_OK(TruncateFile(path, frame_offset, fs));
        break;
      }
      if (entry.lsn <= last_lsn) {
        // LSNs are assigned monotonically across segments; a regression
        // is corruption no checksum can catch.
        return Status::Corruption(
            "WAL LSN regression in " + path + ": " +
            std::to_string(entry.lsn) + " after " + std::to_string(last_lsn));
      }
      last_lsn = entry.lsn;
      LSMCOL_RETURN_NOT_OK(apply(entry));
      ++result.records;
    }
    result.next_segment_seq = seq + 1;
  }
  result.next_lsn = last_lsn + 1;
  return result;
}

Status CopyWalSegmentPrefix(const std::string& src, const std::string& dst,
                            uint64_t seq, uint64_t cut_lsn, uint64_t* frames,
                            FileSystem* fs) {
  fs = ResolveFs(fs);
  if (frames != nullptr) *frames = 0;
  LSMCOL_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(src, fs));
  BufferReader reader{Slice(data)};
  LSMCOL_RETURN_NOT_OK(CheckSegmentHeader(&reader, seq, src));
  // Walk frames, extending the copied prefix over every intact frame
  // with lsn <= cut_lsn. The first bad or beyond-the-cut frame ends the
  // prefix (see the header contract: nothing acknowledged lives there).
  size_t prefix_end = data.size() - reader.remaining();
  uint64_t copied = 0;
  while (!reader.empty()) {
    uint32_t payload_len = 0, want_crc = 0;
    if (reader.remaining() < kFrameHeaderBytes) break;
    if (!reader.ReadFixed32(&payload_len).ok()) break;
    if (!reader.ReadFixed32(&want_crc).ok()) break;
    if (payload_len > kMaxRecordBytes || payload_len > reader.remaining()) {
      break;
    }
    Slice payload;
    if (!reader.ReadBytes(payload_len, &payload).ok()) break;
    if (Fnv1a32(payload) != want_crc) break;
    BufferReader payload_reader(payload);
    uint64_t lsn = 0;
    if (!payload_reader.ReadVarint64(&lsn).ok()) break;
    if (lsn > cut_lsn) break;
    prefix_end = data.size() - reader.remaining();
    ++copied;
  }
  Status st;
  {
    LSMCOL_ASSIGN_OR_RETURN(auto out, fs->Create(dst));
    st = out->WriteAt(0, Slice(data.data(), prefix_end));
    if (st.ok()) st = out->Sync();
  }
  if (!st.ok()) {
    (void)RemoveFileIfExists(dst, fs);
    return st;
  }
  if (frames != nullptr) *frames = copied;
  return Status::OK();
}

WriteAheadLog::WriteAheadLog(std::string dir, std::string name,
                             const WalOptions& options, FileSystem* fs)
    : dir_(std::move(dir)),
      name_(std::move(name)),
      options_(options),
      fs_(fs) {}

WriteAheadLog::~WriteAheadLog() {
  MutexLock lk(&mu_);
  if (file_ != nullptr) {
    // Best-effort: persist whatever was appended but never synced (the
    // writers were not acknowledged, so losing it would be legal — but a
    // clean shutdown should not lose anything at all).
    if (!pending_.empty() && io_status_.ok()) {
      if (file_->Append(Slice(pending_)).ok()) {
        (void)file_->Sync();
      }
    }
    file_.reset();
  }
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& dir, const std::string& name,
    const WalOptions& options, uint64_t next_segment_seq,
    uint64_t next_lsn, FileSystem* fs) {
  LSMCOL_CHECK(next_segment_seq >= 1);
  LSMCOL_CHECK(next_lsn >= 1);
  std::unique_ptr<WriteAheadLog> wal(
      new WriteAheadLog(dir, name, options, ResolveFs(fs)));
  {
    // No concurrency yet (the log is unpublished), but the guarded
    // fields and CreateActiveSegmentLocked demand the capability.
    MutexLock lk(&wal->mu_);
    wal->active_segment_ = next_segment_seq;
    wal->next_lsn_ = next_lsn;
    wal->appended_lsn_ = next_lsn - 1;
    wal->durable_lsn_ = next_lsn - 1;
    LSMCOL_RETURN_NOT_OK(wal->CreateActiveSegmentLocked());
    LSMCOL_RETURN_NOT_OK(wal->file_->Sync());
  }
  LSMCOL_RETURN_NOT_OK(SyncDir(dir, wal->fs_));
  return wal;
}

Status WriteAheadLog::CreateActiveSegmentLocked() {
  const std::string path = WalSegmentPath(dir_, name_, active_segment_);
  LSMCOL_ASSIGN_OR_RETURN(auto file, fs_->Create(path));
  const std::string header = EncodeSegmentHeader(active_segment_);
  LSMCOL_RETURN_NOT_OK(file->Append(Slice(header)));
  file_ = std::move(file);
  synced_bytes_ = header.size();
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::Append(bool anti_matter, int64_t key,
                                       Slice row) {
  MutexLock lk(&mu_);
  if (!io_status_.ok()) return io_status_;
  const uint64_t lsn = next_lsn_++;
  EncodeRecord(&pending_, lsn, anti_matter, key, row);
  pending_frames_.emplace_back(lsn, pending_.size());
  appended_lsn_ = lsn;
  ++stats_.appends;
  // A lingering group-commit leader waits for the batch to grow; tell it.
  if (pending_.size() >= options_.max_group_bytes) cv_.NotifyAll();
  return lsn;
}

Status WriteAheadLog::Sync(uint64_t lsn) {
  MutexLock lk(&mu_);
  for (;;) {
    if (!io_status_.ok()) return io_status_;
    // Group mode: a concurrent leader's fsync that covered our LSN made
    // us durable for free — the whole point. Sync-per-write mode never
    // takes this exit: its contract is one fsync per acknowledged write
    // (the ablation baseline), so a writer whose bytes a sequentially
    // earlier fsync already covered still pays its own (empty) fsync.
    if (options_.group_commit && durable_lsn_ >= lsn) return Status::OK();
    if (sync_in_flight_) {
      // A leader's fsync is in flight; ride along (it may already cover
      // our LSN) or retry leadership once it finishes.
      cv_.Wait(&mu_);
      continue;
    }

    // We are the leader for this group.
    sync_in_flight_ = true;
    if (options_.group_commit) {
      // One scheduling quantum for writers that are mid-encode to land
      // their append before the cut. Unlike a timed linger this costs
      // nothing when no other writer is runnable (yield returns
      // immediately), yet on a busy single core it is the difference
      // between 2-3 record batches and full-concurrency ones.
      lk.Unlock();
      std::this_thread::yield();
      lk.Lock();
      if (!io_status_.ok()) {
        sync_in_flight_ = false;
        cv_.NotifyAll();
        return io_status_;
      }
    }
    if (options_.group_commit && options_.group_window_us > 0) {
      // Linger so concurrent writers can join the batch — the whole point
      // of group commit: their records ride on our single fsync.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.group_window_us);
      while (pending_.size() < options_.max_group_bytes && io_status_.ok() &&
             cv_.WaitUntil(&mu_, deadline) != std::cv_status::timeout) {
      }
      if (!io_status_.ok()) {  // a concurrent Rotate failed while we slept
        sync_in_flight_ = false;
        cv_.NotifyAll();
        return io_status_;
      }
    }

    // Cut the batch: everything pending in group mode, only our own
    // prefix in sync-per-write mode (each write pays its own fsync — the
    // degenerate case the ablation baselines against).
    uint64_t target_lsn = durable_lsn_;
    size_t cut = 0;
    size_t frames = 0;
    while (frames < pending_frames_.size() &&
           (options_.group_commit || pending_frames_[frames].first <= lsn)) {
      target_lsn = pending_frames_[frames].first;
      cut = pending_frames_[frames].second;
      ++frames;
    }
    LSMCOL_CHECK(target_lsn >= lsn);  // our own record must be in the cut
    std::string batch = pending_.substr(0, cut);
    pending_.erase(0, cut);
    pending_frames_.erase(pending_frames_.begin(),
                          pending_frames_.begin() + frames);
    for (auto& frame : pending_frames_) frame.second -= cut;

    // Snapshot the write target before dropping mu_: sync_in_flight_
    // blocks rotation, so the file/segment cannot change under the
    // leader, but reading them unlocked would still be a (benign) race.
    FsFile* const file = file_.get();

    lk.Unlock();
    uint64_t retries = 0, backoff_micros = 0;
    Status st = WriteAndSync(file, batch, &retries, &backoff_micros);
    lk.Lock();

    sync_in_flight_ = false;
    stats_.io_retries += retries;
    stats_.retry_backoff_micros += backoff_micros;
    if (st.ok()) {
      durable_lsn_ = target_lsn;
      synced_bytes_ += batch.size();
      ++stats_.syncs;
      stats_.bytes += batch.size();
      stats_.group_entries_max = std::max<uint64_t>(
          stats_.group_entries_max, frames);
    } else {
      // Fail closed: the tail of the log is in an unknown state, so no
      // later append may be acknowledged either.
      io_status_ = st;
    }
    cv_.NotifyAll();
    return st;
  }
}

Status WriteAheadLog::WriteAndSync(FsFile* file, const std::string& batch,
                                   uint64_t* retries,
                                   uint64_t* backoff_micros) {
  // Retry transient write errors, resuming at the exact byte where the
  // failed write stopped — a blind whole-batch retry would duplicate the
  // bytes that did land, corrupting the segment mid-stream.
  size_t written = 0;
  int attempt = 0;
  while (written < batch.size()) {
    size_t appended = 0;
    Status st = file->Append(
        Slice(batch.data() + written, batch.size() - written), &appended);
    written += appended;
    if (st.ok()) break;
    if (!st.IsIOError() || attempt >= options_.retry.max_retries) return st;
    const uint64_t delay = std::min(
        options_.retry.max_backoff_micros,
        options_.retry.initial_backoff_micros << attempt);
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
    ++*retries;
    *backoff_micros += delay;
    ++attempt;
  }
  // fsync is never retried: after a failed fsync the kernel may have
  // dropped the dirty pages, so "retry until it reports OK" can silently
  // lose the very bytes the caller is about to acknowledge. Fail closed.
  return file->Sync();
}

Result<uint64_t> WriteAheadLog::Rotate() {
  MutexLock lk(&mu_);
  while (sync_in_flight_) cv_.Wait(&mu_);
  if (!io_status_.ok()) {
    // Recovery point for a failed-closed log. Every writer whose record
    // sits in pending_ (or in the segment's unsynced tail) was refused,
    // so nothing here was acknowledged: discard the dead batch, cut the
    // segment back to its durable prefix, and seal it clean — replay
    // hard-errors on a torn frame in a non-final segment, so a wedged
    // segment must never be sealed with its tail in place. If the
    // cleanup itself fails the log stays closed and the caller retries
    // at the next rotation.
    pending_.clear();
    pending_frames_.clear();
    if (file_ == nullptr) {
      // The previous rotation died creating the active segment; retry
      // that instead (there is no old segment to clean).
      LSMCOL_RETURN_NOT_OK(CreateActiveSegmentLocked());
      LSMCOL_RETURN_NOT_OK(file_->Sync());
      LSMCOL_RETURN_NOT_OK(SyncDir(dir_, fs_));
    } else {
      LSMCOL_RETURN_NOT_OK(file_->Truncate(synced_bytes_));
      LSMCOL_RETURN_NOT_OK(file_->Sync());
    }
    io_status_ = Status::OK();
    cv_.NotifyAll();
  }
  // Flush the unsynced tail. Safe to do while holding mu_: rotation is a
  // seal point — the caller serializes it against appends.
  if (!pending_.empty()) {
    uint64_t retries = 0, backoff_micros = 0;
    Status st = WriteAndSync(file_.get(), pending_, &retries, &backoff_micros);
    stats_.io_retries += retries;
    stats_.retry_backoff_micros += backoff_micros;
    if (!st.ok()) {
      io_status_ = st;
      cv_.NotifyAll();
      return st;
    }
    durable_lsn_ = appended_lsn_;
    synced_bytes_ += pending_.size();
    ++stats_.syncs;
    stats_.bytes += pending_.size();
    pending_.clear();
    pending_frames_.clear();
    cv_.NotifyAll();
  }
  file_.reset();
  const uint64_t sealed = active_segment_++;
  Status st = CreateActiveSegmentLocked();
  if (st.ok()) st = file_->Sync();
  if (st.ok()) st = SyncDir(dir_, fs_);
  if (!st.ok()) {
    // Fail closed: with no (durable) active segment, later appends could
    // not be made durable either.
    io_status_ = st;
    cv_.NotifyAll();
    return st;
  }
  ++stats_.rotations;
  return sealed;
}

Status WriteAheadLog::DeleteSegmentsBelow(uint64_t floor) {
  LSMCOL_ASSIGN_OR_RETURN(auto segments, ListWalSegments(dir_, name_, fs_));
  for (const auto& [seq, path] : segments) {
    if (seq >= floor) break;
    LSMCOL_RETURN_NOT_OK(RemoveFileIfExists(path, fs_));
  }
  return Status::OK();
}

uint64_t WriteAheadLog::active_segment() const {
  MutexLock lk(&mu_);
  return active_segment_;
}

uint64_t WriteAheadLog::durable_lsn() const {
  MutexLock lk(&mu_);
  return durable_lsn_;
}

uint64_t WriteAheadLog::appended_lsn() const {
  MutexLock lk(&mu_);
  return appended_lsn_;
}

Status WriteAheadLog::io_status() const {
  MutexLock lk(&mu_);
  return io_status_;
}

WalStats WriteAheadLog::stats() const {
  MutexLock lk(&mu_);
  return stats_;
}

}  // namespace lsmcol
