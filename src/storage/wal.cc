#include "src/storage/wal.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

#include "src/common/buffer.h"
#include "src/common/logging.h"
#include "src/storage/file.h"

namespace lsmcol {
namespace {

// Segment header: magic + version + segment sequence + header checksum.
// "WLSM" on disk (little-endian fixed32 of 0x4D534C57).
constexpr uint32_t kWalMagic = 0x4D534C57u;
constexpr uint8_t kWalVersion = 1;
// Record frame: fixed32 payload length + fixed32 FNV-1a(payload) + payload.
constexpr size_t kFrameHeaderBytes = 8;
// A frame longer than this is treated as garbage, not a real length; it
// bounds the allocation replay would otherwise attempt on a torn length
// field. Generous: rows are page-sized at most.
constexpr uint32_t kMaxRecordBytes = 1u << 30;

constexpr uint8_t kRecordInsert = 1;
constexpr uint8_t kRecordDelete = 2;

// Same checksum the manifest uses (kept file-local there as well).
uint32_t Fnv1a32(Slice data) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 16777619u;
  }
  return h;
}

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IOError(op + " failed for " + path + ": " +
                         ErrnoMessage(errno));
}

Status WriteFully(int fd, const char* data, size_t n,
                  const std::string& path) {
  while (n > 0) {
    ssize_t written = ::write(fd, data, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    data += written;
    n -= static_cast<size_t>(written);
  }
  return Status::OK();
}

std::string EncodeSegmentHeader(uint64_t seq) {
  Buffer header;
  header.AppendFixed32(kWalMagic);
  header.AppendByte(kWalVersion);
  header.AppendVarint64(seq);
  header.AppendFixed32(Fnv1a32(header.slice()));
  return std::string(header.data(), header.size());
}

// Frame one record into `out`; returns the record's framed size.
size_t EncodeRecord(std::string* out, uint64_t lsn, bool anti_matter,
                    int64_t key, Slice row) {
  Buffer payload;
  payload.AppendVarint64(lsn);
  payload.AppendByte(anti_matter ? kRecordDelete : kRecordInsert);
  payload.AppendSignedVarint64(key);
  payload.Append(row);
  char frame_header[kFrameHeaderBytes];
  EncodeFixed32(frame_header, static_cast<uint32_t>(payload.size()));
  EncodeFixed32(frame_header + 4, Fnv1a32(payload.slice()));
  out->append(frame_header, kFrameHeaderBytes);
  out->append(payload.data(), payload.size());
  return kFrameHeaderBytes + payload.size();
}

/// `<name>_<digits>.wal` files in `dir`, as (sequence, path), ascending.
/// The digits check keeps prefix-sharing dataset names ("a" vs "a_b")
/// apart, mirroring RemoveStaleDatasetFiles.
Result<std::vector<std::pair<uint64_t, std::string>>> ListWalSegments(
    const std::string& dir, const std::string& name) {
  const std::string prefix = name + "_";
  const std::string suffix = ".wal";
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IOError("cannot list " + dir + ": " + ec.message());
  }
  for (const auto& entry : it) {
    const std::string file = entry.path().filename().string();
    if (file.size() <= prefix.size() + suffix.size()) continue;
    if (file.compare(0, prefix.size(), prefix) != 0) continue;
    if (file.compare(file.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    const std::string digits = file.substr(
        prefix.size(), file.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    segments.emplace_back(std::strtoull(digits.c_str(), nullptr, 10),
                          entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path);
  std::string data;
  char buf[1 << 16];
  for (;;) {
    ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("read", path);
    }
    if (got == 0) break;
    data.append(buf, static_cast<size_t>(got));
  }
  ::close(fd);
  return data;
}

/// Physically cut `path` down to `size` bytes and make the cut durable.
Status TruncateFile(const std::string& path, uint64_t size) {
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return ErrnoStatus("open(truncate)", path);
  Status st;
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    st = ErrnoStatus("ftruncate", path);
  } else if (::fsync(fd) != 0) {
    st = ErrnoStatus("fsync", path);
  }
  ::close(fd);
  return st;
}

/// Parse and validate a segment header. On success advances `reader` past
/// the header. Corruption statuses here mean "torn or garbage header" —
/// the caller decides whether that is tolerable (newest segment) or fatal.
Status CheckSegmentHeader(BufferReader* reader, uint64_t want_seq,
                          const std::string& path) {
  const Slice start = reader->rest();
  uint32_t magic = 0;
  LSMCOL_RETURN_NOT_OK(reader->ReadFixed32(&magic));
  if (magic != kWalMagic) {
    return Status::Corruption("bad WAL magic in " + path);
  }
  uint8_t version = 0;
  LSMCOL_RETURN_NOT_OK(reader->ReadByte(&version));
  if (version != kWalVersion) {
    return Status::Corruption("unsupported WAL version " +
                              std::to_string(version) + " in " + path);
  }
  uint64_t seq = 0;
  LSMCOL_RETURN_NOT_OK(reader->ReadVarint64(&seq));
  const size_t header_bytes = start.size() - reader->rest().size();
  uint32_t want_crc = 0;
  LSMCOL_RETURN_NOT_OK(reader->ReadFixed32(&want_crc));
  if (Fnv1a32(start.SubSlice(0, header_bytes)) != want_crc) {
    return Status::Corruption("WAL header checksum mismatch in " + path);
  }
  if (seq != want_seq) {
    return Status::Corruption("WAL segment " + path + " claims sequence " +
                              std::to_string(seq) + ", file name says " +
                              std::to_string(want_seq));
  }
  return Status::OK();
}

}  // namespace

std::string WalSegmentPath(const std::string& dir, const std::string& name,
                           uint64_t seq) {
  return dir + "/" + name + "_" + std::to_string(seq) + ".wal";
}

Result<WalReplayResult> ReplayWalSegments(
    const std::string& dir, const std::string& name, uint64_t floor,
    const std::function<Status(const WalReplayEntry&)>& apply) {
  LSMCOL_ASSIGN_OR_RETURN(auto segments, ListWalSegments(dir, name));
  WalReplayResult result;
  result.next_segment_seq = std::max<uint64_t>(floor, 1);

  // Segments below the floor are fully covered by manifest-durable
  // components (the crash hit between the manifest rewrite and the
  // unlink); finish the delete now.
  size_t live_begin = 0;
  while (live_begin < segments.size() &&
         segments[live_begin].first < floor) {
    LSMCOL_RETURN_NOT_OK(RemoveFileIfExists(segments[live_begin].second));
    ++live_begin;
  }

  uint64_t last_lsn = 0;
  for (size_t i = live_begin; i < segments.size(); ++i) {
    const auto& [seq, path] = segments[i];
    const bool newest = (i + 1 == segments.size());
    LSMCOL_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
    BufferReader reader{Slice(data)};

    Status header_status = CheckSegmentHeader(&reader, seq, path);
    if (!header_status.ok()) {
      if (newest && header_status.IsCorruption()) {
        // A crash during rotation can leave the new segment with a torn
        // header; nothing in it was ever acknowledged (records are only
        // accepted after the header is durable), so drop the file and
        // reuse its sequence.
        LSMCOL_RETURN_NOT_OK(RemoveFileIfExists(path));
        result.truncated_bytes += data.size();
        result.next_segment_seq = seq;
        result.next_lsn = last_lsn + 1;
        return result;
      }
      return header_status;
    }

    while (!reader.empty()) {
      const size_t frame_offset = data.size() - reader.remaining();
      // Decode one frame; any failure below falls through to the torn-
      // tail handling.
      Status frame_status;
      WalReplayEntry entry;
      do {
        uint32_t payload_len = 0, want_crc = 0;
        if (reader.remaining() < kFrameHeaderBytes) {
          frame_status = Status::Corruption("short WAL frame header");
          break;
        }
        frame_status = reader.ReadFixed32(&payload_len);
        if (!frame_status.ok()) break;
        frame_status = reader.ReadFixed32(&want_crc);
        if (!frame_status.ok()) break;
        if (payload_len > kMaxRecordBytes ||
            payload_len > reader.remaining()) {
          frame_status = Status::Corruption("short WAL frame payload");
          break;
        }
        Slice payload;
        frame_status = reader.ReadBytes(payload_len, &payload);
        if (!frame_status.ok()) break;
        if (Fnv1a32(payload) != want_crc) {
          frame_status = Status::Corruption("WAL record checksum mismatch");
          break;
        }
        BufferReader payload_reader(payload);
        frame_status = payload_reader.ReadVarint64(&entry.lsn);
        if (!frame_status.ok()) break;
        uint8_t type = 0;
        frame_status = payload_reader.ReadByte(&type);
        if (!frame_status.ok()) break;
        if (type != kRecordInsert && type != kRecordDelete) {
          frame_status = Status::Corruption("unknown WAL record type " +
                                            std::to_string(type));
          break;
        }
        entry.anti_matter = (type == kRecordDelete);
        frame_status = payload_reader.ReadSignedVarint64(&entry.key);
        if (!frame_status.ok()) break;
        entry.row = payload_reader.rest();
      } while (false);

      if (!frame_status.ok()) {
        if (!newest) {
          return Status::Corruption("corrupt WAL record in non-final "
                                    "segment " +
                                    path + ": " + frame_status.message());
        }
        // Torn tail of the newest segment: everything from this frame on
        // was mid-write at the crash and never acknowledged. Cut it off
        // so the file is clean for future appends/replays.
        result.truncated_bytes += data.size() - frame_offset;
        LSMCOL_RETURN_NOT_OK(TruncateFile(path, frame_offset));
        break;
      }
      if (entry.lsn <= last_lsn) {
        // LSNs are assigned monotonically across segments; a regression
        // is corruption no checksum can catch.
        return Status::Corruption(
            "WAL LSN regression in " + path + ": " +
            std::to_string(entry.lsn) + " after " + std::to_string(last_lsn));
      }
      last_lsn = entry.lsn;
      LSMCOL_RETURN_NOT_OK(apply(entry));
      ++result.records;
    }
    result.next_segment_seq = seq + 1;
  }
  result.next_lsn = last_lsn + 1;
  return result;
}

WriteAheadLog::WriteAheadLog(std::string dir, std::string name,
                             const WalOptions& options)
    : dir_(std::move(dir)), name_(std::move(name)), options_(options) {}

WriteAheadLog::~WriteAheadLog() {
  MutexLock lk(&mu_);
  if (fd_ >= 0) {
    // Best-effort: persist whatever was appended but never synced (the
    // writers were not acknowledged, so losing it would be legal — but a
    // clean shutdown should not lose anything at all).
    if (!pending_.empty() && io_status_.ok()) {
      const std::string path = WalSegmentPath(dir_, name_, active_segment_);
      if (WriteFully(fd_, pending_.data(), pending_.size(), path).ok()) {
        ::fsync(fd_);
      }
    }
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& dir, const std::string& name,
    const WalOptions& options, uint64_t next_segment_seq,
    uint64_t next_lsn) {
  LSMCOL_CHECK(next_segment_seq >= 1);
  LSMCOL_CHECK(next_lsn >= 1);
  std::unique_ptr<WriteAheadLog> wal(
      new WriteAheadLog(dir, name, options));
  {
    // No concurrency yet (the log is unpublished), but the guarded
    // fields and CreateActiveSegmentLocked demand the capability.
    MutexLock lk(&wal->mu_);
    wal->active_segment_ = next_segment_seq;
    wal->next_lsn_ = next_lsn;
    wal->appended_lsn_ = next_lsn - 1;
    wal->durable_lsn_ = next_lsn - 1;
    LSMCOL_RETURN_NOT_OK(wal->CreateActiveSegmentLocked());
    if (::fsync(wal->fd_) != 0) {
      return ErrnoStatus("fsync",
                         WalSegmentPath(dir, name, next_segment_seq));
    }
  }
  LSMCOL_RETURN_NOT_OK(SyncDir(dir));
  return wal;
}

Status WriteAheadLog::CreateActiveSegmentLocked() {
  const std::string path = WalSegmentPath(dir_, name_, active_segment_);
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return ErrnoStatus("open(create)", path);
  const std::string header = EncodeSegmentHeader(active_segment_);
  Status st = WriteFully(fd, header.data(), header.size(), path);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  fd_ = fd;
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::Append(bool anti_matter, int64_t key,
                                       Slice row) {
  MutexLock lk(&mu_);
  if (!io_status_.ok()) return io_status_;
  const uint64_t lsn = next_lsn_++;
  EncodeRecord(&pending_, lsn, anti_matter, key, row);
  pending_frames_.emplace_back(lsn, pending_.size());
  appended_lsn_ = lsn;
  ++stats_.appends;
  // A lingering group-commit leader waits for the batch to grow; tell it.
  if (pending_.size() >= options_.max_group_bytes) cv_.NotifyAll();
  return lsn;
}

Status WriteAheadLog::Sync(uint64_t lsn) {
  MutexLock lk(&mu_);
  for (;;) {
    if (!io_status_.ok()) return io_status_;
    // Group mode: a concurrent leader's fsync that covered our LSN made
    // us durable for free — the whole point. Sync-per-write mode never
    // takes this exit: its contract is one fsync per acknowledged write
    // (the ablation baseline), so a writer whose bytes a sequentially
    // earlier fsync already covered still pays its own (empty) fsync.
    if (options_.group_commit && durable_lsn_ >= lsn) return Status::OK();
    if (sync_in_flight_) {
      // A leader's fsync is in flight; ride along (it may already cover
      // our LSN) or retry leadership once it finishes.
      cv_.Wait(&mu_);
      continue;
    }

    // We are the leader for this group.
    sync_in_flight_ = true;
    if (options_.group_commit) {
      // One scheduling quantum for writers that are mid-encode to land
      // their append before the cut. Unlike a timed linger this costs
      // nothing when no other writer is runnable (yield returns
      // immediately), yet on a busy single core it is the difference
      // between 2-3 record batches and full-concurrency ones.
      lk.Unlock();
      std::this_thread::yield();
      lk.Lock();
      if (!io_status_.ok()) {
        sync_in_flight_ = false;
        cv_.NotifyAll();
        return io_status_;
      }
    }
    if (options_.group_commit && options_.group_window_us > 0) {
      // Linger so concurrent writers can join the batch — the whole point
      // of group commit: their records ride on our single fsync.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.group_window_us);
      while (pending_.size() < options_.max_group_bytes && io_status_.ok() &&
             cv_.WaitUntil(&mu_, deadline) != std::cv_status::timeout) {
      }
      if (!io_status_.ok()) {  // a concurrent Rotate failed while we slept
        sync_in_flight_ = false;
        cv_.NotifyAll();
        return io_status_;
      }
    }

    // Cut the batch: everything pending in group mode, only our own
    // prefix in sync-per-write mode (each write pays its own fsync — the
    // degenerate case the ablation baselines against).
    uint64_t target_lsn = durable_lsn_;
    size_t cut = 0;
    size_t frames = 0;
    while (frames < pending_frames_.size() &&
           (options_.group_commit || pending_frames_[frames].first <= lsn)) {
      target_lsn = pending_frames_[frames].first;
      cut = pending_frames_[frames].second;
      ++frames;
    }
    LSMCOL_CHECK(target_lsn >= lsn);  // our own record must be in the cut
    std::string batch = pending_.substr(0, cut);
    pending_.erase(0, cut);
    pending_frames_.erase(pending_frames_.begin(),
                          pending_frames_.begin() + frames);
    for (auto& frame : pending_frames_) frame.second -= cut;

    // Snapshot the write target before dropping mu_: sync_in_flight_
    // blocks rotation, so fd/segment cannot change under the leader, but
    // reading them unlocked would still be a (benign) race.
    const int fd = fd_;
    const std::string path = WalSegmentPath(dir_, name_, active_segment_);

    lk.Unlock();
    Status st = WriteAndSync(fd, path, batch);
    lk.Lock();

    sync_in_flight_ = false;
    if (st.ok()) {
      durable_lsn_ = target_lsn;
      ++stats_.syncs;
      stats_.bytes += batch.size();
      stats_.group_entries_max = std::max<uint64_t>(
          stats_.group_entries_max, frames);
    } else {
      // Fail closed: the tail of the log is in an unknown state, so no
      // later append may be acknowledged either.
      io_status_ = st;
    }
    cv_.NotifyAll();
    return st;
  }
}

Status WriteAheadLog::WriteAndSync(int fd, const std::string& path,
                                   const std::string& batch) {
  LSMCOL_RETURN_NOT_OK(WriteFully(fd, batch.data(), batch.size(), path));
  if (::fsync(fd) != 0) return ErrnoStatus("fsync", path);
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::Rotate() {
  MutexLock lk(&mu_);
  while (sync_in_flight_) cv_.Wait(&mu_);
  if (!io_status_.ok()) return io_status_;
  // Flush the unsynced tail. Safe to do while holding mu_: rotation is a
  // seal point — the caller serializes it against appends.
  if (!pending_.empty()) {
    Status st = WriteAndSync(
        fd_, WalSegmentPath(dir_, name_, active_segment_), pending_);
    if (!st.ok()) {
      io_status_ = st;
      cv_.NotifyAll();
      return st;
    }
    durable_lsn_ = appended_lsn_;
    ++stats_.syncs;
    stats_.bytes += pending_.size();
    pending_.clear();
    pending_frames_.clear();
    cv_.NotifyAll();
  }
  ::close(fd_);
  fd_ = -1;
  const uint64_t sealed = active_segment_++;
  Status st = CreateActiveSegmentLocked();
  if (st.ok() && ::fsync(fd_) != 0) {
    st = ErrnoStatus("fsync",
                     WalSegmentPath(dir_, name_, active_segment_));
  }
  if (st.ok()) st = SyncDir(dir_);
  if (!st.ok()) {
    // Fail closed: with no (durable) active segment, later appends could
    // not be made durable either.
    io_status_ = st;
    cv_.NotifyAll();
    return st;
  }
  ++stats_.rotations;
  return sealed;
}

Status WriteAheadLog::DeleteSegmentsBelow(uint64_t floor) {
  LSMCOL_ASSIGN_OR_RETURN(auto segments, ListWalSegments(dir_, name_));
  for (const auto& [seq, path] : segments) {
    if (seq >= floor) break;
    LSMCOL_RETURN_NOT_OK(RemoveFileIfExists(path));
  }
  return Status::OK();
}

uint64_t WriteAheadLog::active_segment() const {
  MutexLock lk(&mu_);
  return active_segment_;
}

uint64_t WriteAheadLog::durable_lsn() const {
  MutexLock lk(&mu_);
  return durable_lsn_;
}

WalStats WriteAheadLog::stats() const {
  MutexLock lk(&mu_);
  return stats_;
}

}  // namespace lsmcol
