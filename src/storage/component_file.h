// ComponentWriter / ComponentReader: the on-disk format shared by every
// LSM component regardless of record layout.
//
// File layout (fixed-size pages):
//   [leaf payload pages ...][index pages][metadata pages][footer page]
//
// A "leaf" is one logical B+-tree leaf: a byte payload spanning one or
// more physical pages (APAX pages are single-page leaves unless a record
// batch overflows; AMAX mega leaf nodes span many pages, §4.3; row layouts
// use single-page slotted leaves). The index is the B+-tree's interior
// level: an array of (min_key, max_key, first_page, page_count,
// payload_size, record_count) entries ordered by key, binary-searched on
// lookup. The metadata blob carries layout-specific data (schema snapshot,
// component id, validity bit) — the paper's "metadata page" (§2.1.1).

#ifndef LSMCOL_STORAGE_COMPONENT_FILE_H_
#define LSMCOL_STORAGE_COMPONENT_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/storage/buffer_cache.h"
#include "src/storage/file.h"

namespace lsmcol {

/// Directory entry for one leaf (interior B+-tree node entry).
struct LeafEntry {
  int64_t min_key = 0;
  int64_t max_key = 0;
  uint64_t first_page = 0;
  uint32_t page_count = 0;
  uint64_t payload_size = 0;  ///< exact payload bytes (<= page_count * page_size)
  uint32_t record_count = 0;
};

/// Component file format versions. v3 added the per-page checksum
/// trailer (docs/FORMAT.md#page-trailer); v2 files remain readable —
/// ComponentReader::Open sniffs the footer to pick the mode.
inline constexpr uint32_t kComponentFormatLegacy = 2;
inline constexpr uint32_t kComponentFormatChecksummed = 3;

/// Sequential component writer (components are write-once).
class ComponentWriter {
 public:
  static Result<std::unique_ptr<ComponentWriter>> Create(
      const std::string& path, BufferCache* cache, size_t page_size,
      uint32_t format_version = kComponentFormatChecksummed,
      FileSystem* fs = nullptr);

  /// Drops the writer's cached pages: they are keyed by this PageFile
  /// instance and can never be hit again once the writer is gone (readers
  /// open their own PageFile — typically after the file was renamed into
  /// its final component path).
  ~ComponentWriter();

  /// Append one leaf; payload is split across ceil(size/page_size) pages.
  Status AppendLeaf(Slice payload, int64_t min_key, int64_t max_key,
                    uint32_t record_count);

  /// Write index + metadata + footer and sync. No further appends.
  Status Finish(Slice metadata);

  uint64_t pages_written() const { return next_page_; }
  const std::string& path() const { return path_; }

 private:
  ComponentWriter(std::string path, std::unique_ptr<PageFile> file,
                  BufferCache* cache)
      : path_(std::move(path)), file_(std::move(file)), cache_(cache) {}

  Status WriteBlob(Slice blob, uint64_t* first_page, uint32_t* page_count);

  std::string path_;
  std::unique_ptr<PageFile> file_;
  BufferCache* cache_;
  std::vector<LeafEntry> leaves_;
  uint64_t next_page_ = 0;
  bool finished_ = false;
};

/// Read access to a finished component. All page reads go through the
/// buffer cache.
class ComponentReader {
 public:
  /// Opens either format: the footer magic (and, for v3, its page
  /// checksum) decides whether the file is read with trailer
  /// verification or as a legacy raw-page file.
  static Result<std::unique_ptr<ComponentReader>> Open(const std::string& path,
                                                       BufferCache* cache,
                                                       size_t page_size,
                                                       FileSystem* fs = nullptr);

  ~ComponentReader();

  const std::vector<LeafEntry>& leaves() const { return leaves_; }
  Slice metadata() const { return metadata_.slice(); }
  size_t page_size() const { return file_->page_size(); }
  uint64_t size_bytes() const { return file_->size_bytes(); }
  const std::string& path() const { return file_->path(); }
  /// True when pages carry the v3 checksum trailer.
  bool checksummed() const { return file_->checksummed(); }
  uint32_t format_version() const {
    return file_->checksummed() ? kComponentFormatChecksummed
                                : kComponentFormatLegacy;
  }

  /// Read a leaf's full payload (row layouts, APAX).
  Status ReadLeaf(size_t leaf_index, Buffer* out) const;

  /// Read only `size` payload bytes starting at `offset` within a leaf —
  /// touching only the physical pages that overlap the range (how AMAX
  /// reads a single column's megapage, §4.4).
  Status ReadLeafRange(size_t leaf_index, uint64_t offset, uint64_t size,
                       Buffer* out) const;

  /// Read a leaf's full payload bypassing the buffer cache: every
  /// physical page is re-read from the filesystem and its trailer (v3)
  /// re-verified. The scrubber's read path — a cache hit must never mask
  /// media decay under it. Pages read this way are not inserted into the
  /// cache (scrubbing a cold dataset must not evict the hot set).
  Status ReadLeafUncached(size_t leaf_index, Buffer* out) const;

  /// Index of the first leaf whose max_key >= key (binary search over the
  /// interior node); leaves().size() when none.
  size_t LowerBoundLeaf(int64_t key) const;

  /// Remove the component's cached pages and delete the file.
  Status Destroy();

 private:
  ComponentReader(std::unique_ptr<PageFile> file, BufferCache* cache,
                  FileSystem* fs)
      : file_(std::move(file)), cache_(cache), fs_(fs) {}

  /// One open attempt in a fixed mode (checksummed or legacy).
  static Result<std::unique_ptr<ComponentReader>> OpenAs(
      const std::string& path, BufferCache* cache, size_t page_size,
      bool checksummed, FileSystem* fs);

  std::unique_ptr<PageFile> file_;
  BufferCache* cache_;
  FileSystem* fs_;
  std::vector<LeafEntry> leaves_;
  Buffer metadata_;
  bool destroyed_ = false;
};

}  // namespace lsmcol

#endif  // LSMCOL_STORAGE_COMPONENT_FILE_H_
