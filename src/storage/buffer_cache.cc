#include "src/storage/buffer_cache.h"

namespace lsmcol {

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    if (cache_ != nullptr) {
      cache_->Unpin(static_cast<BufferCache::Frame*>(frame_));
    }
    cache_ = other.cache_;
    frame_ = other.frame_;
    other.cache_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() {
  if (cache_ != nullptr) {
    cache_->Unpin(static_cast<BufferCache::Frame*>(frame_));
  }
}

Slice PageHandle::data() const {
  LSMCOL_DCHECK(valid());
  // Lock-free: a pinned frame is never evicted or rewritten (components
  // are write-once), and its Buffer address is stable.
  const auto* frame = static_cast<const BufferCache::Frame*>(frame_);
  return frame->data.slice();
}

Result<PageHandle> BufferCache::Fetch(const PageFile& file, uint64_t page_no) {
  MutexLock lock(&mu_);
  const PageKey key{file.file_id(), page_no};
  while (true) {
    auto it = frames_.find(key);
    if (it == frames_.end()) break;
    Frame* frame = it->second.get();
    if (frame->loading) {
      // Another thread is reading this exact page; wait for it to
      // publish (or fail and unpublish) rather than reading twice. The
      // wait drops mu_, so re-probe the map from scratch afterwards.
      load_cv_.Wait(&mu_);
      continue;
    }
    ++stats_.hits;
    if (frame->in_lru) {
      lru_.erase(frame->lru_it);
      frame->in_lru = false;
    }
    ++frame->pins;
    return PageHandle(this, frame);
  }
  ++stats_.misses;
  // Publish a pinned loading placeholder, then do the physical read with
  // mu_ released so other pages' hits and misses proceed concurrently.
  auto frame = std::make_unique<Frame>();
  frame->file_id = file.file_id();
  frame->page_no = page_no;
  frame->pins = 1;
  frame->loading = true;
  Frame* raw = frame.get();
  auto& file_pages = pages_by_file_[file.file_id()];
  raw->file_pos = file_pages.size();
  file_pages.push_back(raw);
  frames_[key] = std::move(frame);
  ++frame_count_;
  lock.Unlock();
  Status read = file.ReadPage(page_no, &raw->data);
  lock.Lock();
  raw->loading = false;
  if (!read.ok()) {
    // Unpublish; waiters re-check and retry the read themselves.
    --raw->pins;
    RemoveFromFileListLocked(raw);
    --frame_count_;
    frames_.erase(key);
    load_cv_.NotifyAll();
    return read;
  }
  ++stats_.pages_read;
  stats_.bytes_read += page_size_;
  load_cv_.NotifyAll();
  EvictIfNeededLocked();
  return PageHandle(this, raw);
}

Status BufferCache::WriteThrough(PageFile& file, uint64_t page_no,
                                 Slice payload) {
  // The physical write runs outside the lock: a component file is
  // private to its (single) writer until the final rename, so parallel
  // flush/merge builds and concurrent reader fetches must not serialize
  // on it. Only the frame/stat bookkeeping needs mu_.
  LSMCOL_RETURN_NOT_OK(file.WritePage(page_no, payload));
  MutexLock lock(&mu_);
  ++stats_.pages_written;
  stats_.bytes_written += page_size_;
  // Update the cached copy if present (write-once components make this
  // rare, but merges can reuse page numbers after Invalidate). A loading
  // frame is skipped: its in-flight read owns the buffer.
  auto it = frames_.find(PageKey{file.file_id(), page_no});
  if (it != frames_.end() && !it->second->loading) {
    Frame* frame = it->second.get();
    frame->data.clear();
    frame->data.resize(page_size_);
    std::memcpy(frame->data.mutable_data(), payload.data(), payload.size());
  }
  return Status::OK();
}

void BufferCache::RemoveFromFileListLocked(Frame* frame) {
  auto file_it = pages_by_file_.find(frame->file_id);
  LSMCOL_DCHECK(file_it != pages_by_file_.end());
  std::vector<Frame*>& file_pages = file_it->second;
  LSMCOL_DCHECK(file_pages[frame->file_pos] == frame);
  // Swap-remove; the moved frame remembers its new slot.
  Frame* moved = file_pages.back();
  file_pages[frame->file_pos] = moved;
  moved->file_pos = frame->file_pos;
  file_pages.pop_back();
  if (file_pages.empty()) pages_by_file_.erase(file_it);
}

void BufferCache::Invalidate(const PageFile& file) {
  MutexLock lock(&mu_);
  auto file_it = pages_by_file_.find(file.file_id());
  if (file_it == pages_by_file_.end()) return;
  for (Frame* frame : file_it->second) {
    LSMCOL_CHECK(frame->pins == 0);
    if (frame->in_lru) lru_.erase(frame->lru_it);
    --frame_count_;
    frames_.erase(PageKey{frame->file_id, frame->page_no});
  }
  pages_by_file_.erase(file_it);
}

void BufferCache::Clear() {
  MutexLock lock(&mu_);
  for (auto& [key, frame] : frames_) {
    LSMCOL_CHECK(frame->pins == 0);
  }
  frames_.clear();
  pages_by_file_.clear();
  lru_.clear();
  frame_count_ = 0;
}

void BufferCache::Confiscate(size_t bytes) {
  MutexLock lock(&mu_);
  confiscated_bytes_ += bytes;
  ++stats_.confiscations;
  EvictIfNeededLocked();
}

void BufferCache::ReturnConfiscated(size_t bytes) {
  MutexLock lock(&mu_);
  LSMCOL_DCHECK(bytes <= confiscated_bytes_);
  confiscated_bytes_ -= bytes;
}

void BufferCache::Unpin(Frame* frame) {
  MutexLock lock(&mu_);
  LSMCOL_DCHECK(frame->pins > 0);
  if (--frame->pins == 0) {
    lru_.push_front(frame);
    frame->lru_it = lru_.begin();
    frame->in_lru = true;
    EvictIfNeededLocked();
  }
}

void BufferCache::EvictIfNeededLocked() {
  while (frame_count_ * page_size_ + confiscated_bytes_ > capacity_bytes_ &&
         !lru_.empty()) {
    Frame* victim = lru_.back();
    lru_.pop_back();
    ++stats_.evictions;
    --frame_count_;
    RemoveFromFileListLocked(victim);
    frames_.erase(PageKey{victim->file_id, victim->page_no});
  }
}

}  // namespace lsmcol
