#include "src/storage/buffer_cache.h"

namespace lsmcol {

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    if (cache_ != nullptr) {
      cache_->Unpin(static_cast<BufferCache::Frame*>(frame_));
    }
    cache_ = other.cache_;
    frame_ = other.frame_;
    other.cache_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() {
  if (cache_ != nullptr) {
    cache_->Unpin(static_cast<BufferCache::Frame*>(frame_));
  }
}

Slice PageHandle::data() const {
  LSMCOL_DCHECK(valid());
  const auto* frame = static_cast<const BufferCache::Frame*>(frame_);
  return frame->data.slice();
}

Result<PageHandle> BufferCache::Fetch(const PageFile& file, uint64_t page_no) {
  auto& by_page = frames_by_file_[file.file_id()];
  auto it = by_page.find(page_no);
  if (it != by_page.end()) {
    Frame* frame = it->second.get();
    ++stats_.hits;
    if (frame->in_lru) {
      lru_.erase(frame->lru_it);
      frame->in_lru = false;
    }
    ++frame->pins;
    return PageHandle(this, frame);
  }
  ++stats_.misses;
  auto frame = std::make_unique<Frame>();
  frame->file_id = file.file_id();
  frame->page_no = page_no;
  LSMCOL_RETURN_NOT_OK(file.ReadPage(page_no, &frame->data));
  ++stats_.pages_read;
  stats_.bytes_read += page_size_;
  frame->pins = 1;
  Frame* raw = frame.get();
  by_page[page_no] = std::move(frame);
  ++frame_count_;
  EvictIfNeeded();
  return PageHandle(this, raw);
}

Status BufferCache::WriteThrough(PageFile& file, uint64_t page_no,
                                 Slice payload) {
  LSMCOL_RETURN_NOT_OK(file.WritePage(page_no, payload));
  ++stats_.pages_written;
  stats_.bytes_written += page_size_;
  // Update the cached copy if present (write-once components make this
  // rare, but merges can reuse page numbers after Invalidate).
  auto file_it = frames_by_file_.find(file.file_id());
  if (file_it != frames_by_file_.end()) {
    auto it = file_it->second.find(page_no);
    if (it != file_it->second.end()) {
      Frame* frame = it->second.get();
      frame->data.clear();
      frame->data.resize(page_size_);
      std::memcpy(frame->data.mutable_data(), payload.data(), payload.size());
    }
  }
  return Status::OK();
}

void BufferCache::Invalidate(const PageFile& file) {
  auto file_it = frames_by_file_.find(file.file_id());
  if (file_it == frames_by_file_.end()) return;
  for (auto& [page_no, frame] : file_it->second) {
    LSMCOL_CHECK(frame->pins == 0);
    if (frame->in_lru) lru_.erase(frame->lru_it);
    --frame_count_;
  }
  frames_by_file_.erase(file_it);
}

void BufferCache::Clear() {
  for (auto& [file_id, by_page] : frames_by_file_) {
    for (auto& [page_no, frame] : by_page) {
      LSMCOL_CHECK(frame->pins == 0);
    }
  }
  frames_by_file_.clear();
  lru_.clear();
  frame_count_ = 0;
}

void BufferCache::Confiscate(size_t bytes) {
  confiscated_bytes_ += bytes;
  ++stats_.confiscations;
  EvictIfNeeded();
}

void BufferCache::ReturnConfiscated(size_t bytes) {
  LSMCOL_DCHECK(bytes <= confiscated_bytes_);
  confiscated_bytes_ -= bytes;
}

void BufferCache::Unpin(Frame* frame) {
  LSMCOL_DCHECK(frame->pins > 0);
  if (--frame->pins == 0) {
    lru_.push_front(frame);
    frame->lru_it = lru_.begin();
    frame->in_lru = true;
    EvictIfNeeded();
  }
}

void BufferCache::EvictIfNeeded() {
  while (frame_count_ * page_size_ + confiscated_bytes_ > capacity_bytes_ &&
         !lru_.empty()) {
    Frame* victim = lru_.back();
    lru_.pop_back();
    ++stats_.evictions;
    --frame_count_;
    frames_by_file_[victim->file_id].erase(victim->page_no);
  }
}

}  // namespace lsmcol
