#include "src/storage/fault_injection_fs.h"

#include <errno.h>

#include <utility>

#include "src/storage/file.h"

namespace lsmcol {
namespace {

constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

/// File wrapper: routes every operation through the parent's injection
/// checks, then the base file. Holds the base FsFile.
class FaultFsFile final : public FsFile {
 public:
  FaultFsFile(FaultInjectionFs* parent, std::unique_ptr<FsFile> base)
      : FsFile(base->path()), parent_(parent), base_(std::move(base)) {}

  Status ReadAt(uint64_t offset, size_t n, Buffer* out) override {
    LSMCOL_RETURN_NOT_OK(parent_->CheckFault(FaultOp::kRead, path_));
    LSMCOL_RETURN_NOT_OK(base_->ReadAt(offset, n, out));
    parent_->CheckReadFlip(path_, out);
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, Slice data) override {
    std::string payload(data.data(), data.size());
    LSMCOL_RETURN_NOT_OK(parent_->CheckWrite(path_, &payload));
    return base_->WriteAt(offset, Slice(payload));
  }

  Status Append(Slice data, size_t* appended) override {
    std::string payload(data.data(), data.size());
    Status st = parent_->CheckWrite(path_, &payload);
    if (!st.ok()) {
      if (appended != nullptr) *appended = 0;
      return st;
    }
    return base_->Append(Slice(payload), appended);
  }

  Status Sync() override {
    LSMCOL_RETURN_NOT_OK(parent_->CheckFault(FaultOp::kSync, path_));
    LSMCOL_RETURN_NOT_OK(base_->Sync());
    return parent_->NoteSynced(path_);
  }

  Status Truncate(uint64_t size) override {
    LSMCOL_RETURN_NOT_OK(parent_->CheckFault(FaultOp::kTruncate, path_));
    return base_->Truncate(size);
  }

  Result<uint64_t> Size() override { return base_->Size(); }

 private:
  FaultInjectionFs* const parent_;
  std::unique_ptr<FsFile> base_;
};

FaultInjectionFs::FaultInjectionFs(FileSystem* base) : base_(ResolveFs(base)) {}

FaultInjectionFs::~FaultInjectionFs() = default;

void FaultInjectionFs::AddRule(const FaultRule& rule) {
  MutexLock lock(&mu_);
  RuleState rs;
  rs.rule = rule;
  if (rs.rule.error_code == 0) rs.rule.error_code = EIO;
  rules_.push_back(std::move(rs));
}

void FaultInjectionFs::ClearRules() {
  MutexLock lock(&mu_);
  rules_.clear();
}

void FaultInjectionFs::SetByteQuota(uint64_t bytes) {
  MutexLock lock(&mu_);
  quota_enabled_ = true;
  quota_remaining_ = bytes;
}

void FaultInjectionFs::ClearByteQuota() {
  MutexLock lock(&mu_);
  quota_enabled_ = false;
}

void FaultInjectionFs::SetTrackUnsynced(bool on) {
  MutexLock lock(&mu_);
  track_unsynced_ = on;
  if (!on) tracked_.clear();
}

uint64_t FaultInjectionFs::injected_errors() const {
  MutexLock lock(&mu_);
  return injected_errors_;
}

uint64_t FaultInjectionFs::flipped_bits() const {
  MutexLock lock(&mu_);
  return flipped_bits_;
}

uint64_t FaultInjectionFs::bytes_written() const {
  MutexLock lock(&mu_);
  return bytes_written_;
}

Status FaultInjectionFs::InjectLocked(RuleState* rs, FaultOp op,
                                      const std::string& path) {
  (void)op;
  ++injected_errors_;
  ++rs->failures;
  return Status::IOError("injected fault (" +
                         ErrnoMessage(rs->rule.error_code) + ") for " + path);
}

Status FaultInjectionFs::CheckFault(FaultOp op, const std::string& path) {
  MutexLock lock(&mu_);
  for (RuleState& rs : rules_) {
    const FaultRule& r = rs.rule;
    if (r.op != op || r.flip_bit) continue;
    if (!r.path_substring.empty() &&
        path.find(r.path_substring) == std::string::npos) {
      continue;
    }
    ++rs.hits;
    if (rs.hits <= r.fail_after) continue;
    if (r.max_failures >= 0 && rs.failures >= r.max_failures) continue;
    return InjectLocked(&rs, op, path);
  }
  return Status::OK();
}

Status FaultInjectionFs::CheckWrite(const std::string& path,
                                    std::string* data) {
  MutexLock lock(&mu_);
  for (RuleState& rs : rules_) {
    const FaultRule& r = rs.rule;
    if (r.op != FaultOp::kWrite) continue;
    if (!r.path_substring.empty() &&
        path.find(r.path_substring) == std::string::npos) {
      continue;
    }
    ++rs.hits;
    if (rs.hits <= r.fail_after) continue;
    if (r.max_failures >= 0 && rs.failures >= r.max_failures) continue;
    if (r.flip_bit) {
      if (!data->empty()) {
        ++rs.failures;
        ++flipped_bits_;
        // One inverted bit mid-payload: the classic undetectable-without-
        // checksums medium error.
        (*data)[data->size() / 2] ^= 0x01;
      }
      continue;  // the (corrupted) write still goes through
    }
    return InjectLocked(&rs, FaultOp::kWrite, path);
  }
  if (quota_enabled_) {
    if (data->size() > quota_remaining_) {
      ++injected_errors_;
      return Status::IOError("injected fault (" + ErrnoMessage(ENOSPC) +
                             ") for " + path);
    }
    quota_remaining_ -= data->size();
  }
  bytes_written_ += data->size();
  return Status::OK();
}

void FaultInjectionFs::CheckReadFlip(const std::string& path, Buffer* out) {
  MutexLock lock(&mu_);
  for (RuleState& rs : rules_) {
    const FaultRule& r = rs.rule;
    if (r.op != FaultOp::kRead || !r.flip_bit) continue;
    if (!r.path_substring.empty() &&
        path.find(r.path_substring) == std::string::npos) {
      continue;
    }
    ++rs.hits;
    if (rs.hits <= r.fail_after) continue;
    if (r.max_failures >= 0 && rs.failures >= r.max_failures) continue;
    if (out->empty()) continue;
    ++rs.failures;
    ++flipped_bits_;
    // The stored bytes stay pristine — only this read observes the
    // decayed medium, exactly the failure mode scrubbing exists to find.
    out->mutable_data()[out->size() / 2] ^= 0x01;
  }
}

void FaultInjectionFs::NoteCreated(const std::string& path) {
  MutexLock lock(&mu_);
  if (!track_unsynced_) return;
  // Truncating re-create: whatever image was synced before is gone only
  // if the new file gets synced over it; until then a crash restores the
  // old synced image — unless the path was never synced, in which case a
  // crash removes it. Model by keeping the old state if present.
  if (tracked_.find(path) == tracked_.end()) {
    tracked_[path] = FileState{};
  }
}

void FaultInjectionFs::NoteOpenedWritable(const std::string& path) {
  MutexLock lock(&mu_);
  if (!track_unsynced_) return;
  if (tracked_.find(path) != tracked_.end()) return;
  // First sighting of a pre-existing file: its on-disk content is the
  // durable baseline.
  FileState st;
  std::string content;
  lock.Unlock();
  Status read = ReadWhole(path, &content);
  lock.Lock();
  if (read.ok() && tracked_.find(path) == tracked_.end()) {
    st.synced_image = std::move(content);
    st.synced_exists = true;
    tracked_[path] = std::move(st);
  }
}

Status FaultInjectionFs::NoteSynced(const std::string& path) {
  MutexLock lock(&mu_);
  if (!track_unsynced_) return Status::OK();
  std::string content;
  lock.Unlock();
  Status read = ReadWhole(path, &content);
  lock.Lock();
  if (!read.ok()) return read;
  FileState& st = tracked_[path];
  st.synced_image = std::move(content);
  st.synced_exists = true;
  return Status::OK();
}

Status FaultInjectionFs::ReadWhole(const std::string& path, std::string* out) {
  out->clear();
  LSMCOL_ASSIGN_OR_RETURN(auto file, base_->Open(path, /*writable=*/false));
  uint64_t offset = 0;
  Buffer chunk;
  while (true) {
    LSMCOL_RETURN_NOT_OK(file->ReadAt(offset, kReadChunk, &chunk));
    if (chunk.size() == 0) break;
    out->append(chunk.data(), chunk.size());
    offset += chunk.size();
  }
  return Status::OK();
}

Status FaultInjectionFs::DropUnsyncedWrites() {
  // Snapshot the tracked map, then rebuild files without mu_ (the writes
  // below re-enter the base filesystem only).
  std::map<std::string, FileState> tracked;
  {
    MutexLock lock(&mu_);
    tracked = tracked_;
  }
  for (const auto& [path, st] : tracked) {
    if (!st.synced_exists) {
      if (base_->Exists(path)) {
        LSMCOL_RETURN_NOT_OK(base_->RemoveFile(path));
      }
      continue;
    }
    LSMCOL_ASSIGN_OR_RETURN(auto file, base_->Create(path));
    LSMCOL_RETURN_NOT_OK(file->WriteAt(0, Slice(st.synced_image)));
    LSMCOL_RETURN_NOT_OK(file->Sync());
  }
  return Status::OK();
}

Status FaultInjectionFs::CopySyncedSnapshot(const std::string& src_dir,
                                            const std::string& dst_dir) {
  LSMCOL_RETURN_NOT_OK(base_->CreateDirs(dst_dir));
  LSMCOL_ASSIGN_OR_RETURN(auto names, base_->ListDir(src_dir));
  std::map<std::string, FileState> tracked;
  bool tracking = false;
  {
    MutexLock lock(&mu_);
    tracked = tracked_;
    tracking = track_unsynced_;
  }
  for (const std::string& name : names) {
    const std::string src = src_dir + "/" + name;
    std::string content;
    auto it = tracked.find(src);
    if (it != tracked.end()) {
      if (!it->second.synced_exists) continue;  // crash loses this file
      content = it->second.synced_image;
    } else if (tracking) {
      // Untracked while tracking is on: the file predates tracking (or
      // was written outside this wrapper); its on-disk bytes are durable.
      LSMCOL_RETURN_NOT_OK(ReadWhole(src, &content));
    } else {
      LSMCOL_RETURN_NOT_OK(ReadWhole(src, &content));
    }
    LSMCOL_ASSIGN_OR_RETURN(auto out, base_->Create(dst_dir + "/" + name));
    LSMCOL_RETURN_NOT_OK(out->WriteAt(0, Slice(content)));
    LSMCOL_RETURN_NOT_OK(out->Sync());
  }
  return Status::OK();
}

Result<std::unique_ptr<FsFile>> FaultInjectionFs::Create(
    const std::string& path) {
  LSMCOL_RETURN_NOT_OK(CheckFault(FaultOp::kCreate, path));
  LSMCOL_ASSIGN_OR_RETURN(auto file, base_->Create(path));
  NoteCreated(path);
  return std::unique_ptr<FsFile>(new FaultFsFile(this, std::move(file)));
}

Result<std::unique_ptr<FsFile>> FaultInjectionFs::Open(const std::string& path,
                                                       bool writable) {
  LSMCOL_RETURN_NOT_OK(CheckFault(FaultOp::kOpen, path));
  LSMCOL_ASSIGN_OR_RETURN(auto file, base_->Open(path, writable));
  if (writable) NoteOpenedWritable(path);
  return std::unique_ptr<FsFile>(new FaultFsFile(this, std::move(file)));
}

Status FaultInjectionFs::Rename(const std::string& from,
                                const std::string& to) {
  Status st = CheckFault(FaultOp::kRename, from);
  if (st.ok()) st = CheckFault(FaultOp::kRename, to);
  LSMCOL_RETURN_NOT_OK(st);
  LSMCOL_RETURN_NOT_OK(base_->Rename(from, to));
  MutexLock lock(&mu_);
  if (track_unsynced_) {
    // The rename is made durable by the caller's directory fsync; model
    // the namespace change as immediate (every lsmcol rename is followed
    // by SyncDir) and move the content state with the name.
    auto it = tracked_.find(from);
    if (it != tracked_.end()) {
      tracked_[to] = std::move(it->second);
      tracked_.erase(it);
    } else {
      tracked_.erase(to);
    }
  }
  return Status::OK();
}

Status FaultInjectionFs::RemoveFile(const std::string& path) {
  LSMCOL_RETURN_NOT_OK(CheckFault(FaultOp::kRemove, path));
  LSMCOL_RETURN_NOT_OK(base_->RemoveFile(path));
  MutexLock lock(&mu_);
  tracked_.erase(path);
  return Status::OK();
}

bool FaultInjectionFs::Exists(const std::string& path) {
  return base_->Exists(path);
}

Status FaultInjectionFs::SyncDir(const std::string& dir) {
  LSMCOL_RETURN_NOT_OK(CheckFault(FaultOp::kSyncDir, dir));
  return base_->SyncDir(dir);
}

Status FaultInjectionFs::CreateDirs(const std::string& dir) {
  LSMCOL_RETURN_NOT_OK(CheckFault(FaultOp::kCreateDirs, dir));
  return base_->CreateDirs(dir);
}

Result<std::vector<std::string>> FaultInjectionFs::ListDir(
    const std::string& dir) {
  LSMCOL_RETURN_NOT_OK(CheckFault(FaultOp::kList, dir));
  return base_->ListDir(dir);
}

}  // namespace lsmcol
