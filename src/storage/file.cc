#include "src/storage/file.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <vector>

namespace lsmcol {
namespace {

std::atomic<uint64_t> g_next_file_id{1};

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IOError(op + " failed for " + path + ": " +
                         std::string(strerror(errno)));
}

}  // namespace

PageFile::PageFile(std::string path, int fd, size_t page_size,
                   uint64_t page_count)
    : path_(std::move(path)),
      fd_(fd),
      page_size_(page_size),
      page_count_(page_count),
      file_id_(g_next_file_id.fetch_add(1)) {}

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<PageFile>> PageFile::Create(const std::string& path,
                                                   size_t page_size) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (fd < 0) return ErrnoStatus("open(create)", path);
  return std::unique_ptr<PageFile>(new PageFile(path, fd, page_size, 0));
}

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path,
                                                 size_t page_size) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("fstat", path);
  }
  if (st.st_size % static_cast<off_t>(page_size) != 0) {
    ::close(fd);
    return Status::Corruption("file size not a multiple of page size: " +
                              path);
  }
  uint64_t pages = static_cast<uint64_t>(st.st_size) / page_size;
  return std::unique_ptr<PageFile>(new PageFile(path, fd, page_size, pages));
}

Status PageFile::WritePage(uint64_t page_no, Slice payload) {
  if (payload.size() > page_size_) {
    return Status::InvalidArgument("page payload exceeds page size");
  }
  std::vector<char> buf(page_size_, 0);
  ::memcpy(buf.data(), payload.data(), payload.size());
  off_t offset = static_cast<off_t>(page_no * page_size_);
  ssize_t written = ::pwrite(fd_, buf.data(), page_size_, offset);
  if (written != static_cast<ssize_t>(page_size_)) {
    return ErrnoStatus("pwrite", path_);
  }
  if (page_no >= page_count_) page_count_ = page_no + 1;
  return Status::OK();
}

Status PageFile::ReadPage(uint64_t page_no, Buffer* out) const {
  if (page_no >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(page_no) +
                              " out of range in " + path_);
  }
  out->resize(page_size_);
  off_t offset = static_cast<off_t>(page_no * page_size_);
  ssize_t got = ::pread(fd_, out->mutable_data(), page_size_, offset);
  if (got != static_cast<ssize_t>(page_size_)) {
    return ErrnoStatus("pread", path_);
  }
  return Status::OK();
}

Status PageFile::Sync() {
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink", path);
  }
  return Status::OK();
}

}  // namespace lsmcol
