#include "src/storage/file.h"

#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <vector>

namespace lsmcol {
namespace {

std::atomic<uint64_t> g_next_file_id{1};

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IOError(op + " failed for " + path + ": " +
                         ErrnoMessage(errno));
}

}  // namespace

std::string ErrnoMessage(int err) {
  char buf[256];
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // GNU strerror_r may return a static string instead of filling buf.
  return std::string(strerror_r(err, buf, sizeof(buf)));
#else
  if (strerror_r(err, buf, sizeof(buf)) != 0) {
    std::snprintf(buf, sizeof(buf), "errno %d", err);
  }
  return std::string(buf);
#endif
}

PageFile::PageFile(std::string path, int fd, size_t page_size,
                   uint64_t page_count)
    : path_(std::move(path)),
      fd_(fd),
      page_size_(page_size),
      page_count_(page_count),
      file_id_(g_next_file_id.fetch_add(1)) {}

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<PageFile>> PageFile::Create(const std::string& path,
                                                   size_t page_size) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (fd < 0) return ErrnoStatus("open(create)", path);
  return std::unique_ptr<PageFile>(new PageFile(path, fd, page_size, 0));
}

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path,
                                                 size_t page_size) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("fstat", path);
  }
  if (st.st_size % static_cast<off_t>(page_size) != 0) {
    ::close(fd);
    return Status::Corruption("file size not a multiple of page size: " +
                              path);
  }
  uint64_t pages = static_cast<uint64_t>(st.st_size) / page_size;
  return std::unique_ptr<PageFile>(new PageFile(path, fd, page_size, pages));
}

Status PageFile::WritePage(uint64_t page_no, Slice payload) {
  if (payload.size() > page_size_) {
    return Status::InvalidArgument("page payload exceeds page size");
  }
  std::vector<char> buf(page_size_, 0);
  ::memcpy(buf.data(), payload.data(), payload.size());
  off_t offset = static_cast<off_t>(page_no * page_size_);
  ssize_t written = ::pwrite(fd_, buf.data(), page_size_, offset);
  if (written != static_cast<ssize_t>(page_size_)) {
    return ErrnoStatus("pwrite", path_);
  }
  if (page_no >= page_count_) page_count_ = page_no + 1;
  return Status::OK();
}

Status PageFile::ReadPage(uint64_t page_no, Buffer* out) const {
  if (page_no >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(page_no) +
                              " out of range in " + path_);
  }
  out->resize(page_size_);
  off_t offset = static_cast<off_t>(page_no * page_size_);
  ssize_t got = ::pread(fd_, out->mutable_data(), page_size_, offset);
  if (got != static_cast<ssize_t>(page_size_)) {
    return ErrnoStatus("pread", path_);
  }
  return Status::OK();
}

Status PageFile::Sync() {
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink", path);
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open(dir)", dir);
  Status st;
  if (::fsync(fd) != 0) {
    if (errno == EINVAL || errno == EACCES || errno == ENOTSUP) {
      // Some filesystems (and O_RDONLY directory handles on a few) reject
      // directory fsync outright rather than failing to persist anything.
      // Treat "not supported here" as success — failing would make every
      // rename/create path error out spuriously on such filesystems — but
      // warn once so reduced durability is not silent.
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        std::fprintf(stderr,
                     "lsmcol: warning: fsync(%s) rejected (%s); directory "
                     "durability not guaranteed on this filesystem\n",
                     dir.c_str(), ErrnoMessage(errno).c_str());
      }
    } else {
      st = ErrnoStatus("fsync(dir)", dir);
    }
  }
  ::close(fd);
  return st;
}

namespace {

/// Directory containing `path`: "." when there is no slash, "/" for
/// root-level paths.
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from + " -> " + to);
  }
  return SyncDir(ParentDir(to));
}

Status CreateDirDurable(const std::string& dir) {
  struct stat st;
  if (::stat(dir.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      return Status::IOError(dir + " exists and is not a directory");
    }
    return Status::OK();
  }
  // Record every missing ancestor: each created level's dirent must be
  // fsynced in its parent, or a crash can drop the whole subtree.
  std::vector<std::string> created;
  for (std::string cur = dir; !FileExists(cur);) {
    created.push_back(cur);
    std::string parent = ParentDir(cur);
    if (parent == cur || parent == "." || parent == "/") break;
    cur = std::move(parent);
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  for (auto it = created.rbegin(); it != created.rend(); ++it) {
    LSMCOL_RETURN_NOT_OK(SyncDir(ParentDir(*it)));
  }
  return Status::OK();
}

}  // namespace lsmcol
