#include "src/storage/file.h"

#include <errno.h>
#include <stdio.h>
#include <string.h>

#include <atomic>
#include <vector>

namespace lsmcol {
namespace {

std::atomic<uint64_t> g_next_file_id{1};

// "PGCK" little-endian: marks a page as carrying a trailer at all, so a
// checksum failure on a legacy page misread in checksummed mode reports
// as a format mismatch rather than random corruption.
constexpr uint32_t kPageTrailerMagic = 0x4B434750u;

void PutFixed32(char* dst, uint32_t v) {
  dst[0] = static_cast<char>(v & 0xff);
  dst[1] = static_cast<char>((v >> 8) & 0xff);
  dst[2] = static_cast<char>((v >> 16) & 0xff);
  dst[3] = static_cast<char>((v >> 24) & 0xff);
}

uint32_t GetFixed32(const char* src) {
  return static_cast<uint32_t>(static_cast<uint8_t>(src[0])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(src[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(src[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(src[3])) << 24);
}

/// Checksum of one page: FNV-1a over the zero-padded payload, continued
/// over the little-endian page number (covers misdirected I/O).
uint32_t PageChecksum(const char* payload, size_t n, uint64_t page_no) {
  uint32_t h = Fnv1a32(Slice(payload, n));
  char num[8];
  for (int i = 0; i < 8; ++i) {
    num[i] = static_cast<char>((page_no >> (8 * i)) & 0xff);
  }
  return Fnv1a32(Slice(num, sizeof(num)), h);
}

}  // namespace

std::string ErrnoMessage(int err) {
  char buf[256];
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // GNU strerror_r may return a static string instead of filling buf.
  return std::string(strerror_r(err, buf, sizeof(buf)));
#else
  if (strerror_r(err, buf, sizeof(buf)) != 0) {
    std::snprintf(buf, sizeof(buf), "errno %d", err);
  }
  return std::string(buf);
#endif
}

uint32_t Fnv1a32(Slice data, uint32_t seed) {
  uint32_t h = seed;
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 16777619u;
  }
  return h;
}

PageFile::PageFile(std::string path, std::unique_ptr<FsFile> file,
                   size_t page_size, bool checksummed, uint64_t page_count)
    : path_(std::move(path)),
      file_(std::move(file)),
      page_size_(page_size),
      checksummed_(checksummed),
      page_count_(page_count),
      file_id_(g_next_file_id.fetch_add(1)) {}

PageFile::~PageFile() = default;

Result<std::unique_ptr<PageFile>> PageFile::Create(const std::string& path,
                                                   size_t page_size,
                                                   bool checksummed,
                                                   FileSystem* fs) {
  LSMCOL_ASSIGN_OR_RETURN(auto file, ResolveFs(fs)->Create(path));
  return std::unique_ptr<PageFile>(
      new PageFile(path, std::move(file), page_size, checksummed, 0));
}

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path,
                                                 size_t page_size,
                                                 bool checksummed,
                                                 FileSystem* fs) {
  LSMCOL_ASSIGN_OR_RETURN(auto file,
                          ResolveFs(fs)->Open(path, /*writable=*/false));
  LSMCOL_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  const size_t physical =
      page_size + (checksummed ? kPageTrailerBytes : 0);
  if (size % physical != 0) {
    return Status::Corruption("file size not a multiple of page size: " +
                              path);
  }
  uint64_t pages = size / physical;
  return std::unique_ptr<PageFile>(
      new PageFile(path, std::move(file), page_size, checksummed, pages));
}

Status PageFile::WritePage(uint64_t page_no, Slice payload) {
  if (payload.size() > page_size_) {
    return Status::InvalidArgument("page payload exceeds page size");
  }
  const size_t physical = physical_page_size();
  std::vector<char> buf(physical, 0);
  ::memcpy(buf.data(), payload.data(), payload.size());
  if (checksummed_) {
    PutFixed32(buf.data() + page_size_,
               PageChecksum(buf.data(), page_size_, page_no));
    PutFixed32(buf.data() + page_size_ + 4, kPageTrailerMagic);
  }
  LSMCOL_RETURN_NOT_OK(
      file_->WriteAt(page_no * physical, Slice(buf.data(), physical)));
  if (page_no >= page_count_) page_count_ = page_no + 1;
  return Status::OK();
}

Status PageFile::ReadPage(uint64_t page_no, Buffer* out) const {
  if (page_no >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(page_no) +
                              " out of range in " + path_);
  }
  const size_t physical = physical_page_size();
  LSMCOL_RETURN_NOT_OK(file_->ReadAt(page_no * physical, physical, out));
  if (out->size() != physical) {
    return Status::IOError("short page read in " + path_ + " page " +
                           std::to_string(page_no));
  }
  if (checksummed_) {
    const char* trailer = out->data() + page_size_;
    const uint32_t want = GetFixed32(trailer);
    const uint32_t magic = GetFixed32(trailer + 4);
    if (magic != kPageTrailerMagic ||
        PageChecksum(out->data(), page_size_, page_no) != want) {
      return Status::ChecksumMismatch("page checksum mismatch in " + path_ +
                                      " page " + std::to_string(page_no));
    }
    out->resize(page_size_);
  }
  return Status::OK();
}

Status PageFile::Sync() { return file_->Sync(); }

Status RemoveFileIfExists(const std::string& path, FileSystem* fs) {
  fs = ResolveFs(fs);
  if (!fs->Exists(path)) return Status::OK();
  Status st = fs->RemoveFile(path);
  // Lost the race with another remover: the file is gone either way.
  if (!st.ok() && !fs->Exists(path)) return Status::OK();
  return st;
}

bool FileExists(const std::string& path, FileSystem* fs) {
  return ResolveFs(fs)->Exists(path);
}

Status SyncDir(const std::string& dir, FileSystem* fs) {
  return ResolveFs(fs)->SyncDir(dir);
}

Status RenameFile(const std::string& from, const std::string& to,
                  FileSystem* fs) {
  fs = ResolveFs(fs);
  LSMCOL_RETURN_NOT_OK(fs->Rename(from, to));
  return fs->SyncDir(ParentDir(to));
}

Status CreateDirDurable(const std::string& dir, FileSystem* fs) {
  fs = ResolveFs(fs);
  // Existing path: CreateDirs is a no-op for a directory and errors when
  // the path names a file, preserving the "exists but is not a
  // directory" diagnostic.
  if (fs->Exists(dir)) return fs->CreateDirs(dir);
  // Record every missing ancestor: each created level's dirent must be
  // fsynced in its parent, or a crash can drop the whole subtree.
  std::vector<std::string> created;
  for (std::string cur = dir; !fs->Exists(cur);) {
    created.push_back(cur);
    std::string parent = ParentDir(cur);
    if (parent == cur || parent == "." || parent == "/") break;
    cur = std::move(parent);
  }
  LSMCOL_RETURN_NOT_OK(fs->CreateDirs(dir));
  for (auto it = created.rbegin(); it != created.rend(); ++it) {
    LSMCOL_RETURN_NOT_OK(SyncDir(ParentDir(*it), fs));
  }
  return Status::OK();
}

}  // namespace lsmcol
