// FileSystem: the seam every byte of lsmcol I/O flows through.
//
// All storage-layer code (PageFile pages, WAL segments, manifest
// atomic-rewrite, directory fsync/rename/sweep) performs its I/O against
// this interface instead of raw POSIX calls. Production uses the process-
// wide PosixFileSystem singleton (DefaultFileSystem()); tests wrap it in
// a FaultInjectionFs (fault_injection_fs.h) to inject transient errors,
// ENOSPC quotas, bit flips, and simulated crashes that drop unsynced
// writes — the same binary exercises every error path the real kernel
// can produce, deterministically.
//
// The interface is deliberately small: positional reads/writes plus the
// handful of namespace operations the crash-safe install protocol needs
// (rename, directory fsync, sweep listing). Files are byte-oriented —
// page framing, checksums, and record framing live in the layers above.

#ifndef LSMCOL_STORAGE_FILESYSTEM_H_
#define LSMCOL_STORAGE_FILESYSTEM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"

namespace lsmcol {

/// Capped-exponential-backoff policy for retrying transient I/O errors
/// (see docs/ARCHITECTURE.md "Error handling & fault tolerance").
/// Transient means StatusCode::kIOError — the environment may recover
/// (EIO blips, ENOSPC freed by a merge). Corruption-class errors are
/// never retried. Attempt n (0-based) sleeps
/// min(initial_backoff_micros << n, max_backoff_micros) before retrying.
struct IoRetryOptions {
  /// Retries after the first failure; 0 disables retrying.
  int max_retries = 4;
  uint64_t initial_backoff_micros = 1000;
  uint64_t max_backoff_micros = 256 * 1000;
};

/// \brief One open file. Move-free, closes on destruction; not
/// thread-safe (every lsmcol file has a single owner at a time).
class FsFile {
 public:
  virtual ~FsFile() = default;
  FsFile(const FsFile&) = delete;
  FsFile& operator=(const FsFile&) = delete;

  /// Read up to `n` bytes at `offset` into `out` (resized to the bytes
  /// actually read; short only at end-of-file).
  virtual Status ReadAt(uint64_t offset, size_t n, Buffer* out) = 0;

  /// Write all of `data` at `offset`, extending the file as needed.
  virtual Status WriteAt(uint64_t offset, Slice data) = 0;

  /// Append all of `data` at the current end of file. On failure,
  /// `*appended` (may be null) reports how many bytes landed before the
  /// error so a retry can resume exactly where the write stopped.
  virtual Status Append(Slice data, size_t* appended = nullptr) = 0;

  /// fsync(2). A failed sync leaves the unsynced data in unknown state —
  /// callers must treat it as lost (fail closed), never retry it.
  virtual Status Sync() = 0;

  virtual Status Truncate(uint64_t size) = 0;

  virtual Result<uint64_t> Size() = 0;

  const std::string& path() const { return path_; }

 protected:
  explicit FsFile(std::string path) : path_(std::move(path)) {}

  std::string path_;
};

/// \brief Filesystem namespace + file factory. Thread-safe: background
/// flush/merge/WAL threads and foreground opens call in concurrently.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Create (truncating any existing file) for read/write.
  virtual Result<std::unique_ptr<FsFile>> Create(const std::string& path) = 0;

  /// Open an existing file; `writable` selects O_RDWR over O_RDONLY.
  virtual Result<std::unique_ptr<FsFile>> Open(const std::string& path,
                                               bool writable) = 0;

  /// rename(2): atomically replace `to` with `from`. Durability of the
  /// new dirent needs a subsequent SyncDir of the parent.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// link(2): make `to` a second name for `from`'s inode (no data copy —
  /// the same-filesystem backup fast path for immutable files). Default
  /// is NotSupported; callers must fall back to copying. `to` must not
  /// exist.
  virtual Status LinkFile(const std::string& from, const std::string& to) {
    return Status::NotSupported("hard links not supported: " + from + " -> " +
                                to);
  }

  /// unlink(2); removing a non-existent file is an error here (use
  /// RemoveFileIfExists in file.h for the tolerant flavor).
  virtual Status RemoveFile(const std::string& path) = 0;

  virtual bool Exists(const std::string& path) = 0;

  /// fsync a directory. Filesystems that reject directory fsync outright
  /// report success (with a one-time warning) — see the POSIX impl.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// Create `dir` and missing ancestors (no dirent fsync — callers that
  /// need durability use CreateDirDurable in file.h).
  virtual Status CreateDirs(const std::string& dir) = 0;

  /// Names (not paths) of the regular files in `dir`, unordered.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
};

/// The process-wide POSIX filesystem.
FileSystem* DefaultFileSystem();

/// `fs` if non-null, else DefaultFileSystem() — the convention every
/// fs-parameterized API in the storage layer follows.
inline FileSystem* ResolveFs(FileSystem* fs) {
  return fs != nullptr ? fs : DefaultFileSystem();
}

/// Directory containing `path`: "." when there is no slash, "/" for
/// root-level paths.
std::string ParentDir(const std::string& path);

}  // namespace lsmcol

#endif  // LSMCOL_STORAGE_FILESYSTEM_H_
