// PageFile: fixed-size-page file I/O over the FileSystem abstraction.
// One PageFile backs one LSM on-disk component. All reads normally go
// through the BufferCache so that I/O is counted and cached.
//
// Checksummed mode (component format v3, docs/FORMAT.md#page-trailer):
// every physical page carries an 8-byte trailer — fixed32 FNV-1a over
// the zero-padded payload plus the page number, then a fixed32 trailer
// magic. The trailer is *added* to the page: a physical page is
// page_size() + kPageTrailerBytes bytes, so page_size() keeps meaning
// "payload bytes per page" and none of the chunking arithmetic above
// this layer changes. ReadPage verifies the trailer on every physical
// read (i.e. on every BufferCache miss) and returns
// Status::ChecksumMismatch naming the file and page; including the page
// number in the checksum also catches misdirected reads and writes.
// Legacy (v2) files have no trailer and read back unverified.

#ifndef LSMCOL_STORAGE_FILE_H_
#define LSMCOL_STORAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/storage/filesystem.h"

namespace lsmcol {

/// Default on-disk page size (the paper's evaluation setting, §6).
inline constexpr size_t kDefaultPageSize = 128 * 1024;

/// Bytes of per-page trailer in checksummed mode: fixed32 FNV-1a +
/// fixed32 trailer magic.
inline constexpr size_t kPageTrailerBytes = 8;

/// A file of fixed-size pages. Move-only; closes on destruction.
class PageFile {
 public:
  ~PageFile();
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Create (truncate) a file for writing. `page_size` is the payload
  /// bytes per page; with `checksummed`, each physical page carries
  /// kPageTrailerBytes of verification trailer on top.
  static Result<std::unique_ptr<PageFile>> Create(const std::string& path,
                                                  size_t page_size,
                                                  bool checksummed = true,
                                                  FileSystem* fs = nullptr);
  /// Open an existing file for reading. `checksummed` must match how the
  /// file was written (component_file.cc sniffs the footer to decide).
  static Result<std::unique_ptr<PageFile>> Open(const std::string& path,
                                                size_t page_size,
                                                bool checksummed = false,
                                                FileSystem* fs = nullptr);

  /// Write one page. `payload` must be <= page_size; it is zero-padded
  /// (and, in checksummed mode, trailed with its checksum). Pages may be
  /// written in any order but the file grows as needed.
  Status WritePage(uint64_t page_no, Slice payload);

  /// Read one full page payload into out (resized to page_size). In
  /// checksummed mode the trailer is verified first: a mismatch returns
  /// Status::ChecksumMismatch naming this file and page.
  Status ReadPage(uint64_t page_no, Buffer* out) const;

  Status Sync();

  /// Payload bytes per page (what callers chunk by).
  size_t page_size() const { return page_size_; }
  /// Bytes per page on disk (payload + trailer in checksummed mode).
  size_t physical_page_size() const {
    return page_size_ + (checksummed_ ? kPageTrailerBytes : 0);
  }
  bool checksummed() const { return checksummed_; }
  uint64_t page_count() const { return page_count_; }
  const std::string& path() const { return path_; }

  /// Identifier unique within the process (buffer-cache key component).
  uint64_t file_id() const { return file_id_; }

  /// Total bytes on disk.
  uint64_t size_bytes() const { return page_count_ * physical_page_size(); }

 private:
  PageFile(std::string path, std::unique_ptr<FsFile> file, size_t page_size,
           bool checksummed, uint64_t page_count);

  std::string path_;
  std::unique_ptr<FsFile> file_;
  size_t page_size_;
  bool checksummed_;
  uint64_t page_count_;
  uint64_t file_id_;
};

/// Thread-safe strerror: the message for `err` (usually errno) without
/// the shared static buffer strerror(3) hands out.
std::string ErrnoMessage(int err);

/// FNV-1a 32-bit over `data`, optionally continuing a running hash. The
/// one checksum lsmcol uses (pages, WAL frames, manifests).
uint32_t Fnv1a32(Slice data, uint32_t seed = 2166136261u);

/// Delete a file (ignores non-existence).
Status RemoveFileIfExists(const std::string& path, FileSystem* fs = nullptr);

/// True when `path` names an existing file or directory.
bool FileExists(const std::string& path, FileSystem* fs = nullptr);

/// Atomically replace `to` with `from` (rename(2)), then fsync the
/// containing directory so the rename itself is durable. This is the
/// installation step of crash-safe component and manifest writes: readers
/// only ever observe the old or the new file, never a partial one.
Status RenameFile(const std::string& from, const std::string& to,
                  FileSystem* fs = nullptr);

/// fsync a directory (durability of renames/creates within it).
Status SyncDir(const std::string& dir, FileSystem* fs = nullptr);

/// Create `dir` (and parents) if missing and fsync its parent so the new
/// dirent survives a crash. No-op when `dir` already exists.
Status CreateDirDurable(const std::string& dir, FileSystem* fs = nullptr);

}  // namespace lsmcol

#endif  // LSMCOL_STORAGE_FILE_H_
