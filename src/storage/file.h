// PageFile: fixed-size-page POSIX file I/O. One PageFile backs one LSM
// on-disk component. All reads normally go through the BufferCache so
// that I/O is counted and cached.

#ifndef LSMCOL_STORAGE_FILE_H_
#define LSMCOL_STORAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/buffer.h"
#include "src/common/status.h"

namespace lsmcol {

/// Default on-disk page size (the paper's evaluation setting, §6).
inline constexpr size_t kDefaultPageSize = 128 * 1024;

/// A file of fixed-size pages. Move-only; closes on destruction.
class PageFile {
 public:
  ~PageFile();
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Create (truncate) a file for writing.
  static Result<std::unique_ptr<PageFile>> Create(const std::string& path,
                                                  size_t page_size);
  /// Open an existing file for reading.
  static Result<std::unique_ptr<PageFile>> Open(const std::string& path,
                                                size_t page_size);

  /// Write one page. `payload` must be <= page_size; it is zero-padded.
  /// Pages may be written in any order but the file grows as needed.
  Status WritePage(uint64_t page_no, Slice payload);

  /// Read one full page into out (resized to page_size).
  Status ReadPage(uint64_t page_no, Buffer* out) const;

  Status Sync();

  size_t page_size() const { return page_size_; }
  uint64_t page_count() const { return page_count_; }
  const std::string& path() const { return path_; }

  /// Identifier unique within the process (buffer-cache key component).
  uint64_t file_id() const { return file_id_; }

  /// Total bytes on disk.
  uint64_t size_bytes() const { return page_count_ * page_size_; }

 private:
  PageFile(std::string path, int fd, size_t page_size, uint64_t page_count);

  std::string path_;
  int fd_;
  size_t page_size_;
  uint64_t page_count_;
  uint64_t file_id_;
};

/// Thread-safe strerror: the message for `err` (usually errno) without
/// the shared static buffer strerror(3) hands out.
std::string ErrnoMessage(int err);

/// Delete a file (ignores non-existence).
Status RemoveFileIfExists(const std::string& path);

/// True when `path` names an existing file or directory.
bool FileExists(const std::string& path);

/// Atomically replace `to` with `from` (rename(2)), then fsync the
/// containing directory so the rename itself is durable. This is the
/// installation step of crash-safe component and manifest writes: readers
/// only ever observe the old or the new file, never a partial one.
Status RenameFile(const std::string& from, const std::string& to);

/// fsync a directory (durability of renames/creates within it).
Status SyncDir(const std::string& dir);

/// Create `dir` (and parents) if missing and fsync its parent so the new
/// dirent survives a crash. No-op when `dir` already exists.
Status CreateDirDurable(const std::string& dir);

}  // namespace lsmcol

#endif  // LSMCOL_STORAGE_FILE_H_
