#include "src/storage/backup_manifest.h"

#include "src/common/buffer.h"
#include "src/storage/file.h"

namespace lsmcol {
namespace {

constexpr uint32_t kBackupMagic = 0x4C53424Bu;  // "LSBK"
constexpr uint8_t kBackupVersion = 1;
constexpr size_t kCopyChunk = 256 * 1024;

}  // namespace

std::string BackupManifestPath(const std::string& backup_dir) {
  return backup_dir + "/BACKUP.MANIFEST";
}

Status WriteBackupManifest(const std::string& backup_dir,
                           const BackupManifest& manifest, FileSystem* fs) {
  fs = ResolveFs(fs);
  Buffer out;
  out.AppendFixed32(kBackupMagic);
  out.AppendByte(kBackupVersion);
  out.AppendVarint64(manifest.sequence);
  out.AppendVarint64(manifest.files.size());
  for (const BackupFileEntry& f : manifest.files) {
    out.AppendByte(static_cast<uint8_t>(f.kind));
    out.AppendLengthPrefixed(Slice(f.dataset));
    out.AppendLengthPrefixed(Slice(f.rel_path));
    out.AppendVarint64(f.size);
    out.AppendFixed32(f.checksum);
    out.AppendVarint64(f.id);
  }
  out.AppendFixed32(Fnv1a32(out.slice()));

  const std::string path = BackupManifestPath(backup_dir);
  const std::string tmp = path + ".tmp";
  Status st;
  {
    auto file = fs->Create(tmp);
    if (!file.ok()) return file.status();
    st = (*file)->WriteAt(0, out.slice());
    if (st.ok()) st = (*file)->Sync();
  }
  if (st.ok()) st = RenameFile(tmp, path, fs);
  if (!st.ok()) (void)RemoveFileIfExists(tmp, fs);
  return st;
}

Result<BackupManifest> ReadBackupManifest(const std::string& backup_dir,
                                          FileSystem* fs) {
  fs = ResolveFs(fs);
  const std::string path = BackupManifestPath(backup_dir);
  LSMCOL_ASSIGN_OR_RETURN(auto file, fs->Open(path, /*writable=*/false));
  std::string raw;
  Buffer chunk;
  uint64_t offset = 0;
  while (true) {
    LSMCOL_RETURN_NOT_OK(file->ReadAt(offset, kCopyChunk, &chunk));
    if (chunk.size() == 0) break;
    raw.append(chunk.data(), chunk.size());
    offset += chunk.size();
  }
  if (raw.size() < 4 + 1 + 4) {
    return Status::Corruption("backup manifest too short: " + path);
  }
  const Slice payload(raw.data(), raw.size() - 4);
  if (Fnv1a32(payload) != DecodeFixed32(raw.data() + raw.size() - 4)) {
    return Status::Corruption("backup manifest checksum mismatch: " + path);
  }
  BufferReader r(payload);
  uint32_t magic = 0;
  uint8_t version = 0;
  LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&magic));
  if (magic != kBackupMagic) {
    return Status::Corruption("bad backup manifest magic: " + path);
  }
  LSMCOL_RETURN_NOT_OK(r.ReadByte(&version));
  if (version != kBackupVersion) {
    return Status::Corruption("unsupported backup manifest version " +
                              std::to_string(version) + ": " + path);
  }
  BackupManifest m;
  LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&m.sequence));
  uint64_t count = 0;
  LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    BackupFileEntry entry;
    uint8_t kind = 0;
    LSMCOL_RETURN_NOT_OK(r.ReadByte(&kind));
    if (kind < 1 || kind > 3) {
      return Status::Corruption("bad backup file kind in " + path);
    }
    entry.kind = static_cast<BackupFileKind>(kind);
    Slice s;
    LSMCOL_RETURN_NOT_OK(r.ReadLengthPrefixed(&s));
    entry.dataset.assign(s.data(), s.size());
    LSMCOL_RETURN_NOT_OK(r.ReadLengthPrefixed(&s));
    entry.rel_path.assign(s.data(), s.size());
    LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&entry.size));
    LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&entry.checksum));
    LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&entry.id));
    m.files.push_back(std::move(entry));
  }
  return m;
}

Status HashFile(const std::string& path, uint64_t* size, uint32_t* checksum,
                FileSystem* fs) {
  fs = ResolveFs(fs);
  LSMCOL_ASSIGN_OR_RETURN(auto file, fs->Open(path, /*writable=*/false));
  uint64_t offset = 0;
  uint32_t fnv = Fnv1a32(Slice());  // the FNV offset basis
  Buffer chunk;
  while (true) {
    LSMCOL_RETURN_NOT_OK(file->ReadAt(offset, kCopyChunk, &chunk));
    if (chunk.size() == 0) break;
    fnv = Fnv1a32(chunk.slice(), fnv);
    offset += chunk.size();
  }
  *size = offset;
  *checksum = fnv;
  return Status::OK();
}

Status CopyFileVerified(const std::string& src, const std::string& dst,
                        uint64_t want_size, uint32_t want_checksum,
                        FileSystem* fs) {
  fs = ResolveFs(fs);
  Status st;
  uint64_t copied = 0;
  uint32_t fnv = Fnv1a32(Slice());
  {
    LSMCOL_ASSIGN_OR_RETURN(auto in, fs->Open(src, /*writable=*/false));
    auto out = fs->Create(dst);
    if (!out.ok()) return out.status();
    Buffer chunk;
    while (st.ok()) {
      st = in->ReadAt(copied, kCopyChunk, &chunk);
      if (!st.ok() || chunk.size() == 0) break;
      fnv = Fnv1a32(chunk.slice(), fnv);
      st = (*out)->WriteAt(copied, chunk.slice());
      copied += chunk.size();
    }
    if (st.ok()) st = (*out)->Sync();
  }
  if (st.ok() && (copied != want_size || fnv != want_checksum)) {
    st = Status::ChecksumMismatch(
        "copy of " + src + " does not match its catalog entry (size " +
        std::to_string(copied) + " vs " + std::to_string(want_size) + ")");
  }
  if (!st.ok()) {
    (void)RemoveFileIfExists(dst, fs);
    return st;
  }
  return Status::OK();
}

}  // namespace lsmcol
