// BackupManifest: the checksummed catalog of one backup directory.
//
// A backup is a directory holding, per dataset, a subdirectory of copied
// component files, trimmed WAL segments, and the dataset MANIFEST taken
// at the pin instant — plus this top-level BACKUP.MANIFEST naming every
// file with its size and whole-file checksum. The catalog is written
// atomically LAST (after every data file is synced), so a crash while
// the backup was being taken leaves either a complete, verifiable backup
// or one with no catalog — never a catalog pointing at missing or torn
// files. Restore and repair refuse any file whose size or checksum
// disagrees with the catalog.
//
// This lives in the storage layer (not src/store) so Dataset's repair
// path can read catalogs without a store->lsm dependency cycle; the
// backup *engine* (snapshot pinning, copying) lives in src/store/backup.

#ifndef LSMCOL_STORAGE_BACKUP_MANIFEST_H_
#define LSMCOL_STORAGE_BACKUP_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/filesystem.h"

namespace lsmcol {

/// What one cataloged file is. Stored as a raw byte on disk.
enum class BackupFileKind : uint8_t {
  kComponent = 1,        ///< immutable component file (id = component id)
  kWalSegment = 2,       ///< trimmed WAL segment (id = segment sequence)
  kDatasetManifest = 3,  ///< the dataset MANIFEST at the pin instant
};

/// One file in the backup, with enough identity for incremental reuse
/// (component id + checksum) and for repair to find a replacement.
struct BackupFileEntry {
  BackupFileKind kind = BackupFileKind::kComponent;
  std::string dataset;   ///< owning dataset name
  std::string rel_path;  ///< path relative to the backup root
  uint64_t size = 0;     ///< exact file size in bytes
  uint32_t checksum = 0; ///< FNV-1a32 of the whole file content
  uint64_t id = 0;       ///< component id / WAL sequence; 0 for manifests
};

struct BackupManifest {
  /// Bumped on every CreateBackup into the same directory (incremental
  /// backups rewrite the catalog over the reused files).
  uint64_t sequence = 0;
  std::vector<BackupFileEntry> files;
};

/// Canonical catalog path: `<backup_dir>/BACKUP.MANIFEST`.
std::string BackupManifestPath(const std::string& backup_dir);

/// Serialize + write atomically (temp, fsync, rename, dir fsync).
Status WriteBackupManifest(const std::string& backup_dir,
                           const BackupManifest& manifest,
                           FileSystem* fs = nullptr);

/// Read and verify (magic, version, checksum) a backup catalog.
Result<BackupManifest> ReadBackupManifest(const std::string& backup_dir,
                                          FileSystem* fs = nullptr);

/// Whole-file FNV-1a32 + size of `path`, streamed through `fs`.
Status HashFile(const std::string& path, uint64_t* size, uint32_t* checksum,
                FileSystem* fs = nullptr);

/// Copy `src` to `dst` through `fs`, fsyncing the copy, and verify the
/// copied bytes hash to `want_checksum` / `want_size` (pass the values
/// from the catalog — or from a fresh HashFile of the source — so a bit
/// flip during the copy is caught before anyone trusts the new file).
/// On mismatch the destination is removed and ChecksumMismatch returned.
Status CopyFileVerified(const std::string& src, const std::string& dst,
                        uint64_t want_size, uint32_t want_checksum,
                        FileSystem* fs = nullptr);

}  // namespace lsmcol

#endif  // LSMCOL_STORAGE_BACKUP_MANIFEST_H_
