// WriteAheadLog: per-dataset durability for the in-memory LSM components.
//
// Every Insert/Delete appends one checksummed, length-prefixed record to
// an append-only segment file (`<name>_<seq>.wal`, see docs/FORMAT.md#wal)
// *before* it is applied to the memtable, and is acknowledged to the
// caller only once the record is fsync-durable. Recovery replays the
// surviving segments into the memtable after manifest recovery, so a
// crash loses nothing that was ever acknowledged — the gap the
// manifest-only durability story left open (active and sealed memtables
// vanished on crash).
//
// Group commit: appends land in an in-memory batch under the log mutex;
// Sync(lsn) elects the first waiter as *leader*, which (optionally, after
// lingering up to `group_window_us` or `max_group_bytes` to let more
// writers join) writes the whole batch and issues a single fsync while
// followers wait on the durable-LSN condvar. One fsync thus covers every
// concurrent writer — the dominant single-core concurrency win the fig13
// data shows. With `group_commit = false` each Sync covers only its own
// LSN (sync-per-write, the degenerate case used as the ablation baseline).
//
// Segment lifecycle: the active segment always corresponds to the active
// memtable — Dataset rotates the log (seal + fsync + new segment) exactly
// when it seals the memtable, and deletes segments only once the covering
// flush's component is manifest-durable (the manifest records `wal_floor`,
// the lowest segment that may still hold unflushed data). A crash between
// the manifest rewrite and the segment unlink merely leaves a stale
// segment whose replay is idempotent (it re-inserts rows the newest
// component already holds).
//
// Torn tails: a crash mid-append leaves a trailing partial record. Replay
// stops at the first short or checksum-failing frame of the *newest*
// segment and truncates the file there; a bad frame in any older segment
// is real corruption and fails recovery.

#ifndef LSMCOL_STORAGE_WAL_H_
#define LSMCOL_STORAGE_WAL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/storage/filesystem.h"

namespace lsmcol {

/// Per-dataset write-ahead-log knob (DatasetOptions::wal). Disabled by
/// default: the historical contract (Flush() is the durability point)
/// stays free of per-write fsyncs; enabling buys crash durability for
/// every acknowledged write.
struct WalOptions {
  /// Log every Insert/Delete and replay the log at Dataset::Open. When
  /// off, the other fields are ignored.
  bool enabled = false;
  /// Amortize fsyncs across concurrent writers (leader/follower group
  /// commit). false = sync-per-write: every acknowledged write pays its
  /// own fsync (the degenerate case; the WAL ablation's baseline).
  bool group_commit = true;
  /// How long a group-commit leader lingers for more writers to join its
  /// batch before syncing, in microseconds. 0 (the default) syncs
  /// immediately — batches still form naturally, because appends keep
  /// landing while the previous leader's fsync is in flight and the next
  /// leader covers them all. A non-zero window stretches batches further
  /// at the price of that much added commit latency on *every* group; it
  /// only pays off when fsync is much cheaper than the window (rare) or
  /// writers arrive in bursts wider than the fsync time. Capped at 1 s
  /// by validation.
  uint32_t group_window_us = 0;
  /// A lingering leader syncs as soon as the pending batch reaches this
  /// many bytes, window or not. Must be positive.
  size_t max_group_bytes = 1u << 20;
  /// Transient-error policy for segment writes: a failed write() is
  /// retried (resuming at the exact byte where it stopped) with capped
  /// exponential backoff before the log fails closed. fsync failures are
  /// never retried — after a failed fsync the kernel may have dropped
  /// the dirty pages, so the only safe answer is fail-closed.
  IoRetryOptions retry;
};

/// WAL observability, folded into DatasetStats by Dataset::stats().
struct WalStats {
  uint64_t appends = 0;        ///< records appended
  uint64_t syncs = 0;          ///< physical fsyncs issued
  uint64_t bytes = 0;          ///< record bytes written (framing included)
  uint64_t group_entries_max = 0;  ///< largest single-fsync group
  uint64_t rotations = 0;      ///< segments sealed
  uint64_t io_retries = 0;     ///< transient write errors retried
  uint64_t retry_backoff_micros = 0;  ///< total backoff slept
};

/// One record decoded during replay. `row` points into the replay buffer
/// and is only valid inside the callback.
struct WalReplayEntry {
  uint64_t lsn = 0;
  bool anti_matter = false;  ///< true for Delete records
  int64_t key = 0;
  Slice row;                 ///< encoded row; empty for anti-matter
};

/// Result of ReplayWalSegments: where the log ended, so the reopened
/// WriteAheadLog continues the LSN sequence and segment numbering.
struct WalReplayResult {
  uint64_t records = 0;           ///< records replayed
  uint64_t next_lsn = 1;          ///< first unused LSN
  uint64_t next_segment_seq = 1;  ///< first unused segment sequence
  uint64_t truncated_bytes = 0;   ///< torn tail removed from the newest segment
};

/// Canonical segment path: `<dir>/<name>_<seq>.wal`.
std::string WalSegmentPath(const std::string& dir, const std::string& name,
                           uint64_t seq);

/// Replay every live segment (sequence >= `floor`) of `<dir>/<name>` in
/// sequence order, invoking `apply` per record in LSN order. Segments
/// below `floor` are crash leftovers (their data is manifest-durable) and
/// are deleted. The newest segment is torn-tail tolerant: replay stops at
/// the first bad frame and truncates the file there; a bad frame in an
/// older segment returns Corruption. `apply` returning non-OK aborts.
Result<WalReplayResult> ReplayWalSegments(
    const std::string& dir, const std::string& name, uint64_t floor,
    const std::function<Status(const WalReplayEntry&)>& apply,
    FileSystem* fs = nullptr);

/// Copy the prefix of WAL segment `src` (with sequence `seq`) whose
/// records all have LSN <= `cut_lsn` into `dst`, validating the segment
/// header and every frame checksum along the way; the copy is fsynced.
/// The hot-backup helper: the caller pins `cut_lsn` and syncs the log up
/// to it first, so every frame <= cut_lsn is intact on disk — the walk
/// stops at the first frame beyond the cut or at the first torn/bad
/// frame (necessarily the unsynced tail, which holds no acknowledged
/// write). Frames actually copied are reported via `*frames` (may be
/// null).
Status CopyWalSegmentPrefix(const std::string& src, const std::string& dst,
                            uint64_t seq, uint64_t cut_lsn, uint64_t* frames,
                            FileSystem* fs = nullptr);

/// The append/commit side. Thread-safe: any number of concurrent
/// Append+Sync callers; Rotate and DeleteSegmentsBelow are serialized by
/// the caller (Dataset holds its own mutex around the seal lifecycle).
class WriteAheadLog {
 public:
  /// Create the segment `next_segment_seq` and return a log whose next
  /// append gets `next_lsn`. The fresh segment's header is written,
  /// fsynced, and its dirent made durable before returning.
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& dir, const std::string& name,
      const WalOptions& options, uint64_t next_segment_seq,
      uint64_t next_lsn, FileSystem* fs = nullptr);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Append one record to the pending batch (no I/O) and return its LSN.
  /// The record is durable — and the write may be acknowledged — only
  /// once Sync() has covered the returned LSN. Fails once a previous sync
  /// hit an I/O error (the log is fail-closed; see Dataset's handling).
  Result<uint64_t> Append(bool anti_matter, int64_t key, Slice row)
      LSMCOL_EXCLUDES(mu_);

  /// Block until every record up to `lsn` is fsync-durable. Implements
  /// group commit: the first waiter leads (lingers, writes, fsyncs once),
  /// the rest ride along on its fsync.
  Status Sync(uint64_t lsn) LSMCOL_EXCLUDES(mu_);

  /// Seal the active segment (write out pending records, fsync, close)
  /// and start segment `sequence()+1`. Returns the sealed segment's
  /// sequence. Called by Dataset at memtable seal, under the dataset
  /// mutex; waits out any in-flight leader sync first.
  Result<uint64_t> Rotate() LSMCOL_EXCLUDES(mu_);

  /// Unlink every sealed segment with sequence < `floor`. Called after
  /// the covering flush's manifest rewrite succeeded. Takes no lock: it
  /// touches only the immutable dir/name and the filesystem (sealed
  /// segments are never written again), so it can run while appends and
  /// syncs proceed.
  Status DeleteSegmentsBelow(uint64_t floor);

  /// Sequence of the segment currently receiving appends.
  uint64_t active_segment() const LSMCOL_EXCLUDES(mu_);
  /// Highest LSN acknowledged durable so far.
  uint64_t durable_lsn() const LSMCOL_EXCLUDES(mu_);
  /// Highest LSN ever handed out by Append (pending or durable).
  uint64_t appended_lsn() const LSMCOL_EXCLUDES(mu_);
  /// The sticky failed-closed error, or OK. While non-OK the log rejects
  /// appends and syncs ("wedged") until the next Rotate() recovers it —
  /// surfaced through Store::Health() so operators see the wedge.
  Status io_status() const LSMCOL_EXCLUDES(mu_);
  WalStats stats() const LSMCOL_EXCLUDES(mu_);

 private:
  /// Dataset::mu_ declares ACQUIRED_BEFORE(wal_->mu_) — the one cross-
  /// subsystem lock-order edge — which needs to name this private mutex.
  friend class Dataset;

  WriteAheadLog(std::string dir, std::string name, const WalOptions& options,
                FileSystem* fs);

  /// Open `active_segment_`'s file and write its header (not fsynced).
  Status CreateActiveSegmentLocked() LSMCOL_REQUIRES(mu_);
  /// Leader body: append `batch` to `file` then fsync it. Transient
  /// write errors are retried per options_.retry, resuming at the byte
  /// where the failed write stopped; fsync is never retried. Touches no
  /// shared state beyond const options — callers snapshot the file under
  /// mu_ and may (leader) or may not (rotation) release it around the
  /// I/O; retry counts are returned for the caller to fold into stats_
  /// under mu_.
  Status WriteAndSync(FsFile* file, const std::string& batch,
                      uint64_t* retries, uint64_t* backoff_micros);

  const std::string dir_;
  const std::string name_;
  const WalOptions options_;
  FileSystem* const fs_;

  mutable Mutex mu_{MutexRank::kWal};
  /// Wakes followers when durable_lsn_ advances, the leader role frees,
  /// or an append joins a lingering leader's batch.
  CondVar cv_;

  std::unique_ptr<FsFile> file_ LSMCOL_GUARDED_BY(mu_);
  uint64_t active_segment_ LSMCOL_GUARDED_BY(mu_) = 1;
  uint64_t next_lsn_ LSMCOL_GUARDED_BY(mu_) = 1;
  /// Highest LSN in pending_ or durable.
  uint64_t appended_lsn_ LSMCOL_GUARDED_BY(mu_) = 0;
  uint64_t durable_lsn_ LSMCOL_GUARDED_BY(mu_) = 0;
  /// Framed records awaiting write+fsync.
  std::string pending_ LSMCOL_GUARDED_BY(mu_);
  /// (lsn, end offset in pending_) per pending frame, append order.
  std::deque<std::pair<uint64_t, size_t>> pending_frames_
      LSMCOL_GUARDED_BY(mu_);
  bool sync_in_flight_ LSMCOL_GUARDED_BY(mu_) = false;
  /// Bytes of the active segment known fsync-durable (header + every
  /// successfully synced batch). A failed batch leaves the file with an
  /// unacknowledged — possibly torn — tail beyond this offset; rotation
  /// truncates back to it when it recovers a failed-closed log.
  uint64_t synced_bytes_ LSMCOL_GUARDED_BY(mu_) = 0;
  /// First I/O error; the log rejects appends/syncs once set (fail
  /// closed: an un-durable WAL must not acknowledge writes). Cleared by
  /// the next Rotate(), which seals a clean truncated segment and opens
  /// a fresh one — the recovery point Dataset::Flush drives.
  Status io_status_ LSMCOL_GUARDED_BY(mu_);
  WalStats stats_ LSMCOL_GUARDED_BY(mu_);
};

}  // namespace lsmcol

#endif  // LSMCOL_STORAGE_WAL_H_
