// Durable per-dataset MANIFEST: the recovery metadata of one LSM dataset.
//
// The manifest is the single source of truth for what a dataset looks like
// on disk: the ordered (newest-first) list of live component files, the
// next component id, the dataset's identity (name, layout, primary key,
// page size), and — for columnar layouts — the serialized schema at the
// time of the last flush/merge. It is rewritten after every flush and
// merge via write-to-temp + fsync + rename(2) + directory fsync, so a
// crash at any point leaves either the old or the new manifest, never a
// torn one. A trailing checksum rejects partial/corrupt files on read.
//
// Component files referenced by the manifest are installed with the same
// rename protocol *before* the manifest records them; files in the dataset
// directory that the manifest does not reference (plus any `*.tmp`
// leftovers) are garbage from an interrupted flush/merge and are removed
// by RemoveStaleDatasetFiles during Store/Dataset open.
//
// The storage layer is layout-agnostic, so the layout is carried as a raw
// byte here; src/lsm interprets it as a LayoutKind.

#ifndef LSMCOL_STORAGE_MANIFEST_H_
#define LSMCOL_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/filesystem.h"

namespace lsmcol {

/// One live component as recorded by the manifest. `file` is the file
/// name relative to the dataset directory (manifests stay valid when the
/// directory is moved wholesale).
struct ManifestComponentEntry {
  uint64_t id = 0;
  std::string file;
};

/// A persisted first-damage record: component `component_id` was observed
/// to be damaged (quarantined) and must come back quarantined after a
/// restart — a reboot must not silently "heal" a known-bad file. The
/// status code byte is a StatusCode (common/status.h); storage stays
/// layout- and status-agnostic and round-trips it as raw data.
struct ManifestDamageEntry {
  uint64_t component_id = 0;
  uint8_t status_code = 0;
  std::string reason;
};

/// Parsed (or to-be-written) manifest contents. Compression is *not*
/// recorded here: it is a runtime knob for future components, and every
/// component self-describes its own compression in its metadata page.
struct Manifest {
  /// Bumped on every rewrite; a reopened dataset continues the count.
  uint64_t sequence = 0;
  std::string dataset_name;
  uint8_t layout = 0;  ///< LayoutKind byte (storage is layout-agnostic)
  std::string pk_field;
  uint64_t page_size = 0;
  uint64_t next_component_id = 1;
  /// Lowest WAL segment sequence that may still hold writes not covered
  /// by the components below — recovery replays segments >= this and may
  /// delete the rest (see storage/wal.h). 1 when no flush has ever
  /// covered a segment (and for v2 manifests, which predate the WAL).
  uint64_t wal_floor = 1;
  std::vector<ManifestComponentEntry> components;  ///< newest first
  std::string schema_blob;  ///< serialized Schema; empty for row layouts
  /// Quarantined components (v4+); entries for ids not in `components`
  /// are pruned by the writer, so stale damage never outlives the file
  /// it described.
  std::vector<ManifestDamageEntry> damaged;
};

/// Canonical manifest path for a dataset: `<dir>/<name>.MANIFEST`.
std::string ManifestPath(const std::string& dir, const std::string& name);

/// Serialize + write `manifest` to `path` atomically (temp file, fsync,
/// rename, directory fsync).
Status WriteManifest(const std::string& path, const Manifest& manifest,
                     FileSystem* fs = nullptr);

/// Read and verify (magic, version, checksum) a manifest.
Result<Manifest> ReadManifest(const std::string& path,
                              FileSystem* fs = nullptr);

/// Remove crash leftovers for one dataset in `dir`: any
/// `<name>_<digits>.cmp.tmp` / `<name>.MANIFEST.tmp`, any
/// `<name>_<digits>.cmp` not listed in `referenced` (file names relative
/// to `dir`), and any WAL segment `<name>_<digits>.wal` with sequence
/// below `wal_floor` (covered by manifest-durable components; pass the
/// manifest's wal_floor, or 0 to leave all WAL segments alone). Files of
/// other datasets sharing the directory are never touched (the
/// `<digits>` suffix checks keep prefix-sharing names like "a" vs "a_b"
/// apart). Returns the number of files removed via `*removed` (may be
/// null).
Status RemoveStaleDatasetFiles(const std::string& dir, const std::string& name,
                               const std::vector<std::string>& referenced,
                               uint64_t wal_floor, size_t* removed,
                               FileSystem* fs = nullptr);

}  // namespace lsmcol

#endif  // LSMCOL_STORAGE_MANIFEST_H_
