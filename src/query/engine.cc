#include "src/query/engine.h"

#include <algorithm>
#include <unordered_map>

#include "src/query/pushdown.h"

namespace lsmcol {
namespace {

// Group keys are concatenated length-prefixed so a '\x1f' (or any other
// byte) inside a key part can never make two distinct key tuples collide.
void AppendGroupKeyPart(const std::string& part, std::string* key) {
  uint64_t len = part.size();
  while (len >= 0x80) {
    key->push_back(static_cast<char>(len | 0x80));
    len >>= 7;
  }
  key->push_back(static_cast<char>(len));
  key->append(part);
}

// ----------------------------------------------------------- aggregation

struct AggState {
  uint64_t count = 0;
  double sum = 0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Value min;  // missing until first value
  Value max;
};

class Aggregator {
 public:
  explicit Aggregator(const QueryPlan* plan) : plan_(plan) {}

  Status Add(EvalContext* ctx) {
    // Evaluate group keys.
    std::string key;
    std::vector<Value> key_values(plan_->group_keys.size());
    for (size_t i = 0; i < plan_->group_keys.size(); ++i) {
      LSMCOL_RETURN_NOT_OK(plan_->group_keys[i]->Eval(ctx, &key_values[i]));
      AppendGroupKeyPart(GroupKey(key_values[i]), &key);
    }
    Group& group = groups_[key];
    if (group.states.empty()) {
      group.keys = std::move(key_values);
      group.states.resize(plan_->aggregates.size());
    }
    for (size_t i = 0; i < plan_->aggregates.size(); ++i) {
      const AggSpec& spec = plan_->aggregates[i];
      AggState& state = group.states[i];
      if (spec.input == nullptr) {  // COUNT(*)
        ++state.count;
        continue;
      }
      Value v;
      LSMCOL_RETURN_NOT_OK(spec.input->Eval(ctx, &v));
      if (v.is_missing() || v.is_null()) continue;
      switch (spec.kind) {
        case AggSpec::Kind::kCount:
          ++state.count;
          break;
        case AggSpec::Kind::kSum:
          if (!v.is_number()) break;
          ++state.count;
          if (v.is_int() && state.sum_is_int) {
            state.isum += v.int_value();
          } else {
            if (state.sum_is_int) {
              state.sum = static_cast<double>(state.isum);
              state.sum_is_int = false;
            }
            state.sum += v.as_double();
          }
          break;
        case AggSpec::Kind::kMin:
          if (state.min.is_missing() || CompareValues(v, state.min) < 0) {
            state.min = v;
          }
          break;
        case AggSpec::Kind::kMax:
          if (state.max.is_missing() || CompareValues(v, state.max) > 0) {
            state.max = v;
          }
          break;
      }
    }
    return Status::OK();
  }

  void FinishInto(QueryResult* result) {
    for (auto& [key, group] : groups_) {
      std::vector<Value> row = std::move(group.keys);
      for (size_t i = 0; i < plan_->aggregates.size(); ++i) {
        const AggSpec& spec = plan_->aggregates[i];
        AggState& state = group.states[i];
        switch (spec.kind) {
          case AggSpec::Kind::kCount:
            row.push_back(Value::Int(static_cast<int64_t>(state.count)));
            break;
          case AggSpec::Kind::kSum:
            if (state.count == 0) {
              row.push_back(Value::Null());
            } else if (state.sum_is_int) {
              row.push_back(Value::Int(state.isum));
            } else {
              row.push_back(Value::Double(state.sum));
            }
            break;
          case AggSpec::Kind::kMin:
            row.push_back(state.min.is_missing() ? Value::Null() : state.min);
            break;
          case AggSpec::Kind::kMax:
            row.push_back(state.max.is_missing() ? Value::Null() : state.max);
            break;
        }
      }
      result->rows.push_back(std::move(row));
    }
  }

  bool group_all() const { return plan_->group_keys.empty(); }

 private:
  struct Group {
    std::vector<Value> keys;
    std::vector<AggState> states;
  };

  const QueryPlan* plan_;
  std::unordered_map<std::string, Group> groups_;
};

void ApplyOrderAndLimit(const QueryPlan& plan, QueryResult* result) {
  if (plan.order_by >= 0) {
    const size_t column = static_cast<size_t>(plan.order_by);
    std::stable_sort(result->rows.begin(), result->rows.end(),
                     [&](const auto& a, const auto& b) {
                       int c = CompareValues(a[column], b[column]);
                       return plan.order_desc ? c > 0 : c < 0;
                     });
  }
  if (plan.limit > 0 && result->rows.size() > plan.limit) {
    result->rows.resize(plan.limit);
  }
}

// Runs the epilogue-facing part for one pipeline tuple.
Status EmitTuple(const QueryPlan& plan, EvalContext* ctx,
                 Aggregator* aggregator, QueryResult* result) {
  ++result->pipeline_tuples;
  if (!plan.aggregates.empty()) {
    return aggregator->Add(ctx);
  }
  std::vector<Value> row(plan.projections.size());
  for (size_t i = 0; i < plan.projections.size(); ++i) {
    LSMCOL_RETURN_NOT_OK(plan.projections[i]->Eval(ctx, &row[i]));
  }
  result->rows.push_back(std::move(row));
  return Status::OK();
}

// Applies unnests [level..] recursively, then the post-unnest filter and
// the epilogue. Shared by both engines (the engines differ in how record
// fields are *resolved*, not in tuple semantics). skip_filter is set by
// the compiled engine when pushed-down predicates already proved the
// post-unnest filter true for this record.
Status ApplyUnnests(const QueryPlan& plan, EvalContext* ctx, size_t level,
                    Aggregator* aggregator, QueryResult* result,
                    bool skip_filter = false) {
  if (level == plan.unnests.size()) {
    if (plan.filter != nullptr && !skip_filter) {
      Value pass;
      LSMCOL_RETURN_NOT_OK(plan.filter->Eval(ctx, &pass));
      if (!IsTrue(pass)) return Status::OK();
    }
    return EmitTuple(plan, ctx, aggregator, result);
  }
  const UnnestSpec& unnest = plan.unnests[level];
  Value arr;
  LSMCOL_RETURN_NOT_OK(unnest.array->Eval(ctx, &arr));
  if (!arr.is_array()) return Status::OK();  // UNNEST of non-array: no rows
  for (const Value& element : arr.array()) {
    ctx->vars.emplace_back(unnest.var, &element);
    Status st =
        ApplyUnnests(plan, ctx, level + 1, aggregator, result, skip_filter);
    ctx->vars.pop_back();
    LSMCOL_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

Projection ScanProjection(const QueryPlan& plan) {
  return Projection::Of(plan.ScanPaths());
}

// --------------------------------------------------- interpreted engine

// Hyracks-style: operators materialize whole batches of row tuples.
constexpr size_t kBatchSize = 1024;

struct InterpretedRow {
  Value record;                    // fully assembled (projected) record
  std::vector<Value> unnest_vars;  // one per applied unnest level
};

}  // namespace

Result<QueryResult> RunInterpreted(const Snapshot& snapshot,
                                   const QueryPlan& plan) {
  QueryResult result;
  Aggregator aggregator(&plan);
  LSMCOL_ASSIGN_OR_RETURN(auto cursor, snapshot.Scan(ScanProjection(plan)));

  std::vector<InterpretedRow> batch;
  batch.reserve(kBatchSize);

  auto process_batch = [&]() -> Status {
    // FILTER operator: materializes the passing subset.
    std::vector<InterpretedRow> current;
    if (plan.pre_filter != nullptr) {
      for (InterpretedRow& row : batch) {
        ValueFieldSource source(&row.record);
        EvalContext ctx;
        ctx.record = &source;
        Value pass;
        LSMCOL_RETURN_NOT_OK(plan.pre_filter->Eval(&ctx, &pass));
        if (IsTrue(pass)) current.push_back(std::move(row));
      }
    } else {
      current = std::move(batch);
    }
    batch.clear();
    // UNNEST operators: each level materializes a widened batch.
    for (size_t level = 0; level < plan.unnests.size(); ++level) {
      std::vector<InterpretedRow> next;
      for (InterpretedRow& row : current) {
        ValueFieldSource source(&row.record);
        EvalContext ctx;
        ctx.record = &source;
        for (size_t i = 0; i < row.unnest_vars.size(); ++i) {
          ctx.vars.emplace_back(plan.unnests[i].var, &row.unnest_vars[i]);
        }
        Value arr;
        LSMCOL_RETURN_NOT_OK(plan.unnests[level].array->Eval(&ctx, &arr));
        if (!arr.is_array()) continue;
        for (const Value& element : arr.array()) {
          InterpretedRow widened;
          widened.record = row.record;  // the materialization copy
          widened.unnest_vars = row.unnest_vars;
          widened.unnest_vars.push_back(element);
          next.push_back(std::move(widened));
        }
      }
      current = std::move(next);
    }
    // Post-unnest filter + epilogue feed.
    for (InterpretedRow& row : current) {
      ValueFieldSource source(&row.record);
      EvalContext ctx;
      ctx.record = &source;
      for (size_t i = 0; i < row.unnest_vars.size(); ++i) {
        ctx.vars.emplace_back(plan.unnests[i].var, &row.unnest_vars[i]);
      }
      if (plan.filter != nullptr) {
        Value pass;
        LSMCOL_RETURN_NOT_OK(plan.filter->Eval(&ctx, &pass));
        if (!IsTrue(pass)) continue;
      }
      LSMCOL_RETURN_NOT_OK(EmitTuple(plan, &ctx, &aggregator, &result));
    }
    return Status::OK();
  };

  while (true) {
    LSMCOL_ASSIGN_OR_RETURN(bool ok, cursor->Next());
    if (!ok) break;
    InterpretedRow row;
    // SCAN operator: assemble the (projected) record into a row tuple.
    LSMCOL_RETURN_NOT_OK(cursor->Record(&row.record));
    batch.push_back(std::move(row));
    if (batch.size() >= kBatchSize) {
      LSMCOL_RETURN_NOT_OK(process_batch());
    }
  }
  LSMCOL_RETURN_NOT_OK(process_batch());

  if (!plan.aggregates.empty()) aggregator.FinishInto(&result);
  ApplyOrderAndLimit(plan, &result);
  return result;
}

// ------------------------------------------------------ compiled engine

namespace {

/// FieldSource over the live scan cursor: paths are extracted straight
/// from the storage (columnar layouts assemble only the requested
/// subtree), memoized per record. The memo is keyed by the path vector's
/// ADDRESS — the plan's expression nodes are stable for the query's
/// lifetime, so pointer identity replaces per-record string hashing.
class CursorFieldSource : public FieldSource {
 public:
  explicit CursorFieldSource(TupleCursor* cursor) : cursor_(cursor) {}

  void NewRecord() { memo_.clear(); }

  Status Get(const std::vector<std::string>& path, Value* out) override {
    for (const MemoEntry& entry : memo_) {
      // Pointer identity first (same Expr node); content equality catches
      // distinct nodes naming the same path.
      if (entry.key == &path || *entry.key == path) {
        *out = entry.value;
        return Status::OK();
      }
    }
    LSMCOL_RETURN_NOT_OK(cursor_->Path(path, out));
    memo_.push_back({&path, *out});
    return Status::OK();
  }

 private:
  struct MemoEntry {
    const std::vector<std::string>* key;
    Value value;
  };

  TupleCursor* cursor_;
  std::vector<MemoEntry> memo_;  // a handful of paths; linear scan wins
};

}  // namespace

Result<QueryResult> RunCompiled(const Snapshot& snapshot,
                                const QueryPlan& plan) {
  QueryResult result;
  Aggregator aggregator(&plan);
  // Pushdown: hand the storage layer the filter's necessary conditions so
  // zone maps can veto whole leaves/megapages before any decode.
  PredicatePushdown pushdown;
  if (plan.pushdown) pushdown = ExtractPushdown(plan);
  LSMCOL_ASSIGN_OR_RETURN(
      auto cursor, snapshot.Scan(ScanProjection(plan), pushdown.predicates));
  CursorFieldSource source(cursor.get());
  EvalContext ctx;  // reused across records; unnest vars stay balanced
  ctx.record = &source;
  // The fused loop of Figure 11: while (c.hasNext()) { ... } with no
  // materialization between operators.
  while (true) {
    LSMCOL_ASSIGN_OR_RETURN(bool ok, cursor->Next());
    if (!ok) break;
    PredicateVerdict verdict = PredicateVerdict::kUnknown;
    if (pushdown.any()) {
      LSMCOL_ASSIGN_OR_RETURN(verdict, cursor->TestPushedPredicates());
      // kNoMatch: some necessary condition of the filter is false — the
      // record contributes nothing; skip without touching its columns.
      if (verdict == PredicateVerdict::kNoMatch) continue;
    }
    source.NewRecord();
    const bool covered = verdict == PredicateVerdict::kMatch;
    if (plan.pre_filter != nullptr &&
        !(covered && pushdown.pre_filter_exact)) {
      Value pass;
      LSMCOL_RETURN_NOT_OK(plan.pre_filter->Eval(&ctx, &pass));
      if (!IsTrue(pass)) continue;
    }
    const bool skip_post_filter =
        covered && pushdown.filter_extracted && pushdown.filter_exact;
    LSMCOL_RETURN_NOT_OK(
        ApplyUnnests(plan, &ctx, 0, &aggregator, &result, skip_post_filter));
  }
  if (!plan.aggregates.empty()) aggregator.FinishInto(&result);
  ApplyOrderAndLimit(plan, &result);
  return result;
}

Result<QueryResult> RunQuery(const Snapshot& snapshot, const QueryPlan& plan,
                             bool compiled) {
  return compiled ? RunCompiled(snapshot, plan)
                  : RunInterpreted(snapshot, plan);
}

Result<QueryResult> RunInterpreted(Dataset* dataset, const QueryPlan& plan) {
  return RunInterpreted(*dataset->GetSnapshot(), plan);
}

Result<QueryResult> RunCompiled(Dataset* dataset, const QueryPlan& plan) {
  return RunCompiled(*dataset->GetSnapshot(), plan);
}

Result<QueryResult> RunQuery(Dataset* dataset, const QueryPlan& plan,
                             bool compiled) {
  return RunQuery(*dataset->GetSnapshot(), plan, compiled);
}

}  // namespace lsmcol
