#include "src/query/pushdown.h"

#include <cmath>

namespace lsmcol {
namespace {

void CollectConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind() == Expr::Kind::kAnd) {
    CollectConjuncts(e->children()[0].get(), out);
    CollectConjuncts(e->children()[1].get(), out);
    return;
  }
  out->push_back(e);
}

bool IsPushableLiteral(const Value& v) {
  if (v.is_double() && std::isnan(v.double_value())) return false;
  return v.is_bool() || v.is_number() || v.is_string();
}

/// Compare(op, Field, Literal) or Compare(op, Literal, Field) with a
/// scalar literal and op in {<, <=, =, >=, >}.
bool TryExtract(const Expr& e, ScanPredicate* out) {
  if (e.kind() != Expr::Kind::kCompare) return false;
  const Expr& l = *e.children()[0];
  const Expr& r = *e.children()[1];
  const Expr* field = nullptr;
  const Expr* literal = nullptr;
  bool flipped = false;  // literal CMP field
  if (l.kind() == Expr::Kind::kField && r.kind() == Expr::Kind::kLiteral) {
    field = &l;
    literal = &r;
  } else if (l.kind() == Expr::Kind::kLiteral &&
             r.kind() == Expr::Kind::kField) {
    field = &r;
    literal = &l;
    flipped = true;
  } else {
    return false;
  }
  if (field->field_path().empty()) return false;
  const Value& lit = literal->literal_value();
  if (!IsPushableLiteral(lit)) return false;

  Expr::CmpOp op = e.cmp_op();
  if (flipped) {
    switch (op) {  // lit < x  ==  x > lit, etc.
      case Expr::CmpOp::kLt:
        op = Expr::CmpOp::kGt;
        break;
      case Expr::CmpOp::kLe:
        op = Expr::CmpOp::kGe;
        break;
      case Expr::CmpOp::kGe:
        op = Expr::CmpOp::kLe;
        break;
      case Expr::CmpOp::kGt:
        op = Expr::CmpOp::kLt;
        break;
      default:
        break;
    }
  }
  *out = ScanPredicate();
  out->path = field->field_path();
  switch (op) {
    case Expr::CmpOp::kLt:
      out->upper = lit;
      out->upper_inclusive = false;
      return true;
    case Expr::CmpOp::kLe:
      out->upper = lit;
      out->upper_inclusive = true;
      return true;
    case Expr::CmpOp::kEq:
      out->lower = lit;
      out->upper = lit;
      return true;
    case Expr::CmpOp::kGe:
      out->lower = lit;
      out->lower_inclusive = true;
      return true;
    case Expr::CmpOp::kGt:
      out->lower = lit;
      out->lower_inclusive = false;
      return true;
    case Expr::CmpOp::kNe:
      return false;  // mismatched-type != is true; not a range
  }
  return false;
}

/// Extract from one filter expression; returns whether every conjunct
/// was captured.
bool ExtractFrom(const Expr* expr, ScanPredicateSet* out) {
  if (expr == nullptr) return true;
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(expr, &conjuncts);
  bool exact = true;
  for (const Expr* conjunct : conjuncts) {
    ScanPredicate pred;
    if (TryExtract(*conjunct, &pred)) {
      out->push_back(std::move(pred));
    } else {
      exact = false;
    }
  }
  return exact;
}

}  // namespace

PredicatePushdown ExtractPushdown(const QueryPlan& plan) {
  PredicatePushdown result;
  result.pre_filter_exact =
      ExtractFrom(plan.pre_filter.get(), &result.predicates);
  if (plan.unnests.empty() && plan.filter != nullptr) {
    result.filter_extracted = true;
    result.filter_exact = ExtractFrom(plan.filter.get(), &result.predicates);
  }
  return result;
}

}  // namespace lsmcol
