// Dynamically typed expression trees (the runtime the paper's Truffle code
// generation targets, §5). Values carry their types at runtime; operators
// follow SQL++ semantics: comparing or combining incompatible types yields
// Missing (the paper's example: 10 > "ten" → NULL, §5).
//
// Record fields are resolved through a FieldSource so the same expression
// tree runs against a fully assembled record (interpreted engine) or
// against lazily extracted column paths (compiled engine).

#ifndef LSMCOL_QUERY_EXPR_H_
#define LSMCOL_QUERY_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/json/value.h"

namespace lsmcol {

/// Resolves a dotted record path for the current tuple.
class FieldSource {
 public:
  virtual ~FieldSource() = default;
  virtual Status Get(const std::vector<std::string>& path, Value* out) = 0;
};

/// FieldSource over an assembled record Value (interpreted engine).
/// Stepping a path into an array maps the remaining path over the
/// elements (SQL++ `a[*].b` semantics).
class ValueFieldSource : public FieldSource {
 public:
  explicit ValueFieldSource(const Value* record) : record_(record) {}
  Status Get(const std::vector<std::string>& path, Value* out) override;

 private:
  const Value* record_;
};

/// Evaluation context: the record's field source plus named variables
/// (unnest items, quantifier bindings).
struct EvalContext {
  FieldSource* record = nullptr;
  std::vector<std::pair<std::string, const Value*>> vars;

  const Value* FindVar(const std::string& name) const {
    for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    return nullptr;
  }
};

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// \brief A dynamically typed expression.
class Expr {
 public:
  enum class Kind : uint8_t {
    kLiteral,
    kField,     // path from the record
    kVar,       // named variable
    kVarPath,   // path below a variable
    kCompare,   // LT LE EQ GE GT NE
    kArith,     // ADD SUB MUL DIV
    kAnd,
    kOr,
    kNot,
    kIsArray,
    kIsMissing,
    kLength,      // string length
    kLower,       // lowercase string
    kArrayCount,  // number of elements
    kArrayDistinct,
    kArrayContains,  // (array, value)
    kArrayPairs,     // all unordered element pairs, as 2-element arrays
    kSome,           // SOME var IN array SATISFIES predicate
  };
  enum class CmpOp : uint8_t { kLt, kLe, kEq, kGe, kGt, kNe };
  enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };

  /// Evaluate; type mismatches produce Missing, never an error. Status
  /// errors are reserved for storage-level failures in the FieldSource.
  Status Eval(EvalContext* ctx, Value* out) const;

  Kind kind() const { return kind_; }
  /// All record paths referenced by this tree (projection pushdown).
  void CollectPaths(std::vector<std::vector<std::string>>* out) const;

  // Structural accessors (predicate pushdown inspects filter trees).
  CmpOp cmp_op() const { return cmp_op_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  /// Valid for kField (the record path).
  const std::vector<std::string>& field_path() const { return path_; }
  /// Valid for kLiteral.
  const Value& literal_value() const { return literal_; }

  // --- Factories ---
  static ExprPtr Literal(Value v);
  static ExprPtr Int(int64_t v) { return Literal(Value::Int(v)); }
  static ExprPtr Str(std::string s) {
    return Literal(Value::String(std::move(s)));
  }
  /// Dotted record path, e.g. Field({"name", "first"}).
  static ExprPtr Field(std::vector<std::string> path);
  static ExprPtr Var(std::string name);
  static ExprPtr VarPath(std::string name, std::vector<std::string> path);
  static ExprPtr Compare(CmpOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);
  static ExprPtr And(ExprPtr l, ExprPtr r);
  static ExprPtr Or(ExprPtr l, ExprPtr r);
  static ExprPtr Not(ExprPtr e);
  static ExprPtr IsArray(ExprPtr e);
  static ExprPtr IsMissing(ExprPtr e);
  static ExprPtr Length(ExprPtr e);
  static ExprPtr Lower(ExprPtr e);
  static ExprPtr ArrayCount(ExprPtr e);
  static ExprPtr ArrayDistinct(ExprPtr e);
  static ExprPtr ArrayContains(ExprPtr array, ExprPtr value);
  static ExprPtr ArrayPairs(ExprPtr e);
  /// SOME `var` IN `array` SATISFIES `predicate`.
  static ExprPtr Some(std::string var, ExprPtr array, ExprPtr predicate);

 private:
  explicit Expr(Kind kind) : kind_(kind) {}

  Kind kind_;
  Value literal_;
  std::vector<std::string> path_;
  std::string var_name_;
  CmpOp cmp_op_ = CmpOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  std::vector<ExprPtr> children_;
};

/// True iff v is boolean true (SQL++ WHERE semantics: missing/null/
/// non-boolean are not true).
bool IsTrue(const Value& v);

/// Total order over values for grouping/sorting: missing < null < bool <
/// numbers < strings < arrays < objects; numbers compare numerically.
int CompareValues(const Value& a, const Value& b);

/// Canonical grouping key (byte string) for a value.
std::string GroupKey(const Value& v);

}  // namespace lsmcol

#endif  // LSMCOL_QUERY_EXPR_H_
