#include "src/query/expr.h"

#include <algorithm>
#include <cctype>

#include "src/json/parser.h"

namespace lsmcol {

Status ValueFieldSource::Get(const std::vector<std::string>& path,
                             Value* out) {
  *out = WalkValuePath(*record_, path);
  return Status::OK();
}

bool IsTrue(const Value& v) { return v.is_bool() && v.bool_value(); }

int CompareValues(const Value& a, const Value& b) {
  auto rank = [](const Value& v) -> int {
    switch (v.type()) {
      case ValueType::kMissing:
        return 0;
      case ValueType::kNull:
        return 1;
      case ValueType::kBool:
        return 2;
      case ValueType::kInt64:
      case ValueType::kDouble:
        return 3;
      case ValueType::kString:
        return 4;
      case ValueType::kArray:
        return 5;
      case ValueType::kObject:
        return 6;
    }
    return 7;
  };
  const int ra = rank(a), rb = rank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
    case 1:
      return 0;
    case 2:
      return static_cast<int>(a.bool_value()) -
             static_cast<int>(b.bool_value());
    case 3: {
      const double da = a.as_double(), db = b.as_double();
      if (da < db) return -1;
      if (da > db) return 1;
      return 0;
    }
    case 4:
      return a.string_value().compare(b.string_value());
    case 5: {
      const size_t n = std::min(a.array().size(), b.array().size());
      for (size_t i = 0; i < n; ++i) {
        int c = CompareValues(a.array()[i], b.array()[i]);
        if (c != 0) return c;
      }
      if (a.array().size() < b.array().size()) return -1;
      if (a.array().size() > b.array().size()) return 1;
      return 0;
    }
    default:
      // Objects: compare canonical JSON (grouping only).
      return ToJson(a).compare(ToJson(b));
  }
}

std::string GroupKey(const Value& v) { return ToJson(v); }

// --- factories ---

ExprPtr Expr::Literal(Value v) {
  auto e = ExprPtr(new Expr(Kind::kLiteral));
  e->literal_ = std::move(v);
  return e;
}
ExprPtr Expr::Field(std::vector<std::string> path) {
  auto e = ExprPtr(new Expr(Kind::kField));
  e->path_ = std::move(path);
  return e;
}
ExprPtr Expr::Var(std::string name) {
  auto e = ExprPtr(new Expr(Kind::kVar));
  e->var_name_ = std::move(name);
  return e;
}
ExprPtr Expr::VarPath(std::string name, std::vector<std::string> path) {
  auto e = ExprPtr(new Expr(Kind::kVarPath));
  e->var_name_ = std::move(name);
  e->path_ = std::move(path);
  return e;
}
ExprPtr Expr::Compare(CmpOp op, ExprPtr l, ExprPtr r) {
  auto e = ExprPtr(new Expr(Kind::kCompare));
  e->cmp_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}
ExprPtr Expr::Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = ExprPtr(new Expr(Kind::kArith));
  e->arith_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}
ExprPtr Expr::And(ExprPtr l, ExprPtr r) {
  auto e = ExprPtr(new Expr(Kind::kAnd));
  e->children_ = {std::move(l), std::move(r)};
  return e;
}
ExprPtr Expr::Or(ExprPtr l, ExprPtr r) {
  auto e = ExprPtr(new Expr(Kind::kOr));
  e->children_ = {std::move(l), std::move(r)};
  return e;
}
ExprPtr Expr::Not(ExprPtr x) {
  auto e = ExprPtr(new Expr(Kind::kNot));
  e->children_ = {std::move(x)};
  return e;
}
ExprPtr Expr::IsArray(ExprPtr x) {
  auto e = ExprPtr(new Expr(Kind::kIsArray));
  e->children_ = {std::move(x)};
  return e;
}
ExprPtr Expr::IsMissing(ExprPtr x) {
  auto e = ExprPtr(new Expr(Kind::kIsMissing));
  e->children_ = {std::move(x)};
  return e;
}
ExprPtr Expr::Length(ExprPtr x) {
  auto e = ExprPtr(new Expr(Kind::kLength));
  e->children_ = {std::move(x)};
  return e;
}
ExprPtr Expr::Lower(ExprPtr x) {
  auto e = ExprPtr(new Expr(Kind::kLower));
  e->children_ = {std::move(x)};
  return e;
}
ExprPtr Expr::ArrayCount(ExprPtr x) {
  auto e = ExprPtr(new Expr(Kind::kArrayCount));
  e->children_ = {std::move(x)};
  return e;
}
ExprPtr Expr::ArrayDistinct(ExprPtr x) {
  auto e = ExprPtr(new Expr(Kind::kArrayDistinct));
  e->children_ = {std::move(x)};
  return e;
}
ExprPtr Expr::ArrayContains(ExprPtr array, ExprPtr value) {
  auto e = ExprPtr(new Expr(Kind::kArrayContains));
  e->children_ = {std::move(array), std::move(value)};
  return e;
}
ExprPtr Expr::ArrayPairs(ExprPtr x) {
  auto e = ExprPtr(new Expr(Kind::kArrayPairs));
  e->children_ = {std::move(x)};
  return e;
}
ExprPtr Expr::Some(std::string var, ExprPtr array, ExprPtr predicate) {
  auto e = ExprPtr(new Expr(Kind::kSome));
  e->var_name_ = std::move(var);
  e->children_ = {std::move(array), std::move(predicate)};
  return e;
}

void Expr::CollectPaths(std::vector<std::vector<std::string>>* out) const {
  if (kind_ == Kind::kField) out->push_back(path_);
  for (const ExprPtr& child : children_) child->CollectPaths(out);
}

Status Expr::Eval(EvalContext* ctx, Value* out) const {
  switch (kind_) {
    case Kind::kLiteral:
      *out = literal_;
      return Status::OK();
    case Kind::kField:
      return ctx->record->Get(path_, out);
    case Kind::kVar: {
      const Value* v = ctx->FindVar(var_name_);
      *out = v != nullptr ? *v : Value::Missing();
      return Status::OK();
    }
    case Kind::kVarPath: {
      const Value* v = ctx->FindVar(var_name_);
      if (v == nullptr) {
        *out = Value::Missing();
        return Status::OK();
      }
      ValueFieldSource source(v);
      return source.Get(path_, out);
    }
    case Kind::kCompare: {
      Value l, r;
      LSMCOL_RETURN_NOT_OK(children_[0]->Eval(ctx, &l));
      LSMCOL_RETURN_NOT_OK(children_[1]->Eval(ctx, &r));
      // Incompatible types -> Missing (the paper's 10 > "ten" example).
      const bool numeric = l.is_number() && r.is_number();
      const bool strings = l.is_string() && r.is_string();
      const bool bools = l.is_bool() && r.is_bool();
      if (!numeric && !strings && !bools) {
        if (cmp_op_ == CmpOp::kEq || cmp_op_ == CmpOp::kNe) {
          if (l.is_missing() || r.is_missing() || l.is_null() || r.is_null()) {
            *out = Value::Missing();
            return Status::OK();
          }
          const bool eq = CompareValues(l, r) == 0 && l.Equals(r);
          *out = Value::Bool(cmp_op_ == CmpOp::kEq ? eq : !eq);
          return Status::OK();
        }
        *out = Value::Missing();
        return Status::OK();
      }
      const int c = CompareValues(l, r);
      bool result = false;
      switch (cmp_op_) {
        case CmpOp::kLt:
          result = c < 0;
          break;
        case CmpOp::kLe:
          result = c <= 0;
          break;
        case CmpOp::kEq:
          result = c == 0;
          break;
        case CmpOp::kGe:
          result = c >= 0;
          break;
        case CmpOp::kGt:
          result = c > 0;
          break;
        case CmpOp::kNe:
          result = c != 0;
          break;
      }
      *out = Value::Bool(result);
      return Status::OK();
    }
    case Kind::kArith: {
      Value l, r;
      LSMCOL_RETURN_NOT_OK(children_[0]->Eval(ctx, &l));
      LSMCOL_RETURN_NOT_OK(children_[1]->Eval(ctx, &r));
      if (!l.is_number() || !r.is_number()) {
        *out = Value::Missing();
        return Status::OK();
      }
      if (l.is_int() && r.is_int() && arith_op_ != ArithOp::kDiv) {
        int64_t a = l.int_value(), b = r.int_value();
        int64_t v = 0;
        switch (arith_op_) {
          case ArithOp::kAdd:
            v = a + b;
            break;
          case ArithOp::kSub:
            v = a - b;
            break;
          case ArithOp::kMul:
            v = a * b;
            break;
          case ArithOp::kDiv:
            break;
        }
        *out = Value::Int(v);
        return Status::OK();
      }
      const double a = l.as_double(), b = r.as_double();
      double v = 0;
      switch (arith_op_) {
        case ArithOp::kAdd:
          v = a + b;
          break;
        case ArithOp::kSub:
          v = a - b;
          break;
        case ArithOp::kMul:
          v = a * b;
          break;
        case ArithOp::kDiv:
          if (b == 0) {
            *out = Value::Missing();
            return Status::OK();
          }
          v = a / b;
          break;
      }
      *out = Value::Double(v);
      return Status::OK();
    }
    case Kind::kAnd: {
      Value l;
      LSMCOL_RETURN_NOT_OK(children_[0]->Eval(ctx, &l));
      if (!IsTrue(l)) {
        *out = Value::Bool(false);
        return Status::OK();
      }
      Value r;
      LSMCOL_RETURN_NOT_OK(children_[1]->Eval(ctx, &r));
      *out = Value::Bool(IsTrue(r));
      return Status::OK();
    }
    case Kind::kOr: {
      Value l;
      LSMCOL_RETURN_NOT_OK(children_[0]->Eval(ctx, &l));
      if (IsTrue(l)) {
        *out = Value::Bool(true);
        return Status::OK();
      }
      Value r;
      LSMCOL_RETURN_NOT_OK(children_[1]->Eval(ctx, &r));
      *out = Value::Bool(IsTrue(r));
      return Status::OK();
    }
    case Kind::kNot: {
      Value v;
      LSMCOL_RETURN_NOT_OK(children_[0]->Eval(ctx, &v));
      if (!v.is_bool()) {
        *out = Value::Missing();
        return Status::OK();
      }
      *out = Value::Bool(!v.bool_value());
      return Status::OK();
    }
    case Kind::kIsArray: {
      Value v;
      LSMCOL_RETURN_NOT_OK(children_[0]->Eval(ctx, &v));
      *out = Value::Bool(v.is_array());
      return Status::OK();
    }
    case Kind::kIsMissing: {
      Value v;
      LSMCOL_RETURN_NOT_OK(children_[0]->Eval(ctx, &v));
      *out = Value::Bool(v.is_missing() || v.is_null());
      return Status::OK();
    }
    case Kind::kLength: {
      Value v;
      LSMCOL_RETURN_NOT_OK(children_[0]->Eval(ctx, &v));
      if (!v.is_string()) {
        *out = Value::Missing();
        return Status::OK();
      }
      *out = Value::Int(static_cast<int64_t>(v.string_value().size()));
      return Status::OK();
    }
    case Kind::kLower: {
      Value v;
      LSMCOL_RETURN_NOT_OK(children_[0]->Eval(ctx, &v));
      if (!v.is_string()) {
        *out = Value::Missing();
        return Status::OK();
      }
      std::string s = v.string_value();
      std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
      });
      *out = Value::String(std::move(s));
      return Status::OK();
    }
    case Kind::kArrayCount: {
      Value v;
      LSMCOL_RETURN_NOT_OK(children_[0]->Eval(ctx, &v));
      if (!v.is_array()) {
        *out = Value::Missing();
        return Status::OK();
      }
      *out = Value::Int(static_cast<int64_t>(v.array().size()));
      return Status::OK();
    }
    case Kind::kArrayDistinct: {
      Value v;
      LSMCOL_RETURN_NOT_OK(children_[0]->Eval(ctx, &v));
      if (!v.is_array()) {
        *out = Value::Missing();
        return Status::OK();
      }
      Value result = Value::MakeArray();
      for (const Value& e : v.array()) {
        bool seen = false;
        for (const Value& existing : result.array()) {
          if (existing.Equals(e)) {
            seen = true;
            break;
          }
        }
        if (!seen) result.Push(e);
      }
      *out = std::move(result);
      return Status::OK();
    }
    case Kind::kArrayContains: {
      Value arr, needle;
      LSMCOL_RETURN_NOT_OK(children_[0]->Eval(ctx, &arr));
      LSMCOL_RETURN_NOT_OK(children_[1]->Eval(ctx, &needle));
      if (!arr.is_array()) {
        *out = Value::Missing();
        return Status::OK();
      }
      for (const Value& e : arr.array()) {
        if (e.Equals(needle)) {
          *out = Value::Bool(true);
          return Status::OK();
        }
      }
      *out = Value::Bool(false);
      return Status::OK();
    }
    case Kind::kArrayPairs: {
      Value v;
      LSMCOL_RETURN_NOT_OK(children_[0]->Eval(ctx, &v));
      if (!v.is_array()) {
        *out = Value::Missing();
        return Status::OK();
      }
      Value result = Value::MakeArray();
      const auto& elements = v.array();
      for (size_t i = 0; i < elements.size(); ++i) {
        for (size_t j = i + 1; j < elements.size(); ++j) {
          Value pair = Value::MakeArray();
          // Canonical order within the pair so {a,b} == {b,a}.
          if (CompareValues(elements[i], elements[j]) <= 0) {
            pair.Push(elements[i]);
            pair.Push(elements[j]);
          } else {
            pair.Push(elements[j]);
            pair.Push(elements[i]);
          }
          result.Push(std::move(pair));
        }
      }
      *out = std::move(result);
      return Status::OK();
    }
    case Kind::kSome: {
      Value arr;
      LSMCOL_RETURN_NOT_OK(children_[0]->Eval(ctx, &arr));
      if (!arr.is_array()) {
        *out = Value::Bool(false);
        return Status::OK();
      }
      for (const Value& e : arr.array()) {
        ctx->vars.emplace_back(var_name_, &e);
        Value pred;
        Status st = children_[1]->Eval(ctx, &pred);
        ctx->vars.pop_back();
        LSMCOL_RETURN_NOT_OK(st);
        if (IsTrue(pred)) {
          *out = Value::Bool(true);
          return Status::OK();
        }
      }
      *out = Value::Bool(false);
      return Status::OK();
    }
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace lsmcol
