// Predicate-pushdown extraction: turn the pushable conjuncts of a plan's
// filters into ScanPredicates for the storage layer (zone-map skipping
// and typed per-record checks, §4.3/§4.4).
//
// Pushable conjunct shape: Compare(op, Field(path), Literal(scalar)) or
// its mirror, for op in {<, <=, =, >=, >}. != is not pushable (SQL++
// mismatched-type != evaluates to true). Everything else stays behind as
// a residual the engine evaluates normally.

#ifndef LSMCOL_QUERY_PUSHDOWN_H_
#define LSMCOL_QUERY_PUSHDOWN_H_

#include "src/lsm/scan_predicate.h"
#include "src/query/plan.h"

namespace lsmcol {

/// Extraction result. The exactness flags tell the engine when a cursor's
/// "all pushed predicates hold" verdict makes re-evaluating the original
/// expression redundant (every conjunct was extracted) — with a partial
/// extraction the expression must still run.
struct PredicatePushdown {
  ScanPredicateSet predicates;
  /// Every conjunct of plan.pre_filter was extracted (trivially true when
  /// there is no pre_filter).
  bool pre_filter_exact = true;
  /// plan.filter participated (only when the plan has no unnests — a
  /// post-unnest filter may reference unnest variables) and every one of
  /// its conjuncts was extracted.
  bool filter_extracted = false;
  bool filter_exact = false;

  bool any() const { return !predicates.empty(); }
};

/// Extract the pushable conjuncts of plan.pre_filter (always) and
/// plan.filter (when the plan has no unnests).
PredicatePushdown ExtractPushdown(const QueryPlan& plan);

}  // namespace lsmcol

#endif  // LSMCOL_QUERY_PUSHDOWN_H_
