// The two execution engines of the evaluation (§5, Figure 10):
//
//  * RunInterpreted — the Hyracks-style batch-at-a-time model: the scan
//    assembles full (projected) records into row tuples, and every
//    operator materializes its output batch before the next operator runs.
//
//  * RunCompiled — the code-generation analog: the whole pipeline (scan →
//    filter → unnest → project) is fused into one loop over the LSM scan
//    cursor; record paths are extracted lazily from the columns (no record
//    assembly, no inter-operator materialization). Pipeline breakers
//    (group-by / order-by / limit) remain shared operators, exactly like
//    the paper's partial code generation (§5).

#ifndef LSMCOL_QUERY_ENGINE_H_
#define LSMCOL_QUERY_ENGINE_H_

#include "src/lsm/dataset.h"
#include "src/query/plan.h"

namespace lsmcol {

Result<QueryResult> RunInterpreted(Dataset* dataset, const QueryPlan& plan);
Result<QueryResult> RunCompiled(Dataset* dataset, const QueryPlan& plan);

/// Dispatch by engine name ("interpreted" / "compiled").
Result<QueryResult> RunQuery(Dataset* dataset, const QueryPlan& plan,
                             bool compiled);

}  // namespace lsmcol

#endif  // LSMCOL_QUERY_ENGINE_H_
