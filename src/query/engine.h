// The two execution engines of the evaluation (§5, Figure 10):
//
//  * RunInterpreted — the Hyracks-style batch-at-a-time model: the scan
//    assembles full (projected) records into row tuples, and every
//    operator materializes its output batch before the next operator runs.
//
//  * RunCompiled — the code-generation analog: the whole pipeline (scan →
//    filter → unnest → project) is fused into one loop over the LSM scan
//    cursor; record paths are extracted lazily from the columns (no record
//    assembly, no inter-operator materialization). Pipeline breakers
//    (group-by / order-by / limit) remain shared operators, exactly like
//    the paper's partial code generation (§5).
//
// Both engines execute against a Snapshot — an immutable view of one
// dataset — so a running query is never disturbed by concurrent flushes
// or merges. The Dataset* overloads are thin back-compat shims that take
// an implicit snapshot of the dataset's current state.

#ifndef LSMCOL_QUERY_ENGINE_H_
#define LSMCOL_QUERY_ENGINE_H_

#include "src/lsm/dataset.h"
#include "src/lsm/snapshot.h"
#include "src/query/plan.h"

namespace lsmcol {

Result<QueryResult> RunInterpreted(const Snapshot& snapshot,
                                   const QueryPlan& plan);
Result<QueryResult> RunCompiled(const Snapshot& snapshot,
                                const QueryPlan& plan);

/// Dispatch by engine name ("interpreted" / "compiled").
Result<QueryResult> RunQuery(const Snapshot& snapshot, const QueryPlan& plan,
                             bool compiled);

// Back-compat shims: snapshot the dataset's current state and run there.
Result<QueryResult> RunInterpreted(Dataset* dataset, const QueryPlan& plan);
Result<QueryResult> RunCompiled(Dataset* dataset, const QueryPlan& plan);
Result<QueryResult> RunQuery(Dataset* dataset, const QueryPlan& plan,
                             bool compiled);

}  // namespace lsmcol

#endif  // LSMCOL_QUERY_ENGINE_H_
