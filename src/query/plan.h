// Logical query plans. The evaluation queries (paper Appendix A) are
// select-from-where[-unnest]-groupby-orderby-limit blocks; the plan is the
// fixed operator pipeline the paper's Figure 11 shows: SCAN → ASSIGN/
// FILTER → UNNEST → PROJECT feeding a pipeline-breaking GROUP/ORDER
// epilogue. Both execution engines (interpreted and compiled) consume the
// same plan.

#ifndef LSMCOL_QUERY_PLAN_H_
#define LSMCOL_QUERY_PLAN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/query/expr.h"

namespace lsmcol {

/// Aggregate function over the pipeline's output tuples.
struct AggSpec {
  enum class Kind : uint8_t { kCount, kSum, kMin, kMax };
  Kind kind = Kind::kCount;
  ExprPtr input;  ///< null for COUNT(*)

  static AggSpec CountStar() { return AggSpec{Kind::kCount, nullptr}; }
  static AggSpec Count(ExprPtr e) { return AggSpec{Kind::kCount, std::move(e)}; }
  static AggSpec Sum(ExprPtr e) { return AggSpec{Kind::kSum, std::move(e)}; }
  static AggSpec Min(ExprPtr e) { return AggSpec{Kind::kMin, std::move(e)}; }
  static AggSpec Max(ExprPtr e) { return AggSpec{Kind::kMax, std::move(e)}; }
};

/// UNNEST step: binds each element of `array` to variable `var`.
struct UnnestSpec {
  ExprPtr array;
  std::string var;
};

/// A single-block query plan.
struct QueryPlan {
  ExprPtr filter;                   ///< WHERE (may reference unnest vars)
  std::vector<UnnestSpec> unnests;  ///< applied in order, before grouping
  /// When `filter` must run before unnesting (predicates on the record),
  /// set pre_filter instead; `filter` runs after all unnests.
  ExprPtr pre_filter;

  std::vector<ExprPtr> group_keys;  ///< empty + aggregates → global agg
  std::vector<AggSpec> aggregates;
  std::vector<ExprPtr> projections;  ///< used when aggregates is empty

  int order_by = -1;      ///< output column index (keys first, then aggs)
  bool order_desc = true;
  size_t limit = 0;  ///< 0 = unlimited

  /// Allow the compiled engine to push filter comparisons into the scan
  /// (zone-map skipping + typed checks). Purely an optimization switch —
  /// results are identical either way; benchmarks flip it to measure.
  bool pushdown = true;

  /// All record paths the plan touches (projection pushdown for the scan).
  std::vector<std::vector<std::string>> ScanPaths() const {
    std::vector<std::vector<std::string>> paths;
    auto collect = [&paths](const ExprPtr& e) {
      if (e != nullptr) e->CollectPaths(&paths);
    };
    collect(filter);
    collect(pre_filter);
    for (const auto& u : unnests) collect(u.array);
    for (const auto& k : group_keys) collect(k);
    for (const auto& a : aggregates) collect(a.input);
    for (const auto& p : projections) collect(p);
    return paths;
  }
};

/// Query output: one row per group (keys then aggregates) or per projected
/// tuple.
struct QueryResult {
  std::vector<std::vector<Value>> rows;
  /// Tuples that entered the epilogue (pipeline cardinality; used by
  /// tests and the benchmark harness).
  uint64_t pipeline_tuples = 0;
};

}  // namespace lsmcol

#endif  // LSMCOL_QUERY_PLAN_H_
