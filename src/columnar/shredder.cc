#include "src/columnar/shredder.h"

namespace lsmcol {

void RecordShredder::MaterializePending(int column_id) {
  ColumnState& st = states_[column_id];
  if (st.pending_delim >= 0) {
    writers_->writer(column_id).AddDelimiter(st.pending_delim);
    st.pending_delim = -1;
  }
}

void RecordShredder::EmitNull(int column_id, int def) {
  MaterializePending(column_id);
  writers_->writer(column_id).AddNull(def);
}

void RecordShredder::EmitValue(const SchemaNode& leaf, const Value& v) {
  const int column_id = leaf.column_id();
  MaterializePending(column_id);
  ColumnChunkWriter& w = writers_->writer(column_id);
  switch (leaf.atomic_type()) {
    case AtomicType::kBoolean:
      w.AddBool(v.bool_value());
      break;
    case AtomicType::kInt64:
      w.AddInt64(v.int_value());
      break;
    case AtomicType::kDouble:
      w.AddDouble(v.double_value());
      break;
    case AtomicType::kString:
      w.AddString(Slice(v.string_value()));
      break;
  }
}

void RecordShredder::FlushNulls(const SchemaNode& node, int def) {
  switch (node.kind()) {
    case SchemaNode::Kind::kAtomic:
      EmitNull(node.column_id(), def);
      break;
    case SchemaNode::Kind::kObject:
      for (const auto& [name, child] : node.fields()) FlushNulls(*child, def);
      break;
    case SchemaNode::Kind::kArray:
      if (node.item() != nullptr) FlushNulls(*node.item(), def);
      break;
    case SchemaNode::Kind::kUnion:
      for (const auto& alt : node.alternatives()) FlushNulls(*alt, def);
      break;
  }
}

void RecordShredder::WalkArray(const SchemaNode& array_node, const Value& v) {
  const SchemaNode* item = array_node.item();
  if (item == nullptr) {
    // The array has never held a (non-null) element anywhere in the
    // dataset: there are no columns under it, so its presence cannot be
    // recorded (documented simplification; see DESIGN.md).
    return;
  }
  const int array_def = array_node.def_level();

  // Mark outer arrays open (for the record-terminating delimiter) —
  // only when this array is the column's outermost.
  struct Marker {
    RecordShredder* self;
    int array_def;
    void Mark(const SchemaNode& n) {
      switch (n.kind()) {
        case SchemaNode::Kind::kAtomic: {
          const ColumnInfo& info =
              self->schema_->column(n.column_id());
          if (!info.array_defs.empty() && info.array_defs[0] == array_def) {
            ColumnState& st = self->states_[n.column_id()];
            if (!st.outer_open) {
              st.outer_open = true;
              self->touched_arrays_.push_back(n.column_id());
            }
          }
          break;
        }
        case SchemaNode::Kind::kObject:
          for (const auto& [name, child] : n.fields()) Mark(*child);
          break;
        case SchemaNode::Kind::kArray:
          if (n.item() != nullptr) Mark(*n.item());
          break;
        case SchemaNode::Kind::kUnion:
          for (const auto& alt : n.alternatives()) Mark(*alt);
          break;
      }
    }
  };
  Marker marker{this, array_def};
  marker.Mark(*item);

  size_t emitted = 0;
  for (const Value& element : v.array()) {
    if (element.is_null() || element.is_missing()) {
      // A null element occupies a position: def = the array's level.
      FlushNulls(*item, array_def);
    } else {
      WalkPresent(*item, element);
    }
    ++emitted;
  }
  if (emitted == 0) {
    // Present-but-empty array: one entry at the array's level (§3.2.1 —
    // conflated with a single-null-element array at def granularity).
    FlushNulls(*item, array_def);
  }

  // Close this array instance: set the pending delimiter to the number of
  // arrays that remain open (the 0-based index of this array among each
  // column's array ancestors). Inner delimiters already pending are
  // subsumed (§3.2.1).
  struct Closer {
    RecordShredder* self;
    int array_def;
    void Close(const SchemaNode& n) {
      switch (n.kind()) {
        case SchemaNode::Kind::kAtomic: {
          const ColumnInfo& info = self->schema_->column(n.column_id());
          int idx = -1;
          for (size_t i = 0; i < info.array_defs.size(); ++i) {
            if (info.array_defs[i] == array_def) {
              idx = static_cast<int>(i);
              break;
            }
          }
          LSMCOL_DCHECK(idx >= 0);
          ColumnState& st = self->states_[n.column_id()];
          if (st.pending_delim < 0 || idx < st.pending_delim) {
            st.pending_delim = idx;
          }
          break;
        }
        case SchemaNode::Kind::kObject:
          for (const auto& [name, child] : n.fields()) Close(*child);
          break;
        case SchemaNode::Kind::kArray:
          if (n.item() != nullptr) Close(*n.item());
          break;
        case SchemaNode::Kind::kUnion:
          for (const auto& alt : n.alternatives()) Close(*alt);
          break;
      }
    }
  };
  Closer closer{this, array_def};
  closer.Close(*item);
}

void RecordShredder::WalkPresent(const SchemaNode& node, const Value& v) {
  switch (node.kind()) {
    case SchemaNode::Kind::kUnion: {
      const SchemaNode* alt = node.FindAlternative(v);
      LSMCOL_CHECK(alt != nullptr);  // schema was merged first
      for (const auto& other : node.alternatives()) {
        if (other.get() != alt) {
          // The branch not taken is NULL at the union position's parent
          // (union nodes add no def level, §3.2.2).
          FlushNulls(*other, node.def_level() - 1);
        }
      }
      WalkPresent(*alt, v);
      break;
    }
    case SchemaNode::Kind::kObject: {
      LSMCOL_DCHECK(v.is_object());
      for (const auto& [name, child] : node.fields()) {
        const Value& fv = v.Get(name);
        if (fv.is_null() || fv.is_missing()) {
          FlushNulls(*child, node.def_level());
        } else {
          WalkPresent(*child, fv);
        }
      }
      break;
    }
    case SchemaNode::Kind::kArray:
      LSMCOL_DCHECK(v.is_array());
      WalkArray(node, v);
      break;
    case SchemaNode::Kind::kAtomic:
      EmitValue(node, v);
      break;
  }
}

Status RecordShredder::Shred(const Value& record) {
  LSMCOL_RETURN_NOT_OK(schema_->MergeRecord(record));
  writers_->SyncWithSchema();
  states_.resize(schema_->column_count());
  touched_arrays_.clear();

  const int64_t key = record.Get(schema_->pk_field()).int_value();
  for (const auto& [name, child] : schema_->root().fields()) {
    if (name == schema_->pk_field()) {
      writers_->writer(0).AddKey(key, /*anti_matter=*/false);
      continue;
    }
    const Value& fv = record.Get(name);
    if (fv.is_null() || fv.is_missing()) {
      FlushNulls(*child, 0);
    } else {
      WalkPresent(*child, fv);
    }
  }

  // Terminate open outer arrays with the record's closing delimiter 0.
  for (int column_id : touched_arrays_) {
    ColumnState& st = states_[column_id];
    st.pending_delim = -1;
    st.outer_open = false;
    writers_->writer(column_id).AddDelimiter(0);
  }
  writers_->NoteRecordComplete();
  return Status::OK();
}

Status RecordShredder::ShredAntiMatter(int64_t key) {
  writers_->SyncWithSchema();
  states_.resize(schema_->column_count());
  for (const auto& [name, child] : schema_->root().fields()) {
    if (name == schema_->pk_field()) {
      writers_->writer(0).AddKey(key, /*anti_matter=*/true);
    } else {
      FlushNulls(*child, 0);
    }
  }
  writers_->NoteRecordComplete();
  return Status::OK();
}

}  // namespace lsmcol
