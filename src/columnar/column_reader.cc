#include "src/columnar/column_reader.h"

#include "src/columnar/column_writer.h"
#include "src/encoding/bitpack.h"

namespace lsmcol {

Status ColumnChunkReader::Init(Slice chunk, const ColumnInfo& info) {
  info_ = info;
  max_delim_ = info.array_count() - 1;
  entries_read_ = 0;
  BufferReader reader(chunk);
  uint64_t def_size = 0;
  LSMCOL_RETURN_NOT_OK(reader.ReadVarint64(&def_size));
  Slice def_bytes;
  LSMCOL_RETURN_NOT_OK(reader.ReadBytes(def_size, &def_bytes));
  int width = BitWidth(static_cast<uint64_t>(info.max_def));
  if (width == 0) width = 1;
  LSMCOL_RETURN_NOT_OK(defs_.Init(def_bytes, width));
  Slice values = reader.rest();
  switch (info_.type) {
    case AtomicType::kBoolean:
      return bools_.Init(values, 1);
    case AtomicType::kInt64:
      return ints_.Init(values);
    case AtomicType::kDouble: {
      BufferReader vr(values);
      uint64_t count = 0;
      LSMCOL_RETURN_NOT_OK(vr.ReadVarint64(&count));
      doubles_ = vr;
      doubles_remaining_ = count;
      return Status::OK();
    }
    case AtomicType::kString:
      return strings_.Init(values);
  }
  return Status::Corruption("unknown column type");
}

Status ColumnChunkReader::ReadValueInto(ColumnRecord* out) {
  switch (info_.type) {
    case AtomicType::kBoolean: {
      uint64_t v = 0;
      LSMCOL_RETURN_NOT_OK(bools_.Next(&v));
      out->values.push_back(Value::Bool(v != 0));
      return Status::OK();
    }
    case AtomicType::kInt64: {
      int64_t v = 0;
      LSMCOL_RETURN_NOT_OK(ints_.Next(&v));
      out->values.push_back(Value::Int(v));
      return Status::OK();
    }
    case AtomicType::kDouble: {
      double v = 0;
      if (doubles_remaining_ == 0) {
        return Status::Corruption("double column values exhausted");
      }
      LSMCOL_RETURN_NOT_OK(doubles_.ReadDouble(&v));
      --doubles_remaining_;
      out->values.push_back(Value::Double(v));
      return Status::OK();
    }
    case AtomicType::kString: {
      Slice v;
      LSMCOL_RETURN_NOT_OK(strings_.Next(&v));
      out->values.push_back(Value::String(v.ToString()));
      return Status::OK();
    }
  }
  return Status::Corruption("unknown column type");
}

Status ColumnChunkReader::SkipValue() {
  switch (info_.type) {
    case AtomicType::kBoolean:
      return bools_.Skip(1);
    case AtomicType::kInt64:
      return ints_.Skip(1);
    case AtomicType::kDouble:
      if (doubles_remaining_ == 0) {
        return Status::Corruption("double column values exhausted");
      }
      --doubles_remaining_;
      return doubles_.Skip(8);
    case AtomicType::kString:
      return strings_.Skip(1);
  }
  return Status::Corruption("unknown column type");
}

Status ColumnChunkReader::TransferValue(ColumnChunkWriter* writer) {
  switch (info_.type) {
    case AtomicType::kBoolean: {
      bool v = false;
      LSMCOL_RETURN_NOT_OK(ReadBool(&v));
      writer->AddBool(v);
      return Status::OK();
    }
    case AtomicType::kInt64: {
      int64_t v = 0;
      LSMCOL_RETURN_NOT_OK(ints_.Next(&v));
      writer->AddInt64(v);
      return Status::OK();
    }
    case AtomicType::kDouble: {
      double v = 0;
      LSMCOL_RETURN_NOT_OK(ReadDouble(&v));
      writer->AddDouble(v);
      return Status::OK();
    }
    case AtomicType::kString: {
      Slice v;
      LSMCOL_RETURN_NOT_OK(strings_.Next(&v));
      writer->AddString(v);
      return Status::OK();
    }
  }
  return Status::Corruption("unknown column type");
}

Status ColumnChunkReader::ParseRecordInto(ColumnRecord* out, ParseMode mode,
                                          ColumnChunkWriter* writer) {
  if (AtEnd()) return Status::OutOfRange("column chunk exhausted");
  const bool materialize = mode == ParseMode::kMaterialize;
  const bool copy = mode == ParseMode::kCopy;
  uint64_t first = 0;
  LSMCOL_RETURN_NOT_OK(defs_.Next(&first));
  ++entries_read_;
  const int d0 = static_cast<int>(first);

  if (info_.is_pk) {
    // PK: one entry per record, value always present, def 0 = anti-matter.
    if (materialize) {
      out->anti_matter = (d0 == 0);
      out->root = ShredCell();
      out->root.kind = ShredCell::Kind::kLeaf;
      out->root.def = d0;
      out->root.value_index = 0;
      return ReadValueInto(out);
    }
    if (copy) {
      int64_t key = 0;
      LSMCOL_RETURN_NOT_OK(ints_.Next(&key));
      writer->AddKey(key, /*anti_matter=*/d0 == 0);
      return Status::OK();
    }
    return SkipValue();
  }

  const int m = info_.array_count();
  if (m == 0) {
    if (d0 == info_.max_def) {
      if (materialize) {
        out->root.kind = ShredCell::Kind::kLeaf;
        out->root.def = d0;
        out->root.value_index = 0;
        return ReadValueInto(out);
      }
      if (copy) return TransferValue(writer);
      return SkipValue();
    }
    if (materialize) out->root = ShredCell::Missing(d0);
    if (copy) writer->AddNull(d0);
    return Status::OK();
  }

  const std::vector<int>& darr = info_.array_defs;
  if (d0 < darr[0]) {
    // Outermost array (or an ancestor) missing: standalone entry, no
    // terminating delimiter (§3.2.1).
    if (materialize) out->root = ShredCell::Missing(d0);
    if (copy) writer->AddNull(d0);
    return Status::OK();
  }

  // Array present: parse entries until the record's closing delimiter 0.
  ShredCell root;
  root.kind = ShredCell::Kind::kList;
  root.def = darr[0];
  std::vector<ShredCell*> stack;  // open lists, levels 1..current
  if (materialize) stack.push_back(&root);
  // For the skip/copy paths we only track depth.
  int current = 1;

  // Processes one value entry with definition level e.
  auto process_value = [&](int e) -> Status {
    // k = number of arrays this entry implies open.
    int k = 0;
    while (k < m && darr[k] <= e) ++k;
    LSMCOL_DCHECK(k >= current);
    if (materialize) {
      while (current < k) {
        ShredCell list;
        list.kind = ShredCell::Kind::kList;
        list.def = darr[current];
        stack.back()->children.push_back(std::move(list));
        stack.push_back(&stack.back()->children.back());
        ++current;
      }
      if (e == info_.max_def) {
        ShredCell leaf;
        leaf.kind = ShredCell::Kind::kLeaf;
        leaf.def = e;
        leaf.value_index = static_cast<int>(out->values.size());
        stack.back()->children.push_back(std::move(leaf));
        return ReadValueInto(out);
      }
      stack.back()->children.push_back(ShredCell::Missing(e));
      return Status::OK();
    }
    current = k;
    if (e == info_.max_def) {
      if (copy) return TransferValue(writer);
      return SkipValue();
    }
    if (copy) writer->AddNull(e);
    return Status::OK();
  };

  LSMCOL_RETURN_NOT_OK(process_value(d0));
  while (true) {
    if (entries_read_ >= entry_count()) {
      return Status::Corruption("column record missing closing delimiter");
    }
    uint64_t raw = 0;
    LSMCOL_RETURN_NOT_OK(defs_.Next(&raw));
    ++entries_read_;
    const int e = static_cast<int>(raw);
    if (e <= current - 1) {
      // Delimiter: e arrays remain open.
      if (copy) writer->AddDelimiter(e);
      if (e == 0) break;  // record complete
      if (materialize) {
        while (current > e) {
          stack.pop_back();
          --current;
        }
      } else {
        current = e;
      }
    } else {
      LSMCOL_RETURN_NOT_OK(process_value(e));
    }
  }
  if (materialize) out->root = std::move(root);
  return Status::OK();
}

Status ColumnChunkReader::NextRecord(ColumnRecord* out) {
  out->root = ShredCell();
  out->values.clear();
  out->anti_matter = false;
  return ParseRecordInto(out, ParseMode::kMaterialize, nullptr);
}

Status ColumnChunkReader::SkipValues(size_t n) {
  if (n == 0) return Status::OK();
  switch (info_.type) {
    case AtomicType::kBoolean:
      return bools_.Skip(n);
    case AtomicType::kInt64:
      return ints_.Skip(n);
    case AtomicType::kDouble:
      if (doubles_remaining_ < n) {
        return Status::Corruption("double column values exhausted");
      }
      doubles_remaining_ -= n;
      return doubles_.Skip(8 * n);
    case AtomicType::kString:
      return strings_.Skip(n);
  }
  return Status::Corruption("unknown column type");
}

Status ColumnChunkReader::SkipRecords(size_t n) {
  if (n == 0) return Status::OK();
  // Flat columns (and the PK) store exactly one entry per record, so the
  // whole skip advances the def stream run-at-a-time and the value
  // decoder once (§4.4's batched iterator advance, now run-granular).
  if (info_.is_pk || info_.array_count() == 0) {
    if (n > entry_count() - entries_read_) {
      return Status::OutOfRange("column chunk exhausted");
    }
    size_t values = 0;
    LSMCOL_RETURN_NOT_OK(defs_.SkipAndCount(
        n, static_cast<uint64_t>(info_.max_def), &values));
    entries_read_ += n;
    // The PK stores a key for every entry, including anti-matter (def 0).
    if (info_.is_pk) values = n;
    return SkipValues(values);
  }
  // Array columns: record boundaries are delimiter-dependent, so each
  // record must still be walked entry by entry.
  for (size_t i = 0; i < n; ++i) {
    LSMCOL_RETURN_NOT_OK(ParseRecordInto(nullptr, ParseMode::kSkip, nullptr));
  }
  return Status::OK();
}

Status ColumnChunkReader::CopyRecordTo(ColumnChunkWriter* writer) {
  return ParseRecordInto(nullptr, ParseMode::kCopy, writer);
}

Status ColumnChunkReader::NextEntry(int* def, bool* has_value) {
  if (AtEnd()) return Status::OutOfRange("column chunk exhausted");
  uint64_t raw = 0;
  LSMCOL_RETURN_NOT_OK(defs_.Next(&raw));
  ++entries_read_;
  *def = static_cast<int>(raw);
  *has_value = info_.is_pk || *def == info_.max_def;
  return Status::OK();
}

Status ColumnChunkReader::ReadBool(bool* out) {
  uint64_t v = 0;
  LSMCOL_RETURN_NOT_OK(bools_.Next(&v));
  *out = v != 0;
  return Status::OK();
}

Status ColumnChunkReader::ReadInt64(int64_t* out) { return ints_.Next(out); }

Status ColumnChunkReader::ReadDouble(double* out) {
  if (doubles_remaining_ == 0) {
    return Status::Corruption("double column values exhausted");
  }
  --doubles_remaining_;
  return doubles_.ReadDouble(out);
}

Status ColumnChunkReader::ReadString(Slice* out) { return strings_.Next(out); }

Status ColumnChunkReader::NextEntryBatch(size_t max_entries,
                                         ColumnEntryBatch* out) {
  out->Clear();
  size_t n = entry_count() - entries_read_;
  if (n > max_entries) n = max_entries;
  if (n == 0) return Status::OK();

  // Def levels in one run-granular pass.
  def_scratch_.resize(n);
  size_t decoded = 0;
  LSMCOL_RETURN_NOT_OK(defs_.DecodeBatch(n, def_scratch_.data(), &decoded));
  LSMCOL_DCHECK(decoded == n);
  entries_read_ += n;
  out->defs.resize(n);
  out->value_index.assign(n, -1);
  const uint64_t max_def = static_cast<uint64_t>(info_.max_def);
  size_t values = 0;
  for (size_t i = 0; i < n; ++i) {
    out->defs[i] = static_cast<int>(def_scratch_[i]);
    if (info_.is_pk || def_scratch_[i] == max_def) {
      out->value_index[i] = static_cast<int32_t>(values++);
    }
  }

  // All present values in one typed batch.
  if (values == 0) return Status::OK();
  switch (info_.type) {
    case AtomicType::kBoolean: {
      out->bools.resize(values);
      return bools_.DecodeBatch(values, out->bools.data(), nullptr);
    }
    case AtomicType::kInt64: {
      out->ints.resize(values);
      return ints_.DecodeBatch(values, out->ints.data(), nullptr);
    }
    case AtomicType::kDouble: {
      if (doubles_remaining_ < values) {
        return Status::Corruption("double column values exhausted");
      }
      // Plain-encoded: one contiguous read instead of per-value calls.
      Slice raw;
      LSMCOL_RETURN_NOT_OK(doubles_.ReadBytes(8 * values, &raw));
      out->doubles.resize(values);
      std::memcpy(out->doubles.data(), raw.data(), 8 * values);
      doubles_remaining_ -= values;
      return Status::OK();
    }
    case AtomicType::kString: {
      out->strings.resize(values);
      return strings_.NextBatch(values, out->strings.data(), nullptr);
    }
  }
  return Status::Corruption("unknown column type");
}

}  // namespace lsmcol
