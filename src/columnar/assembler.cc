#include "src/columnar/assembler.h"

#include <limits>

namespace lsmcol {

namespace {

/// Effective "present depth" of a cell: how deep the document is known to
/// be present at this position for this column.
int CellDepth(const ShredCell* cell) {
  if (cell == nullptr) return -1;
  switch (cell->kind) {
    case ShredCell::Kind::kLeaf:
    case ShredCell::Kind::kMissing:
      return cell->def;
    case ShredCell::Kind::kList:
      return std::numeric_limits<int>::max();  // array present here
  }
  return -1;
}

void CollectColumns(const SchemaNode& node, std::vector<int>* out) {
  switch (node.kind()) {
    case SchemaNode::Kind::kAtomic:
      out->push_back(node.column_id());
      break;
    case SchemaNode::Kind::kObject:
      for (const auto& [name, child] : node.fields()) {
        CollectColumns(*child, out);
      }
      break;
    case SchemaNode::Kind::kArray:
      if (node.item() != nullptr) CollectColumns(*node.item(), out);
      break;
    case SchemaNode::Kind::kUnion:
      for (const auto& alt : node.alternatives()) CollectColumns(*alt, out);
      break;
  }
}

}  // namespace

struct RecordAssembler::Slots {
  const std::vector<const ColumnRecord*>* records;  // by column id
  mutable std::vector<const ShredCell*> cells;      // current positions
};

Value RecordAssembler::AssembleNode(const SchemaNode& node, const Slots& slots,
                                    const std::vector<bool>* projection) const {
  // Column list under this node (small trees; recomputed per call).
  std::vector<int> cols;
  CollectColumns(node, &cols);
  if (projection != nullptr) {
    bool any = false;
    for (int c : cols) {
      if (static_cast<size_t>(c) < projection->size() && (*projection)[c]) {
        any = true;
        break;
      }
    }
    if (!any) return Value::Missing();
  }

  switch (node.kind()) {
    case SchemaNode::Kind::kAtomic: {
      const ShredCell* cell = slots.cells[node.column_id()];
      if (cell == nullptr || cell->kind != ShredCell::Kind::kLeaf) {
        return Value::Missing();
      }
      const ColumnRecord* rec = (*slots.records)[node.column_id()];
      LSMCOL_DCHECK(rec != nullptr);
      LSMCOL_DCHECK(cell->value_index >= 0 &&
                    static_cast<size_t>(cell->value_index) <
                        rec->values.size());
      return rec->values[static_cast<size_t>(cell->value_index)];
    }

    case SchemaNode::Kind::kObject: {
      bool present = false;
      for (int c : cols) {
        if (CellDepth(slots.cells[c]) >= node.def_level()) {
          present = true;
          break;
        }
      }
      if (!present) return Value::Missing();
      Value obj = Value::MakeObject();
      for (const auto& [name, child] : node.fields()) {
        Value v = AssembleNode(*child, slots, projection);
        if (!v.is_missing()) obj.Set(name, std::move(v));
      }
      return obj;
    }

    case SchemaNode::Kind::kArray: {
      if (node.item() == nullptr) return Value::Missing();
      size_t n = 0;
      bool has_list = false;
      for (int c : cols) {
        const ShredCell* cell = slots.cells[c];
        if (cell != nullptr && cell->kind == ShredCell::Kind::kList) {
          if (has_list) {
            LSMCOL_DCHECK(cell->children.size() == n);
          }
          has_list = true;
          n = cell->children.size();
        }
      }
      if (!has_list) return Value::Missing();
      Value arr = Value::MakeArray();
      // Save current cells, advance per element, restore afterwards.
      std::vector<const ShredCell*> saved(cols.size());
      for (size_t i = 0; i < cols.size(); ++i) saved[i] = slots.cells[cols[i]];
      size_t missing_elements = 0;
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < cols.size(); ++j) {
          const ShredCell* cell = saved[j];
          if (cell != nullptr && cell->kind == ShredCell::Kind::kList) {
            slots.cells[cols[j]] = &cell->children[i];
          } else {
            slots.cells[cols[j]] = nullptr;
          }
        }
        Value element = AssembleNode(*node.item(), slots, projection);
        if (element.is_missing()) {
          ++missing_elements;
          arr.Push(Value::Null());
        } else {
          arr.Push(std::move(element));
        }
      }
      for (size_t j = 0; j < cols.size(); ++j) slots.cells[cols[j]] = saved[j];
      // A single all-missing element is the def-level-conflated encoding of
      // an empty array (§3.2.1 / DESIGN.md §4).
      if (n == 1 && missing_elements == 1) {
        arr.mutable_array().clear();
      }
      return arr;
    }

    case SchemaNode::Kind::kUnion: {
      // Probe alternatives in order; exactly one can be present (§3.2.2).
      for (const auto& alt : node.alternatives()) {
        Value v = AssembleNode(*alt, slots, projection);
        if (!v.is_missing()) return v;
      }
      return Value::Missing();
    }
  }
  return Value::Missing();
}

Value RecordAssembler::AssembleSubtree(
    const SchemaNode& node,
    const std::vector<const ColumnRecord*>& by_column) const {
  Slots slots;
  slots.records = &by_column;
  slots.cells.resize(by_column.size(), nullptr);
  for (size_t i = 0; i < by_column.size(); ++i) {
    if (by_column[i] != nullptr) slots.cells[i] = &by_column[i]->root;
  }
  return AssembleNode(node, slots, nullptr);
}

Value RecordAssembler::Assemble(
    const std::vector<const ColumnRecord*>& by_column,
    const std::vector<bool>* projection) const {
  Slots slots;
  slots.records = &by_column;
  slots.cells.resize(by_column.size(), nullptr);
  for (size_t i = 0; i < by_column.size(); ++i) {
    if (by_column[i] != nullptr) slots.cells[i] = &by_column[i]->root;
  }
  Value record = AssembleNode(schema_->root(), slots, projection);
  if (record.is_missing()) record = Value::MakeObject();
  return record;
}

}  // namespace lsmcol
