// RecordAssembler: stitches per-column ColumnRecords back into a document
// Value (§3.2.4). Uses the delimiter-parsed nested cells from
// ColumnChunkReader instead of Dremel's repetition-level automaton; union
// positions are resolved by probing alternatives in order (§3.2.2's access
// procedure).

#ifndef LSMCOL_COLUMNAR_ASSEMBLER_H_
#define LSMCOL_COLUMNAR_ASSEMBLER_H_

#include <vector>

#include "src/columnar/column_reader.h"
#include "src/schema/schema.h"

namespace lsmcol {

/// Assembles records from shredded columns.
class RecordAssembler {
 public:
  /// The schema must outlive the assembler.
  explicit RecordAssembler(const Schema* schema) : schema_(schema) {}

  /// Assemble one record. `by_column` is indexed by column id; a nullptr
  /// entry means the column is absent in this component (all-missing).
  /// When `projection` is non-null, only the subtrees containing the given
  /// column ids are assembled (the column pruning the columnar layouts
  /// exist for); other fields are omitted from the result.
  ///
  /// Fields appear in schema (first-discovery) order, which may differ
  /// from the original record's field order.
  Value Assemble(const std::vector<const ColumnRecord*>& by_column,
                 const std::vector<bool>* projection = nullptr) const;

  /// Assemble only the value rooted at `node` (a path-resolved subtree
  /// that does not cross an array boundary — §3.2.2's partial access).
  Value AssembleSubtree(const SchemaNode& node,
                        const std::vector<const ColumnRecord*>& by_column) const;

 private:
  struct Slots;  // per-column current-position cells

  Value AssembleNode(const SchemaNode& node, const Slots& slots,
                     const std::vector<bool>* projection) const;

  const Schema* schema_;
};

}  // namespace lsmcol

#endif  // LSMCOL_COLUMNAR_ASSEMBLER_H_
