#include "src/columnar/column_writer.h"

#include <algorithm>
#include <limits>
#include <string_view>

#include "src/encoding/bitpack.h"

namespace lsmcol {

ColumnChunkWriter::ColumnChunkWriter(const ColumnInfo& info) : info_(info) {
  def_bit_width_ = BitWidth(static_cast<uint64_t>(info.max_def));
  if (def_bit_width_ == 0) def_bit_width_ = 1;  // PK-less corner; keep 1 bit
  defs_ = RleEncoder(def_bit_width_);
}

void ColumnChunkWriter::AddBool(bool v) {
  LSMCOL_DCHECK(info_.type == AtomicType::kBoolean);
  NoteValue();
  bools_.Add(v ? 1 : 0);
  // Booleans reuse the int min/max (0/1) for zone filters.
  int64_t iv = v ? 1 : 0;
  if (value_count_ == 1) {
    min_int_ = max_int_ = iv;
  } else {
    min_int_ = std::min(min_int_, iv);
    max_int_ = std::max(max_int_, iv);
  }
}

void ColumnChunkWriter::AddInt64(int64_t v) {
  LSMCOL_DCHECK(info_.type == AtomicType::kInt64);
  NoteValue();
  ints_.Add(v);
  if (value_count_ == 1) {
    min_int_ = max_int_ = v;
  } else {
    min_int_ = std::min(min_int_, v);
    max_int_ = std::max(max_int_, v);
  }
}

void ColumnChunkWriter::AddDouble(double v) {
  LSMCOL_DCHECK(info_.type == AtomicType::kDouble);
  NoteValue();
  doubles_.AppendDouble(v);
  if (v != v) {
    // NaN is unordered, so min/max cannot describe it — and the engine's
    // CompareValues treats NaN as equal to everything, so a chunk holding
    // one may match any inclusive bound. Widen the zone to everything so
    // zone filters never veto such a chunk.
    min_double_ = -std::numeric_limits<double>::infinity();
    max_double_ = std::numeric_limits<double>::infinity();
    return;
  }
  if (value_count_ == 1) {
    min_double_ = max_double_ = v;
  } else {
    // NaN-sticky: once widened to +-inf, min/max stay there.
    min_double_ = std::min(min_double_, v);
    max_double_ = std::max(max_double_, v);
  }
}

void ColumnChunkWriter::AddString(Slice v) {
  LSMCOL_DCHECK(info_.type == AtomicType::kString);
  NoteValue();
  strings_.Add(v);
  std::string s = v.ToString();
  if (value_count_ == 1) {
    min_string_ = max_string_ = s;
  } else {
    if (s < min_string_) min_string_ = s;
    if (s > max_string_) max_string_ = s;
  }
}

void ColumnChunkWriter::AddKey(int64_t key, bool anti_matter) {
  LSMCOL_DCHECK(info_.is_pk);
  defs_.Add(anti_matter ? 0 : 1);
  ++entry_count_;
  ++value_count_;
  ints_.Add(key);
  if (value_count_ == 1) {
    min_int_ = max_int_ = key;
  } else {
    min_int_ = std::min(min_int_, key);
    max_int_ = std::max(max_int_, key);
  }
}

void ColumnChunkWriter::AppendEntries(const ColumnEntryBatch& batch) {
  const size_t n = batch.entry_count();
  if (n == 0) return;
  // Def levels, one AddRun per maximal run (flat columns collapse to a
  // single run per batch).
  const std::vector<int>& defs = batch.defs;
  size_t i = 0;
  while (i < n) {
    size_t j = i + 1;
    while (j < n && defs[j] == defs[i]) ++j;
    defs_.AddRun(static_cast<uint64_t>(defs[i]), j - i);
    i = j;
  }
  entry_count_ += n;

  // Present values, in entry order (the batch's typed span already is).
  switch (info_.type) {
    case AtomicType::kBoolean: {
      const size_t nv = batch.bools.size();
      if (nv == 0) break;
      bool any0 = false, any1 = false;
      size_t k = 0;
      while (k < nv) {
        size_t j = k + 1;
        while (j < nv && batch.bools[j] == batch.bools[k]) ++j;
        bools_.AddRun(batch.bools[k], j - k);
        if (batch.bools[k] != 0) {
          any1 = true;
        } else {
          any0 = true;
        }
        k = j;
      }
      const int64_t lo = any0 ? 0 : 1;
      const int64_t hi = any1 ? 1 : 0;
      if (value_count_ == 0) {
        min_int_ = lo;
        max_int_ = hi;
      } else {
        min_int_ = std::min(min_int_, lo);
        max_int_ = std::max(max_int_, hi);
      }
      value_count_ += nv;
      break;
    }
    case AtomicType::kInt64: {
      // Covers the PK column too: its batches carry a key for every entry
      // (anti-matter included), matching AddKey's min/max semantics.
      const size_t nv = batch.ints.size();
      if (nv == 0) break;
      int64_t lo = batch.ints[0], hi = batch.ints[0];
      for (size_t k = 1; k < nv; ++k) {
        lo = std::min(lo, batch.ints[k]);
        hi = std::max(hi, batch.ints[k]);
      }
      if (value_count_ == 0) {
        min_int_ = lo;
        max_int_ = hi;
      } else {
        min_int_ = std::min(min_int_, lo);
        max_int_ = std::max(max_int_, hi);
      }
      ints_.AddBatch(batch.ints.data(), nv);
      value_count_ += nv;
      break;
    }
    case AtomicType::kDouble: {
      const size_t nv = batch.doubles.size();
      if (nv == 0) break;
      bool saw_nan = false;
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (size_t k = 0; k < nv; ++k) {
        const double v = batch.doubles[k];
        if (v != v) {
          saw_nan = true;
        } else {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
      }
      if (value_count_ == 0 && lo <= hi) {
        min_double_ = lo;
        max_double_ = hi;
      } else if (lo <= hi) {
        min_double_ = std::min(min_double_, lo);
        max_double_ = std::max(max_double_, hi);
      }
      if (saw_nan) {
        // Same NaN-sticky widening as AddDouble: the zone must never veto
        // a chunk that holds an unordered value.
        min_double_ = -std::numeric_limits<double>::infinity();
        max_double_ = std::numeric_limits<double>::infinity();
      }
      doubles_.Append(Slice(
          reinterpret_cast<const char*>(batch.doubles.data()), 8 * nv));
      value_count_ += nv;
      break;
    }
    case AtomicType::kString: {
      const size_t nv = batch.strings.size();
      if (nv == 0) break;
      for (size_t k = 0; k < nv; ++k) {
        const std::string_view sv = batch.strings[k].view();
        if (value_count_ == 0 && k == 0) {
          min_string_.assign(sv);
          max_string_.assign(sv);
        } else {
          if (sv < std::string_view(min_string_)) min_string_.assign(sv);
          if (sv > std::string_view(max_string_)) max_string_.assign(sv);
        }
      }
      strings_.AddBatch(batch.strings.data(), nv);
      value_count_ += nv;
      break;
    }
  }
}

size_t ColumnChunkWriter::EstimatedSize() const {
  size_t defs = entry_count_ / 4 + 8;
  size_t values = 0;
  switch (info_.type) {
    case AtomicType::kBoolean:
      values = value_count_ / 8 + 8;
      break;
    case AtomicType::kInt64:
      values = value_count_ * 5 + 16;  // delta typically beats this
      break;
    case AtomicType::kDouble:
      values = doubles_.size();
      break;
    case AtomicType::kString:
      values = strings_.EstimatedSize();
      break;
  }
  return defs + values;
}

void ColumnChunkWriter::FinishInto(Buffer* out) {
  Buffer def_stream;
  defs_.FinishInto(&def_stream);
  out->AppendVarint64(def_stream.size());
  out->Append(def_stream.slice());
  switch (info_.type) {
    case AtomicType::kBoolean:
      bools_.FinishInto(out);
      break;
    case AtomicType::kInt64:
      ints_.FinishInto(out);
      break;
    case AtomicType::kDouble:
      out->AppendVarint64(value_count_);
      out->Append(doubles_.slice());
      break;
    case AtomicType::kString:
      strings_.FinishInto(out);
      break;
  }
  Clear();
}

void ColumnChunkWriter::Clear() {
  defs_.Clear();
  entry_count_ = 0;
  value_count_ = 0;
  ints_.Clear();
  doubles_.clear();
  bools_.Clear();
  strings_.Clear();
  min_int_ = max_int_ = 0;
  min_double_ = max_double_ = 0;
  min_string_.clear();
  max_string_.clear();
}

void ColumnWriterSet::SyncWithSchema() {
  while (writers_.size() < static_cast<size_t>(schema_->column_count())) {
    const ColumnInfo& info = schema_->column(static_cast<int>(writers_.size()));
    auto writer = std::make_unique<ColumnChunkWriter>(info);
    // Backfill: previous records of this chunk never saw this column.
    for (size_t i = 0; i < record_count_; ++i) writer->AddNull(0);
    writers_.push_back(std::move(writer));
  }
}

size_t ColumnWriterSet::EstimatedTotalSize() const {
  size_t total = 0;
  for (const auto& w : writers_) total += w->EstimatedSize();
  return total;
}

void ColumnWriterSet::ClearAll() {
  for (auto& w : writers_) w->Clear();
  record_count_ = 0;
}

}  // namespace lsmcol
