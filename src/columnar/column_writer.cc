#include "src/columnar/column_writer.h"

#include <algorithm>
#include <limits>

#include "src/encoding/bitpack.h"

namespace lsmcol {

ColumnChunkWriter::ColumnChunkWriter(const ColumnInfo& info) : info_(info) {
  def_bit_width_ = BitWidth(static_cast<uint64_t>(info.max_def));
  if (def_bit_width_ == 0) def_bit_width_ = 1;  // PK-less corner; keep 1 bit
  defs_ = RleEncoder(def_bit_width_);
}

void ColumnChunkWriter::AddBool(bool v) {
  LSMCOL_DCHECK(info_.type == AtomicType::kBoolean);
  NoteValue();
  bools_.Add(v ? 1 : 0);
  // Booleans reuse the int min/max (0/1) for zone filters.
  int64_t iv = v ? 1 : 0;
  if (value_count_ == 1) {
    min_int_ = max_int_ = iv;
  } else {
    min_int_ = std::min(min_int_, iv);
    max_int_ = std::max(max_int_, iv);
  }
}

void ColumnChunkWriter::AddInt64(int64_t v) {
  LSMCOL_DCHECK(info_.type == AtomicType::kInt64);
  NoteValue();
  ints_.Add(v);
  if (value_count_ == 1) {
    min_int_ = max_int_ = v;
  } else {
    min_int_ = std::min(min_int_, v);
    max_int_ = std::max(max_int_, v);
  }
}

void ColumnChunkWriter::AddDouble(double v) {
  LSMCOL_DCHECK(info_.type == AtomicType::kDouble);
  NoteValue();
  doubles_.AppendDouble(v);
  if (v != v) {
    // NaN is unordered, so min/max cannot describe it — and the engine's
    // CompareValues treats NaN as equal to everything, so a chunk holding
    // one may match any inclusive bound. Widen the zone to everything so
    // zone filters never veto such a chunk.
    min_double_ = -std::numeric_limits<double>::infinity();
    max_double_ = std::numeric_limits<double>::infinity();
    return;
  }
  if (value_count_ == 1) {
    min_double_ = max_double_ = v;
  } else {
    // NaN-sticky: once widened to +-inf, min/max stay there.
    min_double_ = std::min(min_double_, v);
    max_double_ = std::max(max_double_, v);
  }
}

void ColumnChunkWriter::AddString(Slice v) {
  LSMCOL_DCHECK(info_.type == AtomicType::kString);
  NoteValue();
  strings_.Add(v);
  std::string s = v.ToString();
  if (value_count_ == 1) {
    min_string_ = max_string_ = s;
  } else {
    if (s < min_string_) min_string_ = s;
    if (s > max_string_) max_string_ = s;
  }
}

void ColumnChunkWriter::AddKey(int64_t key, bool anti_matter) {
  LSMCOL_DCHECK(info_.is_pk);
  defs_.Add(anti_matter ? 0 : 1);
  ++entry_count_;
  ++value_count_;
  ints_.Add(key);
  if (value_count_ == 1) {
    min_int_ = max_int_ = key;
  } else {
    min_int_ = std::min(min_int_, key);
    max_int_ = std::max(max_int_, key);
  }
}

size_t ColumnChunkWriter::EstimatedSize() const {
  size_t defs = entry_count_ / 4 + 8;
  size_t values = 0;
  switch (info_.type) {
    case AtomicType::kBoolean:
      values = value_count_ / 8 + 8;
      break;
    case AtomicType::kInt64:
      values = value_count_ * 5 + 16;  // delta typically beats this
      break;
    case AtomicType::kDouble:
      values = doubles_.size();
      break;
    case AtomicType::kString:
      values = strings_.EstimatedSize();
      break;
  }
  return defs + values;
}

void ColumnChunkWriter::FinishInto(Buffer* out) {
  Buffer def_stream;
  defs_.FinishInto(&def_stream);
  out->AppendVarint64(def_stream.size());
  out->Append(def_stream.slice());
  switch (info_.type) {
    case AtomicType::kBoolean:
      bools_.FinishInto(out);
      break;
    case AtomicType::kInt64:
      ints_.FinishInto(out);
      break;
    case AtomicType::kDouble:
      out->AppendVarint64(value_count_);
      out->Append(doubles_.slice());
      break;
    case AtomicType::kString:
      strings_.FinishInto(out);
      break;
  }
  Clear();
}

void ColumnChunkWriter::Clear() {
  defs_.Clear();
  entry_count_ = 0;
  value_count_ = 0;
  ints_.Clear();
  doubles_.clear();
  bools_.Clear();
  strings_.Clear();
  min_int_ = max_int_ = 0;
  min_double_ = max_double_ = 0;
  min_string_.clear();
  max_string_.clear();
}

void ColumnWriterSet::SyncWithSchema() {
  while (writers_.size() < static_cast<size_t>(schema_->column_count())) {
    const ColumnInfo& info = schema_->column(static_cast<int>(writers_.size()));
    auto writer = std::make_unique<ColumnChunkWriter>(info);
    // Backfill: previous records of this chunk never saw this column.
    for (size_t i = 0; i < record_count_; ++i) writer->AddNull(0);
    writers_.push_back(std::move(writer));
  }
}

size_t ColumnWriterSet::EstimatedTotalSize() const {
  size_t total = 0;
  for (const auto& w : writers_) total += w->EstimatedSize();
  return total;
}

void ColumnWriterSet::ClearAll() {
  for (auto& w : writers_) w->Clear();
  record_count_ = 0;
}

}  // namespace lsmcol
