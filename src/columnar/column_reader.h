// Read side of the extended Dremel format: a streaming per-column chunk
// reader that parses each record's entries — using the delimiter state
// machine of §3.2.1 — into a small nested structure (ShredCell) that the
// record assembler consumes, plus batched record skipping used during LSM
// reconciliation (§4.4) and a raw typed interface used by the compiled
// query engine (§5).
//
// Delimiter disambiguation invariant (see DESIGN.md §4): while the
// innermost open array has (1-based) index k, element entries carry
// def >= d_k >= k, and the only delimiters a well-formed writer can emit
// are 0..k-1 — so `def <= open_k - 1` identifies a delimiter. The first
// entry of a record is always a value.

#ifndef LSMCOL_COLUMNAR_COLUMN_READER_H_
#define LSMCOL_COLUMNAR_COLUMN_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/encoding/delta.h"
#include "src/encoding/rle.h"
#include "src/encoding/strings.h"
#include "src/json/value.h"
#include "src/schema/schema.h"

namespace lsmcol {

class ColumnChunkWriter;

/// One structural position of one column within one record.
struct ShredCell {
  enum class Kind : uint8_t {
    kMissing,  ///< nothing at/below this position; def = deepest present
    kLeaf,     ///< a present value; value_index into ColumnRecord::values
    kList,     ///< an array instance; children are element positions
  };

  Kind kind = Kind::kMissing;
  int def = 0;
  int value_index = -1;
  std::vector<ShredCell> children;

  static ShredCell Missing(int def) {
    ShredCell c;
    c.kind = Kind::kMissing;
    c.def = def;
    return c;
  }
};

/// A column's contribution to one record: the nested parse plus the
/// decoded present values, in entry order.
struct ColumnRecord {
  ShredCell root;
  std::vector<Value> values;

  /// Anti-matter flag (meaningful for the PK column only).
  bool anti_matter = false;
};

/// Streaming reader over one encoded column chunk.
class ColumnChunkReader {
 public:
  ColumnChunkReader() = default;

  /// `chunk` must outlive the reader (string values are zero-copy).
  Status Init(Slice chunk, const ColumnInfo& info);

  const ColumnInfo& info() const { return info_; }

  /// Total entries in the chunk (records <= entries).
  size_t entry_count() const { return defs_.value_count(); }
  bool AtEnd() const { return entries_read_ >= entry_count(); }

  /// Parse the next record into *out (cleared first).
  Status NextRecord(ColumnRecord* out);

  /// Skip the next n records without materializing values (§4.4's batched
  /// iterator advance; value decoders still advance internally).
  Status SkipRecords(size_t n);

  /// Replay the next record's exact entry stream (def levels, delimiters,
  /// values) into a chunk writer — the per-column transfer of the vertical
  /// merge (§4.5.3). Decodes and re-encodes the values (the merge CPU cost
  /// the paper discusses).
  Status CopyRecordTo(ColumnChunkWriter* writer);

  // --- Raw typed access (compiled engine). Entries are surfaced one at a
  // time; has_value is true iff def == max_def (always true for PK).
  Status NextEntry(int* def, bool* has_value);
  // Valid right after NextEntry returned has_value == true.
  Status ReadBool(bool* out);
  Status ReadInt64(int64_t* out);
  Status ReadDouble(double* out);
  Status ReadString(Slice* out);

 private:
  enum class ParseMode { kMaterialize, kSkip, kCopy };

  Status ParseRecordInto(ColumnRecord* out, ParseMode mode,
                         ColumnChunkWriter* writer);
  Status ReadValueInto(ColumnRecord* out);  // appends to out->values
  Status SkipValue();
  Status TransferValue(ColumnChunkWriter* writer);

  ColumnInfo info_;
  int max_delim_ = -1;  // array_count - 1; -1 when path has no arrays
  RleDecoder defs_;
  size_t entries_read_ = 0;

  // Typed value decoders (one active by type).
  DeltaInt64Decoder ints_;
  RleDecoder bools_;
  BufferReader doubles_{Slice()};
  size_t doubles_remaining_ = 0;
  DeltaLengthStringDecoder strings_;
};

}  // namespace lsmcol

#endif  // LSMCOL_COLUMNAR_COLUMN_READER_H_
