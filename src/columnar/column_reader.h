// Read side of the extended Dremel format: a streaming per-column chunk
// reader that parses each record's entries — using the delimiter state
// machine of §3.2.1 — into a small nested structure (ShredCell) that the
// record assembler consumes, plus batched record skipping used during LSM
// reconciliation (§4.4) and a raw typed interface used by the compiled
// query engine (§5).
//
// Delimiter disambiguation invariant (see DESIGN.md §4): while the
// innermost open array has (1-based) index k, element entries carry
// def >= d_k >= k, and the only delimiters a well-formed writer can emit
// are 0..k-1 — so `def <= open_k - 1` identifies a delimiter. The first
// entry of a record is always a value.

#ifndef LSMCOL_COLUMNAR_COLUMN_READER_H_
#define LSMCOL_COLUMNAR_COLUMN_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/encoding/delta.h"
#include "src/encoding/rle.h"
#include "src/encoding/strings.h"
#include "src/json/value.h"
#include "src/schema/schema.h"

namespace lsmcol {

class ColumnChunkWriter;

/// One structural position of one column within one record.
struct ShredCell {
  enum class Kind : uint8_t {
    kMissing,  ///< nothing at/below this position; def = deepest present
    kLeaf,     ///< a present value; value_index into ColumnRecord::values
    kList,     ///< an array instance; children are element positions
  };

  Kind kind = Kind::kMissing;
  int def = 0;
  int value_index = -1;
  std::vector<ShredCell> children;

  static ShredCell Missing(int def) {
    ShredCell c;
    c.kind = Kind::kMissing;
    c.def = def;
    return c;
  }
};

/// A column's contribution to one record: the nested parse plus the
/// decoded present values, in entry order.
struct ColumnRecord {
  ShredCell root;
  std::vector<Value> values;

  /// Anti-matter flag (meaningful for the PK column only).
  bool anti_matter = false;
};

/// A decoded span of column entries — the vectorized read path. Parallel
/// arrays: defs[i] is entry i's definition level, value_index[i] the index
/// of its payload inside the typed storage matching the column's type, or
/// -1 when the entry carries no value (NULL / delimiter). String slices
/// point into the chunk (zero-copy) and stay valid while it lives.
struct ColumnEntryBatch {
  std::vector<int> defs;
  std::vector<int32_t> value_index;
  std::vector<int64_t> ints;     ///< kInt64 values (and PK keys)
  std::vector<uint64_t> bools;   ///< kBoolean values (0/1)
  std::vector<double> doubles;   ///< kDouble values
  std::vector<Slice> strings;    ///< kString values

  size_t entry_count() const { return defs.size(); }
  void Clear() {
    defs.clear();
    value_index.clear();
    ints.clear();
    bools.clear();
    doubles.clear();
    strings.clear();
  }
};

/// Streaming reader over one encoded column chunk.
class ColumnChunkReader {
 public:
  ColumnChunkReader() = default;

  /// `chunk` must outlive the reader (string values are zero-copy).
  Status Init(Slice chunk, const ColumnInfo& info);

  const ColumnInfo& info() const { return info_; }

  /// Total entries in the chunk (records <= entries).
  size_t entry_count() const { return defs_.value_count(); }
  bool AtEnd() const { return entries_read_ >= entry_count(); }

  /// Parse the next record into *out (cleared first).
  Status NextRecord(ColumnRecord* out);

  /// Skip the next n records without materializing values (§4.4's batched
  /// iterator advance; value decoders still advance internally).
  Status SkipRecords(size_t n);

  /// Replay the next record's exact entry stream (def levels, delimiters,
  /// values) into a chunk writer — the per-column transfer of the vertical
  /// merge (§4.5.3). Decodes and re-encodes the values (the merge CPU cost
  /// the paper discusses).
  Status CopyRecordTo(ColumnChunkWriter* writer);

  // --- Raw typed access (compiled engine). Entries are surfaced one at a
  // time; has_value is true iff def == max_def (always true for PK).
  Status NextEntry(int* def, bool* has_value);
  // Valid right after NextEntry returned has_value == true.
  Status ReadBool(bool* out);
  Status ReadInt64(int64_t* out);
  Status ReadDouble(double* out);
  Status ReadString(Slice* out);

  /// Vectorized read: decode the next min(max_entries, remaining) entries
  /// (def levels plus every present value) into *out, cleared first.
  /// Invariants:
  ///  * consumes whole entries only — encoded runs crossing the batch
  ///    boundary are resumed by the next call;
  ///  * for columns with array ancestors a batch may end mid-record;
  ///    interleave with NextRecord/SkipRecords/CopyRecordTo only at
  ///    record boundaries (columns with array_count() == 0, including the
  ///    PK, have one entry per record, so any boundary is safe);
  ///  * returned string slices alias the chunk passed to Init.
  Status NextEntryBatch(size_t max_entries, ColumnEntryBatch* out);

 private:
  enum class ParseMode { kMaterialize, kSkip, kCopy };

  Status ParseRecordInto(ColumnRecord* out, ParseMode mode,
                         ColumnChunkWriter* writer);
  Status ReadValueInto(ColumnRecord* out);  // appends to out->values
  Status SkipValue();
  Status SkipValues(size_t n);  // batched typed-decoder advance
  Status TransferValue(ColumnChunkWriter* writer);

  ColumnInfo info_;
  int max_delim_ = -1;  // array_count - 1; -1 when path has no arrays
  RleDecoder defs_;
  size_t entries_read_ = 0;

  // Typed value decoders (one active by type).
  DeltaInt64Decoder ints_;
  RleDecoder bools_;
  BufferReader doubles_{Slice()};
  size_t doubles_remaining_ = 0;
  DeltaLengthStringDecoder strings_;

  std::vector<uint64_t> def_scratch_;  // NextEntryBatch def staging
};

}  // namespace lsmcol

#endif  // LSMCOL_COLUMNAR_COLUMN_READER_H_
