// RecordShredder: the flush-time transformation of row-format records into
// extended-Dremel columns (§3.2, §4.5). Each Shred() call first extends
// the schema (tuple-compactor inference, §2.2) and then walks the record
// once, emitting (def, value) entries — with suppressed inner delimiters
// (§3.2.1) — into the per-column chunk writers.

#ifndef LSMCOL_COLUMNAR_SHREDDER_H_
#define LSMCOL_COLUMNAR_SHREDDER_H_

#include <cstdint>
#include <vector>

#include "src/columnar/column_writer.h"
#include "src/schema/schema.h"

namespace lsmcol {

/// Walks records against the (growing) schema and feeds column writers.
class RecordShredder {
 public:
  /// Both pointers must outlive the shredder.
  RecordShredder(Schema* schema, ColumnWriterSet* writers)
      : schema_(schema), writers_(writers) {}

  /// Infer-and-shred one record. The record must carry an int64 primary
  /// key. Emits exactly one logical entry group per column.
  Status Shred(const Value& record);

  /// Emit an anti-matter entry for `key` (§3.2.3): the PK column stores
  /// the key at def 0; every other column stores a def-0 NULL.
  Status ShredAntiMatter(int64_t key);

 private:
  // Per-column transient state for the record being shredded.
  struct ColumnState {
    int pending_delim = -1;  // delimiter to emit before the next entry
    bool outer_open = false;  // outermost array entered this record
  };

  void EmitNull(int column_id, int def);
  void EmitValue(const SchemaNode& leaf, const Value& v);
  void MaterializePending(int column_id);

  void WalkPresent(const SchemaNode& node, const Value& v);
  /// Emit NULL entries at `def` for every column under `node`.
  void FlushNulls(const SchemaNode& node, int def);
  void WalkArray(const SchemaNode& array_node, const Value& v);

  Schema* schema_;
  ColumnWriterSet* writers_;
  std::vector<ColumnState> states_;
  std::vector<int> touched_arrays_;  // columns whose outer array opened
};

}  // namespace lsmcol

#endif  // LSMCOL_COLUMNAR_SHREDDER_H_
