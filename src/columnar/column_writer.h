// Write side of the extended Dremel format (§3.2): per-column chunk
// writers that accumulate (definition level, value) entries — with
// delimiter-based repetition (§3.2.1) — and encode them into the on-disk
// chunk layout shared by APAX minipages and AMAX megapages:
//
//   chunk := varint def_size | def_stream (RLE/bit-packed) | value_stream
//
// Values are encoded by type: int64 → delta binary packed, double → plain,
// boolean → RLE(1 bit), string → delta-length byte array. The primary-key
// column stores a value for *every* entry (anti-matter entries carry the
// deleted key, §3.2.3); all other columns store values only for entries at
// the column's max definition level.

#ifndef LSMCOL_COLUMNAR_COLUMN_WRITER_H_
#define LSMCOL_COLUMNAR_COLUMN_WRITER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/columnar/column_reader.h"
#include "src/common/buffer.h"
#include "src/encoding/delta.h"
#include "src/encoding/rle.h"
#include "src/encoding/strings.h"
#include "src/schema/schema.h"

namespace lsmcol {

/// Accumulates one column's entries and encodes them as a chunk.
class ColumnChunkWriter {
 public:
  explicit ColumnChunkWriter(const ColumnInfo& info);

  const ColumnInfo& info() const { return info_; }
  size_t entry_count() const { return entry_count_; }
  size_t value_count() const { return value_count_; }

  /// Entry without a payload: a NULL at `def`, or a delimiter (delimiters
  /// share the def-level alphabet; the reader disambiguates by state).
  void AddNull(int def) {
    defs_.Add(static_cast<uint64_t>(def));
    ++entry_count_;
  }
  void AddDelimiter(int delim) { AddNull(delim); }

  /// `count` identical payload-less entries in one run-granular def append
  /// (a dropped or absent-column stretch of the run-level merge).
  void AddNullRun(int def, size_t count) {
    defs_.AddRun(static_cast<uint64_t>(def), count);
    entry_count_ += count;
  }

  /// Replay a decoded entry span (as ColumnChunkReader::NextEntryBatch
  /// produces it) verbatim: def levels are appended run-coalesced and every
  /// present value through the typed batch encoder entry points — the
  /// per-column transfer of the run-level merge (§4.5.3) without per-entry
  /// round trips. Zone min/max tracking matches the per-value Add* paths
  /// exactly (PK keys count anti-matter entries; NaN widens doubles).
  void AppendEntries(const ColumnEntryBatch& batch);

  // Present values (def == max_def implied).
  void AddBool(bool v);
  void AddInt64(int64_t v);
  void AddDouble(double v);
  void AddString(Slice v);

  /// Primary-key column only: every entry carries the key; def 1 = live
  /// record, def 0 = anti-matter.
  void AddKey(int64_t key, bool anti_matter);

  /// Rough encoded size so far (page budgeting). Conservative: def stream
  /// estimated at 2 bits/entry.
  size_t EstimatedSize() const;

  /// Encode the chunk (def stream + values) into out, then reset.
  void FinishInto(Buffer* out);

  void Clear();

  // Min/max tracking for zone filters (AMAX Page 0 prefixes, §4.3). Valid
  // only when value_count() > 0.
  int64_t min_int() const { return min_int_; }
  int64_t max_int() const { return max_int_; }
  double min_double() const { return min_double_; }
  double max_double() const { return max_double_; }
  const std::string& min_string() const { return min_string_; }
  const std::string& max_string() const { return max_string_; }

 private:
  void NoteValue() {
    defs_.Add(static_cast<uint64_t>(info_.max_def));
    ++entry_count_;
    ++value_count_;
  }

  ColumnInfo info_;
  int def_bit_width_ = 1;
  RleEncoder defs_{1};
  size_t entry_count_ = 0;
  size_t value_count_ = 0;

  // One of these is active depending on info_.type (PK uses ints_).
  DeltaInt64Encoder ints_;
  Buffer doubles_;
  RleEncoder bools_{1};
  DeltaLengthStringEncoder strings_;

  int64_t min_int_ = 0, max_int_ = 0;
  double min_double_ = 0, max_double_ = 0;
  std::string min_string_, max_string_;
};

/// The set of chunk writers for all columns of a schema, growing as the
/// schema grows. Newly discovered columns are backfilled with def-0 NULLs
/// for the records already added to the current chunk (§3.2.2: "write
/// NULLs in the newly inferred columns for all previous records").
class ColumnWriterSet {
 public:
  explicit ColumnWriterSet(const Schema* schema) : schema_(schema) {}

  /// Ensure a writer exists for every schema column, backfilling new ones.
  void SyncWithSchema();

  ColumnChunkWriter& writer(int column_id) { return *writers_[column_id]; }
  size_t column_count() const { return writers_.size(); }

  /// Records accumulated in the current chunks.
  size_t record_count() const { return record_count_; }
  void NoteRecordComplete() { ++record_count_; }
  void NoteRecordsComplete(size_t n) { record_count_ += n; }

  /// Sum of estimated chunk sizes (page budgeting).
  size_t EstimatedTotalSize() const;

  void ClearAll();

 private:
  const Schema* schema_;
  std::vector<std::unique_ptr<ColumnChunkWriter>> writers_;
  size_t record_count_ = 0;
};

}  // namespace lsmcol

#endif  // LSMCOL_COLUMNAR_COLUMN_WRITER_H_
