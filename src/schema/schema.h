// Schema tree with union types and definition-level assignment — the
// "tuple compactor" schema of the paper (§2.2, §3.2.2).
//
// Nodes are Object / Array / Union / Atomic. Every node is optional (the
// schemaless document model): a node's definition level counts its optional
// ancestors including itself, root = 0. Union nodes are *logical guides*
// and add no definition level — their alternatives sit at the level the
// original value had, so promoting a field to a union never requires
// rewriting previously written columns (immutable LSM components).
//
// Every atomic leaf owns a column (stable, monotonically assigned ids, so
// the columns of an older flush are always a prefix of a newer flush's
// columns). Column 0 is always the primary key: an int64 whose max
// definition level is 1, where def 0 marks an anti-matter entry (§3.2.3).

#ifndef LSMCOL_SCHEMA_SCHEMA_H_
#define LSMCOL_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/json/value.h"

namespace lsmcol {

/// Atomic (leaf) column types. JSON null is treated as missing (see
/// DESIGN.md §1), so there is no null column type.
enum class AtomicType : uint8_t {
  kBoolean = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

const char* AtomicTypeName(AtomicType t);

/// Descriptor of one shredded column.
struct ColumnInfo {
  int id = -1;
  AtomicType type = AtomicType::kInt64;
  int max_def = 0;              ///< def level of a present value
  std::vector<int> array_defs;  ///< def levels of array ancestors, outer→inner
  std::string path;             ///< dotted debug path, e.g. games[*].title
  bool is_pk = false;

  /// Number of array ancestors (the column's "max-delimiter" is
  /// array_count() - 1, §3.2.1).
  int array_count() const { return static_cast<int>(array_defs.size()); }
};

/// A node in the inferred schema tree.
class SchemaNode {
 public:
  enum class Kind : uint8_t {
    kObject = 0,
    kArray = 1,
    kUnion = 2,
    kAtomic = 3,
  };

  SchemaNode(Kind kind, int def_level) : kind_(kind), def_level_(def_level) {}

  SchemaNode(const SchemaNode&) = delete;
  SchemaNode& operator=(const SchemaNode&) = delete;

  Kind kind() const { return kind_; }
  int def_level() const { return def_level_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_union() const { return kind_ == Kind::kUnion; }
  bool is_atomic() const { return kind_ == Kind::kAtomic; }

  // Atomic leaves.
  AtomicType atomic_type() const { return atomic_type_; }
  int column_id() const { return column_id_; }

  // Object children (insertion-ordered).
  const std::vector<std::pair<std::string, std::unique_ptr<SchemaNode>>>&
  fields() const {
    return fields_;
  }
  /// Field lookup; nullptr when absent.
  const SchemaNode* FindField(std::string_view name) const;

  // Array item.
  const SchemaNode* item() const { return item_.get(); }

  // Union alternatives.
  const std::vector<std::unique_ptr<SchemaNode>>& alternatives() const {
    return alternatives_;
  }
  /// The alternative whose shape matches the given value type; nullptr if
  /// no alternative matches.
  const SchemaNode* FindAlternative(const Value& v) const;

 private:
  friend class Schema;

  Kind kind_;
  int def_level_;
  AtomicType atomic_type_ = AtomicType::kInt64;
  int column_id_ = -1;
  std::vector<std::pair<std::string, std::unique_ptr<SchemaNode>>> fields_;
  std::unique_ptr<SchemaNode> item_;
  std::vector<std::unique_ptr<SchemaNode>> alternatives_;
};

/// \brief The inferred, monotonically growing schema of a dataset.
///
/// MergeRecord extends the tree to cover a record (the flush-time schema
/// inference of §2.2); the tree and the column registry only ever grow, and
/// column ids are assigned in discovery order so older components' columns
/// are a prefix of newer ones.
class Schema {
 public:
  /// Creates a schema whose primary key is the given top-level int64 field
  /// (column 0).
  explicit Schema(std::string pk_field);

  Schema(const Schema&) = delete;
  Schema& operator=(const Schema&) = delete;
  Schema(Schema&&) = default;
  Schema& operator=(Schema&&) = default;

  const std::string& pk_field() const { return pk_field_; }
  const SchemaNode& root() const { return *root_; }
  const std::vector<ColumnInfo>& columns() const { return columns_; }
  int column_count() const { return static_cast<int>(columns_.size()); }
  const ColumnInfo& column(int id) const { return columns_[id]; }

  /// Extend the schema to cover `record`. The record must be an object
  /// carrying an int64 primary-key field. Returns InvalidArgument
  /// otherwise; the schema is unchanged on error.
  Status MergeRecord(const Value& record);

  /// Number of MergeRecord calls that succeeded (used by writers to
  /// backfill NULLs into newly discovered columns).
  uint64_t merged_record_count() const { return merged_record_count_; }

  /// Serialize the full tree (persisted in component metadata pages).
  void SerializeTo(Buffer* out) const;
  static Result<Schema> Deserialize(Slice input);

  /// Resolve a dotted field path (e.g. "name.first"); descends through
  /// unions (object alternatives) and arrays implicitly is NOT done here —
  /// steps are field names only and the result may be any node kind.
  /// Returns nullptr when the path does not exist in the schema.
  const SchemaNode* ResolvePath(const std::vector<std::string>& steps) const;

  /// All column ids in the subtree rooted at `node` (in id order).
  static std::vector<int> ColumnsUnder(const SchemaNode* node);

  /// Human-readable multi-line dump (tests, examples, debugging).
  std::string ToString() const;

 private:
  /// Extend (or create) the node held by *slot to cover v. v is non-null,
  /// non-missing. def_level is the level the node (or its union
  /// alternatives) sits at.
  void MergeSlot(std::unique_ptr<SchemaNode>* slot, const Value& v,
                 int def_level, const std::string& path,
                 std::vector<int>* array_defs);
  /// Recurse into an already-matching node's children.
  void MergeChildren(SchemaNode* node, const Value& v, const std::string& path,
                     std::vector<int>* array_defs);
  std::unique_ptr<SchemaNode> CreateNodeFor(const Value& v, int def_level,
                                            const std::string& path,
                                            std::vector<int>* array_defs);
  int RegisterColumn(AtomicType type, int max_def,
                     const std::vector<int>& array_defs,
                     const std::string& path);
  static bool Matches(const SchemaNode& node, const Value& v);

  void SerializeNode(const SchemaNode& node, Buffer* out) const;
  static Status DeserializeNode(BufferReader* reader,
                                std::unique_ptr<SchemaNode>* out);
  void RebuildColumnRegistry(const SchemaNode& node, const std::string& path,
                             std::vector<int>* array_defs, bool is_pk);

  std::string pk_field_;
  std::unique_ptr<SchemaNode> root_;
  std::vector<ColumnInfo> columns_;
  uint64_t merged_record_count_ = 0;
};

}  // namespace lsmcol

#endif  // LSMCOL_SCHEMA_SCHEMA_H_
