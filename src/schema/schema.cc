#include "src/schema/schema.h"

#include <algorithm>

namespace lsmcol {

const char* AtomicTypeName(AtomicType t) {
  switch (t) {
    case AtomicType::kBoolean:
      return "boolean";
    case AtomicType::kInt64:
      return "int64";
    case AtomicType::kDouble:
      return "double";
    case AtomicType::kString:
      return "string";
  }
  return "unknown";
}

namespace {

/// Atomic type of an atomic Value (caller guarantees v is atomic non-null).
AtomicType AtomicTypeOf(const Value& v) {
  switch (v.type()) {
    case ValueType::kBool:
      return AtomicType::kBoolean;
    case ValueType::kInt64:
      return AtomicType::kInt64;
    case ValueType::kDouble:
      return AtomicType::kDouble;
    case ValueType::kString:
      return AtomicType::kString;
    default:
      LSMCOL_CHECK(false);
      return AtomicType::kInt64;
  }
}

bool IsAtomicValue(const Value& v) {
  return v.is_bool() || v.is_int() || v.is_double() || v.is_string();
}

}  // namespace

const SchemaNode* SchemaNode::FindField(std::string_view name) const {
  for (const auto& [field_name, child] : fields_) {
    if (field_name == name) return child.get();
  }
  return nullptr;
}

const SchemaNode* SchemaNode::FindAlternative(const Value& v) const {
  for (const auto& alt : alternatives_) {
    if (v.is_object() && alt->is_object()) return alt.get();
    if (v.is_array() && alt->is_array()) return alt.get();
    if (IsAtomicValue(v) && alt->is_atomic() &&
        alt->atomic_type() == AtomicTypeOf(v)) {
      return alt.get();
    }
  }
  return nullptr;
}

bool Schema::Matches(const SchemaNode& node, const Value& v) {
  switch (node.kind()) {
    case SchemaNode::Kind::kObject:
      return v.is_object();
    case SchemaNode::Kind::kArray:
      return v.is_array();
    case SchemaNode::Kind::kAtomic:
      return IsAtomicValue(v) && node.atomic_type() == AtomicTypeOf(v);
    case SchemaNode::Kind::kUnion:
      return true;  // a union absorbs any value by adding alternatives
  }
  return false;
}

Schema::Schema(std::string pk_field) : pk_field_(std::move(pk_field)) {
  root_ = std::make_unique<SchemaNode>(SchemaNode::Kind::kObject, 0);
  // Column 0: the primary key. Its max def level is 1 (not 0): def 0 marks
  // anti-matter, def 1 a live record (§3.2.3).
  auto pk_node = std::make_unique<SchemaNode>(SchemaNode::Kind::kAtomic, 1);
  pk_node->atomic_type_ = AtomicType::kInt64;
  pk_node->column_id_ = 0;
  root_->fields_.emplace_back(pk_field_, std::move(pk_node));
  ColumnInfo pk;
  pk.id = 0;
  pk.type = AtomicType::kInt64;
  pk.max_def = 1;
  pk.path = pk_field_;
  pk.is_pk = true;
  columns_.push_back(std::move(pk));
}

int Schema::RegisterColumn(AtomicType type, int max_def,
                           const std::vector<int>& array_defs,
                           const std::string& path) {
  ColumnInfo info;
  info.id = static_cast<int>(columns_.size());
  info.type = type;
  info.max_def = max_def;
  info.array_defs = array_defs;
  info.path = path;
  columns_.push_back(std::move(info));
  return columns_.back().id;
}

std::unique_ptr<SchemaNode> Schema::CreateNodeFor(
    const Value& v, int def_level, const std::string& path,
    std::vector<int>* array_defs) {
  std::unique_ptr<SchemaNode> node;
  if (v.is_object()) {
    node = std::make_unique<SchemaNode>(SchemaNode::Kind::kObject, def_level);
  } else if (v.is_array()) {
    node = std::make_unique<SchemaNode>(SchemaNode::Kind::kArray, def_level);
  } else {
    LSMCOL_DCHECK(IsAtomicValue(v));
    node = std::make_unique<SchemaNode>(SchemaNode::Kind::kAtomic, def_level);
    node->atomic_type_ = AtomicTypeOf(v);
    node->column_id_ =
        RegisterColumn(node->atomic_type_, def_level, *array_defs, path);
  }
  return node;
}

void Schema::MergeSlot(std::unique_ptr<SchemaNode>* slot, const Value& v,
                       int def_level, const std::string& path,
                       std::vector<int>* array_defs) {
  LSMCOL_DCHECK(!v.is_null() && !v.is_missing());
  if (*slot == nullptr) {
    *slot = CreateNodeFor(v, def_level, path, array_defs);
    MergeChildren(slot->get(), v, path, array_defs);
    return;
  }
  SchemaNode* node = slot->get();
  if (node->is_union()) {
    const SchemaNode* alt_const = node->FindAlternative(v);
    SchemaNode* alt = const_cast<SchemaNode*>(alt_const);
    if (alt == nullptr) {
      std::string alt_path =
          path + "<" +
          (v.is_object() ? "object"
                         : (v.is_array() ? "array" : AtomicTypeName(AtomicTypeOf(v)))) +
          ">";
      node->alternatives_.push_back(
          CreateNodeFor(v, def_level, alt_path, array_defs));
      alt = node->alternatives_.back().get();
    }
    MergeChildren(alt, v, path, array_defs);
    return;
  }
  if (Matches(*node, v)) {
    MergeChildren(node, v, path, array_defs);
    return;
  }
  // Type conflict: promote the slot to a union of {existing, new}
  // (§3.2.2). The union sits at the same def level; existing columns are
  // untouched.
  auto union_node =
      std::make_unique<SchemaNode>(SchemaNode::Kind::kUnion, def_level);
  union_node->alternatives_.push_back(std::move(*slot));
  std::string alt_path =
      path + "<" +
      (v.is_object() ? "object"
                     : (v.is_array() ? "array" : AtomicTypeName(AtomicTypeOf(v)))) +
      ">";
  union_node->alternatives_.push_back(
      CreateNodeFor(v, def_level, alt_path, array_defs));
  SchemaNode* new_alt = union_node->alternatives_.back().get();
  *slot = std::move(union_node);
  MergeChildren(new_alt, v, path, array_defs);
}

void Schema::MergeChildren(SchemaNode* node, const Value& v,
                           const std::string& path,
                           std::vector<int>* array_defs) {
  if (node->is_object()) {
    LSMCOL_DCHECK(v.is_object());
    for (const auto& [name, value] : v.object()) {
      if (value.is_null() || value.is_missing()) continue;
      std::unique_ptr<SchemaNode>* slot = nullptr;
      for (auto& [field_name, child] : node->fields_) {
        if (field_name == name) {
          slot = &child;
          break;
        }
      }
      if (slot == nullptr) {
        node->fields_.emplace_back(name, nullptr);
        slot = &node->fields_.back().second;
      }
      MergeSlot(slot, value, node->def_level() + 1, path + "." + name,
                array_defs);
    }
  } else if (node->is_array()) {
    LSMCOL_DCHECK(v.is_array());
    array_defs->push_back(node->def_level());
    for (const Value& element : v.array()) {
      if (element.is_null() || element.is_missing()) continue;
      MergeSlot(&node->item_, element, node->def_level() + 1, path + "[*]",
                array_defs);
    }
    array_defs->pop_back();
  }
  // Atomic: nothing below.
}

Status Schema::MergeRecord(const Value& record) {
  if (!record.is_object()) {
    return Status::InvalidArgument("record must be an object");
  }
  const Value& pk = record.Get(pk_field_);
  if (!pk.is_int()) {
    return Status::InvalidArgument("record primary key '" + pk_field_ +
                                   "' must be an int64");
  }
  std::vector<int> array_defs;
  for (const auto& [name, value] : record.object()) {
    if (name == pk_field_) continue;  // column 0, fixed type
    if (value.is_null() || value.is_missing()) continue;
    std::unique_ptr<SchemaNode>* slot = nullptr;
    for (auto& [field_name, child] : root_->fields_) {
      if (field_name == name) {
        slot = &child;
        break;
      }
    }
    if (slot == nullptr) {
      root_->fields_.emplace_back(name, nullptr);
      slot = &root_->fields_.back().second;
    }
    MergeSlot(slot, value, 1, name, &array_defs);
  }
  ++merged_record_count_;
  return Status::OK();
}

// --- Serialization ---
//
// Node wire format: byte kind, varint def_level, then kind-specific:
//   atomic: byte type, varint column_id
//   object: varint field_count, (len-prefixed name, node)*
//   array:  byte has_item, [node]
//   union:  varint alt_count, node*

void Schema::SerializeNode(const SchemaNode& node, Buffer* out) const {
  out->AppendByte(static_cast<uint8_t>(node.kind()));
  out->AppendVarint64(static_cast<uint64_t>(node.def_level()));
  switch (node.kind()) {
    case SchemaNode::Kind::kAtomic:
      out->AppendByte(static_cast<uint8_t>(node.atomic_type()));
      out->AppendVarint64(static_cast<uint64_t>(node.column_id()));
      break;
    case SchemaNode::Kind::kObject:
      out->AppendVarint64(node.fields().size());
      for (const auto& [name, child] : node.fields()) {
        out->AppendLengthPrefixed(Slice(name));
        SerializeNode(*child, out);
      }
      break;
    case SchemaNode::Kind::kArray:
      out->AppendByte(node.item() != nullptr ? 1 : 0);
      if (node.item() != nullptr) SerializeNode(*node.item(), out);
      break;
    case SchemaNode::Kind::kUnion:
      out->AppendVarint64(node.alternatives().size());
      for (const auto& alt : node.alternatives()) SerializeNode(*alt, out);
      break;
  }
}

void Schema::SerializeTo(Buffer* out) const {
  out->AppendLengthPrefixed(Slice(pk_field_));
  out->AppendVarint64(merged_record_count_);
  SerializeNode(*root_, out);
}

Status Schema::DeserializeNode(BufferReader* reader,
                               std::unique_ptr<SchemaNode>* out) {
  uint8_t kind_byte = 0;
  LSMCOL_RETURN_NOT_OK(reader->ReadByte(&kind_byte));
  if (kind_byte > 3) return Status::Corruption("bad schema node kind");
  auto kind = static_cast<SchemaNode::Kind>(kind_byte);
  uint64_t def_level = 0;
  LSMCOL_RETURN_NOT_OK(reader->ReadVarint64(&def_level));
  auto node = std::make_unique<SchemaNode>(kind, static_cast<int>(def_level));
  switch (kind) {
    case SchemaNode::Kind::kAtomic: {
      uint8_t type_byte = 0;
      LSMCOL_RETURN_NOT_OK(reader->ReadByte(&type_byte));
      if (type_byte > 3) return Status::Corruption("bad atomic type");
      node->atomic_type_ = static_cast<AtomicType>(type_byte);
      uint64_t column_id = 0;
      LSMCOL_RETURN_NOT_OK(reader->ReadVarint64(&column_id));
      node->column_id_ = static_cast<int>(column_id);
      break;
    }
    case SchemaNode::Kind::kObject: {
      uint64_t field_count = 0;
      LSMCOL_RETURN_NOT_OK(reader->ReadVarint64(&field_count));
      for (uint64_t i = 0; i < field_count; ++i) {
        Slice name;
        LSMCOL_RETURN_NOT_OK(reader->ReadLengthPrefixed(&name));
        std::unique_ptr<SchemaNode> child;
        LSMCOL_RETURN_NOT_OK(DeserializeNode(reader, &child));
        node->fields_.emplace_back(name.ToString(), std::move(child));
      }
      break;
    }
    case SchemaNode::Kind::kArray: {
      uint8_t has_item = 0;
      LSMCOL_RETURN_NOT_OK(reader->ReadByte(&has_item));
      if (has_item) {
        LSMCOL_RETURN_NOT_OK(DeserializeNode(reader, &node->item_));
      }
      break;
    }
    case SchemaNode::Kind::kUnion: {
      uint64_t alt_count = 0;
      LSMCOL_RETURN_NOT_OK(reader->ReadVarint64(&alt_count));
      for (uint64_t i = 0; i < alt_count; ++i) {
        std::unique_ptr<SchemaNode> alt;
        LSMCOL_RETURN_NOT_OK(DeserializeNode(reader, &alt));
        node->alternatives_.push_back(std::move(alt));
      }
      break;
    }
  }
  *out = std::move(node);
  return Status::OK();
}

void Schema::RebuildColumnRegistry(const SchemaNode& node,
                                   const std::string& path,
                                   std::vector<int>* array_defs, bool is_pk) {
  switch (node.kind()) {
    case SchemaNode::Kind::kAtomic: {
      const int id = node.column_id();
      LSMCOL_CHECK(id >= 0);
      if (static_cast<size_t>(id) >= columns_.size()) {
        columns_.resize(id + 1);
      }
      ColumnInfo& info = columns_[id];
      info.id = id;
      info.type = node.atomic_type();
      info.max_def = node.def_level();
      info.array_defs = *array_defs;
      info.path = path;
      info.is_pk = is_pk;
      break;
    }
    case SchemaNode::Kind::kObject:
      for (const auto& [name, child] : node.fields()) {
        const std::string child_path =
            path.empty() ? name : path + "." + name;
        RebuildColumnRegistry(*child, child_path, array_defs,
                              path.empty() && name == pk_field_);
      }
      break;
    case SchemaNode::Kind::kArray:
      if (node.item() != nullptr) {
        array_defs->push_back(node.def_level());
        RebuildColumnRegistry(*node.item(), path + "[*]", array_defs, false);
        array_defs->pop_back();
      }
      break;
    case SchemaNode::Kind::kUnion:
      for (const auto& alt : node.alternatives()) {
        RebuildColumnRegistry(*alt, path, array_defs, false);
      }
      break;
  }
}

Result<Schema> Schema::Deserialize(Slice input) {
  BufferReader reader(input);
  Slice pk_field;
  LSMCOL_RETURN_NOT_OK(reader.ReadLengthPrefixed(&pk_field));
  uint64_t merged = 0;
  LSMCOL_RETURN_NOT_OK(reader.ReadVarint64(&merged));
  Schema schema(pk_field.ToString());
  schema.merged_record_count_ = merged;
  std::unique_ptr<SchemaNode> root;
  LSMCOL_RETURN_NOT_OK(DeserializeNode(&reader, &root));
  if (!root->is_object()) return Status::Corruption("schema root not object");
  schema.root_ = std::move(root);
  schema.columns_.clear();
  std::vector<int> array_defs;
  schema.RebuildColumnRegistry(*schema.root_, "", &array_defs, false);
  if (schema.columns_.empty() || !schema.columns_[0].is_pk) {
    return Status::Corruption("deserialized schema lacks pk column 0");
  }
  // The PK column keeps its special def semantics.
  schema.columns_[0].max_def = 1;
  return schema;
}

const SchemaNode* Schema::ResolvePath(
    const std::vector<std::string>& steps) const {
  const SchemaNode* node = root_.get();
  for (const auto& step : steps) {
    // Implicitly descend through arrays and unions to reach an object that
    // can hold the field.
    while (node != nullptr && !node->is_object()) {
      if (node->is_array()) {
        node = node->item();
      } else if (node->is_union()) {
        const SchemaNode* object_alt = nullptr;
        for (const auto& alt : node->alternatives()) {
          if (alt->is_object()) {
            object_alt = alt.get();
            break;
          }
        }
        node = object_alt;
      } else {
        return nullptr;  // atomic cannot hold a field
      }
    }
    if (node == nullptr) return nullptr;
    node = node->FindField(step);
    if (node == nullptr) return nullptr;
  }
  return node;
}

std::vector<int> Schema::ColumnsUnder(const SchemaNode* node) {
  std::vector<int> out;
  if (node == nullptr) return out;
  struct Walker {
    std::vector<int>* out;
    void Walk(const SchemaNode& n) {
      switch (n.kind()) {
        case SchemaNode::Kind::kAtomic:
          out->push_back(n.column_id());
          break;
        case SchemaNode::Kind::kObject:
          for (const auto& [name, child] : n.fields()) Walk(*child);
          break;
        case SchemaNode::Kind::kArray:
          if (n.item() != nullptr) Walk(*n.item());
          break;
        case SchemaNode::Kind::kUnion:
          for (const auto& alt : n.alternatives()) Walk(*alt);
          break;
      }
    }
  };
  Walker walker{&out};
  walker.Walk(*node);
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

void DumpNode(const SchemaNode& node, const std::string& name, int indent,
              std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  if (!name.empty()) {
    *out += name;
    *out += ": ";
  }
  switch (node.kind()) {
    case SchemaNode::Kind::kAtomic:
      *out += AtomicTypeName(node.atomic_type());
      *out += " (col ";
      *out += std::to_string(node.column_id());
      *out += ", def ";
      *out += std::to_string(node.def_level());
      *out += ")\n";
      break;
    case SchemaNode::Kind::kObject:
      *out += "object\n";
      for (const auto& [field_name, child] : node.fields()) {
        DumpNode(*child, field_name, indent + 1, out);
      }
      break;
    case SchemaNode::Kind::kArray:
      *out += "array\n";
      if (node.item() != nullptr) DumpNode(*node.item(), "[*]", indent + 1, out);
      break;
    case SchemaNode::Kind::kUnion:
      *out += "union\n";
      for (const auto& alt : node.alternatives()) {
        DumpNode(*alt, "|", indent + 1, out);
      }
      break;
  }
}

}  // namespace

std::string Schema::ToString() const {
  std::string out;
  DumpNode(*root_, "", 0, &out);
  return out;
}

}  // namespace lsmcol
