#include "src/layouts/amax.h"

#include <algorithm>
#include <cstring>

#include "src/encoding/lz.h"

namespace lsmcol {
namespace {

void FillPrefixes(const ColumnChunkWriter& w, AmaxColumnExtent* extent) {
  if (w.value_count() == 0) return;
  switch (w.info().type) {
    case AtomicType::kBoolean:
    case AtomicType::kInt64: {
      int64_t lo = w.min_int(), hi = w.max_int();
      std::memcpy(extent->min_prefix, &lo, 8);
      std::memcpy(extent->max_prefix, &hi, 8);
      break;
    }
    case AtomicType::kDouble: {
      double lo = w.min_double(), hi = w.max_double();
      std::memcpy(extent->min_prefix, &lo, 8);
      std::memcpy(extent->max_prefix, &hi, 8);
      break;
    }
    case AtomicType::kString: {
      const std::string& lo = w.min_string();
      const std::string& hi = w.max_string();
      std::memcpy(extent->min_prefix, lo.data(), std::min<size_t>(8, lo.size()));
      std::memcpy(extent->max_prefix, hi.data(), std::min<size_t>(8, hi.size()));
      break;
    }
  }
}

}  // namespace

Status EmitAmaxLeaf(ColumnWriterSet* writers, ComponentWriter* out,
                    const AmaxOptions& options) {
  if (writers->record_count() == 0) return Status::OK();
  const size_t ncols = writers->column_count();
  const size_t page_size = options.page_size;
  ColumnChunkWriter& pk = writers->writer(0);
  const int64_t min_key = pk.min_int();
  const int64_t max_key = pk.max_int();
  const uint32_t record_count = static_cast<uint32_t>(writers->record_count());

  // Build each column's on-disk megapage image (string min/max prefix +
  // optional compression) and record zone-filter prefixes.
  std::vector<AmaxColumnExtent> extents(ncols > 0 ? ncols - 1 : 0);
  std::vector<Buffer> megapages(ncols > 0 ? ncols - 1 : 0);
  for (size_t c = 1; c < ncols; ++c) {
    ColumnChunkWriter& w = writers->writer(static_cast<int>(c));
    AmaxColumnExtent& extent = extents[c - 1];
    FillPrefixes(w, &extent);
    Buffer& image = megapages[c - 1];
    if (w.info().type == AtomicType::kString) {
      // Full min/max: 8-byte prefixes are not decisive for strings (§4.3).
      image.AppendLengthPrefixed(Slice(w.min_string()));
      image.AppendLengthPrefixed(Slice(w.max_string()));
    }
    Buffer chunk;
    w.FinishInto(&chunk);
    if (options.compress) {
      LzCompress(chunk.slice(), &image);
    } else {
      image.Append(chunk.slice());
    }
  }

  // Page 0: header + column table + encoded PKs.
  Buffer pk_chunk;
  pk.FinishInto(&pk_chunk);
  Buffer page0;
  page0.AppendFixed32(record_count);
  page0.AppendFixed32(static_cast<uint32_t>(ncols));
  page0.AppendFixed64(static_cast<uint64_t>(min_key));
  page0.AppendFixed64(static_cast<uint64_t>(max_key));
  page0.AppendFixed32(static_cast<uint32_t>(pk_chunk.size()));
  const size_t table_offset = page0.size();
  for (size_t c = 1; c < ncols; ++c) {
    page0.AppendFixed64(0);  // offset, patched below
    page0.AppendFixed64(0);  // size, patched below
    page0.Append(extents[c - 1].min_prefix, 8);
    page0.Append(extents[c - 1].max_prefix, 8);
  }
  page0.Append(pk_chunk.slice());
  if (page0.size() > page_size) {
    return Status::ResourceExhausted(
        "AMAX Page 0 overflow (" + std::to_string(page0.size()) +
        " bytes): lower max_records or raise the page size");
  }

  // Lay megapages out after Page 0, largest first (§4.3).
  std::vector<size_t> order;
  for (size_t c = 1; c < ncols; ++c) order.push_back(c);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return megapages[a - 1].size() > megapages[b - 1].size();
  });
  uint64_t cursor = page_size;  // megapages start after Page 0
  const uint64_t tolerance_bytes =
      static_cast<uint64_t>(options.empty_page_tolerance *
                            static_cast<double>(page_size));
  for (size_t c : order) {
    const uint64_t size = megapages[c - 1].size();
    if (size == 0) {
      extents[c - 1].offset = cursor;
      extents[c - 1].size = 0;
      continue;
    }
    const uint64_t in_page = cursor % page_size;
    if (in_page != 0) {
      const uint64_t space_left = page_size - in_page;
      // Start page-aligned when the column does not fit in the leftover
      // space and the waste is within tolerance.
      if (size > space_left && space_left <= tolerance_bytes) {
        cursor += space_left;
      }
    }
    extents[c - 1].offset = cursor;
    extents[c - 1].size = size;
    cursor += size;
  }

  // Assemble the leaf payload: Page 0 (padded) + megapages at their
  // offsets.
  for (size_t c = 1; c < ncols; ++c) {
    page0.PatchFixed32(table_offset + (c - 1) * 32, 0);  // placeholder
  }
  Buffer payload;
  payload.Append(page0.slice());
  payload.AppendZeros(page_size - page0.size());
  for (size_t c : order) {
    const AmaxColumnExtent& extent = extents[c - 1];
    if (extent.size == 0) continue;
    LSMCOL_CHECK(extent.offset >= payload.size());
    payload.AppendZeros(extent.offset - payload.size());
    payload.Append(megapages[c - 1].slice());
  }
  // Patch the table with final offsets/sizes.
  for (size_t c = 1; c < ncols; ++c) {
    const size_t entry = table_offset + (c - 1) * 32;
    EncodeFixed64(payload.mutable_data() + entry, extents[c - 1].offset);
    EncodeFixed64(payload.mutable_data() + entry + 8, extents[c - 1].size);
  }

  Status st = out->AppendLeaf(payload.slice(), min_key, max_key, record_count);
  writers->ClearAll();
  return st;
}

size_t AmaxPage0RecordBudget(size_t page_size, size_t column_count) {
  const size_t budget = page_size - page_size / 8;
  const size_t fixed = 64 + column_count * 32;
  if (budget <= fixed) return 1;
  const size_t records = (budget - fixed) / 3;
  return records < 1 ? 1 : records;
}

Status AmaxPageZero::Init(Slice page0) {
  BufferReader r(page0);
  uint32_t pk_size = 0;
  LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&record_count_));
  LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&column_count_));
  uint64_t min_raw = 0, max_raw = 0;
  LSMCOL_RETURN_NOT_OK(r.ReadFixed64(&min_raw));
  LSMCOL_RETURN_NOT_OK(r.ReadFixed64(&max_raw));
  min_key_ = static_cast<int64_t>(min_raw);
  max_key_ = static_cast<int64_t>(max_raw);
  LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&pk_size));
  if (column_count_ == 0) return Status::Corruption("amax: zero columns");
  extents_.resize(column_count_ - 1);
  for (uint32_t c = 0; c + 1 < column_count_; ++c) {
    AmaxColumnExtent& extent = extents_[c];
    LSMCOL_RETURN_NOT_OK(r.ReadFixed64(&extent.offset));
    LSMCOL_RETURN_NOT_OK(r.ReadFixed64(&extent.size));
    Slice prefix;
    LSMCOL_RETURN_NOT_OK(r.ReadBytes(8, &prefix));
    std::memcpy(extent.min_prefix, prefix.data(), 8);
    LSMCOL_RETURN_NOT_OK(r.ReadBytes(8, &prefix));
    std::memcpy(extent.max_prefix, prefix.data(), 8);
  }
  Slice pk_bytes;
  LSMCOL_RETURN_NOT_OK(r.ReadBytes(pk_size, &pk_bytes));
  pk_chunk_.clear();
  pk_chunk_.Append(pk_bytes);
  return Status::OK();
}

const AmaxColumnExtent& AmaxPageZero::extent(int column_id) const {
  if (column_id <= 0 ||
      static_cast<uint32_t>(column_id) >= column_count_) {
    return empty_extent_;
  }
  return extents_[column_id - 1];
}

Status ParseAmaxMegapage(Slice raw, const ColumnInfo& info, bool compressed,
                         Buffer* chunk, std::string* min_value,
                         std::string* max_value) {
  BufferReader r(raw);
  if (info.type == AtomicType::kString) {
    Slice lo, hi;
    LSMCOL_RETURN_NOT_OK(r.ReadLengthPrefixed(&lo));
    LSMCOL_RETURN_NOT_OK(r.ReadLengthPrefixed(&hi));
    if (min_value != nullptr) *min_value = lo.ToString();
    if (max_value != nullptr) *max_value = hi.ToString();
  }
  chunk->clear();
  if (compressed) {
    return LzDecompress(r.rest(), chunk);
  }
  chunk->Append(r.rest());
  return Status::OK();
}

bool AmaxIntRangeOverlaps(const AmaxColumnExtent& extent, int64_t lo,
                          int64_t hi) {
  if (extent.size == 0) return false;
  int64_t col_min = 0, col_max = 0;
  std::memcpy(&col_min, extent.min_prefix, 8);
  std::memcpy(&col_max, extent.max_prefix, 8);
  return !(hi < col_min || lo > col_max);
}

bool AmaxDoubleRangeOverlaps(const AmaxColumnExtent& extent, double lo,
                             double hi) {
  if (extent.size == 0) return false;
  double col_min = 0, col_max = 0;
  std::memcpy(&col_min, extent.min_prefix, 8);
  std::memcpy(&col_max, extent.max_prefix, 8);
  return !(hi < col_min || lo > col_max);
}

bool AmaxStringRangeOverlaps(const AmaxColumnExtent& extent,
                             const std::string* lo, const std::string* hi) {
  if (extent.size == 0) return false;
  uint8_t trunc[8];
  if (hi != nullptr) {
    std::memset(trunc, 0, 8);
    std::memcpy(trunc, hi->data(), std::min<size_t>(8, hi->size()));
    if (std::memcmp(trunc, extent.min_prefix, 8) < 0) return false;
  }
  if (lo != nullptr) {
    std::memset(trunc, 0, 8);
    std::memcpy(trunc, lo->data(), std::min<size_t>(8, lo->size()));
    if (std::memcmp(trunc, extent.max_prefix, 8) > 0) return false;
  }
  return true;
}

}  // namespace lsmcol
