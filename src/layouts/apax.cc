#include "src/layouts/apax.h"

#include "src/encoding/lz.h"

namespace lsmcol {
namespace {

void AppendChunkStats(const ColumnChunkWriter& w, Buffer* out) {
  if (w.value_count() == 0) {
    out->AppendByte(0);
    return;
  }
  out->AppendByte(1);
  out->AppendByte(static_cast<uint8_t>(w.info().type));
  switch (w.info().type) {
    case AtomicType::kBoolean:
    case AtomicType::kInt64:
      out->AppendSignedVarint64(w.min_int());
      out->AppendSignedVarint64(w.max_int());
      break;
    case AtomicType::kDouble:
      out->AppendDouble(w.min_double());
      out->AppendDouble(w.max_double());
      break;
    case AtomicType::kString:
      out->AppendLengthPrefixed(Slice(w.min_string()));
      out->AppendLengthPrefixed(Slice(w.max_string()));
      break;
  }
}

Status ParseChunkStats(BufferReader* r, ApaxChunkStats* stats) {
  uint8_t has_stats = 0;
  LSMCOL_RETURN_NOT_OK(r->ReadByte(&has_stats));
  stats->has_stats = has_stats != 0;
  if (!stats->has_stats) return Status::OK();
  uint8_t type = 0;
  LSMCOL_RETURN_NOT_OK(r->ReadByte(&type));
  if (type > 3) return Status::Corruption("apax stats: bad type byte");
  stats->type = static_cast<AtomicType>(type);
  switch (stats->type) {
    case AtomicType::kBoolean:
    case AtomicType::kInt64:
      LSMCOL_RETURN_NOT_OK(r->ReadSignedVarint64(&stats->min_int));
      LSMCOL_RETURN_NOT_OK(r->ReadSignedVarint64(&stats->max_int));
      break;
    case AtomicType::kDouble:
      LSMCOL_RETURN_NOT_OK(r->ReadDouble(&stats->min_double));
      LSMCOL_RETURN_NOT_OK(r->ReadDouble(&stats->max_double));
      break;
    case AtomicType::kString: {
      Slice lo, hi;
      LSMCOL_RETURN_NOT_OK(r->ReadLengthPrefixed(&lo));
      LSMCOL_RETURN_NOT_OK(r->ReadLengthPrefixed(&hi));
      stats->min_string = lo.ToString();
      stats->max_string = hi.ToString();
      break;
    }
  }
  return Status::OK();
}

}  // namespace

Status EmitApaxLeaf(ColumnWriterSet* writers, ComponentWriter* out,
                    bool compress) {
  if (writers->record_count() == 0) return Status::OK();
  const size_t ncols = writers->column_count();
  LSMCOL_CHECK(ncols >= 1);
  ColumnChunkWriter& pk = writers->writer(0);
  const int64_t min_key = pk.min_int();
  const int64_t max_key = pk.max_int();
  const uint32_t record_count = static_cast<uint32_t>(writers->record_count());

  // Zone stats must be captured before FinishInto clears the writers.
  Buffer stats_blob;
  for (size_t c = 0; c < ncols; ++c) {
    AppendChunkStats(writers->writer(static_cast<int>(c)), &stats_blob);
  }

  // Encode every column chunk into temporary buffers first (§4.5.1), then
  // align them as minipages in the page image.
  std::vector<Buffer> chunks(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    writers->writer(static_cast<int>(c)).FinishInto(&chunks[c]);
  }

  Buffer payload;
  payload.AppendVarint64(record_count);
  payload.AppendVarint64(ncols);
  payload.AppendSignedVarint64(min_key);
  payload.AppendSignedVarint64(max_key);
  for (const Buffer& chunk : chunks) payload.AppendVarint64(chunk.size());
  payload.Append(stats_blob.slice());
  for (const Buffer& chunk : chunks) payload.Append(chunk.slice());

  Status st;
  if (compress) {
    Buffer compressed;
    LzCompress(payload.slice(), &compressed);
    st = out->AppendLeaf(compressed.slice(), min_key, max_key, record_count);
  } else {
    st = out->AppendLeaf(payload.slice(), min_key, max_key, record_count);
  }
  writers->ClearAll();
  return st;
}

Status ApaxLeaf::Init(Slice payload, bool compressed) {
  storage_.clear();
  if (compressed) {
    LSMCOL_RETURN_NOT_OK(LzDecompress(payload, &storage_));
  } else {
    storage_.Append(payload);
  }
  BufferReader r(storage_.slice());
  uint64_t record_count = 0, column_count = 0;
  LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&record_count));
  LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&column_count));
  LSMCOL_RETURN_NOT_OK(r.ReadSignedVarint64(&min_key_));
  LSMCOL_RETURN_NOT_OK(r.ReadSignedVarint64(&max_key_));
  record_count_ = static_cast<uint32_t>(record_count);
  column_count_ = static_cast<uint32_t>(column_count);
  std::vector<uint64_t> sizes(column_count_);
  for (uint32_t c = 0; c < column_count_; ++c) {
    LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&sizes[c]));
  }
  stats_.assign(column_count_, ApaxChunkStats());
  for (uint32_t c = 0; c < column_count_; ++c) {
    LSMCOL_RETURN_NOT_OK(ParseChunkStats(&r, &stats_[c]));
  }
  chunks_.resize(column_count_);
  for (uint32_t c = 0; c < column_count_; ++c) {
    LSMCOL_RETURN_NOT_OK(r.ReadBytes(sizes[c], &chunks_[c]));
  }
  return Status::OK();
}

}  // namespace lsmcol
