#include "src/layouts/apax.h"

#include "src/encoding/lz.h"

namespace lsmcol {

Status EmitApaxLeaf(ColumnWriterSet* writers, ComponentWriter* out,
                    bool compress) {
  if (writers->record_count() == 0) return Status::OK();
  const size_t ncols = writers->column_count();
  LSMCOL_CHECK(ncols >= 1);
  ColumnChunkWriter& pk = writers->writer(0);
  const int64_t min_key = pk.min_int();
  const int64_t max_key = pk.max_int();
  const uint32_t record_count = static_cast<uint32_t>(writers->record_count());

  // Encode every column chunk into temporary buffers first (§4.5.1), then
  // align them as minipages in the page image.
  std::vector<Buffer> chunks(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    writers->writer(static_cast<int>(c)).FinishInto(&chunks[c]);
  }

  Buffer payload;
  payload.AppendVarint64(record_count);
  payload.AppendVarint64(ncols);
  payload.AppendSignedVarint64(min_key);
  payload.AppendSignedVarint64(max_key);
  for (const Buffer& chunk : chunks) payload.AppendVarint64(chunk.size());
  for (const Buffer& chunk : chunks) payload.Append(chunk.slice());

  Status st;
  if (compress) {
    Buffer compressed;
    LzCompress(payload.slice(), &compressed);
    st = out->AppendLeaf(compressed.slice(), min_key, max_key, record_count);
  } else {
    st = out->AppendLeaf(payload.slice(), min_key, max_key, record_count);
  }
  writers->ClearAll();
  return st;
}

Status ApaxLeaf::Init(Slice payload, bool compressed) {
  storage_.clear();
  if (compressed) {
    LSMCOL_RETURN_NOT_OK(LzDecompress(payload, &storage_));
  } else {
    storage_.Append(payload);
  }
  BufferReader r(storage_.slice());
  uint64_t record_count = 0, column_count = 0;
  LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&record_count));
  LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&column_count));
  LSMCOL_RETURN_NOT_OK(r.ReadSignedVarint64(&min_key_));
  LSMCOL_RETURN_NOT_OK(r.ReadSignedVarint64(&max_key_));
  record_count_ = static_cast<uint32_t>(record_count);
  column_count_ = static_cast<uint32_t>(column_count);
  std::vector<uint64_t> sizes(column_count_);
  for (uint32_t c = 0; c < column_count_; ++c) {
    LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&sizes[c]));
  }
  chunks_.resize(column_count_);
  for (uint32_t c = 0; c < column_count_; ++c) {
    LSMCOL_RETURN_NOT_OK(r.ReadBytes(sizes[c], &chunks_[c]));
  }
  return Status::OK();
}

}  // namespace lsmcol
