// The two row-major record formats the paper compares against (§6):
//
//  * Open — a stand-in for AsterixDB's schemaless ADM format: recursive,
//    self-describing, embeds every field name, and prefixes each object/
//    array with a 4-byte size plus a 4-byte relative offset per child so
//    readers can navigate to a field without scanning siblings. Encoding
//    builds each nested value in its own buffer and copies it into the
//    parent (leaf-to-root), reproducing the construction cost the paper
//    attributes to the Open format (§6.3.1).
//
//  * Vb — the Vector-Based format of [23]: non-recursive, single forward
//    pass, values written exactly once, per-record deduplicated name
//    table, varint-packed scalars. Field access is a linear walk (§6.4.1's
//    noted VB slowdown).

#ifndef LSMCOL_LAYOUTS_ROW_CODEC_H_
#define LSMCOL_LAYOUTS_ROW_CODEC_H_

#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/json/value.h"

namespace lsmcol {

/// Physical record layouts (Table/Figure axes of the evaluation).
enum class LayoutKind : uint8_t {
  kOpen = 0,
  kVb = 1,
  kApax = 2,
  kAmax = 3,
};

const char* LayoutKindName(LayoutKind k);

/// Codec for one row-major format.
class RowCodec {
 public:
  virtual ~RowCodec() = default;

  /// Encode a record (appends to out).
  virtual void Encode(const Value& record, Buffer* out) const = 0;

  /// Decode a full record.
  virtual Status Decode(Slice bytes, Value* out) const = 0;

  /// Extract the value at a dotted field path without materializing the
  /// whole record when the format allows (Open navigates offsets; Vb walks
  /// linearly). Missing when the path is absent.
  virtual Status ExtractPath(Slice bytes,
                             const std::vector<std::string>& path,
                             Value* out) const = 0;
};

/// The recursive, offset-navigable schemaless format.
class OpenCodec : public RowCodec {
 public:
  void Encode(const Value& record, Buffer* out) const override;
  Status Decode(Slice bytes, Value* out) const override;
  Status ExtractPath(Slice bytes, const std::vector<std::string>& path,
                     Value* out) const override;
};

/// The vector-based compact format.
class VbCodec : public RowCodec {
 public:
  void Encode(const Value& record, Buffer* out) const override;
  Status Decode(Slice bytes, Value* out) const override;
  Status ExtractPath(Slice bytes, const std::vector<std::string>& path,
                     Value* out) const override;
};

/// Codec instance for a row layout kind (kOpen or kVb).
const RowCodec& GetRowCodec(LayoutKind kind);

}  // namespace lsmcol

#endif  // LSMCOL_LAYOUTS_ROW_CODEC_H_
