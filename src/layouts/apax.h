// APAX leaf pages (§4.2): every column of a record batch stored as an
// encoded minipage inside one leaf. The page header carries the tuple
// count, column count and the min/max primary keys so B+-tree operations
// never decode the key minipage (Figure 8). Reading an APAX leaf reads the
// whole page regardless of projection — its defining I/O property.
//
// Raw payload:
//   varint record_count | varint column_count |
//   signed-varint min_key | signed-varint max_key |
//   per column: varint chunk_size |
//   per column: stats blob (byte has_stats; if 1: byte type + typed
//     min/max — zone-filter stats over the chunk's present values) |
//   column chunks (minipages) back to back
// The payload is LZ-compressed as a unit when compression is on.

#ifndef LSMCOL_LAYOUTS_APAX_H_
#define LSMCOL_LAYOUTS_APAX_H_

#include <vector>

#include "src/columnar/column_reader.h"
#include "src/columnar/column_writer.h"
#include "src/common/buffer.h"
#include "src/storage/component_file.h"

namespace lsmcol {

/// Encode the accumulated chunks of `writers` as one APAX leaf and append
/// it to `out`. The writers are cleared. No-op when no records pending.
Status EmitApaxLeaf(ColumnWriterSet* writers, ComponentWriter* out,
                    bool compress);

/// Per-column min/max over the present values of one APAX leaf — the
/// zone-filter stats (§4.3's idea applied to APAX, where the whole leaf
/// is read anyway: the win is skipping chunk decode, not I/O).
/// has_stats is false when the chunk holds no present values.
struct ApaxChunkStats {
  bool has_stats = false;
  AtomicType type = AtomicType::kInt64;
  int64_t min_int = 0, max_int = 0;       ///< kBoolean (0/1) and kInt64
  double min_double = 0, max_double = 0;  ///< kDouble
  std::string min_string, max_string;     ///< kString (full values)
};

/// Parsed APAX leaf: owns the decompressed payload and exposes per-column
/// chunk slices.
class ApaxLeaf {
 public:
  Status Init(Slice payload, bool compressed);

  uint32_t record_count() const { return record_count_; }
  uint32_t column_count() const { return column_count_; }
  int64_t min_key() const { return min_key_; }
  int64_t max_key() const { return max_key_; }

  /// Chunk bytes for a column; empty Slice when the column was not yet
  /// discovered when this leaf was written (treat as all def-0).
  Slice chunk(int column_id) const {
    if (column_id < 0 || static_cast<uint32_t>(column_id) >= column_count_) {
      return Slice();
    }
    return chunks_[column_id];
  }

  /// Zone stats for a column; columns this leaf predates (id beyond its
  /// column_count) report has_stats == false. Leaves always carry the
  /// stats table — components from before it existed are rejected by the
  /// footer-magic bump (see component_file.cc).
  const ApaxChunkStats& stats(int column_id) const {
    if (column_id < 0 || static_cast<size_t>(column_id) >= stats_.size()) {
      return empty_stats_;
    }
    return stats_[column_id];
  }

 private:
  Buffer storage_;
  uint32_t record_count_ = 0;
  uint32_t column_count_ = 0;
  int64_t min_key_ = 0;
  int64_t max_key_ = 0;
  std::vector<Slice> chunks_;
  std::vector<ApaxChunkStats> stats_;
  ApaxChunkStats empty_stats_;
};

}  // namespace lsmcol

#endif  // LSMCOL_LAYOUTS_APAX_H_
