// AMAX mega leaf nodes (§4.3): each column's chunk becomes a "megapage"
// that can span multiple physical pages, so a query reads only the pages
// of the columns it needs.
//
// Mega leaf payload (offsets are payload-relative; Page 0 is the first
// physical page):
//   Page 0:
//     fixed32 record_count | fixed32 column_count |
//     fixed64 min_key | fixed64 max_key | fixed32 pk_chunk_size |
//     column table for columns 1..n-1:
//       fixed64 offset | fixed64 size | 8-byte min prefix | 8-byte max prefix
//     pk column chunk (encoded primary keys + anti-matter def levels)
//   (zero padding to the page boundary)
//   Megapages: columns ordered by size, largest first (§4.3). A column
//   shares the previous column's last physical page unless the leftover
//   space is within the empty-page tolerance, in which case it starts on a
//   fresh page boundary.
//
// String megapages are prefixed with their full (not truncated) min and
// max values, since 8-byte prefixes are not decisive for range filters.

#ifndef LSMCOL_LAYOUTS_AMAX_H_
#define LSMCOL_LAYOUTS_AMAX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/columnar/column_reader.h"
#include "src/columnar/column_writer.h"
#include "src/common/buffer.h"
#include "src/storage/component_file.h"

namespace lsmcol {

struct AmaxOptions {
  size_t page_size = kDefaultPageSize;
  bool compress = true;
  /// Max records per mega leaf ("Page 0 key limit", §4.5.2).
  size_t max_records = 15000;
  /// Fraction of a physical page allowed to stay empty so the next column
  /// can start page-aligned (§4.3).
  double empty_page_tolerance = 0.125;
};

/// Per-column extent within a mega leaf.
struct AmaxColumnExtent {
  uint64_t offset = 0;  ///< payload-relative byte offset
  uint64_t size = 0;    ///< bytes (0 = column has no chunk in this leaf)
  uint8_t min_prefix[8] = {0};
  uint8_t max_prefix[8] = {0};
};

/// Encode the accumulated chunks of `writers` as one mega leaf appended to
/// `out`. The writers are cleared.
Status EmitAmaxLeaf(ColumnWriterSet* writers, ComponentWriter* out,
                    const AmaxOptions& options);

/// Largest record count whose Page 0 (fixed header, 32-byte column-table
/// entries, ~3 bytes/record encoded-PK estimate) stays within one physical
/// page with 1/8 headroom. Shared by flush budgeting and merge output-leaf
/// sizing so both paths cut mega leaves identically.
size_t AmaxPage0RecordBudget(size_t page_size, size_t column_count);

/// Parsed Page 0 of a mega leaf.
class AmaxPageZero {
 public:
  /// `page0` must hold at least the first physical page of the leaf.
  Status Init(Slice page0);

  uint32_t record_count() const { return record_count_; }
  uint32_t column_count() const { return column_count_; }
  int64_t min_key() const { return min_key_; }
  int64_t max_key() const { return max_key_; }
  /// PK chunk bytes (owned copy; valid for the object's lifetime).
  Slice pk_chunk() const { return pk_chunk_.slice(); }
  /// Extent of column id >= 1; columns not yet discovered when the leaf
  /// was written report size 0.
  const AmaxColumnExtent& extent(int column_id) const;

 private:
  uint32_t record_count_ = 0;
  uint32_t column_count_ = 0;
  int64_t min_key_ = 0;
  int64_t max_key_ = 0;
  std::vector<AmaxColumnExtent> extents_;  // index 0 = column 1
  Buffer pk_chunk_;
  AmaxColumnExtent empty_extent_;
};

/// Decode a column megapage read from [extent.offset, extent.size): strips
/// the string min/max prefix when present and decompresses. Outputs the
/// raw chunk (feed to ColumnChunkReader::Init) and, for strings, the full
/// min/max values.
Status ParseAmaxMegapage(Slice raw, const ColumnInfo& info, bool compressed,
                         Buffer* chunk, std::string* min_value,
                         std::string* max_value);

/// Zone-filter helpers: conservative "might this megapage contain values
/// in [lo, hi]" tests (§4.3/§4.4) over the Page-0 prefixes. A false
/// positive only costs a wasted read; a false negative would be a bug.
bool AmaxIntRangeOverlaps(const AmaxColumnExtent& extent, int64_t lo,
                          int64_t hi);
bool AmaxDoubleRangeOverlaps(const AmaxColumnExtent& extent, double lo,
                             double hi);

/// String variant over the truncated 8-byte prefixes. Zero-padded 8-byte
/// truncation is monotone under memcmp (s <= t implies trunc8(s) <=
/// trunc8(t)), so trunc8(hi) < min_prefix proves hi < column_min and
/// trunc8(lo) > max_prefix proves lo > column_max — both safe to skip on.
/// Null bounds are unbounded.
bool AmaxStringRangeOverlaps(const AmaxColumnExtent& extent,
                             const std::string* lo, const std::string* hi);

}  // namespace lsmcol

#endif  // LSMCOL_LAYOUTS_AMAX_H_
