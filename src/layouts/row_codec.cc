#include "src/layouts/row_codec.h"

namespace lsmcol {

const char* LayoutKindName(LayoutKind k) {
  switch (k) {
    case LayoutKind::kOpen:
      return "Open";
    case LayoutKind::kVb:
      return "VB";
    case LayoutKind::kApax:
      return "APAX";
    case LayoutKind::kAmax:
      return "AMAX";
  }
  return "?";
}

namespace {

// Shared tag space.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagFalse = 1;
constexpr uint8_t kTagTrue = 2;
constexpr uint8_t kTagInt = 3;
constexpr uint8_t kTagDouble = 4;
constexpr uint8_t kTagString = 5;
constexpr uint8_t kTagObject = 6;
constexpr uint8_t kTagArray = 7;

// ---------------------------------------------------------------- Open ---

// Recursive encoding: each child is built in its own buffer, then copied
// into the parent — the leaf-to-root copying of AsterixDB's format.
void OpenEncodeValue(const Value& v, Buffer* out) {
  switch (v.type()) {
    case ValueType::kMissing:
    case ValueType::kNull:
      out->AppendByte(kTagNull);
      return;
    case ValueType::kBool:
      out->AppendByte(v.bool_value() ? kTagTrue : kTagFalse);
      return;
    case ValueType::kInt64:
      out->AppendByte(kTagInt);
      out->AppendFixed64(static_cast<uint64_t>(v.int_value()));
      return;
    case ValueType::kDouble:
      out->AppendByte(kTagDouble);
      out->AppendDouble(v.double_value());
      return;
    case ValueType::kString:
      out->AppendByte(kTagString);
      out->AppendFixed32(static_cast<uint32_t>(v.string_value().size()));
      out->Append(Slice(v.string_value()));
      return;
    case ValueType::kObject: {
      // Children first (separate buffers), then assemble with offsets.
      std::vector<Buffer> children;
      children.reserve(v.object().size());
      size_t header_size = 1 + 4 + 4;  // tag + total size + count
      for (const auto& [name, child] : v.object()) {
        children.emplace_back();
        OpenEncodeValue(child, &children.back());
        header_size += 4 + name.size() + 4;  // name len + name + offset
      }
      size_t total = header_size;
      for (const Buffer& c : children) total += c.size();
      out->AppendByte(kTagObject);
      out->AppendFixed32(static_cast<uint32_t>(total));
      out->AppendFixed32(static_cast<uint32_t>(v.object().size()));
      size_t child_offset = header_size;  // relative to the tag byte
      size_t i = 0;
      for (const auto& [name, child] : v.object()) {
        (void)child;
        out->AppendFixed32(static_cast<uint32_t>(name.size()));
        out->Append(Slice(name));
        out->AppendFixed32(static_cast<uint32_t>(child_offset));
        child_offset += children[i++].size();
      }
      for (const Buffer& c : children) out->Append(c.slice());  // the copy
      return;
    }
    case ValueType::kArray: {
      std::vector<Buffer> children;
      children.reserve(v.array().size());
      for (const Value& e : v.array()) {
        children.emplace_back();
        OpenEncodeValue(e, &children.back());
      }
      size_t header_size = 1 + 4 + 4 + 4 * children.size();
      size_t total = header_size;
      for (const Buffer& c : children) total += c.size();
      out->AppendByte(kTagArray);
      out->AppendFixed32(static_cast<uint32_t>(total));
      out->AppendFixed32(static_cast<uint32_t>(children.size()));
      size_t child_offset = header_size;
      for (const Buffer& c : children) {
        out->AppendFixed32(static_cast<uint32_t>(child_offset));
        child_offset += c.size();
      }
      for (const Buffer& c : children) out->Append(c.slice());
      return;
    }
  }
}

Status OpenDecodeValue(Slice bytes, Value* out) {
  if (bytes.empty()) return Status::Corruption("open: empty value");
  const uint8_t tag = static_cast<uint8_t>(bytes[0]);
  BufferReader r(bytes.SubSlice(1, bytes.size() - 1));
  switch (tag) {
    case kTagNull:
      *out = Value::Null();
      return Status::OK();
    case kTagFalse:
      *out = Value::Bool(false);
      return Status::OK();
    case kTagTrue:
      *out = Value::Bool(true);
      return Status::OK();
    case kTagInt: {
      uint64_t v = 0;
      LSMCOL_RETURN_NOT_OK(r.ReadFixed64(&v));
      *out = Value::Int(static_cast<int64_t>(v));
      return Status::OK();
    }
    case kTagDouble: {
      double d = 0;
      LSMCOL_RETURN_NOT_OK(r.ReadDouble(&d));
      *out = Value::Double(d);
      return Status::OK();
    }
    case kTagString: {
      uint32_t len = 0;
      LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&len));
      Slice s;
      LSMCOL_RETURN_NOT_OK(r.ReadBytes(len, &s));
      *out = Value::String(s.ToString());
      return Status::OK();
    }
    case kTagObject: {
      uint32_t total = 0, count = 0;
      LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&total));
      LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&count));
      if (total > bytes.size()) return Status::Corruption("open: bad size");
      *out = Value::MakeObject();
      for (uint32_t i = 0; i < count; ++i) {
        uint32_t name_len = 0, offset = 0;
        LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&name_len));
        Slice name;
        LSMCOL_RETURN_NOT_OK(r.ReadBytes(name_len, &name));
        LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&offset));
        if (offset >= total) return Status::Corruption("open: bad offset");
        Value child;
        LSMCOL_RETURN_NOT_OK(OpenDecodeValue(
            bytes.SubSlice(offset, total - offset), &child));
        out->Set(name.ToString(), std::move(child));
      }
      return Status::OK();
    }
    case kTagArray: {
      uint32_t total = 0, count = 0;
      LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&total));
      LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&count));
      if (total > bytes.size()) return Status::Corruption("open: bad size");
      *out = Value::MakeArray();
      for (uint32_t i = 0; i < count; ++i) {
        uint32_t offset = 0;
        LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&offset));
        if (offset >= total) return Status::Corruption("open: bad offset");
        Value child;
        LSMCOL_RETURN_NOT_OK(OpenDecodeValue(
            bytes.SubSlice(offset, total - offset), &child));
        out->Push(std::move(child));
      }
      return Status::OK();
    }
    default:
      return Status::Corruption("open: unknown tag");
  }
}

// Navigate offsets: O(fields of each object on the path) instead of a full
// decode.
Status OpenExtract(Slice bytes, const std::vector<std::string>& path,
                   size_t step, Value* out) {
  if (step == path.size()) return OpenDecodeValue(bytes, out);
  if (bytes.empty()) return Status::Corruption("open: empty value");
  const uint8_t tag = static_cast<uint8_t>(bytes[0]);
  if (tag == kTagArray) {
    // SQL++ semantics: the remaining path maps over the elements. Offset
    // navigation stops here; decode and walk.
    Value decoded;
    LSMCOL_RETURN_NOT_OK(OpenDecodeValue(bytes, &decoded));
    *out = WalkValuePath(decoded, path, step);
    return Status::OK();
  }
  if (tag != kTagObject) {
    *out = Value::Missing();
    return Status::OK();
  }
  BufferReader r(bytes.SubSlice(1, bytes.size() - 1));
  uint32_t total = 0, count = 0;
  LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&total));
  LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&count));
  if (total > bytes.size()) return Status::Corruption("open: bad size");
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0, offset = 0;
    LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&name_len));
    Slice name;
    LSMCOL_RETURN_NOT_OK(r.ReadBytes(name_len, &name));
    LSMCOL_RETURN_NOT_OK(r.ReadFixed32(&offset));
    if (name.view() == path[step]) {
      if (offset >= total) return Status::Corruption("open: bad offset");
      return OpenExtract(bytes.SubSlice(offset, total - offset), path,
                         step + 1, out);
    }
  }
  *out = Value::Missing();
  return Status::OK();
}

// ------------------------------------------------------------------ VB ---

void VbCollectNames(const Value& v, std::vector<std::string>* names) {
  if (v.is_object()) {
    for (const auto& [name, child] : v.object()) {
      bool found = false;
      for (const auto& n : *names) {
        if (n == name) {
          found = true;
          break;
        }
      }
      if (!found) names->push_back(name);
      VbCollectNames(child, names);
    }
  } else if (v.is_array()) {
    for (const Value& e : v.array()) VbCollectNames(e, names);
  }
}

uint64_t VbNameId(const std::vector<std::string>& names,
                  const std::string& name) {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  LSMCOL_CHECK(false);
  return 0;
}

// Single forward pass; every value written exactly once.
void VbEncodeValue(const Value& v, const std::vector<std::string>& names,
                   Buffer* out) {
  switch (v.type()) {
    case ValueType::kMissing:
    case ValueType::kNull:
      out->AppendByte(kTagNull);
      return;
    case ValueType::kBool:
      out->AppendByte(v.bool_value() ? kTagTrue : kTagFalse);
      return;
    case ValueType::kInt64:
      out->AppendByte(kTagInt);
      out->AppendSignedVarint64(v.int_value());
      return;
    case ValueType::kDouble:
      out->AppendByte(kTagDouble);
      out->AppendDouble(v.double_value());
      return;
    case ValueType::kString:
      out->AppendByte(kTagString);
      out->AppendLengthPrefixed(Slice(v.string_value()));
      return;
    case ValueType::kObject:
      out->AppendByte(kTagObject);
      out->AppendVarint64(v.object().size());
      for (const auto& [name, child] : v.object()) {
        out->AppendVarint64(VbNameId(names, name));
        VbEncodeValue(child, names, out);
      }
      return;
    case ValueType::kArray:
      out->AppendByte(kTagArray);
      out->AppendVarint64(v.array().size());
      for (const Value& e : v.array()) VbEncodeValue(e, names, out);
      return;
  }
}

Status VbDecodeValue(BufferReader* r, const std::vector<Slice>& names,
                     Value* out) {
  uint8_t tag = 0;
  LSMCOL_RETURN_NOT_OK(r->ReadByte(&tag));
  switch (tag) {
    case kTagNull:
      *out = Value::Null();
      return Status::OK();
    case kTagFalse:
      *out = Value::Bool(false);
      return Status::OK();
    case kTagTrue:
      *out = Value::Bool(true);
      return Status::OK();
    case kTagInt: {
      int64_t v = 0;
      LSMCOL_RETURN_NOT_OK(r->ReadSignedVarint64(&v));
      *out = Value::Int(v);
      return Status::OK();
    }
    case kTagDouble: {
      double d = 0;
      LSMCOL_RETURN_NOT_OK(r->ReadDouble(&d));
      *out = Value::Double(d);
      return Status::OK();
    }
    case kTagString: {
      Slice s;
      LSMCOL_RETURN_NOT_OK(r->ReadLengthPrefixed(&s));
      *out = Value::String(s.ToString());
      return Status::OK();
    }
    case kTagObject: {
      uint64_t count = 0;
      LSMCOL_RETURN_NOT_OK(r->ReadVarint64(&count));
      *out = Value::MakeObject();
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t name_id = 0;
        LSMCOL_RETURN_NOT_OK(r->ReadVarint64(&name_id));
        if (name_id >= names.size()) {
          return Status::Corruption("vb: bad name id");
        }
        Value child;
        LSMCOL_RETURN_NOT_OK(VbDecodeValue(r, names, &child));
        out->Set(names[name_id].ToString(), std::move(child));
      }
      return Status::OK();
    }
    case kTagArray: {
      uint64_t count = 0;
      LSMCOL_RETURN_NOT_OK(r->ReadVarint64(&count));
      *out = Value::MakeArray();
      for (uint64_t i = 0; i < count; ++i) {
        Value child;
        LSMCOL_RETURN_NOT_OK(VbDecodeValue(r, names, &child));
        out->Push(std::move(child));
      }
      return Status::OK();
    }
    default:
      return Status::Corruption("vb: unknown tag");
  }
}

// Skip one value without materializing it (linear walk).
Status VbSkipValue(BufferReader* r) {
  uint8_t tag = 0;
  LSMCOL_RETURN_NOT_OK(r->ReadByte(&tag));
  switch (tag) {
    case kTagNull:
    case kTagFalse:
    case kTagTrue:
      return Status::OK();
    case kTagInt: {
      int64_t v;
      return r->ReadSignedVarint64(&v);
    }
    case kTagDouble:
      return r->Skip(8);
    case kTagString: {
      Slice s;
      return r->ReadLengthPrefixed(&s);
    }
    case kTagObject: {
      uint64_t count = 0;
      LSMCOL_RETURN_NOT_OK(r->ReadVarint64(&count));
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t name_id = 0;
        LSMCOL_RETURN_NOT_OK(r->ReadVarint64(&name_id));
        LSMCOL_RETURN_NOT_OK(VbSkipValue(r));
      }
      return Status::OK();
    }
    case kTagArray: {
      uint64_t count = 0;
      LSMCOL_RETURN_NOT_OK(r->ReadVarint64(&count));
      for (uint64_t i = 0; i < count; ++i) {
        LSMCOL_RETURN_NOT_OK(VbSkipValue(r));
      }
      return Status::OK();
    }
    default:
      return Status::Corruption("vb: unknown tag");
  }
}

Status VbExtract(BufferReader* r, const std::vector<Slice>& names,
                 const std::vector<std::string>& path, size_t step,
                 Value* out) {
  if (step == path.size()) return VbDecodeValue(r, names, out);
  uint8_t tag = 0;
  LSMCOL_RETURN_NOT_OK(r->ReadByte(&tag));
  if (tag == kTagArray) {
    // SQL++ semantics: map the remaining path over the elements.
    uint64_t count = 0;
    LSMCOL_RETURN_NOT_OK(r->ReadVarint64(&count));
    Value mapped = Value::MakeArray();
    for (uint64_t i = 0; i < count; ++i) {
      Value element;
      LSMCOL_RETURN_NOT_OK(VbDecodeValue(r, names, &element));
      Value sub = WalkValuePath(element, path, step);
      if (!sub.is_missing()) mapped.Push(std::move(sub));
    }
    *out = std::move(mapped);
    return Status::OK();
  }
  if (tag != kTagObject) {
    *out = Value::Missing();
    return Status::OK();
  }
  uint64_t count = 0;
  LSMCOL_RETURN_NOT_OK(r->ReadVarint64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_id = 0;
    LSMCOL_RETURN_NOT_OK(r->ReadVarint64(&name_id));
    if (name_id >= names.size()) return Status::Corruption("vb: bad name id");
    if (names[name_id].view() == path[step]) {
      return VbExtract(r, names, path, step + 1, out);
    }
    LSMCOL_RETURN_NOT_OK(VbSkipValue(r));  // linear: skip siblings
  }
  *out = Value::Missing();
  return Status::OK();
}

Status VbReadNames(BufferReader* r, std::vector<Slice>* names) {
  uint64_t count = 0;
  LSMCOL_RETURN_NOT_OK(r->ReadVarint64(&count));
  names->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    LSMCOL_RETURN_NOT_OK(r->ReadLengthPrefixed(&(*names)[i]));
  }
  return Status::OK();
}

}  // namespace

void OpenCodec::Encode(const Value& record, Buffer* out) const {
  OpenEncodeValue(record, out);
}

Status OpenCodec::Decode(Slice bytes, Value* out) const {
  return OpenDecodeValue(bytes, out);
}

Status OpenCodec::ExtractPath(Slice bytes,
                              const std::vector<std::string>& path,
                              Value* out) const {
  return OpenExtract(bytes, path, 0, out);
}

void VbCodec::Encode(const Value& record, Buffer* out) const {
  std::vector<std::string> names;
  VbCollectNames(record, &names);
  out->AppendVarint64(names.size());
  for (const auto& name : names) out->AppendLengthPrefixed(Slice(name));
  VbEncodeValue(record, names, out);
}

Status VbCodec::Decode(Slice bytes, Value* out) const {
  BufferReader r(bytes);
  std::vector<Slice> names;
  LSMCOL_RETURN_NOT_OK(VbReadNames(&r, &names));
  return VbDecodeValue(&r, names, out);
}

Status VbCodec::ExtractPath(Slice bytes, const std::vector<std::string>& path,
                            Value* out) const {
  BufferReader r(bytes);
  std::vector<Slice> names;
  LSMCOL_RETURN_NOT_OK(VbReadNames(&r, &names));
  return VbExtract(&r, names, path, 0, out);
}

const RowCodec& GetRowCodec(LayoutKind kind) {
  static const OpenCodec* open = new OpenCodec();
  static const VbCodec* vb = new VbCodec();
  LSMCOL_CHECK(kind == LayoutKind::kOpen || kind == LayoutKind::kVb);
  return kind == LayoutKind::kOpen ? static_cast<const RowCodec&>(*open)
                                   : static_cast<const RowCodec&>(*vb);
}

}  // namespace lsmcol
