// Slotted leaf pages for the row-major layouts (Open and VB). A leaf holds
// sorted (key, anti-matter flag, row bytes) entries; the payload is LZ-
// compressed before it is appended to the component (page-level
// compression, §6). Reading a row leaf always reads the whole page —
// exactly the property the columnar layouts are designed to avoid.

#ifndef LSMCOL_LAYOUTS_ROW_LEAF_H_
#define LSMCOL_LAYOUTS_ROW_LEAF_H_

#include <cstdint>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/storage/component_file.h"

namespace lsmcol {

/// Builds row leaves and appends them to a component.
class RowLeafBuilder {
 public:
  RowLeafBuilder(ComponentWriter* out, size_t page_size, bool compress)
      : out_(out), page_size_(page_size), compress_(compress) {}

  /// Add one entry (keys must arrive in ascending order). Emits a leaf
  /// when the raw payload reaches the page size.
  Status Add(int64_t key, bool anti_matter, Slice row);

  /// Emit any pending leaf.
  Status Finish();

 private:
  Status EmitLeaf();

  ComponentWriter* out_;
  size_t page_size_;
  bool compress_;
  Buffer rows_;
  uint32_t count_ = 0;
  int64_t min_key_ = 0;
  int64_t max_key_ = 0;
};

/// Iterates the entries of one row leaf payload.
class RowLeafReader {
 public:
  /// `payload` is the leaf payload as stored (compressed or not).
  Status Init(Slice payload, bool compressed);

  uint32_t record_count() const { return count_; }
  bool AtEnd() const { return position_ >= count_; }

  /// Advance to the next entry; the row slice points into the reader's
  /// internal buffer and is valid until the next Init.
  Status Next(int64_t* key, bool* anti_matter, Slice* row);

 private:
  Buffer decompressed_;
  BufferReader reader_{Slice()};
  uint32_t count_ = 0;
  uint32_t position_ = 0;
};

}  // namespace lsmcol

#endif  // LSMCOL_LAYOUTS_ROW_LEAF_H_
