#include "src/layouts/row_leaf.h"

#include "src/encoding/lz.h"

namespace lsmcol {

Status RowLeafBuilder::Add(int64_t key, bool anti_matter, Slice row) {
  if (count_ == 0) {
    min_key_ = key;
    rows_.AppendZeros(0);
  } else {
    LSMCOL_DCHECK(key > max_key_);
  }
  max_key_ = key;
  rows_.AppendSignedVarint64(key);
  rows_.AppendByte(anti_matter ? 1 : 0);
  rows_.AppendLengthPrefixed(row);
  ++count_;
  if (rows_.size() >= page_size_) return EmitLeaf();
  return Status::OK();
}

Status RowLeafBuilder::EmitLeaf() {
  if (count_ == 0) return Status::OK();
  Buffer payload;
  payload.AppendVarint64(count_);
  payload.Append(rows_.slice());
  Status st;
  if (compress_) {
    Buffer compressed;
    LzCompress(payload.slice(), &compressed);
    st = out_->AppendLeaf(compressed.slice(), min_key_, max_key_, count_);
  } else {
    st = out_->AppendLeaf(payload.slice(), min_key_, max_key_, count_);
  }
  rows_.clear();
  count_ = 0;
  return st;
}

Status RowLeafBuilder::Finish() { return EmitLeaf(); }

Status RowLeafReader::Init(Slice payload, bool compressed) {
  decompressed_.clear();
  if (compressed) {
    LSMCOL_RETURN_NOT_OK(LzDecompress(payload, &decompressed_));
  } else {
    decompressed_.Append(payload);
  }
  reader_ = BufferReader(decompressed_.slice());
  uint64_t count = 0;
  LSMCOL_RETURN_NOT_OK(reader_.ReadVarint64(&count));
  count_ = static_cast<uint32_t>(count);
  position_ = 0;
  return Status::OK();
}

Status RowLeafReader::Next(int64_t* key, bool* anti_matter, Slice* row) {
  if (AtEnd()) return Status::OutOfRange("row leaf exhausted");
  LSMCOL_RETURN_NOT_OK(reader_.ReadSignedVarint64(key));
  uint8_t flag = 0;
  LSMCOL_RETURN_NOT_OK(reader_.ReadByte(&flag));
  *anti_matter = flag != 0;
  LSMCOL_RETURN_NOT_OK(reader_.ReadLengthPrefixed(row));
  ++position_;
  return Status::OK();
}

}  // namespace lsmcol
