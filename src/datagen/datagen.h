// Deterministic synthetic workload generators matching the structural
// profiles of the paper's five datasets (Table 1):
//
//   cell     real, 1NF, 7 columns, ~140 B records, mixed types
//   sensors  synthetic, 16 columns, numeric-dominant, nested readings
//   tweet_1  text-heavy, ~930 (mostly sparse) columns, ~5 KB records
//   wos      long text (abstracts), union-typed addresses (object OR array
//            of objects), ~300 columns
//   tweet_2  moderate columns, monotone timestamp field, used for the
//            update-intensive secondary-index experiments
//
// Contents are synthetic (the originals are proprietary; see DESIGN.md §1)
// but reproduce the properties the evaluation depends on: column counts,
// nesting shape, value-type mix, record sizes, sparsity, heterogeneity.

#ifndef LSMCOL_DATAGEN_DATAGEN_H_
#define LSMCOL_DATAGEN_DATAGEN_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/json/value.h"

namespace lsmcol {

enum class Workload : uint8_t {
  kCell = 0,
  kSensors,
  kTweet1,
  kWos,
  kTweet2,
};

const char* WorkloadName(Workload w);

/// Default record counts used by the benchmark harness (scaled from the
/// paper's ~200 GB datasets to laptop-sized runs; see EXPERIMENTS.md).
uint64_t DefaultBenchRecords(Workload w);

/// Generate record `id` of a workload. Deterministic given (workload, id,
/// rng state); the conventional use seeds one Rng per run and generates
/// ids sequentially.
Value MakeRecord(Workload w, int64_t id, Rng* rng);

/// tweet_2 with an explicit (monotone) timestamp, for the update and
/// secondary-index experiments (§6.3.2, §6.4.5).
Value MakeTweet2Record(int64_t id, int64_t timestamp, Rng* rng);

/// A few words of pseudo-natural text (vocabulary-based, so page
/// compression and string encodings behave like real text).
std::string SyntheticText(Rng* rng, int min_words, int max_words);

}  // namespace lsmcol

#endif  // LSMCOL_DATAGEN_DATAGEN_H_
