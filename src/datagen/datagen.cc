#include "src/datagen/datagen.h"

namespace lsmcol {
namespace {

const char* const kVocabulary[] = {
    "data",    "stream",   "sensor",  "signal",  "player",  "game",
    "match",   "analysis", "model",   "system",  "network", "storage",
    "column",  "record",   "index",   "query",   "paper",   "result",
    "method",  "approach", "science", "study",   "large",   "small",
    "fast",    "slow",     "new",     "old",     "first",   "second",
    "running", "jumping",  "coding",  "testing", "monday",  "tuesday",
    "city",    "tower",    "call",    "battery", "weather", "morning",
};
constexpr size_t kVocabularySize = sizeof(kVocabulary) / sizeof(char*);

const char* const kCountries[] = {"USA",    "Germany", "China",  "Japan",
                                  "Brazil", "India",   "France", "Canada",
                                  "Italy",  "Korea"};
constexpr size_t kCountryCount = sizeof(kCountries) / sizeof(char*);

const char* const kSubjects[] = {
    "Computer Science", "Physics",   "Biology",   "Chemistry", "Medicine",
    "Mathematics",      "Economics", "Sociology", "Materials", "Energy"};
constexpr size_t kSubjectCount = sizeof(kSubjects) / sizeof(char*);

const char* const kHashtags[] = {"jobs",   "news",   "sports", "music",
                                 "movies", "travel", "food",   "tech",
                                 "art",    "gaming"};
constexpr size_t kHashtagCount = sizeof(kHashtags) / sizeof(char*);

std::string PhoneNumber(Rng* rng) {
  std::string s = "+1";
  for (int i = 0; i < 10; ++i) {
    s.push_back(static_cast<char>('0' + rng->Uniform(10)));
  }
  return s;
}

Value MakeCell(int64_t id, Rng* rng) {
  // 1NF, 7 columns, mixed types, ~140 B.
  Value v = Value::MakeObject();
  v.Set("id", Value::Int(id));
  v.Set("caller", Value::String(PhoneNumber(rng)));
  v.Set("callee", Value::String(PhoneNumber(rng)));
  v.Set("duration", Value::Int(static_cast<int64_t>(rng->Skewed(3600))));
  v.Set("tower", Value::String("tower_" + std::to_string(rng->Uniform(500))));
  v.Set("start_time", Value::Int(1600000000 + id * 3 +
                                 static_cast<int64_t>(rng->Uniform(120))));
  v.Set("signal", Value::Double(-50.0 - rng->NextDouble() * 60.0));
  return v;
}

Value MakeSensors(int64_t id, Rng* rng) {
  // Numeric-dominant, 16 columns, nested readings array (~3.8 KB).
  Value v = Value::MakeObject();
  v.Set("id", Value::Int(id));
  v.Set("sensor_id", Value::Int(id % 2000));
  v.Set("report_time", Value::Int(1556400000000 + id * 60000));
  Value status = Value::MakeObject();
  status.Set("battery", Value::Int(static_cast<int64_t>(rng->Uniform(101))));
  status.Set("charging", Value::Bool(rng->Bernoulli(0.2)));
  status.Set("voltage", Value::Double(3.0 + rng->NextDouble()));
  v.Set("status", std::move(status));
  Value connectivity = Value::MakeObject();
  connectivity.Set("rssi", Value::Int(-30 - static_cast<int64_t>(rng->Uniform(60))));
  connectivity.Set("protocol_version",
                   Value::Int(static_cast<int64_t>(1 + rng->Uniform(3))));
  connectivity.Set("dropped_packets",
                   Value::Int(static_cast<int64_t>(rng->Skewed(1000))));
  connectivity.Set("latency_ms", Value::Double(rng->NextDouble() * 40));
  v.Set("connectivity", std::move(connectivity));
  Value readings = Value::MakeArray();
  const uint64_t n = 90 + rng->Uniform(40);  // ~100 readings/day
  int64_t t = 1556400000000 + id * 60000;
  double temp = 15.0 + rng->NextDouble() * 10;
  for (uint64_t i = 0; i < n; ++i) {
    Value r = Value::MakeObject();
    t += 500 + static_cast<int64_t>(rng->Uniform(200));
    temp += rng->NextDouble() - 0.5;
    r.Set("ts", Value::Int(t));
    r.Set("temp", Value::Double(temp));
    r.Set("hum", Value::Int(static_cast<int64_t>(30 + rng->Uniform(60))));
    readings.Push(std::move(r));
  }
  v.Set("readings", std::move(readings));
  v.Set("fw_version", Value::String("v" + std::to_string(rng->Uniform(4)) +
                                    "." + std::to_string(rng->Uniform(10))));
  return v;
}

void AddTweetCore(Value* v, int64_t id, Rng* rng, int text_words,
                  int64_t timestamp) {
  v->Set("id", Value::Int(id));
  v->Set("timestamp", Value::Int(timestamp));
  v->Set("text", Value::String(SyntheticText(rng, text_words / 2,
                                             text_words)));
  v->Set("lang", Value::String(rng->Bernoulli(0.7) ? "en" : "es"));
  v->Set("retweet_count", Value::Int(static_cast<int64_t>(rng->Skewed(10000))));
  v->Set("favorite_count", Value::Int(static_cast<int64_t>(rng->Skewed(10000))));
  Value user = Value::MakeObject();
  user.Set("user_id", Value::Int(static_cast<int64_t>(rng->Uniform(100000))));
  user.Set("name", Value::String("user_" + std::to_string(rng->Uniform(100000))));
  user.Set("screen_name", Value::String(rng->Word(5, 12)));
  user.Set("verified", Value::Bool(rng->Bernoulli(0.05)));
  user.Set("followers", Value::Int(static_cast<int64_t>(rng->Skewed(1000000))));
  user.Set("description", Value::String(SyntheticText(rng, 4, 16)));
  user.Set("location", Value::String(std::string(
      kCountries[rng->Uniform(kCountryCount)])));
  v->Set("user", std::move(user));
  Value entities = Value::MakeObject();
  Value hashtags = Value::MakeArray();
  for (uint64_t h = 0; h < rng->Uniform(4); ++h) {
    Value ht = Value::MakeObject();
    ht.Set("text", Value::String(std::string(
        kHashtags[rng->Uniform(kHashtagCount)])));
    ht.Set("indices", [&] {
      Value idx = Value::MakeArray();
      int64_t a = static_cast<int64_t>(rng->Uniform(100));
      idx.Push(Value::Int(a));
      idx.Push(Value::Int(a + 8));
      return idx;
    }());
    hashtags.Push(std::move(ht));
  }
  entities.Set("hashtags", std::move(hashtags));
  v->Set("entities", std::move(entities));
}

Value MakeTweet1(int64_t id, Rng* rng) {
  // Text-heavy with an excessive number of sparse columns (~930 inferred).
  Value v = Value::MakeObject();
  AddTweetCore(&v, id, rng, 60, 1609459200000 + id * 700);
  // Sparse long tail: each record carries ~45 of 880 possible fields, so
  // the inferred schema accumulates hundreds of columns while minipages
  // stay thin (§6.2's APAX pathology).
  Value extended = Value::MakeObject();
  for (int i = 0; i < 45; ++i) {
    const uint64_t field = rng->Uniform(880);
    const std::string name = "ext_" + std::to_string(field);
    switch (field % 5) {
      case 0:
        extended.Set(name, Value::Int(static_cast<int64_t>(rng->Uniform(1u << 20))));
        break;
      case 1:
        extended.Set(name, Value::Bool(rng->Bernoulli(0.5)));
        break;
      default:
        extended.Set(name, Value::String(SyntheticText(rng, 4, 14)));
        break;
    }
  }
  v.Set("extended", std::move(extended));
  return v;
}

Value MakeWos(int64_t id, Rng* rng) {
  // Long textual values (multi-paragraph abstracts) and union-typed
  // addresses: an object for single-author papers, an array of objects
  // otherwise (the XML→JSON conversion artifact, §6.1).
  Value v = Value::MakeObject();
  v.Set("id", Value::Int(id));
  Value static_data = Value::MakeObject();
  Value metadata = Value::MakeObject();
  metadata.Set("title", Value::String(SyntheticText(rng, 6, 14)));
  metadata.Set("abstract", Value::String(SyntheticText(rng, 350, 750)));
  metadata.Set("year", Value::Int(1980 + static_cast<int64_t>(rng->Uniform(35))));
  Value category_info = Value::MakeObject();
  Value subjects = Value::MakeArray();
  for (uint64_t s = 0; s < 1 + rng->Uniform(3); ++s) {
    Value subject = Value::MakeObject();
    subject.Set("ascatype",
                Value::String(rng->Bernoulli(0.5) ? "extended" : "traditional"));
    subject.Set("value", Value::String(std::string(
        kSubjects[rng->Uniform(kSubjectCount)])));
    subjects.Push(std::move(subject));
  }
  category_info.Set("subject", std::move(subjects));
  metadata.Set("category_info", std::move(category_info));
  // The union: address_name is an object or an array of objects.
  const uint64_t author_count = 1 + rng->Skewed(6);
  Value addresses = Value::MakeObject();
  auto make_address = [&] {
    Value a = Value::MakeObject();
    Value spec = Value::MakeObject();
    spec.Set("country",
             Value::String(std::string(kCountries[rng->Uniform(kCountryCount)])));
    spec.Set("city", Value::String(rng->Word(4, 10)));
    a.Set("address_spec", std::move(spec));
    return a;
  };
  if (author_count == 1) {
    addresses.Set("address_name", make_address());
  } else {
    Value list = Value::MakeArray();
    for (uint64_t a = 0; a < author_count; ++a) list.Push(make_address());
    addresses.Set("address_name", std::move(list));
  }
  metadata.Set("addresses", std::move(addresses));
  Value authors = Value::MakeArray();
  for (uint64_t a = 0; a < author_count; ++a) {
    Value author = Value::MakeObject();
    author.Set("last_name", Value::String(rng->Word(4, 10)));
    author.Set("initials", Value::String(rng->Word(1, 2)));
    authors.Push(std::move(author));
  }
  metadata.Set("authors", std::move(authors));
  static_data.Set("fullrecord_metadata", std::move(metadata));
  v.Set("static_data", std::move(static_data));
  v.Set("citations", Value::Int(static_cast<int64_t>(rng->Skewed(2000))));
  // A moderate sparse tail (~250 possible fields).
  Value misc = Value::MakeObject();
  for (int i = 0; i < 8; ++i) {
    misc.Set("field_" + std::to_string(rng->Uniform(250)),
             Value::String(SyntheticText(rng, 2, 6)));
  }
  v.Set("misc", std::move(misc));
  return v;
}

}  // namespace

std::string SyntheticText(Rng* rng, int min_words, int max_words) {
  const int n = static_cast<int>(rng->UniformRange(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out.push_back(' ');
    out += kVocabulary[rng->Uniform(kVocabularySize)];
  }
  return out;
}

Value MakeTweet2Record(int64_t id, int64_t timestamp, Rng* rng) {
  // Pre-280-character tweets: moderate column count (~275 inferred),
  // smaller records.
  Value v = Value::MakeObject();
  AddTweetCore(&v, id, rng, 20, timestamp);
  Value extended = Value::MakeObject();
  for (int i = 0; i < 10; ++i) {
    extended.Set("ext_" + std::to_string(rng->Uniform(250)),
                 Value::String(SyntheticText(rng, 1, 4)));
  }
  v.Set("extended", std::move(extended));
  return v;
}

const char* WorkloadName(Workload w) {
  switch (w) {
    case Workload::kCell:
      return "cell";
    case Workload::kSensors:
      return "sensors";
    case Workload::kTweet1:
      return "tweet_1";
    case Workload::kWos:
      return "wos";
    case Workload::kTweet2:
      return "tweet_2";
  }
  return "?";
}

uint64_t DefaultBenchRecords(Workload w) {
  switch (w) {
    case Workload::kCell:
      return 150000;  // many small records
    case Workload::kSensors:
      return 12000;  // big numeric records
    case Workload::kTweet1:
      return 18000;
    case Workload::kWos:
      return 12000;
    case Workload::kTweet2:
      return 30000;
  }
  return 10000;
}

Value MakeRecord(Workload w, int64_t id, Rng* rng) {
  switch (w) {
    case Workload::kCell:
      return MakeCell(id, rng);
    case Workload::kSensors:
      return MakeSensors(id, rng);
    case Workload::kTweet1:
      return MakeTweet1(id, rng);
    case Workload::kWos:
      return MakeWos(id, rng);
    case Workload::kTweet2:
      return MakeTweet2Record(id, 1460000000000 + id * 1000, rng);
  }
  return Value::MakeObject();
}

}  // namespace lsmcol
