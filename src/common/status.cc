#include "src/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace lsmcol {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kChecksumMismatch:
      return "ChecksumMismatch";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void ResultValueOrDieFailed(const std::string& status) {
  std::fprintf(stderr, "Result::ValueOrDie on error: %s\n", status.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace lsmcol
