// Check macros and lightweight logging. LSMCOL_DCHECK compiles out in
// release builds; LSMCOL_CHECK aborts with a message on violation. These
// guard internal invariants only — user-facing errors use Status.

#ifndef LSMCOL_COMMON_LOGGING_H_
#define LSMCOL_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace lsmcol::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace lsmcol::internal

#define LSMCOL_CHECK(cond)                                          \
  do {                                                              \
    if (!(cond)) ::lsmcol::internal::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (false)

#define LSMCOL_CHECK_OK(expr)                                       \
  do {                                                              \
    ::lsmcol::Status _st = (expr);                                  \
    if (!_st.ok())                                                  \
      ::lsmcol::internal::CheckFailed(__FILE__, __LINE__,           \
                                      _st.ToString().c_str());      \
  } while (false)

#ifdef NDEBUG
#define LSMCOL_DCHECK(cond) \
  do {                      \
  } while (false)
#else
#define LSMCOL_DCHECK(cond) LSMCOL_CHECK(cond)
#endif

#endif  // LSMCOL_COMMON_LOGGING_H_
