// Status and Result<T>: exception-free error handling in the style of
// Apache Arrow / RocksDB. Every fallible public API in lsmcol returns a
// Status (or Result<T> when it also produces a value).

#ifndef LSMCOL_COMMON_STATUS_H_
#define LSMCOL_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace lsmcol {

/// Error category for a failed operation.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruption,
  kIOError,
  kNotSupported,
  kOutOfRange,
  kAlreadyExists,
  kResourceExhausted,
  kInternal,
  /// A stored page's checksum did not match its contents: bit rot, a torn
  /// write, or a misdirected read. Distinct from kCorruption (a decoder
  /// rejecting bytes that verified clean) so callers can quarantine the
  /// damaged file precisely.
  kChecksumMismatch,
};

/// Human-readable name of a StatusCode (e.g. "Corruption").
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of a fallible operation.
///
/// A Status is cheap to copy in the OK case (a single word); error states
/// carry a heap-allocated message. Use the factory functions
/// (Status::Corruption(...) etc.) to construct errors.
class Status {
 public:
  Status() = default;  // OK

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ChecksumMismatch(std::string msg) {
    return Status(StatusCode::kChecksumMismatch, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsChecksumMismatch() const {
    return code_ == StatusCode::kChecksumMismatch;
  }
  /// Corruption-class errors (data damage, not environment): the
  /// component quarantine trigger, never retried.
  bool IsDataDamage() const {
    return IsCorruption() || IsChecksumMismatch();
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

namespace internal {
[[noreturn]] void ResultValueOrDieFailed(const std::string& status);
}  // namespace internal

/// \brief A value or an error Status.
///
/// Result<T> is the return type of fallible operations that produce a value.
/// Callers must check ok() (or use ASSIGN_OR_RETURN) before dereferencing.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Move the value out, aborting if this holds an error.
  T ValueOrDie() && {
    if (!ok()) {
      internal::ResultValueOrDieFailed(status_.ToString());
    }
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate errors to the caller. `expr` must evaluate to a Status.
#define LSMCOL_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::lsmcol::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (false)

#define LSMCOL_CONCAT_IMPL(x, y) x##y
#define LSMCOL_CONCAT(x, y) LSMCOL_CONCAT_IMPL(x, y)

// ASSIGN_OR_RETURN(lhs, rexpr): evaluates `rexpr` (a Result<T>), propagating
// errors, otherwise moves the value into `lhs` (which may be a declaration).
#define LSMCOL_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  auto LSMCOL_CONCAT(_res_, __LINE__) = (rexpr);                         \
  if (!LSMCOL_CONCAT(_res_, __LINE__).ok())                              \
    return LSMCOL_CONCAT(_res_, __LINE__).status();                      \
  lhs = std::move(LSMCOL_CONCAT(_res_, __LINE__)).value()

}  // namespace lsmcol

#endif  // LSMCOL_COMMON_STATUS_H_
