// Annotated locking primitives: lsmcol::Mutex, MutexLock, and CondVar
// wrap std::mutex / std::condition_variable with the clang
// thread-safety attributes (src/common/thread_annotations.h), so the
// locking discipline of every subsystem is machine-checked:
//
//  * statically — building with clang and -DLSMCOL_THREAD_SAFETY=ON
//    turns `-Wthread-safety -Wthread-safety-beta` into errors: every
//    LSMCOL_GUARDED_BY field access, LSMCOL_REQUIRES call, and declared
//    LSMCOL_ACQUIRED_BEFORE edge is proven at compile time;
//
//  * dynamically — every Mutex carries a MutexRank, and in debug /
//    sanitizer builds (LSMCOL_LOCK_ORDER_CHECKS) each thread keeps a
//    stack of held mutexes: acquiring a mutex whose rank is not
//    strictly greater than every held one aborts immediately with both
//    ranks named, turning would-be deadlocks into deterministic test
//    failures even on code paths the static analysis cannot see.
//
// The rank order is the system-wide acquisition order (see
// docs/ARCHITECTURE.md "Threading and locking model"): a thread may
// only acquire mutexes in strictly increasing rank, and never two of
// the same rank at once.

#ifndef LSMCOL_COMMON_MUTEX_H_
#define LSMCOL_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

// Runtime lock-order (rank) checking. Off by default in optimized
// builds (zero overhead); on when NDEBUG is absent, or forced from the
// build system (-DLSMCOL_LOCK_ORDER_CHECKS=1 — the sanitizer presets
// and the ASan/UBSan and TSan CI jobs do this so dynamic coverage backs
// the static proof).
#if !defined(LSMCOL_LOCK_ORDER_CHECKS)
#if !defined(NDEBUG)
#define LSMCOL_LOCK_ORDER_CHECKS 1
#else
#define LSMCOL_LOCK_ORDER_CHECKS 0
#endif
#endif

namespace lsmcol {

/// The global lock-acquisition order, sparse so future subsystems slot
/// in. A thread holding a mutex of rank R may only acquire mutexes of
/// rank strictly greater than R. The ACQUIRED_BEFORE annotations on the
/// mutexes themselves declare the statically-checked subset of these
/// edges (clang checks order only between mutexes that can name each
/// other); the runtime checker enforces the full total order.
enum class MutexRank : int {
  kStore = 10,            ///< Store::mu_ (dataset map)
  kBackup = 12,           ///< Store::backup_mu_ (one backup at a time)
  kScrubber = 15,         ///< Scrubber::mu_ (scrub schedule and cursor)
  kDataset = 20,          ///< Dataset::mu_ (all mutable dataset state)
  kScheduler = 30,        ///< FlushMergeScheduler::mu_ (task queue)
  kWal = 40,              ///< WriteAheadLog::mu_ (pending batch, LSNs)
  kBufferCache = 50,      ///< BufferCache::mu_ (frame table)
  kComponentRowLeaf = 60, ///< Component::row_leaf_mu_ (decompress FIFO)
  kComponentFault = 70,   ///< Component::fault_mu_ (quarantine reason)
  kComponentFaultLog = 75, ///< ComponentFaultCounters::log_mu (damage log)
  kFaultFs = 900,         ///< FaultInjectionFs::mu_ (acquired during any I/O)
  kLeaf = 1000,           ///< never holds another mutex underneath
};

/// Diagnostic name of a rank ("Dataset", "Wal", ...).
const char* MutexRankName(MutexRank rank);

/// True when this build enforces lock ranks at runtime (tests skip the
/// abort expectations otherwise).
constexpr bool LockOrderChecksEnabled() {
  return LSMCOL_LOCK_ORDER_CHECKS != 0;
}

/// \brief Annotated mutex. Non-recursive; aborts on rank inversion in
/// checked builds.
class LSMCOL_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(MutexRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LSMCOL_ACQUIRE();
  void Unlock() LSMCOL_RELEASE();

  MutexRank rank() const { return rank_; }

 private:
  friend class CondVar;

  std::mutex native_;
  const MutexRank rank_;
};

/// \brief RAII lock, relockable: Unlock()/Lock() bracket a section that
/// must run without the mutex (component builds, fsyncs); the
/// destructor releases only if currently held. The analysis tracks the
/// scoped state, so an unbalanced temporary drop is a compile error.
class LSMCOL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) LSMCOL_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() LSMCOL_RELEASE() {
    if (held_) mu_->Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drop the mutex (e.g. around I/O).
  void Unlock() LSMCOL_RELEASE() {
    held_ = false;
    mu_->Unlock();
  }
  /// Re-acquire after Unlock().
  void Lock() LSMCOL_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* const mu_;
  bool held_ = true;
};

/// \brief Condition variable bound to lsmcol::Mutex. No predicate
/// overloads on purpose: explicit `while (!cond) cv.Wait(&mu);` loops
/// keep the guarded-field accesses inside the annotated function body
/// where the analysis can see them (a predicate lambda would be
/// analyzed as an unannotated function).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, wait, re-acquire. As with std::condition
  /// variable, spurious wakeups happen: always wait in a loop.
  void Wait(Mutex* mu) LSMCOL_REQUIRES(mu);

  /// Wait with a deadline; std::cv_status::timeout when it passed.
  std::cv_status WaitUntil(Mutex* mu,
                           std::chrono::steady_clock::time_point deadline)
      LSMCOL_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace lsmcol

#endif  // LSMCOL_COMMON_MUTEX_H_
