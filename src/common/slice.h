// Slice: a non-owning view over a byte range, plus little-endian read
// helpers. Mirrors rocksdb::Slice / std::string_view but with byte-codec
// conveniences used throughout the storage layer.

#ifndef LSMCOL_COMMON_SLICE_H_
#define LSMCOL_COMMON_SLICE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "src/common/logging.h"

namespace lsmcol {

/// Non-owning pointer+length view over bytes. The referenced storage must
/// outlive the Slice.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const uint8_t* data, size_t size)
      : data_(reinterpret_cast<const char*>(data)), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT
  Slice(const char* cstr) : data_(cstr), size_(std::strlen(cstr)) {}  // NOLINT

  const char* data() const { return data_; }
  const uint8_t* udata() const {
    return reinterpret_cast<const uint8_t*>(data_);
  }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    LSMCOL_DCHECK(i < size_);
    return data_[i];
  }

  /// Drop the first n bytes from the view.
  void RemovePrefix(size_t n) {
    LSMCOL_DCHECK(n <= size_);
    data_ += n;
    size_ -= n;
  }

  Slice SubSlice(size_t offset, size_t len) const {
    LSMCOL_DCHECK(offset + len <= size_);
    return Slice(data_ + offset, len);
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  int Compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return 1;
    }
    return r;
  }

  bool operator==(const Slice& other) const { return Compare(other) == 0; }
  bool operator!=(const Slice& other) const { return Compare(other) != 0; }

 private:
  const char* data_;
  size_t size_;
};

// --- Little-endian fixed-width codecs (unaligned-safe) ---

inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

/// ZigZag maps signed integers to unsigned so that small magnitudes get
/// small varints (used by the delta codecs).
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace lsmcol

#endif  // LSMCOL_COMMON_SLICE_H_
