// Clang thread-safety-analysis attribute macros (no-ops on other
// compilers). Annotating a mutex-bearing class turns its locking
// discipline from a comment into a compile-time proof: clang's
// `-Wthread-safety` rejects any access of a LSMCOL_GUARDED_BY field
// without the guarding capability held, any call of a LSMCOL_REQUIRES
// function without it, and (with `-Wthread-safety-beta`) any acquisition
// order that contradicts a declared LSMCOL_ACQUIRED_BEFORE edge.
//
// The annotated primitives live in src/common/mutex.h (lsmcol::Mutex,
// MutexLock, CondVar) — std::mutex and std::unique_lock are invisible to
// the analysis, so every subsystem uses the wrappers. The CMake option
// `LSMCOL_THREAD_SAFETY` (clang only) builds the whole tree with
// `-Werror=thread-safety -Werror=thread-safety-beta`; the CI job of the
// same name is the gate, and tools/check_thread_safety_negative.sh
// proves the analysis actually rejects seeded violations.
//
// Macro names and semantics follow the clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); the set is
// the same one abseil ships as absl/base/thread_annotations.h.

#ifndef LSMCOL_COMMON_THREAD_ANNOTATIONS_H_
#define LSMCOL_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define LSMCOL_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define LSMCOL_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability (names it in diagnostics).
#define LSMCOL_CAPABILITY(x) LSMCOL_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define LSMCOL_SCOPED_CAPABILITY LSMCOL_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be accessed while `x` is held.
#define LSMCOL_GUARDED_BY(x) LSMCOL_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed while `x` is held.
#define LSMCOL_PT_GUARDED_BY(x) LSMCOL_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares lock-order edges: this capability must be acquired before /
/// after the listed ones. Checked under `-Wthread-safety-beta`; the
/// runtime rank checker in mutex.h enforces the same (total) order
/// dynamically in debug/sanitizer builds.
#define LSMCOL_ACQUIRED_BEFORE(...) \
  LSMCOL_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define LSMCOL_ACQUIRED_AFTER(...) \
  LSMCOL_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function requires the listed capabilities held on entry (and exit).
#define LSMCOL_REQUIRES(...) \
  LSMCOL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define LSMCOL_REQUIRES_SHARED(...) \
  LSMCOL_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the listed capabilities. On a method of
/// a LSMCOL_CAPABILITY or LSMCOL_SCOPED_CAPABILITY class an empty list
/// means "this object('s managed capability)".
#define LSMCOL_ACQUIRE(...) \
  LSMCOL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define LSMCOL_RELEASE(...) \
  LSMCOL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define LSMCOL_TRY_ACQUIRE(...) \
  LSMCOL_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (deadlock guard for self-locking entry points).
#define LSMCOL_EXCLUDES(...) \
  LSMCOL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define LSMCOL_RETURN_CAPABILITY(x) \
  LSMCOL_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function's locking is intentionally invisible to
/// the analysis. Every use carries a comment saying why.
#define LSMCOL_NO_THREAD_SAFETY_ANALYSIS \
  LSMCOL_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // LSMCOL_COMMON_THREAD_ANNOTATIONS_H_
