// Deterministic pseudo-random generator used by the workload generators and
// property tests. Wraps a SplitMix64/xoshiro-style generator so dataset
// contents are reproducible across platforms and standard-library versions
// (std::mt19937's distributions are not portable).

#ifndef LSMCOL_COMMON_RNG_H_
#define LSMCOL_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace lsmcol {

/// Deterministic 64-bit RNG (xorshift128+ seeded via SplitMix64).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding avoids the all-zero state.
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
    auto mix = [](uint64_t& s) {
      s += 0x9e3779b97f4a7c15ULL;
      uint64_t x = s;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    };
    s0_ = mix(z);
    s1_ = mix(z);
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-ish skewed pick in [0, n): favors small indices.
  uint64_t Skewed(uint64_t n) {
    // Pick a random number of leading zero bits; cheap approximation of a
    // heavy-tailed distribution (as used by LevelDB's test harness).
    uint64_t bits = Uniform(30);
    return Uniform((1ULL << bits) % n + 1) % n;
  }

  /// Random lowercase ASCII word of length in [min_len, max_len].
  std::string Word(int min_len, int max_len) {
    int len = static_cast<int>(UniformRange(min_len, max_len));
    std::string out;
    out.reserve(len);
    for (int i = 0; i < len; ++i) {
      out.push_back(static_cast<char>('a' + Uniform(26)));
    }
    return out;
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace lsmcol

#endif  // LSMCOL_COMMON_RNG_H_
