// Buffer: growable byte buffer with append-side codecs, and BufferReader:
// a cursor over a Slice with checked decode helpers. These are the two
// workhorses of every on-disk format in lsmcol.

#ifndef LSMCOL_COMMON_BUFFER_H_
#define LSMCOL_COMMON_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"

namespace lsmcol {

/// Growable, contiguous byte buffer. Appends never fail (they grow the
/// backing store); absolute writes require the offset to be in range.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(size_t reserve) { data_.reserve(reserve); }

  const char* data() const { return data_.data(); }
  char* mutable_data() { return data_.data(); }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  void clear() { data_.clear(); }
  void reserve(size_t n) { data_.reserve(n); }
  void resize(size_t n) { data_.resize(n); }

  Slice slice() const { return Slice(data_.data(), data_.size()); }

  void Append(const void* src, size_t n) {
    const char* p = static_cast<const char*>(src);
    data_.insert(data_.end(), p, p + n);
  }
  void Append(Slice s) { Append(s.data(), s.size()); }
  void AppendByte(uint8_t b) { data_.push_back(static_cast<char>(b)); }
  void AppendZeros(size_t n) { data_.insert(data_.end(), n, '\0'); }

  void AppendFixed32(uint32_t v) {
    char tmp[4];
    EncodeFixed32(tmp, v);
    Append(tmp, 4);
  }
  void AppendFixed64(uint64_t v) {
    char tmp[8];
    EncodeFixed64(tmp, v);
    Append(tmp, 8);
  }
  void AppendDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    AppendFixed64(bits);
  }

  /// LEB128 unsigned varint (1-10 bytes).
  void AppendVarint64(uint64_t v) {
    while (v >= 0x80) {
      AppendByte(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    AppendByte(static_cast<uint8_t>(v));
  }
  void AppendVarint32(uint32_t v) { AppendVarint64(v); }
  void AppendSignedVarint64(int64_t v) { AppendVarint64(ZigZagEncode(v)); }

  /// Varint length prefix followed by the bytes.
  void AppendLengthPrefixed(Slice s) {
    AppendVarint64(s.size());
    Append(s);
  }

  /// Overwrite 4 bytes at an absolute offset (used to backpatch sizes).
  void PatchFixed32(size_t offset, uint32_t v) {
    LSMCOL_DCHECK(offset + 4 <= data_.size());
    EncodeFixed32(data_.data() + offset, v);
  }

 private:
  std::vector<char> data_;
};

/// Checked sequential reader over a Slice. All Read* methods return
/// Corruption when the input is exhausted or malformed.
class BufferReader {
 public:
  explicit BufferReader(Slice input) : input_(input) {}

  size_t remaining() const { return input_.size(); }
  bool empty() const { return input_.empty(); }
  Slice rest() const { return input_; }

  Status ReadFixed32(uint32_t* out) {
    if (input_.size() < 4) return Truncated("fixed32");
    *out = DecodeFixed32(input_.data());
    input_.RemovePrefix(4);
    return Status::OK();
  }
  Status ReadFixed64(uint64_t* out) {
    if (input_.size() < 8) return Truncated("fixed64");
    *out = DecodeFixed64(input_.data());
    input_.RemovePrefix(8);
    return Status::OK();
  }
  Status ReadDouble(double* out) {
    uint64_t bits = 0;
    LSMCOL_RETURN_NOT_OK(ReadFixed64(&bits));
    std::memcpy(out, &bits, 8);
    return Status::OK();
  }
  Status ReadByte(uint8_t* out) {
    if (input_.empty()) return Truncated("byte");
    *out = static_cast<uint8_t>(input_[0]);
    input_.RemovePrefix(1);
    return Status::OK();
  }
  Status ReadVarint64(uint64_t* out) {
    uint64_t result = 0;
    for (int shift = 0; shift <= 63; shift += 7) {
      if (input_.empty()) return Truncated("varint64");
      uint8_t byte = static_cast<uint8_t>(input_[0]);
      input_.RemovePrefix(1);
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *out = result;
        return Status::OK();
      }
    }
    return Status::Corruption("varint64 too long");
  }
  Status ReadVarint32(uint32_t* out) {
    uint64_t v;
    LSMCOL_RETURN_NOT_OK(ReadVarint64(&v));
    if (v > UINT32_MAX) return Status::Corruption("varint32 overflow");
    *out = static_cast<uint32_t>(v);
    return Status::OK();
  }
  Status ReadSignedVarint64(int64_t* out) {
    uint64_t v = 0;
    LSMCOL_RETURN_NOT_OK(ReadVarint64(&v));
    *out = ZigZagDecode(v);
    return Status::OK();
  }
  Status ReadBytes(size_t n, Slice* out) {
    if (input_.size() < n) return Truncated("bytes");
    *out = Slice(input_.data(), n);
    input_.RemovePrefix(n);
    return Status::OK();
  }
  Status ReadLengthPrefixed(Slice* out) {
    uint64_t len = 0;
    LSMCOL_RETURN_NOT_OK(ReadVarint64(&len));
    return ReadBytes(len, out);
  }
  Status Skip(size_t n) {
    if (input_.size() < n) return Truncated("skip");
    input_.RemovePrefix(n);
    return Status::OK();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::Corruption(std::string("truncated input reading ") + what);
  }

  Slice input_;
};

}  // namespace lsmcol

#endif  // LSMCOL_COMMON_BUFFER_H_
