#include "src/common/mutex.h"

#if LSMCOL_LOCK_ORDER_CHECKS
#include <cstdio>
#include <cstdlib>
#include <vector>
#endif

namespace lsmcol {

const char* MutexRankName(MutexRank rank) {
  switch (rank) {
    case MutexRank::kStore:
      return "Store";
    case MutexRank::kBackup:
      return "Backup";
    case MutexRank::kScrubber:
      return "Scrubber";
    case MutexRank::kDataset:
      return "Dataset";
    case MutexRank::kScheduler:
      return "Scheduler";
    case MutexRank::kWal:
      return "Wal";
    case MutexRank::kBufferCache:
      return "BufferCache";
    case MutexRank::kComponentRowLeaf:
      return "ComponentRowLeaf";
    case MutexRank::kComponentFault:
      return "ComponentFault";
    case MutexRank::kComponentFaultLog:
      return "ComponentFaultLog";
    case MutexRank::kFaultFs:
      return "FaultFs";
    case MutexRank::kLeaf:
      return "Leaf";
  }
  return "?";
}

#if LSMCOL_LOCK_ORDER_CHECKS

namespace {

// The per-thread stack of held mutexes, in acquisition order. Unlocks
// are LIFO throughout the codebase (every mid-section drop releases the
// most recently acquired mutex), so a stack — not a multiset — is the
// right shape, and lets CondVar pop/re-push the waited mutex cheaply.
std::vector<const Mutex*>& HeldStack() {
  thread_local std::vector<const Mutex*> held;
  return held;
}

[[noreturn]] void LockOrderAbort(const Mutex* holding, const Mutex* acquiring) {
  std::fprintf(
      stderr,
      "lsmcol lock-order violation: acquiring %s(%d) while holding %s(%d); "
      "ranks must strictly increase (see src/common/mutex.h)\n",
      MutexRankName(acquiring->rank()), static_cast<int>(acquiring->rank()),
      MutexRankName(holding->rank()), static_cast<int>(holding->rank()));
  std::abort();
}

void CheckAcquire(const Mutex* mu) {
  for (const Mutex* held : HeldStack()) {
    if (held == mu) {
      std::fprintf(stderr,
                   "lsmcol lock-order violation: recursive acquisition of "
                   "%s(%d)\n",
                   MutexRankName(mu->rank()), static_cast<int>(mu->rank()));
      std::abort();
    }
    if (held->rank() >= mu->rank()) LockOrderAbort(held, mu);
  }
}

void PushHeld(const Mutex* mu) { HeldStack().push_back(mu); }

void PopHeld(const Mutex* mu) {
  auto& held = HeldStack();
  if (held.empty() || held.back() != mu) {
    std::fprintf(stderr,
                 "lsmcol lock-order violation: releasing %s(%d) which is not "
                 "this thread's most recently acquired mutex\n",
                 MutexRankName(mu->rank()), static_cast<int>(mu->rank()));
    std::abort();
  }
  held.pop_back();
}

}  // namespace

void Mutex::Lock() {
  CheckAcquire(this);  // abort *before* blocking on a would-be deadlock
  native_.lock();
  PushHeld(this);
}

void Mutex::Unlock() {
  PopHeld(this);
  native_.unlock();
}

void CondVar::Wait(Mutex* mu) {
  // The wait releases and re-acquires mu atomically w.r.t. the condvar;
  // mirror that in the rank bookkeeping so other acquisitions made by
  // this thread while blocked-then-woken still see a consistent stack.
  PopHeld(mu);
  std::unique_lock<std::mutex> lk(mu->native_, std::adopt_lock);
  cv_.wait(lk);
  lk.release();
  CheckAcquire(mu);
  PushHeld(mu);
}

std::cv_status CondVar::WaitUntil(
    Mutex* mu, std::chrono::steady_clock::time_point deadline) {
  PopHeld(mu);
  std::unique_lock<std::mutex> lk(mu->native_, std::adopt_lock);
  std::cv_status status = cv_.wait_until(lk, deadline);
  lk.release();
  CheckAcquire(mu);
  PushHeld(mu);
  return status;
}

#else  // !LSMCOL_LOCK_ORDER_CHECKS

void Mutex::Lock() { native_.lock(); }

void Mutex::Unlock() { native_.unlock(); }

void CondVar::Wait(Mutex* mu) {
  std::unique_lock<std::mutex> lk(mu->native_, std::adopt_lock);
  cv_.wait(lk);
  lk.release();
}

std::cv_status CondVar::WaitUntil(
    Mutex* mu, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lk(mu->native_, std::adopt_lock);
  std::cv_status status = cv_.wait_until(lk, deadline);
  lk.release();
  return status;
}

#endif  // LSMCOL_LOCK_ORDER_CHECKS

}  // namespace lsmcol
