// Pluggable merge selection ("compaction policy") for the primary LSM
// index. The policy answers two questions the dataset used to hardcode:
//
//   1. Given the current stack of disk components, which contiguous
//      range (if any) should the next merge rewrite?  (PickMerge)
//   2. How many disk components may pile up before writers stall to let
//      merges catch up?  (stall_component_limit)
//
// Policies are pure functions over a snapshot of component descriptors
// (CompactionComponentView): no I/O, no clock, no internal state. That
// makes plan selection deterministic and directly unit-testable with
// injected descriptors (tests/compaction_test.cc), and means a policy
// object is trivially thread-safe — the dataset calls it under its own
// mutex but nothing here depends on that.
//
// Three policies span the tiering<->leveling design space mapped by the
// LSM survey and "How to Grow an LSM-tree" (arXiv:2504.17178); see the
// CompactionStrategy enum in options.h for the one-paragraph contrast
// and docs/ARCHITECTURE.md for the invariants each one maintains.

#ifndef LSMCOL_LSM_COMPACTION_POLICY_H_
#define LSMCOL_LSM_COMPACTION_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/lsm/options.h"

namespace lsmcol {

/// What a policy may know about one disk component. Views are listed
/// newest-first, matching Dataset's component stack: index 0 is the most
/// recent flush/merge output, the last index is the oldest data.
struct CompactionComponentView {
  /// Monotonic id from the manifest; newer components have larger ids.
  /// Informational (policies key off position, which encodes recency).
  uint64_t component_id = 0;
  /// On-disk file size — the currency of amplification accounting.
  uint64_t size_bytes = 0;
  /// Records in the component (anti-matter entries included).
  uint64_t entry_count = 0;
  /// Primary-key range [min_key, max_key], valid when has_key_range.
  /// Empty components (pure-delete flushes can produce them) have none.
  int64_t min_key = 0;
  int64_t max_key = 0;
  bool has_key_range = false;
  /// Damaged component fenced off by the checksum/corruption path (PR 8).
  /// No policy may select a quarantined component: merging one would
  /// read damaged pages.
  bool quarantined = false;
};

/// A policy's answer: merge `count` adjacent components starting at
/// position `begin` (newest-first indexing, so begin == 0 means the
/// newest `count` components). count < 2 means "no merge now" —
/// rewriting a single component is never useful.
struct CompactionPlan {
  size_t begin = 0;
  size_t count = 0;

  bool none() const { return count < 2; }
  /// One past the last selected index.
  size_t end() const { return begin + count; }
};

class CompactionPolicy {
 public:
  virtual ~CompactionPolicy() = default;

  /// Stable printable name ("tiered" | "leveled" | "lazy-leveling").
  virtual const char* name() const = 0;

  /// Select the next merge from a newest-first component snapshot.
  /// Must be deterministic in `components` alone, must never select a
  /// quarantined component, and must return a range within bounds
  /// (plan.end() <= components.size()).
  virtual CompactionPlan PickMerge(
      const std::vector<CompactionComponentView>& components) const = 0;

  /// Writer back-pressure bound: once this many disk components exist,
  /// writers block in WaitForWriteRoomLocked until merges shrink the
  /// stack (previously hardcoded as 2 * max_components). Policies with
  /// more components in steady state (tiered) need a larger bound than
  /// ones that merge eagerly (leveled); each policy documents its
  /// derivation. Must exceed the policy's steady-state component count
  /// or writers would stall permanently.
  virtual size_t stall_component_limit() const = 0;
};

/// Policy factory keyed on options.compaction.strategy. The returned
/// policy captures the knobs it needs by value (options may die after
/// the call). Never returns nullptr for validated options.
std::unique_ptr<CompactionPolicy> MakeCompactionPolicy(
    const DatasetOptions& options);

}  // namespace lsmcol

#endif  // LSMCOL_LSM_COMPACTION_POLICY_H_
