// Scan predicates — the unit of predicate pushdown (§4.3/§4.4 applied to
// query scans): per-column min/max comparisons extracted from a query's
// filters and threaded through Snapshot::Scan down to the columnar
// cursors, where they drive zone-map skipping (AMAX Page-0 prefixes,
// APAX per-chunk stats) and cheap typed per-record checks.
//
// Contract: a ScanPredicate is a NECESSARY condition of the query filter
// for the record to qualify — if any pushed predicate is definitely false
// for a record, the record cannot pass the filter and the scan may skip
// its materialization entirely. Predicates never widen results; a cursor
// that cannot evaluate one simply reports "unknown" and the engine falls
// back to full expression evaluation. Pushable shapes are comparisons of
// a scalar (non-array, non-union) record path against a scalar literal;
// SQL++ mismatched-type semantics (10 > "ten" -> MISSING -> false) are
// honored by compiling a type-incompatible predicate to never_match.

#ifndef LSMCOL_LSM_SCAN_PREDICATE_H_
#define LSMCOL_LSM_SCAN_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/json/value.h"
#include "src/schema/schema.h"

namespace lsmcol {

/// One pushed-down interval constraint on a record path. Bounds are
/// Missing when unbounded; set bounds are scalar literals (bool, int64,
/// double, string). Equality predicates set both bounds to the literal.
struct ScanPredicate {
  std::vector<std::string> path;
  Value lower;
  bool lower_inclusive = true;
  Value upper;
  bool upper_inclusive = true;
};

using ScanPredicateSet = std::vector<ScanPredicate>;

/// A ScanPredicate compiled against one concrete column: bounds in the
/// domain the engine would compare in (int columns promote to the double
/// domain when the literal is a double, exactly mirroring SQL++ numeric
/// comparison via as_double).
struct TypedPredicate {
  enum class Domain : uint8_t { kInt, kDouble, kString };

  int column_id = -1;
  /// No value of this column can satisfy the bounds (type-incompatible
  /// literal or empty interval): every record of the component fails.
  bool never_match = false;
  Domain domain = Domain::kInt;

  // kInt (also booleans as 0/1): closed interval; exclusive bounds are
  // folded in at compile time.
  int64_t ilo = INT64_MIN;
  int64_t ihi = INT64_MAX;
  // kDouble.
  bool has_dlo = false, has_dhi = false;
  bool dlo_inclusive = true, dhi_inclusive = true;
  double dlo = 0, dhi = 0;
  // kString.
  bool has_slo = false, has_shi = false;
  bool slo_inclusive = true, shi_inclusive = true;
  std::string slo, shi;

  bool MatchesInt(int64_t v) const {
    if (domain == Domain::kDouble) return MatchesDouble(static_cast<double>(v));
    return v >= ilo && v <= ihi;
  }
  bool MatchesDouble(double v) const {
    if (v != v) {
      // NaN: the engine's CompareValues returns 0 for any NaN operand,
      // so <= / >= / == hold and < / > fail. Mirror that exactly: NaN
      // passes iff every present bound is inclusive.
      return (!has_dlo || dlo_inclusive) && (!has_dhi || dhi_inclusive);
    }
    if (has_dlo && (dlo_inclusive ? v < dlo : v <= dlo)) return false;
    if (has_dhi && (dhi_inclusive ? v > dhi : v >= dhi)) return false;
    return true;
  }
  bool MatchesString(Slice v) const {
    std::string_view sv(v.data(), v.size());
    if (has_slo && (slo_inclusive ? sv < slo : sv <= slo)) return false;
    if (has_shi && (shi_inclusive ? sv > shi : sv >= shi)) return false;
    return true;
  }

  // Conservative closed-hull overlap tests against a zone's [zmin, zmax]
  // (false => no value in the zone can match; inclusivity is ignored, so
  // false positives only).
  bool OverlapsIntZone(int64_t zmin, int64_t zmax) const {
    if (domain == Domain::kDouble) {
      return OverlapsDoubleZone(static_cast<double>(zmin),
                                static_cast<double>(zmax));
    }
    return !(ihi < zmin || ilo > zmax);
  }
  bool OverlapsDoubleZone(double zmin, double zmax) const {
    if (has_dhi && dhi < zmin) return false;
    if (has_dlo && dlo > zmax) return false;
    return true;
  }
  bool OverlapsStringZone(const std::string& zmin,
                          const std::string& zmax) const {
    if (has_shi && shi < zmin) return false;
    if (has_slo && slo > zmax) return false;
    return true;
  }
};

/// Compile `pred` against the column it resolved to. The result's
/// never_match is set for type-incompatible literals and empty intervals.
/// `pred`'s bounds must be scalar literals (enforced by the extractor).
TypedPredicate CompileScanPredicate(const ScanPredicate& pred,
                                    const ColumnInfo& info);

}  // namespace lsmcol

#endif  // LSMCOL_LSM_SCAN_PREDICATE_H_
