#include "src/lsm/snapshot.h"

#include <optional>

namespace lsmcol {

// ----------------------------------------------------------- scan cursor

LsmScanCursor::LsmScanCursor(
    std::vector<std::unique_ptr<TupleCursor>> sources) {
  sources_.resize(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    sources_[i].cursor = std::move(sources[i]);
  }
}

Result<bool> LsmScanCursor::Next() {
  while (true) {
    // Refill any source consumed in the previous round.
    for (Source& src : sources_) {
      if (src.needs_advance) {
        LSMCOL_ASSIGN_OR_RETURN(src.has_current, src.cursor->Next());
        src.needs_advance = false;
      }
    }
    // Minimum key; ties resolved by recency (sources_ is newest-first).
    Source* min_src = nullptr;
    for (Source& src : sources_) {
      if (!src.has_current) continue;
      if (min_src == nullptr || src.cursor->key() < min_src->cursor->key()) {
        min_src = &src;
      }
    }
    if (min_src == nullptr) return false;
    const int64_t min_key = min_src->cursor->key();
    // Consume every source holding this key; the newest one wins, the
    // others are shadowed (replaced records / annihilated pairs, §2.1.1).
    Source* winner = nullptr;
    bool winner_anti = false;
    for (Source& src : sources_) {
      if (src.has_current && src.cursor->key() == min_key) {
        if (winner == nullptr) {
          winner = &src;
          winner_anti = src.cursor->anti_matter();
        }
        src.needs_advance = true;
      }
    }
    if (winner_anti) continue;  // deleted record
    winner_ = winner->cursor.get();
    return true;
  }
}

Status LsmScanCursor::SeekForward(int64_t target) {
  for (Source& src : sources_) {
    LSMCOL_RETURN_NOT_OK(src.cursor->SeekForward(target));
    if (src.has_current && !src.needs_advance &&
        src.cursor->key() < target) {
      src.needs_advance = true;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------- lookup batch

Status LookupBatch::Find(int64_t key, bool* found, Value* out) {
  *found = false;
  if (exhausted_) return Status::OK();
  if (has_current_ && cursor_->key() > key) return Status::OK();
  if (!has_current_ || cursor_->key() < key) {
    LSMCOL_RETURN_NOT_OK(cursor_->SeekForward(key));
    LSMCOL_ASSIGN_OR_RETURN(bool ok, cursor_->Next());
    if (!ok) {
      exhausted_ = true;
      return Status::OK();
    }
    has_current_ = true;
  }
  if (cursor_->key() == key) {
    *found = true;
    if (out != nullptr) LSMCOL_RETURN_NOT_OK(cursor_->Record(out));
  }
  return Status::OK();
}

// -------------------------------------------------------------- snapshot

namespace {

std::unique_ptr<TupleCursor> NewComponentCursor(
    const Component& component, const Projection& projection,
    const ScanPredicateSet* predicates,
    std::vector<std::pair<int64_t, int64_t>> foreign_ranges) {
  if (component.meta().layout == LayoutKind::kApax ||
      component.meta().layout == LayoutKind::kAmax) {
    return std::make_unique<ColumnarComponentCursor>(
        &component, projection, predicates, std::move(foreign_ranges));
  }
  return std::make_unique<RowComponentCursor>(&component);
}

// Whole-source [min, max] key range; nullopt when the source is empty.
std::optional<std::pair<int64_t, int64_t>> ComponentKeyRange(
    const Component& component) {
  const auto& leaves = component.reader().leaves();
  if (leaves.empty()) return std::nullopt;
  return std::make_pair(leaves.front().min_key, leaves.back().max_key);
}

std::optional<std::pair<int64_t, int64_t>> MemtableKeyRange(
    const MemTable& memtable) {
  if (memtable.entries().empty()) return std::nullopt;
  return std::make_pair(memtable.entries().begin()->first,
                        memtable.entries().rbegin()->first);
}

}  // namespace

Result<std::unique_ptr<LsmScanCursor>> Snapshot::Scan(
    const Projection& projection) const {
  return Scan(projection, ScanPredicateSet());
}

Result<std::unique_ptr<LsmScanCursor>> Snapshot::Scan(
    const Projection& projection, const ScanPredicateSet& predicates) const {
  const ScanPredicateSet* preds = predicates.empty() ? nullptr : &predicates;
  // Reconciliation order, newest first: active memtable, sealed memtables
  // awaiting background flush, then disk components.
  const size_t n_memtables = 1 + immutables_.size();
  // Key ranges of every source: a columnar source may drop a whole leaf
  // only when no OTHER source holds keys in the leaf's range (otherwise a
  // skipped record could stop shadowing an older version, or a skipped
  // anti-matter entry could stop annihilating one).
  std::vector<std::optional<std::pair<int64_t, int64_t>>> ranges;
  if (preds != nullptr) {
    ranges.push_back(MemtableKeyRange(*memtable_));
    for (const auto& immutable : immutables_) {
      ranges.push_back(MemtableKeyRange(*immutable));
    }
    for (const auto& component : components_) {
      ranges.push_back(ComponentKeyRange(*component));
    }
  }
  auto foreign_for = [&](size_t self) {
    std::vector<std::pair<int64_t, int64_t>> foreign;
    for (size_t i = 0; i < ranges.size(); ++i) {
      if (i != self && ranges[i].has_value()) foreign.push_back(*ranges[i]);
    }
    return foreign;
  };
  std::vector<std::unique_ptr<TupleCursor>> sources;
  sources.push_back(
      std::make_unique<MemTableCursor>(memtable_.get(), row_codec_));
  for (const auto& immutable : immutables_) {
    sources.push_back(
        std::make_unique<MemTableCursor>(immutable.get(), row_codec_));
  }
  for (size_t i = 0; i < components_.size(); ++i) {
    sources.push_back(NewComponentCursor(
        *components_[i], projection, preds,
        preds != nullptr ? foreign_for(n_memtables + i)
                         : std::vector<std::pair<int64_t, int64_t>>()));
  }
  auto cursor = std::make_unique<LsmScanCursor>(std::move(sources));
  cursor->Pin(shared_from_this());
  return cursor;
}

Status Snapshot::Lookup(int64_t key, Value* out) const {
  return Lookup(key, Projection::All(), out);
}

Status Snapshot::Lookup(int64_t key, const Projection& projection,
                        Value* out) const {
  LSMCOL_ASSIGN_OR_RETURN(auto cursor, Scan(projection));
  LSMCOL_RETURN_NOT_OK(cursor->SeekForward(key));
  LSMCOL_ASSIGN_OR_RETURN(bool ok, cursor->Next());
  if (!ok || cursor->key() != key) {
    return Status::NotFound("key " + std::to_string(key));
  }
  return cursor->Record(out);
}

Result<std::unique_ptr<LookupBatch>> Snapshot::NewLookupBatch(
    const Projection& projection) const {
  LSMCOL_ASSIGN_OR_RETURN(auto cursor, Scan(projection));
  return std::unique_ptr<LookupBatch>(new LookupBatch(std::move(cursor)));
}

uint64_t Snapshot::OnDiskBytes() const {
  uint64_t total = 0;
  for (const auto& component : components_) total += component->size_bytes();
  return total;
}

}  // namespace lsmcol
