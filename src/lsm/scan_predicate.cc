#include "src/lsm/scan_predicate.h"

#include <cmath>

namespace lsmcol {
namespace {

// Tighten an int-domain lower bound from an int literal: x > lo becomes
// x >= lo + 1; saturation at INT64_MAX makes the interval empty.
bool FoldIntLower(int64_t lo, bool inclusive, int64_t* out) {
  if (inclusive) {
    *out = lo;
    return true;
  }
  if (lo == INT64_MAX) return false;
  *out = lo + 1;
  return true;
}

bool FoldIntUpper(int64_t hi, bool inclusive, int64_t* out) {
  if (inclusive) {
    *out = hi;
    return true;
  }
  if (hi == INT64_MIN) return false;
  *out = hi - 1;
  return true;
}

// The literal both bounds came from (for kEq both are the same literal,
// otherwise exactly one bound is set).
const Value& BoundLiteral(const ScanPredicate& pred) {
  return pred.lower.is_missing() ? pred.upper : pred.lower;
}

void CompileIntDomain(const ScanPredicate& pred, TypedPredicate* out) {
  out->domain = TypedPredicate::Domain::kInt;
  if (!pred.lower.is_missing()) {
    const int64_t lo =
        pred.lower.is_bool() ? (pred.lower.bool_value() ? 1 : 0)
                             : pred.lower.int_value();
    if (!FoldIntLower(lo, pred.lower_inclusive, &out->ilo)) {
      out->never_match = true;
      return;
    }
  }
  if (!pred.upper.is_missing()) {
    const int64_t hi =
        pred.upper.is_bool() ? (pred.upper.bool_value() ? 1 : 0)
                             : pred.upper.int_value();
    if (!FoldIntUpper(hi, pred.upper_inclusive, &out->ihi)) {
      out->never_match = true;
      return;
    }
  }
  if (out->ilo > out->ihi) out->never_match = true;
}

void CompileDoubleDomain(const ScanPredicate& pred, TypedPredicate* out) {
  out->domain = TypedPredicate::Domain::kDouble;
  if (!pred.lower.is_missing()) {
    out->has_dlo = true;
    out->dlo = pred.lower.as_double();
    out->dlo_inclusive = pred.lower_inclusive;
  }
  if (!pred.upper.is_missing()) {
    out->has_dhi = true;
    out->dhi = pred.upper.as_double();
    out->dhi_inclusive = pred.upper_inclusive;
  }
  if (out->has_dlo && out->has_dhi) {
    if (out->dlo > out->dhi ||
        (out->dlo == out->dhi &&
         !(out->dlo_inclusive && out->dhi_inclusive))) {
      out->never_match = true;
    }
  }
}

void CompileStringDomain(const ScanPredicate& pred, TypedPredicate* out) {
  out->domain = TypedPredicate::Domain::kString;
  if (!pred.lower.is_missing()) {
    out->has_slo = true;
    out->slo = pred.lower.string_value();
    out->slo_inclusive = pred.lower_inclusive;
  }
  if (!pred.upper.is_missing()) {
    out->has_shi = true;
    out->shi = pred.upper.string_value();
    out->shi_inclusive = pred.upper_inclusive;
  }
  if (out->has_slo && out->has_shi) {
    if (out->slo > out->shi ||
        (out->slo == out->shi &&
         !(out->slo_inclusive && out->shi_inclusive))) {
      out->never_match = true;
    }
  }
}

// Whether an int literal is small enough that comparing in the int
// domain agrees with the engine, which compares ALL numerics through
// as_double (CompareValues): for |b| < 2^53 the conversions cannot
// reorder or conflate any int value against b, so the domains agree;
// at or beyond 2^53 double rounding can, so the predicate must run in
// the engine's own (double) domain to keep pushdown result-neutral.
bool IntDomainExact(const Value& v) {
  if (!v.is_int()) return true;  // bound absent or bool (0/1)
  const int64_t magnitude_limit = int64_t{1} << 53;
  return v.int_value() > -magnitude_limit && v.int_value() < magnitude_limit;
}

}  // namespace

TypedPredicate CompileScanPredicate(const ScanPredicate& pred,
                                    const ColumnInfo& info) {
  TypedPredicate out;
  out.column_id = info.id;
  const Value& lit = BoundLiteral(pred);
  switch (info.type) {
    case AtomicType::kInt64:
      if (lit.is_int() && IntDomainExact(pred.lower) &&
          IntDomainExact(pred.upper)) {
        CompileIntDomain(pred, &out);
      } else if (lit.is_number()) {
        // SQL++ compares numerics in the double domain (as_double);
        // keeping double bounds reproduces that exactly — including for
        // huge int literals, where int comparison would diverge from
        // the engine's rounding behavior.
        CompileDoubleDomain(pred, &out);
      } else {
        out.never_match = true;  // 10 > "ten" is MISSING, never true
      }
      return out;
    case AtomicType::kDouble:
      if (lit.is_number()) {
        CompileDoubleDomain(pred, &out);
      } else {
        out.never_match = true;
      }
      return out;
    case AtomicType::kBoolean:
      if (lit.is_bool()) {
        CompileIntDomain(pred, &out);
      } else {
        out.never_match = true;
      }
      return out;
    case AtomicType::kString:
      if (lit.is_string()) {
        CompileStringDomain(pred, &out);
      } else {
        out.never_match = true;
      }
      return out;
  }
  out.never_match = true;
  return out;
}

}  // namespace lsmcol
