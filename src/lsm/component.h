// LSM on-disk component wrapper and the per-source tuple cursors used by
// scans, merges, and point lookups.
//
// Every component stores a metadata blob (§2.1.1's metadata page) naming
// its layout, compression flag, entry count, and — for columnar layouts —
// the schema snapshot taken at the end of the flush/merge that produced it
// (the most recent schema is a superset of all older ones, §2.2).
//
// Cursors expose a reconciliation-friendly stream: Next()/key()/
// anti_matter() walk every entry (including anti-matter); Record() and
// Path() materialize values lazily. The columnar cursor decodes only
// primary keys while records are being skipped, advancing the projected
// columns' iterators in batches when a record is actually accessed (§4.4),
// and — for AMAX — reads a column's megapage pages only on first access
// within a leaf (§4.3).

#ifndef LSMCOL_LSM_COMPONENT_H_
#define LSMCOL_LSM_COMPONENT_H_

#include <atomic>
#include <climits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/columnar/assembler.h"
#include "src/columnar/column_reader.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/json/value.h"
#include "src/layouts/amax.h"
#include "src/layouts/apax.h"
#include "src/layouts/row_codec.h"
#include "src/layouts/row_leaf.h"
#include "src/lsm/memtable.h"
#include "src/lsm/scan_predicate.h"
#include "src/schema/schema.h"
#include "src/storage/component_file.h"

namespace lsmcol {

/// Metadata blob persisted with every component.
struct ComponentMeta {
  LayoutKind layout = LayoutKind::kOpen;
  bool compressed = true;
  uint64_t component_id = 0;  ///< monotonically increasing; merges take max
  uint64_t entry_count = 0;   ///< records + anti-matter entries

  void SerializeTo(Buffer* out, const Schema* schema) const;
  /// Parses the blob; fills *schema_blob with the schema bytes (empty for
  /// row layouts).
  static Result<ComponentMeta> Parse(Slice input, Buffer* schema_blob);
};

/// Dataset-wide tallies of data damage observed at component read time.
/// Shared (via shared_ptr) between the Dataset and every Component it
/// opens, so counts survive the component being merged away or the
/// snapshot that pinned it dying.
struct ComponentFaultCounters {
  std::atomic<uint64_t> checksum_failures{0};  ///< damaged reads observed
  std::atomic<uint64_t> quarantines{0};        ///< components quarantined
  /// First-damage records awaiting persistence. A component appends
  /// {component_id, reason} under log_mu the moment it quarantines
  /// itself (reads happen on arbitrary threads, possibly under component
  /// locks — the log is the rank-75 sink those threads may reach); the
  /// owning Dataset drains the log into the manifest so a restart does
  /// not silently "heal" a known-bad component. damage_records mirrors
  /// the append count so pollers skip log_mu when nothing is new.
  std::atomic<uint64_t> damage_records{0};
  mutable Mutex log_mu{MutexRank::kComponentFaultLog};
  std::vector<std::pair<uint64_t, Status>> damage_log
      LSMCOL_GUARDED_BY(log_mu);
};

/// An immutable on-disk component.
class Component {
 public:
  static Result<std::unique_ptr<Component>> Open(
      const std::string& path, BufferCache* cache, size_t page_size,
      FileSystem* fs = nullptr,
      std::shared_ptr<ComponentFaultCounters> fault_counters = nullptr);

  /// Open for salvage: damaged reads surface their error but never
  /// quarantine the component or touch fault counters, so a salvage tool
  /// can keep probing leaves past the first bad page.
  static Result<std::unique_ptr<Component>> OpenForSalvage(
      const std::string& path, BufferCache* cache, size_t page_size,
      FileSystem* fs = nullptr);

  /// Deletes the backing file iff MarkObsolete() was called.
  ~Component();

  /// Mark this component superseded (merged away). The backing file is
  /// deleted when the last reference drops — immediately if only the
  /// dataset held it, or once the last Snapshot pinning it dies. The
  /// manifest must already have stopped referencing the component (a
  /// crash before the deferred unlink only leaves an orphan file, which
  /// the stale-file sweep removes on the next open).
  void MarkObsolete() { obsolete_ = true; }

  const ComponentMeta& meta() const { return meta_; }
  const ComponentReader& reader() const { return *reader_; }
  ComponentReader* mutable_reader() { return reader_.get(); }
  /// Schema snapshot (columnar layouts only; nullptr otherwise).
  const Schema* schema() const { return schema_ ? &*schema_ : nullptr; }
  uint64_t size_bytes() const { return reader_->size_bytes(); }
  const std::string& path() const { return reader_->path(); }

  /// Row-leaf payload with leaf-level compression already removed. Backed
  /// by a small FIFO cache: the buffer cache of a real system holds
  /// decompressed pages, so repeated point lookups must not pay the
  /// decompression again. Returns shared ownership so the bytes stay
  /// valid for the caller even when concurrent readers (components are
  /// shared across snapshots and threads) rotate the entry out of the
  /// FIFO. Thread-safe.
  Result<std::shared_ptr<const Buffer>> DecompressedRowLeaf(
      size_t leaf_index) const LSMCOL_EXCLUDES(row_leaf_mu_);

  /// Checked leaf reads — the only way cursors and merges may touch this
  /// component's pages. A quarantined component fails fast without I/O;
  /// a read that surfaces data damage (checksum mismatch, corruption)
  /// quarantines the component so every later read fails fast too. Other
  /// components — and the dataset as a whole — stay readable: damage is
  /// contained to the file that exhibits it.
  Status ReadLeaf(size_t leaf_index, Buffer* out) const;
  Status ReadLeafRange(size_t leaf_index, uint64_t offset, uint64_t size,
                       Buffer* out) const;

  /// Checked leaf read that bypasses the buffer cache: the physical
  /// pages are re-read and re-verified even when cached. The scrubber's
  /// probe — same quarantine semantics as ReadLeaf.
  Status ScrubLeaf(size_t leaf_index, Buffer* out) const;

  /// OK, or the quarantine reason. Cheap (one atomic load when healthy).
  Status CheckReadable() const LSMCOL_EXCLUDES(fault_mu_);
  bool quarantined() const {
    return quarantined_.load(std::memory_order_acquire);
  }

  /// Quarantine without a read: used at recovery to re-apply a damage
  /// record persisted in the manifest. Bumps the quarantine counter but
  /// not checksum_failures, and does NOT append to the damage log (the
  /// record is already durable). Idempotent.
  void Quarantine(const Status& reason) const LSMCOL_EXCLUDES(fault_mu_);

 private:
  static constexpr size_t kRowLeafCacheSize = 4;

  Component() = default;

  /// Record `st` if it is data damage (quarantining on first sight) and
  /// return it unchanged. Called on every checked read's result.
  Status NoteRead(Status st) const LSMCOL_EXCLUDES(fault_mu_);

  ComponentMeta meta_;
  bool obsolete_ = false;
  /// Salvage mode: NoteRead passes damage through untouched.
  bool salvage_ = false;
  std::unique_ptr<ComponentReader> reader_;
  std::optional<Schema> schema_;
  std::shared_ptr<ComponentFaultCounters> fault_counters_;
  /// Guards quarantine_reason_; quarantined_ is the lock-free fast path.
  mutable Mutex fault_mu_{MutexRank::kComponentFault};
  mutable std::atomic<bool> quarantined_{false};
  mutable Status quarantine_reason_ LSMCOL_GUARDED_BY(fault_mu_);
  /// Guards row_leaf_cache_ only; everything else is immutable after
  /// Open() (obsolete_ flips once, under Dataset::mu_).
  mutable Mutex row_leaf_mu_{MutexRank::kComponentRowLeaf};
  mutable std::vector<std::pair<size_t, std::shared_ptr<const Buffer>>>
      row_leaf_cache_ LSMCOL_GUARDED_BY(row_leaf_mu_);
};

/// Which fields a cursor must be able to materialize.
struct Projection {
  bool all = true;
  std::vector<std::vector<std::string>> paths;

  static Projection All() { return Projection(); }
  static Projection Of(std::vector<std::vector<std::string>> paths) {
    Projection p;
    p.all = false;
    p.paths = std::move(paths);
    return p;
  }
};

/// What a cursor can say about its current record versus the pushed-down
/// scan predicates (the ScanPredicate contract: predicates are necessary
/// conditions of the query filter).
enum class PredicateVerdict : uint8_t {
  kNoMatch,  ///< some pushed predicate is definitely false — skip safely
  kMatch,    ///< every pushed predicate was checked and holds
  kUnknown,  ///< not checked (no stats / unpushable here) — evaluate fully
};

/// Reconciliation-friendly sorted tuple stream (one LSM source).
class TupleCursor {
 public:
  virtual ~TupleCursor() = default;

  /// Advance; false when exhausted. Surfaces anti-matter entries too.
  virtual Result<bool> Next() = 0;
  virtual int64_t key() const = 0;
  virtual bool anti_matter() const = 0;

  /// Materialize the current record (projection-limited where supported).
  virtual Status Record(Value* out) = 0;
  /// Materialize one dotted path of the current record.
  virtual Status Path(const std::vector<std::string>& path, Value* out) = 0;

  /// Fast-forward so the next Next() lands on the first key >= target.
  /// Must not move backwards.
  virtual Status SeekForward(int64_t target) = 0;

  /// Judge the current record against the pushed predicates (if any).
  /// Sources without zone/typed support answer kUnknown, which is always
  /// safe. Cheap: leaf-level zone state plus array lookups.
  virtual Result<PredicateVerdict> TestPushedPredicates() {
    return PredicateVerdict::kUnknown;
  }
};

/// Cursor over a row-layout component (Open/VB leaves).
class RowComponentCursor : public TupleCursor {
 public:
  RowComponentCursor(const Component* component) : component_(component) {}

  Result<bool> Next() override;
  int64_t key() const override { return key_; }
  bool anti_matter() const override { return anti_matter_; }
  Status Record(Value* out) override;
  Status Path(const std::vector<std::string>& path, Value* out) override;
  Status SeekForward(int64_t target) override;

  /// Raw encoded row of the current entry (merge fast path: rows are
  /// copied between components without decoding).
  Slice row() const { return row_; }

 private:
  const Component* component_;
  size_t leaf_index_ = 0;
  bool leaf_loaded_ = false;
  /// Keeps the decompressed leaf alive while leaf_reader_ iterates it —
  /// concurrent readers of the same component may rotate it out of the
  /// component's small FIFO at any time.
  std::shared_ptr<const Buffer> leaf_payload_;
  RowLeafReader leaf_reader_;
  int64_t key_ = 0;
  bool anti_matter_ = false;
  Slice row_;
  int64_t seek_floor_ = INT64_MIN;  // skip rows below this after a seek
};

/// Cursor over a columnar component (APAX or AMAX).
class ColumnarComponentCursor : public TupleCursor {
 public:
  /// `dataset_schema` is the live schema used to resolve projections; the
  /// component's own snapshot drives chunk decoding.
  ///
  /// `predicates` (optional; consumed during construction) enables pushdown:
  /// each predicate is resolved against the component schema and compiled
  /// to typed bounds; zone stats (AMAX Page-0 prefixes, APAX per-chunk
  /// stats) then veto whole leaves — their megapages are never read — and
  /// surviving records are checked against batch-decoded column values.
  /// `foreign_key_ranges` lists the [min, max] key ranges of every other
  /// source in the same scan: a leaf whose zone fails AND whose key range
  /// overlaps no foreign range is skipped outright (nothing it holds can
  /// shadow or annihilate another source's record), without decoding PKs.
  ColumnarComponentCursor(
      const Component* component, const Projection& projection,
      const ScanPredicateSet* predicates = nullptr,
      std::vector<std::pair<int64_t, int64_t>> foreign_key_ranges = {});

  Result<bool> Next() override;
  int64_t key() const override { return key_; }
  bool anti_matter() const override { return anti_matter_; }
  Status Record(Value* out) override;
  Status Path(const std::vector<std::string>& path, Value* out) override;
  Status SeekForward(int64_t target) override;
  Result<PredicateVerdict> TestPushedPredicates() override;

  /// Typed access for the compiled engine: the current record's parse for
  /// one column (must be within the projection). May trigger the batched
  /// catch-up of the column's iterator (§4.4).
  Result<const ColumnRecord*> Column(int column_id);

  const Schema* component_schema() const { return component_->schema(); }

 private:
  struct ColumnState {
    bool loaded = false;       // chunk reader initialized for current leaf
    bool exists = false;       // column present in current leaf
    ColumnChunkReader reader;
    Buffer chunk_storage;      // AMAX decompressed megapage
    uint64_t consumed = 0;     // records consumed within current leaf
    uint64_t seq = 0;          // cursor sequence `record` belongs to
    ColumnRecord record;
  };

  /// One pushed-down column: every predicate on it, compiled, plus the
  /// whole-leaf batch decode its per-record checks index into.
  struct PredColumn {
    int column_id = -1;
    int max_def = 0;
    AtomicType type = AtomicType::kInt64;
    std::vector<TypedPredicate> preds;  // conjunctive
    bool loaded = false;                // batch decoded for current leaf
    ColumnChunkReader reader;
    Buffer chunk_storage;  // AMAX decompressed megapage
    ColumnEntryBatch batch;
  };

  Status LoadLeaf(size_t leaf_index);
  Status EnsureColumnCurrent(int column_id);
  Status ResolveProjection(const Projection& projection);
  void ResolvePredicates(const ScanPredicateSet& predicates);
  /// Zone tests for the current leaf; sets leaf_zone_match_.
  void EvaluateLeafZones();
  Status LoadPredColumn(PredColumn* pc);
  bool LeafRangeDisjointFromForeign(int64_t min_key, int64_t max_key) const;

  const Component* component_;
  std::vector<bool> projected_;   // by column id (component schema ids)
  std::vector<int> projected_ids_;
  RecordAssembler assembler_;

  size_t leaf_index_ = 0;
  bool leaf_loaded_ = false;
  uint32_t leaf_records_ = 0;
  uint64_t position_in_leaf_ = 0;  // records delivered in current leaf
  uint64_t record_seq_ = 0;        // increments on every delivered record

  // Per-leaf state.
  ApaxLeaf apax_leaf_;
  Buffer amax_page0_bytes_;
  AmaxPageZero amax_page0_;
  ColumnChunkReader pk_reader_;
  ColumnEntryBatch pk_batch_;  // whole-leaf PK decode (defs + keys)
  std::vector<ColumnState> columns_;  // by column id

  // Pushdown state.
  bool has_checked_predicates_ = false;  // any zone/typed check applies
  bool has_unchecked_predicates_ = false;  // some predicate not pushable
  bool component_never_match_ = false;  // a predicate fails for all records
  bool leaf_zone_match_ = true;
  std::vector<TypedPredicate> pk_preds_;
  std::vector<PredColumn> pred_columns_;
  std::vector<std::pair<int64_t, int64_t>> foreign_ranges_;

  int64_t key_ = 0;
  bool anti_matter_ = false;
  int64_t seek_floor_ = INT64_MIN;
  std::vector<const ColumnRecord*> by_column_;  // scratch for assembly
  ColumnRecord pk_record_;
};

/// Cursor over the in-memory component. The memtable must not be mutated
/// while the cursor lives.
class MemTableCursor : public TupleCursor {
 public:
  MemTableCursor(const MemTable* memtable, const RowCodec* codec)
      : memtable_(memtable), codec_(codec),
        it_(memtable->entries().begin()) {}

  Result<bool> Next() override;
  int64_t key() const override { return key_; }
  bool anti_matter() const override { return anti_matter_; }
  Status Record(Value* out) override;
  Status Path(const std::vector<std::string>& path, Value* out) override;
  Status SeekForward(int64_t target) override;

 private:
  const MemTable* memtable_;
  const RowCodec* codec_;
  std::map<int64_t, MemTable::Entry>::const_iterator it_;
  bool started_ = false;
  int64_t key_ = 0;
  bool anti_matter_ = false;
  int64_t seek_floor_ = INT64_MIN;
  const std::string* row_ = nullptr;
};

}  // namespace lsmcol

#endif  // LSMCOL_LSM_COMPONENT_H_
