// FlushMergeScheduler: the background worker pool that takes flushes and
// merges off the write path (§6.3 measures ingestion with exactly this
// split: writers fill memtables, dedicated threads flush and merge).
//
// The scheduler itself is a deliberately small primitive — a FIFO of
// opaque closures drained by N worker threads. All LSM-specific policy
// (what to flush, when to merge, back-pressure) lives in Dataset, which
// enqueues at most one flush task and one merge task per dataset at a
// time; the scheduler only provides the threads. One scheduler is shared
// by every dataset of a Store (StoreOptions::background_threads), so a
// single pool bounds the background CPU/I/O of the whole node.
//
// Two lanes: Schedule() is the normal (high-priority) FIFO used by
// flushes and merges; ScheduleLow() adds a low-priority, optionally
// delayed lane used by the background scrubber. Workers always prefer
// the high lane; a low task runs only when the high lane is empty AND
// its not_before time has passed — so scrub slices never delay a flush.
//
// Shutdown contract: Stop() (idempotent and safe to race with itself,
// called by the destructor) stops accepting new work, drains every
// queued high-lane task, and joins the workers. Schedule() after Stop()
// returns false and the caller runs the work inline instead — so work
// is never silently dropped. Low-lane tasks are best-effort by design
// (a scrub slice that never runs costs nothing): Stop() discards any
// still-pending low tasks. Anything a task references (datasets,
// caches) must outlive the task; Dataset's destructor waits for its own
// in-flight tasks before tearing down.

#ifndef LSMCOL_LSM_SCHEDULER_H_
#define LSMCOL_LSM_SCHEDULER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace lsmcol {

class FlushMergeScheduler {
 public:
  /// Starts `threads` workers (at least 1).
  explicit FlushMergeScheduler(int threads);

  /// Stops and joins (see Stop()).
  ~FlushMergeScheduler();

  FlushMergeScheduler(const FlushMergeScheduler&) = delete;
  FlushMergeScheduler& operator=(const FlushMergeScheduler&) = delete;

  /// Enqueue one task. Returns false when the scheduler has been stopped,
  /// in which case the task was NOT enqueued and the caller must run it
  /// (or its fallback) itself.
  bool Schedule(std::function<void()> task) LSMCOL_EXCLUDES(mu_);

  /// Enqueue one low-priority task that must not run before
  /// `not_before`. Low tasks run only when the high lane is idle, and
  /// are DISCARDED by Stop() (best-effort — callers must not rely on a
  /// low task ever running). Returns false when stopped (task dropped).
  bool ScheduleLow(std::function<void()> task,
                   std::chrono::steady_clock::time_point not_before =
                       std::chrono::steady_clock::time_point{})
      LSMCOL_EXCLUDES(mu_);

  /// Stop accepting work, run every already-queued task to completion,
  /// and join the workers. Safe to call more than once, including
  /// concurrently: exactly one caller adopts the worker threads and
  /// joins them; the others return once their Stop request is visible.
  void Stop() LSMCOL_EXCLUDES(mu_);

  int thread_count() const { return thread_count_; }

  /// High-lane tasks executed so far (monotonic; for tests).
  uint64_t tasks_run() const LSMCOL_EXCLUDES(mu_);

  /// Low-lane tasks executed so far (monotonic; for tests).
  uint64_t low_tasks_run() const LSMCOL_EXCLUDES(mu_);

 private:
  void WorkerLoop() LSMCOL_EXCLUDES(mu_);

  /// Pool size, fixed at construction (readable without mu_).
  int thread_count_ = 0;

  mutable Mutex mu_{MutexRank::kScheduler};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ LSMCOL_GUARDED_BY(mu_);
  /// Low lane, keyed by earliest-allowed start time (multimap: several
  /// tasks may share a due time). Only consulted when queue_ is empty.
  std::multimap<std::chrono::steady_clock::time_point, std::function<void()>>
      low_queue_ LSMCOL_GUARDED_BY(mu_);
  bool stopping_ LSMCOL_GUARDED_BY(mu_) = false;
  uint64_t tasks_run_ LSMCOL_GUARDED_BY(mu_) = 0;
  uint64_t low_tasks_run_ LSMCOL_GUARDED_BY(mu_) = 0;
  /// Worker handles. Moved out (claimed) by the one Stop() call that
  /// joins, so concurrent Stop()s never touch the same std::thread.
  std::vector<std::thread> threads_ LSMCOL_GUARDED_BY(mu_);
};

}  // namespace lsmcol

#endif  // LSMCOL_LSM_SCHEDULER_H_
