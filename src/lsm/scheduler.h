// FlushMergeScheduler: the background worker pool that takes flushes and
// merges off the write path (§6.3 measures ingestion with exactly this
// split: writers fill memtables, dedicated threads flush and merge).
//
// The scheduler itself is a deliberately small primitive — a FIFO of
// opaque closures drained by N worker threads. All LSM-specific policy
// (what to flush, when to merge, back-pressure) lives in Dataset, which
// enqueues at most one flush task and one merge task per dataset at a
// time; the scheduler only provides the threads. One scheduler is shared
// by every dataset of a Store (StoreOptions::background_threads), so a
// single pool bounds the background CPU/I/O of the whole node.
//
// Shutdown contract: Stop() (idempotent, called by the destructor) stops
// accepting new work, drains every queued task, and joins the workers.
// Schedule() after Stop() returns false and the caller runs the work
// inline instead — so work is never silently dropped. Anything a task
// references (datasets, caches) must outlive the task; Dataset's
// destructor waits for its own in-flight tasks before tearing down.

#ifndef LSMCOL_LSM_SCHEDULER_H_
#define LSMCOL_LSM_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lsmcol {

class FlushMergeScheduler {
 public:
  /// Starts `threads` workers (at least 1).
  explicit FlushMergeScheduler(int threads);

  /// Stops and joins (see Stop()).
  ~FlushMergeScheduler();

  FlushMergeScheduler(const FlushMergeScheduler&) = delete;
  FlushMergeScheduler& operator=(const FlushMergeScheduler&) = delete;

  /// Enqueue one task. Returns false when the scheduler has been stopped,
  /// in which case the task was NOT enqueued and the caller must run it
  /// (or its fallback) itself.
  bool Schedule(std::function<void()> task);

  /// Stop accepting work, run every already-queued task to completion,
  /// and join the workers. Safe to call more than once.
  void Stop();

  int thread_count() const { return static_cast<int>(threads_.size()); }

  /// Tasks executed so far (monotonic; for tests/introspection).
  uint64_t tasks_run() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  uint64_t tasks_run_ = 0;
  std::vector<std::thread> threads_;
};

}  // namespace lsmcol

#endif  // LSMCOL_LSM_SCHEDULER_H_
