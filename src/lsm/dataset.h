// Dataset: the primary LSM index of one document collection — the public
// entry point of lsmcol's storage engine.
//
// Writes go to the in-memory component (row format; VB for the columnar
// layouts, §4.5). When the memtable budget is exceeded, the component is
// flushed: row layouts write slotted leaves; columnar layouts run the
// tuple compactor (schema inference) and shred records into APAX pages or
// AMAX mega leaves. Flushes trigger the tiering merge policy (size ratio
// 1.2, max 5 components, §6.3); columnar components merge with the
// *vertical merge* of §4.5.3 (keys first, then one column at a time).
//
// Reads reconcile the memtable and all disk components by primary key,
// newest component winning, anti-matter annihilating older records
// (§2.1.1, §4.4).

#ifndef LSMCOL_LSM_DATASET_H_
#define LSMCOL_LSM_DATASET_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/lsm/component.h"
#include "src/lsm/memtable.h"
#include "src/lsm/options.h"

namespace lsmcol {

/// Reconciled scan over the whole dataset (memtable + all components).
/// Anti-matter and shadowed records are skipped.
class LsmScanCursor : public TupleCursor {
 public:
  /// `sources` ordered newest first (memtable, then components new→old).
  explicit LsmScanCursor(std::vector<std::unique_ptr<TupleCursor>> sources);

  Result<bool> Next() override;
  int64_t key() const override { return winner_->key(); }
  bool anti_matter() const override { return false; }
  Status Record(Value* out) override { return winner_->Record(out); }
  Status Path(const std::vector<std::string>& path, Value* out) override {
    return winner_->Path(path, out);
  }
  Status SeekForward(int64_t target) override;

  /// The winning source of the current record (for typed column access by
  /// the compiled engine; may be any TupleCursor subclass).
  TupleCursor* winner() { return winner_; }

 private:
  struct Source {
    std::unique_ptr<TupleCursor> cursor;
    bool has_current = false;
    bool needs_advance = true;
  };

  std::vector<Source> sources_;
  TupleCursor* winner_ = nullptr;
};

/// Ingestion + flush/merge statistics.
struct DatasetStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t flushes = 0;
  uint64_t merges = 0;
  uint64_t merged_bytes_in = 0;
};

/// \brief One document collection stored in a primary LSM index.
class Dataset {
 public:
  /// Creates an empty dataset. `options.dir` must exist; `cache` must
  /// outlive the dataset.
  static Result<std::unique_ptr<Dataset>> Create(const DatasetOptions& options,
                                                 BufferCache* cache);

  ~Dataset();

  /// Insert or replace (upsert) a record. The record must carry the int64
  /// primary-key field. May trigger a flush (and merges).
  Status Insert(const Value& record);
  Status InsertJson(std::string_view json);

  /// Delete by key (blind; adds anti-matter if needed).
  Status Delete(int64_t key);

  /// Force-flush the in-memory component.
  Status Flush();

  /// Run the tiering merge policy until it is satisfied.
  Status MaybeMerge();
  /// Merge every on-disk component into one.
  Status MergeAll();

  /// Reconciled scan. For columnar layouts the projection limits which
  /// megapages/minipage chunks are ever decoded (and, for AMAX, read).
  Result<std::unique_ptr<LsmScanCursor>> Scan(const Projection& projection);

  /// Point lookup. NotFound when the key does not exist (or was deleted).
  Status Lookup(int64_t key, Value* out);
  /// Point lookup materializing only the projected paths (§4.6: index
  /// maintenance fetches just the old indexed values).
  Status Lookup(int64_t key, const Projection& projection, Value* out);

  /// Stateful batched point lookups for ascending keys (§4.6): the LSM
  /// cursor state persists across Find calls, so sorted secondary-index
  /// results read each column chunk once.
  class LookupBatch {
   public:
    /// Keys must be non-decreasing across calls.
    Status Find(int64_t key, bool* found, Value* out);

   private:
    friend class Dataset;
    explicit LookupBatch(std::unique_ptr<LsmScanCursor> cursor)
        : cursor_(std::move(cursor)) {}

    std::unique_ptr<LsmScanCursor> cursor_;
    bool has_current_ = false;
    bool exhausted_ = false;
  };
  Result<std::unique_ptr<LookupBatch>> NewLookupBatch(
      const Projection& projection);

  // --- Introspection ---
  const DatasetOptions& options() const { return options_; }
  LayoutKind layout() const { return options_.layout; }
  /// Live schema (columnar layouts only; nullptr for Open/VB).
  const Schema* schema() const { return schema_ ? &*schema_ : nullptr; }
  const RowCodec& row_codec() const { return *row_codec_; }
  BufferCache* cache() { return cache_; }
  size_t component_count() const { return components_.size(); }
  const Component& component(size_t i) const { return *components_[i]; }
  const MemTable& memtable() const { return memtable_; }
  uint64_t OnDiskBytes() const;
  const DatasetStats& stats() const { return stats_; }

 private:
  Dataset(const DatasetOptions& options, BufferCache* cache);

  bool columnar() const {
    return options_.layout == LayoutKind::kApax ||
           options_.layout == LayoutKind::kAmax;
  }
  std::string NextComponentPath();
  Status FlushColumnar(ComponentWriter* writer);
  Status FlushRows(ComponentWriter* writer);
  /// Emit a columnar leaf if the pending chunks reached the layout's
  /// budget; `force` emits any pending records.
  Status MaybeEmitColumnarLeaf(ColumnWriterSet* writers,
                               ComponentWriter* writer, bool force);
  Status OpenAndInstallComponent(const std::string& path, size_t position);
  /// Merge components_[0..count-1] (the `count` newest) into one.
  Status MergeRange(size_t count);
  Status MergeRowRange(size_t count, ComponentWriter* writer);
  Status MergeColumnarRange(size_t count, ComponentWriter* writer);
  std::unique_ptr<TupleCursor> NewComponentCursor(
      const Component& component, const Projection& projection) const;

  DatasetOptions options_;
  BufferCache* cache_;
  const RowCodec* row_codec_;
  MemTable memtable_;
  std::optional<Schema> schema_;  // columnar layouts only
  std::vector<std::unique_ptr<Component>> components_;  // newest first
  uint64_t next_component_id_ = 1;
  DatasetStats stats_;
};

}  // namespace lsmcol

#endif  // LSMCOL_LSM_DATASET_H_
