// Dataset: the primary LSM index of one document collection. Usually
// owned by a Store (src/store/store.h), which names datasets and shares
// one BufferCache across them; standalone use via Dataset::Open works too.
//
// Durability: every dataset keeps a `<dir>/<name>.MANIFEST` recording its
// live components, next component id, identity, and (columnar layouts)
// the latest schema. Dataset::Open recovers from it; flushes and merges
// write new components to `*.tmp`, rename(2) them into place, then
// atomically rewrite the manifest — so a crash at any point leaves a
// consistent, reopenable dataset (see src/storage/manifest.h). Only the
// in-memory components (active memtable + sealed immutables) are
// volatile: call Flush() to persist them.
//
// Writes go to the in-memory component (row format; VB for the columnar
// layouts, §4.5). When the memtable budget is exceeded, the component is
// flushed: row layouts write slotted leaves; columnar layouts run the
// tuple compactor (schema inference) and shred records into APAX pages or
// AMAX mega leaves. Flushes trigger the configured compaction policy
// (DatasetOptions::compaction, src/lsm/compaction_policy.h; the default
// reproduces the paper's tiering setup — size ratio 1.2, max 5
// components, §6.3); columnar components merge with the *vertical merge*
// of §4.5.3 (keys first, then one column at a time).
//
// Concurrency: with DatasetOptions::scheduler set, a full memtable is
// *rotated* onto an immutable list and flushed by a background worker
// while writers continue into a fresh memtable; merges likewise run in
// the background. The threading model (documented in detail in
// docs/ARCHITECTURE.md) is:
//
//   * `mu_` guards all mutable dataset state: the active memtable (and
//     its COW swap), the immutable-memtable list, the component list,
//     the schema pointer, and counters/stats. Manifest rewrites are
//     serialized by a dedicated writer role; their contents are
//     snapshotted under `mu_` but the fsync-heavy write itself runs with
//     the lock released, like the component builds.
//   * Component/memtable/schema *contents* are never mutated after
//     publication; snapshots share them via shared_ptr (whose refcounts
//     are atomic), so reads run lock-free after the brief GetSnapshot
//     critical section, and include the immutable memtables.
//   * Several sealed memtables may be *built* into components in
//     parallel (one flush task per sealed memtable), but publication is
//     strictly ordered oldest-first, so the component list always agrees
//     with the reconciliation order. Columnar builds detect concurrent
//     schema inference at publish time and rebuild against the new base
//     (rare — only while the schema is still being discovered). At most
//     one merge runs at a time; it captures its inputs by reference and
//     republishes in place, so merges overlap flushes safely.
//   * Writers stall (back-pressure) when immutable memtables or the
//     component count pile up faster than the background work drains
//     them (max_immutable_memtables; the compaction policy's
//     stall_component_limit).
//
// Without a scheduler everything above collapses to the historical
// synchronous behavior — Insert flushes and merges inline — but the same
// locked publication paths run, so concurrent readers are always safe.
//
// Reads execute against a Snapshot (src/lsm/snapshot.h): an immutable,
// refcounted view pinning the active memtable, the immutable memtables,
// and the component list, reconciling sources by primary key — newest
// component winning, anti-matter annihilating older records (§2.1.1,
// §4.4). The Scan/Lookup/NewLookupBatch members below are convenience
// overloads that take an implicit snapshot of the current state.

#ifndef LSMCOL_LSM_DATASET_H_
#define LSMCOL_LSM_DATASET_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/lsm/compaction_policy.h"
#include "src/lsm/component.h"
#include "src/lsm/memtable.h"
#include "src/lsm/options.h"
#include "src/lsm/scheduler.h"
#include "src/lsm/snapshot.h"
#include "src/storage/manifest.h"
#include "src/storage/wal.h"

namespace lsmcol {

/// Ingestion + flush/merge statistics (not persisted; reset at Open).
struct DatasetStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t flushes = 0;
  uint64_t merges = 0;
  /// Input bytes of *published* merges (failed merges do not count).
  uint64_t merged_bytes_in = 0;
  /// Times a writer stalled on back-pressure (scheduler mode only).
  uint64_t write_stalls = 0;

  // Amplification accounting (the currency compaction policies trade
  // in; bench_ablation_compaction --json reports these). All byte
  // counters tally *published* components only, so failed builds never
  // skew the ratios.
  uint64_t flush_bytes_out = 0;  ///< component bytes written by flushes
  uint64_t merge_bytes_out = 0;  ///< component bytes written by merges
  /// Output size of the latest full (all-components) merge — the best
  /// known lower bound on the live data size; 0 until one runs.
  uint64_t last_full_merge_bytes = 0;
  /// Gauge (not a counter): current on-disk component bytes, filled by
  /// Dataset::stats() at read time.
  uint64_t on_disk_bytes = 0;

  /// Cumulative write amplification: total component bytes written per
  /// byte a flush first persisted. 1.0 means data was written exactly
  /// once (no merges yet); tiered stays low, leveled pays more for a
  /// shallower read path. 0 before the first flush.
  double write_amplification() const {
    if (flush_bytes_out == 0) return 0.0;
    return static_cast<double>(flush_bytes_out + merge_bytes_out) /
           static_cast<double>(flush_bytes_out);
  }
  /// Space amplification estimate: on-disk bytes per live-data byte,
  /// using the latest full merge's output as the live-size baseline
  /// (an estimate — stale by whatever was ingested since that merge).
  /// 0 until a full merge establishes a baseline.
  double space_amplification() const {
    if (last_full_merge_bytes == 0) return 0.0;
    return static_cast<double>(on_disk_bytes) /
           static_cast<double>(last_full_merge_bytes);
  }

  // Merge pipeline observability (bench_ablation_merge --json reports
  // these). Row merges fill the record and time counters; runs/adoption
  // are columnar run-level merge concepts.
  uint64_t merge_records_in = 0;      ///< input entries merges scanned
  uint64_t merge_records_out = 0;     ///< surviving entries merges wrote
  uint64_t merge_runs_copied = 0;     ///< survivor-plan runs copied
  uint64_t merge_leaves_adopted = 0;  ///< whole leaves spliced undecoded
  uint64_t merge_micros = 0;          ///< wall time inside merge builds

  // Write-ahead-log observability (zero when DatasetOptions::wal is off).
  uint64_t wal_appends = 0;            ///< records logged
  uint64_t wal_syncs = 0;              ///< physical fsyncs the log issued
  uint64_t wal_bytes = 0;              ///< framed record bytes written
  uint64_t wal_group_entries_max = 0;  ///< largest single-fsync commit group
  uint64_t wal_rotations = 0;          ///< segments sealed at memtable seal
  uint64_t wal_replayed_records = 0;   ///< records recovered at Open

  // I/O fault-tolerance observability (see DatasetOptions::io_retry and
  // Component quarantine semantics in src/lsm/component.h).
  uint64_t io_retries = 0;  ///< transient I/O errors retried (incl. WAL)
  uint64_t io_retry_backoff_micros = 0;  ///< total backoff slept
  uint64_t checksum_failures = 0;  ///< damaged component reads observed
  uint64_t quarantined_components = 0;  ///< components quarantined so far

  // Integrity-scrub observability (see src/lsm/scrubber.h; all zero until
  // a scrub runs against this dataset).
  uint64_t scrub_leaves = 0;        ///< leaves re-read and verified
  uint64_t scrub_bytes = 0;         ///< leaf payload bytes re-read
  uint64_t scrub_damage_found = 0;  ///< scrub probes that surfaced damage
  uint64_t scrub_passes = 0;        ///< full dataset passes completed
  uint64_t scrub_micros = 0;        ///< wall time inside scrub probes
};

/// One merge's execution counters, filled by the build (which runs without
/// the dataset lock) and folded into DatasetStats at publish time.
struct MergeOutcome {
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  uint64_t runs_copied = 0;
  uint64_t leaves_adopted = 0;
};

/// Everything a consistent hot backup needs from one dataset, captured in
/// a single Dataset::BeginBackup critical section: the pinned snapshot
/// keeps every component file alive (a concurrent merge may unpublish
/// them, but the pinned references defer deletion), the manifest mirrors
/// exactly that component list, and the WAL cut bounds which log records
/// belong to the backup (everything acknowledged at pin time). Release
/// with Dataset::EndBackup — the pin also defers WAL segment deletion so
/// the segments named by [wal_first_segment, wal_last_segment] stay
/// copyable while the backup runs.
struct DatasetBackupPin {
  std::string name;
  std::string dir;               ///< dataset directory (source of copies)
  Snapshot::Ref snapshot;        ///< pins the component files on disk
  Manifest manifest;             ///< constructed at pin time, not read back
  bool wal_enabled = false;
  uint64_t wal_cut_lsn = 0;      ///< last acknowledged LSN at pin time
  uint64_t wal_first_segment = 1;  ///< lowest segment still covering data
  uint64_t wal_last_segment = 0;   ///< active segment at pin time
};

/// \brief One document collection stored in a primary LSM index.
class Dataset {
 public:
  using LookupBatch = ::lsmcol::LookupBatch;  // pre-Snapshot spelling

  /// Create-or-recover: validates `options` (see ValidateDatasetOptions),
  /// creates `options.dir` if missing, then either recovers the dataset
  /// recorded by `<dir>/<name>.MANIFEST` — removing stale `*.tmp` and
  /// unreferenced component files first — or initializes an empty dataset
  /// and writes its first manifest. Recovery fails with InvalidArgument
  /// when `options` contradict the manifest (layout, pk_field,
  /// page_size). `cache` must outlive the dataset and its snapshots.
  static Result<std::unique_ptr<Dataset>> Open(const DatasetOptions& options,
                                               BufferCache* cache);

  /// Back-compat alias of Open() (historically Create started empty;
  /// datasets are durable now, so "create" recovers existing state too).
  static Result<std::unique_ptr<Dataset>> Create(const DatasetOptions& options,
                                                 BufferCache* cache);

  /// Waits for this dataset's in-flight background flushes/merges (they
  /// reference the dataset), then tears down. Sealed memtables queued for
  /// flush ARE flushed (the background drain completes); only the active
  /// memtable is lost — same contract as before: Flush() first.
  ~Dataset();

  /// Insert or replace (upsert) a record. The record must carry the int64
  /// primary-key field. May trigger a flush — inline without a scheduler,
  /// in the background (plus possible back-pressure stall) with one.
  /// Thread-safe; any number of concurrent writers in scheduler mode.
  /// Surfaces (and clears) a pending background flush/merge error by
  /// rejecting the write, so pure-ingest callers see failures promptly
  /// and the sealed-memtable backlog stays bounded.
  Status Insert(const Value& record) LSMCOL_EXCLUDES(mu_);
  Status InsertJson(std::string_view json) LSMCOL_EXCLUDES(mu_);

  /// Delete by key (blind; adds anti-matter if needed).
  Status Delete(int64_t key) LSMCOL_EXCLUDES(mu_);

  /// Persist all in-memory state: rotates the active memtable and drains
  /// every sealed memtable to disk on the calling thread (deterministic —
  /// the test/bench entry point). Surfaces any error a background flush
  /// or merge hit earlier. With auto_merge and a scheduler, follow-up
  /// merges are scheduled, not awaited; without one they run inline.
  Status Flush() LSMCOL_EXCLUDES(mu_);

  /// Run the compaction policy until it is satisfied (inline).
  Status MaybeMerge() LSMCOL_EXCLUDES(mu_);
  /// Merge every on-disk component into one (flushes first).
  Status MergeAll() LSMCOL_EXCLUDES(mu_);

  /// Block until no background flush or merge for this dataset is queued
  /// or running and no sealed memtable awaits flush. Returns (and clears)
  /// the first error background work hit, if any. After it returns OK
  /// and absent concurrent writers, all ingested data is durable except
  /// the active memtable.
  Status WaitForBackgroundWork() LSMCOL_EXCLUDES(mu_);

  /// An immutable, refcounted view of the current state. Later inserts,
  /// flushes, and merges never disturb it; components it pins survive
  /// (on disk and in memory) until the last reference drops. Taking a
  /// snapshot is O(component count) — no data is copied (writers
  /// copy-on-write the shared memtable instead). Thread-safe.
  Snapshot::Ref GetSnapshot() const LSMCOL_EXCLUDES(mu_);

  // Convenience reads over an implicit snapshot of the current state.
  // The returned cursors/batches pin that snapshot, so they stay valid
  // across subsequent writes. See Snapshot for semantics.
  Result<std::unique_ptr<LsmScanCursor>> Scan(const Projection& projection);
  Status Lookup(int64_t key, Value* out);
  Status Lookup(int64_t key, const Projection& projection, Value* out);
  Result<std::unique_ptr<LookupBatch>> NewLookupBatch(
      const Projection& projection);

  // --- Introspection ---
  // Counters/counts are thread-safe. The reference-returning accessors
  // (component(i), memtable(), schema()) hand out state that a concurrent
  // flush/merge may unpublish — call them only on a quiescent dataset
  // (tests, benches) or read through a Snapshot instead.
  const DatasetOptions& options() const { return options_; }
  LayoutKind layout() const { return options_.layout; }
  /// Live schema (columnar layouts only; nullptr for Open/VB).
  const Schema* schema() const LSMCOL_EXCLUDES(mu_);
  const RowCodec& row_codec() const { return *row_codec_; }
  BufferCache* cache() { return cache_; }
  size_t component_count() const LSMCOL_EXCLUDES(mu_);
  const Component& component(size_t i) const LSMCOL_EXCLUDES(mu_);
  const MemTable& memtable() const LSMCOL_EXCLUDES(mu_) {
    // The lock covers the pointer read; the reference stays valid only
    // under this accessor's quiescence contract (see above).
    MutexLock lock(&mu_);
    return *memtable_;
  }
  /// Sealed memtables awaiting background flush (0 without a scheduler).
  size_t immutable_memtable_count() const LSMCOL_EXCLUDES(mu_);
  uint64_t OnDiskBytes() const LSMCOL_EXCLUDES(mu_);
  DatasetStats stats() const LSMCOL_EXCLUDES(mu_);
  /// Version of the durable state; bumps on every manifest rewrite.
  uint64_t manifest_sequence() const LSMCOL_EXCLUDES(mu_);
  /// Peek at the pending background error without consuming it (Flush/
  /// WaitForBackgroundWork clear it; health monitoring must not).
  Status background_error() const LSMCOL_EXCLUDES(mu_);
  /// Sticky: the first error any background flush/merge/manifest write
  /// ever hit, never cleared by the retry paths that clear
  /// background_error(). Health monitoring's "something went wrong since
  /// open" signal.
  Status last_background_error() const LSMCOL_EXCLUDES(mu_);
  /// The WAL's sticky failed-closed error (OK when the WAL is disabled or
  /// healthy). While non-OK the log rejects writes ("wedged") until a
  /// rotation recovers it — surfaced through Store::Health().
  Status wal_status() const;
  bool wal_enabled() const { return wal_ != nullptr; }
  /// Currently quarantined on-disk components: {component_id, reason}.
  std::vector<std::pair<uint64_t, Status>> QuarantineList() const
      LSMCOL_EXCLUDES(mu_);

  // --- Integrity scrub / backup / repair (see src/lsm/scrubber.h and
  // src/store/backup.h for the drivers) ---

  /// Fold one scrub slice's counters into DatasetStats. When the slice
  /// surfaced damage, the first-damage record is also pushed into the
  /// manifest (best effort) so a restart cannot silently "heal" it.
  void NoteScrub(uint64_t leaves, uint64_t bytes, uint64_t damaged,
                 uint64_t micros, bool pass_complete) LSMCOL_EXCLUDES(mu_);
  /// Persist any quarantine records not yet recorded in the manifest
  /// (no-op when none are pending). Called by the scrubber; recovery
  /// re-applies the records via RecoverFromManifest.
  Status PersistDamageRecords() LSMCOL_EXCLUDES(mu_);

  /// Pin a consistent backup view (see DatasetBackupPin). Fails if any
  /// pinned component is quarantined (a backup must never capture known
  /// damage). On success the WAL (if enabled) has been synced through the
  /// cut LSN and segment deletion is deferred until EndBackup — every
  /// successful BeginBackup must be paired with exactly one EndBackup.
  Status BeginBackup(DatasetBackupPin* pin) LSMCOL_EXCLUDES(mu_);
  void EndBackup() LSMCOL_EXCLUDES(mu_);

  /// Replace every quarantined component's file with a verified copy from
  /// `backup_dir` (a directory written by Store::CreateBackup whose
  /// catalog lists a component with the same id), clear its quarantine,
  /// and resume merges. Components without a matching intact backup copy
  /// stay quarantined and are reported in the returned status; the rest
  /// are still repaired. No-op (OK) when nothing is quarantined.
  Status RepairQuarantined(const std::string& backup_dir)
      LSMCOL_EXCLUDES(mu_);

 private:
  Dataset(const DatasetOptions& options, BufferCache* cache);

  bool columnar() const {
    return options_.layout == LayoutKind::kApax ||
           options_.layout == LayoutKind::kAmax;
  }
  std::string ComponentFilePath(uint64_t id) const;
  /// The memtable, detached from live snapshots (copy-on-write).
  MemTable* MutableMemtableLocked() LSMCOL_REQUIRES(mu_);
  /// Clone of the current schema via a serialization round-trip (ids and
  /// counters survive exactly). Called under mu_; the clone is private to
  /// the caller until it is published back into schema_.
  Result<std::shared_ptr<Schema>> CloneSchemaLocked() LSMCOL_REQUIRES(mu_);

  /// The locked phase of Open (recovery, first manifest, WAL replay);
  /// an instance method so the capability is this->mu_ throughout.
  Status OpenLocked(const DatasetOptions& validated) LSMCOL_REQUIRES(mu_);

  // --- Write path (all *Locked REQUIRE mu_ held; the flush/merge
  // workers drop it — mu_.Unlock()/Lock(), rebalanced before returning —
  // for the expensive component build and re-take it to publish).
  Status InsertEncoded(int64_t key, Buffer row, bool anti_matter)
      LSMCOL_EXCLUDES(mu_);
  /// Seal the active memtable onto the immutable list (no-op if empty).
  /// With the WAL enabled this also seals the active log segment, so the
  /// sealed memtable and its covering segments retire together; the seal
  /// can fail (it syncs the segment tail), in which case the memtable
  /// stays active.
  Status RotateMemtableLocked() LSMCOL_REQUIRES(mu_);
  /// Enqueue flush tasks (up to one per sealed memtable, so the pool can
  /// build them in parallel). Returns false only when the scheduler was
  /// stopped AND no task is in flight — the caller must flush inline.
  bool ScheduleFlushLocked() LSMCOL_REQUIRES(mu_);
  /// Enqueue the merge task if the policy wants one and none is pending.
  void ScheduleMergeLocked() LSMCOL_REQUIRES(mu_);
  /// Back-pressure predicate: true when a write may proceed (or must
  /// fail fast — background error / shutdown).
  bool HasWriteRoomLocked(size_t component_stall) const
      LSMCOL_REQUIRES(mu_);
  /// Back-pressure: stall until background work catches up (or fails).
  void WaitForWriteRoomLocked() LSMCOL_REQUIRES(mu_);
  /// Scheduler task bodies.
  void BackgroundFlushTask() LSMCOL_EXCLUDES(mu_);
  void BackgroundMergeTask() LSMCOL_EXCLUDES(mu_);
  /// Index (in immutables_) of the oldest sealed memtable no build has
  /// claimed; -1 when all are claimed or the list is empty.
  int OldestUnclaimedLocked() const LSMCOL_REQUIRES(mu_);
  /// Flush every sealed memtable on the calling thread: claim-and-build
  /// all unclaimed ones, then wait out in-flight background builds.
  /// Stops early on a background error (callers surface and clear
  /// background_error_).
  void DrainImmutablesLocked() LSMCOL_REQUIRES(mu_);
  /// Claim the oldest unclaimed sealed memtable, build its component
  /// (mu_ dropped around the build), wait for publication order, publish.
  /// Every failure is recorded in background_error_ (so concurrent builds
  /// waiting for publication order wake and abandon) as well as returned.
  Status FlushOneImmutableLocked() LSMCOL_REQUIRES(mu_);
  /// The build step of a flush (runs without mu_): writes `tmp`, renames
  /// to `path`, opens the finished component.
  Result<std::shared_ptr<Component>> BuildFlushComponent(
      const MemTable& memtable, uint64_t id, const std::string& tmp,
      const std::string& path, Schema* schema);
  Status FlushColumnar(const MemTable& memtable, ComponentWriter* writer,
                       Schema* schema);
  Status FlushRows(const MemTable& memtable, ComponentWriter* writer);
  /// Emit a columnar leaf if the pending chunks reached the layout's
  /// budget; `force` emits any pending records.
  Status MaybeEmitColumnarLeaf(ColumnWriterSet* writers,
                               ComponentWriter* writer, bool force);
  /// One round of the compaction policy: snapshot the component stack
  /// into CompactionComponentViews and ask compaction_policy_ for the
  /// next merge range (plan.none() = policy satisfied). The caller must
  /// hold the merge role before acting on the answer.
  CompactionPlan PickMergePlanLocked() const LSMCOL_REQUIRES(mu_);
  /// Merge the `count` adjacent components starting at newest-first
  /// position `begin` into one and republish in place (mu_ dropped
  /// around the build). Anti-matter annihilates only when the range
  /// reaches the oldest component.
  Status MergeRangeLocked(size_t begin, size_t count) LSMCOL_REQUIRES(mu_);
  Status MergeRows(const std::vector<std::shared_ptr<Component>>& inputs,
                   bool includes_oldest, ComponentWriter* writer,
                   MergeOutcome* outcome);
  /// Run-level columnar merge (the default pipeline): a batched PK phase
  /// emits a run-length survivor plan, then columns move run-at-a-time
  /// with a whole-leaf adoption fast path. `outcome->records_out` is the
  /// exact surviving entry count (becomes ComponentMeta::entry_count).
  Status MergeColumnar(const std::vector<std::shared_ptr<Component>>& inputs,
                       bool includes_oldest, ComponentWriter* writer,
                       Schema* schema, MergeOutcome* outcome);
  /// Reference pipeline: one record per step (the pre-run-level behavior),
  /// selected by DatasetOptions::merge_pipeline for ablation/verification.
  Status MergeColumnarRecordAtATime(
      const std::vector<std::shared_ptr<Component>>& inputs,
      bool includes_oldest, ComponentWriter* writer, Schema* schema,
      MergeOutcome* outcome);
  /// Rebuild + atomically rewrite the manifest from current state. The
  /// contents are snapshotted under mu_, but the write itself (fsync +
  /// rename + dir fsync) runs with the lock released under a dedicated
  /// writer role (manifest_writing_), so flush/merge publications do not
  /// stall writers on durable I/O; rewrites stay fully serialized.
  Status WriteCurrentManifestLocked() LSMCOL_REQUIRES(mu_);
  Status RecoverFromManifest(const Manifest& manifest) LSMCOL_REQUIRES(mu_);
  /// Record a background failure in both the consumable and the sticky
  /// error (first error wins in each).
  void RecordBackgroundErrorLocked(const Status& st) LSMCOL_REQUIRES(mu_);
  /// Drain new first-damage records from the shared fault counters' log
  /// into persisted_damage_ (the manifest-bound map).
  void AbsorbDamageLogLocked() LSMCOL_REQUIRES(mu_);
  /// Rewrite the manifest iff damage records absorbed so far have not all
  /// been through a successful rewrite yet.
  Status MaybePersistDamageLocked() LSMCOL_REQUIRES(mu_);
  /// Snapshot acquisition body (GetSnapshot's critical section), callable
  /// from paths that already hold mu_ (BeginBackup).
  Snapshot::Ref GetSnapshotLocked() const LSMCOL_REQUIRES(mu_);

  /// Run `op` (returning Status or Result<T>), retrying transient
  /// IOError-class failures per options_.io_retry with capped exponential
  /// backoff. Corruption/checksum failures are never retried (damage does
  /// not heal; quarantine should not be delayed). Called in unlocked
  /// regions only — the backoff sleeps. Retry counts land in the atomic
  /// tallies below.
  template <typename Op>
  auto RunWithRetry(Op&& op) -> decltype(op()) {
    int attempt = 0;
    for (;;) {
      auto result = op();
      Status st;
      if constexpr (std::is_same_v<decltype(op()), Status>) {
        st = result;
      } else {
        st = result.status();
      }
      if (st.ok() || !st.IsIOError() ||
          attempt >= options_.io_retry.max_retries) {
        return result;
      }
      const uint64_t delay =
          std::min(options_.io_retry.max_backoff_micros,
                   options_.io_retry.initial_backoff_micros << attempt);
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
      io_retries_.fetch_add(1, std::memory_order_relaxed);
      io_retry_backoff_micros_.fetch_add(delay, std::memory_order_relaxed);
      ++attempt;
    }
  }

  DatasetOptions options_;
  BufferCache* cache_;
  const RowCodec* row_codec_;
  FlushMergeScheduler* scheduler_;  // nullptr = synchronous mode
  /// Merge selection + writer-stall bound (see compaction_policy.h).
  /// Set once in the constructor, immutable and internally stateless
  /// afterwards, so it is callable without mu_ (PickMergePlanLocked
  /// holds mu_ only for the component snapshot it passes in).
  std::unique_ptr<CompactionPolicy> compaction_policy_;

  /// Guards every LSMCOL_GUARDED_BY(mu_) field below; see the threading
  /// model above. ACQUIRED_BEFORE declares the one cross-subsystem order
  /// edge statically: the write path appends to the WAL (whose mutex is
  /// acquired inside) while holding mu_, never the other way around. The
  /// runtime rank checker (kDataset < kWal) enforces the same order.
  mutable Mutex mu_ LSMCOL_ACQUIRED_BEFORE(wal_->mu_);
  /// Signaled whenever background state changes (task start/finish,
  /// publication, rotation): wakes back-pressure stalls, Flush() waiting
  /// for the flush role, WaitForBackgroundWork, and the destructor.
  mutable CondVar work_cv_;

  /// Active memtable; shared with snapshots (COW).
  std::shared_ptr<MemTable> memtable_ LSMCOL_GUARDED_BY(mu_);
  /// Sealed memtables awaiting flush, newest first (matches the snapshot
  /// reconciliation order). Never mutated after rotation.
  std::vector<std::shared_ptr<const MemTable>> immutables_
      LSMCOL_GUARDED_BY(mu_);
  /// Parallel to immutables_: claimed by an in-flight component build.
  std::vector<bool> immutable_claimed_ LSMCOL_GUARDED_BY(mu_);
  /// Parallel to immutables_ when the WAL is on: the newest WAL segment
  /// covering that memtable's writes. When the memtable's flush becomes
  /// manifest-durable, every segment up to this sequence is deletable and
  /// wal_floor_ advances past it.
  std::vector<uint64_t> immutable_wal_upto_ LSMCOL_GUARDED_BY(mu_);
  /// Columnar layouts only (COW).
  std::shared_ptr<Schema> schema_ LSMCOL_GUARDED_BY(mu_);
  /// On-disk components, newest first.
  std::vector<std::shared_ptr<Component>> components_ LSMCOL_GUARDED_BY(mu_);

  // Background-task state (all under mu_).
  /// Queued-or-running background flush tasks.
  size_t flush_tasks_ LSMCOL_GUARDED_BY(mu_) = 0;
  /// Claimed sealed memtables (builds in flight).
  size_t flush_building_ LSMCOL_GUARDED_BY(mu_) = 0;
  bool merge_queued_ LSMCOL_GUARDED_BY(mu_) = false;
  bool merge_active_ LSMCOL_GUARDED_BY(mu_) = false;
  /// Manifest-writer role (see WriteCurrentManifestLocked).
  bool manifest_writing_ LSMCOL_GUARDED_BY(mu_) = false;
  /// Destructor: merges stop, flushes drain.
  bool shutting_down_ LSMCOL_GUARDED_BY(mu_) = false;
  /// First error a background task hit; surfaced (and cleared) by the
  /// next Flush()/WaitForBackgroundWork(). While set, back-pressure
  /// stalls are released so writers fail fast instead of hanging.
  Status background_error_ LSMCOL_GUARDED_BY(mu_);
  /// Sticky twin of background_error_: set once, never cleared, so health
  /// monitoring sees failures the write path already surfaced-and-cleared.
  Status last_background_error_ LSMCOL_GUARDED_BY(mu_);

  // --- Damage persistence (manifest v4 first-damage records) ---
  /// Damage records bound for (or recovered from) the manifest, keyed by
  /// component id. Repair erases its victim's entry; the manifest writer
  /// prunes entries whose component is gone.
  std::map<uint64_t, ManifestDamageEntry> persisted_damage_
      LSMCOL_GUARDED_BY(mu_);
  /// Prefix of fault_counters_->damage_log already drained into
  /// persisted_damage_.
  uint64_t damage_consumed_ LSMCOL_GUARDED_BY(mu_) = 0;
  /// Highest damage_consumed_ value included in a successful manifest
  /// rewrite (monotone; MaybePersistDamageLocked compares against it).
  uint64_t damage_persisted_upto_ LSMCOL_GUARDED_BY(mu_) = 0;

  // --- Backup / repair state ---
  /// Live backup pins. While non-zero, WAL segment deletion is deferred
  /// (the backup may still be copying segments the floor moved past).
  size_t backup_holds_ LSMCOL_GUARDED_BY(mu_) = 0;
  /// Highest WAL floor whose segment deletion was deferred by a backup.
  uint64_t wal_pending_delete_floor_ LSMCOL_GUARDED_BY(mu_) = 0;
  /// At most one RepairQuarantined runs at a time.
  bool repairing_ LSMCOL_GUARDED_BY(mu_) = false;

  /// Write-ahead log; nullptr when DatasetOptions::wal.enabled is false.
  /// The pointer itself is set once during Open (before the dataset is
  /// visible to any other thread) and never reseated, so it is readable
  /// without mu_; the log object is internally synchronized. Appends
  /// happen under mu_ (log order == memtable apply order); the fsync wait
  /// (WriteAheadLog::Sync) runs after mu_ is released so concurrent
  /// writers coalesce into one group commit. The WAL takes no dataset
  /// lock, so mu_ -> wal_->mu_ is the only cross-subsystem lock order
  /// (declared on mu_ above).
  std::unique_ptr<WriteAheadLog> wal_;
  /// Lowest WAL segment that may still hold unflushed writes; recorded in
  /// every manifest rewrite, advanced at flush publication.
  uint64_t wal_floor_ LSMCOL_GUARDED_BY(mu_) = 1;

  uint64_t next_component_id_ LSMCOL_GUARDED_BY(mu_) = 1;
  uint64_t manifest_sequence_ LSMCOL_GUARDED_BY(mu_) = 0;
  /// Set when a manifest rewrite failed after in-memory state advanced;
  /// the next Flush() (even with nothing to flush) retries the rewrite so
  /// a retried-then-OK Flush never reports unrecorded state as durable.
  bool manifest_dirty_ LSMCOL_GUARDED_BY(mu_) = false;
  /// Set once in the constructor; immutable afterwards.
  std::string manifest_path_;
  DatasetStats stats_ LSMCOL_GUARDED_BY(mu_);

  /// Data-damage tallies shared with every Component this dataset opens
  /// (see ComponentFaultCounters); created once in the constructor.
  std::shared_ptr<ComponentFaultCounters> fault_counters_;
  /// Transient-retry tallies (atomic: bumped by RunWithRetry in unlocked
  /// regions, read by stats()).
  mutable std::atomic<uint64_t> io_retries_{0};
  mutable std::atomic<uint64_t> io_retry_backoff_micros_{0};
};

}  // namespace lsmcol

#endif  // LSMCOL_LSM_DATASET_H_
