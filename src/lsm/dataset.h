// Dataset: the primary LSM index of one document collection. Usually
// owned by a Store (src/store/store.h), which names datasets and shares
// one BufferCache across them; standalone use via Dataset::Open works too.
//
// Durability: every dataset keeps a `<dir>/<name>.MANIFEST` recording its
// live components, next component id, identity, and (columnar layouts)
// the latest schema. Dataset::Open recovers from it; flushes and merges
// write new components to `*.tmp`, rename(2) them into place, then
// atomically rewrite the manifest — so a crash at any point leaves a
// consistent, reopenable dataset (see src/storage/manifest.h). Only the
// memtable is volatile: call Flush() to persist it.
//
// Writes go to the in-memory component (row format; VB for the columnar
// layouts, §4.5). When the memtable budget is exceeded, the component is
// flushed: row layouts write slotted leaves; columnar layouts run the
// tuple compactor (schema inference) and shred records into APAX pages or
// AMAX mega leaves. Flushes trigger the tiering merge policy (size ratio
// 1.2, max 5 components, §6.3); columnar components merge with the
// *vertical merge* of §4.5.3 (keys first, then one column at a time).
//
// Reads execute against a Snapshot (src/lsm/snapshot.h): an immutable,
// refcounted view pinning the memtable and component list, reconciling
// sources by primary key — newest component winning, anti-matter
// annihilating older records (§2.1.1, §4.4). The Scan/Lookup/
// NewLookupBatch members below are convenience overloads that take an
// implicit snapshot of the current state.

#ifndef LSMCOL_LSM_DATASET_H_
#define LSMCOL_LSM_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "src/lsm/component.h"
#include "src/lsm/memtable.h"
#include "src/lsm/options.h"
#include "src/lsm/snapshot.h"
#include "src/storage/manifest.h"

namespace lsmcol {

/// Ingestion + flush/merge statistics (not persisted; reset at Open).
struct DatasetStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t flushes = 0;
  uint64_t merges = 0;
  uint64_t merged_bytes_in = 0;
};

/// \brief One document collection stored in a primary LSM index.
class Dataset {
 public:
  using LookupBatch = ::lsmcol::LookupBatch;  // pre-Snapshot spelling

  /// Create-or-recover: validates `options` (see ValidateDatasetOptions),
  /// creates `options.dir` if missing, then either recovers the dataset
  /// recorded by `<dir>/<name>.MANIFEST` — removing stale `*.tmp` and
  /// unreferenced component files first — or initializes an empty dataset
  /// and writes its first manifest. Recovery fails with InvalidArgument
  /// when `options` contradict the manifest (layout, pk_field,
  /// page_size). `cache` must outlive the dataset and its snapshots.
  static Result<std::unique_ptr<Dataset>> Open(const DatasetOptions& options,
                                               BufferCache* cache);

  /// Back-compat alias of Open() (historically Create started empty;
  /// datasets are durable now, so "create" recovers existing state too).
  static Result<std::unique_ptr<Dataset>> Create(const DatasetOptions& options,
                                                 BufferCache* cache);

  ~Dataset();

  /// Insert or replace (upsert) a record. The record must carry the int64
  /// primary-key field. May trigger a flush (and merges).
  Status Insert(const Value& record);
  Status InsertJson(std::string_view json);

  /// Delete by key (blind; adds anti-matter if needed).
  Status Delete(int64_t key);

  /// Force-flush the in-memory component.
  Status Flush();

  /// Run the tiering merge policy until it is satisfied.
  Status MaybeMerge();
  /// Merge every on-disk component into one.
  Status MergeAll();

  /// An immutable, refcounted view of the current state. Later inserts,
  /// flushes, and merges never disturb it; components it pins survive
  /// (on disk and in memory) until the last reference drops. Taking a
  /// snapshot is O(component count) — no data is copied (writers
  /// copy-on-write the shared memtable instead).
  Snapshot::Ref GetSnapshot() const;

  // Convenience reads over an implicit snapshot of the current state.
  // The returned cursors/batches pin that snapshot, so they stay valid
  // across subsequent writes. See Snapshot for semantics.
  Result<std::unique_ptr<LsmScanCursor>> Scan(const Projection& projection);
  Status Lookup(int64_t key, Value* out);
  Status Lookup(int64_t key, const Projection& projection, Value* out);
  Result<std::unique_ptr<LookupBatch>> NewLookupBatch(
      const Projection& projection);

  // --- Introspection ---
  const DatasetOptions& options() const { return options_; }
  LayoutKind layout() const { return options_.layout; }
  /// Live schema (columnar layouts only; nullptr for Open/VB).
  const Schema* schema() const { return schema_.get(); }
  const RowCodec& row_codec() const { return *row_codec_; }
  BufferCache* cache() { return cache_; }
  size_t component_count() const { return components_.size(); }
  const Component& component(size_t i) const { return *components_[i]; }
  const MemTable& memtable() const { return *memtable_; }
  uint64_t OnDiskBytes() const;
  const DatasetStats& stats() const { return stats_; }
  /// Version of the durable state; bumps on every manifest rewrite.
  uint64_t manifest_sequence() const { return manifest_sequence_; }

 private:
  Dataset(const DatasetOptions& options, BufferCache* cache);

  bool columnar() const {
    return options_.layout == LayoutKind::kApax ||
           options_.layout == LayoutKind::kAmax;
  }
  std::string ComponentFilePath(uint64_t id) const;
  /// The memtable, detached from live snapshots (copy-on-write).
  MemTable* MutableMemtable();
  /// The schema, detached from live snapshots (copy-on-write via a
  /// serialization round-trip; ids and counters survive exactly).
  Result<Schema*> MutableSchema();
  Status FlushColumnar(ComponentWriter* writer, Schema* schema);
  Status FlushRows(ComponentWriter* writer);
  /// Emit a columnar leaf if the pending chunks reached the layout's
  /// budget; `force` emits any pending records.
  Status MaybeEmitColumnarLeaf(ColumnWriterSet* writers,
                               ComponentWriter* writer, bool force);
  /// Merge components_[0..count-1] (the `count` newest) into one.
  Status MergeRange(size_t count);
  Status MergeRowRange(size_t count, ComponentWriter* writer);
  Status MergeColumnarRange(size_t count, ComponentWriter* writer,
                            Schema* schema);
  /// Rebuild + atomically rewrite the manifest from current state.
  Status WriteCurrentManifest();
  Status RecoverFromManifest(const Manifest& manifest);

  DatasetOptions options_;
  BufferCache* cache_;
  const RowCodec* row_codec_;
  std::shared_ptr<MemTable> memtable_;  // shared with snapshots (COW)
  std::shared_ptr<Schema> schema_;      // columnar layouts only (COW)
  std::vector<std::shared_ptr<Component>> components_;  // newest first
  uint64_t next_component_id_ = 1;
  uint64_t manifest_sequence_ = 0;
  /// Set when a manifest rewrite failed after in-memory state advanced;
  /// the next Flush() (even of an empty memtable) retries the rewrite so
  /// a retried-then-OK Flush never reports unrecorded state as durable.
  bool manifest_dirty_ = false;
  std::string manifest_path_;
  DatasetStats stats_;
};

}  // namespace lsmcol

#endif  // LSMCOL_LSM_DATASET_H_
