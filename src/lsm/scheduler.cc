#include "src/lsm/scheduler.h"

#include <utility>

namespace lsmcol {

FlushMergeScheduler::FlushMergeScheduler(int threads) {
  if (threads < 1) threads = 1;
  thread_count_ = threads;
  // No worker can observe a half-built pool: workers only touch state
  // under mu_, and the vector is fully populated before the constructor
  // returns (the analysis skips constructors; nothing else runs yet).
  MutexLock lock(&mu_);
  threads_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

FlushMergeScheduler::~FlushMergeScheduler() { Stop(); }

bool FlushMergeScheduler::Schedule(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return true;
}

bool FlushMergeScheduler::ScheduleLow(
    std::function<void()> task,
    std::chrono::steady_clock::time_point not_before) {
  {
    MutexLock lock(&mu_);
    if (stopping_) return false;
    low_queue_.emplace(not_before, std::move(task));
  }
  // NotifyAll, not NotifyOne: a worker parked on an earlier low-task
  // deadline must re-evaluate which deadline is now the soonest.
  cv_.NotifyAll();
  return true;
}

void FlushMergeScheduler::Stop() {
  // Claim the worker handles under the lock so concurrent Stop() calls
  // never join (or even touch) the same std::thread — the loser of the
  // race gets an empty vector and returns after signalling. Joining
  // happens outside the lock: workers must reacquire mu_ to drain.
  std::vector<std::thread> workers;
  {
    MutexLock lock(&mu_);
    stopping_ = true;
    low_queue_.clear();  // low lane is best-effort; drop, don't drain
    workers = std::move(threads_);
    threads_.clear();
  }
  cv_.NotifyAll();
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

uint64_t FlushMergeScheduler::tasks_run() const {
  MutexLock lock(&mu_);
  return tasks_run_;
}

uint64_t FlushMergeScheduler::low_tasks_run() const {
  MutexLock lock(&mu_);
  return low_tasks_run_;
}

void FlushMergeScheduler::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (true) {
        if (!queue_.empty()) {
          // High lane always wins, even while stopping: tasks carry
          // flushes whose callers rely on them eventually running
          // (Stop's contract).
          task = std::move(queue_.front());
          queue_.pop_front();
          ++tasks_run_;
          break;
        }
        if (stopping_) return;  // low lane dropped on stop (best-effort)
        if (!low_queue_.empty()) {
          auto due = low_queue_.begin()->first;
          if (due <= std::chrono::steady_clock::now()) {
            task = std::move(low_queue_.begin()->second);
            low_queue_.erase(low_queue_.begin());
            ++low_tasks_run_;
            break;
          }
          cv_.WaitUntil(&mu_, due);
          continue;
        }
        cv_.Wait(&mu_);
      }
    }
    task();
  }
}

}  // namespace lsmcol
