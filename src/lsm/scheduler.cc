#include "src/lsm/scheduler.h"

namespace lsmcol {

FlushMergeScheduler::FlushMergeScheduler(int threads) {
  if (threads < 1) threads = 1;
  threads_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

FlushMergeScheduler::~FlushMergeScheduler() { Stop(); }

bool FlushMergeScheduler::Schedule(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void FlushMergeScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Second Stop(): workers are already winding down; fall through to
      // join whatever is left (joinable() guards double-joins).
    }
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

uint64_t FlushMergeScheduler::tasks_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_run_;
}

void FlushMergeScheduler::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: tasks carry flushes whose
      // callers rely on them eventually running (Stop's contract).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++tasks_run_;
    }
    task();
  }
}

}  // namespace lsmcol
