#include "src/lsm/component.h"

#include <algorithm>

#include "src/encoding/lz.h"

namespace lsmcol {

void ComponentMeta::SerializeTo(Buffer* out, const Schema* schema) const {
  out->AppendByte(static_cast<uint8_t>(layout));
  out->AppendByte(compressed ? 1 : 0);
  out->AppendVarint64(component_id);
  out->AppendVarint64(entry_count);
  if (schema != nullptr) {
    Buffer blob;
    schema->SerializeTo(&blob);
    out->AppendVarint64(blob.size());
    out->Append(blob.slice());
  } else {
    out->AppendVarint64(0);
  }
}

Result<ComponentMeta> ComponentMeta::Parse(Slice input, Buffer* schema_blob) {
  BufferReader r(input);
  ComponentMeta meta;
  uint8_t layout = 0, compressed = 0;
  LSMCOL_RETURN_NOT_OK(r.ReadByte(&layout));
  if (layout > 3) return Status::Corruption("bad layout byte");
  meta.layout = static_cast<LayoutKind>(layout);
  LSMCOL_RETURN_NOT_OK(r.ReadByte(&compressed));
  meta.compressed = compressed != 0;
  LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&meta.component_id));
  LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&meta.entry_count));
  Slice blob;
  LSMCOL_RETURN_NOT_OK(r.ReadLengthPrefixed(&blob));
  schema_blob->clear();
  schema_blob->Append(blob);
  return meta;
}

Component::~Component() {
  if (obsolete_ && reader_ != nullptr) {
    // Deferred deletion of a merged-away component. A failure here only
    // leaks a file no manifest references; the next open sweeps it.
    Status st = reader_->Destroy();
    (void)st;
  }
}

Result<std::unique_ptr<Component>> Component::Open(const std::string& path,
                                                   BufferCache* cache,
                                                   size_t page_size) {
  std::unique_ptr<Component> component(new Component());
  LSMCOL_ASSIGN_OR_RETURN(component->reader_,
                          ComponentReader::Open(path, cache, page_size));
  Buffer schema_blob;
  LSMCOL_ASSIGN_OR_RETURN(
      component->meta_,
      ComponentMeta::Parse(component->reader_->metadata(), &schema_blob));
  const bool columnar = component->meta_.layout == LayoutKind::kApax ||
                        component->meta_.layout == LayoutKind::kAmax;
  if (columnar) {
    if (schema_blob.empty()) {
      return Status::Corruption("columnar component lacks schema: " + path);
    }
    LSMCOL_ASSIGN_OR_RETURN(Schema schema,
                            Schema::Deserialize(schema_blob.slice()));
    component->schema_.emplace(std::move(schema));
  }
  return component;
}

Result<Slice> Component::DecompressedRowLeaf(size_t leaf_index) const {
  for (auto& [index, payload] : row_leaf_cache_) {
    if (index == leaf_index) return payload->slice();
  }
  Buffer raw;
  LSMCOL_RETURN_NOT_OK(reader_->ReadLeaf(leaf_index, &raw));
  auto payload = std::make_unique<Buffer>();
  if (meta_.compressed) {
    LSMCOL_RETURN_NOT_OK(LzDecompress(raw.slice(), payload.get()));
  } else {
    payload->Append(raw.slice());
  }
  if (row_leaf_cache_.size() >= kRowLeafCacheSize) {
    row_leaf_cache_.erase(row_leaf_cache_.begin());
  }
  row_leaf_cache_.emplace_back(leaf_index, std::move(payload));
  return row_leaf_cache_.back().second->slice();
}

// ------------------------------------------------------ RowComponentCursor

Result<bool> RowComponentCursor::Next() {
  const auto& leaves = component_->reader().leaves();
  while (true) {
    if (!leaf_loaded_) {
      while (leaf_index_ < leaves.size() &&
             leaves[leaf_index_].max_key < seek_floor_) {
        ++leaf_index_;  // whole-leaf skip, no I/O
      }
      if (leaf_index_ >= leaves.size()) return false;
      LSMCOL_ASSIGN_OR_RETURN(Slice payload,
                              component_->DecompressedRowLeaf(leaf_index_));
      LSMCOL_RETURN_NOT_OK(leaf_reader_.Init(payload, /*compressed=*/false));
      leaf_loaded_ = true;
    }
    if (leaf_reader_.AtEnd()) {
      leaf_loaded_ = false;
      ++leaf_index_;
      continue;
    }
    LSMCOL_RETURN_NOT_OK(leaf_reader_.Next(&key_, &anti_matter_, &row_));
    if (key_ < seek_floor_) continue;
    return true;
  }
}

Status RowComponentCursor::Record(Value* out) {
  return GetRowCodec(component_->meta().layout).Decode(row_, out);
}

Status RowComponentCursor::Path(const std::vector<std::string>& path,
                                Value* out) {
  return GetRowCodec(component_->meta().layout).ExtractPath(row_, path, out);
}

Status RowComponentCursor::SeekForward(int64_t target) {
  seek_floor_ = std::max(seek_floor_, target);
  return Status::OK();
}

// ------------------------------------------------- ColumnarComponentCursor

ColumnarComponentCursor::ColumnarComponentCursor(const Component* component,
                                                 const Projection& projection)
    : component_(component), assembler_(component->schema()) {
  const Schema* schema = component_->schema();
  LSMCOL_CHECK(schema != nullptr);
  const size_t ncols = static_cast<size_t>(schema->column_count());
  projected_.assign(ncols, false);
  projected_[0] = true;  // PK always
  LSMCOL_CHECK_OK(ResolveProjection(projection));
  for (size_t c = 0; c < ncols; ++c) {
    if (projected_[c] && c != 0) projected_ids_.push_back(static_cast<int>(c));
  }
  columns_.resize(ncols);
  by_column_.assign(ncols, nullptr);
  // Synthetic PK column record reused for assembly.
  pk_record_.root.kind = ShredCell::Kind::kLeaf;
  pk_record_.root.def = 1;
  pk_record_.root.value_index = 0;
  pk_record_.values.push_back(Value::Int(0));
}

Status ColumnarComponentCursor::ResolveProjection(const Projection& projection) {
  const Schema* schema = component_->schema();
  if (projection.all) {
    projected_.assign(projected_.size(), true);
    return Status::OK();
  }
  for (const auto& path : projection.paths) {
    const SchemaNode* node = schema->ResolvePath(path);
    if (node == nullptr) continue;  // path unknown to this component
    for (int c : Schema::ColumnsUnder(node)) projected_[c] = true;
  }
  return Status::OK();
}

Status ColumnarComponentCursor::LoadLeaf(size_t leaf_index) {
  leaf_index_ = leaf_index;
  position_in_leaf_ = 0;
  for (ColumnState& st : columns_) {
    st.loaded = false;
    st.exists = false;
    st.consumed = 0;
    st.seq = 0;
  }
  const Schema* schema = component_->schema();
  const auto& leaf = component_->reader().leaves()[leaf_index];
  leaf_records_ = leaf.record_count;
  if (component_->meta().layout == LayoutKind::kApax) {
    Buffer payload;
    LSMCOL_RETURN_NOT_OK(component_->reader().ReadLeaf(leaf_index, &payload));
    LSMCOL_RETURN_NOT_OK(
        apax_leaf_.Init(payload.slice(), component_->meta().compressed));
    LSMCOL_RETURN_NOT_OK(pk_reader_.Init(apax_leaf_.chunk(0),
                                         schema->column(0)));
  } else {
    // AMAX: only Page 0 (header, zone prefixes, PKs) is read here (§4.3).
    const uint64_t page0_size =
        std::min<uint64_t>(leaf.payload_size,
                           component_->reader().page_size());
    LSMCOL_RETURN_NOT_OK(component_->reader().ReadLeafRange(
        leaf_index, 0, page0_size, &amax_page0_bytes_));
    LSMCOL_RETURN_NOT_OK(amax_page0_.Init(amax_page0_bytes_.slice()));
    LSMCOL_RETURN_NOT_OK(
        pk_reader_.Init(amax_page0_.pk_chunk(), schema->column(0)));
  }
  leaf_loaded_ = true;
  return Status::OK();
}

Result<bool> ColumnarComponentCursor::Next() {
  const auto& leaves = component_->reader().leaves();
  while (true) {
    if (!leaf_loaded_) {
      while (leaf_index_ < leaves.size() &&
             leaves[leaf_index_].max_key < seek_floor_) {
        ++leaf_index_;  // skipped leaves cost no I/O at all
      }
      if (leaf_index_ >= leaves.size()) return false;
      LSMCOL_RETURN_NOT_OK(LoadLeaf(leaf_index_));
    }
    if (position_in_leaf_ >= leaf_records_) {
      leaf_loaded_ = false;
      ++leaf_index_;
      continue;
    }
    // Only the PK is decoded while scanning/reconciling (§4.4).
    int def = 0;
    bool has_value = false;
    LSMCOL_RETURN_NOT_OK(pk_reader_.NextEntry(&def, &has_value));
    LSMCOL_RETURN_NOT_OK(pk_reader_.ReadInt64(&key_));
    anti_matter_ = (def == 0);
    ++position_in_leaf_;
    if (key_ < seek_floor_) continue;
    ++record_seq_;  // invalidates every column's cached record
    return true;
  }
}

Status ColumnarComponentCursor::EnsureColumnCurrent(int column_id) {
  ColumnState& st = columns_[column_id];
  if (st.seq == record_seq_) return Status::OK();
  const Schema* schema = component_->schema();
  const ColumnInfo& info = schema->column(column_id);
  if (!st.loaded) {
    st.loaded = true;
    st.consumed = 0;
    if (component_->meta().layout == LayoutKind::kApax) {
      Slice chunk = apax_leaf_.chunk(column_id);
      st.exists = !chunk.empty();
      if (st.exists) {
        LSMCOL_RETURN_NOT_OK(st.reader.Init(chunk, info));
      }
    } else {
      const AmaxColumnExtent& extent = amax_page0_.extent(column_id);
      st.exists = extent.size != 0;
      if (st.exists) {
        // First touch of this column in this leaf: fetch only its
        // megapage's physical pages.
        Buffer raw;
        LSMCOL_RETURN_NOT_OK(component_->reader().ReadLeafRange(
            leaf_index_, extent.offset, extent.size, &raw));
        LSMCOL_RETURN_NOT_OK(ParseAmaxMegapage(
            raw.slice(), info, component_->meta().compressed,
            &st.chunk_storage, nullptr, nullptr));
        LSMCOL_RETURN_NOT_OK(st.reader.Init(st.chunk_storage.slice(), info));
      }
    }
  }
  if (!st.exists) {
    // Column unknown when this leaf was written: all-missing.
    st.record = ColumnRecord();
    st.seq = record_seq_;
    return Status::OK();
  }
  // Batched catch-up: skip every record ignored since the last access in
  // one go (§4.4).
  const uint64_t target = position_in_leaf_ - 1;
  LSMCOL_DCHECK(st.consumed <= target);
  if (target > st.consumed) {
    LSMCOL_RETURN_NOT_OK(st.reader.SkipRecords(target - st.consumed));
    st.consumed = target;
  }
  LSMCOL_RETURN_NOT_OK(st.reader.NextRecord(&st.record));
  ++st.consumed;
  st.seq = record_seq_;
  return Status::OK();
}

Result<const ColumnRecord*> ColumnarComponentCursor::Column(int column_id) {
  LSMCOL_RETURN_NOT_OK(EnsureColumnCurrent(column_id));
  return static_cast<const ColumnRecord*>(&columns_[column_id].record);
}

Status ColumnarComponentCursor::Record(Value* out) {
  std::fill(by_column_.begin(), by_column_.end(), nullptr);
  pk_record_.values[0] = Value::Int(key_);
  by_column_[0] = &pk_record_;
  for (int c : projected_ids_) {
    LSMCOL_RETURN_NOT_OK(EnsureColumnCurrent(c));
    by_column_[c] = &columns_[c].record;
  }
  bool all = true;
  for (bool p : projected_) all = all && p;
  *out = assembler_.Assemble(by_column_, all ? nullptr : &projected_);
  return Status::OK();
}

Status ColumnarComponentCursor::Path(const std::vector<std::string>& path,
                                     Value* out) {
  const Schema* schema = component_->schema();
  if (path.size() == 1 && path[0] == schema->pk_field()) {
    *out = Value::Int(key_);
    return Status::OK();
  }
  // Descend through object fields only; the first array/union boundary is
  // assembled and the remaining steps use SQL++ value-path semantics (so
  // the compiled engine matches ValueFieldSource exactly).
  const SchemaNode* node = &schema->root();
  size_t consumed = 0;
  while (consumed < path.size()) {
    if (!node->is_object()) break;
    const SchemaNode* child = node->FindField(path[consumed]);
    if (child == nullptr) {
      *out = Value::Missing();
      return Status::OK();
    }
    node = child;
    ++consumed;
  }
  if (node == &schema->root()) {
    *out = Value::Missing();
    return Status::OK();
  }
  std::fill(by_column_.begin(), by_column_.end(), nullptr);
  for (int c : Schema::ColumnsUnder(node)) {
    LSMCOL_RETURN_NOT_OK(EnsureColumnCurrent(c));
    by_column_[c] = &columns_[c].record;
  }
  Value assembled = assembler_.AssembleSubtree(*node, by_column_);
  if (consumed < path.size()) {
    *out = WalkValuePath(assembled, path, consumed);
  } else {
    *out = std::move(assembled);
  }
  return Status::OK();
}

Status ColumnarComponentCursor::SeekForward(int64_t target) {
  seek_floor_ = std::max(seek_floor_, target);
  return Status::OK();
}

// ------------------------------------------------------- MemTableCursor

Result<bool> MemTableCursor::Next() {
  if (!started_) {
    started_ = true;
  } else if (it_ != memtable_->entries().end()) {
    ++it_;
  }
  while (it_ != memtable_->entries().end() && it_->first < seek_floor_) {
    ++it_;
  }
  if (it_ == memtable_->entries().end()) return false;
  key_ = it_->first;
  anti_matter_ = it_->second.anti_matter;
  row_ = &it_->second.row;
  return true;
}

Status MemTableCursor::Record(Value* out) {
  LSMCOL_DCHECK(!anti_matter_);
  return codec_->Decode(Slice(*row_), out);
}

Status MemTableCursor::Path(const std::vector<std::string>& path, Value* out) {
  return codec_->ExtractPath(Slice(*row_), path, out);
}

Status MemTableCursor::SeekForward(int64_t target) {
  seek_floor_ = std::max(seek_floor_, target);
  if (!started_ || (it_ != memtable_->entries().end() && key_ < target)) {
    // Jump with the map's lower_bound instead of a linear walk. Mark the
    // iterator as "pending" so the next Next() does not skip it.
    it_ = memtable_->entries().lower_bound(target);
    started_ = false;
    if (it_ != memtable_->entries().end()) {
      // Next() will consume it_ directly.
    }
  }
  return Status::OK();
}

}  // namespace lsmcol
