#include "src/lsm/component.h"

#include <algorithm>
#include <cstring>

#include "src/encoding/lz.h"

namespace lsmcol {

void ComponentMeta::SerializeTo(Buffer* out, const Schema* schema) const {
  out->AppendByte(static_cast<uint8_t>(layout));
  out->AppendByte(compressed ? 1 : 0);
  out->AppendVarint64(component_id);
  out->AppendVarint64(entry_count);
  if (schema != nullptr) {
    Buffer blob;
    schema->SerializeTo(&blob);
    out->AppendVarint64(blob.size());
    out->Append(blob.slice());
  } else {
    out->AppendVarint64(0);
  }
}

Result<ComponentMeta> ComponentMeta::Parse(Slice input, Buffer* schema_blob) {
  BufferReader r(input);
  ComponentMeta meta;
  uint8_t layout = 0, compressed = 0;
  LSMCOL_RETURN_NOT_OK(r.ReadByte(&layout));
  if (layout > 3) return Status::Corruption("bad layout byte");
  meta.layout = static_cast<LayoutKind>(layout);
  LSMCOL_RETURN_NOT_OK(r.ReadByte(&compressed));
  meta.compressed = compressed != 0;
  LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&meta.component_id));
  LSMCOL_RETURN_NOT_OK(r.ReadVarint64(&meta.entry_count));
  Slice blob;
  LSMCOL_RETURN_NOT_OK(r.ReadLengthPrefixed(&blob));
  schema_blob->clear();
  schema_blob->Append(blob);
  return meta;
}

Component::~Component() {
  if (obsolete_ && reader_ != nullptr) {
    // Deferred deletion of a merged-away component. A failure here only
    // leaks a file no manifest references; the next open sweeps it.
    Status st = reader_->Destroy();
    (void)st;
  }
}

Result<std::unique_ptr<Component>> Component::Open(
    const std::string& path, BufferCache* cache, size_t page_size,
    FileSystem* fs, std::shared_ptr<ComponentFaultCounters> fault_counters) {
  std::unique_ptr<Component> component(new Component());
  component->fault_counters_ = std::move(fault_counters);
  LSMCOL_ASSIGN_OR_RETURN(component->reader_,
                          ComponentReader::Open(path, cache, page_size, fs));
  Buffer schema_blob;
  LSMCOL_ASSIGN_OR_RETURN(
      component->meta_,
      ComponentMeta::Parse(component->reader_->metadata(), &schema_blob));
  const bool columnar = component->meta_.layout == LayoutKind::kApax ||
                        component->meta_.layout == LayoutKind::kAmax;
  if (columnar) {
    if (schema_blob.empty()) {
      return Status::Corruption("columnar component lacks schema: " + path);
    }
    LSMCOL_ASSIGN_OR_RETURN(Schema schema,
                            Schema::Deserialize(schema_blob.slice()));
    component->schema_.emplace(std::move(schema));
  }
  return component;
}

Result<std::unique_ptr<Component>> Component::OpenForSalvage(
    const std::string& path, BufferCache* cache, size_t page_size,
    FileSystem* fs) {
  LSMCOL_ASSIGN_OR_RETURN(auto component,
                          Open(path, cache, page_size, fs, nullptr));
  component->salvage_ = true;
  return component;
}

Status Component::CheckReadable() const {
  if (!quarantined_.load(std::memory_order_acquire)) return Status::OK();
  MutexLock lock(&fault_mu_);
  return quarantine_reason_;
}

void Component::Quarantine(const Status& reason) const {
  MutexLock lock(&fault_mu_);
  if (quarantined_.load(std::memory_order_relaxed)) return;
  quarantine_reason_ = reason;
  quarantined_.store(true, std::memory_order_release);
  if (fault_counters_ != nullptr) {
    fault_counters_->quarantines.fetch_add(1, std::memory_order_relaxed);
  }
}

Status Component::NoteRead(Status st) const {
  if (st.ok() || !st.IsDataDamage() || salvage_) return st;
  bool first_damage = false;
  {
    MutexLock lock(&fault_mu_);
    if (fault_counters_ != nullptr) {
      fault_counters_->checksum_failures.fetch_add(1,
                                                   std::memory_order_relaxed);
    }
    if (!quarantined_.load(std::memory_order_relaxed)) {
      quarantine_reason_ = st;
      quarantined_.store(true, std::memory_order_release);
      first_damage = true;
      if (fault_counters_ != nullptr) {
        fault_counters_->quarantines.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (first_damage && fault_counters_ != nullptr) {
    // Queue the damage record for the Dataset to persist. log_mu ranks
    // above fault_mu_ and row_leaf_mu_, so this is reachable from every
    // read path without inverting the lock order.
    MutexLock log_lock(&fault_counters_->log_mu);
    fault_counters_->damage_log.emplace_back(meta_.component_id, st);
    fault_counters_->damage_records.fetch_add(1, std::memory_order_release);
  }
  return st;
}

Status Component::ReadLeaf(size_t leaf_index, Buffer* out) const {
  LSMCOL_RETURN_NOT_OK(CheckReadable());
  return NoteRead(reader_->ReadLeaf(leaf_index, out));
}

Status Component::ReadLeafRange(size_t leaf_index, uint64_t offset,
                                uint64_t size, Buffer* out) const {
  LSMCOL_RETURN_NOT_OK(CheckReadable());
  return NoteRead(reader_->ReadLeafRange(leaf_index, offset, size, out));
}

Status Component::ScrubLeaf(size_t leaf_index, Buffer* out) const {
  LSMCOL_RETURN_NOT_OK(CheckReadable());
  return NoteRead(reader_->ReadLeafUncached(leaf_index, out));
}

Result<std::shared_ptr<const Buffer>> Component::DecompressedRowLeaf(
    size_t leaf_index) const {
  {
    MutexLock lock(&row_leaf_mu_);
    for (auto& [index, payload] : row_leaf_cache_) {
      if (index == leaf_index) return payload;
    }
  }
  // Decompress outside the lock; concurrent misses of the same leaf do
  // the work twice but both get a valid (shared) payload.
  Buffer raw;
  LSMCOL_RETURN_NOT_OK(ReadLeaf(leaf_index, &raw));
  auto scratch = std::make_shared<Buffer>();
  if (meta_.compressed) {
    LSMCOL_RETURN_NOT_OK(LzDecompress(raw.slice(), scratch.get()));
  } else {
    scratch->Append(raw.slice());
  }
  std::shared_ptr<const Buffer> payload = std::move(scratch);
  MutexLock lock(&row_leaf_mu_);
  // Re-check: a concurrent miss of the same leaf may have inserted it
  // while we decompressed; a duplicate would waste the tiny FIFO.
  for (auto& [index, cached] : row_leaf_cache_) {
    if (index == leaf_index) return cached;
  }
  if (row_leaf_cache_.size() >= kRowLeafCacheSize) {
    row_leaf_cache_.erase(row_leaf_cache_.begin());
  }
  row_leaf_cache_.emplace_back(leaf_index, payload);
  return payload;
}

// ------------------------------------------------------ RowComponentCursor

Result<bool> RowComponentCursor::Next() {
  const auto& leaves = component_->reader().leaves();
  while (true) {
    if (!leaf_loaded_) {
      while (leaf_index_ < leaves.size() &&
             leaves[leaf_index_].max_key < seek_floor_) {
        ++leaf_index_;  // whole-leaf skip, no I/O
      }
      if (leaf_index_ >= leaves.size()) return false;
      LSMCOL_ASSIGN_OR_RETURN(leaf_payload_,
                              component_->DecompressedRowLeaf(leaf_index_));
      LSMCOL_RETURN_NOT_OK(
          leaf_reader_.Init(leaf_payload_->slice(), /*compressed=*/false));
      leaf_loaded_ = true;
    }
    if (leaf_reader_.AtEnd()) {
      leaf_loaded_ = false;
      ++leaf_index_;
      continue;
    }
    LSMCOL_RETURN_NOT_OK(leaf_reader_.Next(&key_, &anti_matter_, &row_));
    if (key_ < seek_floor_) continue;
    return true;
  }
}

Status RowComponentCursor::Record(Value* out) {
  return GetRowCodec(component_->meta().layout).Decode(row_, out);
}

Status RowComponentCursor::Path(const std::vector<std::string>& path,
                                Value* out) {
  return GetRowCodec(component_->meta().layout).ExtractPath(row_, path, out);
}

Status RowComponentCursor::SeekForward(int64_t target) {
  seek_floor_ = std::max(seek_floor_, target);
  return Status::OK();
}

// ------------------------------------------------- ColumnarComponentCursor

ColumnarComponentCursor::ColumnarComponentCursor(
    const Component* component, const Projection& projection,
    const ScanPredicateSet* predicates,
    std::vector<std::pair<int64_t, int64_t>> foreign_key_ranges)
    : component_(component),
      assembler_(component->schema()),
      foreign_ranges_(std::move(foreign_key_ranges)) {
  const Schema* schema = component_->schema();
  LSMCOL_CHECK(schema != nullptr);
  const size_t ncols = static_cast<size_t>(schema->column_count());
  projected_.assign(ncols, false);
  projected_[0] = true;  // PK always
  LSMCOL_CHECK_OK(ResolveProjection(projection));
  for (size_t c = 0; c < ncols; ++c) {
    if (projected_[c] && c != 0) projected_ids_.push_back(static_cast<int>(c));
  }
  columns_.resize(ncols);
  by_column_.assign(ncols, nullptr);
  if (predicates != nullptr && !predicates->empty()) {
    ResolvePredicates(*predicates);
  }
  // Synthetic PK column record reused for assembly.
  pk_record_.root.kind = ShredCell::Kind::kLeaf;
  pk_record_.root.def = 1;
  pk_record_.root.value_index = 0;
  pk_record_.values.push_back(Value::Int(0));
}

void ColumnarComponentCursor::ResolvePredicates(
    const ScanPredicateSet& predicates) {
  const Schema* schema = component_->schema();
  for (const ScanPredicate& pred : predicates) {
    // PK predicates check the decoded key directly.
    if (pred.path.size() == 1 && pred.path[0] == schema->pk_field()) {
      TypedPredicate typed = CompileScanPredicate(pred, schema->column(0));
      if (typed.never_match) {
        component_never_match_ = true;
        return;
      }
      pk_preds_.push_back(std::move(typed));
      has_checked_predicates_ = true;
      continue;
    }
    // Walk object fields only, exactly like Path(): anything fancier
    // (union / array boundary mid-path) is left to full evaluation.
    const SchemaNode* node = &schema->root();
    bool unpushable = false;
    bool missing = false;
    for (const std::string& step : pred.path) {
      if (!node->is_object()) {
        unpushable = true;
        break;
      }
      const SchemaNode* child = node->FindField(step);
      if (child == nullptr) {
        missing = true;
        break;
      }
      node = child;
    }
    if (missing) {
      // The path does not exist in this component's schema: the field is
      // MISSING for every record here, so no record can pass the filter.
      component_never_match_ = true;
      return;
    }
    if (unpushable || !node->is_atomic()) {
      has_unchecked_predicates_ = true;
      continue;
    }
    const ColumnInfo& info = schema->column(node->column_id());
    if (info.array_count() != 0) {
      // Values under arrays compare with SQL++ array-mapping semantics;
      // not worth modeling here.
      has_unchecked_predicates_ = true;
      continue;
    }
    TypedPredicate typed = CompileScanPredicate(pred, info);
    if (typed.never_match) {
      component_never_match_ = true;
      return;
    }
    has_checked_predicates_ = true;
    PredColumn* pc = nullptr;
    for (PredColumn& existing : pred_columns_) {
      if (existing.column_id == info.id) {
        pc = &existing;
        break;
      }
    }
    if (pc == nullptr) {
      pred_columns_.emplace_back();
      pc = &pred_columns_.back();
      pc->column_id = info.id;
      pc->max_def = info.max_def;
      pc->type = info.type;
    }
    pc->preds.push_back(std::move(typed));
  }
}

bool ColumnarComponentCursor::LeafRangeDisjointFromForeign(
    int64_t min_key, int64_t max_key) const {
  for (const auto& [lo, hi] : foreign_ranges_) {
    if (!(max_key < lo || min_key > hi)) return false;
  }
  return true;
}

void ColumnarComponentCursor::EvaluateLeafZones() {
  leaf_zone_match_ = true;
  if (component_never_match_) {
    // Component-wide veto (missing path / type-incompatible literal):
    // every leaf fails its "zone" so the whole-leaf skip applies.
    leaf_zone_match_ = false;
    return;
  }
  if (!has_checked_predicates_) return;
  if (!pk_preds_.empty()) {
    const auto& leaf = component_->reader().leaves()[leaf_index_];
    for (const TypedPredicate& pred : pk_preds_) {
      if (!pred.OverlapsIntZone(leaf.min_key, leaf.max_key)) {
        leaf_zone_match_ = false;
        return;
      }
    }
  }
  const bool apax = component_->meta().layout == LayoutKind::kApax;
  for (const PredColumn& pc : pred_columns_) {
    if (apax) {
      if (apax_leaf_.chunk(pc.column_id).empty()) {
        // Column absent from this leaf: the field is MISSING in every
        // record, so nothing here can match.
        leaf_zone_match_ = false;
        return;
      }
      const ApaxChunkStats& stats = apax_leaf_.stats(pc.column_id);
      if (!stats.has_stats) {
        leaf_zone_match_ = false;  // zero present values in this leaf
        return;
      }
      for (const TypedPredicate& pred : pc.preds) {
        bool overlap = true;
        switch (pc.type) {
          case AtomicType::kBoolean:
          case AtomicType::kInt64:
            overlap = pred.OverlapsIntZone(stats.min_int, stats.max_int);
            break;
          case AtomicType::kDouble:
            overlap =
                pred.OverlapsDoubleZone(stats.min_double, stats.max_double);
            break;
          case AtomicType::kString:
            overlap =
                pred.OverlapsStringZone(stats.min_string, stats.max_string);
            break;
        }
        if (!overlap) {
          leaf_zone_match_ = false;
          return;
        }
      }
    } else {
      const AmaxColumnExtent& extent = amax_page0_.extent(pc.column_id);
      if (extent.size == 0) {
        leaf_zone_match_ = false;
        return;
      }
      for (const TypedPredicate& pred : pc.preds) {
        bool overlap = true;
        switch (pc.type) {
          case AtomicType::kBoolean:
          case AtomicType::kInt64: {
            int64_t zmin = 0, zmax = 0;
            std::memcpy(&zmin, extent.min_prefix, 8);
            std::memcpy(&zmax, extent.max_prefix, 8);
            overlap = pred.OverlapsIntZone(zmin, zmax);
            break;
          }
          case AtomicType::kDouble: {
            double zmin = 0, zmax = 0;
            std::memcpy(&zmin, extent.min_prefix, 8);
            std::memcpy(&zmax, extent.max_prefix, 8);
            overlap = pred.OverlapsDoubleZone(zmin, zmax);
            break;
          }
          case AtomicType::kString:
            overlap = AmaxStringRangeOverlaps(
                extent, pred.has_slo ? &pred.slo : nullptr,
                pred.has_shi ? &pred.shi : nullptr);
            break;
        }
        if (!overlap) {
          leaf_zone_match_ = false;
          return;
        }
      }
    }
  }
}

Status ColumnarComponentCursor::ResolveProjection(const Projection& projection) {
  const Schema* schema = component_->schema();
  if (projection.all) {
    projected_.assign(projected_.size(), true);
    return Status::OK();
  }
  for (const auto& path : projection.paths) {
    const SchemaNode* node = schema->ResolvePath(path);
    if (node == nullptr) continue;  // path unknown to this component
    for (int c : Schema::ColumnsUnder(node)) projected_[c] = true;
  }
  return Status::OK();
}

Status ColumnarComponentCursor::LoadLeaf(size_t leaf_index) {
  leaf_index_ = leaf_index;
  position_in_leaf_ = 0;
  for (ColumnState& st : columns_) {
    st.loaded = false;
    st.exists = false;
    st.consumed = 0;
    st.seq = 0;
  }
  for (PredColumn& pc : pred_columns_) {
    pc.loaded = false;
  }
  const Schema* schema = component_->schema();
  const auto& leaf = component_->reader().leaves()[leaf_index];
  leaf_records_ = leaf.record_count;
  if (component_->meta().layout == LayoutKind::kApax) {
    Buffer payload;
    LSMCOL_RETURN_NOT_OK(component_->ReadLeaf(leaf_index, &payload));
    LSMCOL_RETURN_NOT_OK(
        apax_leaf_.Init(payload.slice(), component_->meta().compressed));
    EvaluateLeafZones();
    leaf_loaded_ = true;
    if (!leaf_zone_match_ &&
        LeafRangeDisjointFromForeign(leaf.min_key, leaf.max_key)) {
      // Nothing in this leaf can match the filter, and no other source
      // holds keys in its range, so skipping it cannot disturb
      // reconciliation — don't even decode the PKs.
      position_in_leaf_ = leaf_records_;
      return Status::OK();
    }
    LSMCOL_RETURN_NOT_OK(pk_reader_.Init(apax_leaf_.chunk(0),
                                         schema->column(0)));
  } else {
    // AMAX: only Page 0 (header, zone prefixes, PKs) is read here (§4.3).
    const uint64_t page0_size =
        std::min<uint64_t>(leaf.payload_size,
                           component_->reader().page_size());
    LSMCOL_RETURN_NOT_OK(component_->ReadLeafRange(
        leaf_index, 0, page0_size, &amax_page0_bytes_));
    LSMCOL_RETURN_NOT_OK(amax_page0_.Init(amax_page0_bytes_.slice()));
    EvaluateLeafZones();
    leaf_loaded_ = true;
    if (!leaf_zone_match_ &&
        LeafRangeDisjointFromForeign(leaf.min_key, leaf.max_key)) {
      position_in_leaf_ = leaf_records_;
      return Status::OK();
    }
    LSMCOL_RETURN_NOT_OK(
        pk_reader_.Init(amax_page0_.pk_chunk(), schema->column(0)));
  }
  // The whole leaf's keys and anti-matter defs in one batched decode:
  // Next() degrades to array reads, and seeks binary-search the keys.
  LSMCOL_RETURN_NOT_OK(
      pk_reader_.NextEntryBatch(pk_reader_.entry_count(), &pk_batch_));
  return Status::OK();
}

Result<bool> ColumnarComponentCursor::Next() {
  const auto& leaves = component_->reader().leaves();
  while (true) {
    if (!leaf_loaded_) {
      while (leaf_index_ < leaves.size() &&
             leaves[leaf_index_].max_key < seek_floor_) {
        ++leaf_index_;  // skipped leaves cost no I/O at all
      }
      if (leaf_index_ >= leaves.size()) return false;
      LSMCOL_RETURN_NOT_OK(LoadLeaf(leaf_index_));
    }
    if (position_in_leaf_ >= leaf_records_) {
      leaf_loaded_ = false;
      ++leaf_index_;
      continue;
    }
    // Fast-forward within the leaf: keys are sorted, so a seek floor maps
    // to a lower_bound over the decoded key array.
    if (seek_floor_ != INT64_MIN &&
        pk_batch_.ints[position_in_leaf_] < seek_floor_) {
      const auto begin = pk_batch_.ints.begin();
      position_in_leaf_ = static_cast<uint64_t>(
          std::lower_bound(begin + static_cast<ptrdiff_t>(position_in_leaf_),
                           pk_batch_.ints.end(), seek_floor_) -
          begin);
      continue;
    }
    // Only the PK is decoded while scanning/reconciling (§4.4).
    key_ = pk_batch_.ints[position_in_leaf_];
    anti_matter_ = pk_batch_.defs[position_in_leaf_] == 0;
    ++position_in_leaf_;
    ++record_seq_;  // invalidates every column's cached record
    return true;
  }
}

Status ColumnarComponentCursor::EnsureColumnCurrent(int column_id) {
  ColumnState& st = columns_[column_id];
  if (st.seq == record_seq_) return Status::OK();
  const Schema* schema = component_->schema();
  const ColumnInfo& info = schema->column(column_id);
  if (!st.loaded) {
    st.loaded = true;
    st.consumed = 0;
    if (component_->meta().layout == LayoutKind::kApax) {
      Slice chunk = apax_leaf_.chunk(column_id);
      st.exists = !chunk.empty();
      if (st.exists) {
        LSMCOL_RETURN_NOT_OK(st.reader.Init(chunk, info));
      }
    } else {
      const AmaxColumnExtent& extent = amax_page0_.extent(column_id);
      st.exists = extent.size != 0;
      if (st.exists) {
        // A predicate column already fetched+decompressed this leaf's
        // megapage; read over its buffer instead of fetching again (both
        // buffers live exactly until the next LoadLeaf, which resets
        // loaded flags on both sides before either is overwritten).
        const PredColumn* pred = nullptr;
        for (const PredColumn& pc : pred_columns_) {
          if (pc.column_id == column_id && pc.loaded &&
              !pc.chunk_storage.empty()) {
            pred = &pc;
            break;
          }
        }
        if (pred != nullptr) {
          LSMCOL_RETURN_NOT_OK(
              st.reader.Init(pred->chunk_storage.slice(), info));
        } else {
          // First touch of this column in this leaf: fetch only its
          // megapage's physical pages.
          Buffer raw;
          LSMCOL_RETURN_NOT_OK(component_->ReadLeafRange(
              leaf_index_, extent.offset, extent.size, &raw));
          LSMCOL_RETURN_NOT_OK(ParseAmaxMegapage(
              raw.slice(), info, component_->meta().compressed,
              &st.chunk_storage, nullptr, nullptr));
          LSMCOL_RETURN_NOT_OK(st.reader.Init(st.chunk_storage.slice(), info));
        }
      }
    }
  }
  if (!st.exists) {
    // Column unknown when this leaf was written: all-missing.
    st.record = ColumnRecord();
    st.seq = record_seq_;
    return Status::OK();
  }
  // Batched catch-up: skip every record ignored since the last access in
  // one go (§4.4).
  const uint64_t target = position_in_leaf_ - 1;
  LSMCOL_DCHECK(st.consumed <= target);
  if (target > st.consumed) {
    LSMCOL_RETURN_NOT_OK(st.reader.SkipRecords(target - st.consumed));
    st.consumed = target;
  }
  LSMCOL_RETURN_NOT_OK(st.reader.NextRecord(&st.record));
  ++st.consumed;
  st.seq = record_seq_;
  return Status::OK();
}

Result<const ColumnRecord*> ColumnarComponentCursor::Column(int column_id) {
  LSMCOL_RETURN_NOT_OK(EnsureColumnCurrent(column_id));
  return static_cast<const ColumnRecord*>(&columns_[column_id].record);
}

Status ColumnarComponentCursor::LoadPredColumn(PredColumn* pc) {
  pc->loaded = true;
  const Schema* schema = component_->schema();
  const ColumnInfo& info = schema->column(pc->column_id);
  Slice chunk;
  if (component_->meta().layout == LayoutKind::kApax) {
    chunk = apax_leaf_.chunk(pc->column_id);
  } else {
    // A column that is both filtered-on and projected shares one
    // megapage fetch+decompress per leaf with EnsureColumnCurrent.
    ColumnState& st = columns_[pc->column_id];
    if (!(st.loaded && st.exists && !st.chunk_storage.empty())) {
      const AmaxColumnExtent& extent = amax_page0_.extent(pc->column_id);
      LSMCOL_DCHECK(extent.size != 0);  // zone test vetoed absent columns
      Buffer raw;
      LSMCOL_RETURN_NOT_OK(component_->ReadLeafRange(
          leaf_index_, extent.offset, extent.size, &raw));
      LSMCOL_RETURN_NOT_OK(ParseAmaxMegapage(
          raw.slice(), info, component_->meta().compressed,
          &pc->chunk_storage, nullptr, nullptr));
      chunk = pc->chunk_storage.slice();
    } else {
      chunk = st.chunk_storage.slice();
    }
  }
  LSMCOL_RETURN_NOT_OK(pc->reader.Init(chunk, info));
  // Flat column: entries == records, so the whole leaf decodes into one
  // positionally indexable batch.
  return pc->reader.NextEntryBatch(pc->reader.entry_count(), &pc->batch);
}

Result<PredicateVerdict> ColumnarComponentCursor::TestPushedPredicates() {
  if (component_never_match_) return PredicateVerdict::kNoMatch;
  if (!has_checked_predicates_) return PredicateVerdict::kUnknown;
  if (!leaf_zone_match_) return PredicateVerdict::kNoMatch;
  for (const TypedPredicate& pred : pk_preds_) {
    if (!pred.MatchesInt(key_)) return PredicateVerdict::kNoMatch;
  }
  const size_t rec = static_cast<size_t>(position_in_leaf_ - 1);
  for (PredColumn& pc : pred_columns_) {
    if (!pc.loaded) LSMCOL_RETURN_NOT_OK(LoadPredColumn(&pc));
    if (rec >= pc.batch.entry_count()) {
      return Status::Corruption("predicate column shorter than leaf");
    }
    if (pc.batch.defs[rec] != pc.max_def) {
      return PredicateVerdict::kNoMatch;  // MISSING/NULL compares false
    }
    const int32_t vi = pc.batch.value_index[rec];
    for (const TypedPredicate& pred : pc.preds) {
      bool match = true;
      switch (pc.type) {
        case AtomicType::kBoolean:
          match = pred.MatchesInt(
              static_cast<int64_t>(pc.batch.bools[static_cast<size_t>(vi)]));
          break;
        case AtomicType::kInt64:
          match = pred.MatchesInt(pc.batch.ints[static_cast<size_t>(vi)]);
          break;
        case AtomicType::kDouble:
          match = pred.MatchesDouble(pc.batch.doubles[static_cast<size_t>(vi)]);
          break;
        case AtomicType::kString:
          match = pred.MatchesString(pc.batch.strings[static_cast<size_t>(vi)]);
          break;
      }
      if (!match) return PredicateVerdict::kNoMatch;
    }
  }
  return has_unchecked_predicates_ ? PredicateVerdict::kUnknown
                                   : PredicateVerdict::kMatch;
}

Status ColumnarComponentCursor::Record(Value* out) {
  std::fill(by_column_.begin(), by_column_.end(), nullptr);
  pk_record_.values[0] = Value::Int(key_);
  by_column_[0] = &pk_record_;
  for (int c : projected_ids_) {
    LSMCOL_RETURN_NOT_OK(EnsureColumnCurrent(c));
    by_column_[c] = &columns_[c].record;
  }
  bool all = true;
  for (bool p : projected_) all = all && p;
  *out = assembler_.Assemble(by_column_, all ? nullptr : &projected_);
  return Status::OK();
}

Status ColumnarComponentCursor::Path(const std::vector<std::string>& path,
                                     Value* out) {
  const Schema* schema = component_->schema();
  if (path.size() == 1 && path[0] == schema->pk_field()) {
    *out = Value::Int(key_);
    return Status::OK();
  }
  // Descend through object fields only; the first array/union boundary is
  // assembled and the remaining steps use SQL++ value-path semantics (so
  // the compiled engine matches ValueFieldSource exactly).
  const SchemaNode* node = &schema->root();
  size_t consumed = 0;
  while (consumed < path.size()) {
    if (!node->is_object()) break;
    const SchemaNode* child = node->FindField(path[consumed]);
    if (child == nullptr) {
      *out = Value::Missing();
      return Status::OK();
    }
    node = child;
    ++consumed;
  }
  if (node == &schema->root()) {
    *out = Value::Missing();
    return Status::OK();
  }
  std::fill(by_column_.begin(), by_column_.end(), nullptr);
  for (int c : Schema::ColumnsUnder(node)) {
    LSMCOL_RETURN_NOT_OK(EnsureColumnCurrent(c));
    by_column_[c] = &columns_[c].record;
  }
  Value assembled = assembler_.AssembleSubtree(*node, by_column_);
  if (consumed < path.size()) {
    *out = WalkValuePath(assembled, path, consumed);
  } else {
    *out = std::move(assembled);
  }
  return Status::OK();
}

Status ColumnarComponentCursor::SeekForward(int64_t target) {
  seek_floor_ = std::max(seek_floor_, target);
  return Status::OK();
}

// ------------------------------------------------------- MemTableCursor

Result<bool> MemTableCursor::Next() {
  if (!started_) {
    started_ = true;
  } else if (it_ != memtable_->entries().end()) {
    ++it_;
  }
  while (it_ != memtable_->entries().end() && it_->first < seek_floor_) {
    ++it_;
  }
  if (it_ == memtable_->entries().end()) return false;
  key_ = it_->first;
  anti_matter_ = it_->second.anti_matter;
  row_ = &it_->second.row;
  return true;
}

Status MemTableCursor::Record(Value* out) {
  LSMCOL_DCHECK(!anti_matter_);
  return codec_->Decode(Slice(*row_), out);
}

Status MemTableCursor::Path(const std::vector<std::string>& path, Value* out) {
  return codec_->ExtractPath(Slice(*row_), path, out);
}

Status MemTableCursor::SeekForward(int64_t target) {
  seek_floor_ = std::max(seek_floor_, target);
  if (!started_ || (it_ != memtable_->entries().end() && key_ < target)) {
    // Jump with the map's lower_bound instead of a linear walk. Mark the
    // iterator as "pending" so the next Next() does not skip it.
    it_ = memtable_->entries().lower_bound(target);
    started_ = false;
    if (it_ != memtable_->entries().end()) {
      // Next() will consume it_ directly.
    }
  }
  return Status::OK();
}

}  // namespace lsmcol
