// Tuning knobs for a dataset's primary LSM index. Defaults mirror the
// paper's evaluation setup (§6): 128 KiB pages, tiering merge policy with
// size ratio 1.2, at most 5 components, page-level compression on, AMAX
// mega leaves capped at 15 000 records.

#ifndef LSMCOL_LSM_OPTIONS_H_
#define LSMCOL_LSM_OPTIONS_H_

#include <cstddef>
#include <string>

#include "src/layouts/amax.h"
#include "src/layouts/row_codec.h"
#include "src/storage/component_file.h"
#include "src/storage/file.h"
#include "src/storage/filesystem.h"
#include "src/storage/wal.h"

namespace lsmcol {

class FlushMergeScheduler;

/// Smallest page size ValidateDatasetOptions accepts: below this the AMAX
/// Page-0 budget arithmetic has no headroom.
inline constexpr size_t kMinPageSize = 4096;

/// Which compaction (merge-selection) policy a dataset runs — the LSM
/// design-space axis mapped by the LSM survey and "How to Grow an
/// LSM-tree" (arXiv:2504.17178). The policy decides *which* contiguous
/// range of on-disk components each merge rewrites, trading write
/// amplification against the number of components reads must reconcile:
///
///   kTiered        Size-tiered (the paper's §6.3 setup and the default):
///                  merge the youngest run whose accumulated size reaches
///                  `size_ratio` times the next-older component, else the
///                  two newest once `max_components` is exceeded. Lowest
///                  write-amp, most components for reads to visit.
///   kLeveled       Size-classed levels with at most one run per level:
///                  flushes accumulate in level 0; once
///                  `compaction.level0_components` of them pile up they
///                  merge into the resident of the level the output
///                  reaches, cascading deeper while the output keeps
///                  growing into occupied levels. Highest write-amp,
///                  fewest components (cheapest scans/lookups).
///   kLazyLeveling  Dostoevsky's hybrid: the youngest part is tiered
///                  (same `size_ratio`/`max_components` knobs) while the
///                  oldest, largest component is kept as a single run —
///                  absorbed only when the accumulated younger data
///                  reaches 1/`level_fanout` of its size. Write-amp near
///                  tiered, space-amp and point-read cost near leveled.
enum class CompactionStrategy { kTiered, kLeveled, kLazyLeveling };

/// Printable policy name ("tiered", "leveled", "lazy-leveling").
const char* CompactionStrategyName(CompactionStrategy strategy);

/// Compaction-policy selection and shaping (see CompactionStrategy; the
/// tiered knobs `size_ratio`/`max_components` live directly on
/// DatasetOptions for §6.3 continuity). Validated by
/// ValidateDatasetOptions/ValidateStoreOptions.
struct CompactionOptions {
  CompactionStrategy strategy = CompactionStrategy::kTiered;
  /// Size ratio between adjacent levels (leveled's level width and
  /// lazy-leveling's absorb threshold). Must be in [2, 64].
  int level_fanout = 4;
  /// Leveled only: how many level-0 runs (fresh flushes) accumulate
  /// before they merge into the tree. Must be >= 2.
  int level0_components = 4;
  /// Leveled only: the level-0 size class boundary in bytes — components
  /// no larger than this count as fresh flushes. 0 (the default) derives
  /// it from DatasetOptions::memtable_bytes (a flushed component never
  /// exceeds the memtable that produced it).
  uint64_t level_base_bytes = 0;
};

/// Field-by-field validation shared by ValidateDatasetOptions and
/// ValidateStoreOptions; `field_prefix` names the offending field's owner
/// (e.g. "DatasetOptions.compaction.").
Status ValidateCompactionOptions(const CompactionOptions& options,
                                 const std::string& field_prefix);

/// How columnar merges move surviving data (§4.5.3). kRunLevel is the
/// production pipeline: primary keys merge via per-leaf batch decodes into
/// a run-length survivor plan, columns are stitched run-at-a-time through
/// the batch codec APIs, and output leaves covering exactly one input leaf
/// are adopted byte-for-byte without decoding. kRecordAtATime is the
/// reference pipeline that replays one record per step — kept for the
/// merge ablation benchmark and the merge-equivalence tests. Row layouts
/// ignore the knob.
enum class MergePipeline { kRunLevel, kRecordAtATime };

struct DatasetOptions {
  /// Physical record layout of the primary index.
  LayoutKind layout = LayoutKind::kAmax;

  /// Directory for component files and the MANIFEST (created if missing).
  std::string dir;
  /// Dataset name (component file prefix; no '/').
  std::string name = "dataset";
  /// Top-level int64 primary-key field.
  std::string pk_field = "id";

  size_t page_size = kDefaultPageSize;
  /// In-memory component budget; a flush triggers when exceeded.
  size_t memtable_bytes = 32u << 20;
  /// LZ page-level compression (the Snappy stand-in, §6).
  bool compress = true;

  // Tiering merge policy (§6.3).
  double size_ratio = 1.2;
  int max_components = 5;
  /// Which compaction policy picks merges (and the writer-stall bound);
  /// the default reproduces the historical size-tiered behavior exactly.
  /// A runtime knob, not part of the durable identity: a dataset may be
  /// reopened under any policy. Store::OpenDataset sets it from
  /// StoreOptions::compaction.
  CompactionOptions compaction;
  /// Merge automatically after flushes according to the policy. With a
  /// `scheduler`, auto-merges are *scheduled* onto its workers instead of
  /// blocking the writer; without one they run inline as before.
  bool auto_merge = true;
  /// Columnar merge execution strategy (see MergePipeline). A runtime
  /// knob, not recorded in the manifest: both pipelines produce
  /// query-equivalent components.
  MergePipeline merge_pipeline = MergePipeline::kRunLevel;

  // --- Concurrent ingestion (background flush/merge) ---

  /// Background worker pool running this dataset's flushes and merges.
  /// nullptr (the default) keeps the historical synchronous behavior:
  /// Insert/Delete flush and merge inline on the calling thread, and the
  /// dataset is then only thread-safe for concurrent *readers*. With a
  /// scheduler, a full memtable is rotated onto the immutable list and
  /// flushed in the background while writers continue into a fresh one,
  /// and the dataset is fully thread-safe (any number of concurrent
  /// writers and readers). Not validated (a runtime wiring knob, not
  /// configuration); must outlive the dataset. Store::OpenDataset sets it
  /// from StoreOptions::background_threads.
  FlushMergeScheduler* scheduler = nullptr;

  /// Back-pressure bound: with a scheduler, writers stall once this many
  /// sealed (rotated, not-yet-flushed) memtables are queued, resuming as
  /// the background flush drains them. Higher values absorb longer ingest
  /// bursts at the cost of memory (each immutable holds up to
  /// `memtable_bytes`). Must be >= 1. Ignored without a scheduler.
  size_t max_immutable_memtables = 4;

  /// AMAX mega-leaf shaping (§4.3, §4.5.2). page_size/compress are copied
  /// from the fields above at use.
  size_t amax_max_records = 15000;
  double amax_empty_page_tolerance = 0.125;

  /// APAX: a leaf is emitted when the estimated encoded size of pending
  /// chunks reaches this fraction of a page.
  double apax_fill_fraction = 1.0;

  /// Per-write durability via a write-ahead log (see storage/wal.h).
  /// Off by default: the historical contract — Flush() is the durability
  /// point, the active/sealed memtables are volatile — stays fsync-free.
  /// Enabled, every acknowledged Insert/Delete survives a crash:
  /// Dataset::Open replays the log into the memtable after manifest
  /// recovery. A runtime knob, not part of the durable identity: a
  /// dataset may be opened with the WAL on or off across runs (segments
  /// written while on are replayed by the next WAL-enabled open; they are
  /// ignored, not deleted, by a WAL-disabled one). Store::OpenDataset
  /// sets this from StoreOptions::wal.
  WalOptions wal;

  // --- I/O fault tolerance ---

  /// Filesystem all dataset I/O goes through (component files, WAL
  /// segments, manifest rewrites, directory syncs, the stale-file sweep).
  /// nullptr (the default) means the process-wide POSIX filesystem; tests
  /// substitute a FaultInjectionFs to exercise error paths. A runtime
  /// wiring knob like `scheduler`: not validated, must outlive the
  /// dataset. Store::OpenDataset sets it from StoreOptions::fs.
  FileSystem* fs = nullptr;

  /// Transient-I/O retry policy for background work (flush builds, merge
  /// builds, manifest rewrites) and WAL segment writes: IOError-class
  /// failures are retried with capped exponential backoff before the
  /// failure is surfaced (background_error_ / fail-closed WAL).
  /// Corruption and checksum failures are never retried — retrying
  /// damage cannot help and delays quarantine. Retry counts and total
  /// backoff surface in DatasetStats.
  IoRetryOptions io_retry;

  /// On-disk component format for *new* components: 3 (the default)
  /// writes a per-page checksum trailer verified on every cache miss;
  /// 2 writes the legacy raw-page format. Reads auto-detect per file, so
  /// a dataset may freely mix both (components written before the
  /// upgrade stay readable alongside checksummed ones).
  uint32_t component_format_version = kComponentFormatChecksummed;
};

/// Checks every field up front and returns InvalidArgument naming the
/// offending field — so misconfiguration fails at Dataset::Open, not deep
/// inside the first flush.
Status ValidateDatasetOptions(const DatasetOptions& options);

}  // namespace lsmcol

#endif  // LSMCOL_LSM_OPTIONS_H_
