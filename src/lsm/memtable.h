// MemTable: the LSM in-memory component. Stores row-encoded records
// (VB bytes for APAX/AMAX datasets, §4.5; the dataset's own row format for
// Open/VB datasets) ordered by primary key. Deletes are tombstones that
// become anti-matter entries at flush (§2.1.1); inserts with an existing
// key replace in place (upsert semantics at the component level).

#ifndef LSMCOL_LSM_MEMTABLE_H_
#define LSMCOL_LSM_MEMTABLE_H_

#include <cstdint>
#include <map>
#include <string>

namespace lsmcol {

class MemTable {
 public:
  struct Entry {
    bool anti_matter = false;
    std::string row;  // empty for anti-matter
  };

  /// Insert/replace a record's encoded row.
  void Upsert(int64_t key, std::string row) {
    Entry& e = entries_[key];
    bytes_ += row.size() + (e.row.empty() ? kEntryOverhead : 0);
    bytes_ -= e.row.size();
    e.anti_matter = false;
    e.row = std::move(row);
  }

  /// Record a delete (tombstone).
  void Delete(int64_t key) {
    Entry& e = entries_[key];
    if (e.row.empty() && !e.anti_matter) bytes_ += kEntryOverhead;
    bytes_ -= e.row.size();
    e.anti_matter = true;
    e.row.clear();
  }

  /// Lookup; nullptr when the key is not in the memtable (the key may
  /// still exist in disk components).
  const Entry* Find(int64_t key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

  const std::map<int64_t, Entry>& entries() const { return entries_; }
  size_t record_count() const { return entries_.size(); }
  size_t approximate_bytes() const { return bytes_; }
  bool empty() const { return entries_.empty(); }

  void Clear() {
    entries_.clear();
    bytes_ = 0;
  }

 private:
  static constexpr size_t kEntryOverhead = 48;  // map node + key

  std::map<int64_t, Entry> entries_;
  size_t bytes_ = 0;
};

}  // namespace lsmcol

#endif  // LSMCOL_LSM_MEMTABLE_H_
