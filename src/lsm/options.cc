#include "src/lsm/options.h"

namespace lsmcol {
namespace {

Status Bad(const char* field, const std::string& why) {
  return Status::InvalidArgument("DatasetOptions." + std::string(field) +
                                 " " + why);
}

}  // namespace

const char* CompactionStrategyName(CompactionStrategy strategy) {
  switch (strategy) {
    case CompactionStrategy::kTiered:
      return "tiered";
    case CompactionStrategy::kLeveled:
      return "leveled";
    case CompactionStrategy::kLazyLeveling:
      return "lazy-leveling";
  }
  return "unknown";
}

Status ValidateCompactionOptions(const CompactionOptions& options,
                                 const std::string& field_prefix) {
  const auto bad = [&field_prefix](const char* field, const std::string& why) {
    return Status::InvalidArgument(field_prefix + field + " " + why);
  };
  switch (options.strategy) {
    case CompactionStrategy::kTiered:
    case CompactionStrategy::kLeveled:
    case CompactionStrategy::kLazyLeveling:
      break;
    default:
      return bad("strategy",
                 "must be kTiered, kLeveled, or kLazyLeveling, got " +
                     std::to_string(static_cast<int>(options.strategy)));
  }
  if (options.level_fanout < 2 || options.level_fanout > 64) {
    return bad("level_fanout", "must be in [2, 64], got " +
                                   std::to_string(options.level_fanout));
  }
  if (options.level0_components < 2) {
    return bad("level0_components",
               "must be >= 2, got " +
                   std::to_string(options.level0_components));
  }
  return Status::OK();
}

Status ValidateDatasetOptions(const DatasetOptions& options) {
  if (options.dir.empty()) return Bad("dir", "must be non-empty");
  if (options.name.empty()) return Bad("name", "must be non-empty");
  if (options.name.find('/') != std::string::npos) {
    return Bad("name", "must not contain '/': " + options.name);
  }
  if (options.name == "." || options.name == "..") {
    return Bad("name", "must not be a relative path component: " +
                           options.name);
  }
  if (options.pk_field.empty()) return Bad("pk_field", "must be non-empty");
  if (options.page_size < kMinPageSize) {
    return Bad("page_size", "must be at least " +
                                std::to_string(kMinPageSize) + " bytes, got " +
                                std::to_string(options.page_size));
  }
  if (options.memtable_bytes == 0) {
    return Bad("memtable_bytes", "must be positive");
  }
  if (!(options.size_ratio > 1.0)) {
    return Bad("size_ratio", "must be > 1, got " +
                                 std::to_string(options.size_ratio));
  }
  if (options.max_components < 2) {
    return Bad("max_components", "must be >= 2, got " +
                                     std::to_string(options.max_components));
  }
  LSMCOL_RETURN_NOT_OK(ValidateCompactionOptions(options.compaction,
                                                 "DatasetOptions.compaction."));
  if (options.max_immutable_memtables < 1) {
    return Bad("max_immutable_memtables", "must be >= 1, got " +
                   std::to_string(options.max_immutable_memtables));
  }
  if (!(options.apax_fill_fraction > 0.0) ||
      options.apax_fill_fraction > 1.0) {
    return Bad("apax_fill_fraction", "must be in (0, 1]");
  }
  if (options.amax_max_records == 0) {
    return Bad("amax_max_records", "must be positive");
  }
  if (!(options.amax_empty_page_tolerance >= 0.0) ||
      options.amax_empty_page_tolerance > 1.0) {
    return Bad("amax_empty_page_tolerance", "must be in [0, 1]");
  }
  if (options.wal.enabled) {
    if (options.wal.group_window_us > 1000000) {
      return Bad("wal.group_window_us",
                 "must be at most 1000000 (1 s), got " +
                     std::to_string(options.wal.group_window_us));
    }
    if (options.wal.max_group_bytes == 0) {
      return Bad("wal.max_group_bytes", "must be positive");
    }
  }
  if (options.io_retry.max_retries < 0) {
    return Bad("io_retry.max_retries", "must be >= 0, got " +
                   std::to_string(options.io_retry.max_retries));
  }
  if (options.io_retry.max_retries > 0 &&
      options.io_retry.initial_backoff_micros >
          options.io_retry.max_backoff_micros) {
    return Bad("io_retry.initial_backoff_micros",
               "must not exceed io_retry.max_backoff_micros");
  }
  if (options.component_format_version != kComponentFormatLegacy &&
      options.component_format_version != kComponentFormatChecksummed) {
    return Bad("component_format_version",
               "must be " + std::to_string(kComponentFormatLegacy) + " or " +
                   std::to_string(kComponentFormatChecksummed) + ", got " +
                   std::to_string(options.component_format_version));
  }
  return Status::OK();
}

}  // namespace lsmcol
