#include "src/lsm/compaction_policy.h"

#include <algorithm>
#include <limits>

namespace lsmcol {
namespace {

/// The historical size-tiered rule, extracted verbatim from
/// Dataset::PickMergeCountLocked so the default policy is bit-for-bit
/// plan-compatible with every dataset built before policies existed:
/// merge the newest prefix [0, i] whose accumulated size reaches
/// size_ratio times component i, else force the two newest once the
/// stack exceeds max_components. Any quarantined component suspends
/// merging entirely (the historical behavior: quarantine is rare and
/// an operator decision point, so the policy goes quiet rather than
/// merging around damage).
CompactionPlan TieredPick(const std::vector<CompactionComponentView>& views,
                          size_t n, double size_ratio, int max_components) {
  if (n < 2) return {};
  size_t merge_count = 0;
  uint64_t younger_total = 0;
  for (size_t i = 0; i + 1 <= n; ++i) {
    if (i > 0) younger_total += views[i - 1].size_bytes;
    if (i >= 1 && static_cast<double>(younger_total) >=
                      size_ratio * static_cast<double>(views[i].size_bytes)) {
      merge_count = i + 1;
    }
  }
  if (merge_count < 2 && n > static_cast<size_t>(max_components)) {
    merge_count = 2;
  }
  if (merge_count < 2) return {};
  return {0, merge_count};
}

class TieredPolicy : public CompactionPolicy {
 public:
  TieredPolicy(double size_ratio, int max_components)
      : size_ratio_(size_ratio), max_components_(max_components) {}

  const char* name() const override { return "tiered"; }

  CompactionPlan PickMerge(
      const std::vector<CompactionComponentView>& views) const override {
    for (const auto& view : views) {
      if (view.quarantined) return {};
    }
    return TieredPick(views, views.size(), size_ratio_, max_components_);
  }

  /// The historical hardcoded bound: the policy keeps at most
  /// max_components in steady state, so twice that absorbs a merge
  /// backlog before writers stall.
  size_t stall_component_limit() const override {
    return static_cast<size_t>(max_components_) * 2;
  }

 private:
  const double size_ratio_;
  const int max_components_;
};

/// Leveled: components are classed into size levels — level 0 holds
/// fresh flushes (size <= base), level l holds sizes in
/// (base*fanout^(l-1), base*fanout^l] — and the invariant is at most
/// one run per level >= 1. Flushes accumulate in level 0; once
/// level0_components of them pile up they merge together with, via the
/// cascade below, every older component the growing output catches up
/// to. Partial (mid-stack) merges use the same newest-first adjacency:
/// a plan is always a contiguous range, executed by MergeRangeLocked.
class LeveledPolicy : public CompactionPolicy {
 public:
  LeveledPolicy(uint64_t base_bytes, int fanout, int level0_components)
      : base_bytes_(std::max<uint64_t>(1, base_bytes)),
        fanout_(fanout),
        level0_components_(static_cast<size_t>(level0_components)) {}

  const char* name() const override { return "leveled"; }

  CompactionPlan PickMerge(
      const std::vector<CompactionComponentView>& views) const override {
    // Operate only on the healthy (not-quarantined) newest prefix:
    // quarantined components and everything older stay fenced off, but
    // fresh flushes in front of them must still be compactable or
    // ingest would wedge behind a single damaged component.
    size_t n = 0;
    while (n < views.size() && !views[n].quarantined) ++n;
    if (n < 2) return {};

    // Count the leading level-0 run (fresh flushes).
    size_t k0 = 0;
    while (k0 < n && LevelOf(views[k0].size_bytes) == 0) ++k0;

    CompactionPlan plan;
    uint64_t out_bytes = 0;
    if (k0 >= level0_components_) {
      // Level-0 trigger: merge the whole flush backlog at once.
      plan = {0, k0};
    } else {
      // Steady-state invariant repair: two runs sharing a level >= 1
      // (the previous cascade's output landed in an occupied level).
      // Scanning starts at k0 so a still-accumulating level-0 backlog
      // is never nibbled two-at-a-time.
      size_t pair = n;
      for (size_t i = k0; i + 1 < n; ++i) {
        if (LevelOf(views[i].size_bytes) ==
            LevelOf(views[i + 1].size_bytes)) {
          pair = i;
          break;
        }
      }
      if (pair == n) return {};
      plan = {pair, 2};
    }
    for (size_t i = plan.begin; i < plan.end(); ++i) {
      out_bytes += views[i].size_bytes;
    }
    // Cascade: while the next-older component sits in a level the
    // accumulated output has already reached, fold it in too. This is
    // what keeps levels single-run: the output never lands beside an
    // equal-or-smaller resident, it absorbs them on the way down.
    while (plan.end() < n &&
           LevelOf(views[plan.end()].size_bytes) <= LevelOf(out_bytes)) {
      out_bytes += views[plan.end()].size_bytes;
      ++plan.count;
    }
    return plan;
  }

  /// Steady state holds level0_components-1 fresh flushes plus one run
  /// in each of the O(log_fanout(data/base)) deeper levels; twice the
  /// level-0 trigger plus generous level headroom bounds the stack
  /// without ever stalling a healthy workload.
  size_t stall_component_limit() const override {
    return level0_components_ * 2 + 16;
  }

  /// Size class of a component: 0 for anything at most one memtable's
  /// worth, else the smallest l with size <= base * fanout^l.
  size_t LevelOf(uint64_t size_bytes) const {
    uint64_t cap = base_bytes_;
    size_t level = 0;
    while (size_bytes > cap) {
      ++level;
      // fanout <= 64 < 2^7, so this guard fires before cap*fanout can
      // wrap; everything larger shares one bottom level.
      if (cap > (std::numeric_limits<uint64_t>::max() >> 7)) break;
      cap *= static_cast<uint64_t>(fanout_);
    }
    return level;
  }

 private:
  const uint64_t base_bytes_;
  const int fanout_;
  const size_t level0_components_;
};

/// Lazy-leveling (Dostoevsky): tiering everywhere except the last
/// level. The oldest component is kept as a single large run; the
/// younger part of the stack runs the exact tiered rule among
/// themselves, and the big run absorbs them only when their combined
/// size reaches 1/fanout of its own — so the expensive full rewrite
/// happens once per fanout-fold of growth instead of per size_ratio
/// trigger.
class LazyLevelingPolicy : public CompactionPolicy {
 public:
  LazyLevelingPolicy(double size_ratio, int max_components, int fanout)
      : size_ratio_(size_ratio),
        max_components_(max_components),
        fanout_(fanout) {}

  const char* name() const override { return "lazy-leveling"; }

  CompactionPlan PickMerge(
      const std::vector<CompactionComponentView>& views) const override {
    // Healthy newest prefix, as in LeveledPolicy.
    size_t n = 0;
    while (n < views.size() && !views[n].quarantined) ++n;
    if (n < 2) return {};

    if (n == views.size()) {
      // The prefix reaches the oldest component — the "last level" run.
      uint64_t young_bytes = 0;
      for (size_t i = 0; i + 1 < n; ++i) young_bytes += views[i].size_bytes;
      const uint64_t oldest = views[n - 1].size_bytes;
      if (young_bytes * static_cast<uint64_t>(fanout_) >= oldest) {
        // Absorb: one full merge leaves a single max-level run again.
        return {0, n};
      }
      // Otherwise tier among the young components only.
      return TieredPick(views, n - 1, size_ratio_, max_components_);
    }
    // A quarantined component hides the oldest run; everything healthy
    // counts as "young" and tiers among itself.
    return TieredPick(views, n, size_ratio_, max_components_);
  }

  /// Like tiered (the young part obeys the same max_components), plus
  /// the one resident last-level run and one slot of slack for a merge
  /// output in flight.
  size_t stall_component_limit() const override {
    return static_cast<size_t>(max_components_) * 2 + 2;
  }

 private:
  const double size_ratio_;
  const int max_components_;
  const int fanout_;
};

}  // namespace

std::unique_ptr<CompactionPolicy> MakeCompactionPolicy(
    const DatasetOptions& options) {
  const CompactionOptions& c = options.compaction;
  switch (c.strategy) {
    case CompactionStrategy::kLeveled: {
      // A flushed component never exceeds the memtable that produced
      // it, so memtable_bytes is the natural level-0 size class.
      const uint64_t base = c.level_base_bytes != 0
                                ? c.level_base_bytes
                                : static_cast<uint64_t>(options.memtable_bytes);
      return std::make_unique<LeveledPolicy>(base, c.level_fanout,
                                             c.level0_components);
    }
    case CompactionStrategy::kLazyLeveling:
      return std::make_unique<LazyLevelingPolicy>(
          options.size_ratio, options.max_components, c.level_fanout);
    case CompactionStrategy::kTiered:
      break;
  }
  return std::make_unique<TieredPolicy>(options.size_ratio,
                                        options.max_components);
}

}  // namespace lsmcol
