#include "src/lsm/scrubber.h"

#include <algorithm>
#include <chrono>

#include "src/lsm/dataset.h"
#include "src/lsm/snapshot.h"

namespace lsmcol {

using Clock = std::chrono::steady_clock;

Scrubber::Scrubber(FlushMergeScheduler* scheduler,
                   const ScrubOptions& options)
    : scheduler_(scheduler), options_(options) {}

Scrubber::~Scrubber() { Stop(); }

void Scrubber::Register(Dataset* dataset) {
  MutexLock lock(&mu_);
  datasets_.push_back(dataset);
}

void Scrubber::Start() {
  MutexLock lock(&mu_);
  if (started_ || scheduler_ == nullptr) return;
  started_ = true;
  ScheduleNext(Clock::now());
}

void Scrubber::Stop() {
  stopping_.store(true, std::memory_order_release);
  MutexLock lock(&mu_);
  while (running_) cv_.Wait(&mu_);
}

uint64_t Scrubber::slices_run() const {
  MutexLock lock(&mu_);
  return slices_;
}

void Scrubber::ScheduleNext(Clock::time_point not_before) {
  // Dropped silently when the scheduler is stopping — a scrub slice that
  // never runs costs nothing (the low lane's documented contract).
  (void)scheduler_->ScheduleLow([this] { RunSlice(); }, not_before);
}

void Scrubber::RunSlice() {
  Dataset* dataset = nullptr;
  Cursor cur;
  {
    MutexLock lock(&mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      cv_.NotifyAll();
      return;
    }
    if (datasets_.empty()) {
      ScheduleNext(Clock::now() +
                   std::chrono::milliseconds(options_.interval_ms));
      return;
    }
    if (cursor_.dataset >= datasets_.size()) {
      cursor_.dataset = 0;
      cursor_.done.clear();
      cursor_.current_id = 0;
      cursor_.next_leaf = 0;
    }
    dataset = datasets_[cursor_.dataset];
    cur = cursor_;
    running_ = true;
  }

  // --- I/O outside mu_: one slice against a snapshot pinned just for it.
  const Clock::time_point slice_start = Clock::now();
  uint64_t leaves = 0, bytes = 0, damaged = 0, skipped = 0;
  bool dataset_pass_done = false;
  bool transient_error = false;
  {
    Snapshot::Ref snap = dataset->GetSnapshot();
    Buffer payload;
    while (!stopping_.load(std::memory_order_acquire) &&
           bytes < options_.max_slice_bytes && !transient_error) {
      // Resume the in-progress component, or pick the lowest-id one not
      // yet finished this pass (ids are stable; snapshot order is not).
      const Component* comp = nullptr;
      if (cur.current_id != 0) {
        for (size_t i = 0; i < snap->component_count(); ++i) {
          if (snap->component(i).meta().component_id == cur.current_id) {
            comp = &snap->component(i);
            break;
          }
        }
        if (comp == nullptr) {  // merged away between slices
          cur.current_id = 0;
          cur.next_leaf = 0;
        }
      }
      if (comp == nullptr) {
        uint64_t best = 0;
        for (size_t i = 0; i < snap->component_count(); ++i) {
          const Component& c = snap->component(i);
          const uint64_t id = c.meta().component_id;
          if (cur.done.count(id) != 0) continue;
          if (comp == nullptr || id < best) {
            comp = &c;
            best = id;
          }
        }
        if (comp == nullptr) {
          dataset_pass_done = true;
          break;
        }
        cur.current_id = comp->meta().component_id;
        cur.next_leaf = 0;
      }
      if (comp->quarantined()) {
        ++skipped;
        cur.done.insert(cur.current_id);
        cur.current_id = 0;
        continue;
      }
      const size_t leaf_count = comp->reader().leaves().size();
      while (cur.next_leaf < leaf_count &&
             bytes < options_.max_slice_bytes &&
             !stopping_.load(std::memory_order_acquire)) {
        Status st = comp->ScrubLeaf(cur.next_leaf, &payload);
        ++leaves;
        if (st.ok()) {
          bytes += payload.size();
          ++cur.next_leaf;
        } else if (st.IsDataDamage()) {
          // First damage quarantined the component; the rest of its
          // leaves would fail fast — stop probing it.
          ++damaged;
          cur.done.insert(cur.current_id);
          cur.current_id = 0;
          break;
        } else {
          // Transient I/O error: end the slice, leave the cursor on the
          // same leaf so the next slice retries it.
          transient_error = true;
          break;
        }
      }
      if (cur.current_id != 0 && cur.next_leaf >= leaf_count) {
        cur.done.insert(cur.current_id);
        cur.current_id = 0;
        cur.next_leaf = 0;
      }
    }
  }  // snapshot released before any sleep

  const uint64_t micros =
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                Clock::now() - slice_start)
                                .count());
  if (leaves > 0 || damaged > 0 || dataset_pass_done) {
    dataset->NoteScrub(leaves, bytes, damaged, micros, dataset_pass_done);
  }

  // Rate budget: a slice of N bytes earns N / bytes_per_sec of sleep.
  Clock::time_point next = Clock::now();
  if (options_.bytes_per_sec > 0 && bytes > 0) {
    next += std::chrono::microseconds(bytes * 1000000 /
                                      options_.bytes_per_sec);
  }

  MutexLock lock(&mu_);
  cursor_ = std::move(cur);
  ++slices_;
  running_ = false;
  cv_.NotifyAll();
  if (stopping_.load(std::memory_order_acquire)) return;
  if (dataset_pass_done) {
    cursor_.done.clear();
    cursor_.current_id = 0;
    cursor_.next_leaf = 0;
    ++cursor_.dataset;
    if (cursor_.dataset >= datasets_.size()) {
      // Full rotation over every dataset: idle until the next pass — but
      // never earlier than the rate budget allows, or a store small
      // enough to scan in one slice would be re-read at unbounded rate.
      cursor_.dataset = 0;
      next = std::max(
          next, Clock::now() + std::chrono::milliseconds(options_.interval_ms));
    }
  }
  ScheduleNext(next);
}

Result<ScrubPassResult> Scrubber::ScrubDataset(Dataset* dataset) {
  const Clock::time_point start = Clock::now();
  ScrubPassResult result;
  Snapshot::Ref snap = dataset->GetSnapshot();
  Buffer payload;
  for (size_t i = 0; i < snap->component_count(); ++i) {
    const Component& c = snap->component(i);
    if (c.quarantined()) {
      ++result.skipped_quarantined;
      continue;
    }
    bool comp_damaged = false;
    const size_t leaf_count = c.reader().leaves().size();
    for (size_t leaf = 0; leaf < leaf_count; ++leaf) {
      Status st = c.ScrubLeaf(leaf, &payload);
      ++result.leaves;
      if (st.ok()) {
        result.bytes += payload.size();
      } else if (st.IsDataDamage()) {
        comp_damaged = true;
        break;
      } else {
        return st;  // transient I/O error: surface, don't quarantine
      }
    }
    if (comp_damaged) {
      ++result.damaged;
    } else {
      ++result.components;
    }
  }
  const uint64_t micros =
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                Clock::now() - start)
                                .count());
  dataset->NoteScrub(result.leaves, result.bytes, result.damaged, micros,
                     /*pass_complete=*/true);
  return result;
}

}  // namespace lsmcol
