// Snapshot: an immutable, refcounted view of one dataset — the unit every
// read in lsmcol executes against.
//
// A snapshot pins (1) the active in-memory component as of GetSnapshot()
// time, (2) the sealed (immutable) memtables awaiting background flush,
// (3) the disk component list (newest first), and (4) the schema, all via
// shared ownership: flushes swap in a fresh memtable, merges publish a new
// component list and mark the inputs obsolete, and writers copy-on-write a
// shared memtable — none of which disturbs a live snapshot. A component
// merged away while pinned is deleted only when the last snapshot
// referencing it dies (the LSM invariant that components are immutable and
// readers enter/exit them, §2.1.1).
//
// Thread safety: snapshot acquisition happens under Dataset::mu_ (one
// brief critical section copying shared_ptrs — no data; the lock
// discipline is annotated in lsm/dataset.h and src/common/mutex.h), the
// refcounts keeping the pinned state alive are atomic, and everything a
// snapshot references is frozen at acquisition, so any number of threads
// may read through (their own) snapshots concurrently with writers and
// background flushes/merges. One Snapshot object and its cursors are
// still single-reader: share a dataset between threads, not a cursor.
//
// Cursors returned by a snapshot pin it, so `dataset->Scan(...)` (which
// takes an implicit snapshot) stays valid across later flushes/merges.
// The BufferCache must outlive every snapshot.

#ifndef LSMCOL_LSM_SNAPSHOT_H_
#define LSMCOL_LSM_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/lsm/component.h"
#include "src/lsm/memtable.h"

namespace lsmcol {

class Snapshot;

/// Reconciled scan over one dataset view (memtable + all components).
/// Anti-matter and shadowed records are skipped.
class LsmScanCursor : public TupleCursor {
 public:
  /// `sources` ordered newest first (memtable, then components new→old).
  explicit LsmScanCursor(std::vector<std::unique_ptr<TupleCursor>> sources);

  Result<bool> Next() override;
  int64_t key() const override { return winner_->key(); }
  bool anti_matter() const override { return false; }
  Status Record(Value* out) override { return winner_->Record(out); }
  Status Path(const std::vector<std::string>& path, Value* out) override {
    return winner_->Path(path, out);
  }
  Status SeekForward(int64_t target) override;
  /// The winning source's verdict for the current record.
  Result<PredicateVerdict> TestPushedPredicates() override {
    return winner_->TestPushedPredicates();
  }

  /// The winning source of the current record (for typed column access by
  /// the compiled engine; may be any TupleCursor subclass).
  TupleCursor* winner() { return winner_; }

  /// Keep `snapshot` alive for as long as this cursor reads from it.
  void Pin(std::shared_ptr<const Snapshot> snapshot) {
    pinned_ = std::move(snapshot);
  }

 private:
  struct Source {
    std::unique_ptr<TupleCursor> cursor;
    bool has_current = false;
    bool needs_advance = true;
  };

  std::vector<Source> sources_;
  TupleCursor* winner_ = nullptr;
  std::shared_ptr<const Snapshot> pinned_;
};

/// Stateful batched point lookups for ascending keys (§4.6): the LSM
/// cursor state persists across Find calls, so sorted secondary-index
/// results read each column chunk once. Pins its snapshot.
class LookupBatch {
 public:
  /// Keys must be non-decreasing across calls.
  Status Find(int64_t key, bool* found, Value* out);

 private:
  friend class Snapshot;
  explicit LookupBatch(std::unique_ptr<LsmScanCursor> cursor)
      : cursor_(std::move(cursor)) {}

  std::unique_ptr<LsmScanCursor> cursor_;
  bool has_current_ = false;
  bool exhausted_ = false;
};

/// \brief One dataset's state at a point in time, held immutable.
///
/// Obtained from Dataset::GetSnapshot(); lives independently of the
/// dataset (and may outlive it, as long as the BufferCache survives).
class Snapshot : public std::enable_shared_from_this<Snapshot> {
 public:
  using Ref = std::shared_ptr<const Snapshot>;

  /// Reconciled scan of the pinned view. For columnar layouts the
  /// projection limits which megapages/minipage chunks are ever decoded
  /// (and, for AMAX, read).
  Result<std::unique_ptr<LsmScanCursor>> Scan(
      const Projection& projection) const;

  /// Scan with predicate pushdown: `predicates` (necessary conditions of
  /// the query filter — see scan_predicate.h) are handed to columnar
  /// sources, which use zone maps to skip megapages/leaves and report
  /// per-record PredicateVerdicts through the cursor. Row sources ignore
  /// them (verdict kUnknown). Results are never narrowed below what the
  /// predicates imply; an empty set behaves exactly like plain Scan.
  Result<std::unique_ptr<LsmScanCursor>> Scan(
      const Projection& projection, const ScanPredicateSet& predicates) const;

  /// Point lookup. NotFound when the key does not exist (or was deleted)
  /// in this view.
  Status Lookup(int64_t key, Value* out) const;
  /// Point lookup materializing only the projected paths (§4.6: index
  /// maintenance fetches just the old indexed values).
  Status Lookup(int64_t key, const Projection& projection, Value* out) const;

  Result<std::unique_ptr<LookupBatch>> NewLookupBatch(
      const Projection& projection) const;

  // --- Introspection (all frozen at GetSnapshot() time) ---
  LayoutKind layout() const { return layout_; }
  size_t component_count() const { return components_.size(); }
  const Component& component(size_t i) const { return *components_[i]; }
  const MemTable& memtable() const { return *memtable_; }
  /// Sealed memtables pinned by this snapshot, newest first (non-empty
  /// only while a background flush is pending).
  size_t immutable_memtable_count() const { return immutables_.size(); }
  const MemTable& immutable_memtable(size_t i) const {
    return *immutables_[i];
  }
  /// Schema as of snapshot time (columnar layouts only; else nullptr).
  const Schema* schema() const { return schema_.get(); }
  const RowCodec& row_codec() const { return *row_codec_; }
  uint64_t OnDiskBytes() const;

 private:
  friend class Dataset;
  Snapshot() = default;

  LayoutKind layout_ = LayoutKind::kOpen;
  const RowCodec* row_codec_ = nullptr;
  std::shared_ptr<const MemTable> memtable_;  // active at snapshot time
  /// Sealed memtables awaiting flush, newest first: reconciliation order
  /// is active memtable, then these, then the disk components.
  std::vector<std::shared_ptr<const MemTable>> immutables_;
  std::shared_ptr<const Schema> schema_;  // columnar layouts only
  std::vector<std::shared_ptr<const Component>> components_;  // newest first
};

}  // namespace lsmcol

#endif  // LSMCOL_LSM_SNAPSHOT_H_
