// Scrubber: background integrity scanning of on-disk components.
//
// Checksums are only verified when a page is physically read, and the
// buffer cache means hot pages are read once — so silent media decay on
// a cold component can sit undetected until the day a merge or query
// finally touches it. The scrubber closes that window: it re-reads every
// component leaf through ReadLeafUncached (physical read + v3 trailer
// verification, no cache pollution) on a byte-rate budget, running as
// low-priority FlushMergeScheduler tasks so a scrub slice never delays a
// flush or merge.
//
// Damage handling is the component's own quarantine machinery: the first
// damaged leaf quarantines the component, the dataset persists the
// damage record into its manifest (no silent "heal" across restart), and
// the scrubber simply skips already-quarantined components. Repair is
// Dataset::RepairQuarantined (from a backup) or offline salvage.
//
// Progress is tracked per dataset as a set of fully-scrubbed component
// ids plus a (component id, next leaf) resume point. Components are
// immutable, so resuming mid-component after the snapshot was re-pinned
// is safe; a component merged away between slices is simply dropped.
// Each slice pins its own snapshot and releases it before sleeping, so
// the scrubber never holds merged-away components alive between slices.

#ifndef LSMCOL_LSM_SCRUBBER_H_
#define LSMCOL_LSM_SCRUBBER_H_

#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/lsm/scheduler.h"

namespace lsmcol {

class Dataset;

/// Knobs for background scrubbing (StoreOptions::scrub).
struct ScrubOptions {
  /// Off by default: scrubbing is pure read amplification until the
  /// deployment opts in.
  bool enabled = false;
  /// Physical-read budget. A slice of N bytes delays the next slice by
  /// N / bytes_per_sec. 0 = unthrottled (tests, explicit ScrubNow).
  uint64_t bytes_per_sec = 8ull << 20;
  /// Idle time between full passes over every registered dataset.
  uint64_t interval_ms = 60 * 1000;
  /// Upper bound on bytes verified per scheduler task, so one slice
  /// occupies a worker for a bounded time even unthrottled.
  uint64_t max_slice_bytes = 4ull << 20;
};

/// Tallies of one full synchronous pass (ScrubDataset / Store::ScrubNow).
struct ScrubPassResult {
  uint64_t components = 0;            ///< components fully verified
  uint64_t leaves = 0;                ///< leaves probed (incl. damaged)
  uint64_t bytes = 0;                 ///< payload bytes verified
  uint64_t damaged = 0;               ///< components newly quarantined
  uint64_t skipped_quarantined = 0;   ///< already quarantined, not probed
};

class Scrubber {
 public:
  /// `scheduler` must outlive the scrubber; Stop() must be called (the
  /// owning Store does) before the scheduler stops.
  Scrubber(FlushMergeScheduler* scheduler, const ScrubOptions& options);
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// Add a dataset to the scrub rotation. The dataset must outlive the
  /// scrubber's Stop() (Store closes the scrubber before its datasets).
  void Register(Dataset* dataset) LSMCOL_EXCLUDES(mu_);

  /// Begin scheduling slices (idempotent).
  void Start() LSMCOL_EXCLUDES(mu_);

  /// Stop scheduling and wait for any in-flight slice to finish. A slice
  /// already queued but not yet running becomes a no-op when it fires
  /// (or is discarded with the scheduler's low lane). Idempotent.
  void Stop() LSMCOL_EXCLUDES(mu_);

  /// Slices executed so far (monotonic; for tests).
  uint64_t slices_run() const LSMCOL_EXCLUDES(mu_);

  /// One full synchronous, unthrottled pass over `dataset` — the
  /// Store::ScrubNow() engine, also usable without any Scrubber
  /// instance. Damage quarantines components exactly like the background
  /// path; transient (non-damage) I/O errors abort and surface.
  static Result<ScrubPassResult> ScrubDataset(Dataset* dataset);

 private:
  /// Resume point of the background rotation.
  struct Cursor {
    size_t dataset = 0;           ///< index into datasets_
    std::set<uint64_t> done;      ///< component ids finished this pass
    uint64_t current_id = 0;      ///< mid-component resume (0 = none)
    size_t next_leaf = 0;
  };

  /// The scheduled task: scrub up to max_slice_bytes, then reschedule.
  void RunSlice() LSMCOL_EXCLUDES(mu_);
  void ScheduleNext(std::chrono::steady_clock::time_point not_before)
      LSMCOL_REQUIRES(mu_);

  FlushMergeScheduler* const scheduler_;
  const ScrubOptions options_;

  mutable Mutex mu_{MutexRank::kScrubber};
  CondVar cv_;
  std::vector<Dataset*> datasets_ LSMCOL_GUARDED_BY(mu_);
  Cursor cursor_ LSMCOL_GUARDED_BY(mu_);
  bool started_ LSMCOL_GUARDED_BY(mu_) = false;
  bool running_ LSMCOL_GUARDED_BY(mu_) = false;  ///< slice executing now
  uint64_t slices_ LSMCOL_GUARDED_BY(mu_) = 0;
  /// Checked between leaves mid-slice (outside mu_), so atomic.
  std::atomic<bool> stopping_{false};
};

}  // namespace lsmcol

#endif  // LSMCOL_LSM_SCRUBBER_H_
