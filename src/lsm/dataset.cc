#include "src/lsm/dataset.h"

#include <algorithm>

#include "src/columnar/shredder.h"
#include "src/json/parser.h"
#include "src/storage/file.h"

namespace lsmcol {

// ----------------------------------------------------------------- Dataset

Dataset::Dataset(const DatasetOptions& options, BufferCache* cache)
    : options_(options),
      cache_(cache),
      memtable_(std::make_shared<MemTable>()),
      manifest_path_(ManifestPath(options.dir, options.name)) {
  row_codec_ = &GetRowCodec(columnar() ? LayoutKind::kVb : options_.layout);
  if (columnar()) schema_ = std::make_shared<Schema>(options_.pk_field);
}

Dataset::~Dataset() = default;

Result<std::unique_ptr<Dataset>> Dataset::Create(const DatasetOptions& options,
                                                 BufferCache* cache) {
  return Open(options, cache);
}

Result<std::unique_ptr<Dataset>> Dataset::Open(const DatasetOptions& options,
                                               BufferCache* cache) {
  LSMCOL_RETURN_NOT_OK(ValidateDatasetOptions(options));
  if (cache->page_size() != options.page_size) {
    return Status::InvalidArgument(
        "DatasetOptions.page_size (" + std::to_string(options.page_size) +
        ") does not match the buffer cache page size (" +
        std::to_string(cache->page_size()) + ")");
  }
  LSMCOL_RETURN_NOT_OK(CreateDirDurable(options.dir));
  std::unique_ptr<Dataset> dataset(new Dataset(options, cache));
  if (FileExists(dataset->manifest_path_)) {
    LSMCOL_ASSIGN_OR_RETURN(Manifest manifest,
                            ReadManifest(dataset->manifest_path_));
    LSMCOL_RETURN_NOT_OK(dataset->RecoverFromManifest(manifest));
  } else {
    // Fresh dataset. A manifest-less directory cannot own components, so
    // anything matching our naming scheme is leftover garbage; sweep it
    // before the first component id gets reused.
    LSMCOL_RETURN_NOT_OK(
        RemoveStaleDatasetFiles(options.dir, options.name, {}, nullptr));
    LSMCOL_RETURN_NOT_OK(dataset->WriteCurrentManifest());
  }
  return dataset;
}

Status Dataset::RecoverFromManifest(const Manifest& manifest) {
  if (manifest.dataset_name != options_.name) {
    return Status::Corruption("manifest " + manifest_path_ +
                              " names dataset '" + manifest.dataset_name +
                              "', expected '" + options_.name + "'");
  }
  if (static_cast<LayoutKind>(manifest.layout) != options_.layout) {
    return Status::InvalidArgument(
        "DatasetOptions.layout (" +
        std::string(LayoutKindName(options_.layout)) +
        ") does not match the on-disk layout (" +
        std::string(LayoutKindName(static_cast<LayoutKind>(manifest.layout))) +
        ") of dataset " + options_.name);
  }
  if (manifest.pk_field != options_.pk_field) {
    return Status::InvalidArgument(
        "DatasetOptions.pk_field ('" + options_.pk_field +
        "') does not match the on-disk pk_field ('" + manifest.pk_field +
        "') of dataset " + options_.name);
  }
  if (manifest.page_size != options_.page_size) {
    return Status::InvalidArgument(
        "DatasetOptions.page_size (" + std::to_string(options_.page_size) +
        ") does not match the on-disk page_size (" +
        std::to_string(manifest.page_size) + ") of dataset " + options_.name);
  }
  manifest_sequence_ = manifest.sequence;
  next_component_id_ = manifest.next_component_id;
  // Crash cleanup first: interrupted flushes/merges may have left `*.tmp`
  // files or fully-renamed components the manifest never recorded.
  std::vector<std::string> referenced;
  for (const ManifestComponentEntry& entry : manifest.components) {
    referenced.push_back(entry.file);
  }
  LSMCOL_RETURN_NOT_OK(RemoveStaleDatasetFiles(options_.dir, options_.name,
                                               referenced, nullptr));
  for (const ManifestComponentEntry& entry : manifest.components) {
    LSMCOL_ASSIGN_OR_RETURN(
        auto component, Component::Open(options_.dir + "/" + entry.file,
                                        cache_, options_.page_size));
    if (component->meta().component_id != entry.id) {
      return Status::Corruption(
          "component " + entry.file + " carries id " +
          std::to_string(component->meta().component_id) +
          ", manifest expects " + std::to_string(entry.id));
    }
    if (component->meta().layout != options_.layout) {
      return Status::Corruption("component " + entry.file +
                                " layout does not match dataset layout");
    }
    components_.push_back(std::move(component));
  }
  if (columnar()) {
    if (!manifest.schema_blob.empty()) {
      LSMCOL_ASSIGN_OR_RETURN(Schema schema,
                              Schema::Deserialize(Slice(manifest.schema_blob)));
      schema_ = std::make_shared<Schema>(std::move(schema));
    } else if (!components_.empty()) {
      return Status::Corruption("columnar manifest lacks a schema: " +
                                manifest_path_);
    }
  }
  return Status::OK();
}

Status Dataset::WriteCurrentManifest() {
  Manifest manifest;
  manifest.sequence = manifest_sequence_ + 1;
  manifest.dataset_name = options_.name;
  manifest.layout = static_cast<uint8_t>(options_.layout);
  manifest.pk_field = options_.pk_field;
  manifest.page_size = options_.page_size;
  manifest.next_component_id = next_component_id_;
  for (const auto& component : components_) {
    const std::string& path = component->path();
    const size_t slash = path.find_last_of('/');
    manifest.components.push_back(
        {component->meta().component_id,
         slash == std::string::npos ? path : path.substr(slash + 1)});
  }
  if (schema_ != nullptr) {
    Buffer blob;
    schema_->SerializeTo(&blob);
    manifest.schema_blob.assign(blob.data(), blob.size());
  }
  Status st = WriteManifest(manifest_path_, manifest);
  if (!st.ok()) {
    manifest_dirty_ = true;
    return st;
  }
  manifest_dirty_ = false;
  ++manifest_sequence_;
  return Status::OK();
}

std::string Dataset::ComponentFilePath(uint64_t id) const {
  return options_.dir + "/" + options_.name + "_" + std::to_string(id) +
         ".cmp";
}

MemTable* Dataset::MutableMemtable() {
  if (memtable_.use_count() > 1) {
    // A snapshot shares this memtable: give writers a private copy so the
    // snapshot's view stays frozen.
    memtable_ = std::make_shared<MemTable>(*memtable_);
  }
  return memtable_.get();
}

Result<Schema*> Dataset::MutableSchema() {
  LSMCOL_CHECK(schema_ != nullptr);
  if (schema_.use_count() > 1) {
    // Schema is move-only; clone through its serialized form (column ids,
    // def levels, and merged_record_count round-trip exactly).
    Buffer blob;
    schema_->SerializeTo(&blob);
    LSMCOL_ASSIGN_OR_RETURN(Schema clone, Schema::Deserialize(blob.slice()));
    schema_ = std::make_shared<Schema>(std::move(clone));
  }
  return schema_.get();
}

Status Dataset::Insert(const Value& record) {
  const Value& pk = record.Get(options_.pk_field);
  if (!pk.is_int()) {
    return Status::InvalidArgument("record primary key '" + options_.pk_field +
                                   "' must be an int64");
  }
  Buffer row;
  row_codec_->Encode(record, &row);
  MutableMemtable()->Upsert(pk.int_value(),
                            std::string(row.data(), row.size()));
  ++stats_.inserts;
  if (memtable_->approximate_bytes() >= options_.memtable_bytes) {
    return Flush();
  }
  return Status::OK();
}

Status Dataset::InsertJson(std::string_view json) {
  LSMCOL_ASSIGN_OR_RETURN(Value v, ParseJson(json));
  return Insert(v);
}

Status Dataset::Delete(int64_t key) {
  MutableMemtable()->Delete(key);
  ++stats_.deletes;
  if (memtable_->approximate_bytes() >= options_.memtable_bytes) {
    return Flush();
  }
  return Status::OK();
}

Status Dataset::MaybeEmitColumnarLeaf(ColumnWriterSet* writers,
                                      ComponentWriter* writer, bool force) {
  if (writers->record_count() == 0) return Status::OK();
  if (options_.layout == LayoutKind::kApax) {
    const size_t budget = static_cast<size_t>(
        options_.apax_fill_fraction * static_cast<double>(options_.page_size));
    if (force || writers->EstimatedTotalSize() >= budget) {
      return EmitApaxLeaf(writers, writer, options_.compress);
    }
    return Status::OK();
  }
  // AMAX: cap by record count and keep Page 0 (table + PK chunk) within
  // one physical page.
  const size_t ncols = writers->column_count();
  const size_t page0_estimate =
      64 + ncols * 32 + writers->record_count() * 3;
  const bool page0_full =
      page0_estimate >= options_.page_size - options_.page_size / 8;
  if (force || writers->record_count() >= options_.amax_max_records ||
      page0_full) {
    AmaxOptions amax;
    amax.page_size = options_.page_size;
    amax.compress = options_.compress;
    amax.max_records = options_.amax_max_records;
    amax.empty_page_tolerance = options_.amax_empty_page_tolerance;
    return EmitAmaxLeaf(writers, writer, amax);
  }
  return Status::OK();
}

Status Dataset::FlushColumnar(ComponentWriter* writer, Schema* schema) {
  ColumnWriterSet writers(schema);
  RecordShredder shredder(schema, &writers);
  for (const auto& [key, entry] : memtable_->entries()) {
    if (entry.anti_matter) {
      LSMCOL_RETURN_NOT_OK(shredder.ShredAntiMatter(key));
    } else {
      Value record;
      LSMCOL_RETURN_NOT_OK(row_codec_->Decode(Slice(entry.row), &record));
      LSMCOL_RETURN_NOT_OK(shredder.Shred(record));
    }
    LSMCOL_RETURN_NOT_OK(MaybeEmitColumnarLeaf(&writers, writer, false));
  }
  return MaybeEmitColumnarLeaf(&writers, writer, true);
}

Status Dataset::FlushRows(ComponentWriter* writer) {
  RowLeafBuilder builder(writer, options_.page_size, options_.compress);
  for (const auto& [key, entry] : memtable_->entries()) {
    LSMCOL_RETURN_NOT_OK(
        builder.Add(key, entry.anti_matter, Slice(entry.row)));
  }
  return builder.Finish();
}

Status Dataset::Flush() {
  if (memtable_->empty()) {
    // A previous flush/merge may have installed state the manifest write
    // failed to record; Flush() only reports success once it is recorded.
    if (manifest_dirty_) return WriteCurrentManifest();
    return Status::OK();
  }
  const uint64_t id = next_component_id_;
  const std::string path = ComponentFilePath(id);
  const std::string tmp = path + ".tmp";
  {
    // Build the component under a temp name: a crash mid-write leaves
    // only a `.tmp` file the next Open sweeps away.
    LSMCOL_ASSIGN_OR_RETURN(
        auto writer, ComponentWriter::Create(tmp, cache_, options_.page_size));
    if (columnar()) {
      LSMCOL_ASSIGN_OR_RETURN(Schema * schema, MutableSchema());
      LSMCOL_RETURN_NOT_OK(FlushColumnar(writer.get(), schema));
    } else {
      LSMCOL_RETURN_NOT_OK(FlushRows(writer.get()));
    }
    ComponentMeta meta;
    meta.layout = options_.layout;
    meta.compressed = options_.compress;
    meta.component_id = id;
    meta.entry_count = memtable_->record_count();
    Buffer meta_blob;
    meta.SerializeTo(&meta_blob, columnar() ? schema_.get() : nullptr);
    LSMCOL_RETURN_NOT_OK(writer->Finish(meta_blob.slice()));
  }
  LSMCOL_RETURN_NOT_OK(RenameFile(tmp, path));
  LSMCOL_ASSIGN_OR_RETURN(auto component,
                          Component::Open(path, cache_, options_.page_size));
  components_.insert(components_.begin(), std::move(component));
  ++next_component_id_;
  // Release the flushed memtable *before* the manifest write; snapshots
  // keep their shared copy. If the manifest rewrite fails, in-memory
  // state stays consistent and a retried Flush is a no-op instead of
  // persisting the same rows into a second component — the installed
  // component simply stays unrecorded (and is swept as an orphan if the
  // process dies before a later rewrite succeeds; the caller saw the
  // error, so no durability promise is broken).
  if (memtable_.use_count() > 1) {
    memtable_ = std::make_shared<MemTable>();
  } else {
    memtable_->Clear();
  }
  ++stats_.flushes;
  LSMCOL_RETURN_NOT_OK(WriteCurrentManifest());
  if (options_.auto_merge) return MaybeMerge();
  return Status::OK();
}

// ------------------------------------------------------------------ merge

Status Dataset::MaybeMerge() {
  // Tiering (§6.3): merge the youngest sequence whose total size is
  // size_ratio times the oldest component of the sequence; otherwise, when
  // over the component limit, merge the two newest.
  while (true) {
    const size_t n = components_.size();
    if (n < 2) return Status::OK();
    size_t merge_count = 0;
    uint64_t younger_total = 0;
    for (size_t i = 0; i + 1 <= n; ++i) {
      // younger_total = sizes of components strictly newer than index i.
      if (i > 0) younger_total += components_[i - 1]->size_bytes();
      if (i >= 1 && static_cast<double>(younger_total) >=
                        options_.size_ratio *
                            static_cast<double>(components_[i]->size_bytes())) {
        merge_count = i + 1;  // merge components [0..i]
      }
    }
    if (merge_count < 2 &&
        n > static_cast<size_t>(options_.max_components)) {
      merge_count = 2;
    }
    if (merge_count < 2) return Status::OK();
    LSMCOL_RETURN_NOT_OK(MergeRange(merge_count));
  }
}

Status Dataset::MergeAll() {
  if (memtable_->empty() && components_.size() < 2) return Status::OK();
  LSMCOL_RETURN_NOT_OK(Flush());
  if (components_.size() < 2) return Status::OK();
  return MergeRange(components_.size());
}

Status Dataset::MergeRange(size_t count) {
  LSMCOL_CHECK(count >= 2 && count <= components_.size());
  const uint64_t id = next_component_id_;
  const std::string path = ComponentFilePath(id);
  const std::string tmp = path + ".tmp";
  for (size_t i = 0; i < count; ++i) {
    stats_.merged_bytes_in += components_[i]->size_bytes();
  }
  {
    LSMCOL_ASSIGN_OR_RETURN(
        auto writer, ComponentWriter::Create(tmp, cache_, options_.page_size));
    if (columnar()) {
      LSMCOL_ASSIGN_OR_RETURN(Schema * schema, MutableSchema());
      LSMCOL_RETURN_NOT_OK(MergeColumnarRange(count, writer.get(), schema));
    } else {
      LSMCOL_RETURN_NOT_OK(MergeRowRange(count, writer.get()));
    }
    uint64_t entries = 0;
    for (size_t i = 0; i < count; ++i) {
      entries += components_[i]->meta().entry_count;
    }
    ComponentMeta meta;
    meta.layout = options_.layout;
    meta.compressed = options_.compress;
    meta.component_id = id;
    meta.entry_count = entries;  // upper bound; queries never rely on it
    Buffer meta_blob;
    meta.SerializeTo(&meta_blob, columnar() ? schema_.get() : nullptr);
    LSMCOL_RETURN_NOT_OK(writer->Finish(meta_blob.slice()));
  }
  LSMCOL_RETURN_NOT_OK(RenameFile(tmp, path));
  LSMCOL_ASSIGN_OR_RETURN(auto merged,
                          Component::Open(path, cache_, options_.page_size));
  // Publish the new version: the merged component replaces its inputs.
  // Until here the component list was untouched, so a failed merge leaves
  // the dataset exactly as it was (modulo a swept-on-open temp file).
  std::vector<std::shared_ptr<Component>> retired(
      components_.begin(), components_.begin() + static_cast<long>(count));
  components_.erase(components_.begin(),
                    components_.begin() + static_cast<long>(count));
  components_.insert(components_.begin(), std::move(merged));
  ++next_component_id_;
  LSMCOL_RETURN_NOT_OK(WriteCurrentManifest());
  // Retire the inputs only now that the manifest stopped referencing
  // them. Each file is deleted when its last reference drops — right here
  // unless a live snapshot still pins it.
  for (auto& component : retired) component->MarkObsolete();
  retired.clear();
  ++stats_.merges;
  return Status::OK();
}

Status Dataset::MergeRowRange(size_t count, ComponentWriter* writer) {
  const bool includes_oldest = count == components_.size();
  std::vector<std::unique_ptr<RowComponentCursor>> cursors;
  std::vector<bool> has(count, false);
  for (size_t i = 0; i < count; ++i) {
    cursors.push_back(std::make_unique<RowComponentCursor>(
        components_[i].get()));
    LSMCOL_ASSIGN_OR_RETURN(bool ok, cursors[i]->Next());
    has[i] = ok;
  }
  RowLeafBuilder builder(writer, options_.page_size, options_.compress);
  while (true) {
    size_t min_idx = count;
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && (min_idx == count ||
                     cursors[i]->key() < cursors[min_idx]->key())) {
        min_idx = i;
      }
    }
    if (min_idx == count) break;
    const int64_t min_key = cursors[min_idx]->key();
    // Winner = newest (smallest index) holding the key.
    size_t winner = count;
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && cursors[i]->key() == min_key) {
        if (winner == count) winner = i;
      }
    }
    const bool anti = cursors[winner]->anti_matter();
    if (!(anti && includes_oldest)) {
      LSMCOL_RETURN_NOT_OK(
          builder.Add(min_key, anti, cursors[winner]->row()));
    }
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && cursors[i]->key() == min_key) {
        LSMCOL_ASSIGN_OR_RETURN(bool ok, cursors[i]->Next());
        has[i] = ok;
      }
    }
  }
  return builder.Finish();
}

namespace {

/// Decoded-APAX-leaf cache shared by all column streams of one component
/// during a vertical merge. Columns sweep the same leaves in the same
/// order, so a tiny FIFO turns the per-column re-reads of a whole APAX
/// page into hits — one decompression per leaf instead of one per leaf
/// per column (which is quadratic-feeling for 900-column datasets).
class ApaxLeafCache {
 public:
  explicit ApaxLeafCache(const Component* component)
      : component_(component) {}

  Result<const ApaxLeaf*> Get(size_t leaf_index) {
    for (auto& [index, leaf] : entries_) {
      if (index == leaf_index) return static_cast<const ApaxLeaf*>(leaf.get());
    }
    Buffer payload;
    LSMCOL_RETURN_NOT_OK(component_->reader().ReadLeaf(leaf_index, &payload));
    auto leaf = std::make_unique<ApaxLeaf>();
    LSMCOL_RETURN_NOT_OK(
        leaf->Init(payload.slice(), component_->meta().compressed));
    if (entries_.size() >= kCapacity) entries_.erase(entries_.begin());
    entries_.emplace_back(leaf_index, std::move(leaf));
    return static_cast<const ApaxLeaf*>(entries_.back().second.get());
  }

 private:
  static constexpr size_t kCapacity = 8;
  const Component* component_;
  std::vector<std::pair<size_t, std::unique_ptr<ApaxLeaf>>> entries_;
};

/// Streams one column of one columnar component across its leaves, for
/// the vertical merge (§4.5.3).
class ComponentColumnStream {
 public:
  ComponentColumnStream(const Component* component, int column_id,
                        ApaxLeafCache* apax_cache)
      : component_(component), column_id_(column_id),
        apax_cache_(apax_cache) {
    const Schema* schema = component->schema();
    absent_in_component_ =
        column_id >= schema->column_count();
  }

  Status Skip(uint64_t n) {
    if (absent_in_component_) return Status::OK();
    while (n > 0) {
      LSMCOL_RETURN_NOT_OK(EnsureLeaf());
      uint64_t take = std::min<uint64_t>(n, leaf_remaining_);
      if (leaf_exists_) {
        LSMCOL_RETURN_NOT_OK(reader_.SkipRecords(take));
      }
      leaf_remaining_ -= take;
      n -= take;
    }
    return Status::OK();
  }

  Status Copy(ColumnChunkWriter* writer) {
    if (absent_in_component_) {
      writer->AddNull(0);
      return Status::OK();
    }
    LSMCOL_RETURN_NOT_OK(EnsureLeaf());
    LSMCOL_DCHECK(leaf_remaining_ > 0);
    --leaf_remaining_;
    if (!leaf_exists_) {
      // Column unknown when this leaf was written.
      writer->AddNull(0);
      return Status::OK();
    }
    return reader_.CopyRecordTo(writer);
  }

 private:
  Status EnsureLeaf() {
    while (leaf_remaining_ == 0) {
      const auto& leaves = component_->reader().leaves();
      LSMCOL_CHECK(leaf_index_ < leaves.size());
      const Schema* schema = component_->schema();
      const ColumnInfo& info = schema->column(column_id_);
      leaf_remaining_ = leaves[leaf_index_].record_count;
      if (component_->meta().layout == LayoutKind::kApax) {
        LSMCOL_ASSIGN_OR_RETURN(const ApaxLeaf* leaf,
                                apax_cache_->Get(leaf_index_));
        Slice chunk = leaf->chunk(column_id_);
        leaf_exists_ = !chunk.empty();
        if (leaf_exists_) {
          LSMCOL_RETURN_NOT_OK(reader_.Init(chunk, info));
        }
      } else {
        const size_t page_size = component_->reader().page_size();
        const uint64_t page0_size =
            std::min<uint64_t>(leaves[leaf_index_].payload_size, page_size);
        Buffer page0_bytes;
        LSMCOL_RETURN_NOT_OK(component_->reader().ReadLeafRange(
            leaf_index_, 0, page0_size, &page0_bytes));
        LSMCOL_RETURN_NOT_OK(page0_.Init(page0_bytes.slice()));
        if (column_id_ == 0) {
          leaf_exists_ = true;
          pk_chunk_.clear();
          pk_chunk_.Append(page0_.pk_chunk());
          LSMCOL_RETURN_NOT_OK(reader_.Init(pk_chunk_.slice(), info));
        } else {
          const AmaxColumnExtent& extent = page0_.extent(column_id_);
          leaf_exists_ = extent.size != 0;
          if (leaf_exists_) {
            Buffer raw;
            LSMCOL_RETURN_NOT_OK(component_->reader().ReadLeafRange(
                leaf_index_, extent.offset, extent.size, &raw));
            LSMCOL_RETURN_NOT_OK(ParseAmaxMegapage(
                raw.slice(), info, component_->meta().compressed,
                &chunk_storage_, nullptr, nullptr));
            LSMCOL_RETURN_NOT_OK(reader_.Init(chunk_storage_.slice(), info));
          }
        }
      }
      ++leaf_index_;
    }
    return Status::OK();
  }

  const Component* component_;
  int column_id_;
  ApaxLeafCache* apax_cache_;
  bool absent_in_component_ = false;
  size_t leaf_index_ = 0;
  uint64_t leaf_remaining_ = 0;
  bool leaf_exists_ = false;
  AmaxPageZero page0_;
  Buffer pk_chunk_;
  Buffer chunk_storage_;
  ColumnChunkReader reader_;
};

}  // namespace

Status Dataset::MergeColumnarRange(size_t count, ComponentWriter* writer,
                                   Schema* schema) {
  const bool includes_oldest = count == components_.size();
  // --- Phase 1: merge the primary keys only, recording for every input
  // record whether it survives, and the global interleaving of survivors
  // (the "recorded sequence of component IDs", §4.5.3).
  std::vector<std::unique_ptr<ColumnarComponentCursor>> pk_cursors;
  std::vector<bool> has(count, false);
  Projection keys_only = Projection::Of({});
  for (size_t i = 0; i < count; ++i) {
    pk_cursors.push_back(std::make_unique<ColumnarComponentCursor>(
        components_[i].get(), keys_only));
    LSMCOL_ASSIGN_OR_RETURN(bool ok, pk_cursors[i]->Next());
    has[i] = ok;
  }
  std::vector<std::vector<uint8_t>> take(count);  // per input, per record
  std::vector<uint32_t> sequence;                 // winner input per output
  while (true) {
    size_t min_idx = count;
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && (min_idx == count ||
                     pk_cursors[i]->key() < pk_cursors[min_idx]->key())) {
        min_idx = i;
      }
    }
    if (min_idx == count) break;
    const int64_t min_key = pk_cursors[min_idx]->key();
    size_t winner = count;
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && pk_cursors[i]->key() == min_key && winner == count) {
        winner = i;
      }
    }
    const bool anti = pk_cursors[winner]->anti_matter();
    const bool keep = !(anti && includes_oldest);
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && pk_cursors[i]->key() == min_key) {
        take[i].push_back(i == winner && keep ? 1 : 0);
        LSMCOL_ASSIGN_OR_RETURN(bool ok, pk_cursors[i]->Next());
        has[i] = ok;
      }
    }
    if (keep) sequence.push_back(static_cast<uint32_t>(winner));
  }
  pk_cursors.clear();

  // --- Phase 2: leaf ranges, then one column at a time within each range.
  const int ncols = schema->column_count();
  std::vector<std::vector<std::unique_ptr<ComponentColumnStream>>> streams(
      count);
  std::vector<std::unique_ptr<ApaxLeafCache>> apax_caches(count);
  std::vector<std::vector<size_t>> action_pos(count);  // per input per column
  for (size_t i = 0; i < count; ++i) {
    apax_caches[i] = std::make_unique<ApaxLeafCache>(components_[i].get());
    streams[i].resize(static_cast<size_t>(ncols));
    action_pos[i].assign(static_cast<size_t>(ncols), 0);
    for (int c = 0; c < ncols; ++c) {
      streams[i][static_cast<size_t>(c)] = std::make_unique<ComponentColumnStream>(
          components_[i].get(), c, apax_caches[i].get());
    }
  }

  // Output leaf sizing.
  size_t records_per_leaf;
  if (options_.layout == LayoutKind::kAmax) {
    const size_t page0_cap =
        (options_.page_size - options_.page_size / 8 - 64 -
         static_cast<size_t>(ncols) * 32) /
        3;
    records_per_leaf = std::max<size_t>(
        1, std::min(options_.amax_max_records, page0_cap));
  } else {
    uint64_t total_bytes = 0, total_records = 0;
    for (size_t i = 0; i < count; ++i) {
      total_bytes += components_[i]->size_bytes();
      for (const auto& leaf : components_[i]->reader().leaves()) {
        total_records += leaf.record_count;
      }
    }
    const uint64_t bpr = total_records == 0 ? 64 : total_bytes / total_records;
    records_per_leaf = std::max<uint64_t>(
        1, options_.page_size / std::max<uint64_t>(1, bpr));
  }

  ColumnWriterSet writers(schema);
  writers.SyncWithSchema();
  size_t range_start = 0;
  while (range_start < sequence.size()) {
    const size_t range_end =
        std::min(sequence.size(), range_start + records_per_leaf);
    // Vertical: column by column across this output leaf's records.
    for (int c = 0; c < ncols; ++c) {
      ColumnChunkWriter& w = writers.writer(c);
      for (size_t g = range_start; g < range_end; ++g) {
        const uint32_t input = sequence[g];
        ComponentColumnStream& stream = *streams[input][static_cast<size_t>(c)];
        // Skip this input's dropped records preceding its next survivor.
        size_t& pos = action_pos[input][static_cast<size_t>(c)];
        uint64_t skips = 0;
        while (take[input][pos] == 0) {
          ++skips;
          ++pos;
        }
        if (skips > 0) LSMCOL_RETURN_NOT_OK(stream.Skip(skips));
        LSMCOL_RETURN_NOT_OK(stream.Copy(&w));
        ++pos;
        if (c == 0) writers.NoteRecordComplete();
      }
    }
    if (options_.layout == LayoutKind::kApax) {
      LSMCOL_RETURN_NOT_OK(EmitApaxLeaf(&writers, writer, options_.compress));
    } else {
      AmaxOptions amax;
      amax.page_size = options_.page_size;
      amax.compress = options_.compress;
      amax.max_records = options_.amax_max_records;
      amax.empty_page_tolerance = options_.amax_empty_page_tolerance;
      LSMCOL_RETURN_NOT_OK(EmitAmaxLeaf(&writers, writer, amax));
    }
    range_start = range_end;
  }
  return Status::OK();
}

// ------------------------------------------------------------------ reads

Snapshot::Ref Dataset::GetSnapshot() const {
  auto snapshot = std::shared_ptr<Snapshot>(new Snapshot());
  snapshot->layout_ = options_.layout;
  snapshot->row_codec_ = row_codec_;
  snapshot->memtable_ = memtable_;
  snapshot->schema_ = schema_;
  snapshot->components_.assign(components_.begin(), components_.end());
  return snapshot;
}

Result<std::unique_ptr<LsmScanCursor>> Dataset::Scan(
    const Projection& projection) {
  return GetSnapshot()->Scan(projection);
}

Status Dataset::Lookup(int64_t key, Value* out) {
  return Lookup(key, Projection::All(), out);
}

Status Dataset::Lookup(int64_t key, const Projection& projection, Value* out) {
  return GetSnapshot()->Lookup(key, projection, out);
}

Result<std::unique_ptr<Dataset::LookupBatch>> Dataset::NewLookupBatch(
    const Projection& projection) {
  return GetSnapshot()->NewLookupBatch(projection);
}

uint64_t Dataset::OnDiskBytes() const {
  uint64_t total = 0;
  for (const auto& component : components_) total += component->size_bytes();
  return total;
}

}  // namespace lsmcol
