#include "src/lsm/dataset.h"

#include <algorithm>
#include <chrono>

#include "src/columnar/shredder.h"
#include "src/json/parser.h"
#include "src/storage/backup_manifest.h"
#include "src/storage/file.h"

namespace lsmcol {

// ----------------------------------------------------------------- Dataset

Dataset::Dataset(const DatasetOptions& options, BufferCache* cache)
    : options_(options),
      cache_(cache),
      scheduler_(options.scheduler),
      compaction_policy_(MakeCompactionPolicy(options)),
      mu_(MutexRank::kDataset),
      memtable_(std::make_shared<MemTable>()),
      manifest_path_(ManifestPath(options.dir, options.name)),
      fault_counters_(std::make_shared<ComponentFaultCounters>()) {
  row_codec_ = &GetRowCodec(columnar() ? LayoutKind::kVb : options_.layout);
  if (columnar()) schema_ = std::make_shared<Schema>(options_.pk_field);
}

Dataset::~Dataset() {
  MutexLock lock(&mu_);
  shutting_down_ = true;
  work_cv_.NotifyAll();
  // In-flight and queued tasks reference this object; queued ones are
  // guaranteed to run (the scheduler drains its queue even on Stop).
  // Flush tasks drain the sealed memtables before exiting — only the
  // active memtable is lost, the documented contract.
  while (flush_tasks_ != 0 || flush_building_ != 0 || merge_queued_ ||
         merge_active_) {
    work_cv_.Wait(&mu_);
  }
}

Result<std::unique_ptr<Dataset>> Dataset::Create(const DatasetOptions& options,
                                                 BufferCache* cache) {
  return Open(options, cache);
}

Result<std::unique_ptr<Dataset>> Dataset::Open(const DatasetOptions& options,
                                               BufferCache* cache) {
  LSMCOL_RETURN_NOT_OK(ValidateDatasetOptions(options));
  if (cache->page_size() != options.page_size) {
    return Status::InvalidArgument(
        "DatasetOptions.page_size (" + std::to_string(options.page_size) +
        ") does not match the buffer cache page size (" +
        std::to_string(cache->page_size()) + ")");
  }
  LSMCOL_RETURN_NOT_OK(CreateDirDurable(options.dir, options.fs));
  std::unique_ptr<Dataset> dataset(new Dataset(options, cache));
  {
    // Single-threaded open: nothing else can see the dataset yet, the
    // lock just satisfies the guarded fields' capability requirement.
    MutexLock lock(&dataset->mu_);
    LSMCOL_RETURN_NOT_OK(dataset->OpenLocked(options));
  }
  return dataset;
}

Status Dataset::OpenLocked(const DatasetOptions& validated) {
  if (FileExists(manifest_path_, options_.fs)) {
    LSMCOL_ASSIGN_OR_RETURN(Manifest manifest,
                            ReadManifest(manifest_path_, options_.fs));
    LSMCOL_RETURN_NOT_OK(RecoverFromManifest(manifest));
    wal_floor_ = std::max<uint64_t>(manifest.wal_floor, 1);
  } else {
    // Fresh dataset. A manifest-less directory cannot own components, so
    // anything matching our naming scheme is leftover garbage; sweep it
    // before the first component id gets reused. (wal_floor 0: WAL
    // segments are never garbage — they may hold acknowledged writes —
    // and the replay below picks them up.)
    LSMCOL_RETURN_NOT_OK(RemoveStaleDatasetFiles(validated.dir,
                                                 validated.name, {},
                                                 /*wal_floor=*/0, nullptr,
                                                 options_.fs));
    LSMCOL_RETURN_NOT_OK(WriteCurrentManifestLocked());
  }
  if (validated.wal.enabled) {
    // Replay the log into the active memtable: everything acknowledged
    // since the last manifest-durable flush. Replaying a segment a flush
    // already covered (crash before its unlink) is idempotent — the
    // re-inserted rows shadow identical rows in the newest component.
    // The raw pointer keeps the replay lambda (analyzed as a separate
    // function) off the guarded member.
    MemTable* memtable = memtable_.get();
    LSMCOL_ASSIGN_OR_RETURN(
        WalReplayResult replay,
        ReplayWalSegments(validated.dir, validated.name, wal_floor_,
                          [&](const WalReplayEntry& entry) {
                            if (entry.anti_matter) {
                              memtable->Delete(entry.key);
                            } else {
                              memtable->Upsert(entry.key,
                                               entry.row.ToString());
                            }
                            return Status::OK();
                          },
                          options_.fs));
    stats_.wal_replayed_records = replay.records;
    // The log shares the dataset's transient-retry policy for segment
    // writes (fsync stays fail-closed; see WalOptions::retry).
    WalOptions wal_options = validated.wal;
    wal_options.retry = options_.io_retry;
    LSMCOL_ASSIGN_OR_RETURN(
        wal_, WriteAheadLog::Open(validated.dir, validated.name, wal_options,
                                  replay.next_segment_seq, replay.next_lsn,
                                  options_.fs));
  }
  return Status::OK();
}

Status Dataset::RecoverFromManifest(const Manifest& manifest) {
  if (manifest.dataset_name != options_.name) {
    return Status::Corruption("manifest " + manifest_path_ +
                              " names dataset '" + manifest.dataset_name +
                              "', expected '" + options_.name + "'");
  }
  if (static_cast<LayoutKind>(manifest.layout) != options_.layout) {
    return Status::InvalidArgument(
        "DatasetOptions.layout (" +
        std::string(LayoutKindName(options_.layout)) +
        ") does not match the on-disk layout (" +
        std::string(LayoutKindName(static_cast<LayoutKind>(manifest.layout))) +
        ") of dataset " + options_.name);
  }
  if (manifest.pk_field != options_.pk_field) {
    return Status::InvalidArgument(
        "DatasetOptions.pk_field ('" + options_.pk_field +
        "') does not match the on-disk pk_field ('" + manifest.pk_field +
        "') of dataset " + options_.name);
  }
  if (manifest.page_size != options_.page_size) {
    return Status::InvalidArgument(
        "DatasetOptions.page_size (" + std::to_string(options_.page_size) +
        ") does not match the on-disk page_size (" +
        std::to_string(manifest.page_size) + ") of dataset " + options_.name);
  }
  manifest_sequence_ = manifest.sequence;
  next_component_id_ = manifest.next_component_id;
  // Crash cleanup first: interrupted flushes/merges may have left `*.tmp`
  // files or fully-renamed components the manifest never recorded.
  std::vector<std::string> referenced;
  for (const ManifestComponentEntry& entry : manifest.components) {
    referenced.push_back(entry.file);
  }
  LSMCOL_RETURN_NOT_OK(RemoveStaleDatasetFiles(options_.dir, options_.name,
                                               referenced, manifest.wal_floor,
                                               nullptr, options_.fs));
  for (const ManifestComponentEntry& entry : manifest.components) {
    LSMCOL_ASSIGN_OR_RETURN(
        auto component,
        Component::Open(options_.dir + "/" + entry.file, cache_,
                        options_.page_size, options_.fs, fault_counters_));
    if (component->meta().component_id != entry.id) {
      return Status::Corruption(
          "component " + entry.file + " carries id " +
          std::to_string(component->meta().component_id) +
          ", manifest expects " + std::to_string(entry.id));
    }
    if (component->meta().layout != options_.layout) {
      return Status::Corruption("component " + entry.file +
                                " layout does not match dataset layout");
    }
    components_.push_back(std::move(component));
  }
  if (columnar()) {
    if (!manifest.schema_blob.empty()) {
      LSMCOL_ASSIGN_OR_RETURN(Schema schema,
                              Schema::Deserialize(Slice(manifest.schema_blob)));
      schema_ = std::make_shared<Schema>(std::move(schema));
    } else if (!components_.empty()) {
      return Status::Corruption("columnar manifest lacks a schema: " +
                                manifest_path_);
    }
  }
  // Re-apply persisted first-damage records: a component observed damaged
  // before the restart comes back quarantined — a reboot must not
  // silently "heal" a known-bad file. (The manifest writer pruned entries
  // for components it no longer lists.)
  for (const ManifestDamageEntry& entry : manifest.damaged) {
    for (const auto& component : components_) {
      if (component->meta().component_id != entry.component_id) continue;
      Status reason(static_cast<StatusCode>(entry.status_code), entry.reason);
      if (!reason.IsDataDamage()) reason = Status::Corruption(entry.reason);
      component->Quarantine(reason);
      persisted_damage_.emplace(entry.component_id, entry);
      break;
    }
  }
  return Status::OK();
}

Status Dataset::WriteCurrentManifestLocked() {
  // Claim the manifest-writer role. Rewrites are serialized in role-claim
  // order; each snapshots the *current* in-memory state, so a later
  // claimer's manifest always includes every earlier publication — the
  // durable state advances monotonically no matter how concurrent
  // flush/merge publications interleave with the role queue.
  while (manifest_writing_) work_cv_.Wait(&mu_);
  manifest_writing_ = true;
  // Pick up any first-damage records components logged since the last
  // rewrite, so every manifest write also persists known quarantines.
  AbsorbDamageLogLocked();
  const uint64_t damage_upto = damage_consumed_;
  Manifest manifest;
  manifest.sequence = manifest_sequence_ + 1;
  manifest.dataset_name = options_.name;
  manifest.layout = static_cast<uint8_t>(options_.layout);
  manifest.pk_field = options_.pk_field;
  manifest.page_size = options_.page_size;
  manifest.next_component_id = next_component_id_;
  manifest.wal_floor = wal_floor_;
  for (const auto& component : components_) {
    const std::string& path = component->path();
    const size_t slash = path.find_last_of('/');
    manifest.components.push_back(
        {component->meta().component_id,
         slash == std::string::npos ? path : path.substr(slash + 1)});
  }
  if (schema_ != nullptr) {
    Buffer blob;
    schema_->SerializeTo(&blob);
    manifest.schema_blob.assign(blob.data(), blob.size());
  }
  for (const auto& [id, entry] : persisted_damage_) {
    manifest.damaged.push_back(entry);
  }
  // The durable part (temp write + fsync + rename + dir fsync) runs
  // without mu_ so concurrent writers/readers don't stall on it; the
  // manifest-writer role keeps other rewrites out while it is dropped.
  mu_.Unlock();
  Status st = RunWithRetry(
      [&] { return WriteManifest(manifest_path_, manifest, options_.fs); });
  mu_.Lock();
  manifest_writing_ = false;
  if (!st.ok()) {
    manifest_dirty_ = true;
  } else {
    manifest_dirty_ = false;
    ++manifest_sequence_;
    damage_persisted_upto_ = std::max(damage_persisted_upto_, damage_upto);
  }
  work_cv_.NotifyAll();
  return st;
}

std::string Dataset::ComponentFilePath(uint64_t id) const {
  return options_.dir + "/" + options_.name + "_" + std::to_string(id) +
         ".cmp";
}

MemTable* Dataset::MutableMemtableLocked() {
  if (memtable_.use_count() > 1) {
    // A snapshot shares this memtable: give writers a private copy so the
    // snapshot's view stays frozen.
    memtable_ = std::make_shared<MemTable>(*memtable_);
  }
  return memtable_.get();
}

Result<std::shared_ptr<Schema>> Dataset::CloneSchemaLocked() {
  LSMCOL_CHECK(schema_ != nullptr);
  // Schema is move-only; clone through its serialized form (column ids,
  // def levels, and merged_record_count round-trip exactly). Published
  // schemas are never mutated, so serializing under mu_ is safe; the
  // clone stays private to the flush/merge that requested it.
  Buffer blob;
  schema_->SerializeTo(&blob);
  LSMCOL_ASSIGN_OR_RETURN(Schema clone, Schema::Deserialize(blob.slice()));
  return std::make_shared<Schema>(std::move(clone));
}

// -------------------------------------------------------------- write path

Status Dataset::Insert(const Value& record) {
  const Value& pk = record.Get(options_.pk_field);
  if (!pk.is_int()) {
    return Status::InvalidArgument("record primary key '" + options_.pk_field +
                                   "' must be an int64");
  }
  // Encode outside the lock: with concurrent writers the (relatively
  // expensive) row encoding parallelizes; only the memtable upsert and
  // rotation bookkeeping serialize.
  Buffer row;
  row_codec_->Encode(record, &row);
  return InsertEncoded(pk.int_value(), std::move(row), /*anti_matter=*/false);
}

Status Dataset::InsertJson(std::string_view json) {
  LSMCOL_ASSIGN_OR_RETURN(Value v, ParseJson(json));
  return Insert(v);
}

Status Dataset::Delete(int64_t key) {
  return InsertEncoded(key, Buffer(), /*anti_matter=*/true);
}

Status Dataset::InsertEncoded(int64_t key, Buffer row, bool anti_matter) {
  bool inline_flush = false;
  uint64_t wal_lsn = 0;
  {
    MutexLock lock(&mu_);
    if (!background_error_.ok()) {
      // A background flush or merge failed. Reject the write (before it
      // touches the memtable) so the sealed-memtable backlog stays
      // bounded for callers that never Flush(), and clear the error: the
      // next rotation's task — or an explicit Flush() — retries the
      // stranded sealed memtables.
      Status st = background_error_;
      background_error_ = Status::OK();
      return st;
    }
    if (wal_ != nullptr) {
      // Log before the memtable sees the write, under mu_: log order is
      // exactly apply order, so replay reproduces same-key races
      // byte-for-byte. No I/O here — durability waits below, after mu_ is
      // released, so concurrent writers share one fsync.
      auto appended = wal_->Append(anti_matter, key, row.slice());
      if (!appended.ok()) return appended.status();
      wal_lsn = *appended;
    }
    if (anti_matter) {
      MutableMemtableLocked()->Delete(key);
      ++stats_.deletes;
    } else {
      MutableMemtableLocked()->Upsert(key,
                                      std::string(row.data(), row.size()));
      ++stats_.inserts;
    }
    if (memtable_->approximate_bytes() >= options_.memtable_bytes) {
      if (scheduler_ == nullptr) {
        inline_flush = true;  // historical synchronous path
      } else {
        LSMCOL_RETURN_NOT_OK(RotateMemtableLocked());
        if (ScheduleFlushLocked()) {
          WaitForWriteRoomLocked();
        } else {
          // Scheduler already stopped (store shutting down): fall back to
          // draining inline so no data is stranded on the immutable list.
          Status prior = background_error_;
          background_error_ = Status::OK();  // let the drain retry
          DrainImmutablesLocked();
          Status st = background_error_;
          background_error_ = Status::OK();
          if (st.ok()) st = prior;
          LSMCOL_RETURN_NOT_OK(st);
        }
      }
    }
  }
  if (wal_ != nullptr) {
    // The commit point: group-commit (or per-write) fsync covering our
    // LSN. Runs without mu_ — followers block here, not the write path.
    LSMCOL_RETURN_NOT_OK(wal_->Sync(wal_lsn));
  }
  if (inline_flush) return Flush();
  return Status::OK();
}

Status Dataset::RotateMemtableLocked() {
  if (memtable_->empty()) return Status::OK();
  if (wal_ != nullptr) {
    // Seal the covering log segment with the memtable: the segment holds
    // exactly the writes since the previous rotation (every append lands
    // in the active segment, and appends are serialized with rotations by
    // mu_), so once this memtable's flush is manifest-durable the segment
    // — and everything older — is deletable.
    auto sealed = wal_->Rotate();
    if (!sealed.ok()) return sealed.status();  // memtable stays active
    immutable_wal_upto_.insert(immutable_wal_upto_.begin(), *sealed);
  }
  immutables_.insert(immutables_.begin(), memtable_);  // newest first
  immutable_claimed_.insert(immutable_claimed_.begin(), false);
  memtable_ = std::make_shared<MemTable>();
  return Status::OK();
}

int Dataset::OldestUnclaimedLocked() const {
  // Back of the list = oldest sealed memtable.
  for (size_t i = immutables_.size(); i > 0; --i) {
    if (!immutable_claimed_[i - 1]) return static_cast<int>(i - 1);
  }
  return -1;
}

bool Dataset::ScheduleFlushLocked() {
  if (OldestUnclaimedLocked() < 0) return true;
  // One task per sealed memtable lets the worker pool build several
  // components in parallel (publication stays ordered; each task drains
  // whatever is unclaimed, so surplus tasks exit immediately).
  if (flush_tasks_ >= immutables_.size()) return true;
  if (scheduler_ != nullptr &&
      scheduler_->Schedule([this] { BackgroundFlushTask(); })) {
    ++flush_tasks_;
    return true;
  }
  // Scheduler stopped: fine as long as some in-flight task will drain.
  return flush_tasks_ > 0;
}

void Dataset::ScheduleMergeLocked() {
  if (!options_.auto_merge || shutting_down_) return;
  if (merge_queued_ || merge_active_) return;
  if (PickMergePlanLocked().none()) return;
  if (scheduler_ != nullptr &&
      scheduler_->Schedule([this] { BackgroundMergeTask(); })) {
    merge_queued_ = true;
  }
  // A stopped scheduler skips the merge: merging is an optimization, not
  // a durability obligation — the next open's policy pass catches up.
}

bool Dataset::HasWriteRoomLocked(size_t component_stall) const {
  // Fail fast instead of hanging when background work died or the
  // dataset is being torn down. Every site that records
  // background_error_ notifies work_cv_ under mu_, so the wait below
  // needs no timeout escape.
  if (!background_error_.ok() || shutting_down_) return true;
  if (immutables_.size() >= options_.max_immutable_memtables) return false;
  if (options_.auto_merge && components_.size() >= component_stall) {
    return false;
  }
  return true;
}

void Dataset::WaitForWriteRoomLocked() {
  // Stall thresholds: sealed memtables are bounded directly; component
  // count is bounded loosely by the active compaction policy (each one
  // derives a limit above its steady-state stack depth) so writers
  // outrunning the merger slow to its pace instead of growing the stack
  // unboundedly.
  const size_t component_stall = compaction_policy_->stall_component_limit();
  if (HasWriteRoomLocked(component_stall)) return;
  ++stats_.write_stalls;
  while (!HasWriteRoomLocked(component_stall)) {
    // A stall is only sound while someone is working on draining it. A
    // prior error may have been surfaced-and-cleared with its flush task
    // already gone — the sealed memtables would then sit unclaimed and
    // this wait would never wake. Re-arm the drain before sleeping.
    if (immutables_.size() >= options_.max_immutable_memtables &&
        flush_tasks_ == 0 && flush_building_ == 0) {
      if (!ScheduleFlushLocked()) {
        // Scheduler stopped with nothing in flight: drain inline (errors
        // land in background_error_, which releases the stall).
        DrainImmutablesLocked();
        continue;
      }
    }
    if (options_.auto_merge && components_.size() >= component_stall &&
        !merge_queued_ && !merge_active_) {
      ScheduleMergeLocked();
      if (!merge_queued_ && !merge_active_ &&
          immutables_.size() < options_.max_immutable_memtables) {
        // Scheduler refused (stopped): nobody will ever shrink the
        // component count, so stalling on it alone would hang forever.
        // Let the write through — the next open's merge policy catches
        // up. (With sealed memtables still over budget the stall holds:
        // the re-armed flush above drains them and notifies.)
        break;
      }
    }
    work_cv_.Wait(&mu_);
  }
}

void Dataset::BackgroundFlushTask() {
  MutexLock lock(&mu_);
  // Keep draining during shutdown: rotated memtables were promised to the
  // background flush, and the destructor waits for these tasks.
  while (background_error_.ok() && OldestUnclaimedLocked() >= 0) {
    if (!FlushOneImmutableLocked().ok()) break;  // recorded inside
    ScheduleMergeLocked();
  }
  --flush_tasks_;
  work_cv_.NotifyAll();
}

void Dataset::BackgroundMergeTask() {
  MutexLock lock(&mu_);
  merge_queued_ = false;
  if (merge_active_) {
    work_cv_.NotifyAll();
    return;
  }
  merge_active_ = true;
  while (!shutting_down_ && background_error_.ok()) {
    const CompactionPlan plan = PickMergePlanLocked();
    if (plan.none()) break;
    Status st = MergeRangeLocked(plan.begin, plan.count);
    if (!st.ok()) {
      // Data damage in a merge input quarantines that component (its own
      // read path already did) — the rest of the dataset stays healthy
      // and writable, so this must NOT poison background_error_, which
      // would reject every subsequent write. The next policy evaluation
      // sees the quarantined input and stops picking merges.
      if (st.IsDataDamage()) break;
      // Keep the first (root-cause) error if a flush already recorded one.
      RecordBackgroundErrorLocked(st);
      break;
    }
  }
  merge_active_ = false;
  work_cv_.NotifyAll();
}

void Dataset::DrainImmutablesLocked() {
  while (background_error_.ok()) {
    if (OldestUnclaimedLocked() >= 0) {
      FlushOneImmutableLocked();  // failures land in background_error_
      continue;
    }
    if (flush_building_ > 0) {
      // Background builds are in flight; wait for them to publish (or a
      // failed one to return its memtable to the unclaimed state).
      while (flush_building_ != 0 && OldestUnclaimedLocked() < 0 &&
             background_error_.ok()) {
        work_cv_.Wait(&mu_);
      }
      continue;
    }
    break;
  }
}

namespace {

/// Structural part of a schema serialization — the tree with column ids,
/// def levels, and types, but not the per-record merge counter (which
/// advances on every shredded record and is irrelevant for column-id
/// compatibility).
std::string SchemaStructure(const Schema& schema) {
  Buffer blob;
  schema.SerializeTo(&blob);
  BufferReader reader(blob.slice());
  Slice pk;
  uint64_t merged = 0;
  LSMCOL_CHECK_OK(reader.ReadLengthPrefixed(&pk));
  LSMCOL_CHECK_OK(reader.ReadVarint64(&merged));
  Slice tree = reader.rest();
  return std::string(tree.data(), tree.size());
}

}  // namespace

Result<std::shared_ptr<Component>> Dataset::BuildFlushComponent(
    const MemTable& memtable, uint64_t id, const std::string& tmp,
    const std::string& path, Schema* schema) {
  auto build = [&]() -> Result<std::shared_ptr<Component>> {
    {
      // Build the component under a temp name: a crash mid-write leaves
      // only a `.tmp` file the next Open sweeps away.
      LSMCOL_ASSIGN_OR_RETURN(
          auto writer,
          ComponentWriter::Create(tmp, cache_, options_.page_size,
                                  options_.component_format_version,
                                  options_.fs));
      if (columnar()) {
        LSMCOL_RETURN_NOT_OK(FlushColumnar(memtable, writer.get(), schema));
      } else {
        LSMCOL_RETURN_NOT_OK(FlushRows(memtable, writer.get()));
      }
      ComponentMeta meta;
      meta.layout = options_.layout;
      meta.compressed = options_.compress;
      meta.component_id = id;
      meta.entry_count = memtable.record_count();
      Buffer meta_blob;
      meta.SerializeTo(&meta_blob, schema);
      LSMCOL_RETURN_NOT_OK(writer->Finish(meta_blob.slice()));
    }
    LSMCOL_RETURN_NOT_OK(RenameFile(tmp, path, options_.fs));
    LSMCOL_ASSIGN_OR_RETURN(
        auto component, Component::Open(path, cache_, options_.page_size,
                                        options_.fs, fault_counters_));
    return std::shared_ptr<Component>(std::move(component));
  };
  // Transient failures (EIO, ENOSPC) retry the whole build — Create
  // truncates, so each attempt starts clean. On final failure the partial
  // temp file is unlinked immediately: a full disk must get its space
  // back *now*, not at the next open's sweep, or ingestion could never
  // recover from the very condition that failed the flush.
  Result<std::shared_ptr<Component>> built = RunWithRetry(build);
  if (!built.ok()) (void)RemoveFileIfExists(tmp, options_.fs);
  return built;
}

Status Dataset::FlushOneImmutableLocked() {
  const int claim = OldestUnclaimedLocked();
  LSMCOL_CHECK(claim >= 0);
  std::shared_ptr<const MemTable> victim = immutables_[static_cast<size_t>(claim)];
  immutable_claimed_[static_cast<size_t>(claim)] = true;
  ++flush_building_;
  const uint64_t id = next_component_id_++;
  const std::string path = ComponentFilePath(id);
  const std::string tmp = path + ".tmp";

  Status st = Status::OK();
  std::shared_ptr<Component> component;
  std::shared_ptr<Schema> schema_clone;
  bool clone_dirty = false;
  while (true) {
    std::string base_structure;
    if (columnar()) {
      auto clone = CloneSchemaLocked();
      if (!clone.ok()) {
        st = clone.status();
        break;
      }
      schema_clone = std::move(*clone);
      base_structure = SchemaStructure(*schema_clone);
    }
    // Build outside the lock: the victim is sealed, the schema clone is
    // private until publication, and writers/readers (and other builds)
    // proceed concurrently.
    mu_.Unlock();
    Result<std::shared_ptr<Component>> built =
        BuildFlushComponent(*victim, id, tmp, path, schema_clone.get());
    mu_.Lock();
    if (!built.ok()) {
      st = built.status();
      break;
    }
    component = std::move(*built);
    clone_dirty =
        columnar() && SchemaStructure(*schema_clone) != base_structure;
    // Ordered publication: components must enter the list oldest-first or
    // snapshots would see a newer component below a still-sealed older
    // memtable and reconcile in the wrong order.
    while (immutables_.back() != victim && background_error_.ok()) {
      work_cv_.Wait(&mu_);
    }
    if (immutables_.back() != victim) {
      st = background_error_;  // abandoned: an older build failed
      break;
    }
    if (clone_dirty) {
      // Our build discovered columns. If a concurrent older flush also
      // advanced the schema since we cloned it, our column ids may clash
      // with the published tree — rebuild against the new base. Rare:
      // only while the schema is still being discovered.
      if (SchemaStructure(*schema_) != base_structure) {
        component.reset();  // the renamed file is overwritten by the redo
        continue;
      }
    }
    break;
  }

  if (!st.ok() || component == nullptr) {
    if (st.ok()) st = Status::IOError("flush abandoned");
    // Record so builds waiting for publication order wake and abandon
    // instead of waiting forever on this victim.
    RecordBackgroundErrorLocked(st);
    // Unclaim: the victim stays sealed and readable; a later drain
    // retries it. (Re-locate it — rotations shift indices.)
    for (size_t i = 0; i < immutables_.size(); ++i) {
      if (immutables_[i] == victim) {
        immutable_claimed_[i] = false;
        break;
      }
    }
    --flush_building_;
    work_cv_.NotifyAll();
    return st;
  }

  // Publish: component in, sealed memtable out, schema advanced — one
  // critical section, so every snapshot sees exactly one of the two
  // states and reconciliation order is preserved (the flushed data moves
  // from "oldest memtable" to "newest component", both of which sort
  // between the remaining memtables and the older components).
  stats_.flush_bytes_out += component->size_bytes();
  components_.insert(components_.begin(), std::move(component));
  LSMCOL_CHECK(immutables_.back() == victim);
  immutables_.pop_back();
  immutable_claimed_.pop_back();
  if (wal_ != nullptr) {
    // This memtable's writes are now component-durable; once the manifest
    // rewrite below records the component (and this floor), its covering
    // WAL segments are dead weight. Publication is ordered oldest-first
    // and segments seal in rotation order, so the floor only advances.
    wal_floor_ = immutable_wal_upto_.back() + 1;
    immutable_wal_upto_.pop_back();
  }
  if (clone_dirty) schema_ = std::move(schema_clone);
  ++stats_.flushes;
  work_cv_.NotifyAll();  // back-pressure + publication-order waiters
  // Manifest failure leaves the installed component unrecorded: in-memory
  // state stays consistent, the caller sees the error (via
  // background_error_), and the orphan file is swept on the next open if
  // no later rewrite records it. flush_building_ stays up until the
  // manifest write finishes, so DrainImmutablesLocked (and through it an
  // explicit Flush) never reports success while a publication of this
  // drain is still being recorded.
  Status manifest_status = WriteCurrentManifestLocked();
  if (!manifest_status.ok()) {
    RecordBackgroundErrorLocked(manifest_status);
  }
  if (manifest_status.ok() && wal_ != nullptr) {
    // Only after the manifest is durable: before that, the segments below
    // the floor are still the sole copy of this flush's writes. Deletion
    // failure is harmless — the next open's sweep (driven by the
    // manifest's recorded floor) collects the leftovers. A live backup
    // pin defers the unlink entirely (the backup may still be copying
    // those segments); EndBackup catches up.
    const uint64_t floor = wal_floor_;
    if (backup_holds_ > 0) {
      wal_pending_delete_floor_ =
          std::max(wal_pending_delete_floor_, floor);
    } else {
      mu_.Unlock();
      Status ignored = wal_->DeleteSegmentsBelow(floor);
      (void)ignored;
      mu_.Lock();
    }
  }
  --flush_building_;
  work_cv_.NotifyAll();
  return manifest_status;
}

Status Dataset::Flush() {
  MutexLock lock(&mu_);
  LSMCOL_RETURN_NOT_OK(RotateMemtableLocked());
  const bool had_data = !immutables_.empty();
  // Clear any prior background error *before* draining: the drain is the
  // retry of whatever failed (a sealed memtable whose build died stays
  // on the list), and a set error would stop it immediately. The prior
  // error is still surfaced below even when the retry succeeds.
  Status prior = background_error_;
  background_error_ = Status::OK();
  DrainImmutablesLocked();
  Status st = background_error_;
  background_error_ = Status::OK();
  if (st.ok()) st = prior;
  if (!st.ok()) return st;
  // A previous flush/merge may have installed state the manifest write
  // failed to record; Flush() only reports success once it is recorded.
  if (manifest_dirty_) {
    LSMCOL_RETURN_NOT_OK(WriteCurrentManifestLocked());
  }
  // Likewise quarantines observed since the last rewrite: Flush() is the
  // deterministic "make durable state current" entry point.
  LSMCOL_RETURN_NOT_OK(MaybePersistDamageLocked());
  if (had_data && options_.auto_merge) {
    if (scheduler_ != nullptr) {
      // Schedule instead of blocking (deterministic callers follow up
      // with WaitForBackgroundWork or MergeAll).
      ScheduleMergeLocked();
      return Status::OK();
    }
    lock.Unlock();
    return MaybeMerge();
  }
  return Status::OK();
}

Status Dataset::WaitForBackgroundWork() {
  MutexLock lock(&mu_);
  while (true) {
    while (flush_tasks_ != 0 || flush_building_ != 0 || merge_queued_ ||
           merge_active_) {
      work_cv_.Wait(&mu_);
    }
    if (immutables_.empty() || !background_error_.ok()) break;
    // Sealed memtables with no drainer: their flush died with an error a
    // previous call already consumed. Restart the drain rather than
    // waiting for work nobody is doing.
    if (!ScheduleFlushLocked() || flush_tasks_ == 0) {
      DrainImmutablesLocked();
      break;
    }
  }
  Status st = background_error_;
  background_error_ = Status::OK();
  return st;
}

// ------------------------------------------------------------------ flush

Status Dataset::MaybeEmitColumnarLeaf(ColumnWriterSet* writers,
                                      ComponentWriter* writer, bool force) {
  if (writers->record_count() == 0) return Status::OK();
  if (options_.layout == LayoutKind::kApax) {
    const size_t budget = static_cast<size_t>(
        options_.apax_fill_fraction * static_cast<double>(options_.page_size));
    if (force || writers->EstimatedTotalSize() >= budget) {
      return EmitApaxLeaf(writers, writer, options_.compress);
    }
    return Status::OK();
  }
  // AMAX: cap by record count and keep Page 0 (table + PK chunk) within
  // one physical page.
  const bool page0_full =
      writers->record_count() >=
      AmaxPage0RecordBudget(options_.page_size, writers->column_count());
  if (force || writers->record_count() >= options_.amax_max_records ||
      page0_full) {
    AmaxOptions amax;
    amax.page_size = options_.page_size;
    amax.compress = options_.compress;
    amax.max_records = options_.amax_max_records;
    amax.empty_page_tolerance = options_.amax_empty_page_tolerance;
    return EmitAmaxLeaf(writers, writer, amax);
  }
  return Status::OK();
}

Status Dataset::FlushColumnar(const MemTable& memtable,
                              ComponentWriter* writer, Schema* schema) {
  ColumnWriterSet writers(schema);
  RecordShredder shredder(schema, &writers);
  for (const auto& [key, entry] : memtable.entries()) {
    if (entry.anti_matter) {
      LSMCOL_RETURN_NOT_OK(shredder.ShredAntiMatter(key));
    } else {
      Value record;
      LSMCOL_RETURN_NOT_OK(row_codec_->Decode(Slice(entry.row), &record));
      LSMCOL_RETURN_NOT_OK(shredder.Shred(record));
    }
    LSMCOL_RETURN_NOT_OK(MaybeEmitColumnarLeaf(&writers, writer, false));
  }
  return MaybeEmitColumnarLeaf(&writers, writer, true);
}

Status Dataset::FlushRows(const MemTable& memtable, ComponentWriter* writer) {
  RowLeafBuilder builder(writer, options_.page_size, options_.compress);
  for (const auto& [key, entry] : memtable.entries()) {
    LSMCOL_RETURN_NOT_OK(
        builder.Add(key, entry.anti_matter, Slice(entry.row)));
  }
  return builder.Finish();
}

// ------------------------------------------------------------------ merge

CompactionPlan Dataset::PickMergePlanLocked() const {
  // Snapshot the stack into plain descriptors: policies are pure
  // functions over these (no I/O, no dataset access), which is what
  // makes plan selection unit-testable with injected views. The plan is
  // consumed immediately under the same critical section, so it can
  // never go stale against a concurrent flush.
  std::vector<CompactionComponentView> views;
  views.reserve(components_.size());
  for (const auto& component : components_) {
    CompactionComponentView view;
    view.component_id = component->meta().component_id;
    view.size_bytes = component->size_bytes();
    view.entry_count = component->meta().entry_count;
    const auto& leaves = component->reader().leaves();
    if (!leaves.empty()) {
      view.min_key = leaves.front().min_key;
      view.max_key = leaves.back().max_key;
      view.has_key_range = true;
    }
    view.quarantined = component->quarantined();
    views.push_back(view);
  }
  CompactionPlan plan = compaction_policy_->PickMerge(views);
  if (plan.none()) return {};
  // Fence the policy contract: a malformed plan (out of bounds, or
  // selecting a quarantined component) is ignored rather than executed.
  if (plan.end() > components_.size()) return {};
  for (size_t i = plan.begin; i < plan.end(); ++i) {
    if (components_[i]->quarantined()) return {};
  }
  return plan;
}

Status Dataset::MaybeMerge() {
  MutexLock lock(&mu_);
  while (merge_active_) work_cv_.Wait(&mu_);
  merge_active_ = true;
  Status st = Status::OK();
  while (true) {
    const CompactionPlan plan = PickMergePlanLocked();
    if (plan.none()) break;
    st = MergeRangeLocked(plan.begin, plan.count);
    if (!st.ok()) break;
  }
  merge_active_ = false;
  work_cv_.NotifyAll();
  return st;
}

Status Dataset::MergeAll() {
  {
    MutexLock lock(&mu_);
    if (memtable_->empty() && immutables_.empty() &&
        components_.size() < 2) {
      return Status::OK();
    }
  }
  LSMCOL_RETURN_NOT_OK(Flush());
  MutexLock lock(&mu_);
  while (merge_active_) work_cv_.Wait(&mu_);
  if (components_.size() < 2) return Status::OK();
  merge_active_ = true;
  Status st = MergeRangeLocked(0, components_.size());
  merge_active_ = false;
  work_cv_.NotifyAll();
  return st;
}

Status Dataset::MergeRangeLocked(size_t begin, size_t count) {
  LSMCOL_CHECK(merge_active_);
  LSMCOL_CHECK(count >= 2 && begin + count <= components_.size());
  // Capture the inputs by reference: a concurrent background flush only
  // *prepends* components, so these stay live, contiguous, and in order
  // while the merge builds — they are re-located at publish time.
  std::vector<std::shared_ptr<Component>> inputs(
      components_.begin() + static_cast<long>(begin),
      components_.begin() + static_cast<long>(begin + count));
  // Anti-matter may annihilate only when no older component could still
  // hold a record it deletes — i.e. when the range reaches the oldest.
  const bool includes_oldest = begin + count == components_.size();
  const uint64_t id = next_component_id_++;
  uint64_t bytes_in = 0;
  for (const auto& component : inputs) bytes_in += component->size_bytes();
  std::shared_ptr<Schema> schema_clone;
  if (columnar()) {
    LSMCOL_ASSIGN_OR_RETURN(schema_clone, CloneSchemaLocked());
  }
  const std::string path = ComponentFilePath(id);
  const std::string tmp = path + ".tmp";

  mu_.Unlock();
  // The schema clone is a private scratch copy: merges copy existing
  // columns and never discover new ones, so it is NOT published back —
  // concurrent flushes own schema inference. The merged component stores
  // the clone, which covers every column its inputs could contain.
  MergeOutcome outcome;
  auto build = [&]() -> Result<std::shared_ptr<Component>> {
    {
      LSMCOL_ASSIGN_OR_RETURN(
          auto writer,
          ComponentWriter::Create(tmp, cache_, options_.page_size,
                                  options_.component_format_version,
                                  options_.fs));
      if (columnar()) {
        if (options_.merge_pipeline == MergePipeline::kRecordAtATime) {
          LSMCOL_RETURN_NOT_OK(MergeColumnarRecordAtATime(
              inputs, includes_oldest, writer.get(), schema_clone.get(),
              &outcome));
        } else {
          LSMCOL_RETURN_NOT_OK(MergeColumnar(inputs, includes_oldest,
                                             writer.get(), schema_clone.get(),
                                             &outcome));
        }
      } else {
        LSMCOL_RETURN_NOT_OK(
            MergeRows(inputs, includes_oldest, writer.get(), &outcome));
      }
      ComponentMeta meta;
      meta.layout = options_.layout;
      meta.compressed = options_.compress;
      meta.component_id = id;
      // Exact surviving entry count from the merge plan (records plus
      // preserved anti-matter).
      meta.entry_count = outcome.records_out;
      Buffer meta_blob;
      meta.SerializeTo(&meta_blob, schema_clone.get());
      LSMCOL_RETURN_NOT_OK(writer->Finish(meta_blob.slice()));
    }
    LSMCOL_RETURN_NOT_OK(RenameFile(tmp, path, options_.fs));
    LSMCOL_ASSIGN_OR_RETURN(
        auto merged, Component::Open(path, cache_, options_.page_size,
                                     options_.fs, fault_counters_));
    return std::shared_ptr<Component>(std::move(merged));
  };
  const auto merge_start = std::chrono::steady_clock::now();
  // Transient failures retry the whole build (each attempt restarts from
  // a truncated temp file); data damage in an input does not (the input
  // is quarantined by its own read path). A failed merge's partial output
  // is unlinked at once so ENOSPC-killed merges return their space.
  Result<std::shared_ptr<Component>> built = [&] {
    MergeOutcome partial;
    return RunWithRetry([&]() -> Result<std::shared_ptr<Component>> {
      outcome = partial;  // counters restart with each attempt
      return build();
    });
  }();
  if (!built.ok()) (void)RemoveFileIfExists(tmp, options_.fs);
  const uint64_t merge_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - merge_start)
          .count());
  mu_.Lock();
  // Until publication the component list was untouched, so a failed merge
  // leaves the dataset exactly as it was (modulo a swept-on-open temp
  // file). Its partial outcome counters are discarded with it, so the
  // stats only ever describe merges that produced a component.
  if (!built.ok()) return built.status();
  stats_.merge_records_in += outcome.records_in;
  stats_.merge_records_out += outcome.records_out;
  stats_.merge_runs_copied += outcome.runs_copied;
  stats_.merge_leaves_adopted += outcome.leaves_adopted;
  stats_.merge_micros += merge_micros;
  // Amplification accounting tallies published merges only (a failed
  // build returned above without touching any byte counter).
  stats_.merged_bytes_in += bytes_in;
  stats_.merge_bytes_out += (*built)->size_bytes();
  if (includes_oldest && begin == 0) {
    // A true full merge: its output is exactly the live data, the
    // baseline space_amplification() measures against.
    stats_.last_full_merge_bytes = (*built)->size_bytes();
  }

  // Publish the new version: the merged component replaces its inputs in
  // place. Concurrent flushes may have prepended newer components, so the
  // inputs are re-located (they are still contiguous — only this merge
  // holds the merge role, and flushes never reorder).
  size_t pos = 0;
  while (pos < components_.size() && components_[pos] != inputs.front()) {
    ++pos;
  }
  LSMCOL_CHECK(pos + count <= components_.size());
  for (size_t i = 0; i < count; ++i) {
    LSMCOL_CHECK(components_[pos + i] == inputs[i]);
  }
  components_.erase(components_.begin() + static_cast<long>(pos),
                    components_.begin() + static_cast<long>(pos + count));
  components_.insert(components_.begin() + static_cast<long>(pos),
                     std::move(*built));
  ++stats_.merges;
  work_cv_.NotifyAll();  // component-count back-pressure waiters
  Status st = WriteCurrentManifestLocked();
  // Retire the inputs only once the manifest stopped referencing them —
  // on a failed rewrite the durable manifest still lists them, so their
  // files must survive (they are merely orphaned-on-disk until a later
  // successful rewrite, or swept at the next open). On success each file
  // is deleted when its last reference drops — right here unless a live
  // snapshot still pins it.
  if (st.ok()) {
    for (auto& component : inputs) component->MarkObsolete();
  }
  inputs.clear();
  return st;
}

Status Dataset::MergeRows(
    const std::vector<std::shared_ptr<Component>>& inputs,
    bool includes_oldest, ComponentWriter* writer, MergeOutcome* outcome) {
  const size_t count = inputs.size();
  std::vector<std::unique_ptr<RowComponentCursor>> cursors;
  std::vector<bool> has(count, false);
  for (size_t i = 0; i < count; ++i) {
    cursors.push_back(std::make_unique<RowComponentCursor>(inputs[i].get()));
    LSMCOL_ASSIGN_OR_RETURN(bool ok, cursors[i]->Next());
    has[i] = ok;
  }
  RowLeafBuilder builder(writer, options_.page_size, options_.compress);
  while (true) {
    size_t min_idx = count;
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && (min_idx == count ||
                     cursors[i]->key() < cursors[min_idx]->key())) {
        min_idx = i;
      }
    }
    if (min_idx == count) break;
    const int64_t min_key = cursors[min_idx]->key();
    // Winner = newest (smallest index) holding the key.
    size_t winner = count;
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && cursors[i]->key() == min_key) {
        if (winner == count) winner = i;
      }
    }
    const bool anti = cursors[winner]->anti_matter();
    if (!(anti && includes_oldest)) {
      LSMCOL_RETURN_NOT_OK(
          builder.Add(min_key, anti, cursors[winner]->row()));
      ++outcome->records_out;
    }
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && cursors[i]->key() == min_key) {
        LSMCOL_ASSIGN_OR_RETURN(bool ok, cursors[i]->Next());
        has[i] = ok;
        ++outcome->records_in;
      }
    }
  }
  return builder.Finish();
}

namespace {

/// Decoded-APAX-leaf cache shared by the PK merge phase and all column
/// streams of one component during a vertical merge. Columns sweep the
/// same leaves in the same order, so a tiny FIFO turns the per-column
/// re-reads of a whole APAX page into hits — one decompression per leaf
/// instead of one per leaf per column (which is quadratic-feeling for
/// 900-column datasets). Entries are shared so a stream suspended mid-leaf
/// across output-leaf boundaries keeps its chunk bytes alive even if the
/// FIFO rotates the leaf out underneath it.
class ApaxLeafCache {
 public:
  explicit ApaxLeafCache(const Component* component)
      : component_(component) {}

  Result<std::shared_ptr<const ApaxLeaf>> Get(size_t leaf_index) {
    for (auto& [index, leaf] : entries_) {
      if (index == leaf_index) return leaf;
    }
    Buffer payload;
    LSMCOL_RETURN_NOT_OK(component_->ReadLeaf(leaf_index, &payload));
    auto leaf = std::make_shared<ApaxLeaf>();
    LSMCOL_RETURN_NOT_OK(
        leaf->Init(payload.slice(), component_->meta().compressed));
    if (entries_.size() >= kCapacity) entries_.erase(entries_.begin());
    entries_.emplace_back(leaf_index,
                          std::shared_ptr<const ApaxLeaf>(std::move(leaf)));
    return entries_.back().second;
  }

 private:
  static constexpr size_t kCapacity = 8;
  const Component* component_;
  std::vector<std::pair<size_t, std::shared_ptr<const ApaxLeaf>>> entries_;
};

/// Streams one component's primary keys, each leaf decoded in one batch
/// (keys + anti-matter def levels) — the input side of the run-level
/// merge's PK phase.
class MergePkSource {
 public:
  MergePkSource(const Component* component, ApaxLeafCache* apax_cache)
      : component_(component), apax_cache_(apax_cache) {}

  /// Decode the next non-empty leaf's PK batch; false when exhausted.
  Result<bool> NextLeaf() {
    const auto& leaves = component_->reader().leaves();
    const ColumnInfo& info = component_->schema()->column(0);
    while (leaf_index_ < leaves.size()) {
      ColumnChunkReader reader;
      std::shared_ptr<const ApaxLeaf> apax_hold;
      Buffer page0_bytes;
      AmaxPageZero page0;
      if (component_->meta().layout == LayoutKind::kApax) {
        LSMCOL_ASSIGN_OR_RETURN(apax_hold, apax_cache_->Get(leaf_index_));
        LSMCOL_RETURN_NOT_OK(reader.Init(apax_hold->chunk(0), info));
      } else {
        const uint64_t page0_size = std::min<uint64_t>(
            leaves[leaf_index_].payload_size,
            component_->reader().page_size());
        LSMCOL_RETURN_NOT_OK(component_->ReadLeafRange(
            leaf_index_, 0, page0_size, &page0_bytes));
        LSMCOL_RETURN_NOT_OK(page0.Init(page0_bytes.slice()));
        LSMCOL_RETURN_NOT_OK(reader.Init(page0.pk_chunk(), info));
      }
      // PK batches copy keys and defs out of the chunk, so the leaf bytes
      // may be released right after this decode.
      LSMCOL_RETURN_NOT_OK(
          reader.NextEntryBatch(reader.entry_count(), &batch_));
      ++leaf_index_;
      pos_ = 0;
      if (batch_.entry_count() == 0) continue;
      leaf_has_anti_ = false;
      for (int d : batch_.defs) leaf_has_anti_ = leaf_has_anti_ || d == 0;
      return true;
    }
    return false;
  }

  int64_t key() const { return batch_.ints[pos_]; }
  bool anti_matter() const { return batch_.defs[pos_] == 0; }
  bool leaf_has_anti() const { return leaf_has_anti_; }
  size_t pos() const { return pos_; }
  size_t leaf_size() const { return batch_.entry_count(); }
  const int64_t* keys() const { return batch_.ints.data(); }
  const int* defs() const { return batch_.defs.data(); }
  /// Advance within the current leaf; the caller rolls leaves via
  /// NextLeaf once pos() reaches leaf_size().
  void Advance(size_t n) { pos_ += n; }

 private:
  const Component* component_;
  ApaxLeafCache* apax_cache_;
  size_t leaf_index_ = 0;
  size_t pos_ = 0;
  bool leaf_has_anti_ = false;
  ColumnEntryBatch batch_;
};

/// Streams one column of one columnar component across its leaves for the
/// vertical merge (§4.5.3). Leaf-span bookkeeping and chunk loading are
/// decoupled: Skip() is pure arithmetic until a chunk is actually needed,
/// so fully dropped or adopted leaves are never read or decoded, and a
/// skipped prefix of a leaf that IS copied from is replayed as one batched
/// SkipRecords at load time.
class ComponentColumnStream {
 public:
  ComponentColumnStream(const Component* component, int column_id,
                        ApaxLeafCache* apax_cache)
      : component_(component), column_id_(column_id),
        apax_cache_(apax_cache) {
    absent_in_component_ =
        column_id >= component->schema()->column_count();
  }

  /// Advance past n records without copying them (no I/O unless a later
  /// CopyN resumes inside a partially skipped leaf).
  Status Skip(uint64_t n) {
    if (absent_in_component_) return Status::OK();
    while (n > 0) {
      EnterLeafIfNeeded();
      const uint64_t take = std::min<uint64_t>(n, leaf_remaining_);
      if (leaf_loaded_ && leaf_exists_) {
        LSMCOL_RETURN_NOT_OK(reader_.SkipRecords(take));
      } else if (!leaf_loaded_) {
        pending_skip_ += take;
      }
      leaf_remaining_ -= take;
      n -= take;
    }
    return Status::OK();
  }

  /// Copy the next n records into `writer` through the batch decode/encode
  /// APIs: flat columns (and the PK) move as entry batches; array columns
  /// move as raw entry batches up to the leaf end and fall back to the
  /// per-record replay only for a mid-leaf stop.
  Status CopyN(uint64_t n, ColumnChunkWriter* writer) {
    if (absent_in_component_) {
      writer->AddNullRun(0, n);
      return Status::OK();
    }
    while (n > 0) {
      EnterLeafIfNeeded();
      LSMCOL_RETURN_NOT_OK(LoadChunkIfNeeded());
      const uint64_t take = std::min<uint64_t>(n, leaf_remaining_);
      if (!leaf_exists_) {
        // Column unknown when this leaf was written.
        writer->AddNullRun(0, take);
      } else {
        const ColumnInfo& info = component_->schema()->column(column_id_);
        if (take < kSmallCopy && take < leaf_remaining_) {
          // Tiny survivor runs (heavily interleaved inputs): the batch
          // machinery costs more than it saves — replay directly.
          for (uint64_t i = 0; i < take; ++i) {
            LSMCOL_RETURN_NOT_OK(reader_.CopyRecordTo(writer));
          }
        } else if (info.is_pk || info.array_count() == 0) {
          // One entry per record: bounded batches, no per-record calls.
          uint64_t left = take;
          while (left > 0) {
            const size_t b =
                static_cast<size_t>(std::min<uint64_t>(left, kCopyBatch));
            LSMCOL_RETURN_NOT_OK(reader_.NextEntryBatch(b, &batch_));
            writer->AppendEntries(batch_);
            left -= b;
          }
        } else if (take == leaf_remaining_) {
          // Copying to the end of the leaf: the chunk's remaining entries
          // are exactly these records' entries (values, NULLs, and
          // delimiters), so replay them as raw batches.
          while (!reader_.AtEnd()) {
            LSMCOL_RETURN_NOT_OK(
                reader_.NextEntryBatch(kCopyBatch, &batch_));
            writer->AppendEntries(batch_);
          }
        } else {
          // Mid-leaf stop on an array column: record boundaries are
          // delimiter-dependent, so replay record by record.
          for (uint64_t i = 0; i < take; ++i) {
            LSMCOL_RETURN_NOT_OK(reader_.CopyRecordTo(writer));
          }
        }
      }
      leaf_remaining_ -= take;
      n -= take;
    }
    return Status::OK();
  }

  /// One-record copy — the record-at-a-time reference pipeline.
  Status Copy(ColumnChunkWriter* writer) {
    if (absent_in_component_) {
      writer->AddNull(0);
      return Status::OK();
    }
    EnterLeafIfNeeded();
    LSMCOL_RETURN_NOT_OK(LoadChunkIfNeeded());
    LSMCOL_DCHECK(leaf_remaining_ > 0);
    --leaf_remaining_;
    if (!leaf_exists_) {
      writer->AddNull(0);
      return Status::OK();
    }
    return reader_.CopyRecordTo(writer);
  }

 private:
  static constexpr size_t kCopyBatch = 4096;
  static constexpr uint64_t kSmallCopy = 8;

  /// Roll to the next leaf's record span (bookkeeping only, no I/O).
  void EnterLeafIfNeeded() {
    while (leaf_remaining_ == 0) {
      const auto& leaves = component_->reader().leaves();
      LSMCOL_CHECK(leaf_index_ < leaves.size());
      leaf_remaining_ = leaves[leaf_index_].record_count;
      leaf_loaded_ = false;
      leaf_exists_ = false;
      pending_skip_ = 0;
      ++leaf_index_;
    }
  }

  /// Read + decode the current leaf's chunk (leaf_index_ - 1, as
  /// EnterLeafIfNeeded already advanced the index) and replay the skipped
  /// prefix in one batched SkipRecords.
  Status LoadChunkIfNeeded() {
    if (leaf_loaded_) return Status::OK();
    leaf_loaded_ = true;
    const size_t leaf = leaf_index_ - 1;
    const ColumnInfo& info = component_->schema()->column(column_id_);
    if (component_->meta().layout == LayoutKind::kApax) {
      LSMCOL_ASSIGN_OR_RETURN(apax_hold_, apax_cache_->Get(leaf));
      Slice chunk = apax_hold_->chunk(column_id_);
      leaf_exists_ = !chunk.empty();
      if (leaf_exists_) {
        LSMCOL_RETURN_NOT_OK(reader_.Init(chunk, info));
      }
    } else {
      const auto& leaves = component_->reader().leaves();
      const size_t page_size = component_->reader().page_size();
      const uint64_t page0_size =
          std::min<uint64_t>(leaves[leaf].payload_size, page_size);
      Buffer page0_bytes;
      LSMCOL_RETURN_NOT_OK(component_->ReadLeafRange(
          leaf, 0, page0_size, &page0_bytes));
      LSMCOL_RETURN_NOT_OK(page0_.Init(page0_bytes.slice()));
      if (column_id_ == 0) {
        leaf_exists_ = true;
        pk_chunk_.clear();
        pk_chunk_.Append(page0_.pk_chunk());
        LSMCOL_RETURN_NOT_OK(reader_.Init(pk_chunk_.slice(), info));
      } else {
        const AmaxColumnExtent& extent = page0_.extent(column_id_);
        leaf_exists_ = extent.size != 0;
        if (leaf_exists_) {
          Buffer raw;
          LSMCOL_RETURN_NOT_OK(component_->ReadLeafRange(
              leaf, extent.offset, extent.size, &raw));
          LSMCOL_RETURN_NOT_OK(ParseAmaxMegapage(
              raw.slice(), info, component_->meta().compressed,
              &chunk_storage_, nullptr, nullptr));
          LSMCOL_RETURN_NOT_OK(reader_.Init(chunk_storage_.slice(), info));
        }
      }
    }
    if (leaf_exists_ && pending_skip_ > 0) {
      LSMCOL_RETURN_NOT_OK(
          reader_.SkipRecords(static_cast<size_t>(pending_skip_)));
    }
    pending_skip_ = 0;
    return Status::OK();
  }

  const Component* component_;
  int column_id_;
  ApaxLeafCache* apax_cache_;
  bool absent_in_component_ = false;
  size_t leaf_index_ = 0;        // next leaf to enter
  uint64_t leaf_remaining_ = 0;  // records left in the current leaf
  bool leaf_loaded_ = false;
  bool leaf_exists_ = false;
  uint64_t pending_skip_ = 0;    // records consumed before the chunk loaded
  std::shared_ptr<const ApaxLeaf> apax_hold_;
  AmaxPageZero page0_;
  Buffer pk_chunk_;
  Buffer chunk_storage_;
  ColumnChunkReader reader_;
  ColumnEntryBatch batch_;
};

/// One survivor run of the merge plan: skip `skip` records of `input`,
/// then copy `take` records to the output. Runs appear in output (key)
/// order; each input's segments appear in its own record order, so the
/// per-input streams replay the plan with forward-only motion.
struct MergeRun {
  uint32_t input = 0;
  uint64_t skip = 0;
  uint64_t take = 0;
};

/// Sentinel for "no adoptable leaf here".
constexpr size_t kNoLeaf = static_cast<size_t>(-1);

/// Tracks an input's consumed-record position against its leaf
/// boundaries, for the whole-leaf adoption fast path.
struct InputLeafCursor {
  const std::vector<LeafEntry>* leaves = nullptr;
  size_t leaf = 0;          ///< leaf containing `pos` (== size when past)
  uint64_t leaf_start = 0;  ///< first record index of `leaf`
  uint64_t pos = 0;         ///< records consumed so far

  void Advance(uint64_t n) {
    pos += n;
    while (leaf < leaves->size() &&
           pos >= leaf_start + (*leaves)[leaf].record_count) {
      leaf_start += (*leaves)[leaf].record_count;
      ++leaf;
    }
  }

  /// Index of the leaf that `pos + skip` starts exactly at and whose whole
  /// record span fits within `avail` surviving records; kNoLeaf otherwise.
  size_t AdoptableLeaf(uint64_t skip, uint64_t avail) const {
    const uint64_t p = pos + skip;
    size_t l = leaf;
    uint64_t start = leaf_start;
    while (l < leaves->size() &&
           p >= start + (*leaves)[l].record_count) {
      start += (*leaves)[l].record_count;
      ++l;
    }
    if (l >= leaves->size() || p != start) return kNoLeaf;
    const uint32_t rc = (*leaves)[l].record_count;
    if (rc == 0 || avail < rc) return kNoLeaf;
    return l;
  }
};

}  // namespace

Status Dataset::MergeColumnar(
    const std::vector<std::shared_ptr<Component>>& inputs,
    bool includes_oldest, ComponentWriter* writer, Schema* schema,
    MergeOutcome* outcome) {
  const size_t count = inputs.size();
  // Per-input decoded-leaf caches, shared between the PK phase and the
  // column streams: small components merge with one decompression per
  // leaf in total.
  std::vector<std::unique_ptr<ApaxLeafCache>> apax_caches(count);
  for (size_t i = 0; i < count; ++i) {
    apax_caches[i] = std::make_unique<ApaxLeafCache>(inputs[i].get());
    for (const auto& leaf : inputs[i]->reader().leaves()) {
      outcome->records_in += leaf.record_count;
    }
  }

  // --- Phase 1: merge the primary keys only — each input leaf's keys and
  // anti-matter defs decoded in one batch — into a run-length survivor
  // plan. Where input key ranges do not overlap (the append-mostly common
  // case) whole leaf stretches collapse to a single run; only records
  // whose key is currently held by several inputs reconcile one at a time.
  std::vector<std::unique_ptr<MergePkSource>> sources;
  std::vector<bool> live(count, false);
  for (size_t i = 0; i < count; ++i) {
    sources.push_back(std::make_unique<MergePkSource>(inputs[i].get(),
                                                      apax_caches[i].get()));
    LSMCOL_ASSIGN_OR_RETURN(bool ok, sources[i]->NextLeaf());
    live[i] = ok;
  }

  std::vector<MergeRun> plan;
  std::vector<uint64_t> pending_skip(count, 0);
  // Append `n` survivors of `input`, coalescing with the previous run
  // when both the output and the input positions are contiguous.
  auto take_run = [&](size_t input, uint64_t n) {
    if (n == 0) return;
    if (!plan.empty() && plan.back().input == input &&
        pending_skip[input] == 0) {
      plan.back().take += n;
    } else {
      plan.push_back({static_cast<uint32_t>(input), pending_skip[input], n});
      pending_skip[input] = 0;
    }
    outcome->records_out += n;
  };
  auto advance = [&](size_t i, size_t n) -> Status {
    sources[i]->Advance(n);
    if (sources[i]->pos() == sources[i]->leaf_size()) {
      LSMCOL_ASSIGN_OR_RETURN(bool ok, sources[i]->NextLeaf());
      live[i] = ok;
    }
    return Status::OK();
  };

  while (true) {
    size_t min_idx = count;
    for (size_t i = 0; i < count; ++i) {
      if (live[i] && (min_idx == count ||
                      sources[i]->key() < sources[min_idx]->key())) {
        min_idx = i;
      }
    }
    if (min_idx == count) break;
    const int64_t min_key = sources[min_idx]->key();
    // Winner = newest (lowest index) holding the key.
    size_t winner = count, holders = 0;
    for (size_t i = 0; i < count; ++i) {
      if (live[i] && sources[i]->key() == min_key) {
        ++holders;
        if (winner == count) winner = i;
      }
    }
    if (holders == 1) {
      // Exclusive stretch: every key of the winner below the other
      // inputs' current minimum is unshadowed, so the whole stretch (up
      // to the leaf end) moves as one run — split only where anti-matter
      // annihilates (merges including the oldest component, §4.4).
      int64_t limit_key = 0;
      bool has_limit = false;
      for (size_t i = 0; i < count; ++i) {
        if (i != winner && live[i] &&
            (!has_limit || sources[i]->key() < limit_key)) {
          limit_key = sources[i]->key();
          has_limit = true;
        }
      }
      MergePkSource& src = *sources[winner];
      const size_t pos = src.pos();
      size_t end;
      if (!has_limit) {
        end = src.leaf_size();
      } else {
        const int64_t* keys = src.keys();
        if (pos + 1 >= src.leaf_size() || keys[pos + 1] >= limit_key) {
          // Strictly interleaved inputs land here every step; skip the
          // binary search for the single-record stretch.
          end = pos + 1;
        } else {
          end = static_cast<size_t>(
              std::lower_bound(keys + pos + 1, keys + src.leaf_size(),
                               limit_key) -
              keys);
        }
      }
      LSMCOL_DCHECK(end > pos);
      if (includes_oldest && src.leaf_has_anti()) {
        const int* defs = src.defs();
        size_t seg = pos;
        while (seg < end) {
          size_t j = seg;
          if (defs[seg] == 0) {
            while (j < end && defs[j] == 0) ++j;
            pending_skip[winner] += j - seg;
          } else {
            while (j < end && defs[j] != 0) ++j;
            take_run(winner, j - seg);
          }
          seg = j;
        }
      } else {
        take_run(winner, end - pos);
      }
      LSMCOL_RETURN_NOT_OK(advance(winner, end - pos));
    } else {
      // Key held by several inputs: reconcile this record alone.
      const bool anti = sources[winner]->anti_matter();
      if (anti && includes_oldest) {
        ++pending_skip[winner];
      } else {
        take_run(winner, 1);
      }
      for (size_t i = 0; i < count; ++i) {
        if (live[i] && sources[i]->key() == min_key) {
          if (i != winner) ++pending_skip[i];
          LSMCOL_RETURN_NOT_OK(advance(i, 1));
        }
      }
    }
  }
  sources.clear();

  // --- Phase 2: replay the plan column by column, one output leaf at a
  // time. A plan segment that lines up exactly with one whole input leaf
  // is *adopted*: its encoded payload is spliced through byte-for-byte
  // (zone stats and all) and every column stream just steps over it.
  const int ncols = schema->column_count();
  std::vector<std::vector<std::unique_ptr<ComponentColumnStream>>> streams(
      count);
  std::vector<InputLeafCursor> lcur(count);
  std::vector<bool> adoption_ok(count);
  for (size_t i = 0; i < count; ++i) {
    streams[i].resize(static_cast<size_t>(ncols));
    for (int c = 0; c < ncols; ++c) {
      streams[i][static_cast<size_t>(c)] =
          std::make_unique<ComponentColumnStream>(inputs[i].get(), c,
                                                  apax_caches[i].get());
    }
    lcur[i].leaves = &inputs[i]->reader().leaves();
    // Adoption splices encoded bytes, so the input must match the output
    // component's framing exactly. Layout and page size are invariants of
    // the dataset (validated at Open); compression could differ if the
    // dataset was reopened with another setting, so check it per input.
    adoption_ok[i] = inputs[i]->meta().layout == options_.layout &&
                     inputs[i]->meta().compressed == options_.compress;
  }
  // Necessary condition for adoption from input i: the stretch must cover
  // at least its smallest leaf — a one-comparison pre-filter that spares
  // heavily interleaved plans (millions of 1-record runs) the per-run
  // leaf-boundary probe.
  std::vector<uint64_t> min_leaf_rc(count, 1);
  for (size_t i = 0; i < count; ++i) {
    uint64_t lo = UINT64_MAX;
    for (const auto& leaf : *lcur[i].leaves) {
      if (leaf.record_count > 0) lo = std::min<uint64_t>(lo, leaf.record_count);
    }
    min_leaf_rc[i] = lo == UINT64_MAX ? 1 : lo;
  }

  // Output leaf sizing.
  size_t records_per_leaf;
  if (options_.layout == LayoutKind::kAmax) {
    records_per_leaf = std::max<size_t>(
        1, std::min(options_.amax_max_records,
                    AmaxPage0RecordBudget(options_.page_size,
                                          static_cast<size_t>(ncols))));
  } else {
    uint64_t total_bytes = 0, total_records = 0;
    for (size_t i = 0; i < count; ++i) {
      total_bytes += inputs[i]->size_bytes();
      for (const auto& leaf : inputs[i]->reader().leaves()) {
        total_records += leaf.record_count;
      }
    }
    const uint64_t bpr = total_records == 0 ? 64 : total_bytes / total_records;
    records_per_leaf = std::max<uint64_t>(
        1, options_.page_size / std::max<uint64_t>(1, bpr));
  }

  AmaxOptions amax;
  amax.page_size = options_.page_size;
  amax.compress = options_.compress;
  amax.max_records = options_.amax_max_records;
  amax.empty_page_tolerance = options_.amax_empty_page_tolerance;

  ColumnWriterSet writers(schema);
  writers.SyncWithSchema();

  std::vector<MergeRun> slice;  // one output leaf's sub-runs
  size_t run_idx = 0;
  uint64_t run_off = 0;  // records of plan[run_idx].take already emitted

  while (run_idx < plan.size()) {
    {
      const MergeRun& run = plan[run_idx];
      const size_t in = run.input;
      const uint64_t skip = run_off == 0 ? run.skip : 0;
      const uint64_t avail = run.take - run_off;
      // Whole-leaf adoption fast path: only at an output-leaf boundary
      // (pending writers would otherwise interleave with the spliced
      // leaf's records).
      if (writers.record_count() == 0 && adoption_ok[in] &&
          avail >= min_leaf_rc[in]) {
        const size_t leaf = lcur[in].AdoptableLeaf(skip, avail);
        if (leaf != kNoLeaf) {
          const LeafEntry& entry = (*lcur[in].leaves)[leaf];
          Buffer payload;
          LSMCOL_RETURN_NOT_OK(inputs[in]->ReadLeaf(leaf, &payload));
          LSMCOL_RETURN_NOT_OK(writer->AppendLeaf(payload.slice(),
                                                  entry.min_key,
                                                  entry.max_key,
                                                  entry.record_count));
          for (int c = 0; c < ncols; ++c) {
            LSMCOL_RETURN_NOT_OK(streams[in][static_cast<size_t>(c)]->Skip(
                skip + entry.record_count));
          }
          lcur[in].Advance(skip + entry.record_count);
          run_off += entry.record_count;
          if (run_off == run.take) {
            ++run_idx;
            run_off = 0;
          }
          ++outcome->leaves_adopted;
          continue;
        }
      }
    }
    // Assemble one output leaf's slice of the plan.
    slice.clear();
    uint64_t n = 0;
    while (n < records_per_leaf && run_idx < plan.size()) {
      const MergeRun& run = plan[run_idx];
      const uint64_t skip = run_off == 0 ? run.skip : 0;
      const uint64_t avail = run.take - run_off;
      // Cut the leaf short when the next stretch could be adopted whole:
      // the slightly underfilled leaf buys an undecoded splice.
      if (n > 0 && adoption_ok[run.input] &&
          avail >= min_leaf_rc[run.input] &&
          lcur[run.input].AdoptableLeaf(skip, avail) != kNoLeaf) {
        break;
      }
      const uint64_t t = std::min<uint64_t>(avail, records_per_leaf - n);
      slice.push_back({run.input, skip, t});
      lcur[run.input].Advance(skip + t);
      n += t;
      run_off += t;
      if (run_off == run.take) {
        ++run_idx;
        run_off = 0;
      }
    }
    if (n == 0) break;  // defensive: the plan holds no empty runs
    // Vertical: column by column across this output leaf's segments.
    for (int c = 0; c < ncols; ++c) {
      ColumnChunkWriter& w = writers.writer(c);
      for (const MergeRun& seg : slice) {
        ComponentColumnStream& stream =
            *streams[seg.input][static_cast<size_t>(c)];
        if (seg.skip > 0) LSMCOL_RETURN_NOT_OK(stream.Skip(seg.skip));
        LSMCOL_RETURN_NOT_OK(stream.CopyN(seg.take, &w));
      }
    }
    writers.NoteRecordsComplete(static_cast<size_t>(n));
    outcome->runs_copied += slice.size();
    if (options_.layout == LayoutKind::kApax) {
      LSMCOL_RETURN_NOT_OK(EmitApaxLeaf(&writers, writer, options_.compress));
    } else {
      LSMCOL_RETURN_NOT_OK(EmitAmaxLeaf(&writers, writer, amax));
    }
  }
  return Status::OK();
}

Status Dataset::MergeColumnarRecordAtATime(
    const std::vector<std::shared_ptr<Component>>& inputs,
    bool includes_oldest, ComponentWriter* writer, Schema* schema,
    MergeOutcome* outcome) {
  const size_t count = inputs.size();
  // --- Phase 1: merge the primary keys only, recording for every input
  // record whether it survives, and the global interleaving of survivors
  // (the "recorded sequence of component IDs", §4.5.3).
  std::vector<std::unique_ptr<ColumnarComponentCursor>> pk_cursors;
  std::vector<bool> has(count, false);
  Projection keys_only = Projection::Of({});
  for (size_t i = 0; i < count; ++i) {
    pk_cursors.push_back(std::make_unique<ColumnarComponentCursor>(
        inputs[i].get(), keys_only));
    LSMCOL_ASSIGN_OR_RETURN(bool ok, pk_cursors[i]->Next());
    has[i] = ok;
  }
  std::vector<std::vector<uint8_t>> take(count);  // per input, per record
  std::vector<uint32_t> sequence;                 // winner input per output
  while (true) {
    size_t min_idx = count;
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && (min_idx == count ||
                     pk_cursors[i]->key() < pk_cursors[min_idx]->key())) {
        min_idx = i;
      }
    }
    if (min_idx == count) break;
    const int64_t min_key = pk_cursors[min_idx]->key();
    size_t winner = count;
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && pk_cursors[i]->key() == min_key && winner == count) {
        winner = i;
      }
    }
    const bool anti = pk_cursors[winner]->anti_matter();
    const bool keep = !(anti && includes_oldest);
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && pk_cursors[i]->key() == min_key) {
        take[i].push_back(i == winner && keep ? 1 : 0);
        LSMCOL_ASSIGN_OR_RETURN(bool ok, pk_cursors[i]->Next());
        has[i] = ok;
        ++outcome->records_in;
      }
    }
    if (keep) sequence.push_back(static_cast<uint32_t>(winner));
  }
  pk_cursors.clear();
  outcome->records_out = sequence.size();

  // --- Phase 2: leaf ranges, then one column at a time within each range.
  const int ncols = schema->column_count();
  std::vector<std::vector<std::unique_ptr<ComponentColumnStream>>> streams(
      count);
  std::vector<std::unique_ptr<ApaxLeafCache>> apax_caches(count);
  std::vector<std::vector<size_t>> action_pos(count);  // per input per column
  for (size_t i = 0; i < count; ++i) {
    apax_caches[i] = std::make_unique<ApaxLeafCache>(inputs[i].get());
    streams[i].resize(static_cast<size_t>(ncols));
    action_pos[i].assign(static_cast<size_t>(ncols), 0);
    for (int c = 0; c < ncols; ++c) {
      streams[i][static_cast<size_t>(c)] =
          std::make_unique<ComponentColumnStream>(inputs[i].get(), c,
                                                  apax_caches[i].get());
    }
  }

  // Output leaf sizing.
  size_t records_per_leaf;
  if (options_.layout == LayoutKind::kAmax) {
    records_per_leaf = std::max<size_t>(
        1, std::min(options_.amax_max_records,
                    AmaxPage0RecordBudget(options_.page_size,
                                          static_cast<size_t>(ncols))));
  } else {
    uint64_t total_bytes = 0, total_records = 0;
    for (size_t i = 0; i < count; ++i) {
      total_bytes += inputs[i]->size_bytes();
      for (const auto& leaf : inputs[i]->reader().leaves()) {
        total_records += leaf.record_count;
      }
    }
    const uint64_t bpr = total_records == 0 ? 64 : total_bytes / total_records;
    records_per_leaf = std::max<uint64_t>(
        1, options_.page_size / std::max<uint64_t>(1, bpr));
  }

  ColumnWriterSet writers(schema);
  writers.SyncWithSchema();
  size_t range_start = 0;
  while (range_start < sequence.size()) {
    const size_t range_end =
        std::min(sequence.size(), range_start + records_per_leaf);
    // Vertical: column by column across this output leaf's records.
    for (int c = 0; c < ncols; ++c) {
      ColumnChunkWriter& w = writers.writer(c);
      for (size_t g = range_start; g < range_end; ++g) {
        const uint32_t input = sequence[g];
        ComponentColumnStream& stream = *streams[input][static_cast<size_t>(c)];
        // Skip this input's dropped records preceding its next survivor.
        size_t& pos = action_pos[input][static_cast<size_t>(c)];
        uint64_t skips = 0;
        while (take[input][pos] == 0) {
          ++skips;
          ++pos;
        }
        if (skips > 0) LSMCOL_RETURN_NOT_OK(stream.Skip(skips));
        LSMCOL_RETURN_NOT_OK(stream.Copy(&w));
        ++pos;
        if (c == 0) writers.NoteRecordComplete();
      }
    }
    if (options_.layout == LayoutKind::kApax) {
      LSMCOL_RETURN_NOT_OK(EmitApaxLeaf(&writers, writer, options_.compress));
    } else {
      AmaxOptions amax;
      amax.page_size = options_.page_size;
      amax.compress = options_.compress;
      amax.max_records = options_.amax_max_records;
      amax.empty_page_tolerance = options_.amax_empty_page_tolerance;
      LSMCOL_RETURN_NOT_OK(EmitAmaxLeaf(&writers, writer, amax));
    }
    range_start = range_end;
  }
  return Status::OK();
}

// ------------------------------------------------------------------ reads

Snapshot::Ref Dataset::GetSnapshot() const {
  MutexLock lock(&mu_);
  return GetSnapshotLocked();
}

Snapshot::Ref Dataset::GetSnapshotLocked() const {
  auto snapshot = std::shared_ptr<Snapshot>(new Snapshot());
  snapshot->layout_ = options_.layout;
  snapshot->row_codec_ = row_codec_;
  snapshot->memtable_ = memtable_;
  snapshot->immutables_.assign(immutables_.begin(), immutables_.end());
  snapshot->schema_ = schema_;
  snapshot->components_.assign(components_.begin(), components_.end());
  return snapshot;
}

Result<std::unique_ptr<LsmScanCursor>> Dataset::Scan(
    const Projection& projection) {
  return GetSnapshot()->Scan(projection);
}

Status Dataset::Lookup(int64_t key, Value* out) {
  return Lookup(key, Projection::All(), out);
}

Status Dataset::Lookup(int64_t key, const Projection& projection, Value* out) {
  return GetSnapshot()->Lookup(key, projection, out);
}

Result<std::unique_ptr<Dataset::LookupBatch>> Dataset::NewLookupBatch(
    const Projection& projection) {
  return GetSnapshot()->NewLookupBatch(projection);
}

// ---------------------------------------------------------- introspection

const Schema* Dataset::schema() const {
  MutexLock lock(&mu_);
  return schema_.get();
}

size_t Dataset::component_count() const {
  MutexLock lock(&mu_);
  return components_.size();
}

const Component& Dataset::component(size_t i) const {
  MutexLock lock(&mu_);
  return *components_[i];
}

size_t Dataset::immutable_memtable_count() const {
  MutexLock lock(&mu_);
  return immutables_.size();
}

uint64_t Dataset::OnDiskBytes() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& component : components_) total += component->size_bytes();
  return total;
}

DatasetStats Dataset::stats() const {
  MutexLock lock(&mu_);
  DatasetStats stats = stats_;
  for (const auto& component : components_) {
    stats.on_disk_bytes += component->size_bytes();
  }
  stats.io_retries = io_retries_.load(std::memory_order_relaxed);
  stats.io_retry_backoff_micros =
      io_retry_backoff_micros_.load(std::memory_order_relaxed);
  if (wal_ != nullptr) {
    const WalStats wal = wal_->stats();
    stats.wal_appends = wal.appends;
    stats.wal_syncs = wal.syncs;
    stats.wal_bytes = wal.bytes;
    stats.wal_group_entries_max = wal.group_entries_max;
    stats.wal_rotations = wal.rotations;
    stats.io_retries += wal.io_retries;
    stats.io_retry_backoff_micros += wal.retry_backoff_micros;
  }
  stats.checksum_failures =
      fault_counters_->checksum_failures.load(std::memory_order_relaxed);
  stats.quarantined_components =
      fault_counters_->quarantines.load(std::memory_order_relaxed);
  return stats;
}

uint64_t Dataset::manifest_sequence() const {
  MutexLock lock(&mu_);
  return manifest_sequence_;
}

Status Dataset::background_error() const {
  MutexLock lock(&mu_);
  return background_error_;
}

Status Dataset::last_background_error() const {
  MutexLock lock(&mu_);
  return last_background_error_;
}

Status Dataset::wal_status() const {
  if (wal_ == nullptr) return Status::OK();
  return wal_->io_status();
}

std::vector<std::pair<uint64_t, Status>> Dataset::QuarantineList() const {
  MutexLock lock(&mu_);
  std::vector<std::pair<uint64_t, Status>> out;
  for (const auto& component : components_) {
    if (!component->quarantined()) continue;
    out.emplace_back(component->meta().component_id,
                     component->CheckReadable());
  }
  return out;
}

void Dataset::RecordBackgroundErrorLocked(const Status& st) {
  if (background_error_.ok()) background_error_ = st;
  if (last_background_error_.ok()) last_background_error_ = st;
}

// ------------------------------------------- scrub / backup / repair

void Dataset::AbsorbDamageLogLocked() {
  const uint64_t total =
      fault_counters_->damage_records.load(std::memory_order_acquire);
  if (total == damage_consumed_) return;
  std::vector<std::pair<uint64_t, Status>> fresh;
  {
    MutexLock log_lock(&fault_counters_->log_mu);
    const auto& log = fault_counters_->damage_log;
    for (size_t i = static_cast<size_t>(damage_consumed_); i < log.size();
         ++i) {
      fresh.push_back(log[i]);
    }
    damage_consumed_ = log.size();
  }
  for (const auto& [id, reason] : fresh) {
    ManifestDamageEntry entry;
    entry.component_id = id;
    entry.status_code = static_cast<uint8_t>(reason.code());
    entry.reason = reason.message();
    persisted_damage_.emplace(id, std::move(entry));
  }
}

Status Dataset::MaybePersistDamageLocked() {
  AbsorbDamageLogLocked();
  if (damage_consumed_ <= damage_persisted_upto_) return Status::OK();
  return WriteCurrentManifestLocked();
}

Status Dataset::PersistDamageRecords() {
  MutexLock lock(&mu_);
  return MaybePersistDamageLocked();
}

void Dataset::NoteScrub(uint64_t leaves, uint64_t bytes, uint64_t damaged,
                        uint64_t micros, bool pass_complete) {
  MutexLock lock(&mu_);
  stats_.scrub_leaves += leaves;
  stats_.scrub_bytes += bytes;
  stats_.scrub_damage_found += damaged;
  stats_.scrub_micros += micros;
  if (pass_complete) ++stats_.scrub_passes;
  if (damaged > 0) {
    // Best effort: the scrubber's whole point is that damage found today
    // is still known after a restart. A failed rewrite retries with the
    // next flush/scrub slice.
    Status ignored = MaybePersistDamageLocked();
    (void)ignored;
  }
}

Status Dataset::BeginBackup(DatasetBackupPin* pin) {
  {
    MutexLock lock(&mu_);
    for (const auto& component : components_) {
      if (!component->quarantined()) continue;
      const Status reason = component->CheckReadable();
      return Status(reason.code(),
                    "dataset " + options_.name + " component " +
                        std::to_string(component->meta().component_id) +
                        " is quarantined; repair it before taking a backup"
                        " (" +
                        reason.message() + ")");
    }
    pin->name = options_.name;
    pin->dir = options_.dir;
    pin->snapshot = GetSnapshotLocked();
    Manifest& m = pin->manifest;
    m = Manifest();
    m.sequence = manifest_sequence_;
    m.dataset_name = options_.name;
    m.layout = static_cast<uint8_t>(options_.layout);
    m.pk_field = options_.pk_field;
    m.page_size = options_.page_size;
    m.next_component_id = next_component_id_;
    m.wal_floor = wal_floor_;
    for (const auto& component : components_) {
      const std::string& path = component->path();
      const size_t slash = path.find_last_of('/');
      m.components.push_back(
          {component->meta().component_id,
           slash == std::string::npos ? path : path.substr(slash + 1)});
    }
    if (schema_ != nullptr) {
      Buffer blob;
      schema_->SerializeTo(&blob);
      m.schema_blob.assign(blob.data(), blob.size());
    }
    pin->wal_enabled = wal_ != nullptr;
    if (wal_ != nullptr) {
      pin->wal_cut_lsn = wal_->appended_lsn();
      pin->wal_first_segment = wal_floor_;
      pin->wal_last_segment = wal_->active_segment();
    }
    ++backup_holds_;
  }
  if (pin->wal_enabled && pin->wal_cut_lsn > 0) {
    // Make every record up to the cut disk-intact before the copy phase
    // walks the segments (CopyWalSegmentPrefix stops at the first torn
    // frame, which after this sync is necessarily beyond the cut).
    Status st = wal_->Sync(pin->wal_cut_lsn);
    if (!st.ok()) {
      EndBackup();
      return st;
    }
  }
  return Status::OK();
}

void Dataset::EndBackup() {
  uint64_t floor = 0;
  {
    MutexLock lock(&mu_);
    LSMCOL_CHECK(backup_holds_ > 0);
    --backup_holds_;
    if (backup_holds_ == 0) {
      floor = wal_pending_delete_floor_;
      wal_pending_delete_floor_ = 0;
    }
  }
  if (floor > 0 && wal_ != nullptr) {
    // Catch up the segment deletions the pin deferred. Failure is
    // harmless (next open's sweep collects them).
    Status ignored = wal_->DeleteSegmentsBelow(floor);
    (void)ignored;
  }
}

Status Dataset::RepairQuarantined(const std::string& backup_dir) {
  LSMCOL_ASSIGN_OR_RETURN(BackupManifest catalog,
                          ReadBackupManifest(backup_dir, options_.fs));
  struct Victim {
    uint64_t id;
    std::string path;
  };
  std::vector<Victim> victims;
  {
    MutexLock lock(&mu_);
    if (repairing_) {
      return Status::InvalidArgument("dataset " + options_.name +
                                     " already has a repair in progress");
    }
    for (const auto& component : components_) {
      if (component->quarantined()) {
        victims.push_back(
            {component->meta().component_id, component->path()});
      }
    }
    if (victims.empty()) return Status::OK();
    repairing_ = true;
  }

  Status first_failure;
  size_t repaired = 0;
  for (const Victim& victim : victims) {
    Status one = [&]() -> Status {
      const BackupFileEntry* entry = nullptr;
      for (const auto& f : catalog.files) {
        if (f.kind == BackupFileKind::kComponent &&
            f.dataset == options_.name && f.id == victim.id) {
          entry = &f;
          break;
        }
      }
      if (entry == nullptr) {
        return Status::NotFound(
            "backup " + backup_dir + " holds no component " +
            std::to_string(victim.id) + " of dataset " + options_.name);
      }
      // Stage under `<path>.tmp`: a crash mid-repair leaves only a temp
      // file the next open's stale-file sweep removes.
      const std::string tmp = victim.path + ".tmp";
      LSMCOL_RETURN_NOT_OK(CopyFileVerified(backup_dir + "/" + entry->rel_path,
                                            tmp, entry->size, entry->checksum,
                                            options_.fs));
      {
        // Probe the staged copy end to end (identity + every leaf,
        // uncached) before it replaces anything. Salvage mode: a damaged
        // backup copy must fail the probe, not quarantine bookkeeping.
        auto probe =
            Component::OpenForSalvage(tmp, cache_, options_.page_size,
                                      options_.fs);
        Status st = probe.status();
        if (st.ok()) {
          if ((*probe)->meta().component_id != victim.id ||
              (*probe)->meta().layout != options_.layout) {
            st = Status::Corruption(
                "backup copy of component " + std::to_string(victim.id) +
                " carries the wrong identity");
          }
        }
        if (st.ok()) {
          Buffer payload;
          const size_t leaves = (*probe)->reader().leaves().size();
          for (size_t i = 0; st.ok() && i < leaves; ++i) {
            st = (*probe)->ScrubLeaf(i, &payload);
          }
        }
        if (!st.ok()) {
          (void)RemoveFileIfExists(tmp, options_.fs);
          return st;
        }
      }
      // The damaged file is replaced in place; the old Component object
      // keeps its open handle to the dead inode and is dropped below
      // WITHOUT MarkObsolete (it shares the path with the repaired file —
      // its destructor must not unlink it).
      LSMCOL_RETURN_NOT_OK(RenameFile(tmp, victim.path, options_.fs));
      LSMCOL_ASSIGN_OR_RETURN(
          auto fresh, Component::Open(victim.path, cache_, options_.page_size,
                                      options_.fs, fault_counters_));
      std::shared_ptr<Component> replacement(std::move(fresh));
      MutexLock lock(&mu_);
      for (auto& component : components_) {
        if (component->meta().component_id == victim.id) {
          component = replacement;
          break;
        }
      }
      persisted_damage_.erase(victim.id);
      ++repaired;
      // Drop the damage record from the durable manifest in the same
      // breath — a crash right after the swap must not re-quarantine the
      // freshly repaired file.
      return WriteCurrentManifestLocked();
    }();
    if (!one.ok() && first_failure.ok()) first_failure = one;
  }

  MutexLock lock(&mu_);
  repairing_ = false;
  if (repaired > 0) ScheduleMergeLocked();  // quarantine no longer blocks
  work_cv_.NotifyAll();
  return first_failure;
}

}  // namespace lsmcol
