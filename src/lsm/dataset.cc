#include "src/lsm/dataset.h"

#include <algorithm>

#include "src/columnar/shredder.h"
#include "src/json/parser.h"
#include "src/storage/file.h"

namespace lsmcol {

// ----------------------------------------------------------------- Dataset

Dataset::Dataset(const DatasetOptions& options, BufferCache* cache)
    : options_(options),
      cache_(cache),
      scheduler_(options.scheduler),
      memtable_(std::make_shared<MemTable>()),
      manifest_path_(ManifestPath(options.dir, options.name)) {
  row_codec_ = &GetRowCodec(columnar() ? LayoutKind::kVb : options_.layout);
  if (columnar()) schema_ = std::make_shared<Schema>(options_.pk_field);
}

Dataset::~Dataset() {
  std::unique_lock<std::mutex> lock(mu_);
  shutting_down_ = true;
  work_cv_.notify_all();
  // In-flight and queued tasks reference this object; queued ones are
  // guaranteed to run (the scheduler drains its queue even on Stop).
  // Flush tasks drain the sealed memtables before exiting — only the
  // active memtable is lost, the documented contract.
  work_cv_.wait(lock, [this] {
    return flush_tasks_ == 0 && flush_building_ == 0 && !merge_queued_ &&
           !merge_active_;
  });
}

Result<std::unique_ptr<Dataset>> Dataset::Create(const DatasetOptions& options,
                                                 BufferCache* cache) {
  return Open(options, cache);
}

Result<std::unique_ptr<Dataset>> Dataset::Open(const DatasetOptions& options,
                                               BufferCache* cache) {
  LSMCOL_RETURN_NOT_OK(ValidateDatasetOptions(options));
  if (cache->page_size() != options.page_size) {
    return Status::InvalidArgument(
        "DatasetOptions.page_size (" + std::to_string(options.page_size) +
        ") does not match the buffer cache page size (" +
        std::to_string(cache->page_size()) + ")");
  }
  LSMCOL_RETURN_NOT_OK(CreateDirDurable(options.dir));
  std::unique_ptr<Dataset> dataset(new Dataset(options, cache));
  std::unique_lock<std::mutex> lock(dataset->mu_);  // single-threaded open
  if (FileExists(dataset->manifest_path_)) {
    LSMCOL_ASSIGN_OR_RETURN(Manifest manifest,
                            ReadManifest(dataset->manifest_path_));
    LSMCOL_RETURN_NOT_OK(dataset->RecoverFromManifest(manifest));
  } else {
    // Fresh dataset. A manifest-less directory cannot own components, so
    // anything matching our naming scheme is leftover garbage; sweep it
    // before the first component id gets reused.
    LSMCOL_RETURN_NOT_OK(
        RemoveStaleDatasetFiles(options.dir, options.name, {}, nullptr));
    LSMCOL_RETURN_NOT_OK(dataset->WriteCurrentManifestLocked(&lock));
  }
  return dataset;
}

Status Dataset::RecoverFromManifest(const Manifest& manifest) {
  if (manifest.dataset_name != options_.name) {
    return Status::Corruption("manifest " + manifest_path_ +
                              " names dataset '" + manifest.dataset_name +
                              "', expected '" + options_.name + "'");
  }
  if (static_cast<LayoutKind>(manifest.layout) != options_.layout) {
    return Status::InvalidArgument(
        "DatasetOptions.layout (" +
        std::string(LayoutKindName(options_.layout)) +
        ") does not match the on-disk layout (" +
        std::string(LayoutKindName(static_cast<LayoutKind>(manifest.layout))) +
        ") of dataset " + options_.name);
  }
  if (manifest.pk_field != options_.pk_field) {
    return Status::InvalidArgument(
        "DatasetOptions.pk_field ('" + options_.pk_field +
        "') does not match the on-disk pk_field ('" + manifest.pk_field +
        "') of dataset " + options_.name);
  }
  if (manifest.page_size != options_.page_size) {
    return Status::InvalidArgument(
        "DatasetOptions.page_size (" + std::to_string(options_.page_size) +
        ") does not match the on-disk page_size (" +
        std::to_string(manifest.page_size) + ") of dataset " + options_.name);
  }
  manifest_sequence_ = manifest.sequence;
  next_component_id_ = manifest.next_component_id;
  // Crash cleanup first: interrupted flushes/merges may have left `*.tmp`
  // files or fully-renamed components the manifest never recorded.
  std::vector<std::string> referenced;
  for (const ManifestComponentEntry& entry : manifest.components) {
    referenced.push_back(entry.file);
  }
  LSMCOL_RETURN_NOT_OK(RemoveStaleDatasetFiles(options_.dir, options_.name,
                                               referenced, nullptr));
  for (const ManifestComponentEntry& entry : manifest.components) {
    LSMCOL_ASSIGN_OR_RETURN(
        auto component, Component::Open(options_.dir + "/" + entry.file,
                                        cache_, options_.page_size));
    if (component->meta().component_id != entry.id) {
      return Status::Corruption(
          "component " + entry.file + " carries id " +
          std::to_string(component->meta().component_id) +
          ", manifest expects " + std::to_string(entry.id));
    }
    if (component->meta().layout != options_.layout) {
      return Status::Corruption("component " + entry.file +
                                " layout does not match dataset layout");
    }
    components_.push_back(std::move(component));
  }
  if (columnar()) {
    if (!manifest.schema_blob.empty()) {
      LSMCOL_ASSIGN_OR_RETURN(Schema schema,
                              Schema::Deserialize(Slice(manifest.schema_blob)));
      schema_ = std::make_shared<Schema>(std::move(schema));
    } else if (!components_.empty()) {
      return Status::Corruption("columnar manifest lacks a schema: " +
                                manifest_path_);
    }
  }
  return Status::OK();
}

Status Dataset::WriteCurrentManifestLocked(
    std::unique_lock<std::mutex>* lock) {
  // Claim the manifest-writer role. Rewrites are serialized in role-claim
  // order; each snapshots the *current* in-memory state, so a later
  // claimer's manifest always includes every earlier publication — the
  // durable state advances monotonically no matter how concurrent
  // flush/merge publications interleave with the role queue.
  work_cv_.wait(*lock, [this] { return !manifest_writing_; });
  manifest_writing_ = true;
  Manifest manifest;
  manifest.sequence = manifest_sequence_ + 1;
  manifest.dataset_name = options_.name;
  manifest.layout = static_cast<uint8_t>(options_.layout);
  manifest.pk_field = options_.pk_field;
  manifest.page_size = options_.page_size;
  manifest.next_component_id = next_component_id_;
  for (const auto& component : components_) {
    const std::string& path = component->path();
    const size_t slash = path.find_last_of('/');
    manifest.components.push_back(
        {component->meta().component_id,
         slash == std::string::npos ? path : path.substr(slash + 1)});
  }
  if (schema_ != nullptr) {
    Buffer blob;
    schema_->SerializeTo(&blob);
    manifest.schema_blob.assign(blob.data(), blob.size());
  }
  // The durable part (temp write + fsync + rename + dir fsync) runs
  // without mu_ so concurrent writers/readers don't stall on it.
  lock->unlock();
  Status st = WriteManifest(manifest_path_, manifest);
  lock->lock();
  manifest_writing_ = false;
  if (!st.ok()) {
    manifest_dirty_ = true;
  } else {
    manifest_dirty_ = false;
    ++manifest_sequence_;
  }
  work_cv_.notify_all();
  return st;
}

std::string Dataset::ComponentFilePath(uint64_t id) const {
  return options_.dir + "/" + options_.name + "_" + std::to_string(id) +
         ".cmp";
}

MemTable* Dataset::MutableMemtableLocked() {
  if (memtable_.use_count() > 1) {
    // A snapshot shares this memtable: give writers a private copy so the
    // snapshot's view stays frozen.
    memtable_ = std::make_shared<MemTable>(*memtable_);
  }
  return memtable_.get();
}

Result<std::shared_ptr<Schema>> Dataset::CloneSchemaLocked() {
  LSMCOL_CHECK(schema_ != nullptr);
  // Schema is move-only; clone through its serialized form (column ids,
  // def levels, and merged_record_count round-trip exactly). Published
  // schemas are never mutated, so serializing under mu_ is safe; the
  // clone stays private to the flush/merge that requested it.
  Buffer blob;
  schema_->SerializeTo(&blob);
  LSMCOL_ASSIGN_OR_RETURN(Schema clone, Schema::Deserialize(blob.slice()));
  return std::make_shared<Schema>(std::move(clone));
}

// -------------------------------------------------------------- write path

Status Dataset::Insert(const Value& record) {
  const Value& pk = record.Get(options_.pk_field);
  if (!pk.is_int()) {
    return Status::InvalidArgument("record primary key '" + options_.pk_field +
                                   "' must be an int64");
  }
  // Encode outside the lock: with concurrent writers the (relatively
  // expensive) row encoding parallelizes; only the memtable upsert and
  // rotation bookkeeping serialize.
  Buffer row;
  row_codec_->Encode(record, &row);
  return InsertEncoded(pk.int_value(), std::move(row), /*anti_matter=*/false);
}

Status Dataset::InsertJson(std::string_view json) {
  LSMCOL_ASSIGN_OR_RETURN(Value v, ParseJson(json));
  return Insert(v);
}

Status Dataset::Delete(int64_t key) {
  return InsertEncoded(key, Buffer(), /*anti_matter=*/true);
}

Status Dataset::InsertEncoded(int64_t key, Buffer row, bool anti_matter) {
  bool inline_flush = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!background_error_.ok()) {
      // A background flush or merge failed. Reject the write (before it
      // touches the memtable) so the sealed-memtable backlog stays
      // bounded for callers that never Flush(), and clear the error: the
      // next rotation's task — or an explicit Flush() — retries the
      // stranded sealed memtables.
      Status st = background_error_;
      background_error_ = Status::OK();
      return st;
    }
    if (anti_matter) {
      MutableMemtableLocked()->Delete(key);
      ++stats_.deletes;
    } else {
      MutableMemtableLocked()->Upsert(key,
                                      std::string(row.data(), row.size()));
      ++stats_.inserts;
    }
    if (memtable_->approximate_bytes() >= options_.memtable_bytes) {
      if (scheduler_ == nullptr) {
        inline_flush = true;  // historical synchronous path
      } else {
        RotateMemtableLocked();
        if (ScheduleFlushLocked()) {
          WaitForWriteRoomLocked(&lock);
        } else {
          // Scheduler already stopped (store shutting down): fall back to
          // draining inline so no data is stranded on the immutable list.
          Status prior = background_error_;
          background_error_ = Status::OK();  // let the drain retry
          DrainImmutablesLocked(&lock);
          Status st = background_error_;
          background_error_ = Status::OK();
          if (st.ok()) st = prior;
          LSMCOL_RETURN_NOT_OK(st);
        }
      }
    }
  }
  if (inline_flush) return Flush();
  return Status::OK();
}

void Dataset::RotateMemtableLocked() {
  if (memtable_->empty()) return;
  immutables_.insert(immutables_.begin(), memtable_);  // newest first
  immutable_claimed_.insert(immutable_claimed_.begin(), false);
  memtable_ = std::make_shared<MemTable>();
}

int Dataset::OldestUnclaimedLocked() const {
  // Back of the list = oldest sealed memtable.
  for (size_t i = immutables_.size(); i > 0; --i) {
    if (!immutable_claimed_[i - 1]) return static_cast<int>(i - 1);
  }
  return -1;
}

bool Dataset::ScheduleFlushLocked() {
  if (OldestUnclaimedLocked() < 0) return true;
  // One task per sealed memtable lets the worker pool build several
  // components in parallel (publication stays ordered; each task drains
  // whatever is unclaimed, so surplus tasks exit immediately).
  if (flush_tasks_ >= immutables_.size()) return true;
  if (scheduler_ != nullptr &&
      scheduler_->Schedule([this] { BackgroundFlushTask(); })) {
    ++flush_tasks_;
    return true;
  }
  // Scheduler stopped: fine as long as some in-flight task will drain.
  return flush_tasks_ > 0;
}

void Dataset::ScheduleMergeLocked() {
  if (!options_.auto_merge || shutting_down_) return;
  if (merge_queued_ || merge_active_) return;
  if (PickMergeCountLocked() < 2) return;
  if (scheduler_ != nullptr &&
      scheduler_->Schedule([this] { BackgroundMergeTask(); })) {
    merge_queued_ = true;
  }
  // A stopped scheduler skips the merge: merging is an optimization, not
  // a durability obligation — the next open's policy pass catches up.
}

void Dataset::WaitForWriteRoomLocked(std::unique_lock<std::mutex>* lock) {
  // Stall thresholds: sealed memtables are bounded directly; component
  // count is bounded loosely (2x the policy's max) so writers outrunning
  // the merger slow to its pace instead of growing the level unboundedly.
  const size_t component_stall =
      static_cast<size_t>(options_.max_components) * 2;
  auto has_room = [this, component_stall] {
    // Fail fast instead of hanging when background work died or the
    // dataset is being torn down.
    if (!background_error_.ok() || shutting_down_) return true;
    if (immutables_.size() >= options_.max_immutable_memtables) return false;
    if (options_.auto_merge && components_.size() >= component_stall) {
      return false;
    }
    return true;
  };
  if (has_room()) return;
  ++stats_.write_stalls;
  work_cv_.wait(*lock, has_room);
}

void Dataset::BackgroundFlushTask() {
  std::unique_lock<std::mutex> lock(mu_);
  // Keep draining during shutdown: rotated memtables were promised to the
  // background flush, and the destructor waits for these tasks.
  while (background_error_.ok() && OldestUnclaimedLocked() >= 0) {
    if (!FlushOneImmutableLocked(&lock).ok()) break;  // recorded inside
    ScheduleMergeLocked();
  }
  --flush_tasks_;
  work_cv_.notify_all();
}

void Dataset::BackgroundMergeTask() {
  std::unique_lock<std::mutex> lock(mu_);
  merge_queued_ = false;
  if (merge_active_) {
    work_cv_.notify_all();
    return;
  }
  merge_active_ = true;
  while (!shutting_down_ && background_error_.ok()) {
    const size_t count = PickMergeCountLocked();
    if (count < 2) break;
    Status st = MergeRangeLocked(&lock, count);
    if (!st.ok()) {
      // Keep the first (root-cause) error if a flush already recorded one.
      if (background_error_.ok()) background_error_ = st;
      break;
    }
  }
  merge_active_ = false;
  work_cv_.notify_all();
}

void Dataset::DrainImmutablesLocked(std::unique_lock<std::mutex>* lock) {
  while (background_error_.ok()) {
    if (OldestUnclaimedLocked() >= 0) {
      FlushOneImmutableLocked(lock);  // failures land in background_error_
      continue;
    }
    if (flush_building_ > 0) {
      // Background builds are in flight; wait for them to publish (or a
      // failed one to return its memtable to the unclaimed state).
      work_cv_.wait(*lock, [this] {
        return flush_building_ == 0 || OldestUnclaimedLocked() >= 0 ||
               !background_error_.ok();
      });
      continue;
    }
    break;
  }
}

namespace {

/// Structural part of a schema serialization — the tree with column ids,
/// def levels, and types, but not the per-record merge counter (which
/// advances on every shredded record and is irrelevant for column-id
/// compatibility).
std::string SchemaStructure(const Schema& schema) {
  Buffer blob;
  schema.SerializeTo(&blob);
  BufferReader reader(blob.slice());
  Slice pk;
  uint64_t merged = 0;
  LSMCOL_CHECK_OK(reader.ReadLengthPrefixed(&pk));
  LSMCOL_CHECK_OK(reader.ReadVarint64(&merged));
  Slice tree = reader.rest();
  return std::string(tree.data(), tree.size());
}

}  // namespace

Result<std::shared_ptr<Component>> Dataset::BuildFlushComponent(
    const MemTable& memtable, uint64_t id, const std::string& tmp,
    const std::string& path, Schema* schema) {
  {
    // Build the component under a temp name: a crash mid-write leaves
    // only a `.tmp` file the next Open sweeps away.
    LSMCOL_ASSIGN_OR_RETURN(
        auto writer, ComponentWriter::Create(tmp, cache_, options_.page_size));
    if (columnar()) {
      LSMCOL_RETURN_NOT_OK(FlushColumnar(memtable, writer.get(), schema));
    } else {
      LSMCOL_RETURN_NOT_OK(FlushRows(memtable, writer.get()));
    }
    ComponentMeta meta;
    meta.layout = options_.layout;
    meta.compressed = options_.compress;
    meta.component_id = id;
    meta.entry_count = memtable.record_count();
    Buffer meta_blob;
    meta.SerializeTo(&meta_blob, schema);
    LSMCOL_RETURN_NOT_OK(writer->Finish(meta_blob.slice()));
  }
  LSMCOL_RETURN_NOT_OK(RenameFile(tmp, path));
  LSMCOL_ASSIGN_OR_RETURN(auto component,
                          Component::Open(path, cache_, options_.page_size));
  return std::shared_ptr<Component>(std::move(component));
}

Status Dataset::FlushOneImmutableLocked(std::unique_lock<std::mutex>* lock) {
  const int claim = OldestUnclaimedLocked();
  LSMCOL_CHECK(claim >= 0);
  std::shared_ptr<const MemTable> victim = immutables_[static_cast<size_t>(claim)];
  immutable_claimed_[static_cast<size_t>(claim)] = true;
  ++flush_building_;
  const uint64_t id = next_component_id_++;
  const std::string path = ComponentFilePath(id);
  const std::string tmp = path + ".tmp";

  Status st = Status::OK();
  std::shared_ptr<Component> component;
  std::shared_ptr<Schema> schema_clone;
  bool clone_dirty = false;
  while (true) {
    std::string base_structure;
    if (columnar()) {
      auto clone = CloneSchemaLocked();
      if (!clone.ok()) {
        st = clone.status();
        break;
      }
      schema_clone = std::move(*clone);
      base_structure = SchemaStructure(*schema_clone);
    }
    // Build outside the lock: the victim is sealed, the schema clone is
    // private until publication, and writers/readers (and other builds)
    // proceed concurrently.
    lock->unlock();
    Result<std::shared_ptr<Component>> built =
        BuildFlushComponent(*victim, id, tmp, path, schema_clone.get());
    lock->lock();
    if (!built.ok()) {
      st = built.status();
      break;
    }
    component = std::move(*built);
    clone_dirty =
        columnar() && SchemaStructure(*schema_clone) != base_structure;
    // Ordered publication: components must enter the list oldest-first or
    // snapshots would see a newer component below a still-sealed older
    // memtable and reconcile in the wrong order.
    work_cv_.wait(*lock, [this, &victim] {
      return immutables_.back() == victim || !background_error_.ok();
    });
    if (immutables_.back() != victim) {
      st = background_error_;  // abandoned: an older build failed
      break;
    }
    if (clone_dirty) {
      // Our build discovered columns. If a concurrent older flush also
      // advanced the schema since we cloned it, our column ids may clash
      // with the published tree — rebuild against the new base. Rare:
      // only while the schema is still being discovered.
      if (SchemaStructure(*schema_) != base_structure) {
        component.reset();  // the renamed file is overwritten by the redo
        continue;
      }
    }
    break;
  }

  if (!st.ok() || component == nullptr) {
    if (st.ok()) st = Status::IOError("flush abandoned");
    // Record so builds waiting for publication order wake and abandon
    // instead of waiting forever on this victim.
    if (background_error_.ok()) background_error_ = st;
    // Unclaim: the victim stays sealed and readable; a later drain
    // retries it. (Re-locate it — rotations shift indices.)
    for (size_t i = 0; i < immutables_.size(); ++i) {
      if (immutables_[i] == victim) {
        immutable_claimed_[i] = false;
        break;
      }
    }
    --flush_building_;
    work_cv_.notify_all();
    return st;
  }

  // Publish: component in, sealed memtable out, schema advanced — one
  // critical section, so every snapshot sees exactly one of the two
  // states and reconciliation order is preserved (the flushed data moves
  // from "oldest memtable" to "newest component", both of which sort
  // between the remaining memtables and the older components).
  components_.insert(components_.begin(), std::move(component));
  LSMCOL_CHECK(immutables_.back() == victim);
  immutables_.pop_back();
  immutable_claimed_.pop_back();
  if (clone_dirty) schema_ = std::move(schema_clone);
  ++stats_.flushes;
  work_cv_.notify_all();  // back-pressure + publication-order waiters
  // Manifest failure leaves the installed component unrecorded: in-memory
  // state stays consistent, the caller sees the error (via
  // background_error_), and the orphan file is swept on the next open if
  // no later rewrite records it. flush_building_ stays up until the
  // manifest write finishes, so DrainImmutablesLocked (and through it an
  // explicit Flush) never reports success while a publication of this
  // drain is still being recorded.
  Status manifest_status = WriteCurrentManifestLocked(lock);
  if (!manifest_status.ok() && background_error_.ok()) {
    background_error_ = manifest_status;
  }
  --flush_building_;
  work_cv_.notify_all();
  return manifest_status;
}

Status Dataset::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  RotateMemtableLocked();
  const bool had_data = !immutables_.empty();
  // Clear any prior background error *before* draining: the drain is the
  // retry of whatever failed (a sealed memtable whose build died stays
  // on the list), and a set error would stop it immediately. The prior
  // error is still surfaced below even when the retry succeeds.
  Status prior = background_error_;
  background_error_ = Status::OK();
  DrainImmutablesLocked(&lock);
  Status st = background_error_;
  background_error_ = Status::OK();
  if (st.ok()) st = prior;
  if (!st.ok()) return st;
  // A previous flush/merge may have installed state the manifest write
  // failed to record; Flush() only reports success once it is recorded.
  if (manifest_dirty_) {
    LSMCOL_RETURN_NOT_OK(WriteCurrentManifestLocked(&lock));
  }
  if (had_data && options_.auto_merge) {
    if (scheduler_ != nullptr) {
      // Schedule instead of blocking (deterministic callers follow up
      // with WaitForBackgroundWork or MergeAll).
      ScheduleMergeLocked();
      return Status::OK();
    }
    lock.unlock();
    return MaybeMerge();
  }
  return Status::OK();
}

Status Dataset::WaitForBackgroundWork() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] {
      return flush_tasks_ == 0 && flush_building_ == 0 && !merge_queued_ &&
             !merge_active_;
    });
    if (immutables_.empty() || !background_error_.ok()) break;
    // Sealed memtables with no drainer: their flush died with an error a
    // previous call already consumed. Restart the drain rather than
    // waiting for work nobody is doing.
    if (!ScheduleFlushLocked() || flush_tasks_ == 0) {
      DrainImmutablesLocked(&lock);
      break;
    }
  }
  Status st = background_error_;
  background_error_ = Status::OK();
  return st;
}

// ------------------------------------------------------------------ flush

Status Dataset::MaybeEmitColumnarLeaf(ColumnWriterSet* writers,
                                      ComponentWriter* writer, bool force) {
  if (writers->record_count() == 0) return Status::OK();
  if (options_.layout == LayoutKind::kApax) {
    const size_t budget = static_cast<size_t>(
        options_.apax_fill_fraction * static_cast<double>(options_.page_size));
    if (force || writers->EstimatedTotalSize() >= budget) {
      return EmitApaxLeaf(writers, writer, options_.compress);
    }
    return Status::OK();
  }
  // AMAX: cap by record count and keep Page 0 (table + PK chunk) within
  // one physical page.
  const size_t ncols = writers->column_count();
  const size_t page0_estimate =
      64 + ncols * 32 + writers->record_count() * 3;
  const bool page0_full =
      page0_estimate >= options_.page_size - options_.page_size / 8;
  if (force || writers->record_count() >= options_.amax_max_records ||
      page0_full) {
    AmaxOptions amax;
    amax.page_size = options_.page_size;
    amax.compress = options_.compress;
    amax.max_records = options_.amax_max_records;
    amax.empty_page_tolerance = options_.amax_empty_page_tolerance;
    return EmitAmaxLeaf(writers, writer, amax);
  }
  return Status::OK();
}

Status Dataset::FlushColumnar(const MemTable& memtable,
                              ComponentWriter* writer, Schema* schema) {
  ColumnWriterSet writers(schema);
  RecordShredder shredder(schema, &writers);
  for (const auto& [key, entry] : memtable.entries()) {
    if (entry.anti_matter) {
      LSMCOL_RETURN_NOT_OK(shredder.ShredAntiMatter(key));
    } else {
      Value record;
      LSMCOL_RETURN_NOT_OK(row_codec_->Decode(Slice(entry.row), &record));
      LSMCOL_RETURN_NOT_OK(shredder.Shred(record));
    }
    LSMCOL_RETURN_NOT_OK(MaybeEmitColumnarLeaf(&writers, writer, false));
  }
  return MaybeEmitColumnarLeaf(&writers, writer, true);
}

Status Dataset::FlushRows(const MemTable& memtable, ComponentWriter* writer) {
  RowLeafBuilder builder(writer, options_.page_size, options_.compress);
  for (const auto& [key, entry] : memtable.entries()) {
    LSMCOL_RETURN_NOT_OK(
        builder.Add(key, entry.anti_matter, Slice(entry.row)));
  }
  return builder.Finish();
}

// ------------------------------------------------------------------ merge

size_t Dataset::PickMergeCountLocked() const {
  // Tiering (§6.3): merge the youngest sequence whose total size is
  // size_ratio times the oldest component of the sequence; otherwise, when
  // over the component limit, merge the two newest.
  const size_t n = components_.size();
  if (n < 2) return 0;
  size_t merge_count = 0;
  uint64_t younger_total = 0;
  for (size_t i = 0; i + 1 <= n; ++i) {
    // younger_total = sizes of components strictly newer than index i.
    if (i > 0) younger_total += components_[i - 1]->size_bytes();
    if (i >= 1 && static_cast<double>(younger_total) >=
                      options_.size_ratio *
                          static_cast<double>(components_[i]->size_bytes())) {
      merge_count = i + 1;  // merge components [0..i]
    }
  }
  if (merge_count < 2 && n > static_cast<size_t>(options_.max_components)) {
    merge_count = 2;
  }
  return merge_count < 2 ? 0 : merge_count;
}

Status Dataset::MaybeMerge() {
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.wait(lock, [this] { return !merge_active_; });
  merge_active_ = true;
  Status st = Status::OK();
  while (true) {
    const size_t count = PickMergeCountLocked();
    if (count < 2) break;
    st = MergeRangeLocked(&lock, count);
    if (!st.ok()) break;
  }
  merge_active_ = false;
  work_cv_.notify_all();
  return st;
}

Status Dataset::MergeAll() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (memtable_->empty() && immutables_.empty() &&
        components_.size() < 2) {
      return Status::OK();
    }
  }
  LSMCOL_RETURN_NOT_OK(Flush());
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.wait(lock, [this] { return !merge_active_; });
  if (components_.size() < 2) return Status::OK();
  merge_active_ = true;
  Status st = MergeRangeLocked(&lock, components_.size());
  merge_active_ = false;
  work_cv_.notify_all();
  return st;
}

Status Dataset::MergeRangeLocked(std::unique_lock<std::mutex>* lock,
                                 size_t count) {
  LSMCOL_CHECK(merge_active_);
  LSMCOL_CHECK(count >= 2 && count <= components_.size());
  // Capture the inputs by reference: a concurrent background flush only
  // *prepends* components, so these stay live, contiguous, and in order
  // while the merge builds — they are re-located at publish time.
  std::vector<std::shared_ptr<Component>> inputs(
      components_.begin(), components_.begin() + static_cast<long>(count));
  const bool includes_oldest = count == components_.size();
  const uint64_t id = next_component_id_++;
  for (const auto& component : inputs) {
    stats_.merged_bytes_in += component->size_bytes();
  }
  std::shared_ptr<Schema> schema_clone;
  if (columnar()) {
    LSMCOL_ASSIGN_OR_RETURN(schema_clone, CloneSchemaLocked());
  }
  const std::string path = ComponentFilePath(id);
  const std::string tmp = path + ".tmp";

  lock->unlock();
  // The schema clone is a private scratch copy: merges copy existing
  // columns and never discover new ones, so it is NOT published back —
  // concurrent flushes own schema inference. The merged component stores
  // the clone, which covers every column its inputs could contain.
  auto build = [&]() -> Result<std::shared_ptr<Component>> {
    {
      LSMCOL_ASSIGN_OR_RETURN(
          auto writer,
          ComponentWriter::Create(tmp, cache_, options_.page_size));
      if (columnar()) {
        LSMCOL_RETURN_NOT_OK(MergeColumnar(inputs, includes_oldest,
                                           writer.get(), schema_clone.get()));
      } else {
        LSMCOL_RETURN_NOT_OK(MergeRows(inputs, includes_oldest, writer.get()));
      }
      uint64_t entries = 0;
      for (const auto& component : inputs) {
        entries += component->meta().entry_count;
      }
      ComponentMeta meta;
      meta.layout = options_.layout;
      meta.compressed = options_.compress;
      meta.component_id = id;
      meta.entry_count = entries;  // upper bound; queries never rely on it
      Buffer meta_blob;
      meta.SerializeTo(&meta_blob, schema_clone.get());
      LSMCOL_RETURN_NOT_OK(writer->Finish(meta_blob.slice()));
    }
    LSMCOL_RETURN_NOT_OK(RenameFile(tmp, path));
    LSMCOL_ASSIGN_OR_RETURN(
        auto merged, Component::Open(path, cache_, options_.page_size));
    return std::shared_ptr<Component>(std::move(merged));
  };
  Result<std::shared_ptr<Component>> built = build();
  lock->lock();
  // Until publication the component list was untouched, so a failed merge
  // leaves the dataset exactly as it was (modulo a swept-on-open temp
  // file).
  if (!built.ok()) return built.status();

  // Publish the new version: the merged component replaces its inputs in
  // place. Concurrent flushes may have prepended newer components, so the
  // inputs are re-located (they are still contiguous — only this merge
  // holds the merge role, and flushes never reorder).
  size_t pos = 0;
  while (pos < components_.size() && components_[pos] != inputs.front()) {
    ++pos;
  }
  LSMCOL_CHECK(pos + count <= components_.size());
  for (size_t i = 0; i < count; ++i) {
    LSMCOL_CHECK(components_[pos + i] == inputs[i]);
  }
  components_.erase(components_.begin() + static_cast<long>(pos),
                    components_.begin() + static_cast<long>(pos + count));
  components_.insert(components_.begin() + static_cast<long>(pos),
                     std::move(*built));
  ++stats_.merges;
  work_cv_.notify_all();  // component-count back-pressure waiters
  Status st = WriteCurrentManifestLocked(lock);
  // Retire the inputs only once the manifest stopped referencing them —
  // on a failed rewrite the durable manifest still lists them, so their
  // files must survive (they are merely orphaned-on-disk until a later
  // successful rewrite, or swept at the next open). On success each file
  // is deleted when its last reference drops — right here unless a live
  // snapshot still pins it.
  if (st.ok()) {
    for (auto& component : inputs) component->MarkObsolete();
  }
  inputs.clear();
  return st;
}

Status Dataset::MergeRows(
    const std::vector<std::shared_ptr<Component>>& inputs,
    bool includes_oldest, ComponentWriter* writer) {
  const size_t count = inputs.size();
  std::vector<std::unique_ptr<RowComponentCursor>> cursors;
  std::vector<bool> has(count, false);
  for (size_t i = 0; i < count; ++i) {
    cursors.push_back(std::make_unique<RowComponentCursor>(inputs[i].get()));
    LSMCOL_ASSIGN_OR_RETURN(bool ok, cursors[i]->Next());
    has[i] = ok;
  }
  RowLeafBuilder builder(writer, options_.page_size, options_.compress);
  while (true) {
    size_t min_idx = count;
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && (min_idx == count ||
                     cursors[i]->key() < cursors[min_idx]->key())) {
        min_idx = i;
      }
    }
    if (min_idx == count) break;
    const int64_t min_key = cursors[min_idx]->key();
    // Winner = newest (smallest index) holding the key.
    size_t winner = count;
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && cursors[i]->key() == min_key) {
        if (winner == count) winner = i;
      }
    }
    const bool anti = cursors[winner]->anti_matter();
    if (!(anti && includes_oldest)) {
      LSMCOL_RETURN_NOT_OK(
          builder.Add(min_key, anti, cursors[winner]->row()));
    }
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && cursors[i]->key() == min_key) {
        LSMCOL_ASSIGN_OR_RETURN(bool ok, cursors[i]->Next());
        has[i] = ok;
      }
    }
  }
  return builder.Finish();
}

namespace {

/// Decoded-APAX-leaf cache shared by all column streams of one component
/// during a vertical merge. Columns sweep the same leaves in the same
/// order, so a tiny FIFO turns the per-column re-reads of a whole APAX
/// page into hits — one decompression per leaf instead of one per leaf
/// per column (which is quadratic-feeling for 900-column datasets).
class ApaxLeafCache {
 public:
  explicit ApaxLeafCache(const Component* component)
      : component_(component) {}

  Result<const ApaxLeaf*> Get(size_t leaf_index) {
    for (auto& [index, leaf] : entries_) {
      if (index == leaf_index) return static_cast<const ApaxLeaf*>(leaf.get());
    }
    Buffer payload;
    LSMCOL_RETURN_NOT_OK(component_->reader().ReadLeaf(leaf_index, &payload));
    auto leaf = std::make_unique<ApaxLeaf>();
    LSMCOL_RETURN_NOT_OK(
        leaf->Init(payload.slice(), component_->meta().compressed));
    if (entries_.size() >= kCapacity) entries_.erase(entries_.begin());
    entries_.emplace_back(leaf_index, std::move(leaf));
    return static_cast<const ApaxLeaf*>(entries_.back().second.get());
  }

 private:
  static constexpr size_t kCapacity = 8;
  const Component* component_;
  std::vector<std::pair<size_t, std::unique_ptr<ApaxLeaf>>> entries_;
};

/// Streams one column of one columnar component across its leaves, for
/// the vertical merge (§4.5.3).
class ComponentColumnStream {
 public:
  ComponentColumnStream(const Component* component, int column_id,
                        ApaxLeafCache* apax_cache)
      : component_(component), column_id_(column_id),
        apax_cache_(apax_cache) {
    const Schema* schema = component->schema();
    absent_in_component_ =
        column_id >= schema->column_count();
  }

  Status Skip(uint64_t n) {
    if (absent_in_component_) return Status::OK();
    while (n > 0) {
      LSMCOL_RETURN_NOT_OK(EnsureLeaf());
      uint64_t take = std::min<uint64_t>(n, leaf_remaining_);
      if (leaf_exists_) {
        LSMCOL_RETURN_NOT_OK(reader_.SkipRecords(take));
      }
      leaf_remaining_ -= take;
      n -= take;
    }
    return Status::OK();
  }

  Status Copy(ColumnChunkWriter* writer) {
    if (absent_in_component_) {
      writer->AddNull(0);
      return Status::OK();
    }
    LSMCOL_RETURN_NOT_OK(EnsureLeaf());
    LSMCOL_DCHECK(leaf_remaining_ > 0);
    --leaf_remaining_;
    if (!leaf_exists_) {
      // Column unknown when this leaf was written.
      writer->AddNull(0);
      return Status::OK();
    }
    return reader_.CopyRecordTo(writer);
  }

 private:
  Status EnsureLeaf() {
    while (leaf_remaining_ == 0) {
      const auto& leaves = component_->reader().leaves();
      LSMCOL_CHECK(leaf_index_ < leaves.size());
      const Schema* schema = component_->schema();
      const ColumnInfo& info = schema->column(column_id_);
      leaf_remaining_ = leaves[leaf_index_].record_count;
      if (component_->meta().layout == LayoutKind::kApax) {
        LSMCOL_ASSIGN_OR_RETURN(const ApaxLeaf* leaf,
                                apax_cache_->Get(leaf_index_));
        Slice chunk = leaf->chunk(column_id_);
        leaf_exists_ = !chunk.empty();
        if (leaf_exists_) {
          LSMCOL_RETURN_NOT_OK(reader_.Init(chunk, info));
        }
      } else {
        const size_t page_size = component_->reader().page_size();
        const uint64_t page0_size =
            std::min<uint64_t>(leaves[leaf_index_].payload_size, page_size);
        Buffer page0_bytes;
        LSMCOL_RETURN_NOT_OK(component_->reader().ReadLeafRange(
            leaf_index_, 0, page0_size, &page0_bytes));
        LSMCOL_RETURN_NOT_OK(page0_.Init(page0_bytes.slice()));
        if (column_id_ == 0) {
          leaf_exists_ = true;
          pk_chunk_.clear();
          pk_chunk_.Append(page0_.pk_chunk());
          LSMCOL_RETURN_NOT_OK(reader_.Init(pk_chunk_.slice(), info));
        } else {
          const AmaxColumnExtent& extent = page0_.extent(column_id_);
          leaf_exists_ = extent.size != 0;
          if (leaf_exists_) {
            Buffer raw;
            LSMCOL_RETURN_NOT_OK(component_->reader().ReadLeafRange(
                leaf_index_, extent.offset, extent.size, &raw));
            LSMCOL_RETURN_NOT_OK(ParseAmaxMegapage(
                raw.slice(), info, component_->meta().compressed,
                &chunk_storage_, nullptr, nullptr));
            LSMCOL_RETURN_NOT_OK(reader_.Init(chunk_storage_.slice(), info));
          }
        }
      }
      ++leaf_index_;
    }
    return Status::OK();
  }

  const Component* component_;
  int column_id_;
  ApaxLeafCache* apax_cache_;
  bool absent_in_component_ = false;
  size_t leaf_index_ = 0;
  uint64_t leaf_remaining_ = 0;
  bool leaf_exists_ = false;
  AmaxPageZero page0_;
  Buffer pk_chunk_;
  Buffer chunk_storage_;
  ColumnChunkReader reader_;
};

}  // namespace

Status Dataset::MergeColumnar(
    const std::vector<std::shared_ptr<Component>>& inputs,
    bool includes_oldest, ComponentWriter* writer, Schema* schema) {
  const size_t count = inputs.size();
  // --- Phase 1: merge the primary keys only, recording for every input
  // record whether it survives, and the global interleaving of survivors
  // (the "recorded sequence of component IDs", §4.5.3).
  std::vector<std::unique_ptr<ColumnarComponentCursor>> pk_cursors;
  std::vector<bool> has(count, false);
  Projection keys_only = Projection::Of({});
  for (size_t i = 0; i < count; ++i) {
    pk_cursors.push_back(std::make_unique<ColumnarComponentCursor>(
        inputs[i].get(), keys_only));
    LSMCOL_ASSIGN_OR_RETURN(bool ok, pk_cursors[i]->Next());
    has[i] = ok;
  }
  std::vector<std::vector<uint8_t>> take(count);  // per input, per record
  std::vector<uint32_t> sequence;                 // winner input per output
  while (true) {
    size_t min_idx = count;
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && (min_idx == count ||
                     pk_cursors[i]->key() < pk_cursors[min_idx]->key())) {
        min_idx = i;
      }
    }
    if (min_idx == count) break;
    const int64_t min_key = pk_cursors[min_idx]->key();
    size_t winner = count;
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && pk_cursors[i]->key() == min_key && winner == count) {
        winner = i;
      }
    }
    const bool anti = pk_cursors[winner]->anti_matter();
    const bool keep = !(anti && includes_oldest);
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && pk_cursors[i]->key() == min_key) {
        take[i].push_back(i == winner && keep ? 1 : 0);
        LSMCOL_ASSIGN_OR_RETURN(bool ok, pk_cursors[i]->Next());
        has[i] = ok;
      }
    }
    if (keep) sequence.push_back(static_cast<uint32_t>(winner));
  }
  pk_cursors.clear();

  // --- Phase 2: leaf ranges, then one column at a time within each range.
  const int ncols = schema->column_count();
  std::vector<std::vector<std::unique_ptr<ComponentColumnStream>>> streams(
      count);
  std::vector<std::unique_ptr<ApaxLeafCache>> apax_caches(count);
  std::vector<std::vector<size_t>> action_pos(count);  // per input per column
  for (size_t i = 0; i < count; ++i) {
    apax_caches[i] = std::make_unique<ApaxLeafCache>(inputs[i].get());
    streams[i].resize(static_cast<size_t>(ncols));
    action_pos[i].assign(static_cast<size_t>(ncols), 0);
    for (int c = 0; c < ncols; ++c) {
      streams[i][static_cast<size_t>(c)] =
          std::make_unique<ComponentColumnStream>(inputs[i].get(), c,
                                                  apax_caches[i].get());
    }
  }

  // Output leaf sizing.
  size_t records_per_leaf;
  if (options_.layout == LayoutKind::kAmax) {
    const size_t page0_cap =
        (options_.page_size - options_.page_size / 8 - 64 -
         static_cast<size_t>(ncols) * 32) /
        3;
    records_per_leaf = std::max<size_t>(
        1, std::min(options_.amax_max_records, page0_cap));
  } else {
    uint64_t total_bytes = 0, total_records = 0;
    for (size_t i = 0; i < count; ++i) {
      total_bytes += inputs[i]->size_bytes();
      for (const auto& leaf : inputs[i]->reader().leaves()) {
        total_records += leaf.record_count;
      }
    }
    const uint64_t bpr = total_records == 0 ? 64 : total_bytes / total_records;
    records_per_leaf = std::max<uint64_t>(
        1, options_.page_size / std::max<uint64_t>(1, bpr));
  }

  ColumnWriterSet writers(schema);
  writers.SyncWithSchema();
  size_t range_start = 0;
  while (range_start < sequence.size()) {
    const size_t range_end =
        std::min(sequence.size(), range_start + records_per_leaf);
    // Vertical: column by column across this output leaf's records.
    for (int c = 0; c < ncols; ++c) {
      ColumnChunkWriter& w = writers.writer(c);
      for (size_t g = range_start; g < range_end; ++g) {
        const uint32_t input = sequence[g];
        ComponentColumnStream& stream = *streams[input][static_cast<size_t>(c)];
        // Skip this input's dropped records preceding its next survivor.
        size_t& pos = action_pos[input][static_cast<size_t>(c)];
        uint64_t skips = 0;
        while (take[input][pos] == 0) {
          ++skips;
          ++pos;
        }
        if (skips > 0) LSMCOL_RETURN_NOT_OK(stream.Skip(skips));
        LSMCOL_RETURN_NOT_OK(stream.Copy(&w));
        ++pos;
        if (c == 0) writers.NoteRecordComplete();
      }
    }
    if (options_.layout == LayoutKind::kApax) {
      LSMCOL_RETURN_NOT_OK(EmitApaxLeaf(&writers, writer, options_.compress));
    } else {
      AmaxOptions amax;
      amax.page_size = options_.page_size;
      amax.compress = options_.compress;
      amax.max_records = options_.amax_max_records;
      amax.empty_page_tolerance = options_.amax_empty_page_tolerance;
      LSMCOL_RETURN_NOT_OK(EmitAmaxLeaf(&writers, writer, amax));
    }
    range_start = range_end;
  }
  return Status::OK();
}

// ------------------------------------------------------------------ reads

Snapshot::Ref Dataset::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto snapshot = std::shared_ptr<Snapshot>(new Snapshot());
  snapshot->layout_ = options_.layout;
  snapshot->row_codec_ = row_codec_;
  snapshot->memtable_ = memtable_;
  snapshot->immutables_.assign(immutables_.begin(), immutables_.end());
  snapshot->schema_ = schema_;
  snapshot->components_.assign(components_.begin(), components_.end());
  return snapshot;
}

Result<std::unique_ptr<LsmScanCursor>> Dataset::Scan(
    const Projection& projection) {
  return GetSnapshot()->Scan(projection);
}

Status Dataset::Lookup(int64_t key, Value* out) {
  return Lookup(key, Projection::All(), out);
}

Status Dataset::Lookup(int64_t key, const Projection& projection, Value* out) {
  return GetSnapshot()->Lookup(key, projection, out);
}

Result<std::unique_ptr<Dataset::LookupBatch>> Dataset::NewLookupBatch(
    const Projection& projection) {
  return GetSnapshot()->NewLookupBatch(projection);
}

// ---------------------------------------------------------- introspection

const Schema* Dataset::schema() const {
  std::lock_guard<std::mutex> lock(mu_);
  return schema_.get();
}

size_t Dataset::component_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return components_.size();
}

const Component& Dataset::component(size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return *components_[i];
}

size_t Dataset::immutable_memtable_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return immutables_.size();
}

uint64_t Dataset::OnDiskBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& component : components_) total += component->size_bytes();
  return total;
}

DatasetStats Dataset::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t Dataset::manifest_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_sequence_;
}

}  // namespace lsmcol
