#include "src/lsm/dataset.h"

#include <algorithm>

#include "src/columnar/shredder.h"
#include "src/json/parser.h"

namespace lsmcol {

// ----------------------------------------------------------- scan cursor

LsmScanCursor::LsmScanCursor(std::vector<std::unique_ptr<TupleCursor>> sources) {
  sources_.resize(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    sources_[i].cursor = std::move(sources[i]);
  }
}

Result<bool> LsmScanCursor::Next() {
  while (true) {
    // Refill any source consumed in the previous round.
    for (Source& src : sources_) {
      if (src.needs_advance) {
        LSMCOL_ASSIGN_OR_RETURN(src.has_current, src.cursor->Next());
        src.needs_advance = false;
      }
    }
    // Minimum key; ties resolved by recency (sources_ is newest-first).
    Source* min_src = nullptr;
    for (Source& src : sources_) {
      if (!src.has_current) continue;
      if (min_src == nullptr || src.cursor->key() < min_src->cursor->key()) {
        min_src = &src;
      }
    }
    if (min_src == nullptr) return false;
    const int64_t min_key = min_src->cursor->key();
    // Consume every source holding this key; the newest one wins, the
    // others are shadowed (replaced records / annihilated pairs, §2.1.1).
    Source* winner = nullptr;
    bool winner_anti = false;
    for (Source& src : sources_) {
      if (src.has_current && src.cursor->key() == min_key) {
        if (winner == nullptr) {
          winner = &src;
          winner_anti = src.cursor->anti_matter();
        }
        src.needs_advance = true;
      }
    }
    if (winner_anti) continue;  // deleted record
    winner_ = winner->cursor.get();
    return true;
  }
}

Status LsmScanCursor::SeekForward(int64_t target) {
  for (Source& src : sources_) {
    LSMCOL_RETURN_NOT_OK(src.cursor->SeekForward(target));
    if (src.has_current && !src.needs_advance &&
        src.cursor->key() < target) {
      src.needs_advance = true;
    }
  }
  return Status::OK();
}

// ----------------------------------------------------------------- Dataset

Dataset::Dataset(const DatasetOptions& options, BufferCache* cache)
    : options_(options), cache_(cache) {
  row_codec_ = &GetRowCodec(columnar() ? LayoutKind::kVb : options_.layout);
  if (columnar()) schema_.emplace(options_.pk_field);
}

Dataset::~Dataset() = default;

Result<std::unique_ptr<Dataset>> Dataset::Create(const DatasetOptions& options,
                                                 BufferCache* cache) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("DatasetOptions.dir must be set");
  }
  if (cache->page_size() != options.page_size) {
    return Status::InvalidArgument("cache/page size mismatch");
  }
  return std::unique_ptr<Dataset>(new Dataset(options, cache));
}

std::string Dataset::NextComponentPath() {
  return options_.dir + "/" + options_.name + "_" +
         std::to_string(next_component_id_) + ".cmp";
}

Status Dataset::Insert(const Value& record) {
  const Value& pk = record.Get(options_.pk_field);
  if (!pk.is_int()) {
    return Status::InvalidArgument("record primary key '" + options_.pk_field +
                                   "' must be an int64");
  }
  Buffer row;
  row_codec_->Encode(record, &row);
  memtable_.Upsert(pk.int_value(), std::string(row.data(), row.size()));
  ++stats_.inserts;
  if (memtable_.approximate_bytes() >= options_.memtable_bytes) {
    return Flush();
  }
  return Status::OK();
}

Status Dataset::InsertJson(std::string_view json) {
  LSMCOL_ASSIGN_OR_RETURN(Value v, ParseJson(json));
  return Insert(v);
}

Status Dataset::Delete(int64_t key) {
  memtable_.Delete(key);
  ++stats_.deletes;
  if (memtable_.approximate_bytes() >= options_.memtable_bytes) {
    return Flush();
  }
  return Status::OK();
}

Status Dataset::MaybeEmitColumnarLeaf(ColumnWriterSet* writers,
                                      ComponentWriter* writer, bool force) {
  if (writers->record_count() == 0) return Status::OK();
  if (options_.layout == LayoutKind::kApax) {
    const size_t budget = static_cast<size_t>(
        options_.apax_fill_fraction * static_cast<double>(options_.page_size));
    if (force || writers->EstimatedTotalSize() >= budget) {
      return EmitApaxLeaf(writers, writer, options_.compress);
    }
    return Status::OK();
  }
  // AMAX: cap by record count and keep Page 0 (table + PK chunk) within
  // one physical page.
  const size_t ncols = writers->column_count();
  const size_t page0_estimate =
      64 + ncols * 32 + writers->record_count() * 3;
  const bool page0_full =
      page0_estimate >= options_.page_size - options_.page_size / 8;
  if (force || writers->record_count() >= options_.amax_max_records ||
      page0_full) {
    AmaxOptions amax;
    amax.page_size = options_.page_size;
    amax.compress = options_.compress;
    amax.max_records = options_.amax_max_records;
    amax.empty_page_tolerance = options_.amax_empty_page_tolerance;
    return EmitAmaxLeaf(writers, writer, amax);
  }
  return Status::OK();
}

Status Dataset::FlushColumnar(ComponentWriter* writer) {
  ColumnWriterSet writers(&*schema_);
  RecordShredder shredder(&*schema_, &writers);
  for (const auto& [key, entry] : memtable_.entries()) {
    if (entry.anti_matter) {
      LSMCOL_RETURN_NOT_OK(shredder.ShredAntiMatter(key));
    } else {
      Value record;
      LSMCOL_RETURN_NOT_OK(row_codec_->Decode(Slice(entry.row), &record));
      LSMCOL_RETURN_NOT_OK(shredder.Shred(record));
    }
    LSMCOL_RETURN_NOT_OK(MaybeEmitColumnarLeaf(&writers, writer, false));
  }
  return MaybeEmitColumnarLeaf(&writers, writer, true);
}

Status Dataset::FlushRows(ComponentWriter* writer) {
  RowLeafBuilder builder(writer, options_.page_size, options_.compress);
  for (const auto& [key, entry] : memtable_.entries()) {
    LSMCOL_RETURN_NOT_OK(
        builder.Add(key, entry.anti_matter, Slice(entry.row)));
  }
  return builder.Finish();
}

Status Dataset::OpenAndInstallComponent(const std::string& path,
                                        size_t position) {
  LSMCOL_ASSIGN_OR_RETURN(auto component,
                          Component::Open(path, cache_, options_.page_size));
  components_.insert(components_.begin() + static_cast<long>(position),
                     std::move(component));
  return Status::OK();
}

Status Dataset::Flush() {
  if (memtable_.empty()) return Status::OK();
  const std::string path = NextComponentPath();
  LSMCOL_ASSIGN_OR_RETURN(
      auto writer, ComponentWriter::Create(path, cache_, options_.page_size));
  if (columnar()) {
    LSMCOL_RETURN_NOT_OK(FlushColumnar(writer.get()));
  } else {
    LSMCOL_RETURN_NOT_OK(FlushRows(writer.get()));
  }
  ComponentMeta meta;
  meta.layout = options_.layout;
  meta.compressed = options_.compress;
  meta.component_id = next_component_id_++;
  meta.entry_count = memtable_.record_count();
  Buffer meta_blob;
  meta.SerializeTo(&meta_blob, columnar() ? &*schema_ : nullptr);
  LSMCOL_RETURN_NOT_OK(writer->Finish(meta_blob.slice()));
  LSMCOL_RETURN_NOT_OK(OpenAndInstallComponent(path, 0));
  memtable_.Clear();
  ++stats_.flushes;
  if (options_.auto_merge) return MaybeMerge();
  return Status::OK();
}

// ------------------------------------------------------------------ merge

Status Dataset::MaybeMerge() {
  // Tiering (§6.3): merge the youngest sequence whose total size is
  // size_ratio times the oldest component of the sequence; otherwise, when
  // over the component limit, merge the two newest.
  while (true) {
    const size_t n = components_.size();
    if (n < 2) return Status::OK();
    size_t merge_count = 0;
    uint64_t younger_total = 0;
    for (size_t i = 0; i + 1 <= n; ++i) {
      // younger_total = sizes of components strictly newer than index i.
      if (i > 0) younger_total += components_[i - 1]->size_bytes();
      if (i >= 1 && static_cast<double>(younger_total) >=
                        options_.size_ratio *
                            static_cast<double>(components_[i]->size_bytes())) {
        merge_count = i + 1;  // merge components [0..i]
      }
    }
    if (merge_count < 2 &&
        n > static_cast<size_t>(options_.max_components)) {
      merge_count = 2;
    }
    if (merge_count < 2) return Status::OK();
    LSMCOL_RETURN_NOT_OK(MergeRange(merge_count));
  }
}

Status Dataset::MergeAll() {
  if (memtable_.empty() && components_.size() < 2) return Status::OK();
  LSMCOL_RETURN_NOT_OK(Flush());
  if (components_.size() < 2) return Status::OK();
  return MergeRange(components_.size());
}

Status Dataset::MergeRange(size_t count) {
  LSMCOL_CHECK(count >= 2 && count <= components_.size());
  const std::string path = NextComponentPath();
  LSMCOL_ASSIGN_OR_RETURN(
      auto writer, ComponentWriter::Create(path, cache_, options_.page_size));
  for (size_t i = 0; i < count; ++i) {
    stats_.merged_bytes_in += components_[i]->size_bytes();
  }
  if (columnar()) {
    LSMCOL_RETURN_NOT_OK(MergeColumnarRange(count, writer.get()));
  } else {
    LSMCOL_RETURN_NOT_OK(MergeRowRange(count, writer.get()));
  }
  uint64_t entries = 0;
  for (size_t i = 0; i < count; ++i) {
    entries += components_[i]->meta().entry_count;
  }
  ComponentMeta meta;
  meta.layout = options_.layout;
  meta.compressed = options_.compress;
  meta.component_id = next_component_id_++;
  meta.entry_count = entries;  // upper bound; queries never rely on it
  Buffer meta_blob;
  meta.SerializeTo(&meta_blob, columnar() ? &*schema_ : nullptr);
  LSMCOL_RETURN_NOT_OK(writer->Finish(meta_blob.slice()));
  // Swap in the merged component, drop the inputs.
  std::vector<std::unique_ptr<Component>> old(
      std::make_move_iterator(components_.begin()),
      std::make_move_iterator(components_.begin() + static_cast<long>(count)));
  components_.erase(components_.begin(),
                    components_.begin() + static_cast<long>(count));
  LSMCOL_RETURN_NOT_OK(OpenAndInstallComponent(path, 0));
  for (auto& component : old) {
    LSMCOL_RETURN_NOT_OK(component->Destroy());
  }
  ++stats_.merges;
  return Status::OK();
}

Status Dataset::MergeRowRange(size_t count, ComponentWriter* writer) {
  const bool includes_oldest = count == components_.size();
  std::vector<std::unique_ptr<RowComponentCursor>> cursors;
  std::vector<bool> has(count, false);
  for (size_t i = 0; i < count; ++i) {
    cursors.push_back(std::make_unique<RowComponentCursor>(
        components_[i].get()));
    LSMCOL_ASSIGN_OR_RETURN(bool ok, cursors[i]->Next());
    has[i] = ok;
  }
  RowLeafBuilder builder(writer, options_.page_size, options_.compress);
  while (true) {
    size_t min_idx = count;
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && (min_idx == count ||
                     cursors[i]->key() < cursors[min_idx]->key())) {
        min_idx = i;
      }
    }
    if (min_idx == count) break;
    const int64_t min_key = cursors[min_idx]->key();
    // Winner = newest (smallest index) holding the key.
    size_t winner = count;
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && cursors[i]->key() == min_key) {
        if (winner == count) winner = i;
      }
    }
    const bool anti = cursors[winner]->anti_matter();
    if (!(anti && includes_oldest)) {
      LSMCOL_RETURN_NOT_OK(
          builder.Add(min_key, anti, cursors[winner]->row()));
    }
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && cursors[i]->key() == min_key) {
        LSMCOL_ASSIGN_OR_RETURN(bool ok, cursors[i]->Next());
        has[i] = ok;
      }
    }
  }
  return builder.Finish();
}

namespace {

/// Decoded-APAX-leaf cache shared by all column streams of one component
/// during a vertical merge. Columns sweep the same leaves in the same
/// order, so a tiny FIFO turns the per-column re-reads of a whole APAX
/// page into hits — one decompression per leaf instead of one per leaf
/// per column (which is quadratic-feeling for 900-column datasets).
class ApaxLeafCache {
 public:
  explicit ApaxLeafCache(const Component* component)
      : component_(component) {}

  Result<const ApaxLeaf*> Get(size_t leaf_index) {
    for (auto& [index, leaf] : entries_) {
      if (index == leaf_index) return static_cast<const ApaxLeaf*>(leaf.get());
    }
    Buffer payload;
    LSMCOL_RETURN_NOT_OK(component_->reader().ReadLeaf(leaf_index, &payload));
    auto leaf = std::make_unique<ApaxLeaf>();
    LSMCOL_RETURN_NOT_OK(
        leaf->Init(payload.slice(), component_->meta().compressed));
    if (entries_.size() >= kCapacity) entries_.erase(entries_.begin());
    entries_.emplace_back(leaf_index, std::move(leaf));
    return static_cast<const ApaxLeaf*>(entries_.back().second.get());
  }

 private:
  static constexpr size_t kCapacity = 8;
  const Component* component_;
  std::vector<std::pair<size_t, std::unique_ptr<ApaxLeaf>>> entries_;
};

/// Streams one column of one columnar component across its leaves, for
/// the vertical merge (§4.5.3).
class ComponentColumnStream {
 public:
  ComponentColumnStream(const Component* component, int column_id,
                        ApaxLeafCache* apax_cache)
      : component_(component), column_id_(column_id),
        apax_cache_(apax_cache) {
    const Schema* schema = component->schema();
    absent_in_component_ =
        column_id >= schema->column_count();
  }

  Status Skip(uint64_t n) {
    if (absent_in_component_) return Status::OK();
    while (n > 0) {
      LSMCOL_RETURN_NOT_OK(EnsureLeaf());
      uint64_t take = std::min<uint64_t>(n, leaf_remaining_);
      if (leaf_exists_) {
        LSMCOL_RETURN_NOT_OK(reader_.SkipRecords(take));
      }
      leaf_remaining_ -= take;
      n -= take;
    }
    return Status::OK();
  }

  Status Copy(ColumnChunkWriter* writer) {
    if (absent_in_component_) {
      writer->AddNull(0);
      return Status::OK();
    }
    LSMCOL_RETURN_NOT_OK(EnsureLeaf());
    LSMCOL_DCHECK(leaf_remaining_ > 0);
    --leaf_remaining_;
    if (!leaf_exists_) {
      // Column unknown when this leaf was written.
      writer->AddNull(0);
      return Status::OK();
    }
    return reader_.CopyRecordTo(writer);
  }

 private:
  Status EnsureLeaf() {
    while (leaf_remaining_ == 0) {
      const auto& leaves = component_->reader().leaves();
      LSMCOL_CHECK(leaf_index_ < leaves.size());
      const Schema* schema = component_->schema();
      const ColumnInfo& info = schema->column(column_id_);
      leaf_remaining_ = leaves[leaf_index_].record_count;
      if (component_->meta().layout == LayoutKind::kApax) {
        LSMCOL_ASSIGN_OR_RETURN(const ApaxLeaf* leaf,
                                apax_cache_->Get(leaf_index_));
        Slice chunk = leaf->chunk(column_id_);
        leaf_exists_ = !chunk.empty();
        if (leaf_exists_) {
          LSMCOL_RETURN_NOT_OK(reader_.Init(chunk, info));
        }
      } else {
        const size_t page_size = component_->reader().page_size();
        const uint64_t page0_size =
            std::min<uint64_t>(leaves[leaf_index_].payload_size, page_size);
        Buffer page0_bytes;
        LSMCOL_RETURN_NOT_OK(component_->reader().ReadLeafRange(
            leaf_index_, 0, page0_size, &page0_bytes));
        LSMCOL_RETURN_NOT_OK(page0_.Init(page0_bytes.slice()));
        if (column_id_ == 0) {
          leaf_exists_ = true;
          pk_chunk_.clear();
          pk_chunk_.Append(page0_.pk_chunk());
          LSMCOL_RETURN_NOT_OK(reader_.Init(pk_chunk_.slice(), info));
        } else {
          const AmaxColumnExtent& extent = page0_.extent(column_id_);
          leaf_exists_ = extent.size != 0;
          if (leaf_exists_) {
            Buffer raw;
            LSMCOL_RETURN_NOT_OK(component_->reader().ReadLeafRange(
                leaf_index_, extent.offset, extent.size, &raw));
            LSMCOL_RETURN_NOT_OK(ParseAmaxMegapage(
                raw.slice(), info, component_->meta().compressed,
                &chunk_storage_, nullptr, nullptr));
            LSMCOL_RETURN_NOT_OK(reader_.Init(chunk_storage_.slice(), info));
          }
        }
      }
      ++leaf_index_;
    }
    return Status::OK();
  }

  const Component* component_;
  int column_id_;
  ApaxLeafCache* apax_cache_;
  bool absent_in_component_ = false;
  size_t leaf_index_ = 0;
  uint64_t leaf_remaining_ = 0;
  bool leaf_exists_ = false;
  AmaxPageZero page0_;
  Buffer pk_chunk_;
  Buffer chunk_storage_;
  ColumnChunkReader reader_;
};

}  // namespace

Status Dataset::MergeColumnarRange(size_t count, ComponentWriter* writer) {
  const bool includes_oldest = count == components_.size();
  // --- Phase 1: merge the primary keys only, recording for every input
  // record whether it survives, and the global interleaving of survivors
  // (the "recorded sequence of component IDs", §4.5.3).
  std::vector<std::unique_ptr<ColumnarComponentCursor>> pk_cursors;
  std::vector<bool> has(count, false);
  Projection keys_only = Projection::Of({});
  for (size_t i = 0; i < count; ++i) {
    pk_cursors.push_back(std::make_unique<ColumnarComponentCursor>(
        components_[i].get(), keys_only));
    LSMCOL_ASSIGN_OR_RETURN(bool ok, pk_cursors[i]->Next());
    has[i] = ok;
  }
  std::vector<std::vector<uint8_t>> take(count);  // per input, per record
  std::vector<uint32_t> sequence;                 // winner input per output
  while (true) {
    size_t min_idx = count;
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && (min_idx == count ||
                     pk_cursors[i]->key() < pk_cursors[min_idx]->key())) {
        min_idx = i;
      }
    }
    if (min_idx == count) break;
    const int64_t min_key = pk_cursors[min_idx]->key();
    size_t winner = count;
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && pk_cursors[i]->key() == min_key && winner == count) {
        winner = i;
      }
    }
    const bool anti = pk_cursors[winner]->anti_matter();
    const bool keep = !(anti && includes_oldest);
    for (size_t i = 0; i < count; ++i) {
      if (has[i] && pk_cursors[i]->key() == min_key) {
        take[i].push_back(i == winner && keep ? 1 : 0);
        LSMCOL_ASSIGN_OR_RETURN(bool ok, pk_cursors[i]->Next());
        has[i] = ok;
      }
    }
    if (keep) sequence.push_back(static_cast<uint32_t>(winner));
  }
  pk_cursors.clear();

  // --- Phase 2: leaf ranges, then one column at a time within each range.
  const int ncols = schema_->column_count();
  std::vector<std::vector<std::unique_ptr<ComponentColumnStream>>> streams(
      count);
  std::vector<std::unique_ptr<ApaxLeafCache>> apax_caches(count);
  std::vector<std::vector<size_t>> action_pos(count);  // per input per column
  for (size_t i = 0; i < count; ++i) {
    apax_caches[i] = std::make_unique<ApaxLeafCache>(components_[i].get());
    streams[i].resize(static_cast<size_t>(ncols));
    action_pos[i].assign(static_cast<size_t>(ncols), 0);
    for (int c = 0; c < ncols; ++c) {
      streams[i][static_cast<size_t>(c)] = std::make_unique<ComponentColumnStream>(
          components_[i].get(), c, apax_caches[i].get());
    }
  }

  // Output leaf sizing.
  size_t records_per_leaf;
  if (options_.layout == LayoutKind::kAmax) {
    const size_t page0_cap =
        (options_.page_size - options_.page_size / 8 - 64 -
         static_cast<size_t>(ncols) * 32) /
        3;
    records_per_leaf = std::max<size_t>(
        1, std::min(options_.amax_max_records, page0_cap));
  } else {
    uint64_t total_bytes = 0, total_records = 0;
    for (size_t i = 0; i < count; ++i) {
      total_bytes += components_[i]->size_bytes();
      for (const auto& leaf : components_[i]->reader().leaves()) {
        total_records += leaf.record_count;
      }
    }
    const uint64_t bpr = total_records == 0 ? 64 : total_bytes / total_records;
    records_per_leaf = std::max<uint64_t>(
        1, options_.page_size / std::max<uint64_t>(1, bpr));
  }

  ColumnWriterSet writers(&*schema_);
  writers.SyncWithSchema();
  size_t range_start = 0;
  while (range_start < sequence.size()) {
    const size_t range_end =
        std::min(sequence.size(), range_start + records_per_leaf);
    // Vertical: column by column across this output leaf's records.
    for (int c = 0; c < ncols; ++c) {
      ColumnChunkWriter& w = writers.writer(c);
      for (size_t g = range_start; g < range_end; ++g) {
        const uint32_t input = sequence[g];
        ComponentColumnStream& stream = *streams[input][static_cast<size_t>(c)];
        // Skip this input's dropped records preceding its next survivor.
        size_t& pos = action_pos[input][static_cast<size_t>(c)];
        uint64_t skips = 0;
        while (take[input][pos] == 0) {
          ++skips;
          ++pos;
        }
        if (skips > 0) LSMCOL_RETURN_NOT_OK(stream.Skip(skips));
        LSMCOL_RETURN_NOT_OK(stream.Copy(&w));
        ++pos;
        if (c == 0) writers.NoteRecordComplete();
      }
    }
    if (options_.layout == LayoutKind::kApax) {
      LSMCOL_RETURN_NOT_OK(EmitApaxLeaf(&writers, writer, options_.compress));
    } else {
      AmaxOptions amax;
      amax.page_size = options_.page_size;
      amax.compress = options_.compress;
      amax.max_records = options_.amax_max_records;
      amax.empty_page_tolerance = options_.amax_empty_page_tolerance;
      LSMCOL_RETURN_NOT_OK(EmitAmaxLeaf(&writers, writer, amax));
    }
    range_start = range_end;
  }
  return Status::OK();
}

// ------------------------------------------------------------------ reads

std::unique_ptr<TupleCursor> Dataset::NewComponentCursor(
    const Component& component, const Projection& projection) const {
  if (component.meta().layout == LayoutKind::kApax ||
      component.meta().layout == LayoutKind::kAmax) {
    return std::make_unique<ColumnarComponentCursor>(&component, projection);
  }
  return std::make_unique<RowComponentCursor>(&component);
}

Result<std::unique_ptr<LsmScanCursor>> Dataset::Scan(
    const Projection& projection) {
  std::vector<std::unique_ptr<TupleCursor>> sources;
  sources.push_back(std::make_unique<MemTableCursor>(&memtable_, row_codec_));
  for (const auto& component : components_) {
    sources.push_back(NewComponentCursor(*component, projection));
  }
  return std::make_unique<LsmScanCursor>(std::move(sources));
}

Status Dataset::Lookup(int64_t key, Value* out) {
  return Lookup(key, Projection::All(), out);
}

Status Dataset::Lookup(int64_t key, const Projection& projection, Value* out) {
  LSMCOL_ASSIGN_OR_RETURN(auto cursor, Scan(projection));
  LSMCOL_RETURN_NOT_OK(cursor->SeekForward(key));
  LSMCOL_ASSIGN_OR_RETURN(bool ok, cursor->Next());
  if (!ok || cursor->key() != key) {
    return Status::NotFound("key " + std::to_string(key));
  }
  return cursor->Record(out);
}

Result<std::unique_ptr<Dataset::LookupBatch>> Dataset::NewLookupBatch(
    const Projection& projection) {
  LSMCOL_ASSIGN_OR_RETURN(auto cursor, Scan(projection));
  return std::unique_ptr<LookupBatch>(new LookupBatch(std::move(cursor)));
}

Status Dataset::LookupBatch::Find(int64_t key, bool* found, Value* out) {
  *found = false;
  if (exhausted_) return Status::OK();
  if (has_current_ && cursor_->key() > key) return Status::OK();
  if (!has_current_ || cursor_->key() < key) {
    LSMCOL_RETURN_NOT_OK(cursor_->SeekForward(key));
    LSMCOL_ASSIGN_OR_RETURN(bool ok, cursor_->Next());
    if (!ok) {
      exhausted_ = true;
      return Status::OK();
    }
    has_current_ = true;
  }
  if (cursor_->key() == key) {
    *found = true;
    if (out != nullptr) LSMCOL_RETURN_NOT_OK(cursor_->Record(out));
  }
  return Status::OK();
}

uint64_t Dataset::OnDiskBytes() const {
  uint64_t total = 0;
  for (const auto& component : components_) total += component->size_bytes();
  return total;
}

}  // namespace lsmcol
