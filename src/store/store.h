// Store: the engine's top-level facade — one directory holding any number
// of named, durable datasets sharing a single BufferCache (the paper's
// "node" setup: one cache, many collections).
//
// Layout on disk:
//
//   <dir>/
//     <name>/                    one subdirectory per dataset
//       <name>.MANIFEST          recovery metadata (see storage/manifest.h)
//       <name>_<id>.cmp          immutable LSM components
//
// Store::Open creates the directory if missing, discovers every dataset
// left by earlier runs, and sweeps their crash leftovers (`*.tmp` files
// and components no manifest references). Datasets are then materialized
// lazily: OpenDataset(name, options) creates a new dataset or recovers the
// existing one — the durable identity (layout, pk_field, page_size) comes
// from the manifest and must not be contradicted by `options`; the runtime
// knobs (memtable budget, merge policy, compression of future components)
// come from `options` on every open.

#ifndef LSMCOL_STORE_STORE_H_
#define LSMCOL_STORE_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/lsm/dataset.h"
#include "src/lsm/scrubber.h"
#include "src/store/backup.h"

namespace lsmcol {

struct StoreOptions {
  /// Root directory of the store (created if missing).
  std::string dir;
  /// Page size shared by the cache and every dataset.
  size_t page_size = kDefaultPageSize;
  /// Budget of the BufferCache shared by all datasets.
  size_t cache_bytes = 256u << 20;
  /// Background flush/merge worker threads shared by every dataset of
  /// this store (one FlushMergeScheduler). 0 (the default) disables
  /// background work: flushes and merges run inline on the writing
  /// thread, exactly the historical synchronous behavior — deterministic
  /// for tests. With N >= 1, a dataset's full memtable rotates onto an
  /// immutable list and is flushed off the write path, merges run
  /// asynchronously, and writers stall only on back-pressure
  /// (DatasetOptions::max_immutable_memtables). Must be in [0, 256].
  int background_threads = 0;
  /// Write-ahead logging for every dataset of this store (copied into
  /// DatasetOptions::wal by OpenDataset — per-write durability is a
  /// store-level deployment decision, like the page size). Off by
  /// default; see storage/wal.h.
  WalOptions wal;
  /// Filesystem all store and dataset I/O goes through (copied into
  /// DatasetOptions::fs by OpenDataset). nullptr = the process-wide POSIX
  /// filesystem; tests substitute a FaultInjectionFs. Must outlive the
  /// store. Not validated (a runtime wiring knob).
  FileSystem* fs = nullptr;
  /// Transient-I/O retry policy for every dataset of this store (copied
  /// into DatasetOptions::io_retry by OpenDataset); see that field.
  IoRetryOptions io_retry;
  /// Compaction policy for every dataset of this store (copied into
  /// DatasetOptions::compaction by OpenDataset); see CompactionStrategy
  /// in src/lsm/options.h. The default reproduces the historical
  /// size-tiered behavior exactly.
  CompactionOptions compaction;
  /// Background integrity scrubbing (see lsm/scrubber.h). Requires
  /// background_threads >= 1 when enabled — slices run on the shared
  /// scheduler's low-priority lane.
  ScrubOptions scrub;
};

/// One dataset's fault-tolerance health, as reported by Store::Health().
struct DatasetHealth {
  std::string name;
  /// A background flush/merge/manifest failure is pending (writes are
  /// being rejected until Flush()/WaitForBackgroundWork retries it).
  bool has_background_error = false;
  Status background_error;
  /// Sticky: the first background failure ever recorded, kept even after
  /// the pending error above was retried away — "did anything ever go
  /// wrong" for monitoring.
  Status last_background_error;
  /// The WAL failed closed (its sticky io_status; see storage/wal.h):
  /// every write is being rejected until the segment rotates.
  bool wal_wedged = false;
  Status wal_status;
  /// Every quarantined component: (component id, quarantine reason).
  std::vector<std::pair<uint64_t, std::string>> quarantined;
  uint64_t quarantined_components = 0;  ///< damage-isolated components
  uint64_t checksum_failures = 0;       ///< damaged reads observed
  // Scrub progress rollup (see lsm/scrubber.h).
  uint64_t scrub_leaves = 0;
  uint64_t scrub_bytes = 0;
  uint64_t scrub_passes = 0;
  uint64_t scrub_damage_found = 0;
  uint64_t io_retries = 0;              ///< transient errors retried
  uint64_t io_retry_backoff_micros = 0;
  // Compaction amplification rollup (see the DatasetStats fields of the
  // same names): how much extra writing and disk the dataset's policy
  // is paying for its read path.
  uint64_t flush_bytes_out = 0;
  uint64_t merge_bytes_in = 0;
  uint64_t merge_bytes_out = 0;
  double write_amplification = 0.0;
  double space_amplification = 0.0;
};

/// Checks every field and returns InvalidArgument naming the offending
/// field.
Status ValidateStoreOptions(const StoreOptions& options);

class Store {
 public:
  /// Open (or initialize) the store at `options.dir`: discovers existing
  /// datasets and removes their stale temp/orphan files.
  static Result<std::unique_ptr<Store>> Open(const StoreOptions& options);

  /// Destroying the store calls Close(), then closes every dataset
  /// (unflushed active memtables are lost — Flush() first; everything
  /// flushed, including sealed memtables the background drain completes,
  /// is durable via manifests). Snapshots must not outlive the store: the
  /// shared BufferCache dies with it, and components pinned only by
  /// snapshots touch the cache when they are finally released.
  ~Store();

  /// Clean shutdown of background work, in dependency order: (1) wait for
  /// every open dataset's queued/running flushes and merges, (2) stop the
  /// shared scheduler (drains its queue, joins the workers). After Close,
  /// writers still work but flush inline. Idempotent; returns the first
  /// background error any dataset reports.
  Status Close() LSMCOL_EXCLUDES(mu_);

  /// Create-or-recover the named dataset. `options.dir`, `options.name`,
  /// `options.page_size`, and `options.wal` are owned by the store and
  /// overwritten; the
  /// rest are the caller's runtime knobs (and, for a brand-new dataset,
  /// its durable identity: layout and pk_field). Returns the same pointer
  /// on repeated calls — the first open's options win. The pointer stays
  /// owned by the store and valid until the store dies.
  Result<Dataset*> OpenDataset(const std::string& name,
                               DatasetOptions options = DatasetOptions())
      LSMCOL_EXCLUDES(mu_);

  /// The dataset if currently open, else nullptr (no disk access).
  Dataset* GetDataset(const std::string& name) const LSMCOL_EXCLUDES(mu_);

  /// All dataset names: open ones plus those discovered on disk at
  /// Store::Open time, sorted, deduplicated.
  std::vector<std::string> ListDatasets() const LSMCOL_EXCLUDES(mu_);

  /// Fault-tolerance health of every open dataset (see DatasetHealth),
  /// sorted by name. Cheap: counters and a status peek, no I/O; safe to
  /// poll from a monitoring thread.
  std::vector<DatasetHealth> Health() const LSMCOL_EXCLUDES(mu_);

  /// Consistent hot backup of every open dataset into `backup_dir`
  /// (created if missing). Pins one snapshot per dataset — flushes,
  /// merges, and writers keep running; the backup sees exactly the
  /// pinned state plus the WAL prefix that covers it. Incremental: a
  /// component already present in the directory's catalog with a
  /// matching checksum is reused, not re-copied. The catalog
  /// (BACKUP.MANIFEST) is written atomically last, so an interrupted
  /// backup leaves the previous one intact. Refuses (without writing)
  /// when any component is quarantined — back up before damage, repair
  /// after. One backup at a time per store; see store/backup.h.
  Status CreateBackup(const std::string& backup_dir,
                      const BackupOptions& options = BackupOptions())
      LSMCOL_EXCLUDES(mu_, backup_mu_);

  /// Restore a backup into `target_dir`, which must not already hold a
  /// store (refuses rather than merging or overwriting). The restored
  /// directory is a normal store root: Store::Open + OpenDataset recover
  /// it, replaying the backed-up WAL prefix. Forwards to
  /// RestoreStoreFromBackup (store/backup.h).
  static Status RestoreFromBackup(const std::string& backup_dir,
                                  const std::string& target_dir,
                                  FileSystem* fs = nullptr);

  /// One full synchronous, unthrottled scrub pass over every open
  /// dataset (the background scrubber's engine, run to completion
  /// inline). Damage quarantines components exactly like the background
  /// path. Returns aggregate tallies.
  Result<ScrubPassResult> ScrubNow() LSMCOL_EXCLUDES(mu_);

  BufferCache* cache() { return &cache_; }
  /// The shared background scheduler; nullptr when background_threads == 0.
  FlushMergeScheduler* scheduler() { return scheduler_.get(); }
  /// The background scrubber; nullptr unless StoreOptions::scrub.enabled.
  Scrubber* scrubber() { return scrubber_.get(); }
  const StoreOptions& options() const { return options_; }

 private:
  explicit Store(const StoreOptions& options);

  std::string DatasetDir(const std::string& name) const;

  StoreOptions options_;
  BufferCache cache_;  // declared before datasets: destroyed after them
  /// Declared before the datasets so it outlives them: each Dataset's
  /// destructor waits for its own scheduled tasks, which run on these
  /// workers. (Destruction order: datasets first, then the scheduler.)
  std::unique_ptr<FlushMergeScheduler> scheduler_;

  /// Guards the dataset map and discovery list: OpenDataset, GetDataset,
  /// ListDatasets, and Close may be called from any thread. First in the
  /// global rank order — held across Dataset::Open/WaitForBackgroundWork,
  /// which take the per-dataset mutexes underneath.
  mutable Mutex mu_{MutexRank::kStore};
  std::map<std::string, std::unique_ptr<Dataset>> open_
      LSMCOL_GUARDED_BY(mu_);
  /// On-disk datasets at Open time.
  std::vector<std::string> discovered_ LSMCOL_GUARDED_BY(mu_);

  /// Serializes CreateBackup calls (one backup at a time per store) and
  /// guards nothing else — the copy phase deliberately runs without mu_
  /// so writers and background work proceed. Acquired after mu_ is
  /// *released* (rank kBackup > kStore, but the two are never nested).
  mutable Mutex backup_mu_{MutexRank::kBackup};

  /// Declared after the datasets: destroyed first, and Close() stops it
  /// before draining datasets, so no scrub slice touches a dying dataset.
  std::unique_ptr<Scrubber> scrubber_;
};

}  // namespace lsmcol

#endif  // LSMCOL_STORE_STORE_H_
