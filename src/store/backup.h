// Consistent hot backup, restore, and component salvage.
//
// CreateBackup (a Store method; the engine lives here) pins one snapshot
// per open dataset and copies, without ever blocking writers:
//
//   <backup_dir>/
//     BACKUP.MANIFEST                  checksummed catalog, written LAST
//     <dataset>/
//       <dataset>_<id>.cmp             immutable components (stable names)
//       <dataset>_<seq>.<gen>.walbk    WAL prefix up to the pin's cut LSN
//       <dataset>.<gen>.MANIFEST       dataset manifest at the pin instant
//
// Component files are write-once, so their backup names are stable and
// incremental backups reuse any copy whose checksum still matches the
// prior catalog. WAL segments and dataset manifests DO change between
// backups, so each backup generation writes them under fresh
// (`.<gen>.`) names and prunes the superseded generation only after the
// new catalog is durable — at every instant the directory holds one
// complete, verifiable backup.
//
// Restore copies every cataloged file (verified against its checksum)
// into a fresh store root, dataset manifests last; the result recovers
// through the ordinary Store::Open path, WAL replay included.
//
// Salvage is the last resort when there is no backup: it walks a damaged
// component file leaf by leaf in salvage mode (no quarantine
// bookkeeping) and emits every record whose leaf still verifies.

#ifndef LSMCOL_STORE_BACKUP_H_
#define LSMCOL_STORE_BACKUP_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/status.h"
#include "src/json/value.h"
#include "src/storage/filesystem.h"

namespace lsmcol {

struct BackupOptions {
  /// Hardlink component files into the backup instead of copying them
  /// (same-filesystem backups: O(1) per reused byte). The link is
  /// re-hashed and verified against the source like a copy; filesystems
  /// that cannot link (or a cross-device backup_dir) fall back to
  /// copying. Off by default: a hardlinked backup shares inodes with the
  /// live store, so media decay damages both — opt in only for staging
  /// areas that are themselves shipped elsewhere.
  bool hardlink = false;
};

/// Restore the backup at `backup_dir` into `target_dir` (created if
/// missing; must not already contain files — restoring over a live or
/// partially-restored store is refused with AlreadyExists). Every file is
/// verified against the catalog during the copy.
Status RestoreStoreFromBackup(const std::string& backup_dir,
                              const std::string& target_dir,
                              FileSystem* fs = nullptr);

/// What SalvageComponentFile could and could not read.
struct SalvageResult {
  uint64_t leaves_total = 0;
  uint64_t leaves_readable = 0;
  uint64_t leaves_damaged = 0;
  uint64_t records = 0;  ///< records emitted (anti-matter excluded)
};

/// Walk the component file at `path` in salvage mode and call `emit` for
/// every record in every leaf that still passes verification (damaged
/// leaves are skipped, their records lost). `emit` returning non-OK
/// aborts the walk with that status. Works on any layout; `page_size`
/// must match the file's.
Status SalvageComponentFile(
    const std::string& path, size_t page_size,
    const std::function<Status(int64_t key, const Value& record)>& emit,
    SalvageResult* result, FileSystem* fs = nullptr);

}  // namespace lsmcol

#endif  // LSMCOL_STORE_BACKUP_H_
