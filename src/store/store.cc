#include "src/store/store.h"

#include <algorithm>
#include <filesystem>

#include "src/storage/file.h"
#include "src/storage/manifest.h"

namespace lsmcol {
namespace {

Status Bad(const char* field, const std::string& why) {
  return Status::InvalidArgument("StoreOptions." + std::string(field) + " " +
                                 why);
}

}  // namespace

Status ValidateStoreOptions(const StoreOptions& options) {
  if (options.dir.empty()) return Bad("dir", "must be non-empty");
  if (options.page_size < kMinPageSize) {
    return Bad("page_size", "must be at least " +
                                std::to_string(kMinPageSize) + " bytes, got " +
                                std::to_string(options.page_size));
  }
  if (options.cache_bytes < options.page_size * 8) {
    return Bad("cache_bytes", "must hold at least 8 pages (" +
                                  std::to_string(options.page_size * 8) +
                                  " bytes), got " +
                                  std::to_string(options.cache_bytes));
  }
  if (options.background_threads < 0 || options.background_threads > 256) {
    return Bad("background_threads",
               "must be in [0, 256], got " +
                   std::to_string(options.background_threads));
  }
  if (options.wal.enabled) {
    if (options.wal.group_window_us > 1000000) {
      return Bad("wal.group_window_us",
                 "must be at most 1000000 (1 s), got " +
                     std::to_string(options.wal.group_window_us));
    }
    if (options.wal.max_group_bytes == 0) {
      return Bad("wal.max_group_bytes", "must be positive");
    }
  }
  LSMCOL_RETURN_NOT_OK(ValidateCompactionOptions(options.compaction,
                                                 "StoreOptions.compaction."));
  if (options.scrub.enabled) {
    if (options.background_threads < 1) {
      return Bad("scrub.enabled",
                 "requires background_threads >= 1 (scrub slices run on the "
                 "shared scheduler's low-priority lane)");
    }
    if (options.scrub.max_slice_bytes == 0) {
      return Bad("scrub.max_slice_bytes", "must be positive");
    }
  }
  return Status::OK();
}

Store::Store(const StoreOptions& options)
    : options_(options), cache_(options.cache_bytes, options.page_size) {
  if (options.background_threads > 0) {
    scheduler_ =
        std::make_unique<FlushMergeScheduler>(options.background_threads);
  }
  if (options.scrub.enabled && scheduler_ != nullptr) {
    scrubber_ = std::make_unique<Scrubber>(scheduler_.get(), options.scrub);
    scrubber_->Start();
  }
}

Store::~Store() {
  Status st = Close();
  (void)st;  // destructors cannot report; Close() first to observe errors
}

Status Store::Close() {
  // Dependency order: datasets first (their queued tasks must run and
  // their immutable memtables drain), then the shared worker pool. mu_
  // stays held throughout (rank kStore precedes every per-dataset lock),
  // so a racing OpenDataset cannot slip a dataset past the drain.
  MutexLock lock(&mu_);
  // The scrubber first: once Stop() returns, no scrub slice is touching
  // (or will touch) a dataset, so the drain below sees quiescent readers.
  if (scrubber_ != nullptr) scrubber_->Stop();
  Status first;
  for (auto& [name, dataset] : open_) {
    Status st = dataset->WaitForBackgroundWork();
    if (first.ok() && !st.ok()) first = st;
  }
  if (scheduler_ != nullptr) scheduler_->Stop();
  return first;
}

std::string Store::DatasetDir(const std::string& name) const {
  return options_.dir + "/" + name;
}

Result<std::unique_ptr<Store>> Store::Open(const StoreOptions& options) {
  LSMCOL_RETURN_NOT_OK(ValidateStoreOptions(options));
  LSMCOL_RETURN_NOT_OK(CreateDirDurable(options.dir, options.fs));
  std::unique_ptr<Store> store(new Store(options));
  // Discover datasets left by earlier runs (a subdirectory <name> holding
  // <name>.MANIFEST) and sweep their crash leftovers now — including
  // datasets this run never opens. (Dataset::Open sweeps again for the
  // standalone path; the sweep is idempotent and cheap.) The store is
  // not published yet; the lock just satisfies discovered_'s guard.
  MutexLock lock(&store->mu_);
  std::error_code ec;
  std::filesystem::directory_iterator it(options.dir, ec);
  if (ec) {
    return Status::IOError("cannot list " + options.dir + ": " +
                           ec.message());
  }
  for (const auto& entry : it) {
    if (!entry.is_directory(ec)) continue;
    const std::string name = entry.path().filename().string();
    const std::string manifest_path =
        ManifestPath(entry.path().string(), name);
    if (!FileExists(manifest_path, options.fs)) continue;
    store->discovered_.push_back(name);
    auto manifest = ReadManifest(manifest_path, options.fs);
    if (!manifest.ok()) {
      // Confine the blast radius: a corrupt manifest must not take the
      // whole store down. The dataset stays listed (no sweep — we cannot
      // tell garbage from data), and OpenDataset(name) surfaces the
      // corruption to whoever actually wants it.
      continue;
    }
    std::vector<std::string> referenced;
    for (const ManifestComponentEntry& component : manifest->components) {
      referenced.push_back(component.file);
    }
    LSMCOL_RETURN_NOT_OK(RemoveStaleDatasetFiles(entry.path().string(), name,
                                                 referenced,
                                                 manifest->wal_floor,
                                                 nullptr, options.fs));
  }
  std::sort(store->discovered_.begin(), store->discovered_.end());
  return store;
}

Result<Dataset*> Store::OpenDataset(const std::string& name,
                                    DatasetOptions options) {
  // Held across Dataset::Open on purpose: a concurrent OpenDataset of
  // the same name must get the same pointer, not a second recovery of
  // the same directory. Opening other datasets serializes behind it —
  // opens are rare and the alternative (per-name in-flight markers) is
  // not worth it yet.
  MutexLock lock(&mu_);
  auto it = open_.find(name);
  if (it != open_.end()) {
    // Same outcome as reopening after a restart: contradicting the
    // dataset's durable identity is an error, not a silent no-op.
    Dataset* existing = it->second.get();
    if (options.layout != existing->layout()) {
      return Status::InvalidArgument(
          "DatasetOptions.layout (" +
          std::string(LayoutKindName(options.layout)) +
          ") does not match open dataset " + name + " (" +
          std::string(LayoutKindName(existing->layout())) + ")");
    }
    if (options.pk_field != existing->options().pk_field) {
      return Status::InvalidArgument(
          "DatasetOptions.pk_field ('" + options.pk_field +
          "') does not match open dataset " + name + " ('" +
          existing->options().pk_field + "')");
    }
    return existing;
  }
  options.dir = DatasetDir(name);
  options.name = name;
  options.page_size = options_.page_size;
  options.scheduler = scheduler_.get();  // nullptr => synchronous flushes
  options.wal = options_.wal;
  options.fs = options_.fs;
  options.io_retry = options_.io_retry;
  options.compaction = options_.compaction;
  LSMCOL_ASSIGN_OR_RETURN(auto dataset, Dataset::Open(options, &cache_));
  Dataset* raw = dataset.get();
  open_.emplace(name, std::move(dataset));
  if (scrubber_ != nullptr) scrubber_->Register(raw);
  if (std::find(discovered_.begin(), discovered_.end(), name) ==
      discovered_.end()) {
    discovered_.insert(std::upper_bound(discovered_.begin(),
                                        discovered_.end(), name),
                       name);
  }
  return raw;
}

Dataset* Store::GetDataset(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = open_.find(name);
  return it == open_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Store::ListDatasets() const {
  MutexLock lock(&mu_);
  return discovered_;
}

std::vector<DatasetHealth> Store::Health() const {
  MutexLock lock(&mu_);
  std::vector<DatasetHealth> health;
  health.reserve(open_.size());
  for (const auto& [name, dataset] : open_) {  // map order == sorted
    DatasetHealth h;
    h.name = name;
    h.background_error = dataset->background_error();
    h.has_background_error = !h.background_error.ok();
    h.last_background_error = dataset->last_background_error();
    h.wal_status = dataset->wal_status();
    h.wal_wedged = !h.wal_status.ok();
    for (const auto& [id, reason] : dataset->QuarantineList()) {
      h.quarantined.emplace_back(id, reason.message());
    }
    const DatasetStats stats = dataset->stats();
    // Current state, not the lifetime counter in DatasetStats: a
    // repaired component leaves quarantine and leaves this count.
    h.quarantined_components = h.quarantined.size();
    h.checksum_failures = stats.checksum_failures;
    h.scrub_leaves = stats.scrub_leaves;
    h.scrub_bytes = stats.scrub_bytes;
    h.scrub_passes = stats.scrub_passes;
    h.scrub_damage_found = stats.scrub_damage_found;
    h.io_retries = stats.io_retries;
    h.io_retry_backoff_micros = stats.io_retry_backoff_micros;
    h.flush_bytes_out = stats.flush_bytes_out;
    h.merge_bytes_in = stats.merged_bytes_in;
    h.merge_bytes_out = stats.merge_bytes_out;
    h.write_amplification = stats.write_amplification();
    h.space_amplification = stats.space_amplification();
    health.push_back(std::move(h));
  }
  return health;
}

Result<ScrubPassResult> Store::ScrubNow() {
  std::vector<Dataset*> datasets;
  {
    MutexLock lock(&mu_);
    datasets.reserve(open_.size());
    for (const auto& [name, dataset] : open_) datasets.push_back(dataset.get());
  }
  ScrubPassResult total;
  for (Dataset* dataset : datasets) {
    LSMCOL_ASSIGN_OR_RETURN(ScrubPassResult one,
                            Scrubber::ScrubDataset(dataset));
    total.components += one.components;
    total.leaves += one.leaves;
    total.bytes += one.bytes;
    total.damaged += one.damaged;
    total.skipped_quarantined += one.skipped_quarantined;
  }
  return total;
}

}  // namespace lsmcol
