#include "src/store/backup.h"

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/lsm/component.h"
#include "src/lsm/dataset.h"
#include "src/storage/backup_manifest.h"
#include "src/storage/file.h"
#include "src/storage/manifest.h"
#include "src/storage/wal.h"
#include "src/store/store.h"

namespace lsmcol {
namespace {

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

const BackupFileEntry* FindPrior(const BackupManifest& prior,
                                 const std::string& dataset,
                                 BackupFileKind kind, uint64_t id) {
  for (const BackupFileEntry& f : prior.files) {
    if (f.kind == kind && f.dataset == dataset && f.id == id) return &f;
  }
  return nullptr;
}

/// Copy (or hardlink) one immutable component file into the backup,
/// reusing the prior generation's copy when its checksum still matches.
Status BackupComponent(const DatasetBackupPin& pin,
                       const ManifestComponentEntry& comp,
                       const BackupManifest& prior, const BackupOptions& opts,
                       const std::string& backup_dir, BackupManifest* next,
                       FileSystem* fs) {
  const std::string src = pin.dir + "/" + comp.file;
  const BackupFileEntry* reuse =
      FindPrior(prior, pin.name, BackupFileKind::kComponent, comp.id);
  if (reuse != nullptr) {
    uint64_t size = 0;
    uint32_t sum = 0;
    if (HashFile(backup_dir + "/" + reuse->rel_path, &size, &sum, fs).ok() &&
        size == reuse->size && sum == reuse->checksum) {
      next->files.push_back(*reuse);  // incremental: copy still intact
      return Status::OK();
    }
    // The prior copy is missing or damaged — fall through and re-copy.
    // Overwriting it in place is safe precisely because it no longer
    // matches the prior catalog: there is nothing left to preserve.
  }
  uint64_t size = 0;
  uint32_t sum = 0;
  LSMCOL_RETURN_NOT_OK(HashFile(src, &size, &sum, fs));
  const std::string rel = pin.name + "/" + comp.file;
  const std::string dst = backup_dir + "/" + rel;
  bool done = false;
  if (opts.hardlink) {
    (void)RemoveFileIfExists(dst, fs);
    Status link = fs->LinkFile(src, dst);
    if (link.ok()) {
      uint64_t lsize = 0;
      uint32_t lsum = 0;
      LSMCOL_RETURN_NOT_OK(HashFile(dst, &lsize, &lsum, fs));
      if (lsize != size || lsum != sum) {
        (void)RemoveFileIfExists(dst, fs);
        return Status::ChecksumMismatch("hardlinked backup of " + src +
                                        " does not hash like its source");
      }
      done = true;
    } else if (link.code() != StatusCode::kNotSupported) {
      return link;
    }
  }
  if (!done) {
    LSMCOL_RETURN_NOT_OK(CopyFileVerified(src, dst, size, sum, fs));
  }
  BackupFileEntry entry;
  entry.kind = BackupFileKind::kComponent;
  entry.dataset = pin.name;
  entry.rel_path = rel;
  entry.size = size;
  entry.checksum = sum;
  entry.id = comp.id;
  next->files.push_back(std::move(entry));
  return Status::OK();
}

Status BackupOneDataset(const DatasetBackupPin& pin,
                        const BackupManifest& prior,
                        const BackupOptions& opts,
                        const std::string& backup_dir, BackupManifest* next,
                        FileSystem* fs) {
  const std::string subdir = backup_dir + "/" + pin.name;
  LSMCOL_RETURN_NOT_OK(CreateDirDurable(subdir, fs));
  for (const ManifestComponentEntry& comp : pin.manifest.components) {
    LSMCOL_RETURN_NOT_OK(
        BackupComponent(pin, comp, prior, opts, backup_dir, next, fs));
  }
  // WAL prefix covering everything newer than the pinned components
  // (memtable + immutables). Segments mutate between backups, so each
  // generation writes fresh `.<gen>.walbk` names — the prior
  // generation's files stay untouched until the new catalog is durable.
  if (pin.wal_enabled) {
    for (uint64_t seq = pin.wal_first_segment; seq <= pin.wal_last_segment;
         ++seq) {
      const std::string src = WalSegmentPath(pin.dir, pin.name, seq);
      if (!FileExists(src, fs)) continue;  // already deleted by a flush
      const std::string rel = pin.name + "/" + pin.name + "_" +
                              std::to_string(seq) + "." +
                              std::to_string(next->sequence) + ".walbk";
      uint64_t frames = 0;
      LSMCOL_RETURN_NOT_OK(CopyWalSegmentPrefix(src, backup_dir + "/" + rel,
                                                seq, pin.wal_cut_lsn, &frames,
                                                fs));
      BackupFileEntry entry;
      entry.kind = BackupFileKind::kWalSegment;
      entry.dataset = pin.name;
      entry.rel_path = rel;
      LSMCOL_RETURN_NOT_OK(
          HashFile(backup_dir + "/" + rel, &entry.size, &entry.checksum, fs));
      entry.id = seq;
      next->files.push_back(std::move(entry));
    }
  }
  // The dataset manifest exactly as of the pin (NOT the live file, which
  // concurrent flushes keep rewriting past the pinned state).
  const std::string mrel = pin.name + "/" + pin.name + "." +
                           std::to_string(next->sequence) + ".MANIFEST";
  LSMCOL_RETURN_NOT_OK(
      WriteManifest(backup_dir + "/" + mrel, pin.manifest, fs));
  BackupFileEntry entry;
  entry.kind = BackupFileKind::kDatasetManifest;
  entry.dataset = pin.name;
  entry.rel_path = mrel;
  LSMCOL_RETURN_NOT_OK(
      HashFile(backup_dir + "/" + mrel, &entry.size, &entry.checksum, fs));
  next->files.push_back(std::move(entry));
  return SyncDir(subdir, fs);
}

/// Remove files in the backup's dataset subdirectories that the (just
/// committed) catalog does not reference: superseded WAL/manifest
/// generations and components dropped by merges. Best effort — leftovers
/// cost space, never correctness.
void PruneUnreferenced(const std::string& backup_dir,
                       const BackupManifest& catalog, FileSystem* fs) {
  std::set<std::string> keep;
  std::set<std::string> subdirs;
  for (const BackupFileEntry& f : catalog.files) {
    keep.insert(f.rel_path);
    subdirs.insert(f.dataset);
  }
  for (const std::string& ds : subdirs) {
    auto listing = fs->ListDir(backup_dir + "/" + ds);
    if (!listing.ok()) continue;
    for (const std::string& name : *listing) {
      if (keep.count(ds + "/" + name) != 0) continue;
      (void)RemoveFileIfExists(backup_dir + "/" + ds + "/" + name, fs);
    }
  }
}

}  // namespace

Status Store::CreateBackup(const std::string& backup_dir,
                           const BackupOptions& opts) {
  std::vector<Dataset*> datasets;
  {
    MutexLock lock(&mu_);
    datasets.reserve(open_.size());
    for (const auto& [name, dataset] : open_) datasets.push_back(dataset.get());
  }
  // mu_ is released before backup_mu_ so the ranks never nest; writers,
  // flushes, merges, and even OpenDataset proceed during the copy phase.
  MutexLock backup_lock(&backup_mu_);
  FileSystem* fs = ResolveFs(options_.fs);

  // Pin every dataset first: quarantine anywhere refuses the whole
  // backup before a single byte is written.
  std::vector<DatasetBackupPin> pins(datasets.size());
  {
    Status st;
    size_t pinned = 0;
    for (; pinned < datasets.size(); ++pinned) {
      st = datasets[pinned]->BeginBackup(&pins[pinned]);
      if (!st.ok()) break;
    }
    if (!st.ok()) {
      for (size_t i = 0; i < pinned; ++i) datasets[i]->EndBackup();
      return st;
    }
  }

  Status result = [&]() -> Status {
    LSMCOL_RETURN_NOT_OK(CreateDirDurable(backup_dir, fs));
    BackupManifest next;
    BackupManifest prior;
    {
      auto read = ReadBackupManifest(backup_dir, fs);
      if (read.ok()) prior = std::move(*read);
      // Unreadable/absent catalog == fresh full backup into this dir.
    }
    next.sequence = prior.sequence + 1;
    for (const DatasetBackupPin& pin : pins) {
      LSMCOL_RETURN_NOT_OK(
          BackupOneDataset(pin, prior, opts, backup_dir, &next, fs));
    }
    // The commit point: until this rename lands, the directory's
    // authoritative content is still the prior catalog (whose files were
    // never touched); after it, the new one. Prune only after.
    LSMCOL_RETURN_NOT_OK(WriteBackupManifest(backup_dir, next, fs));
    PruneUnreferenced(backup_dir, next, fs);
    return Status::OK();
  }();

  for (Dataset* dataset : datasets) dataset->EndBackup();
  return result;
}

Status Store::RestoreFromBackup(const std::string& backup_dir,
                                const std::string& target_dir,
                                FileSystem* fs) {
  return RestoreStoreFromBackup(backup_dir, target_dir, fs);
}

Status RestoreStoreFromBackup(const std::string& backup_dir,
                              const std::string& target_dir,
                              FileSystem* fs) {
  fs = ResolveFs(fs);
  LSMCOL_ASSIGN_OR_RETURN(BackupManifest catalog,
                          ReadBackupManifest(backup_dir, fs));
  // Refuse anything that could merge a backup into live data: the target
  // root must hold no files and none of the catalog's dataset manifests.
  {
    auto listing = fs->ListDir(target_dir);
    if (listing.ok() && !listing->empty()) {
      return Status::AlreadyExists("restore target " + target_dir +
                                   " already contains files");
    }
  }
  for (const BackupFileEntry& f : catalog.files) {
    const std::string manifest_path =
        ManifestPath(target_dir + "/" + f.dataset, f.dataset);
    if (FileExists(manifest_path, fs)) {
      return Status::AlreadyExists("restore target already holds dataset " +
                                   f.dataset + " (" + manifest_path + ")");
    }
  }
  LSMCOL_RETURN_NOT_OK(CreateDirDurable(target_dir, fs));
  std::set<std::string> made_dirs;
  auto target_of = [&](const BackupFileEntry& f) {
    const std::string ddir = target_dir + "/" + f.dataset;
    switch (f.kind) {
      case BackupFileKind::kWalSegment:
        return WalSegmentPath(ddir, f.dataset, f.id);
      case BackupFileKind::kDatasetManifest:
        return ManifestPath(ddir, f.dataset);
      case BackupFileKind::kComponent:
      default:
        return ddir + "/" + Basename(f.rel_path);
    }
  };
  // Two phases: data files first, dataset manifests last — a restore
  // that dies midway leaves directories Store::Open treats as junk (no
  // manifest), not a dataset that recovers to partial data.
  for (int phase = 0; phase < 2; ++phase) {
    for (const BackupFileEntry& f : catalog.files) {
      const bool is_manifest = f.kind == BackupFileKind::kDatasetManifest;
      if (is_manifest != (phase == 1)) continue;
      if (made_dirs.insert(f.dataset).second) {
        LSMCOL_RETURN_NOT_OK(
            CreateDirDurable(target_dir + "/" + f.dataset, fs));
      }
      LSMCOL_RETURN_NOT_OK(CopyFileVerified(backup_dir + "/" + f.rel_path,
                                            target_of(f), f.size, f.checksum,
                                            fs));
    }
  }
  for (const std::string& ds : made_dirs) {
    LSMCOL_RETURN_NOT_OK(SyncDir(target_dir + "/" + ds, fs));
  }
  return SyncDir(target_dir, fs);
}

Status SalvageComponentFile(
    const std::string& path, size_t page_size,
    const std::function<Status(int64_t key, const Value& record)>& emit,
    SalvageResult* result, FileSystem* fs) {
  *result = SalvageResult();
  BufferCache cache(page_size * 64, page_size);
  LSMCOL_ASSIGN_OR_RETURN(
      auto component, Component::OpenForSalvage(path, &cache, page_size, fs));
  const std::vector<LeafEntry>& leaves = component->reader().leaves();
  result->leaves_total = leaves.size();

  // Probe pass: which leaves still verify end to end?
  std::vector<bool> readable(leaves.size(), false);
  {
    Buffer payload;
    for (size_t i = 0; i < leaves.size(); ++i) {
      if (component->ScrubLeaf(i, &payload).ok()) {
        readable[i] = true;
        ++result->leaves_readable;
      } else {
        ++result->leaves_damaged;
      }
    }
  }

  const bool row_layout = component->meta().layout == LayoutKind::kOpen ||
                          component->meta().layout == LayoutKind::kVb;
  auto make_cursor = [&]() -> std::unique_ptr<TupleCursor> {
    if (row_layout) {
      return std::make_unique<RowComponentCursor>(component.get());
    }
    return std::make_unique<ColumnarComponentCursor>(component.get(),
                                                     Projection::All());
  };

  // Emit pass: leaf key ranges are disjoint and sorted, so a fresh
  // cursor seeked into each readable leaf's window extracts its records
  // without ever touching a damaged leaf.
  for (size_t i = 0; i < leaves.size(); ++i) {
    if (!readable[i]) continue;
    auto cursor = make_cursor();
    if (!cursor->SeekForward(leaves[i].min_key).ok()) continue;
    while (true) {
      auto advanced = cursor->Next();
      if (!advanced.ok() || !*advanced) break;
      if (cursor->key() > leaves[i].max_key) break;
      if (cursor->anti_matter()) continue;
      Value record;
      if (!cursor->Record(&record).ok()) break;
      ++result->records;
      LSMCOL_RETURN_NOT_OK(emit(cursor->key(), record));
    }
  }
  return Status::OK();
}

}  // namespace lsmcol
