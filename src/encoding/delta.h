// Delta binary-packed codec for int64 values (Parquet DELTA_BINARY_PACKED,
// simplified to one miniblock per block).
//
// Wire format:
//   varint   value_count
//   if value_count > 0:
//     signed-varint first_value
//     blocks of up to kBlockSize deltas, each:
//       signed-varint min_delta
//       byte          bit_width
//       bit-packed    (delta - min_delta) for each value in the block
//
// Monotone sequences (timestamps, primary keys) collapse to almost nothing;
// random data degrades to ~64 bits/value, matching plain encoding.

#ifndef LSMCOL_ENCODING_DELTA_H_
#define LSMCOL_ENCODING_DELTA_H_

#include <cstdint>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"

namespace lsmcol {

/// Streaming delta encoder for int64.
class DeltaInt64Encoder {
 public:
  static constexpr size_t kBlockSize = 64;

  void Add(int64_t value);
  /// Append n values with block-at-a-time delta accumulation — the batch
  /// entry point the run-level merge copy path feeds decoded spans into.
  void AddBatch(const int64_t* values, size_t n);
  size_t value_count() const { return value_count_; }
  void FinishInto(Buffer* out);
  void Clear();

 private:
  void FlushBlock();

  size_t value_count_ = 0;
  int64_t first_value_ = 0;
  int64_t previous_ = 0;
  std::vector<int64_t> pending_deltas_;
  Buffer body_;
};

/// Streaming delta decoder with block-granular Skip.
///
/// Batch-API invariant: DecodeBatch consumes exactly min(n, remaining())
/// values and interleaves freely with Next/Skip; encoded blocks crossing
/// a batch boundary are resumed transparently on the next call.
class DeltaInt64Decoder {
 public:
  Status Init(Slice input);

  size_t value_count() const { return value_count_; }
  size_t remaining() const { return value_count_ - position_; }

  Status Next(int64_t* out);
  Status Skip(size_t n);

  /// Decode exactly min(n, remaining()) values into out[0..]; *decoded
  /// reports how many were written. Prefix sums run block-at-a-time with
  /// no per-value call overhead.
  Status DecodeBatch(size_t n, int64_t* out, size_t* decoded);

  Status DecodeAll(std::vector<int64_t>* out);

  /// Unconsumed bytes after the encoded stream. Valid once all values have
  /// been decoded; used by composite formats that append payloads after a
  /// delta-encoded stream.
  Slice rest() const { return reader_.rest(); }

 private:
  Status LoadBlock();

  BufferReader reader_{Slice()};
  size_t value_count_ = 0;
  size_t position_ = 0;
  int64_t previous_ = 0;  // last reconstructed value
  bool first_pending_ = false;
  int64_t first_value_ = 0;
  std::vector<int64_t> block_;  // decoded deltas of the current block
  size_t block_pos_ = 0;
};

}  // namespace lsmcol

#endif  // LSMCOL_ENCODING_DELTA_H_
