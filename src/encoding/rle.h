// RLE / bit-packed hybrid codec (Parquet-style) for small unsigned integers
// with a known maximum bit width. Used for definition levels (including the
// delimiter values of the extended Dremel format, §3.2.1) and for boolean
// columns (bit width 1).
//
// Wire format, after a varint value count:
//   repeated runs, each starting with a varint header h:
//     h & 1 == 0:  RLE run. count = h >> 1, followed by the repeated value
//                  in ceil(bit_width / 8) little-endian bytes.
//     h & 1 == 1:  bit-packed run. group_count = h >> 1, followed by
//                  group_count * 8 values bit-packed (the trailing group of
//                  the final run may be padded with zeros).

#ifndef LSMCOL_ENCODING_RLE_H_
#define LSMCOL_ENCODING_RLE_H_

#include <cstdint>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"

namespace lsmcol {

/// Streaming encoder. Values must satisfy v < 2^bit_width. Call Add for
/// each value, then FinishInto exactly once.
class RleEncoder {
 public:
  explicit RleEncoder(int bit_width);

  void Add(uint64_t value);
  void AddRun(uint64_t value, size_t count);

  size_t value_count() const { return value_count_; }

  /// Append the encoded stream (with its varint count header) to out.
  void FinishInto(Buffer* out);

  /// Reset to an empty stream (reusable across pages).
  void Clear();

 private:
  // Must exceed 7 so completing a bit-packed group never exhausts a run.
  static constexpr size_t kMinRleRun = 16;

  void EmitRun();
  void FlushBufferedAsBitPacked();
  void FlushRle();

  int bit_width_;
  size_t value_count_ = 0;
  // Current candidate RLE run.
  uint64_t run_value_ = 0;
  size_t run_length_ = 0;
  // Values pending in an open bit-packed run (multiple of 8 flushed).
  std::vector<uint64_t> buffered_;
  Buffer body_;
};

/// One maximal stretch of equal decoded values, as surfaced by
/// RleDecoder::DecodeRuns. Bit-packed regions degrade to per-value runs
/// unless adjacent values happen to repeat.
struct RleRun {
  uint64_t value = 0;
  size_t count = 0;
};

/// Streaming decoder with O(1)-amortized Skip. Reads the varint count
/// header on Init.
///
/// Batch-API invariants (shared by DecodeBatch/DecodeRuns/SkipAndCount):
///  * they consume exactly the requested number of values (clamped to
///    remaining()), never more, and interleave freely with Next/Skip;
///  * an encoded run crossing a batch boundary is resumed on the next
///    call — batch boundaries are invisible in the decoded stream.
class RleDecoder {
 public:
  RleDecoder() = default;

  Status Init(Slice input, int bit_width);

  size_t value_count() const { return value_count_; }
  size_t remaining() const { return value_count_ - position_; }

  Status Next(uint64_t* out);
  Status Skip(size_t n);

  /// Decode exactly min(n, remaining()) values into out[0..]; *decoded
  /// reports how many were written. RLE runs are expanded with a fill
  /// loop, bit-packed regions are copied — no per-value call overhead.
  Status DecodeBatch(size_t n, uint64_t* out, size_t* decoded);

  /// Decode up to max_values values as (value, count) runs appended to
  /// out. Consecutive equal values are coalesced across encoded-run
  /// boundaries, so callers can advance whole runs at a time.
  Status DecodeRuns(size_t max_values, std::vector<RleRun>* out);

  /// Skip exactly n values while counting how many equal `target` —
  /// run-granular: an RLE run contributes in O(1). Used to advance a
  /// value decoder past skipped records (count = values present).
  Status SkipAndCount(size_t n, uint64_t target, size_t* count);

  /// Decode all remaining values into out (appending).
  Status DecodeAll(std::vector<uint64_t>* out);

 private:
  Status Refill();

  BufferReader reader_{Slice()};
  int bit_width_ = 0;
  size_t value_count_ = 0;
  size_t position_ = 0;
  // Current run state.
  bool in_rle_run_ = false;
  uint64_t rle_value_ = 0;
  size_t run_remaining_ = 0;  // values left in current run (either kind)
  std::vector<uint64_t> unpacked_;
  size_t unpacked_pos_ = 0;
};

}  // namespace lsmcol

#endif  // LSMCOL_ENCODING_RLE_H_
