#include "src/encoding/rle.h"

#include "src/encoding/bitpack.h"

namespace lsmcol {

RleEncoder::RleEncoder(int bit_width) : bit_width_(bit_width) {
  LSMCOL_CHECK(bit_width >= 0 && bit_width <= 32);
}

void RleEncoder::Add(uint64_t value) {
  ++value_count_;
  if (run_length_ == 0) {
    run_value_ = value;
    run_length_ = 1;
    return;
  }
  if (value == run_value_) {
    ++run_length_;
    return;
  }
  EmitRun();
  run_value_ = value;
  run_length_ = 1;
}

void RleEncoder::EmitRun() {
  if (run_length_ == 0) return;
  if (run_length_ >= kMinRleRun) {
    // Mid-stream bit-packed runs may only contain complete groups of 8
    // (padding would inject phantom values). Complete the open group by
    // borrowing leading values from this run; kMinRleRun > 7 guarantees
    // at least kMinRleRun - 7 values remain for the RLE run.
    while (buffered_.size() % 8 != 0) {
      buffered_.push_back(run_value_);
      --run_length_;
    }
    FlushBufferedAsBitPacked();
    FlushRle();
  } else {
    for (size_t i = 0; i < run_length_; ++i) buffered_.push_back(run_value_);
    run_length_ = 0;
  }
}

void RleEncoder::AddRun(uint64_t value, size_t count) {
  if (count == 0) return;
  if (run_length_ > 0 && value == run_value_) {
    // Extends the open candidate run; stays O(1) regardless of count.
    run_length_ += count;
    value_count_ += count;
    return;
  }
  if (count < kMinRleRun) {
    for (size_t i = 0; i < count; ++i) Add(value);
    return;
  }
  // Long run of a new value: retire the previous candidate and install the
  // whole run as the new one in a single step (the run-level merge feeds
  // def streams through here, so this path must not be per-value).
  EmitRun();
  run_value_ = value;
  run_length_ = count;
  value_count_ += count;
}

void RleEncoder::FlushRle() {
  if (run_length_ == 0) return;
  body_.AppendVarint64(static_cast<uint64_t>(run_length_) << 1);
  const int value_bytes = (bit_width_ + 7) / 8;
  uint64_t v = run_value_;
  for (int i = 0; i < value_bytes; ++i) {
    body_.AppendByte(static_cast<uint8_t>(v & 0xFF));
    v >>= 8;
  }
  run_length_ = 0;
}

void RleEncoder::FlushBufferedAsBitPacked() {
  if (buffered_.empty()) return;
  const size_t groups = (buffered_.size() + 7) / 8;
  buffered_.resize(groups * 8, 0);  // zero-pad the trailing group
  body_.AppendVarint64((static_cast<uint64_t>(groups) << 1) | 1);
  BitPack(buffered_.data(), buffered_.size(), bit_width_, &body_);
  buffered_.clear();
}

void RleEncoder::FinishInto(Buffer* out) {
  EmitRun();
  // Zero-padding the trailing group is safe only here: the decoder's value
  // count stops it before the padding.
  FlushBufferedAsBitPacked();
  out->AppendVarint64(value_count_);
  out->Append(body_.slice());
}

void RleEncoder::Clear() {
  value_count_ = 0;
  run_value_ = 0;
  run_length_ = 0;
  buffered_.clear();
  body_.clear();
}

Status RleDecoder::Init(Slice input, int bit_width) {
  reader_ = BufferReader(input);
  bit_width_ = bit_width;
  position_ = 0;
  in_rle_run_ = false;
  run_remaining_ = 0;
  unpacked_.clear();
  unpacked_pos_ = 0;
  uint64_t count = 0;
  LSMCOL_RETURN_NOT_OK(reader_.ReadVarint64(&count));
  value_count_ = count;
  return Status::OK();
}

Status RleDecoder::Refill() {
  uint64_t header = 0;
  LSMCOL_RETURN_NOT_OK(reader_.ReadVarint64(&header));
  if ((header & 1) == 0) {
    in_rle_run_ = true;
    run_remaining_ = header >> 1;
    if (run_remaining_ == 0) return Status::Corruption("empty RLE run");
    const int value_bytes = (bit_width_ + 7) / 8;
    uint64_t v = 0;
    for (int i = 0; i < value_bytes; ++i) {
      uint8_t b = 0;
      LSMCOL_RETURN_NOT_OK(reader_.ReadByte(&b));
      v |= static_cast<uint64_t>(b) << (8 * i);
    }
    rle_value_ = v;
  } else {
    in_rle_run_ = false;
    const size_t groups = header >> 1;
    if (groups == 0) return Status::Corruption("empty bit-packed run");
    unpacked_.resize(groups * 8);
    LSMCOL_RETURN_NOT_OK(
        BitUnpack(&reader_, unpacked_.size(), bit_width_, unpacked_.data()));
    unpacked_pos_ = 0;
    run_remaining_ = unpacked_.size();
  }
  return Status::OK();
}

Status RleDecoder::Next(uint64_t* out) {
  if (position_ >= value_count_) {
    return Status::OutOfRange("RLE decoder exhausted");
  }
  if (run_remaining_ == 0) LSMCOL_RETURN_NOT_OK(Refill());
  if (in_rle_run_) {
    *out = rle_value_;
  } else {
    *out = unpacked_[unpacked_pos_++];
  }
  --run_remaining_;
  ++position_;
  return Status::OK();
}

Status RleDecoder::Skip(size_t n) {
  if (n > remaining()) return Status::OutOfRange("RLE skip past end");
  while (n > 0) {
    if (run_remaining_ == 0) LSMCOL_RETURN_NOT_OK(Refill());
    size_t take = n < run_remaining_ ? n : run_remaining_;
    // The trailing bit-packed group may be padded past value_count_;
    // position_ accounting keeps us from reading the padding.
    if (!in_rle_run_) unpacked_pos_ += take;
    run_remaining_ -= take;
    position_ += take;
    n -= take;
  }
  return Status::OK();
}

Status RleDecoder::DecodeBatch(size_t n, uint64_t* out, size_t* decoded) {
  if (n > remaining()) n = remaining();
  size_t produced = 0;
  while (produced < n) {
    if (run_remaining_ == 0) LSMCOL_RETURN_NOT_OK(Refill());
    size_t take = n - produced;
    if (take > run_remaining_) take = run_remaining_;
    if (in_rle_run_) {
      for (size_t i = 0; i < take; ++i) out[produced + i] = rle_value_;
    } else {
      const uint64_t* src = unpacked_.data() + unpacked_pos_;
      for (size_t i = 0; i < take; ++i) out[produced + i] = src[i];
      unpacked_pos_ += take;
    }
    run_remaining_ -= take;
    position_ += take;
    produced += take;
  }
  if (decoded != nullptr) *decoded = produced;
  return Status::OK();
}

Status RleDecoder::DecodeRuns(size_t max_values, std::vector<RleRun>* out) {
  if (max_values > remaining()) max_values = remaining();
  size_t produced = 0;
  while (produced < max_values) {
    if (run_remaining_ == 0) LSMCOL_RETURN_NOT_OK(Refill());
    size_t take = max_values - produced;
    if (take > run_remaining_) take = run_remaining_;
    if (in_rle_run_) {
      if (!out->empty() && out->back().value == rle_value_) {
        out->back().count += take;
      } else {
        out->push_back({rle_value_, take});
      }
      run_remaining_ -= take;
      position_ += take;
      produced += take;
    } else {
      // Bit-packed: coalesce adjacent equal values as we walk.
      for (size_t i = 0; i < take; ++i) {
        const uint64_t v = unpacked_[unpacked_pos_++];
        if (!out->empty() && out->back().value == v) {
          ++out->back().count;
        } else {
          out->push_back({v, 1});
        }
      }
      run_remaining_ -= take;
      position_ += take;
      produced += take;
    }
  }
  return Status::OK();
}

Status RleDecoder::SkipAndCount(size_t n, uint64_t target, size_t* count) {
  if (n > remaining()) return Status::OutOfRange("RLE skip past end");
  size_t matched = 0;
  while (n > 0) {
    if (run_remaining_ == 0) LSMCOL_RETURN_NOT_OK(Refill());
    size_t take = n < run_remaining_ ? n : run_remaining_;
    if (in_rle_run_) {
      if (rle_value_ == target) matched += take;
    } else {
      const uint64_t* src = unpacked_.data() + unpacked_pos_;
      for (size_t i = 0; i < take; ++i) matched += (src[i] == target) ? 1 : 0;
      unpacked_pos_ += take;
    }
    run_remaining_ -= take;
    position_ += take;
    n -= take;
  }
  *count = matched;
  return Status::OK();
}

Status RleDecoder::DecodeAll(std::vector<uint64_t>* out) {
  out->reserve(out->size() + remaining());
  while (remaining() > 0) {
    uint64_t v;
    LSMCOL_RETURN_NOT_OK(Next(&v));
    out->push_back(v);
  }
  return Status::OK();
}

}  // namespace lsmcol
