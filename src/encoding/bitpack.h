// Bit-packing primitives: store unsigned integers using a fixed number of
// bits each, little-endian within the byte stream. Shared by the RLE/bit-
// packed hybrid codec and the delta binary-packed codec.

#ifndef LSMCOL_ENCODING_BITPACK_H_
#define LSMCOL_ENCODING_BITPACK_H_

#include <cstdint>

#include "src/common/buffer.h"
#include "src/common/logging.h"

namespace lsmcol {

/// Number of bits needed to represent v (0 for v == 0).
inline int BitWidth(uint64_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

/// Pack `count` values of `bit_width` bits each into out (appended). The
/// total appended size is ceil(count * bit_width / 8) bytes; the final
/// partial byte is zero-padded.
void BitPack(const uint64_t* values, size_t count, int bit_width, Buffer* out);

/// Unpack `count` values of `bit_width` bits each from `in`. Returns
/// Corruption if `in` is too short. `in` is advanced past the packed bytes.
Status BitUnpack(BufferReader* in, size_t count, int bit_width,
                 uint64_t* values);

/// Bytes occupied by `count` packed values.
inline size_t BitPackedSize(size_t count, int bit_width) {
  return (count * static_cast<size_t>(bit_width) + 7) / 8;
}

}  // namespace lsmcol

#endif  // LSMCOL_ENCODING_BITPACK_H_
