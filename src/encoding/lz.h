// Byte-oriented LZ77 compressor used for page-level compression — the
// repo's substitute for Snappy (see DESIGN.md §1). Greedy hash-chain
// matcher over a 64 KiB window; format:
//   varint uncompressed_length
//   tokens:
//     tag & 1 == 0: literal run, length = tag >> 1 (1..), bytes follow
//                   (long runs use repeated tokens)
//     tag & 1 == 1: match, length = (tag >> 1) + kMinMatch, then a varint
//                   back-offset (1 .. 65535)
// Like Snappy, it compresses row pages (repeated field names, JSON syntax)
// well, and already-encoded column pages poorly — which is exactly the
// behaviour the paper's storage results depend on.

#ifndef LSMCOL_ENCODING_LZ_H_
#define LSMCOL_ENCODING_LZ_H_

#include "src/common/buffer.h"
#include "src/common/status.h"

namespace lsmcol {

/// Compress input, appending to out. Always succeeds; incompressible data
/// grows by at most ~1/127 plus the header.
void LzCompress(Slice input, Buffer* out);

/// Decompress a stream produced by LzCompress, appending to out.
Status LzDecompress(Slice input, Buffer* out);

/// Upper bound of LzCompress output size for `n` input bytes.
size_t LzMaxCompressedSize(size_t n);

}  // namespace lsmcol

#endif  // LSMCOL_ENCODING_LZ_H_
