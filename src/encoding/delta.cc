#include "src/encoding/delta.h"

#include "src/encoding/bitpack.h"

namespace lsmcol {

void DeltaInt64Encoder::Add(int64_t value) {
  if (value_count_ == 0) {
    first_value_ = value;
  } else {
    // Deltas use wrap-around (unsigned) arithmetic so INT64 extremes are
    // well-defined.
    pending_deltas_.push_back(static_cast<int64_t>(
        static_cast<uint64_t>(value) - static_cast<uint64_t>(previous_)));
    if (pending_deltas_.size() == kBlockSize) FlushBlock();
  }
  previous_ = value;
  ++value_count_;
}

void DeltaInt64Encoder::AddBatch(const int64_t* values, size_t n) {
  size_t i = 0;
  if (n == 0) return;
  if (value_count_ == 0) {
    first_value_ = values[0];
    previous_ = values[0];
    ++value_count_;
    i = 1;
  }
  while (i < n) {
    size_t take = kBlockSize - pending_deltas_.size();
    if (take > n - i) take = n - i;
    for (size_t j = 0; j < take; ++j) {
      const int64_t v = values[i + j];
      pending_deltas_.push_back(static_cast<int64_t>(
          static_cast<uint64_t>(v) - static_cast<uint64_t>(previous_)));
      previous_ = v;
    }
    i += take;
    value_count_ += take;
    if (pending_deltas_.size() == kBlockSize) FlushBlock();
  }
}

void DeltaInt64Encoder::FlushBlock() {
  if (pending_deltas_.empty()) return;
  int64_t min_delta = pending_deltas_[0];
  for (int64_t d : pending_deltas_) {
    if (d < min_delta) min_delta = d;
  }
  body_.AppendSignedVarint64(min_delta);
  std::vector<uint64_t> adjusted(pending_deltas_.size());
  uint64_t max_adjusted = 0;
  for (size_t i = 0; i < pending_deltas_.size(); ++i) {
    adjusted[i] = static_cast<uint64_t>(pending_deltas_[i]) -
                  static_cast<uint64_t>(min_delta);
    if (adjusted[i] > max_adjusted) max_adjusted = adjusted[i];
  }
  const int width = BitWidth(max_adjusted);
  body_.AppendByte(static_cast<uint8_t>(width));
  BitPack(adjusted.data(), adjusted.size(), width, &body_);
  pending_deltas_.clear();
}

void DeltaInt64Encoder::FinishInto(Buffer* out) {
  FlushBlock();
  out->AppendVarint64(value_count_);
  if (value_count_ > 0) {
    out->AppendSignedVarint64(first_value_);
    out->Append(body_.slice());
  }
}

void DeltaInt64Encoder::Clear() {
  value_count_ = 0;
  first_value_ = 0;
  previous_ = 0;
  pending_deltas_.clear();
  body_.clear();
}

Status DeltaInt64Decoder::Init(Slice input) {
  reader_ = BufferReader(input);
  position_ = 0;
  block_.clear();
  block_pos_ = 0;
  uint64_t count = 0;
  LSMCOL_RETURN_NOT_OK(reader_.ReadVarint64(&count));
  value_count_ = count;
  first_pending_ = value_count_ > 0;
  if (first_pending_) {
    LSMCOL_RETURN_NOT_OK(reader_.ReadSignedVarint64(&first_value_));
  }
  return Status::OK();
}

Status DeltaInt64Decoder::LoadBlock() {
  int64_t min_delta = 0;
  LSMCOL_RETURN_NOT_OK(reader_.ReadSignedVarint64(&min_delta));
  uint8_t width = 0;
  LSMCOL_RETURN_NOT_OK(reader_.ReadByte(&width));
  if (width > 64) return Status::Corruption("delta block bit width > 64");
  // LoadBlock runs only when the previous block is exhausted, so the
  // remaining deltas are exactly the remaining values. The final block is
  // short.
  size_t deltas_remaining = value_count_ - position_;
  size_t n = deltas_remaining < DeltaInt64Encoder::kBlockSize
                 ? deltas_remaining
                 : DeltaInt64Encoder::kBlockSize;
  std::vector<uint64_t> raw(n);
  LSMCOL_RETURN_NOT_OK(BitUnpack(&reader_, n, width, raw.data()));
  block_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    block_[i] = static_cast<int64_t>(raw[i] + static_cast<uint64_t>(min_delta));
  }
  block_pos_ = 0;
  return Status::OK();
}

Status DeltaInt64Decoder::Next(int64_t* out) {
  if (position_ >= value_count_) {
    return Status::OutOfRange("delta decoder exhausted");
  }
  if (first_pending_) {
    first_pending_ = false;
    previous_ = first_value_;
    *out = first_value_;
    ++position_;
    return Status::OK();
  }
  if (block_pos_ >= block_.size()) LSMCOL_RETURN_NOT_OK(LoadBlock());
  previous_ = static_cast<int64_t>(static_cast<uint64_t>(previous_) +
                                   static_cast<uint64_t>(block_[block_pos_]));
  ++block_pos_;
  ++position_;
  *out = previous_;
  return Status::OK();
}

Status DeltaInt64Decoder::Skip(size_t n) {
  // Deltas form a prefix-sum chain, so skipping still decodes each block,
  // but the chain only needs the running sum — fold whole blocks into
  // previous_ without surfacing values.
  if (n > remaining()) return Status::OutOfRange("delta skip past end");
  if (n > 0 && first_pending_) {
    first_pending_ = false;
    previous_ = first_value_;
    ++position_;
    --n;
  }
  uint64_t acc = static_cast<uint64_t>(previous_);
  while (n > 0) {
    if (block_pos_ >= block_.size()) {
      previous_ = static_cast<int64_t>(acc);
      LSMCOL_RETURN_NOT_OK(LoadBlock());
    }
    size_t take = block_.size() - block_pos_;
    if (take > n) take = n;
    const int64_t* deltas = block_.data() + block_pos_;
    for (size_t i = 0; i < take; ++i) acc += static_cast<uint64_t>(deltas[i]);
    block_pos_ += take;
    position_ += take;
    n -= take;
  }
  previous_ = static_cast<int64_t>(acc);
  return Status::OK();
}

Status DeltaInt64Decoder::DecodeBatch(size_t n, int64_t* out, size_t* decoded) {
  if (n > remaining()) n = remaining();
  size_t produced = 0;
  if (n > 0 && first_pending_) {
    first_pending_ = false;
    previous_ = first_value_;
    out[produced++] = first_value_;
    ++position_;
  }
  uint64_t acc = static_cast<uint64_t>(previous_);
  while (produced < n) {
    if (block_pos_ >= block_.size()) {
      previous_ = static_cast<int64_t>(acc);
      LSMCOL_RETURN_NOT_OK(LoadBlock());
    }
    size_t take = block_.size() - block_pos_;
    if (take > n - produced) take = n - produced;
    const int64_t* deltas = block_.data() + block_pos_;
    for (size_t i = 0; i < take; ++i) {
      acc += static_cast<uint64_t>(deltas[i]);
      out[produced + i] = static_cast<int64_t>(acc);
    }
    block_pos_ += take;
    position_ += take;
    produced += take;
  }
  previous_ = static_cast<int64_t>(acc);
  if (decoded != nullptr) *decoded = produced;
  return Status::OK();
}

Status DeltaInt64Decoder::DecodeAll(std::vector<int64_t>* out) {
  out->reserve(out->size() + remaining());
  while (remaining() > 0) {
    int64_t v;
    LSMCOL_RETURN_NOT_OK(Next(&v));
    out->push_back(v);
  }
  return Status::OK();
}

}  // namespace lsmcol
