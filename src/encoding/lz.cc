#include "src/encoding/lz.h"

#include <cstring>
#include <vector>

namespace lsmcol {
namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatchToken = 127;  // max (tag >> 1) for a match token
constexpr size_t kMaxLiteralRun = 127;
constexpr size_t kWindow = 65535;
constexpr size_t kHashBits = 15;

inline uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void EmitLiterals(const uint8_t* base, size_t start, size_t end, Buffer* out) {
  while (start < end) {
    size_t run = end - start;
    if (run > kMaxLiteralRun) run = kMaxLiteralRun;
    out->AppendByte(static_cast<uint8_t>(run << 1));
    out->Append(base + start, run);
    start += run;
  }
}

}  // namespace

size_t LzMaxCompressedSize(size_t n) {
  return n + n / kMaxLiteralRun + 16;
}

void LzCompress(Slice input, Buffer* out) {
  const uint8_t* p = input.udata();
  const size_t n = input.size();
  out->AppendVarint64(n);
  if (n < kMinMatch + 4) {
    EmitLiterals(p, 0, n, out);
    return;
  }
  std::vector<uint32_t> table(1u << kHashBits, UINT32_MAX);
  size_t literal_start = 0;
  size_t i = 0;
  const size_t limit = n - kMinMatch;  // last position where a match can start
  while (i <= limit) {
    const uint32_t h = Hash4(p + i);
    const uint32_t candidate = table[h];
    table[h] = static_cast<uint32_t>(i);
    if (candidate != UINT32_MAX && i - candidate <= kWindow &&
        std::memcmp(p + candidate, p + i, kMinMatch) == 0) {
      // Extend the match.
      size_t match_len = kMinMatch;
      const size_t max_len = n - i;
      while (match_len < max_len &&
             p[candidate + match_len] == p[i + match_len]) {
        ++match_len;
      }
      EmitLiterals(p, literal_start, i, out);
      size_t offset = i - candidate;
      size_t remaining_match = match_len;
      size_t src = i;
      while (remaining_match >= kMinMatch) {
        size_t chunk = remaining_match - kMinMatch;
        if (chunk > kMaxMatchToken) chunk = kMaxMatchToken;
        out->AppendByte(static_cast<uint8_t>((chunk << 1) | 1));
        out->AppendVarint64(offset);
        remaining_match -= chunk + kMinMatch;
      }
      // A sub-kMinMatch tail is carried forward as literals.
      i = src + match_len - remaining_match;
      literal_start = i;
      if (remaining_match > 0) {
        // Tail shorter than a match token: fold into next literal run.
        literal_start = i;
      }
      // Seed the hash table inside the match region sparsely.
      for (size_t j = src + 1; j + kMinMatch <= i && j < src + 16; ++j) {
        table[Hash4(p + j)] = static_cast<uint32_t>(j);
      }
    } else {
      ++i;
    }
  }
  EmitLiterals(p, literal_start, n, out);
}

Status LzDecompress(Slice input, Buffer* out) {
  BufferReader reader(input);
  uint64_t uncompressed_len = 0;
  LSMCOL_RETURN_NOT_OK(reader.ReadVarint64(&uncompressed_len));
  const size_t start_size = out->size();
  out->reserve(start_size + uncompressed_len);
  while (out->size() - start_size < uncompressed_len) {
    uint8_t tag = 0;
    LSMCOL_RETURN_NOT_OK(reader.ReadByte(&tag));
    if ((tag & 1) == 0) {
      const size_t run = tag >> 1;
      if (run == 0) return Status::Corruption("zero-length literal run");
      Slice bytes;
      LSMCOL_RETURN_NOT_OK(reader.ReadBytes(run, &bytes));
      out->Append(bytes);
    } else {
      const size_t len = (tag >> 1) + kMinMatch;
      uint64_t offset = 0;
      LSMCOL_RETURN_NOT_OK(reader.ReadVarint64(&offset));
      const size_t produced = out->size() - start_size;
      if (offset == 0 || offset > produced) {
        return Status::Corruption("match offset out of range");
      }
      // Byte-by-byte copy: overlapping matches (offset < len) replicate.
      for (size_t j = 0; j < len; ++j) {
        char c = out->data()[out->size() - offset];
        out->AppendByte(static_cast<uint8_t>(c));
      }
    }
  }
  if (out->size() - start_size != uncompressed_len) {
    return Status::Corruption("decompressed size mismatch");
  }
  return Status::OK();
}

}  // namespace lsmcol
