#include "src/encoding/bitpack.h"

namespace lsmcol {

void BitPack(const uint64_t* values, size_t count, int bit_width,
             Buffer* out) {
  LSMCOL_DCHECK(bit_width >= 0 && bit_width <= 64);
  if (bit_width == 0 || count == 0) return;
  uint64_t acc = 0;  // bits accumulated, LSB-first
  int acc_bits = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = values[i];
    if (bit_width < 64) {
      LSMCOL_DCHECK(v < (1ULL << bit_width));
    }
    int remaining = bit_width;
    while (remaining > 0) {
      int take = 64 - acc_bits;
      if (take > remaining) take = remaining;
      acc |= (v & ((take == 64) ? ~0ULL : ((1ULL << take) - 1))) << acc_bits;
      v >>= (take == 64) ? 0 : take;
      if (take == 64) v = 0;
      acc_bits += take;
      remaining -= take;
      if (acc_bits == 64) {
        out->AppendFixed64(acc);
        acc = 0;
        acc_bits = 0;
      }
    }
  }
  // Flush the partial accumulator byte by byte.
  while (acc_bits > 0) {
    out->AppendByte(static_cast<uint8_t>(acc & 0xFF));
    acc >>= 8;
    acc_bits -= 8;
  }
}

Status BitUnpack(BufferReader* in, size_t count, int bit_width,
                 uint64_t* values) {
  LSMCOL_DCHECK(bit_width >= 0 && bit_width <= 64);
  if (bit_width == 0) {
    for (size_t i = 0; i < count; ++i) values[i] = 0;
    return Status::OK();
  }
  const size_t nbytes = BitPackedSize(count, bit_width);
  Slice bytes;
  LSMCOL_RETURN_NOT_OK(in->ReadBytes(nbytes, &bytes));
  const uint8_t* p = bytes.udata();
  // Positional extraction: value i lives at bit offset i * bit_width.
  // Byte-at-a-time assembly is correct for every width up to 64.
  for (size_t i = 0; i < count; ++i) {
    const size_t base = i * static_cast<size_t>(bit_width);
    uint64_t v = 0;
    int got = 0;
    while (got < bit_width) {
      const size_t pos = base + static_cast<size_t>(got);
      const size_t byte_idx = pos >> 3;
      const int bit_in_byte = static_cast<int>(pos & 7);
      int take = 8 - bit_in_byte;
      if (take > bit_width - got) take = bit_width - got;
      LSMCOL_DCHECK(byte_idx < nbytes);
      const uint64_t chunk =
          (static_cast<uint64_t>(p[byte_idx]) >> bit_in_byte) &
          ((1ULL << take) - 1);
      v |= chunk << got;
      got += take;
    }
    values[i] = v;
  }
  return Status::OK();
}

}  // namespace lsmcol
