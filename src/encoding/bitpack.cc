#include "src/encoding/bitpack.h"

namespace lsmcol {

void BitPack(const uint64_t* values, size_t count, int bit_width,
             Buffer* out) {
  LSMCOL_DCHECK(bit_width >= 0 && bit_width <= 64);
  if (bit_width == 0 || count == 0) return;
  uint64_t acc = 0;  // bits accumulated, LSB-first
  int acc_bits = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = values[i];
    if (bit_width < 64) {
      LSMCOL_DCHECK(v < (1ULL << bit_width));
    }
    int remaining = bit_width;
    while (remaining > 0) {
      int take = 64 - acc_bits;
      if (take > remaining) take = remaining;
      acc |= (v & ((take == 64) ? ~0ULL : ((1ULL << take) - 1))) << acc_bits;
      v >>= (take == 64) ? 0 : take;
      if (take == 64) v = 0;
      acc_bits += take;
      remaining -= take;
      if (acc_bits == 64) {
        out->AppendFixed64(acc);
        acc = 0;
        acc_bits = 0;
      }
    }
  }
  // Flush the partial accumulator byte by byte.
  while (acc_bits > 0) {
    out->AppendByte(static_cast<uint8_t>(acc & 0xFF));
    acc >>= 8;
    acc_bits -= 8;
  }
}

Status BitUnpack(BufferReader* in, size_t count, int bit_width,
                 uint64_t* values) {
  LSMCOL_DCHECK(bit_width >= 0 && bit_width <= 64);
  if (bit_width == 0) {
    for (size_t i = 0; i < count; ++i) values[i] = 0;
    return Status::OK();
  }
  const size_t nbytes = BitPackedSize(count, bit_width);
  Slice bytes;
  LSMCOL_RETURN_NOT_OK(in->ReadBytes(nbytes, &bytes));
  const uint8_t* p = bytes.udata();
  // Fast path: value i lives at bit offset i * bit_width; while a full
  // 8-byte window (plus a spill byte for widths that straddle it) is in
  // bounds, one unaligned word load + shift replaces the byte loop.
  const uint64_t mask =
      bit_width == 64 ? ~0ULL : ((1ULL << bit_width) - 1);
  size_t i = 0;
  for (; i < count; ++i) {
    const size_t base = i * static_cast<size_t>(bit_width);
    const size_t byte_idx = base >> 3;
    if (byte_idx + 9 > nbytes) break;  // tail: bytewise below
    uint64_t w;
    std::memcpy(&w, p + byte_idx, 8);
    const int shift = static_cast<int>(base & 7);
    uint64_t v = w >> shift;
    if (shift != 0 && shift + bit_width > 64) {
      v |= static_cast<uint64_t>(p[byte_idx + 8]) << (64 - shift);
    }
    values[i] = v & mask;
  }
  // Positional byte-at-a-time assembly for the trailing values (and for
  // inputs too short for the word loop); correct for every width <= 64.
  for (; i < count; ++i) {
    const size_t base = i * static_cast<size_t>(bit_width);
    uint64_t v = 0;
    int got = 0;
    while (got < bit_width) {
      const size_t pos = base + static_cast<size_t>(got);
      const size_t byte_idx = pos >> 3;
      const int bit_in_byte = static_cast<int>(pos & 7);
      int take = 8 - bit_in_byte;
      if (take > bit_width - got) take = bit_width - got;
      LSMCOL_DCHECK(byte_idx < nbytes);
      const uint64_t chunk =
          (static_cast<uint64_t>(p[byte_idx]) >> bit_in_byte) &
          ((1ULL << take) - 1);
      v |= chunk << got;
      got += take;
    }
    values[i] = v;
  }
  return Status::OK();
}

}  // namespace lsmcol
