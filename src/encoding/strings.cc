#include "src/encoding/strings.h"

namespace lsmcol {

Status DeltaLengthStringDecoder::Init(Slice input) {
  lengths_.clear();
  position_ = 0;
  byte_pos_ = 0;
  DeltaInt64Decoder length_decoder;
  LSMCOL_RETURN_NOT_OK(length_decoder.Init(input));
  LSMCOL_RETURN_NOT_OK(length_decoder.DecodeAll(&lengths_));
  value_count_ = lengths_.size();
  bytes_ = length_decoder.rest();
  size_t total = 0;
  for (int64_t len : lengths_) {
    if (len < 0) return Status::Corruption("negative string length");
    total += static_cast<size_t>(len);
  }
  if (total > bytes_.size()) {
    return Status::Corruption("string payload shorter than lengths imply");
  }
  return Status::OK();
}

Status DeltaLengthStringDecoder::Next(Slice* out) {
  if (position_ >= value_count_) {
    return Status::OutOfRange("string decoder exhausted");
  }
  size_t len = static_cast<size_t>(lengths_[position_]);
  *out = bytes_.SubSlice(byte_pos_, len);
  byte_pos_ += len;
  ++position_;
  return Status::OK();
}

Status DeltaLengthStringDecoder::Skip(size_t n) {
  if (n > remaining()) return Status::OutOfRange("string skip past end");
  for (size_t i = 0; i < n; ++i) {
    byte_pos_ += static_cast<size_t>(lengths_[position_++]);
  }
  return Status::OK();
}

Status DeltaLengthStringDecoder::NextBatchRaw(size_t n, const int64_t** lengths,
                                              Slice* payload) {
  if (n > remaining()) return Status::OutOfRange("string batch past end");
  *lengths = lengths_.data() + position_;
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<size_t>(lengths_[position_ + i]);
  }
  *payload = bytes_.SubSlice(byte_pos_, total);
  byte_pos_ += total;
  position_ += n;
  return Status::OK();
}

Status DeltaLengthStringDecoder::NextBatch(size_t n, Slice* out,
                                           size_t* decoded) {
  if (n > remaining()) n = remaining();
  const int64_t* lengths = nullptr;
  Slice payload;
  LSMCOL_RETURN_NOT_OK(NextBatchRaw(n, &lengths, &payload));
  size_t offset = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t len = static_cast<size_t>(lengths[i]);
    out[i] = payload.SubSlice(offset, len);
    offset += len;
  }
  if (decoded != nullptr) *decoded = n;
  return Status::OK();
}

void DeltaStringEncoder::Add(Slice value) {
  size_t prefix = 0;
  const size_t max_prefix =
      previous_.size() < value.size() ? previous_.size() : value.size();
  while (prefix < max_prefix && previous_[prefix] == value[prefix]) ++prefix;
  prefix_lengths_.Add(static_cast<int64_t>(prefix));
  suffix_lengths_.Add(static_cast<int64_t>(value.size() - prefix));
  suffixes_.Append(value.data() + prefix, value.size() - prefix);
  previous_.assign(value.data(), value.size());
}

void DeltaStringEncoder::FinishInto(Buffer* out) {
  prefix_lengths_.FinishInto(out);
  suffix_lengths_.FinishInto(out);
  out->Append(suffixes_.slice());
}

void DeltaStringEncoder::Clear() {
  prefix_lengths_.Clear();
  suffix_lengths_.Clear();
  suffixes_.clear();
  previous_.clear();
}

Status DeltaStringDecoder::Init(Slice input) {
  prefix_lengths_.clear();
  suffix_lengths_.clear();
  position_ = 0;
  suffix_pos_ = 0;
  current_.clear();
  DeltaInt64Decoder prefix_decoder;
  LSMCOL_RETURN_NOT_OK(prefix_decoder.Init(input));
  LSMCOL_RETURN_NOT_OK(prefix_decoder.DecodeAll(&prefix_lengths_));
  DeltaInt64Decoder suffix_decoder;
  LSMCOL_RETURN_NOT_OK(suffix_decoder.Init(prefix_decoder.rest()));
  LSMCOL_RETURN_NOT_OK(suffix_decoder.DecodeAll(&suffix_lengths_));
  suffixes_ = suffix_decoder.rest();
  if (prefix_lengths_.size() != suffix_lengths_.size()) {
    return Status::Corruption("prefix/suffix count mismatch");
  }
  value_count_ = prefix_lengths_.size();
  return Status::OK();
}

Status DeltaStringDecoder::Next(Slice* out) {
  if (position_ >= value_count_) {
    return Status::OutOfRange("delta string decoder exhausted");
  }
  const int64_t prefix = prefix_lengths_[position_];
  const int64_t suffix = suffix_lengths_[position_];
  if (prefix < 0 || suffix < 0 ||
      static_cast<size_t>(prefix) > current_.size() ||
      suffix_pos_ + static_cast<size_t>(suffix) > suffixes_.size()) {
    return Status::Corruption("invalid front-coding lengths");
  }
  current_.resize(static_cast<size_t>(prefix));
  current_.append(suffixes_.data() + suffix_pos_, static_cast<size_t>(suffix));
  suffix_pos_ += static_cast<size_t>(suffix);
  ++position_;
  *out = Slice(current_);
  return Status::OK();
}

Status DeltaStringDecoder::Skip(size_t n) {
  // Front coding chains values, so Skip must still reconstruct each one.
  Slice scratch;
  for (size_t i = 0; i < n; ++i) {
    LSMCOL_RETURN_NOT_OK(Next(&scratch));
  }
  return Status::OK();
}

}  // namespace lsmcol
