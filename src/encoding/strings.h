// String codecs:
//  * DELTA_LENGTH_BYTE_ARRAY — all lengths delta-binary-packed up front,
//    followed by the concatenated bytes. The default for string columns.
//  * DELTA_BYTE_ARRAY ("delta strings") — incremental front coding: per
//    value, the prefix length shared with the previous value plus the
//    suffix. Wins on sorted or highly repetitive strings; offered for the
//    encoding ablation and for sorted key columns.

#ifndef LSMCOL_ENCODING_STRINGS_H_
#define LSMCOL_ENCODING_STRINGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/encoding/delta.h"

namespace lsmcol {

/// DELTA_LENGTH_BYTE_ARRAY encoder.
class DeltaLengthStringEncoder {
 public:
  void Add(Slice value) {
    lengths_.Add(static_cast<int64_t>(value.size()));
    bytes_.Append(value);
  }
  /// Append n values at once. When the slices are back-to-back views over
  /// one buffer (as DeltaLengthStringDecoder::NextBatch returns them) the
  /// payload moves with a single copy instead of one per value.
  void AddBatch(const Slice* values, size_t n) {
    if (n == 0) return;
    bool contiguous = true;
    size_t total = values[0].size();
    for (size_t i = 1; i < n; ++i) {
      contiguous = contiguous &&
                   values[i - 1].data() + values[i - 1].size() ==
                       values[i].data();
      total += values[i].size();
    }
    for (size_t i = 0; i < n; ++i) {
      lengths_.Add(static_cast<int64_t>(values[i].size()));
    }
    if (contiguous) {
      bytes_.Append(Slice(values[0].data(), total));
    } else {
      for (size_t i = 0; i < n; ++i) bytes_.Append(values[i]);
    }
  }
  size_t value_count() const { return lengths_.value_count(); }
  /// Approximate encoded size so far (for page-budget decisions).
  size_t EstimatedSize() const { return bytes_.size() + value_count() * 2; }

  void FinishInto(Buffer* out) {
    lengths_.FinishInto(out);
    out->Append(bytes_.slice());
  }
  void Clear() {
    lengths_.Clear();
    bytes_.clear();
  }

 private:
  DeltaInt64Encoder lengths_;
  Buffer bytes_;
};

/// DELTA_LENGTH_BYTE_ARRAY decoder; values are returned as Slices into the
/// input buffer (zero-copy), so the input must outlive the decoder.
///
/// Batch-API invariant: the batched accessors consume exactly
/// min(n, remaining()) values and interleave freely with Next/Skip.
class DeltaLengthStringDecoder {
 public:
  Status Init(Slice input);

  size_t value_count() const { return value_count_; }
  size_t remaining() const { return value_count_ - position_; }

  Status Next(Slice* out);
  Status Skip(size_t n);

  /// Zero-copy batch: *lengths points at the next n entry lengths (valid
  /// until the decoder dies) and *payload covers exactly their
  /// concatenated bytes — one contiguous slice, no per-value splitting.
  /// Consumes the values; n must be <= remaining().
  Status NextBatchRaw(size_t n, const int64_t** lengths, Slice* payload);

  /// Decode exactly min(n, remaining()) values as Slices into out[0..];
  /// *decoded reports how many were written.
  Status NextBatch(size_t n, Slice* out, size_t* decoded);

 private:
  std::vector<int64_t> lengths_;
  Slice bytes_;
  size_t byte_pos_ = 0;
  size_t value_count_ = 0;
  size_t position_ = 0;
};

/// DELTA_BYTE_ARRAY (front-coded) encoder.
class DeltaStringEncoder {
 public:
  void Add(Slice value);
  size_t value_count() const { return prefix_lengths_.value_count(); }
  void FinishInto(Buffer* out);
  void Clear();

 private:
  DeltaInt64Encoder prefix_lengths_;
  DeltaInt64Encoder suffix_lengths_;
  Buffer suffixes_;
  std::string previous_;
};

/// DELTA_BYTE_ARRAY decoder. Values are materialized into an internal
/// string (front coding needs the previous value), returned by reference.
class DeltaStringDecoder {
 public:
  Status Init(Slice input);

  size_t value_count() const { return value_count_; }
  size_t remaining() const { return value_count_ - position_; }

  /// The returned Slice points into internal storage valid until the next
  /// Next/Skip call.
  Status Next(Slice* out);
  Status Skip(size_t n);

 private:
  std::vector<int64_t> prefix_lengths_;
  std::vector<int64_t> suffix_lengths_;
  Slice suffixes_;
  size_t suffix_pos_ = 0;
  std::string current_;
  size_t value_count_ = 0;
  size_t position_ = 0;
};

}  // namespace lsmcol

#endif  // LSMCOL_ENCODING_STRINGS_H_
