// The document data model: a dynamically typed Value tree equivalent to a
// JSON document. Objects preserve field insertion order (document stores do
// not sort fields), and any field may hold values of different types in
// different documents — the heterogeneity the paper's extended Dremel
// format is designed for.

#ifndef LSMCOL_JSON_VALUE_H_
#define LSMCOL_JSON_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/common/logging.h"

namespace lsmcol {

/// Runtime type tag of a Value.
enum class ValueType : uint8_t {
  kMissing = 0,  // absent field (distinct from explicit null)
  kNull,
  kBool,
  kInt64,
  kDouble,
  kString,
  kArray,
  kObject,
};

const char* ValueTypeName(ValueType t);

/// \brief A dynamically typed document value (the JSON data model).
///
/// Value is a tree: atomic leaves (null/bool/int64/double/string) and
/// nested arrays/objects. It is copyable (deep copy) and movable. The
/// kMissing type represents "no value" — e.g. the result of accessing an
/// absent field — and never appears inside a stored document.
class Value {
 public:
  using Member = std::pair<std::string, Value>;
  using Array = std::vector<Value>;
  using Object = std::vector<Member>;  // insertion-ordered

  Value() : type_(ValueType::kMissing) {}

  static Value Missing() { return Value(); }
  static Value Null() {
    Value v;
    v.type_ = ValueType::kNull;
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.type_ = ValueType::kBool;
    v.data_ = b;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.type_ = ValueType::kInt64;
    v.data_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = ValueType::kDouble;
    v.data_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = ValueType::kString;
    v.data_ = std::move(s);
    return v;
  }
  static Value MakeArray() {
    Value v;
    v.type_ = ValueType::kArray;
    v.data_ = Array{};
    return v;
  }
  static Value MakeObject() {
    Value v;
    v.type_ = ValueType::kObject;
    v.data_ = Object{};
    return v;
  }

  ValueType type() const { return type_; }
  bool is_missing() const { return type_ == ValueType::kMissing; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_bool() const { return type_ == ValueType::kBool; }
  bool is_int() const { return type_ == ValueType::kInt64; }
  bool is_double() const { return type_ == ValueType::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == ValueType::kString; }
  bool is_array() const { return type_ == ValueType::kArray; }
  bool is_object() const { return type_ == ValueType::kObject; }

  bool bool_value() const {
    LSMCOL_DCHECK(is_bool());
    return std::get<bool>(data_);
  }
  int64_t int_value() const {
    LSMCOL_DCHECK(is_int());
    return std::get<int64_t>(data_);
  }
  double double_value() const {
    LSMCOL_DCHECK(is_double());
    return std::get<double>(data_);
  }
  /// Numeric value as double regardless of int/double representation.
  double as_double() const {
    return is_int() ? static_cast<double>(int_value()) : double_value();
  }
  const std::string& string_value() const {
    LSMCOL_DCHECK(is_string());
    return std::get<std::string>(data_);
  }

  const Array& array() const {
    LSMCOL_DCHECK(is_array());
    return std::get<Array>(data_);
  }
  Array& mutable_array() {
    LSMCOL_DCHECK(is_array());
    return std::get<Array>(data_);
  }
  const Object& object() const {
    LSMCOL_DCHECK(is_object());
    return std::get<Object>(data_);
  }
  Object& mutable_object() {
    LSMCOL_DCHECK(is_object());
    return std::get<Object>(data_);
  }

  /// Append an element to an array value.
  void Push(Value v) { mutable_array().push_back(std::move(v)); }

  /// Add (or overwrite) a field on an object value.
  void Set(std::string key, Value v);

  /// Field access; returns Missing when absent or when this is not an
  /// object. Never throws.
  const Value& Get(std::string_view key) const;

  /// Structural deep equality. Int and double compare as distinct types.
  bool Equals(const Value& other) const;

  /// Number of fields/elements; 0 for atoms.
  size_t size() const {
    if (is_array()) return array().size();
    if (is_object()) return object().size();
    return 0;
  }

 private:
  ValueType type_;
  std::variant<std::monostate, bool, int64_t, double, std::string, Array,
               Object>
      data_;
};

/// The canonical Missing singleton (returned by reference from Get).
const Value& MissingValue();

/// Structural equality that ignores object field order (record assembly
/// normalizes fields to schema order; see RecordAssembler).
bool ValueEquivalent(const Value& a, const Value& b);

/// SQL++-style path walk starting at path[start]: object steps access the
/// field; array steps map the remaining path over the elements (a[*].b),
/// dropping missing results. Atoms yield Missing.
Value WalkValuePath(const Value& root, const std::vector<std::string>& path,
                    size_t start = 0);

}  // namespace lsmcol

#endif  // LSMCOL_JSON_VALUE_H_
