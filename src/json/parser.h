// Recursive-descent JSON parser and serializer for the Value document model.

#ifndef LSMCOL_JSON_PARSER_H_
#define LSMCOL_JSON_PARSER_H_

#include <string>

#include "src/common/status.h"
#include "src/json/value.h"

namespace lsmcol {

/// Parse a single JSON document. Numbers without '.', 'e', or 'E' parse as
/// int64; others as double. Duplicate object keys keep the last occurrence.
Result<Value> ParseJson(std::string_view text);

/// Serialize a Value to compact JSON. Missing serializes as null (it should
/// not normally appear inside stored documents).
std::string ToJson(const Value& v);

/// Serialize with 2-space indentation (for examples and debugging output).
std::string ToPrettyJson(const Value& v);

}  // namespace lsmcol

#endif  // LSMCOL_JSON_PARSER_H_
