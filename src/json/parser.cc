#include "src/json/parser.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace lsmcol {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Parse() {
    SkipWhitespace();
    Value v;
    LSMCOL_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        LSMCOL_RETURN_NOT_OK(ParseString(&s));
        *out = Value::String(std::move(s));
        return Status::OK();
      }
      case 't':
        LSMCOL_RETURN_NOT_OK(Expect("true"));
        *out = Value::Bool(true);
        return Status::OK();
      case 'f':
        LSMCOL_RETURN_NOT_OK(Expect("false"));
        *out = Value::Bool(false);
        return Status::OK();
      case 'n':
        LSMCOL_RETURN_NOT_OK(Expect("null"));
        *out = Value::Null();
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Value* out, int depth) {
    ++pos_;  // '{'
    *out = Value::MakeObject();
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '"') return Error("expected object key");
      std::string key;
      LSMCOL_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (Peek() != ':') return Error("expected ':' after key");
      ++pos_;
      Value v;
      LSMCOL_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->Set(std::move(key), std::move(v));
      SkipWhitespace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Value* out, int depth) {
    ++pos_;  // '['
    *out = Value::MakeArray();
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      Value v;
      LSMCOL_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->Push(std::move(v));
      SkipWhitespace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad \\u escape digit");
              }
            }
            AppendUtf8(out, code);
            break;
          }
          default:
            return Error("unknown escape character");
        }
      } else {
        out->push_back(c);
      }
    }
    return Error("unterminated string");
  }

  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(Value* out) {
    size_t start = pos_;
    bool is_double = false;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Error("invalid number");
    }
    std::string_view num = text_.substr(start, pos_ - start);
    if (!is_double) {
      int64_t v = 0;
      auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), v);
      if (ec == std::errc() && p == num.data() + num.size()) {
        *out = Value::Int(v);
        return Status::OK();
      }
      // Fall through to double on int64 overflow.
    }
    double d = 0;
    auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), d);
    if (ec != std::errc() || p != num.data() + num.size()) {
      return Error("invalid number");
    }
    *out = Value::Double(d);
    return Status::OK();
  }

  Status Expect(const char* literal) {
    size_t len = std::strlen(literal);
    if (text_.substr(pos_, len) != literal) {
      return Error(std::string("expected '") + literal + "'");
    }
    pos_ += len;
    return Status::OK();
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Status Error(std::string msg) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " +
                                   std::move(msg));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    *out += "null";  // JSON has no NaN/Inf.
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
  // Ensure a double round-trips as a double (keep a '.' or exponent).
  if (std::strpbrk(buf, ".eE") == nullptr) *out += ".0";
}

void ToJsonImpl(const Value& v, std::string* out, int indent, int depth) {
  auto newline = [&] {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * depth), ' ');
    }
  };
  switch (v.type()) {
    case ValueType::kMissing:
    case ValueType::kNull:
      *out += "null";
      return;
    case ValueType::kBool:
      *out += v.bool_value() ? "true" : "false";
      return;
    case ValueType::kInt64:
      *out += std::to_string(v.int_value());
      return;
    case ValueType::kDouble:
      AppendNumber(out, v.double_value());
      return;
    case ValueType::kString:
      AppendEscaped(out, v.string_value());
      return;
    case ValueType::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Value& e : v.array()) {
        if (!first) out->push_back(',');
        first = false;
        ++depth;
        newline();
        --depth;
        ToJsonImpl(e, out, indent, depth + 1);
      }
      if (!first) newline();
      out->push_back(']');
      return;
    }
    case ValueType::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, val] : v.object()) {
        if (!first) out->push_back(',');
        first = false;
        ++depth;
        newline();
        --depth;
        AppendEscaped(out, key);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        ToJsonImpl(val, out, indent, depth + 1);
      }
      if (!first) newline();
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

Result<Value> ParseJson(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

std::string ToJson(const Value& v) {
  std::string out;
  ToJsonImpl(v, &out, 0, 0);
  return out;
}

std::string ToPrettyJson(const Value& v) {
  std::string out;
  ToJsonImpl(v, &out, 2, 0);
  return out;
}

}  // namespace lsmcol
