#include "src/json/value.h"

namespace lsmcol {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kMissing:
      return "missing";
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "boolean";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kArray:
      return "array";
    case ValueType::kObject:
      return "object";
  }
  return "unknown";
}

const Value& MissingValue() {
  static const Value* kMissing = new Value();
  return *kMissing;
}

void Value::Set(std::string key, Value v) {
  Object& obj = mutable_object();
  for (Member& m : obj) {
    if (m.first == key) {
      m.second = std::move(v);
      return;
    }
  }
  obj.emplace_back(std::move(key), std::move(v));
}

const Value& Value::Get(std::string_view key) const {
  if (!is_object()) return MissingValue();
  for (const Member& m : object()) {
    if (m.first == key) return m.second;
  }
  return MissingValue();
}

bool Value::Equals(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case ValueType::kMissing:
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return bool_value() == other.bool_value();
    case ValueType::kInt64:
      return int_value() == other.int_value();
    case ValueType::kDouble:
      return double_value() == other.double_value();
    case ValueType::kString:
      return string_value() == other.string_value();
    case ValueType::kArray: {
      const Array& a = array();
      const Array& b = other.array();
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!a[i].Equals(b[i])) return false;
      }
      return true;
    }
    case ValueType::kObject: {
      const Object& a = object();
      const Object& b = other.object();
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].first != b[i].first) return false;
        if (!a[i].second.Equals(b[i].second)) return false;
      }
      return true;
    }
  }
  return false;
}

namespace {

void StepValueInto(const Value& v, const std::string& field, Value* out) {
  if (v.is_object()) {
    *out = v.Get(field);
    return;
  }
  if (v.is_array()) {
    Value mapped = Value::MakeArray();
    for (const Value& e : v.array()) {
      Value sub;
      StepValueInto(e, field, &sub);
      if (!sub.is_missing()) mapped.Push(std::move(sub));
    }
    *out = std::move(mapped);
    return;
  }
  *out = Value::Missing();
}

}  // namespace

Value WalkValuePath(const Value& root, const std::vector<std::string>& path,
                    size_t start) {
  Value current = root;
  for (size_t i = start; i < path.size(); ++i) {
    Value next;
    StepValueInto(current, path[i], &next);
    current = std::move(next);
    if (current.is_missing()) break;
  }
  return current;
}

bool ValueEquivalent(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kArray: {
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!ValueEquivalent(a.array()[i], b.array()[i])) return false;
      }
      return true;
    }
    case ValueType::kObject: {
      if (a.size() != b.size()) return false;
      for (const auto& [key, value] : a.object()) {
        const Value& other = b.Get(key);
        if (other.is_missing() && !value.is_missing()) return false;
        if (!ValueEquivalent(value, other)) return false;
      }
      return true;
    }
    default:
      return a.Equals(b);
  }
}

}  // namespace lsmcol
