#!/usr/bin/env bash
# Verifies that every relative markdown link in README.md and docs/*.md
# points at an existing file (external http(s) links are skipped). Run
# from anywhere; CI runs it on every push so the docs tree and README
# cross-references stay valid.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
status=0

for doc in "$ROOT/README.md" "$ROOT"/docs/*.md; do
  [ -f "$doc" ] || continue
  dir="$(dirname "$doc")"
  # Inline links: [text](target). Reference-style links are not used.
  links="$(grep -oE '\]\([^)]+\)' "$doc" | sed -e 's/^](//' -e 's/)$//')"
  while IFS= read -r link; do
    [ -n "$link" ] || continue
    case "$link" in
      http://*|https://*|mailto:*) continue ;;
    esac
    target="${link%%#*}"            # drop any #fragment
    [ -n "$target" ] || continue    # pure same-file anchor
    if [ ! -e "$dir/$target" ]; then
      echo "BROKEN: $doc -> $link"
      status=1
    fi
  done <<EOF
$links
EOF
done

if [ "$status" -eq 0 ]; then
  echo "all markdown links resolve"
fi
exit "$status"
