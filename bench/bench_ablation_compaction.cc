// Ablation A5: compaction policy — where each point sits on the
// write-amplification vs read-cost curve.
//
// One long mixed workload (update-heavy ingest with deletes, periodic
// full scans, point lookups) runs under each compaction policy:
//
//   tiered         the default (§6.3 setup). The paper's size_ratio of
//                  1.2 is aggressive: once the oldest component is
//                  large, the newest-prefix trigger keeps re-including
//                  it, so at depth this config re-rewrites the whole
//                  stack often. It bounds the stack at max_components;
//                  it does not minimize rewrites (a low-write-amp
//                  tiered wants a ratio of 2–4+).
//   leveled        one run per size level, merged by adjacent-pair
//                  cascades that stop at the level the output reaches —
//                  the full stack is rarely rewritten in one step.
//   lazy-leveling  tiering above a single big bottom run, absorbed
//                  only when the young part reaches 1/level_fanout of
//                  it — the big run is rewritten the least often.
//
// Which policy wins on write-amp therefore depends on how deep the
// stack grows relative to the triggers: at the recorded full scale
// (hundreds of flushes) tiered@1.2 pays the most and lazy-leveling the
// least; at the tiny CI smoke scale the stack stays shallow and the
// ordering leans the textbook way (tiered cheapest). Both are real —
// the JSON records ops so rows are comparable like-for-like.
//
// Merges run inline (no scheduler), so ingest throughput honestly pays
// each policy's merge bill on the writer thread and the run is
// deterministic. Layout is fixed to AMAX (the paper's headline columnar
// layout); the policy machinery is layout-independent.
//
// Usage: bench_ablation_compaction [--json PATH] [--verify]
//   --json PATH  record per-row results as a JSON array.
//   --verify     exit 1 unless all three policies' datasets contain
//                byte-identical logical contents (sorted scan digests).

#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/json/parser.h"

namespace lsmcol::bench {
namespace {

const CompactionStrategy kStrategies[] = {
    CompactionStrategy::kTiered,
    CompactionStrategy::kLeveled,
    CompactionStrategy::kLazyLeveling,
};

/// Sorted logical contents of the dataset — the cross-policy digest.
std::map<int64_t, std::string> ScanDigest(Dataset* ds) {
  std::map<int64_t, std::string> out;
  auto cursor = ds->Scan(Projection::All());
  LSMCOL_CHECK(cursor.ok());
  while (true) {
    auto ok = (*cursor)->Next();
    LSMCOL_CHECK(ok.ok());
    if (!*ok) break;
    Value v;
    LSMCOL_CHECK_OK((*cursor)->Record(&v));
    out[(*cursor)->key()] = ToJson(v);
  }
  return out;
}

bool Run(bool verify, BenchJson* json) {
  const uint64_t ops =
      std::max<uint64_t>(2000, static_cast<uint64_t>(60000 * Scale()));
  const uint64_t key_space = std::max<uint64_t>(500, ops / 3);
  const uint64_t lookups = std::max<uint64_t>(500, ops / 20);
  PrintHeader(
      "Ablation A5: compaction policy (write amplification vs read cost)");
  std::printf(
      "dataset: sensors (AMAX), %llu mixed ops over %llu keys (10%% deletes),"
      " inline merges\n",
      static_cast<unsigned long long>(ops),
      static_cast<unsigned long long>(key_space));
  std::printf("%-14s %12s %9s %9s %6s %10s %10s %9s\n", "policy",
              "ingest", "write-amp", "space-amp", "comps", "scan", "lookups",
              "merged");

  bool ok = true;
  std::map<int64_t, std::string> reference;
  const char* reference_policy = nullptr;
  for (CompactionStrategy strategy : kStrategies) {
    const char* name = CompactionStrategyName(strategy);
    Workspace ws(std::string("ablation_compaction_") + name,
                 /*page_size=*/8 * 1024, /*cache_bytes=*/256u << 20);
    auto options = BenchOptions(ws, LayoutKind::kAmax,
                                std::string("cmp_") + name);
    // Small memtable: the run flushes hundreds of times, so the policies
    // genuinely diverge in merge cadence. The level-0 boundary is set
    // above a flushed component's page-granular size.
    options.memtable_bytes = 64 * 1024;
    options.amax_max_records = 2000;
    options.compaction.strategy = strategy;
    options.compaction.level_base_bytes = 256 * 1024;
    auto ds = Dataset::Open(options, ws.cache.get());
    LSMCOL_CHECK(ds.ok());

    // Mixed ingest: updates dominate (each key is rewritten ~3 times),
    // 10% blind deletes — the anti-matter merges must annihilate.
    Rng rng(42);
    Timer ingest_timer;
    for (uint64_t i = 0; i < ops; ++i) {
      const int64_t key = static_cast<int64_t>(rng.Uniform(key_space));
      if (rng.Bernoulli(0.1)) {
        LSMCOL_CHECK_OK((*ds)->Delete(key));
      } else {
        LSMCOL_CHECK_OK(
            (*ds)->Insert(MakeRecord(Workload::kSensors, key, &rng)));
      }
    }
    LSMCOL_CHECK_OK((*ds)->Flush());
    const double ingest_seconds = ingest_timer.Seconds();
    const double ingest_rps =
        static_cast<double>(ops) / (ingest_seconds > 0 ? ingest_seconds : 1e-9);

    // Read cost of the resulting component stack: full scans (cold
    // cache) and random point lookups.
    uint64_t scanned = 0;
    ws.cache->Clear();
    Timer scan_timer;
    for (int rep = 0; rep < 3; ++rep) {
      auto cursor = (*ds)->Scan(Projection::All());
      LSMCOL_CHECK(cursor.ok());
      while (true) {
        auto has = (*cursor)->Next();
        LSMCOL_CHECK(has.ok());
        if (!*has) break;
        ++scanned;
      }
    }
    const double scan_seconds = scan_timer.Seconds() / 3;
    Timer lookup_timer;
    uint64_t hits = 0;
    for (uint64_t i = 0; i < lookups; ++i) {
      Value v;
      Status st = (*ds)->Lookup(static_cast<int64_t>(rng.Uniform(key_space)),
                                &v);
      if (st.ok()) {
        ++hits;
      } else {
        LSMCOL_CHECK(st.IsNotFound());
      }
    }
    const double lookup_seconds = lookup_timer.Seconds();

    const DatasetStats stats = (*ds)->stats();
    const size_t components = (*ds)->component_count();
    std::printf("%-14s %8.0f r/s %9.2f %9.2f %6zu %7.1f ms %7.1f us %9s\n",
                name, ingest_rps, stats.write_amplification(),
                stats.space_amplification(), components, scan_seconds * 1e3,
                lookup_seconds * 1e6 / static_cast<double>(lookups),
                HumanBytes(stats.merged_bytes_in).c_str());

    if (verify) {
      std::map<int64_t, std::string> digest = ScanDigest(ds->get());
      if (reference_policy == nullptr) {
        reference = std::move(digest);
        reference_policy = name;
      } else if (digest != reference) {
        std::fprintf(stderr,
                     "VERIFY FAIL: %s and %s disagree on logical contents "
                     "(%zu vs %zu records)\n",
                     name, reference_policy, digest.size(), reference.size());
        ok = false;
      }
    }

    if (json != nullptr && json->enabled()) {
      BenchJson::Obj obj;
      obj.Str("bench", "ablation_compaction")
          .Str("policy", name)
          .Int("ops", ops)
          .Int("key_space", key_space)
          .Num("ingest_seconds", ingest_seconds)
          .Num("ingest_ops_per_sec", ingest_rps)
          .Num("scan_seconds", scan_seconds)
          .Num("lookup_seconds", lookup_seconds)
          .Int("lookups", lookups)
          .Int("lookup_hits", hits)
          .Int("records_scanned", scanned / 3)
          .Int("components", components)
          .Int("flushes", stats.flushes)
          .Int("merges", stats.merges)
          .Int("write_stalls", stats.write_stalls)
          .Int("flush_bytes_out", stats.flush_bytes_out)
          .Int("merge_bytes_in", stats.merged_bytes_in)
          .Int("merge_bytes_out", stats.merge_bytes_out)
          .Int("on_disk_bytes", stats.on_disk_bytes)
          .Num("write_amplification", stats.write_amplification())
          .Num("space_amplification", stats.space_amplification())
          .Int("verified", verify ? 1 : 0)
          .Int("hardware_threads", std::thread::hardware_concurrency());
      json->Add(obj);
    }
  }
  return ok;
}

}  // namespace
}  // namespace lsmcol::bench

int main(int argc, char** argv) {
  using namespace lsmcol::bench;
  bool verify = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify") {
      verify = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  BenchJson json(json_path);
  bool ok = Run(verify, &json);
  if (!json.Finish()) ok = false;
  return ok ? 0 : 1;
}
