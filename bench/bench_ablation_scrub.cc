// Ablation A6: what continuous integrity scrubbing costs the foreground.
//
// The background scrubber re-reads every component leaf uncached and
// verifies its checksums, throttled to a bytes/sec budget. This bench
// measures the tax that verification puts on a read-heavy foreground at
// several budgets, against a scrub-off baseline:
//
//   off        no scrubber — the foreground ceiling.
//   8 MiB/s    a conservative production budget (a 1 TB store fully
//              verified every ~36 hours).
//   32 MiB/s   an aggressive budget.
//   128 MiB/s  near-unthrottled — an upper bound on the interference a
//              runaway scrubber could cause.
//
// Expected shape: the slowdown tracks the budget roughly linearly, and
// at the conservative budget the foreground tax is a few percent — the
// scrubber's slices are small (default 4 MiB) and run on the low lane
// of the flush/merge scheduler, so they never delay a flush.
//
// Layout is fixed to VB: scrubbing reads raw leaf pages and checksums
// them, so its cost is layout-independent.
//
// Usage: bench_ablation_scrub [--json PATH]

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/store/store.h"

namespace lsmcol::bench {
namespace {

struct Mode {
  const char* name;
  uint64_t bytes_per_sec;  // 0 = scrubber off
};

const Mode kModes[] = {
    {"off", 0},
    {"8MiB/s", 8ull << 20},
    {"32MiB/s", 32ull << 20},
    {"128MiB/s", 128ull << 20},
};

Value ScrubBenchRecord(int64_t id, Rng* rng) {
  Value v = Value::MakeObject();
  v.Set("id", Value::Int(id));
  v.Set("name", Value::String("user_" + std::to_string(id)));
  v.Set("score", Value::Double(static_cast<double>(rng->Next() % 100000)));
  v.Set("pad", Value::String(std::to_string(rng->Next())));
  return v;
}

uint64_t CountRecords(Dataset* ds) {
  auto cursor = ds->Scan(Projection::All());
  LSMCOL_CHECK(cursor.ok());
  uint64_t n = 0;
  while (true) {
    auto ok = (*cursor)->Next();
    LSMCOL_CHECK(ok.ok());
    if (!*ok) break;
    ++n;
  }
  return n;
}

int Run(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  BenchJson json(json_path);

  const uint64_t records =
      std::max<uint64_t>(20000, static_cast<uint64_t>(150000 * Scale()));
  const int scan_reps = 12;

  PrintHeader("Ablation A6: scrub-overhead vs rate budget (layout VB)");
  std::printf("%-10s %10s %10s %10s %14s %12s\n", "scrub", "ingest s",
              "scans s", "slowdown", "verified", "achieved/s");

  double baseline_scan = 0;
  for (const Mode& mode : kModes) {
    const std::string dir =
        std::string("/tmp/lsmcol_bench_scrub_") + mode.name;
    std::filesystem::remove_all(dir);

    StoreOptions options;
    options.dir = dir;
    options.page_size = 8192;
    options.cache_bytes = 64u << 20;
    options.background_threads = 1;
    if (mode.bytes_per_sec > 0) {
      options.scrub.enabled = true;
      options.scrub.bytes_per_sec = mode.bytes_per_sec;
      options.scrub.interval_ms = 1;  // continuous: worst-case pressure
      options.scrub.max_slice_bytes = 4u << 20;
    }
    auto store = Store::Open(options);
    LSMCOL_CHECK(store.ok());
    DatasetOptions doc;
    doc.layout = LayoutKind::kVb;
    doc.memtable_bytes = 4u << 20;  // several components to scrub
    auto ds_or = (*store)->OpenDataset("docs", doc);
    LSMCOL_CHECK(ds_or.ok());
    Dataset* ds = *ds_or;

    Rng rng(42);
    Timer ingest_timer;
    for (uint64_t i = 0; i < records; ++i) {
      LSMCOL_CHECK_OK(ds->Insert(ScrubBenchRecord(static_cast<int64_t>(i),
                                                  &rng)));
    }
    LSMCOL_CHECK_OK(ds->Flush());
    const double ingest_s = ingest_timer.Seconds();

    // Read-heavy foreground phase with the scrubber live underneath.
    Timer scan_timer;
    for (int rep = 0; rep < scan_reps; ++rep) {
      LSMCOL_CHECK(CountRecords(ds) == records);
    }
    const double scans_s = scan_timer.Seconds();
    if (mode.bytes_per_sec == 0) baseline_scan = scans_s;
    const double slowdown =
        baseline_scan > 0 ? scans_s / baseline_scan : 1.0;

    const auto health = (*store)->Health();
    LSMCOL_CHECK(health.size() == 1);
    const uint64_t verified = health[0].scrub_bytes;
    const double achieved =
        scans_s + ingest_s > 0
            ? static_cast<double>(verified) / (scans_s + ingest_s)
            : 0.0;
    LSMCOL_CHECK(health[0].scrub_damage_found == 0);

    std::printf("%-10s %10.2f %10.2f %9.2fx %14s %12s\n", mode.name,
                ingest_s, scans_s, slowdown, HumanBytes(verified).c_str(),
                HumanBytes(static_cast<uint64_t>(achieved)).c_str());

    BenchJson::Obj row;
    row.Str("bench", "ablation_scrub")
        .Str("mode", mode.name)
        .Int("records", records)
        .Num("ingest_seconds", ingest_s)
        .Num("scan_seconds", scans_s)
        .Num("slowdown", slowdown)
        .Int("scrub_bytes_verified", verified)
        .Int("scrub_passes", health[0].scrub_passes);
    json.Add(row);

    LSMCOL_CHECK_OK((*store)->Close());
    std::filesystem::remove_all(dir);
  }
  return json.Finish() ? 0 : 1;
}

}  // namespace
}  // namespace lsmcol::bench

int main(int argc, char** argv) { return lsmcol::bench::Run(argc, argv); }
