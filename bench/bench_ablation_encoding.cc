// Ablation A1 (§4.1 design choice): per-encoding size and speed on the
// column value distributions the workloads produce. Uses google-benchmark
// for the micro timings, then prints a size comparison table.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/datagen/datagen.h"
#include "src/encoding/delta.h"
#include "src/encoding/lz.h"
#include "src/encoding/rle.h"
#include "src/encoding/strings.h"

namespace lsmcol {
namespace {

std::vector<int64_t> MonotoneInts(size_t n) {
  Rng rng(1);
  std::vector<int64_t> v;
  int64_t x = 1460000000000;
  for (size_t i = 0; i < n; ++i) {
    x += static_cast<int64_t>(rng.Uniform(2000));
    v.push_back(x);
  }
  return v;
}

std::vector<int64_t> RandomInts(size_t n) {
  Rng rng(2);
  std::vector<int64_t> v;
  for (size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<int64_t>(rng.Next()));
  }
  return v;
}

std::vector<std::string> Texts(size_t n) {
  Rng rng(3);
  std::vector<std::string> v;
  for (size_t i = 0; i < n; ++i) v.push_back(SyntheticText(&rng, 5, 30));
  return v;
}

void BM_DeltaEncodeMonotone(benchmark::State& state) {
  auto values = MonotoneInts(10000);
  for (auto _ : state) {
    DeltaInt64Encoder enc;
    for (int64_t v : values) enc.Add(v);
    Buffer out;
    enc.FinishInto(&out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_DeltaEncodeMonotone);

void BM_DeltaDecodeMonotone(benchmark::State& state) {
  auto values = MonotoneInts(10000);
  DeltaInt64Encoder enc;
  for (int64_t v : values) enc.Add(v);
  Buffer encoded;
  enc.FinishInto(&encoded);
  for (auto _ : state) {
    DeltaInt64Decoder dec;
    LSMCOL_CHECK_OK(dec.Init(encoded.slice()));
    std::vector<int64_t> out;
    LSMCOL_CHECK_OK(dec.DecodeAll(&out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_DeltaDecodeMonotone);

void BM_RleEncodeDefLevels(benchmark::State& state) {
  // Typical def-level stream: mostly-present values with runs of nulls.
  Rng rng(4);
  std::vector<uint64_t> levels;
  for (int i = 0; i < 10000; ++i) {
    levels.push_back(rng.Bernoulli(0.9) ? 3 : rng.Uniform(3));
  }
  for (auto _ : state) {
    RleEncoder enc(2);
    for (uint64_t v : levels) enc.Add(v);
    Buffer out;
    enc.FinishInto(&out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_RleEncodeDefLevels);

void BM_StringDeltaLengthEncode(benchmark::State& state) {
  auto texts = Texts(2000);
  for (auto _ : state) {
    DeltaLengthStringEncoder enc;
    for (const auto& t : texts) enc.Add(Slice(t));
    Buffer out;
    enc.FinishInto(&out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_StringDeltaLengthEncode);

void BM_LzCompressTextPage(benchmark::State& state) {
  Rng rng(5);
  std::string page;
  while (page.size() < 128 * 1024) {
    page += SyntheticText(&rng, 20, 40);
    page.push_back('\n');
  }
  for (auto _ : state) {
    Buffer out;
    LzCompress(Slice(page), &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(page.size()));
}
BENCHMARK(BM_LzCompressTextPage);

void BM_LzDecompressTextPage(benchmark::State& state) {
  Rng rng(5);
  std::string page;
  while (page.size() < 128 * 1024) {
    page += SyntheticText(&rng, 20, 40);
    page.push_back('\n');
  }
  Buffer compressed;
  LzCompress(Slice(page), &compressed);
  for (auto _ : state) {
    Buffer out;
    LSMCOL_CHECK_OK(LzDecompress(compressed.slice(), &out));
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(page.size()));
}
BENCHMARK(BM_LzDecompressTextPage);

void PrintSizeTable() {
  std::printf("\n==== Ablation A1: encoded sizes (10k values) ====\n");
  std::printf("%-28s %12s %12s %8s\n", "encoding / distribution", "raw",
              "encoded", "ratio");
  auto report = [](const char* name, size_t raw, size_t encoded) {
    std::printf("%-28s %12zu %12zu %7.2fx\n", name, raw, encoded,
                static_cast<double>(raw) / static_cast<double>(encoded));
  };
  {
    auto values = MonotoneInts(10000);
    DeltaInt64Encoder enc;
    for (int64_t v : values) enc.Add(v);
    Buffer out;
    enc.FinishInto(&out);
    report("delta int64 / monotone", values.size() * 8, out.size());
  }
  {
    auto values = RandomInts(10000);
    DeltaInt64Encoder enc;
    for (int64_t v : values) enc.Add(v);
    Buffer out;
    enc.FinishInto(&out);
    report("delta int64 / random", values.size() * 8, out.size());
  }
  {
    Rng rng(4);
    RleEncoder enc(2);
    for (int i = 0; i < 10000; ++i) {
      enc.Add(rng.Bernoulli(0.9) ? 3 : rng.Uniform(3));
    }
    Buffer out;
    enc.FinishInto(&out);
    report("RLE hybrid / def levels", 10000, out.size());
  }
  {
    auto texts = Texts(10000);
    size_t raw = 0;
    DeltaLengthStringEncoder enc;
    for (const auto& t : texts) {
      raw += t.size() + 4;
      enc.Add(Slice(t));
    }
    Buffer out;
    enc.FinishInto(&out);
    report("delta-length / text", raw, out.size());
    Buffer lz;
    LzCompress(out.slice(), &lz);
    report("  + LZ page compression", raw, lz.size());
  }
  {
    // Sorted identifiers: front coding (delta strings) shines.
    std::vector<std::string> ids;
    for (int i = 0; i < 10000; ++i) {
      ids.push_back("user_prefix_" + std::to_string(1000000 + i));
    }
    size_t raw = 0;
    DeltaStringEncoder front;
    DeltaLengthStringEncoder plain;
    for (const auto& s : ids) {
      raw += s.size() + 4;
      front.Add(Slice(s));
      plain.Add(Slice(s));
    }
    Buffer f, p;
    front.FinishInto(&f);
    plain.FinishInto(&p);
    report("delta-length / sorted ids", raw, p.size());
    report("delta string / sorted ids", raw, f.size());
  }
}

}  // namespace
}  // namespace lsmcol

int main(int argc, char** argv) {
  lsmcol::PrintSizeTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
