// Ablation A2: the two AMAX shaping knobs (§4.3, §4.5.2) — the empty-page
// tolerance and the Page-0 record cap. Reports on-disk size, single-column
// scan I/O, and point-lookup latency for each setting.
//
// Expected: a larger record cap improves scans (fewer Page 0s) but makes
// point lookups slower (longer linear key search, §4.5.2); higher
// tolerance pads more (slightly larger files) but reads fewer pages per
// column.

#include <cstdio>

#include "bench/bench_util.h"

namespace lsmcol::bench {
namespace {

void Run() {
  const Workload w = Workload::kTweet2;
  const uint64_t records = ScaledRecords(w);
  PrintHeader("Ablation A2: AMAX record cap and empty-page tolerance");
  std::printf("%-10s %-10s %12s %12s %12s %12s\n", "cap", "tolerance",
              "size", "scan 1 col", "scan(read)", "lookup/rec");

  struct Setting {
    size_t cap;
    double tolerance;
  };
  const Setting settings[] = {
      {1000, 0.125}, {5000, 0.125},  {15000, 0.125},
      {15000, 0.0},  {15000, 0.5},
  };
  for (const Setting& setting : settings) {
    Workspace ws("ablation_amax");
    auto options = BenchOptions(ws, LayoutKind::kAmax, "tweet2");
    options.amax_max_records = setting.cap;
    options.amax_empty_page_tolerance = setting.tolerance;
    auto ds = Dataset::Create(options, ws.cache.get());
    LSMCOL_CHECK(ds.ok());
    Rng rng(42);
    for (uint64_t i = 0; i < records; ++i) {
      LSMCOL_CHECK_OK((*ds)->Insert(
          MakeRecord(w, static_cast<int64_t>(i), &rng)));
    }
    LSMCOL_CHECK_OK((*ds)->Flush());

    // Scan of one column.
    QueryPlan plan;
    plan.aggregates.push_back(AggSpec::Count(Expr::Field({"lang"})));
    uint64_t bytes = 0;
    double scan_seconds = TimeQuery(ds->get(), plan, true, &bytes);

    // Random point lookups.
    ws.cache->Clear();
    Rng lookup_rng(7);
    constexpr int kLookups = 200;
    Timer timer;
    for (int i = 0; i < kLookups; ++i) {
      Value out;
      LSMCOL_CHECK_OK((*ds)->Lookup(
          static_cast<int64_t>(lookup_rng.Uniform(records)), &out));
    }
    const double lookup_seconds = timer.Seconds() / kLookups;

    std::printf("%-10zu %-10.3f %12s %11.3fs %12s %10.2fus\n", setting.cap,
                setting.tolerance, HumanBytes((*ds)->OnDiskBytes()).c_str(),
                scan_seconds, HumanBytes(bytes).c_str(),
                lookup_seconds * 1e6);
  }
}

}  // namespace
}  // namespace lsmcol::bench

int main() {
  lsmcol::bench::Run();
  return 0;
}
