// Figure 12a: total on-disk storage size after ingesting each dataset in
// each of the four layouts. tweet_2* additionally includes the two
// secondary indexes (timestamp + primary-key index), as in the paper.
//
// Expected shape (paper): columnar layouts ~2x smaller than Open for cell;
// 5-8x smaller for numeric sensors; APAX *larger* than VB for the
// 900-column tweet_1 (thin minipages defeat encoding); AMAX ~ VB for
// text-heavy data; Open always largest.

#include <cstdio>

#include "bench/bench_util.h"

namespace lsmcol::bench {
namespace {

void Run() {
  PrintHeader("Figure 12a: storage size after ingestion");
  std::printf("%-10s", "dataset");
  for (LayoutKind layout : kAllLayouts) {
    std::printf(" %12s", LayoutKindName(layout));
  }
  std::printf("\n");

  for (Workload w :
       {Workload::kCell, Workload::kSensors, Workload::kTweet1,
        Workload::kWos}) {
    const uint64_t records = ScaledRecords(w);
    std::printf("%-10s", WorkloadName(w));
    std::fflush(stdout);
    for (LayoutKind layout : kAllLayouts) {
      Workspace ws(std::string("fig12_") + WorkloadName(w) + "_" +
                   LayoutKindName(layout));
      auto ds = BuildDataset(&ws, w, layout, records, nullptr);
      std::printf(" %12s", HumanBytes(ds->OnDiskBytes()).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  // tweet_2 with secondary indexes (update-free here; sizes include the
  // timestamp index and the PK index).
  const uint64_t records = ScaledRecords(Workload::kTweet2);
  std::printf("%-10s", "tweet_2*");
  std::fflush(stdout);
  for (LayoutKind layout : kAllLayouts) {
    Workspace ws(std::string("fig12_tweet2_") + LayoutKindName(layout));
    auto options = BenchOptions(ws, layout, "tweet2");
    auto ds = IndexedDataset::Create(options, ws.cache.get());
    LSMCOL_CHECK(ds.ok());
    LSMCOL_CHECK_OK((*ds)->DeclarePrimaryKeyIndex());
    LSMCOL_CHECK_OK((*ds)->DeclareIndex("ts", {"timestamp"}));
    Rng rng(42);
    for (uint64_t i = 0; i < records; ++i) {
      LSMCOL_CHECK_OK((*ds)->Insert(
          MakeRecord(Workload::kTweet2, static_cast<int64_t>(i), &rng)));
    }
    LSMCOL_CHECK_OK((*ds)->Flush());
    const uint64_t total =
        (*ds)->dataset()->OnDiskBytes() + (*ds)->IndexOnDiskBytes();
    std::printf(" %12s", HumanBytes(total).c_str());
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace lsmcol::bench

int main() {
  lsmcol::bench::Run();
  return 0;
}
