// Ablation A3 (§4.5.3, §6.3): merge-policy knobs — tiering size ratio and
// the tolerated component count — and their effect on ingestion time,
// merge work (bytes re-read and re-encoded by the vertical merge), and
// final component count, for a columnar (AMAX) dataset.

#include <cstdio>

#include "bench/bench_util.h"

namespace lsmcol::bench {
namespace {

void Run() {
  const Workload w = Workload::kSensors;
  const uint64_t records = ScaledRecords(w);
  PrintHeader("Ablation A3: tiering merge policy (AMAX, sensors)");
  std::printf("%-10s %-12s %10s %8s %14s %12s %10s\n", "ratio",
              "max comps", "ingest", "merges", "merged bytes", "size",
              "components");
  struct Setting {
    double ratio;
    int max_components;
  };
  const Setting settings[] = {
      {1.2, 5}, {1.2, 3}, {1.2, 10}, {2.0, 5}, {4.0, 5},
  };
  for (const Setting& setting : settings) {
    Workspace ws("ablation_merge");
    auto options = BenchOptions(ws, LayoutKind::kAmax, "sensors");
    options.memtable_bytes = 4u << 20;  // force many flushes
    options.size_ratio = setting.ratio;
    options.max_components = setting.max_components;
    auto ds = Dataset::Create(options, ws.cache.get());
    LSMCOL_CHECK(ds.ok());
    Rng rng(42);
    Timer timer;
    for (uint64_t i = 0; i < records; ++i) {
      LSMCOL_CHECK_OK((*ds)->Insert(
          MakeRecord(w, static_cast<int64_t>(i), &rng)));
    }
    LSMCOL_CHECK_OK((*ds)->Flush());
    const double seconds = timer.Seconds();
    std::printf("%-10.1f %-12d %9.2fs %8llu %14s %12s %10zu\n",
                setting.ratio, setting.max_components, seconds,
                static_cast<unsigned long long>((*ds)->stats().merges),
                HumanBytes((*ds)->stats().merged_bytes_in).c_str(),
                HumanBytes((*ds)->OnDiskBytes()).c_str(),
                (*ds)->component_count());
  }
}

}  // namespace
}  // namespace lsmcol::bench

int main() {
  lsmcol::bench::Run();
  return 0;
}
