// Ablation A3 (§4.5.3, §6.3): merge-pipeline throughput — the run-level
// columnar merge (batched PK plan, run-copy column stitching, whole-leaf
// adoption) against the record-at-a-time reference pipeline, on APAX and
// AMAX, for two component shapes:
//
//   sequential   append-style ingest: each component covers a disjoint
//                key range — the survivor plan collapses to a few runs and
//                most leaves are adopted without decoding;
//   interleaved  worst case: components' keys interleave record by record
//                (stride K), so no run exceeds one record and nothing can
//                be adopted — measures the batched floor, not the fast
//                path.
//
// Expected shape: large speedups on `sequential` (splice-through), near
// parity (0.9-1.3x run to run) on `interleaved`. Merge throughput is
// CPU-bound, so the numbers are meaningful on a single-core container.
//
// Usage: bench_ablation_merge [--json PATH] [--verify]
//   --json PATH  record per-row results as a JSON array.
//   --verify     exit 1 unless, for every scenario, the merged dataset is
//                query-equivalent to the unmerged one (scanned via the
//                record-at-a-time LSM reconciliation) AND both pipelines'
//                merged components scan identically.

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "src/json/parser.h"

namespace lsmcol::bench {
namespace {

constexpr int kComponents = 5;

struct Scenario {
  const char* name;
  /// Key of record i within component c (n = records per component).
  int64_t (*key)(int64_t c, int64_t i, int64_t n);
};

const Scenario kScenarios[] = {
    {"sequential", [](int64_t c, int64_t i, int64_t n) { return c * n + i; }},
    {"interleaved",
     [](int64_t c, int64_t i, int64_t n) {
       (void)n;
       return i * kComponents + c;
     }},
};

/// Order-deterministic digest of a full scan (scans stream in key order):
/// record count plus a combined hash of (key, record-JSON) pairs.
struct ScanDigest {
  uint64_t count = 0;
  uint64_t hash = 0;

  bool operator==(const ScanDigest& other) const {
    return count == other.count && hash == other.hash;
  }
};

ScanDigest DigestScan(Dataset* ds) {
  ScanDigest digest;
  auto cursor = ds->Scan(Projection::All());
  LSMCOL_CHECK(cursor.ok());
  const std::hash<std::string> hasher;
  while (true) {
    auto ok = (*cursor)->Next();
    LSMCOL_CHECK(ok.ok());
    if (!*ok) break;
    Value v;
    LSMCOL_CHECK_OK((*cursor)->Record(&v));
    const uint64_t h =
        hasher(std::to_string((*cursor)->key()) + ":" + ToJson(v));
    digest.hash = digest.hash * 1099511628211ull + h;  // FNV-style chain
    ++digest.count;
  }
  return digest;
}

std::unique_ptr<Dataset> BuildComponents(Workspace* ws, LayoutKind layout,
                                         const Scenario& scenario,
                                         MergePipeline pipeline,
                                         uint64_t records) {
  auto options = BenchOptions(
      *ws, layout,
      std::string("merge_") + scenario.name + "_" + LayoutKindName(layout) +
          (pipeline == MergePipeline::kRunLevel ? "_run" : "_ref"));
  options.amax_max_records = BenchAmaxMaxRecords(records);
  options.auto_merge = false;      // exactly kComponents flushed components
  options.memtable_bytes = 1u << 30;  // components cut by manual Flush only
  options.merge_pipeline = pipeline;
  auto ds = Dataset::Open(options, ws->cache.get());
  LSMCOL_CHECK(ds.ok());
  Rng rng(42);
  const int64_t per_component =
      static_cast<int64_t>(records) / kComponents;
  for (int64_t c = 0; c < kComponents; ++c) {
    for (int64_t i = 0; i < per_component; ++i) {
      const int64_t key = scenario.key(c, i, per_component);
      LSMCOL_CHECK_OK((*ds)->Insert(MakeRecord(Workload::kSensors, key, &rng)));
    }
    LSMCOL_CHECK_OK((*ds)->Flush());
  }
  LSMCOL_CHECK((*ds)->component_count() == kComponents);
  return std::move(*ds);
}

bool Run(bool verify, BenchJson* json) {
  const uint64_t records =
      std::max<uint64_t>(500, ScaledRecords(Workload::kSensors) * 5);
  PrintHeader("Ablation A3: merge pipeline (run-level vs record-at-a-time)");
  std::printf("dataset: sensors, %llu records across %d components\n",
              static_cast<unsigned long long>(records), kComponents);
  std::printf("%-8s %-13s %14s %14s %9s %8s %9s\n", "layout", "scenario",
              "run-level", "record-level", "speedup", "runs", "adopted");

  bool ok = true;
  for (LayoutKind layout : {LayoutKind::kApax, LayoutKind::kAmax}) {
    for (const Scenario& scenario : kScenarios) {
      double rps[2] = {0, 0};
      double seconds[2] = {0, 0};
      DatasetStats stats[2];
      ScanDigest merged_digest[2];
      for (int p = 0; p < 2; ++p) {
        const MergePipeline pipeline = p == 0
                                           ? MergePipeline::kRunLevel
                                           : MergePipeline::kRecordAtATime;
        Workspace ws(std::string("ablation_merge_") + scenario.name + "_" +
                     LayoutKindName(layout) + (p == 0 ? "_run" : "_ref"));
        auto ds = BuildComponents(&ws, layout, scenario, pipeline, records);
        ScanDigest before;
        if (verify) before = DigestScan(ds.get());
        Timer timer;
        LSMCOL_CHECK_OK(ds->MergeAll());
        seconds[p] = timer.Seconds();
        stats[p] = ds->stats();
        rps[p] = static_cast<double>(stats[p].merge_records_in) /
                 (seconds[p] > 0 ? seconds[p] : 1e-9);
        if (verify) {
          merged_digest[p] = DigestScan(ds.get());
          if (!(before == merged_digest[p])) {
            std::fprintf(stderr,
                         "VERIFY FAIL: %s/%s (%s): merge changed query "
                         "results\n",
                         LayoutKindName(layout), scenario.name,
                         p == 0 ? "run-level" : "record-at-a-time");
            ok = false;
          }
        }
      }
      if (verify && !(merged_digest[0] == merged_digest[1])) {
        std::fprintf(stderr,
                     "VERIFY FAIL: %s/%s: pipelines produced query-different "
                     "components\n",
                     LayoutKindName(layout), scenario.name);
        ok = false;
      }
      const double speedup = rps[1] > 0 ? rps[0] / rps[1] : 0;
      std::printf("%-8s %-13s %10.0f r/s %10.0f r/s %8.2fx %8llu %9llu\n",
                  LayoutKindName(layout), scenario.name, rps[0], rps[1],
                  speedup,
                  static_cast<unsigned long long>(stats[0].merge_runs_copied),
                  static_cast<unsigned long long>(
                      stats[0].merge_leaves_adopted));
      if (json != nullptr && json->enabled()) {
        BenchJson::Obj obj;
        obj.Str("bench", "ablation_merge")
            .Str("layout", LayoutKindName(layout))
            .Str("scenario", scenario.name)
            .Int("records", records)
            .Int("components", kComponents)
            .Num("run_level_seconds", seconds[0])
            .Num("record_level_seconds", seconds[1])
            .Num("run_level_records_per_sec", rps[0])
            .Num("record_level_records_per_sec", rps[1])
            .Num("speedup", speedup)
            .Int("merge_records_in", stats[0].merge_records_in)
            .Int("merge_records_out", stats[0].merge_records_out)
            .Int("merge_runs_copied", stats[0].merge_runs_copied)
            .Int("merge_leaves_adopted", stats[0].merge_leaves_adopted)
            .Int("verified", verify ? 1 : 0)
            .Int("hardware_threads", std::thread::hardware_concurrency());
        json->Add(obj);
      }
    }
  }
  return ok;
}

}  // namespace
}  // namespace lsmcol::bench

int main(int argc, char** argv) {
  using namespace lsmcol::bench;
  bool verify = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify") {
      verify = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  BenchJson json(json_path);
  bool ok = Run(verify, &json);
  if (!json.Finish()) ok = false;
  return ok ? 0 : 1;
}
