// Table 1: dataset summary — type, size, number of records, average
// record size, number of inferred columns, dominant type. Regenerates the
// table over the synthetic workloads (scaled; see EXPERIMENTS.md).

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/json/parser.h"
#include "src/schema/schema.h"

namespace lsmcol::bench {
namespace {

void Run() {
  PrintHeader("Table 1: Datasets summary (synthetic, scaled)");
  std::printf("%-10s %10s %12s %14s %10s %-10s\n", "dataset", "records",
              "size", "avg record", "columns", "dominant");
  for (Workload w :
       {Workload::kCell, Workload::kSensors, Workload::kTweet1, Workload::kWos,
        Workload::kTweet2}) {
    const uint64_t records = ScaledRecords(w);
    Rng rng(42);
    Schema schema("id");
    uint64_t total_bytes = 0;
    std::map<AtomicType, int> type_histogram;
    for (uint64_t i = 0; i < records; ++i) {
      Value v = MakeRecord(w, static_cast<int64_t>(i), &rng);
      total_bytes += ToJson(v).size();
      LSMCOL_CHECK_OK(schema.MergeRecord(v));
    }
    for (const ColumnInfo& column : schema.columns()) {
      ++type_histogram[column.type];
    }
    AtomicType dominant = AtomicType::kInt64;
    int best = -1;
    for (const auto& [type, count] : type_histogram) {
      if (count > best) {
        best = count;
        dominant = type;
      }
    }
    const bool mixed = 2 * best < schema.column_count();  // no majority
    std::printf("%-10s %10llu %12s %11llu B %10d %-10s\n", WorkloadName(w),
                static_cast<unsigned long long>(records),
                HumanBytes(total_bytes).c_str(),
                static_cast<unsigned long long>(total_bytes / records),
                schema.column_count(),
                mixed ? "Mix" : AtomicTypeName(dominant));
  }
  std::printf(
      "\n(Paper, Table 1: cell 1.43B recs/141B/7 cols/Mix; sensors 40M/"
      "3.8KB/16/Integer;\n tweet_1 17M/5.3KB/933/String; wos 48M/6.2KB/296/"
      "String; tweet_2 77.2M/2.7KB/275/String)\n");
}

}  // namespace
}  // namespace lsmcol::bench

int main() {
  lsmcol::bench::Run();
  return 0;
}
