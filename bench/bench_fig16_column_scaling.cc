// Figure 16: impact of the number of columns a query accesses, APAX vs
// AMAX. (a) scan-based queries counting the non-NULL values of 1..10
// columns; (b-d) the same access pattern through the timestamp secondary
// index at 0.001%-1% selectivity.
//
// Expected shape (paper): AMAX scan time grows with the column count
// (~10x from 1 to 10 columns) while APAX stays flat (it always reads whole
// pages); AMAX still wins overall; index-based execution flattens the
// column sensitivity for both layouts.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/queries.h"

namespace lsmcol::bench {
namespace {

// Ten tweet_2 columns of different types and sizes (§6.4.5 picks columns
// at random; we fix a representative spread for reproducibility).
const std::vector<std::vector<std::string>> kColumns = {
    {"text"},
    {"retweet_count"},
    {"user", "description"},
    {"user", "followers"},
    {"lang"},
    {"user", "name"},
    {"user", "verified"},
    {"favorite_count"},
    {"user", "screen_name"},
    {"user", "location"},
};

QueryPlan CountColumnsPlan(int n) {
  QueryPlan plan;
  for (int i = 0; i < n; ++i) {
    plan.aggregates.push_back(
        AggSpec::Count(Expr::Field(kColumns[static_cast<size_t>(i)])));
  }
  return plan;
}

void Run() {
  const uint64_t records = ScaledRecords(Workload::kTweet2);
  const int64_t ts_base = 1460000000000;
  const int64_t ts_span = static_cast<int64_t>(records) * 1000;
  PrintHeader("Figure 16: impact of number of columns accessed (tweet_2)");

  std::vector<std::unique_ptr<Workspace>> workspaces;
  std::vector<std::unique_ptr<IndexedDataset>> datasets;
  const LayoutKind layouts[] = {LayoutKind::kApax, LayoutKind::kAmax};
  for (LayoutKind layout : layouts) {
    workspaces.push_back(std::make_unique<Workspace>(
        std::string("fig16_") + LayoutKindName(layout)));
    auto options = BenchOptions(*workspaces.back(), layout, "tweet2");
    auto ds = IndexedDataset::Create(options, workspaces.back()->cache.get());
    LSMCOL_CHECK(ds.ok());
    LSMCOL_CHECK_OK((*ds)->DeclarePrimaryKeyIndex());
    LSMCOL_CHECK_OK((*ds)->DeclareIndex("ts", {"timestamp"}));
    Rng rng(42);
    for (uint64_t i = 0; i < records; ++i) {
      LSMCOL_CHECK_OK((*ds)->Insert(
          MakeRecord(Workload::kTweet2, static_cast<int64_t>(i), &rng)));
    }
    LSMCOL_CHECK_OK((*ds)->Flush());
    datasets.push_back(std::move(*ds));
  }

  std::printf("\n(a) scan-based: count non-NULLs of N columns\n");
  std::printf("%-8s %10s %12s %10s %12s\n", "columns", "APAX", "(read)",
              "AMAX", "(read)");
  for (int n = 1; n <= 10; ++n) {
    QueryPlan plan = CountColumnsPlan(n);
    std::printf("%-8d", n);
    for (auto& ds : datasets) {
      uint64_t bytes = 0;
      double seconds =
          TimeQuery(ds->dataset(), plan, /*compiled=*/true, &bytes);
      std::printf(" %9.3fs %12s", seconds, HumanBytes(bytes).c_str());
    }
    std::printf("\n");
  }

  std::printf("\n(b-d) index-based: same columns via the timestamp index\n");
  std::printf("%-12s %-8s %10s %10s\n", "selectivity", "columns", "APAX",
              "AMAX");
  Rng range_rng(11);
  for (double sel : {0.00001, 0.0001, 0.001, 0.01}) {
    const int64_t width =
        static_cast<int64_t>(sel * static_cast<double>(ts_span));
    const int64_t lo = ts_base + static_cast<int64_t>(range_rng.Uniform(
                           static_cast<uint64_t>(ts_span - width)));
    for (int n : {1, 2, 10}) {
      std::vector<std::vector<std::string>> paths(
          kColumns.begin(), kColumns.begin() + n);
      Projection projection = Projection::Of(paths);
      std::printf("%10.3f%% %-8d", sel * 100, n);
      for (auto& ds : datasets) {
        ds->dataset()->cache()->Clear();
        Timer timer;
        uint64_t non_null = 0;
        LSMCOL_CHECK_OK(ds->IndexScan(
            "ts", lo, lo + width, projection,
            [&](int64_t, const Value& record) {
              for (const auto& path : paths) {
                if (!WalkValuePath(record, path).is_missing()) ++non_null;
              }
            }));
        std::printf(" %9.4fs", timer.Seconds());
      }
      std::printf("\n");
    }
  }
}

}  // namespace
}  // namespace lsmcol::bench

int main() {
  lsmcol::bench::Run();
  return 0;
}
