// Figure 10: execution time with and without code generation. Q1 is
// COUNT(*); Q2 is the unnest + group-by aggregate of Figure 11. Both run
// against all four layouts under the interpreted (Hyracks batch) engine
// and the compiled (fused pipeline) engine.
//
// Expected shape (paper): codegen beats interpreted for every layout (even
// row-major); AMAX Q1 is near-free (Page 0 only); interpreted Q2 on AMAX
// can be slower than VB (assembly cost), codegen restores the columnar
// advantage.
//
// Usage: bench_fig10_codegen [--json PATH] [--verify]
//   --json PATH  record per-row results as a JSON array.
//   --verify     exit 1 unless both engines return equivalent results.

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "bench/queries.h"

namespace lsmcol::bench {
namespace {

bool Run(bool verify, BenchJson* json) {
  const Workload w = Workload::kTweet1;
  const uint64_t records = ScaledRecords(w);
  PrintHeader("Figure 10: execution time with and without code generation");
  std::printf("dataset: %s, %llu records\n", WorkloadName(w),
              static_cast<unsigned long long>(records));

  QueryPlan q1 = CountStarPlan();
  QueryPlan q2;  // Figure 11: unnest hashtags, count per tag
  q2.unnests.push_back({Expr::Field({"entities", "hashtags"}), "t"});
  q2.group_keys.push_back(Expr::VarPath("t", {"text"}));
  q2.aggregates.push_back(AggSpec::CountStar());

  std::printf("%-22s", "query");
  for (LayoutKind layout : kAllLayouts) {
    std::printf(" %10s", LayoutKindName(layout));
  }
  std::printf("\n");

  std::vector<std::unique_ptr<Workspace>> workspaces;
  std::vector<std::unique_ptr<Dataset>> datasets;
  for (LayoutKind layout : kAllLayouts) {
    workspaces.push_back(std::make_unique<Workspace>(
        std::string("fig10_") + LayoutKindName(layout)));
    datasets.push_back(
        BuildDataset(workspaces.back().get(), w, layout, records, nullptr));
  }

  struct Row {
    const char* name;
    const QueryPlan* plan;
    bool compiled;
  };
  const Row rows[] = {
      {"Q1 COUNT(*) (Interp.)", &q1, false},
      {"Q1 COUNT(*) (CodeGen)", &q1, true},
      {"Q2 (Interpreted)", &q2, false},
      {"Q2 (CodeGen)", &q2, true},
  };
  bool ok = true;
  for (const Row& row : rows) {
    std::printf("%-22s", row.name);
    for (size_t i = 0; i < datasets.size(); ++i) {
      uint64_t bytes = 0;
      double seconds =
          TimeQueryAvg(datasets[i].get(), *row.plan, row.compiled, 2, &bytes);
      std::printf(" %9.3fs", seconds);
      if (json != nullptr && json->enabled()) {
        BenchJson::Obj obj;
        obj.Str("dataset", WorkloadName(w))
            .Str("query", row.name)
            .Str("layout", LayoutKindName(kAllLayouts[i]))
            .Str("engine", row.compiled ? "compiled" : "interpreted")
            .Num("seconds_warm_avg", seconds)
            .Int("bytes_read_cold", bytes);
        json->Add(obj);
      }
    }
    std::printf("\n");
  }
  if (verify) {
    for (const QueryPlan* plan : {&q1, &q2}) {
      for (size_t i = 0; i < datasets.size(); ++i) {
        QueryResult interp, comp;
        TimeQuery(datasets[i].get(), *plan, /*compiled=*/false, nullptr,
                  &interp);
        TimeQuery(datasets[i].get(), *plan, /*compiled=*/true, nullptr, &comp);
        if (!ResultsEquivalent(interp, comp)) {
          std::fprintf(stderr, "VERIFY FAIL: engines disagree on %s (%s)\n",
                       plan == &q1 ? "Q1" : "Q2",
                       LayoutKindName(kAllLayouts[i]));
          ok = false;
        }
      }
    }
  }
  return ok;
}

}  // namespace
}  // namespace lsmcol::bench

int main(int argc, char** argv) {
  using namespace lsmcol::bench;
  bool verify = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify") {
      verify = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  BenchJson json(json_path);
  bool ok = Run(verify, &json);
  if (!json.Finish()) ok = false;
  return ok ? 0 : 1;
}
