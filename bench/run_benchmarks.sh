#!/usr/bin/env bash
# Runs the headline benchmarks in a Release build and records their
# results at the repo root — the perf trajectory the ROADMAP asks every
# perf PR to leave behind:
#   BENCH_fig10.json  Fig. 10 codegen queries (cross-engine verified)
#   BENCH_fig14.json  Fig. 14 query suite (cross-engine verified)
#   BENCH_fig13.json  Fig. 13 ingestion, synchronous vs concurrent
#                     clients over the background flush/merge scheduler
#   BENCH_merge.json  Ablation A3: run-level vs record-at-a-time merge
#                     pipeline (cross-pipeline + pre/post-merge verified)
#   BENCH_wal.json    Ablation A4: WAL durability cost — no WAL vs
#                     fsync-per-write vs group commit at 1/4/8 writers
#                     (crash-image replay verified)
#   BENCH_compaction.json  Ablation A5: compaction policy — tiered vs
#                     leveled vs lazy-leveling write/space amplification
#                     and read cost (cross-policy contents verified)
#
# Usage: bench/run_benchmarks.sh [build_dir]
#   build_dir            defaults to build-rel (configured on demand)
#   LSMCOL_BENCH_SCALE   shrink/grow datasets (default 1.0; CI uses ~0.02)
#   LSMCOL_BENCH_VERIFY  when "1" (default), pass --verify so both engines'
#                        results are cross-checked and mismatches fail.
#   LSMCOL_BENCH_THREADS concurrent clients for the fig13 comparison
#                        (default 4; the speedup needs >= 2 cores)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build-rel}"
THREADS="${LSMCOL_BENCH_THREADS:-4}"
VERIFY_FLAG=""
if [[ "${LSMCOL_BENCH_VERIFY:-1}" == "1" ]]; then
  VERIFY_FLAG="--verify"
fi

cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
  -DLSMCOL_BUILD_TESTS=OFF >/dev/null
cmake --build "$BUILD_DIR" -j --target bench_fig10_codegen \
  bench_fig14_queries bench_fig13_ingestion bench_ablation_merge \
  bench_ablation_wal bench_ablation_compaction >/dev/null

"$BUILD_DIR/bench/bench_fig10_codegen" $VERIFY_FLAG \
  --json "$ROOT/BENCH_fig10.json"
"$BUILD_DIR/bench/bench_fig14_queries" $VERIFY_FLAG \
  --json "$ROOT/BENCH_fig14.json"
"$BUILD_DIR/bench/bench_fig13_ingestion" --threads "$THREADS" \
  --json "$ROOT/BENCH_fig13.json"
"$BUILD_DIR/bench/bench_ablation_merge" $VERIFY_FLAG \
  --json "$ROOT/BENCH_merge.json"
"$BUILD_DIR/bench/bench_ablation_wal" $VERIFY_FLAG \
  --json "$ROOT/BENCH_wal.json"
"$BUILD_DIR/bench/bench_ablation_compaction" $VERIFY_FLAG \
  --json "$ROOT/BENCH_compaction.json"

echo "wrote $ROOT/BENCH_fig10.json, $ROOT/BENCH_fig14.json," \
     "$ROOT/BENCH_fig13.json, $ROOT/BENCH_merge.json," \
     "$ROOT/BENCH_wal.json, and $ROOT/BENCH_compaction.json"
