#!/usr/bin/env bash
# Runs the two headline query benchmarks (Fig. 10 codegen, Fig. 14 queries)
# in a Release build and records their results as BENCH_fig10.json /
# BENCH_fig14.json at the repo root — the perf trajectory the ROADMAP asks
# every perf PR to leave behind.
#
# Usage: bench/run_benchmarks.sh [build_dir]
#   build_dir            defaults to build-rel (configured on demand)
#   LSMCOL_BENCH_SCALE   shrink/grow datasets (default 1.0; CI uses ~0.02)
#   LSMCOL_BENCH_VERIFY  when "1" (default), pass --verify so both engines'
#                        results are cross-checked and mismatches fail.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build-rel}"
VERIFY_FLAG=""
if [[ "${LSMCOL_BENCH_VERIFY:-1}" == "1" ]]; then
  VERIFY_FLAG="--verify"
fi

cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
  -DLSMCOL_BUILD_TESTS=OFF >/dev/null
cmake --build "$BUILD_DIR" -j --target bench_fig10_codegen \
  bench_fig14_queries >/dev/null

"$BUILD_DIR/bench/bench_fig10_codegen" $VERIFY_FLAG \
  --json "$ROOT/BENCH_fig10.json"
"$BUILD_DIR/bench/bench_fig14_queries" $VERIFY_FLAG \
  --json "$ROOT/BENCH_fig14.json"

echo "wrote $ROOT/BENCH_fig10.json and $ROOT/BENCH_fig14.json"
