// The evaluation queries of the paper's Appendix A, expressed as logical
// plans over the synthetic workloads. Table 2 summaries are printed by
// bench_fig14_queries --list.

#ifndef LSMCOL_BENCH_QUERIES_H_
#define LSMCOL_BENCH_QUERIES_H_

#include <string>
#include <vector>

#include "src/datagen/datagen.h"
#include "src/query/plan.h"

namespace lsmcol::bench {

struct NamedQuery {
  std::string id;
  std::string description;
  QueryPlan plan;
};

inline QueryPlan CountStarPlan() {
  QueryPlan plan;
  plan.aggregates.push_back(AggSpec::CountStar());
  return plan;
}

inline std::vector<NamedQuery> CellQueries() {
  std::vector<NamedQuery> queries;
  queries.push_back({"Q1", "the number of records", CountStarPlan()});
  {
    // Top 10 callers with the longest call durations.
    QueryPlan plan;
    plan.group_keys.push_back(Expr::Field({"caller"}));
    plan.aggregates.push_back(AggSpec::Max(Expr::Field({"duration"})));
    plan.order_by = 1;
    plan.order_desc = true;
    plan.limit = 10;
    queries.push_back({"Q2", "top 10 callers with longest call durations",
                       std::move(plan)});
  }
  {
    // Number of calls with duration >= 600s.
    QueryPlan plan;
    plan.pre_filter = Expr::Compare(Expr::CmpOp::kGe,
                                    Expr::Field({"duration"}), Expr::Int(600));
    plan.aggregates.push_back(AggSpec::CountStar());
    queries.push_back(
        {"Q3", "number of calls with durations >= 600 seconds",
         std::move(plan)});
  }
  return queries;
}

inline std::vector<NamedQuery> SensorsQueries() {
  std::vector<NamedQuery> queries;
  {
    // COUNT(*) over unnested readings.
    QueryPlan plan;
    plan.unnests.push_back({Expr::Field({"readings"}), "r"});
    plan.aggregates.push_back(AggSpec::CountStar());
    queries.push_back({"Q1", "the number of (sensor, reading) records",
                       std::move(plan)});
  }
  {
    QueryPlan plan;
    plan.unnests.push_back({Expr::Field({"readings"}), "r"});
    plan.aggregates.push_back(AggSpec::Max(Expr::VarPath("r", {"temp"})));
    plan.aggregates.push_back(AggSpec::Min(Expr::VarPath("r", {"temp"})));
    queries.push_back({"Q2", "the maximum reading ever recorded",
                       std::move(plan)});
  }
  {
    QueryPlan plan;
    plan.unnests.push_back({Expr::Field({"readings"}), "r"});
    plan.group_keys.push_back(Expr::Field({"sensor_id"}));
    plan.aggregates.push_back(AggSpec::Max(Expr::VarPath("r", {"temp"})));
    plan.order_by = 1;
    plan.order_desc = true;
    plan.limit = 10;
    queries.push_back({"Q3", "IDs of top 10 sensors with maximum readings",
                       std::move(plan)});
  }
  {
    QueryPlan plan;
    const int64_t day_start = 1556496000000;
    plan.pre_filter = Expr::And(
        Expr::Compare(Expr::CmpOp::kGt, Expr::Field({"report_time"}),
                      Expr::Int(day_start)),
        Expr::Compare(Expr::CmpOp::kLt, Expr::Field({"report_time"}),
                      Expr::Int(day_start + 24 * 60 * 60 * 1000)));
    plan.unnests.push_back({Expr::Field({"readings"}), "r"});
    plan.group_keys.push_back(Expr::Field({"sensor_id"}));
    plan.aggregates.push_back(AggSpec::Max(Expr::VarPath("r", {"temp"})));
    plan.order_by = 1;
    plan.order_desc = true;
    plan.limit = 10;
    queries.push_back({"Q4", "like Q3, for readings in a given day",
                       std::move(plan)});
  }
  return queries;
}

inline std::vector<NamedQuery> Tweet1Queries() {
  std::vector<NamedQuery> queries;
  queries.push_back({"Q1", "the number of records", CountStarPlan()});
  {
    QueryPlan plan;
    plan.group_keys.push_back(Expr::Field({"user", "name"}));
    plan.aggregates.push_back(AggSpec::Max(Expr::Length(Expr::Field({"text"}))));
    plan.order_by = 1;
    plan.order_desc = true;
    plan.limit = 10;
    queries.push_back({"Q2", "top 10 users who posted the longest tweets",
                       std::move(plan)});
  }
  {
    QueryPlan plan;
    plan.pre_filter = Expr::Some(
        "ht", Expr::Field({"entities", "hashtags"}),
        Expr::Compare(Expr::CmpOp::kEq,
                      Expr::Lower(Expr::VarPath("ht", {"text"})),
                      Expr::Str("jobs")));
    plan.group_keys.push_back(Expr::Field({"user", "name"}));
    plan.aggregates.push_back(AggSpec::CountStar());
    plan.order_by = 1;
    plan.order_desc = true;
    plan.limit = 10;
    queries.push_back(
        {"Q3", "top 10 users by tweets containing a popular hashtag",
         std::move(plan)});
  }
  return queries;
}

inline std::vector<NamedQuery> WosQueries() {
  const std::vector<std::string> kSubjectPath = {
      "static_data", "fullrecord_metadata", "category_info", "subject"};
  const std::vector<std::string> kAddressPath = {
      "static_data", "fullrecord_metadata", "addresses", "address_name"};
  std::vector<std::string> country_path = kAddressPath;
  country_path.push_back("address_spec");
  country_path.push_back("country");
  auto countries = [&] {
    return Expr::ArrayDistinct(Expr::Field(country_path));
  };
  std::vector<NamedQuery> queries;
  queries.push_back({"Q1", "the number of records", CountStarPlan()});
  {
    QueryPlan plan;
    plan.unnests.push_back({Expr::Field(kSubjectPath), "subject"});
    plan.filter = Expr::Compare(Expr::CmpOp::kEq,
                                Expr::VarPath("subject", {"ascatype"}),
                                Expr::Str("extended"));
    plan.group_keys.push_back(Expr::VarPath("subject", {"value"}));
    plan.aggregates.push_back(AggSpec::CountStar());
    plan.order_by = 1;
    plan.order_desc = true;
    queries.push_back(
        {"Q2", "scientific fields by number of publications",
         std::move(plan)});
  }
  {
    QueryPlan plan;
    plan.pre_filter = Expr::And(
        Expr::IsArray(Expr::Field(kAddressPath)),
        Expr::And(Expr::Compare(Expr::CmpOp::kGt,
                                Expr::ArrayCount(countries()), Expr::Int(1)),
                  Expr::ArrayContains(countries(), Expr::Str("USA"))));
    plan.unnests.push_back({countries(), "country"});
    plan.filter = Expr::Compare(Expr::CmpOp::kNe, Expr::Var("country"),
                                Expr::Str("USA"));
    plan.group_keys.push_back(Expr::Var("country"));
    plan.aggregates.push_back(AggSpec::CountStar());
    plan.order_by = 1;
    plan.order_desc = true;
    plan.limit = 10;
    queries.push_back(
        {"Q3", "top 10 countries co-publishing with US institutes",
         std::move(plan)});
  }
  {
    QueryPlan plan;
    plan.pre_filter = Expr::And(
        Expr::IsArray(Expr::Field(kAddressPath)),
        Expr::Compare(Expr::CmpOp::kGt, Expr::ArrayCount(countries()),
                      Expr::Int(1)));
    plan.unnests.push_back({Expr::ArrayPairs(countries()), "pair"});
    plan.group_keys.push_back(Expr::Var("pair"));
    plan.aggregates.push_back(AggSpec::CountStar());
    plan.order_by = 1;
    plan.order_desc = true;
    plan.limit = 10;
    queries.push_back(
        {"Q4", "top 10 country pairs by co-published articles",
         std::move(plan)});
  }
  return queries;
}

inline std::vector<NamedQuery> QueriesFor(Workload w) {
  switch (w) {
    case Workload::kCell:
      return CellQueries();
    case Workload::kSensors:
      return SensorsQueries();
    case Workload::kTweet1:
      return Tweet1Queries();
    case Workload::kWos:
      return WosQueries();
    case Workload::kTweet2:
      return {{"Q1", "the number of records", CountStarPlan()}};
  }
  return {};
}

}  // namespace lsmcol::bench

#endif  // LSMCOL_BENCH_QUERIES_H_
