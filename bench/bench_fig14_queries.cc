// Figure 14 (a-d): analytical scan queries per dataset per layout, run
// with the code-generation engine (the paper reports codegen numbers for
// all layouts, §6.4). Also prints the bytes each query read — the I/O-
// cost series that drives the shapes.
//
// Usage: bench_fig14_queries [cell|sensors|tweet1|wos] — default: all.
//        bench_fig14_queries --list  prints Table 2 (query summaries).
//
// Expected shapes (paper): Q1 on AMAX near-free (Page 0 only); AMAX
// fastest overall (orders of magnitude on text-heavy tweet_1/wos); APAX ~
// VB for text-heavy datasets; Open slowest; union-typed wos values add no
// penalty for the columnar layouts.

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "bench/queries.h"

namespace lsmcol::bench {
namespace {

void PrintTable2() {
  PrintHeader("Table 2: queries used in the evaluation");
  std::printf("%-8s %-4s %s\n", "dataset", "id", "description");
  std::printf("%-8s %-4s %s\n", "*", "Q1", "the number of records");
  for (Workload w : {Workload::kCell, Workload::kSensors, Workload::kTweet1,
                     Workload::kWos}) {
    for (const NamedQuery& q : QueriesFor(w)) {
      if (q.id == "Q1") continue;
      std::printf("%-8s %-4s %s\n", WorkloadName(w), q.id.c_str(),
                  q.description.c_str());
    }
  }
}

void RunDataset(Workload w) {
  const uint64_t records = ScaledRecords(w);
  PrintHeader(std::string("Figure 14: queries on ") + WorkloadName(w) + " (" +
              std::to_string(records) + " records, CodeGen engine)");
  auto queries = QueriesFor(w);

  std::vector<std::unique_ptr<Workspace>> workspaces;
  std::vector<std::unique_ptr<Dataset>> datasets;
  for (LayoutKind layout : kAllLayouts) {
    workspaces.push_back(std::make_unique<Workspace>(
        std::string("fig14_") + WorkloadName(w) + "_" +
        LayoutKindName(layout)));
    datasets.push_back(
        BuildDataset(workspaces.back().get(), w, layout, records, nullptr));
  }

  std::printf("%-6s", "query");
  for (LayoutKind layout : kAllLayouts) {
    std::printf(" %10s %12s", LayoutKindName(layout), "(read)");
  }
  std::printf("\n");
  for (const NamedQuery& query : queries) {
    std::printf("%-6s", query.id.c_str());
    for (size_t i = 0; i < datasets.size(); ++i) {
      uint64_t bytes = 0;
      double seconds =
          TimeQueryAvg(datasets[i].get(), query.plan, /*compiled=*/true, 2,
                       &bytes);
      std::printf(" %9.3fs %12s", seconds, HumanBytes(bytes).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace lsmcol::bench

int main(int argc, char** argv) {
  using namespace lsmcol::bench;
  using lsmcol::Workload;
  if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
    PrintTable2();
    return 0;
  }
  PrintTable2();
  if (argc > 1) {
    const std::string which = argv[1];
    if (which == "cell") RunDataset(Workload::kCell);
    if (which == "sensors") RunDataset(Workload::kSensors);
    if (which == "tweet1") RunDataset(Workload::kTweet1);
    if (which == "wos") RunDataset(Workload::kWos);
    return 0;
  }
  RunDataset(Workload::kCell);
  RunDataset(Workload::kSensors);
  RunDataset(Workload::kTweet1);
  RunDataset(Workload::kWos);
  return 0;
}
