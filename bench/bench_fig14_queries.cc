// Figure 14 (a-d): analytical scan queries per dataset per layout, run
// with the code-generation engine (the paper reports codegen numbers for
// all layouts, §6.4). Also prints the bytes each query read — the I/O-
// cost series that drives the shapes.
//
// Usage: bench_fig14_queries [cell|sensors|tweet1|wos]
//            [--json PATH] [--verify] [--list]
//   default: all datasets.
//   --json PATH  record per-query results (seconds, bytes_read,
//                pages_read, and — for filtered queries — pages_read with
//                pushdown disabled) as a JSON array.
//   --verify     run the interpreted engine too and fail (exit 1) unless
//                both engines return equivalent results for every query;
//                also fail if disabling pushdown changes any result.
//   --list       print Table 2 (query summaries) and exit.
//
// Expected shapes (paper): Q1 on AMAX near-free (Page 0 only); AMAX
// fastest overall (orders of magnitude on text-heavy tweet_1/wos); APAX ~
// VB for text-heavy datasets; Open slowest; union-typed wos values add no
// penalty for the columnar layouts. With this repo's zone-map pushdown,
// selective filters (cell Q3, sensors Q4) additionally read fewer pages
// than the same query with plan.pushdown = false.

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "bench/queries.h"

namespace lsmcol::bench {
namespace {

void PrintTable2() {
  PrintHeader("Table 2: queries used in the evaluation");
  std::printf("%-8s %-4s %s\n", "dataset", "id", "description");
  std::printf("%-8s %-4s %s\n", "*", "Q1", "the number of records");
  for (Workload w : {Workload::kCell, Workload::kSensors, Workload::kTweet1,
                     Workload::kWos}) {
    for (const NamedQuery& q : QueriesFor(w)) {
      if (q.id == "Q1") continue;
      std::printf("%-8s %-4s %s\n", WorkloadName(w), q.id.c_str(),
                  q.description.c_str());
    }
  }
}

struct Options {
  bool verify = false;
  std::string json_path;
  std::string dataset;  // empty = all
};

// Returns false on a verification failure.
bool RunDataset(Workload w, const Options& opts, BenchJson* json) {
  const uint64_t records = ScaledRecords(w);
  PrintHeader(std::string("Figure 14: queries on ") + WorkloadName(w) + " (" +
              std::to_string(records) + " records, CodeGen engine)");
  auto queries = QueriesFor(w);
  bool ok = true;

  std::vector<std::unique_ptr<Workspace>> workspaces;
  std::vector<std::unique_ptr<Dataset>> datasets;
  for (LayoutKind layout : kAllLayouts) {
    workspaces.push_back(std::make_unique<Workspace>(
        std::string("fig14_") + WorkloadName(w) + "_" +
        LayoutKindName(layout)));
    datasets.push_back(
        BuildDataset(workspaces.back().get(), w, layout, records, nullptr));
  }

  std::printf("%-6s", "query");
  for (LayoutKind layout : kAllLayouts) {
    std::printf(" %10s %12s", LayoutKindName(layout), "(read)");
  }
  std::printf("\n");
  for (const NamedQuery& query : queries) {
    std::printf("%-6s", query.id.c_str());
    const bool filtered =
        query.plan.pre_filter != nullptr || query.plan.filter != nullptr;
    for (size_t i = 0; i < datasets.size(); ++i) {
      Dataset* ds = datasets[i].get();
      uint64_t bytes = 0, pages = 0;
      QueryResult compiled_result;
      double cold = TimeQuery(ds, query.plan, /*compiled=*/true, &bytes,
                              &compiled_result, &pages);
      (void)cold;
      double seconds =
          TimeQueryAvg(ds, query.plan, /*compiled=*/true, 2, nullptr);
      std::printf(" %9.3fs %12s", seconds, HumanBytes(bytes).c_str());

      uint64_t pages_no_pushdown = pages;
      if (filtered) {
        QueryPlan no_pushdown = query.plan;
        no_pushdown.pushdown = false;
        QueryResult unpushed;
        TimeQuery(ds, no_pushdown, /*compiled=*/true, nullptr, &unpushed,
                  &pages_no_pushdown);
        if (opts.verify && !ResultsEquivalent(compiled_result, unpushed)) {
          std::fprintf(stderr,
                       "VERIFY FAIL: %s %s on %s: pushdown changed results\n",
                       WorkloadName(w), query.id.c_str(),
                       LayoutKindName(kAllLayouts[i]));
          ok = false;
        }
      }
      if (opts.verify) {
        QueryResult interpreted;
        TimeQuery(ds, query.plan, /*compiled=*/false, nullptr, &interpreted);
        if (!ResultsEquivalent(compiled_result, interpreted)) {
          std::fprintf(stderr,
                       "VERIFY FAIL: %s %s on %s: engines disagree\n",
                       WorkloadName(w), query.id.c_str(),
                       LayoutKindName(kAllLayouts[i]));
          ok = false;
        }
      }
      if (json != nullptr && json->enabled()) {
        BenchJson::Obj obj;
        obj.Str("dataset", WorkloadName(w))
            .Str("query", query.id)
            .Str("layout", LayoutKindName(kAllLayouts[i]))
            .Str("engine", "compiled")
            .Num("seconds_warm_avg", seconds)
            .Int("bytes_read_cold", bytes)
            .Int("pages_read_cold", pages);
        if (filtered) obj.Int("pages_read_cold_no_pushdown", pages_no_pushdown);
        json->Add(obj);
      }
    }
    std::printf("\n");
  }
  return ok;
}

}  // namespace
}  // namespace lsmcol::bench

int main(int argc, char** argv) {
  using namespace lsmcol::bench;
  using lsmcol::Workload;
  Options opts;
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list_only = true;
    } else if (arg == "--verify") {
      opts.verify = true;
    } else if (arg == "--json" && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else {
      opts.dataset = arg;
    }
  }
  PrintTable2();
  if (list_only) return 0;
  BenchJson json(opts.json_path);
  bool ok = true;
  auto run = [&](Workload w) { ok = RunDataset(w, opts, &json) && ok; };
  if (!opts.dataset.empty()) {
    if (opts.dataset == "cell") {
      run(Workload::kCell);
    } else if (opts.dataset == "sensors") {
      run(Workload::kSensors);
    } else if (opts.dataset == "tweet1") {
      run(Workload::kTweet1);
    } else if (opts.dataset == "wos") {
      run(Workload::kWos);
    } else {
      std::fprintf(stderr, "unknown dataset '%s' (cell|sensors|tweet1|wos)\n",
                   opts.dataset.c_str());
      return 1;
    }
  } else {
    run(Workload::kCell);
    run(Workload::kSensors);
    run(Workload::kTweet1);
    run(Workload::kWos);
  }
  if (!json.Finish()) ok = false;
  return ok ? 0 : 1;
}
