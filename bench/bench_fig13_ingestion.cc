// Figure 13a: ingestion time per dataset per layout. Insert-only for
// cell/sensors/tweet_1/wos; update-intensive (50% uniform updates of
// previously ingested records) with a timestamp secondary index and a
// primary-key index for tweet_2, as in §6.3.2.
//
// Expected shape (paper): VB fastest (single-pass record construction);
// Open slower (recursive leaf-to-root copying); APAX worst on tweet_1
// (hundreds of per-page temporary buffers); AMAX ~ Open on tweet_1;
// update-intensive tweet_2: APAX/AMAX ~24%/~35% slower than Open (point
// lookups decode columnar keys linearly).

#include <cstdio>

#include "bench/bench_util.h"

namespace lsmcol::bench {
namespace {

void Run() {
  PrintHeader("Figure 13a: ingestion time (seconds)");
  std::printf("%-10s", "dataset");
  for (LayoutKind layout : kAllLayouts) {
    std::printf(" %10s", LayoutKindName(layout));
  }
  std::printf("\n");

  for (Workload w :
       {Workload::kCell, Workload::kSensors, Workload::kTweet1,
        Workload::kWos}) {
    const uint64_t records = ScaledRecords(w);
    std::printf("%-10s", WorkloadName(w));
    std::fflush(stdout);
    for (LayoutKind layout : kAllLayouts) {
      Workspace ws(std::string("fig13_") + WorkloadName(w) + "_" +
                   LayoutKindName(layout));
      double seconds = 0;
      auto ds = BuildDataset(&ws, w, layout, records, &seconds);
      (void)ds;
      std::printf(" %10.2f", seconds);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  // tweet_2: insert all, then update a random 50% (uniform), with the two
  // indexes declared up front.
  const uint64_t records = ScaledRecords(Workload::kTweet2);
  std::printf("%-10s", "tweet_2*");
  std::fflush(stdout);
  for (LayoutKind layout : kAllLayouts) {
    Workspace ws(std::string("fig13_tweet2_") + LayoutKindName(layout));
    auto options = BenchOptions(ws, layout, "tweet2");
    auto ds = IndexedDataset::Create(options, ws.cache.get());
    LSMCOL_CHECK(ds.ok());
    LSMCOL_CHECK_OK((*ds)->DeclarePrimaryKeyIndex());
    LSMCOL_CHECK_OK((*ds)->DeclareIndex("ts", {"timestamp"}));
    Rng rng(42);
    Timer timer;
    for (uint64_t i = 0; i < records; ++i) {
      LSMCOL_CHECK_OK((*ds)->Insert(
          MakeRecord(Workload::kTweet2, static_cast<int64_t>(i), &rng)));
    }
    // 50% updates, uniformly distributed over the ingested keys.
    for (uint64_t u = 0; u < records / 2; ++u) {
      const int64_t key = static_cast<int64_t>(rng.Uniform(records));
      LSMCOL_CHECK_OK((*ds)->Insert(MakeTweet2Record(
          key, 1460000000000 + static_cast<int64_t>(records + u) * 1000,
          &rng)));
    }
    LSMCOL_CHECK_OK((*ds)->Flush());
    std::printf(" %10.2f", timer.Seconds());
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace lsmcol::bench

int main() {
  lsmcol::bench::Run();
  return 0;
}
