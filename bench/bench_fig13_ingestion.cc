// Figure 13a: ingestion time per dataset per layout. Insert-only for
// cell/sensors/tweet_1/wos; update-intensive (50% uniform updates of
// previously ingested records) with a timestamp secondary index and a
// primary-key index for tweet_2, as in §6.3.2.
//
// Expected shape (paper): VB fastest (single-pass record construction);
// Open slower (recursive leaf-to-root copying); APAX worst on tweet_1
// (hundreds of per-page temporary buffers); AMAX ~ Open on tweet_1;
// update-intensive tweet_2: APAX/AMAX ~24%/~35% slower than Open (point
// lookups decode columnar keys linearly).
//
// Usage: bench_fig13_ingestion [--json PATH] [--threads N]
//   --json PATH  record per-cell results as a JSON array.
//   --threads N  concurrent-client mode: for every insert-only workload
//                and layout, ingest once on the synchronous path (flushes
//                and merges inline on the single writer — the paper's
//                setup) and once with N writer threads over a
//                FlushMergeScheduler (background flush/merge off the
//                write path), reporting both times and the speedup. Both
//                runs end fully flushed with the merge policy satisfied.
//                The update-intensive tweet_2 row is skipped in this
//                mode (secondary-index maintenance is single-writer).

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/lsm/scheduler.h"

namespace lsmcol::bench {
namespace {

/// Memtable budget for the sync-vs-concurrent comparison: ~1/12 of the
/// estimated ingest volume (sampled row encodings), clamped to [256 KiB,
/// 12 MiB — the paper-configured budget]. Both legs use the same value,
/// so each run rotates the memtable enough times for background flushing
/// to matter regardless of LSMCOL_BENCH_SCALE.
size_t ComparisonMemtableBytes(Workload w, uint64_t records) {
  Rng rng(7);
  const RowCodec& codec = GetRowCodec(LayoutKind::kVb);
  size_t sampled = 0;
  constexpr int kSamples = 64;
  for (int i = 0; i < kSamples; ++i) {
    Buffer row;
    codec.Encode(MakeRecord(w, i, &rng), &row);
    sampled += row.size() + 48;  // MemTable's per-entry overhead
  }
  if (const char* env = std::getenv("LSMCOL_BENCH_MEMTABLE")) {
    return static_cast<size_t>(std::atoll(env));  // experiments only
  }
  const double estimated_total =
      static_cast<double>(sampled) / kSamples * static_cast<double>(records);
  const double budget = estimated_total / 12.0;
  if (budget < 256.0 * 1024) return 256u * 1024;
  if (budget > 12.0 * 1024 * 1024) return 12u << 20;
  return static_cast<size_t>(budget);
}

DatasetOptions ComparisonOptions(const Workspace& ws, Workload w,
                                 LayoutKind layout, uint64_t records,
                                 const char* suffix) {
  auto options = BenchOptions(ws, layout,
                              std::string(WorkloadName(w)) + "_" +
                                  LayoutKindName(layout) + suffix);
  options.amax_max_records = BenchAmaxMaxRecords(records);
  options.memtable_bytes = ComparisonMemtableBytes(w, records);
  return options;
}

/// Synchronous leg: one writer, flushes and merges inline (the
/// pre-scheduler write path).
double BuildSync(Workspace* ws, Workload w, LayoutKind layout,
                 uint64_t records) {
  auto ds = Dataset::Open(ComparisonOptions(*ws, w, layout, records, "_sy"),
                          ws->cache.get());
  LSMCOL_CHECK(ds.ok());
  Rng rng(42);
  Timer timer;
  for (uint64_t i = 0; i < records; ++i) {
    Value v = MakeRecord(w, static_cast<int64_t>(i), &rng);
    LSMCOL_CHECK_OK((*ds)->Insert(v));
  }
  LSMCOL_CHECK_OK((*ds)->Flush());
  const double seconds = timer.Seconds();
  if (std::getenv("LSMCOL_BENCH_DEBUG") != nullptr) {
    const DatasetStats stats = (*ds)->stats();
    std::fprintf(stderr, "[debug] %s/%s sync=%.2fs flushes=%llu merges=%llu\n",
                 WorkloadName(w), LayoutKindName(layout), seconds,
                 static_cast<unsigned long long>(stats.flushes),
                 static_cast<unsigned long long>(stats.merges));
  }
  return seconds;
}

/// Concurrent leg: `threads` writers over disjoint contiguous key
/// stripes, 2 background workers flushing/merging, timed until all data
/// is flushed and the merge policy is satisfied (comparable to the sync
/// leg, which does the same work inline).
double BuildConcurrent(Workspace* ws, Workload w, LayoutKind layout,
                       uint64_t records, int threads) {
  // As many background workers as clients: sealed memtables build into
  // components in parallel (ordered publication), merges take one more.
  FlushMergeScheduler scheduler(threads);
  auto options = ComparisonOptions(*ws, w, layout, records, "_mt");
  options.scheduler = &scheduler;
  auto ds = Dataset::Open(options, ws->cache.get());
  LSMCOL_CHECK(ds.ok());
  Timer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(42 + static_cast<uint64_t>(t));
      const uint64_t begin = records * static_cast<uint64_t>(t) /
                             static_cast<uint64_t>(threads);
      const uint64_t end = records * (static_cast<uint64_t>(t) + 1) /
                           static_cast<uint64_t>(threads);
      for (uint64_t i = begin; i < end; ++i) {
        Value v = MakeRecord(w, static_cast<int64_t>(i), &rng);
        LSMCOL_CHECK_OK((*ds)->Insert(v));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double ingest_seconds = timer.Seconds();
  LSMCOL_CHECK_OK((*ds)->Flush());
  LSMCOL_CHECK_OK((*ds)->WaitForBackgroundWork());
  const double seconds = timer.Seconds();
  if (std::getenv("LSMCOL_BENCH_DEBUG") != nullptr) {
    const DatasetStats stats = (*ds)->stats();
    std::fprintf(stderr,
                 "[debug] %s/%s ingest=%.2fs drain_tail=%.2fs flushes=%llu "
                 "merges=%llu stalls=%llu\n",
                 WorkloadName(w), LayoutKindName(layout), ingest_seconds,
                 seconds - ingest_seconds,
                 static_cast<unsigned long long>(stats.flushes),
                 static_cast<unsigned long long>(stats.merges),
                 static_cast<unsigned long long>(stats.write_stalls));
  }
  ds->reset();  // before the scheduler dies
  return seconds;
}

void AddJsonRow(BenchJson* json, Workload w, LayoutKind layout,
                const char* mode, int threads, uint64_t records,
                double seconds, double speedup) {
  BenchJson::Obj obj;
  obj.Str("figure", "fig13_ingestion")
      .Str("dataset", WorkloadName(w))
      .Str("layout", LayoutKindName(layout))
      .Str("mode", mode)
      .Int("threads", static_cast<uint64_t>(threads))
      .Int("hardware_threads", std::thread::hardware_concurrency())
      .Int("records", records)
      .Num("seconds", seconds)
      .Num("krecords_per_sec",
           seconds > 0 ? static_cast<double>(records) / seconds / 1000.0 : 0);
  if (speedup > 0) obj.Num("speedup_vs_sync", speedup);
  json->Add(obj);
}

void RunConcurrent(int threads, BenchJson* json) {
  PrintHeader("Figure 13a: ingestion, synchronous vs " +
              std::to_string(threads) + " concurrent writers (seconds)");
  std::printf("%-10s %-6s %10s %10s %8s\n", "dataset", "layout", "sync",
              "conc", "speedup");
  for (Workload w :
       {Workload::kCell, Workload::kSensors, Workload::kTweet1,
        Workload::kWos}) {
    const uint64_t records = ScaledRecords(w);
    for (LayoutKind layout : kAllLayouts) {
      Workspace sync_ws(std::string("fig13s_") + WorkloadName(w) + "_" +
                        LayoutKindName(layout));
      const double sync_seconds = BuildSync(&sync_ws, w, layout, records);
      Workspace conc_ws(std::string("fig13c_") + WorkloadName(w) + "_" +
                        LayoutKindName(layout));
      const double conc_seconds =
          BuildConcurrent(&conc_ws, w, layout, records, threads);
      const double speedup =
          conc_seconds > 0 ? sync_seconds / conc_seconds : 0;
      std::printf("%-10s %-6s %10.2f %10.2f %7.2fx\n", WorkloadName(w),
                  LayoutKindName(layout), sync_seconds, conc_seconds,
                  speedup);
      std::fflush(stdout);
      AddJsonRow(json, w, layout, "sync", 1, records, sync_seconds, 0);
      AddJsonRow(json, w, layout, "concurrent", threads, records,
                 conc_seconds, speedup);
    }
  }
}

void Run(BenchJson* json) {
  PrintHeader("Figure 13a: ingestion time (seconds)");
  std::printf("%-10s", "dataset");
  for (LayoutKind layout : kAllLayouts) {
    std::printf(" %10s", LayoutKindName(layout));
  }
  std::printf("\n");

  for (Workload w :
       {Workload::kCell, Workload::kSensors, Workload::kTweet1,
        Workload::kWos}) {
    const uint64_t records = ScaledRecords(w);
    std::printf("%-10s", WorkloadName(w));
    std::fflush(stdout);
    for (LayoutKind layout : kAllLayouts) {
      Workspace ws(std::string("fig13_") + WorkloadName(w) + "_" +
                   LayoutKindName(layout));
      double seconds = 0;
      auto ds = BuildDataset(&ws, w, layout, records, &seconds);
      (void)ds;
      std::printf(" %10.2f", seconds);
      std::fflush(stdout);
      AddJsonRow(json, w, layout, "sync", 1, records, seconds, 0);
    }
    std::printf("\n");
  }

  // tweet_2: insert all, then update a random 50% (uniform), with the two
  // indexes declared up front.
  const uint64_t records = ScaledRecords(Workload::kTweet2);
  std::printf("%-10s", "tweet_2*");
  std::fflush(stdout);
  for (LayoutKind layout : kAllLayouts) {
    Workspace ws(std::string("fig13_tweet2_") + LayoutKindName(layout));
    auto options = BenchOptions(ws, layout, "tweet2");
    auto ds = IndexedDataset::Create(options, ws.cache.get());
    LSMCOL_CHECK(ds.ok());
    LSMCOL_CHECK_OK((*ds)->DeclarePrimaryKeyIndex());
    LSMCOL_CHECK_OK((*ds)->DeclareIndex("ts", {"timestamp"}));
    Rng rng(42);
    Timer timer;
    for (uint64_t i = 0; i < records; ++i) {
      LSMCOL_CHECK_OK((*ds)->Insert(
          MakeRecord(Workload::kTweet2, static_cast<int64_t>(i), &rng)));
    }
    // 50% updates, uniformly distributed over the ingested keys.
    for (uint64_t u = 0; u < records / 2; ++u) {
      const int64_t key = static_cast<int64_t>(rng.Uniform(records));
      LSMCOL_CHECK_OK((*ds)->Insert(MakeTweet2Record(
          key, 1460000000000 + static_cast<int64_t>(records + u) * 1000,
          &rng)));
    }
    LSMCOL_CHECK_OK((*ds)->Flush());
    const double seconds = timer.Seconds();
    std::printf(" %10.2f", seconds);
    std::fflush(stdout);
    AddJsonRow(json, Workload::kTweet2, layout, "update_intensive", 1,
               records + records / 2, seconds, 0);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace lsmcol::bench

int main(int argc, char** argv) {
  std::string json_path;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--threads N]\n", argv[0]);
      return 2;
    }
  }
  lsmcol::bench::BenchJson json(json_path);
  if (threads > 0) {
    lsmcol::bench::RunConcurrent(threads, &json);
  } else {
    lsmcol::bench::Run(&json);
  }
  if (!json.Finish()) return 1;
  return 0;
}
