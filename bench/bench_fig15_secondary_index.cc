// Figure 15: range COUNT queries on tweet_2's timestamp, with and without
// the secondary index, at low (0.001%-0.1%) and high (1%, 10%)
// selectivities, across all four layouts.
//
// Expected shape (paper): all layouts comparable and sub-second at low
// selectivity with the index; at high selectivity the index-based plan
// loses to AMAX's own full scan (a count touches only Page 0s).

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/queries.h"

namespace lsmcol::bench {
namespace {

void Run() {
  const uint64_t records = ScaledRecords(Workload::kTweet2);
  const int64_t ts_base = 1460000000000;
  const int64_t ts_span = static_cast<int64_t>(records) * 1000;
  PrintHeader("Figure 15: timestamp-range COUNT via secondary index vs scan");
  std::printf("tweet_2, %llu records\n",
              static_cast<unsigned long long>(records));

  std::vector<std::unique_ptr<Workspace>> workspaces;
  std::vector<std::unique_ptr<IndexedDataset>> datasets;
  for (LayoutKind layout : kAllLayouts) {
    workspaces.push_back(std::make_unique<Workspace>(
        std::string("fig15_") + LayoutKindName(layout)));
    auto options = BenchOptions(*workspaces.back(), layout, "tweet2");
    auto ds = IndexedDataset::Create(options, workspaces.back()->cache.get());
    LSMCOL_CHECK(ds.ok());
    LSMCOL_CHECK_OK((*ds)->DeclarePrimaryKeyIndex());
    LSMCOL_CHECK_OK((*ds)->DeclareIndex("ts", {"timestamp"}));
    Rng rng(42);
    for (uint64_t i = 0; i < records; ++i) {
      LSMCOL_CHECK_OK((*ds)->Insert(
          MakeRecord(Workload::kTweet2, static_cast<int64_t>(i), &rng)));
    }
    LSMCOL_CHECK_OK((*ds)->Flush());
    datasets.push_back(std::move(*ds));
  }

  const double selectivities[] = {0.00001, 0.0001, 0.001, 0.01, 0.10};
  std::printf("\n%-12s %-8s", "selectivity", "plan");
  for (LayoutKind layout : kAllLayouts) {
    std::printf(" %10s", LayoutKindName(layout));
  }
  std::printf("\n");
  Rng range_rng(7);
  for (double sel : selectivities) {
    const int64_t width = static_cast<int64_t>(sel * static_cast<double>(ts_span));
    // Average over a few different range predicates, as in the paper.
    constexpr int kRanges = 3;
    int64_t los[kRanges];
    for (int r = 0; r < kRanges; ++r) {
      los[r] = ts_base + static_cast<int64_t>(
                   range_rng.Uniform(static_cast<uint64_t>(ts_span - width)));
    }
    // Index-based.
    std::printf("%10.3f%% %-8s", sel * 100, "index");
    for (size_t i = 0; i < datasets.size(); ++i) {
      datasets[i]->dataset()->cache()->Clear();
      Timer timer;
      for (int r = 0; r < kRanges; ++r) {
        auto count = datasets[i]->IndexCount("ts", los[r], los[r] + width);
        LSMCOL_CHECK(count.ok());
      }
      std::printf(" %9.4fs", timer.Seconds() / kRanges);
    }
    std::printf("\n");
    // Full scan.
    std::printf("%10.3f%% %-8s", sel * 100, "scan");
    for (size_t i = 0; i < datasets.size(); ++i) {
      datasets[i]->dataset()->cache()->Clear();
      Timer timer;
      for (int r = 0; r < kRanges; ++r) {
        QueryPlan plan;
        plan.pre_filter = Expr::And(
            Expr::Compare(Expr::CmpOp::kGe, Expr::Field({"timestamp"}),
                          Expr::Int(los[r])),
            Expr::Compare(Expr::CmpOp::kLe, Expr::Field({"timestamp"}),
                          Expr::Int(los[r] + width)));
        plan.aggregates.push_back(AggSpec::CountStar());
        auto result = RunCompiled(datasets[i]->dataset(), plan);
        LSMCOL_CHECK(result.ok());
      }
      std::printf(" %9.4fs", timer.Seconds() / kRanges);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace lsmcol::bench

int main() {
  lsmcol::bench::Run();
  return 0;
}
