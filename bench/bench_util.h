// Shared benchmark harness: dataset building, timing, table printing.
// Every figure/table binary prints the same rows/series the paper reports,
// plus the buffer-cache I/O counters (bytes read), which reproduce the
// I/O-cost shapes independent of the machine.
//
// Scale: datasets are scaled from the paper's ~200 GB to laptop-size runs.
// Set LSMCOL_BENCH_SCALE (a float, default 1.0) to shrink or grow every
// dataset, e.g. LSMCOL_BENCH_SCALE=0.1 for a smoke run.

#ifndef LSMCOL_BENCH_BENCH_UTIL_H_
#define LSMCOL_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/datagen/datagen.h"
#include "src/index/indexed_dataset.h"
#include "src/lsm/dataset.h"
#include "src/query/engine.h"

namespace lsmcol::bench {

inline double Scale() {
  const char* env = std::getenv("LSMCOL_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline uint64_t ScaledRecords(Workload w) {
  uint64_t n = static_cast<uint64_t>(
      static_cast<double>(DefaultBenchRecords(w)) * Scale());
  return n < 100 ? 100 : n;
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

constexpr LayoutKind kAllLayouts[] = {LayoutKind::kOpen, LayoutKind::kVb,
                                      LayoutKind::kApax, LayoutKind::kAmax};

/// Workspace: a temp directory + a paper-configured buffer cache.
struct Workspace {
  explicit Workspace(const std::string& name,
                     size_t page_size = 128 * 1024,
                     size_t cache_bytes = 1536u << 20) {
    dir = std::string("/tmp/lsmcol_bench_") + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    cache = std::make_unique<BufferCache>(cache_bytes, page_size);
    this->page_size = page_size;
  }
  ~Workspace() { std::filesystem::remove_all(dir); }

  std::string dir;
  size_t page_size;
  std::unique_ptr<BufferCache> cache;
};

inline DatasetOptions BenchOptions(const Workspace& ws, LayoutKind layout,
                                   const std::string& name) {
  DatasetOptions options;
  options.layout = layout;
  options.dir = ws.dir;
  options.name = name;
  options.page_size = ws.page_size;
  options.memtable_bytes = 12u << 20;  // several flushes per dataset
  options.amax_max_records = 15000;
  return options;
}

/// Mega-leaf granularity scaled to the dataset: the paper's 15000-record
/// Page-0 limit assumes million-record datasets; at bench scale it would
/// collapse a whole component into one leaf, leaving zone maps nothing
/// to skip, while very small leaves waste a physical page per megapage.
inline size_t BenchAmaxMaxRecords(uint64_t records) {
  const uint64_t per_leaf = records / 16;
  if (per_leaf < 2000) return 2000;
  if (per_leaf > 15000) return 15000;
  return static_cast<size_t>(per_leaf);
}

/// Build (ingest + final flush) one workload into one layout. Returns the
/// dataset; *ingest_seconds gets the wall time including flushes/merges.
inline std::unique_ptr<Dataset> BuildDataset(Workspace* ws, Workload w,
                                             LayoutKind layout,
                                             uint64_t records,
                                             double* ingest_seconds) {
  auto options = BenchOptions(*ws, layout,
                              std::string(WorkloadName(w)) + "_" +
                                  LayoutKindName(layout));
  options.amax_max_records = BenchAmaxMaxRecords(records);
  // Open = create-or-recover; the workspace directory is fresh, so this
  // creates an empty dataset (and validates the options up front).
  auto ds = Dataset::Open(options, ws->cache.get());
  LSMCOL_CHECK(ds.ok());
  Rng rng(42);
  Timer timer;
  for (uint64_t i = 0; i < records; ++i) {
    Value v = MakeRecord(w, static_cast<int64_t>(i), &rng);
    LSMCOL_CHECK_OK((*ds)->Insert(v));
  }
  LSMCOL_CHECK_OK((*ds)->Flush());
  if (ingest_seconds != nullptr) *ingest_seconds = timer.Seconds();
  return std::move(*ds);
}

/// Run a query cold (cache cleared) and return seconds; fills bytes_read
/// (and pages_read when requested).
inline double TimeQuery(Dataset* ds, const QueryPlan& plan, bool compiled,
                        uint64_t* bytes_read, QueryResult* result = nullptr,
                        uint64_t* pages_read = nullptr) {
  ds->cache()->Clear();
  ds->cache()->ResetStats();
  Timer timer;
  auto r = RunQuery(ds, plan, compiled);
  LSMCOL_CHECK(r.ok());
  double seconds = timer.Seconds();
  if (bytes_read != nullptr) *bytes_read = ds->cache()->stats().bytes_read;
  if (pages_read != nullptr) *pages_read = ds->cache()->stats().pages_read;
  if (result != nullptr) *result = std::move(*r);
  return seconds;
}

/// Repeat a query: one warm-up + `reps` timed runs (paper: 6 runs, report
/// the average of the last 5). Cache stays warm across the timed runs,
/// like the paper's repeated executions.
inline double TimeQueryAvg(Dataset* ds, const QueryPlan& plan, bool compiled,
                           int reps, uint64_t* cold_bytes_read) {
  double first = TimeQuery(ds, plan, compiled, cold_bytes_read);
  (void)first;
  double total = 0;
  for (int i = 0; i < reps; ++i) {
    Timer timer;
    auto r = RunQuery(ds, plan, compiled);
    LSMCOL_CHECK(r.ok());
    total += timer.Seconds();
  }
  return total / reps;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Order-insensitive result comparison (engines may break ORDER BY ties
/// differently): rows serialize to canonical byte strings, sorted.
inline bool ResultsEquivalent(const QueryResult& a, const QueryResult& b) {
  if (a.rows.size() != b.rows.size()) return false;
  auto canon = [](const QueryResult& r) {
    std::vector<std::string> rows;
    rows.reserve(r.rows.size());
    for (const auto& row : r.rows) {
      std::string s;
      for (const Value& v : row) {
        const std::string part = GroupKey(v);
        s += std::to_string(part.size());
        s.push_back(':');
        s += part;
      }
      rows.push_back(std::move(s));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  return canon(a) == canon(b);
}

/// Minimal JSON results file: an array of flat objects, written on
/// Finish(). Keys/strings here are ASCII identifiers; escaping covers
/// quotes and backslashes.
class BenchJson {
 public:
  /// Empty path disables recording (all calls become no-ops).
  explicit BenchJson(std::string path) : path_(std::move(path)) {}

  class Obj {
   public:
    Obj& Str(const char* key, const std::string& v) {
      Field(key) += '"' + Escaped(v) + '"';
      return *this;
    }
    Obj& Num(const char* key, double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6f", v);
      Field(key) += buf;
      return *this;
    }
    Obj& Int(const char* key, uint64_t v) {
      Field(key) += std::to_string(v);
      return *this;
    }
    const std::string& body() const { return body_; }

   private:
    static std::string Escaped(const std::string& s) {
      std::string out;
      for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      return out;
    }
    std::string& Field(const char* key) {
      if (!body_.empty()) body_ += ", ";
      body_ += '"';
      body_ += key;
      body_ += "\": ";
      return body_;
    }
    std::string body_;
  };

  bool enabled() const { return !path_.empty(); }

  void Add(const Obj& obj) {
    if (enabled()) entries_.push_back("  {" + obj.body() + "}");
  }

  /// Write the file; returns false (with a message) on I/O failure.
  bool Finish() const {
    if (!enabled()) return true;
    std::ofstream out(path_, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    out << "[\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      out << entries_[i] << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    out << "]\n";
    return static_cast<bool>(out);
  }

 private:
  std::string path_;
  std::vector<std::string> entries_;
};

inline std::string HumanBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB",
                  static_cast<double>(bytes) / (1ull << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f KiB",
                  static_cast<double>(bytes) / 1024.0);
  }
  return buf;
}

}  // namespace lsmcol::bench

#endif  // LSMCOL_BENCH_BENCH_UTIL_H_
