// Ablation A4: write-ahead-log cost and the group-commit win.
//
// Three durability modes over the same concurrent-ingest workload:
//
//   off        no WAL — the historical volatile-memtable contract
//              (Flush() is the durability point); the raw ingest ceiling.
//   sync       WAL with group_commit = false: every acknowledged write
//              pays its own fsync. Throughput is pinned to the device's
//              fsync rate no matter how many writers pile on.
//   group      WAL with leader/follower group commit (the default): the
//              leader's single fsync covers every writer that joined the
//              batch, so throughput scales with the writer count even on
//              one core — the whole point of the design.
//
// Expected shape: `group` beats `sync` by roughly the writer count at
// >= 4 writers. At 1 writer `group` can trail `sync` slightly — the
// leader lingers `group_window_us` for company that never arrives; that
// linger penalty is honest and reported, not hidden.
//
// Layout is fixed to VB: the WAL frames the already-encoded row before
// layout-specific work happens, so its cost is layout-independent.
//
// Usage: bench_ablation_wal [--json PATH] [--verify]
//   --json PATH  record per-row results as a JSON array.
//   --verify     for the WAL modes, simulate a crash (copy the live
//                dataset directory, no Flush) and exit 1 unless replay
//                recovers every acknowledged record.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace lsmcol::bench {
namespace {

struct Mode {
  const char* name;
  bool wal;
  bool group_commit;
};

const Mode kModes[] = {
    {"off", false, false},
    {"sync", true, false},
    {"group", true, true},
};

/// Count records visible in a dataset's current snapshot.
uint64_t CountRecords(Dataset* ds) {
  auto cursor = ds->Scan(Projection::All());
  LSMCOL_CHECK(cursor.ok());
  uint64_t n = 0;
  while (true) {
    auto ok = (*cursor)->Next();
    LSMCOL_CHECK(ok.ok());
    if (!*ok) break;
    ++n;
  }
  return n;
}

/// Crash-recover the live directory: copy it (the crash image), open the
/// copy with a fresh cache, and return how many records replay restores.
uint64_t RecoverImage(const std::string& live_dir, const DatasetOptions& base,
                      size_t page_size) {
  const std::string img = live_dir + "_img";
  std::filesystem::remove_all(img);
  std::filesystem::copy(live_dir, img,
                        std::filesystem::copy_options::recursive);
  BufferCache cache(256u << 20, page_size);
  DatasetOptions options = base;
  options.dir = img;
  auto ds = Dataset::Open(options, &cache);
  LSMCOL_CHECK(ds.ok());
  const uint64_t n = CountRecords(ds->get());
  ds->reset();
  std::filesystem::remove_all(img);
  return n;
}

bool Run(bool verify, BenchJson* json) {
  const uint64_t records =
      std::max<uint64_t>(500, static_cast<uint64_t>(4000 * Scale()));
  PrintHeader("Ablation A4: WAL durability cost (group commit vs fsync/write)");
  std::printf("dataset: sensors (VB rows), %llu records per run\n",
              static_cast<unsigned long long>(records));
  std::printf("%-8s %8s %12s %10s %10s %10s\n", "mode", "writers",
              "throughput", "fsyncs", "max group", "vs sync");

  bool ok = true;
  for (int writers : {1, 4, 8}) {
    double sync_rps = 0;
    for (const Mode& mode : kModes) {
      Workspace ws(std::string("ablation_wal_") + mode.name + "_" +
                   std::to_string(writers));
      auto options = BenchOptions(ws, LayoutKind::kVb,
                                  std::string("wal_") + mode.name);
      options.memtable_bytes = 1u << 30;  // no flushes inside the window
      options.wal.enabled = mode.wal;
      options.wal.group_commit = mode.group_commit;
      auto ds = Dataset::Open(options, ws.cache.get());
      LSMCOL_CHECK(ds.ok());

      const uint64_t per_writer = records / writers;
      Timer timer;
      std::vector<std::thread> threads;
      for (int t = 0; t < writers; ++t) {
        threads.emplace_back([&, t] {
          Rng rng(42 + t);
          for (uint64_t i = 0; i < per_writer; ++i) {
            const int64_t key = t * static_cast<int64_t>(per_writer) +
                                static_cast<int64_t>(i);
            LSMCOL_CHECK_OK(
                (*ds)->Insert(MakeRecord(Workload::kSensors, key, &rng)));
          }
        });
      }
      for (auto& thread : threads) thread.join();
      const double seconds = timer.Seconds();
      const uint64_t acked = per_writer * writers;
      const DatasetStats stats = (*ds)->stats();
      const double rps = static_cast<double>(acked) /
                         (seconds > 0 ? seconds : 1e-9);
      if (std::strcmp(mode.name, "sync") == 0) sync_rps = rps;
      const double vs_sync =
          (mode.group_commit && sync_rps > 0) ? rps / sync_rps : 0;

      if (verify && mode.wal) {
        const uint64_t recovered =
            RecoverImage(ws.dir, options, ws.page_size);
        if (recovered != acked) {
          std::fprintf(stderr,
                       "VERIFY FAIL: %s/%d writers: crash image replayed "
                       "%llu of %llu acked records\n",
                       mode.name, writers,
                       static_cast<unsigned long long>(recovered),
                       static_cast<unsigned long long>(acked));
          ok = false;
        }
      }

      if (vs_sync > 0) {
        std::printf("%-8s %8d %8.0f r/s %10llu %10llu %9.2fx\n", mode.name,
                    writers, rps,
                    static_cast<unsigned long long>(stats.wal_syncs),
                    static_cast<unsigned long long>(
                        stats.wal_group_entries_max),
                    vs_sync);
      } else {
        std::printf("%-8s %8d %8.0f r/s %10llu %10llu %10s\n", mode.name,
                    writers, rps,
                    static_cast<unsigned long long>(stats.wal_syncs),
                    static_cast<unsigned long long>(
                        stats.wal_group_entries_max),
                    "-");
      }
      if (json != nullptr && json->enabled()) {
        BenchJson::Obj obj;
        obj.Str("bench", "ablation_wal")
            .Str("mode", mode.name)
            .Int("writers", writers)
            .Int("records", acked)
            .Num("seconds", seconds)
            .Num("records_per_sec", rps)
            .Num("speedup_vs_sync", vs_sync)
            .Int("wal_appends", stats.wal_appends)
            .Int("wal_syncs", stats.wal_syncs)
            .Int("wal_bytes", stats.wal_bytes)
            .Int("wal_group_entries_max", stats.wal_group_entries_max)
            .Int("verified", verify && mode.wal ? 1 : 0)
            .Int("hardware_threads", std::thread::hardware_concurrency());
        json->Add(obj);
      }
    }
  }
  return ok;
}

}  // namespace
}  // namespace lsmcol::bench

int main(int argc, char** argv) {
  using namespace lsmcol::bench;
  bool verify = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify") {
      verify = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  BenchJson json(json_path);
  bool ok = Run(verify, &json);
  if (!json.Finish()) ok = false;
  return ok ? 0 : 1;
}
