// Update-intensive workload with secondary indexes (§4.6, §6.3.2): a
// tweet-like collection with a timestamp index and a primary-key index,
// random upserts, and index-accelerated range queries.
//
//   ./examples/update_workload [records]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "src/datagen/datagen.h"
#include "src/index/indexed_dataset.h"
#include "src/json/parser.h"

using namespace lsmcol;

int main(int argc, char** argv) {
  const uint64_t records =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  const std::string dir = "/tmp/lsmcol_updates";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  BufferCache cache(256u << 20, kDefaultPageSize);

  DatasetOptions options;
  options.layout = LayoutKind::kAmax;
  options.dir = dir;
  options.name = "tweets";
  options.memtable_bytes = 4u << 20;
  auto dataset = IndexedDataset::Create(options, &cache);
  LSMCOL_CHECK(dataset.ok());
  // Declare indexes before ingestion (as in the paper). The PK index
  // spares point lookups for brand-new keys.
  LSMCOL_CHECK_OK((*dataset)->DeclarePrimaryKeyIndex());
  LSMCOL_CHECK_OK((*dataset)->DeclareIndex("ts", {"timestamp"}));

  Rng rng(42);
  const int64_t ts_base = 1460000000000;
  for (uint64_t i = 0; i < records; ++i) {
    LSMCOL_CHECK_OK((*dataset)->Insert(MakeTweet2Record(
        static_cast<int64_t>(i), ts_base + static_cast<int64_t>(i) * 1000,
        &rng)));
  }
  std::printf("ingested %llu tweets\n",
              static_cast<unsigned long long>(records));

  // Pin the pre-update state: the snapshot keeps serving this view no
  // matter how many flushes/merges the update storm below triggers.
  Snapshot::Ref before_updates = (*dataset)->dataset()->GetSnapshot();

  // 50%% uniform updates: each moves a record's timestamp forward, so the
  // old index entry must be cleaned out (anti-matter in the ts index).
  for (uint64_t u = 0; u < records / 2; ++u) {
    const int64_t key = static_cast<int64_t>(rng.Uniform(records));
    LSMCOL_CHECK_OK((*dataset)->Insert(MakeTweet2Record(
        key, ts_base + static_cast<int64_t>(records + u) * 1000, &rng)));
  }
  LSMCOL_CHECK_OK((*dataset)->Flush());

  // Snapshot isolation: record 0's timestamp is unchanged in the pinned
  // view even if the live dataset rewrote it.
  Value old_record, live_record;
  LSMCOL_CHECK_OK(before_updates->Lookup(0, &old_record));
  LSMCOL_CHECK_OK((*dataset)->dataset()->Lookup(0, &live_record));
  std::printf("record 0 timestamp: snapshot=%lld live=%lld\n",
              static_cast<long long>(
                  old_record.Get("timestamp").int_value()),
              static_cast<long long>(
                  live_record.Get("timestamp").int_value()));
  LSMCOL_CHECK(old_record.Get("timestamp").int_value() == ts_base);
  before_updates.reset();
  std::printf("applied %llu updates; primary=%0.2f MiB indexes=%0.2f MiB\n",
              static_cast<unsigned long long>(records / 2),
              (*dataset)->dataset()->OnDiskBytes() / 1048576.0,
              (*dataset)->IndexOnDiskBytes() / 1048576.0);

  // Index-accelerated range query over the ORIGINAL window: updated
  // records moved out, so fewer than 10% remain.
  const int64_t lo = ts_base;
  const int64_t hi = ts_base + static_cast<int64_t>(records / 10) * 1000;
  uint64_t found = 0;
  LSMCOL_CHECK_OK((*dataset)->IndexScan(
      "ts", lo, hi, Projection::Of({{"text"}}),
      [&](int64_t pk, const Value& record) {
        (void)pk;
        (void)record;
        ++found;
      }));
  std::printf("records still in the first 10%% window: %llu (of %llu)\n",
              static_cast<unsigned long long>(found),
              static_cast<unsigned long long>(records / 10));
  auto count = (*dataset)->IndexCount("ts", lo, hi);
  LSMCOL_CHECK(count.ok());
  LSMCOL_CHECK(*count == found);
  std::filesystem::remove_all(dir);
  return 0;
}
