// Quickstart: create a columnar (AMAX) document collection, ingest JSON,
// scan, query with both engines, and point-look-up a record.
//
//   ./examples/quickstart

#include <cstdio>
#include <filesystem>

#include "src/json/parser.h"
#include "src/lsm/dataset.h"
#include "src/query/engine.h"

using namespace lsmcol;

int main() {
  const std::string dir = "/tmp/lsmcol_quickstart";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // A buffer cache shared by every dataset of this "node".
  BufferCache cache(/*capacity_bytes=*/256u << 20,
                    /*page_size=*/kDefaultPageSize);

  DatasetOptions options;
  options.layout = LayoutKind::kAmax;  // columnar mega-leaf layout
  options.dir = dir;
  options.name = "gamers";
  options.pk_field = "id";
  auto dataset = Dataset::Create(options, &cache);
  LSMCOL_CHECK(dataset.ok());

  // The documents of the paper's Figure 4 — schemaless, nested, sparse.
  const char* documents[] = {
      R"({"id": 0, "games": [{"title": "NFL"}]})",
      R"({"id": 1, "name": {"last": "Brown"},
          "games": [{"title": "FIFA", "consoles": ["PC", "PS4"]}]})",
      R"({"id": 2, "name": {"first": "John", "last": "Smith"},
          "games": [{"title": "NBA", "consoles": ["PS4", "PC"]},
                    {"title": "NFL", "consoles": ["XBOX"]}]})",
      R"({"id": 3})",
  };
  for (const char* doc : documents) {
    LSMCOL_CHECK_OK((*dataset)->InsertJson(doc));
  }
  // Flush the in-memory component: this is where the schema is inferred
  // and records are shredded into columns (§4.5).
  LSMCOL_CHECK_OK((*dataset)->Flush());
  std::printf("inferred schema:\n%s\n",
              (*dataset)->schema()->ToString().c_str());

  // Reconciled scan (assembles records back from the columns).
  auto cursor = (*dataset)->Scan(Projection::All());
  LSMCOL_CHECK(cursor.ok());
  std::printf("scan:\n");
  while (true) {
    auto ok = (*cursor)->Next();
    LSMCOL_CHECK(ok.ok());
    if (!*ok) break;
    Value record;
    LSMCOL_CHECK_OK((*cursor)->Record(&record));
    std::printf("  %s\n", ToJson(record).c_str());
  }

  // The query of Figure 11: unnest games, count per title — compiled
  // (fused pipeline) vs interpreted (batch materialization).
  QueryPlan plan;
  plan.unnests.push_back({Expr::Field({"games"}), "g"});
  plan.group_keys.push_back(Expr::VarPath("g", {"title"}));
  plan.aggregates.push_back(AggSpec::CountStar());
  plan.order_by = 1;
  plan.order_desc = true;
  for (bool compiled : {false, true}) {
    auto result = RunQuery(dataset->get(), plan, compiled);
    LSMCOL_CHECK(result.ok());
    std::printf("%s results:\n", compiled ? "compiled" : "interpreted");
    for (const auto& row : result->rows) {
      std::printf("  %s: %lld\n", ToJson(row[0]).c_str(),
                  static_cast<long long>(row[1].int_value()));
    }
  }

  // Point lookup, upsert, delete.
  Value record;
  LSMCOL_CHECK_OK((*dataset)->Lookup(2, &record));
  std::printf("lookup id=2: %s\n", ToJson(record).c_str());
  LSMCOL_CHECK_OK((*dataset)->InsertJson(R"({"id": 2, "name": "replaced"})"));
  LSMCOL_CHECK_OK((*dataset)->Delete(0));
  LSMCOL_CHECK_OK((*dataset)->Flush());
  std::printf("after upsert+delete: lookup id=0 -> %s\n",
              (*dataset)->Lookup(0, &record).ToString().c_str());
  LSMCOL_CHECK_OK((*dataset)->Lookup(2, &record));
  std::printf("after upsert+delete: lookup id=2 -> %s\n",
              ToJson(record).c_str());

  std::printf("on-disk: %llu bytes in %zu component(s)\n",
              static_cast<unsigned long long>((*dataset)->OnDiskBytes()),
              (*dataset)->component_count());
  std::filesystem::remove_all(dir);
  return 0;
}
