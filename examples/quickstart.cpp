// Quickstart: open a Store, ingest schemaless JSON into a columnar (AMAX)
// dataset, query it with both engines — then close the store, reopen it,
// and show that everything flushed survived (manifest-based recovery).
//
//   ./examples/quickstart

#include <cstdio>
#include <filesystem>

#include "src/json/parser.h"
#include "src/query/engine.h"
#include "src/store/store.h"

using namespace lsmcol;

namespace {

// The query of Figure 11: unnest games, count per title.
QueryPlan GamesPerTitlePlan() {
  QueryPlan plan;
  plan.unnests.push_back({Expr::Field({"games"}), "g"});
  plan.group_keys.push_back(Expr::VarPath("g", {"title"}));
  plan.aggregates.push_back(AggSpec::CountStar());
  plan.order_by = 1;
  plan.order_desc = true;
  return plan;
}

void RunBothEngines(Dataset* dataset) {
  // Queries execute against a Snapshot: an immutable view that later
  // inserts/flushes/merges cannot disturb.
  Snapshot::Ref snapshot = dataset->GetSnapshot();
  for (bool compiled : {false, true}) {
    auto result = RunQuery(*snapshot, GamesPerTitlePlan(), compiled);
    LSMCOL_CHECK(result.ok());
    std::printf("%s results:\n", compiled ? "compiled" : "interpreted");
    for (const auto& row : result->rows) {
      std::printf("  %s: %lld\n", ToJson(row[0]).c_str(),
                  static_cast<long long>(row[1].int_value()));
    }
  }
}

}  // namespace

int main() {
  const std::string dir = "/tmp/lsmcol_quickstart";
  std::filesystem::remove_all(dir);

  StoreOptions store_options;
  store_options.dir = dir;  // created if missing
  store_options.cache_bytes = 256u << 20;  // cache shared by all datasets

  // ------------------------------------------------ first run: ingest
  {
    auto store = Store::Open(store_options);
    LSMCOL_CHECK(store.ok());

    DatasetOptions options;
    options.layout = LayoutKind::kAmax;  // columnar mega-leaf layout
    options.pk_field = "id";
    auto dataset = (*store)->OpenDataset("gamers", options);
    LSMCOL_CHECK(dataset.ok());

    // The documents of the paper's Figure 4 — schemaless, nested, sparse.
    const char* documents[] = {
        R"({"id": 0, "games": [{"title": "NFL"}]})",
        R"({"id": 1, "name": {"last": "Brown"},
            "games": [{"title": "FIFA", "consoles": ["PC", "PS4"]}]})",
        R"({"id": 2, "name": {"first": "John", "last": "Smith"},
            "games": [{"title": "NBA", "consoles": ["PS4", "PC"]},
                      {"title": "NFL", "consoles": ["XBOX"]}]})",
        R"({"id": 3})",
    };
    for (const char* doc : documents) {
      LSMCOL_CHECK_OK((*dataset)->InsertJson(doc));
    }
    // Flush the in-memory component: this is where the schema is inferred
    // and records are shredded into columns (§4.5). The flush also
    // rewrites the dataset's MANIFEST, making everything durable.
    LSMCOL_CHECK_OK((*dataset)->Flush());
    std::printf("inferred schema:\n%s\n",
                (*dataset)->schema()->ToString().c_str());

    // Upsert + delete, also flushed (anti-matter entries).
    LSMCOL_CHECK_OK(
        (*dataset)->InsertJson(R"({"id": 2, "name": "replaced"})"));
    LSMCOL_CHECK_OK((*dataset)->Delete(0));
    LSMCOL_CHECK_OK((*dataset)->Flush());

    RunBothEngines(*dataset);
    std::printf("closing the store (manifest seq %llu)\n\n",
                static_cast<unsigned long long>(
                    (*dataset)->manifest_sequence()));
  }  // store destroyed — like a process exit

  // --------------------------------------- second run: recover + query
  auto store = Store::Open(store_options);
  LSMCOL_CHECK(store.ok());
  std::printf("reopened store; datasets on disk:");
  for (const std::string& name : (*store)->ListDatasets()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  DatasetOptions options;
  options.layout = LayoutKind::kAmax;  // must match the manifest
  auto dataset = (*store)->OpenDataset("gamers", options);
  LSMCOL_CHECK(dataset.ok());

  // Reconciled scan (assembles records back from the columns) — the
  // upsert and the delete survived the restart.
  auto cursor = (*dataset)->Scan(Projection::All());
  LSMCOL_CHECK(cursor.ok());
  std::printf("scan after recovery:\n");
  while (true) {
    auto ok = (*cursor)->Next();
    LSMCOL_CHECK(ok.ok());
    if (!*ok) break;
    Value record;
    LSMCOL_CHECK_OK((*cursor)->Record(&record));
    std::printf("  %s\n", ToJson(record).c_str());
  }

  RunBothEngines(*dataset);

  Value record;
  std::printf("lookup id=0 (deleted before restart) -> %s\n",
              (*dataset)->Lookup(0, &record).ToString().c_str());
  LSMCOL_CHECK_OK((*dataset)->Lookup(2, &record));
  std::printf("lookup id=2 -> %s\n", ToJson(record).c_str());
  std::printf("on-disk: %llu bytes in %zu component(s)\n",
              static_cast<unsigned long long>((*dataset)->OnDiskBytes()),
              (*dataset)->component_count());
  std::filesystem::remove_all(dir);
  return 0;
}
